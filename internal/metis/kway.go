package metis

import (
	"fmt"
	"math/rand"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Direct k-way multilevel partitioning (the kmetis mode): coarsen once,
// partition the coarsest graph k ways by recursive bisection, then
// project back refining with greedy k-way boundary moves at every level.
// Compared to pure recursive bisection it coarsens the graph once
// instead of once per bisection, which is markedly faster for large k,
// at a small quality cost on some inputs — the classic METIS trade-off,
// exposed here as Method for ablation.

// Method selects the k-way construction strategy.
type Method int

const (
	// RecursiveBisection coarsens and bisects recursively (pmetis).
	RecursiveBisection Method = iota
	// KWay coarsens once and refines k ways directly (kmetis).
	KWay
)

func (m Method) String() string {
	switch m {
	case RecursiveBisection:
		return "recursive-bisection"
	case KWay:
		return "direct-kway"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// PartitionKWay computes a k-way decomposition with the direct k-way
// multilevel strategy.
func PartitionKWay(g *graph.Graph, k int32, opt Options) *partition.Partitioning {
	if k < 1 {
		panic(fmt.Sprintf("metis: k = %d", k))
	}
	opt = opt.withDefaults()
	if k == 1 || g.NumVertices() == 0 {
		return partition.New(max32(k, 1), g.NumVertices())
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	// Coarsen once, to a size proportional to k so the coarsest graph
	// still has enough vertices per part.
	target := int32(opt.InitTries) * 30 * k
	if target < opt.CoarsenTo {
		target = opt.CoarsenTo
	}
	levels := coarsen(g, target, rng)
	coarsest := levels[len(levels)-1].g

	// Initial k-way partition of the coarsest graph via recursive
	// bisection (cheap at this size).
	cp := Partition(coarsest, k, Options{
		Eps:          opt.Eps,
		Seed:         opt.Seed + 1,
		CoarsenTo:    opt.CoarsenTo,
		InitTries:    opt.InitTries,
		RefinePasses: opt.RefinePasses,
	})

	// Project back, refining k-way at every level.
	assign := cp.Assign
	for li := len(levels) - 1; li >= 1; li-- {
		fine := levels[li-1].g
		cmap := levels[li].map_
		fineAssign := make([]int32, fine.NumVertices())
		for v := range fineAssign {
			fineAssign[v] = assign[cmap[v]]
		}
		assign = fineAssign
		p := &partition.Partitioning{K: k, Assign: assign}
		bound := partition.BalanceBound(fine, k, opt.Eps)
		kwayRefine(fine, p, bound, opt.RefinePasses)
	}
	out := &partition.Partitioning{K: k, Assign: assign}
	// The input graph itself is levels[0]; if no coarsening happened the
	// assignment came straight from Partition and is already refined.
	if len(levels) == 1 {
		return cp
	}
	return out
}

// kwayRefine sweeps boundary vertices, moving each to the adjacent
// partition with the highest positive cut gain while balance allows —
// the greedy k-way refinement used during k-way uncoarsening.
func kwayRefine(g *graph.Graph, p *partition.Partitioning, bound int64, passes int) {
	load := p.Weights(g)
	aff := make(map[int32]int64, 8)
	cand := make([]int32, 0, 8)
	for pass := 0; pass < passes; pass++ {
		improved := false
		for v := int32(0); v < g.NumVertices(); v++ {
			pv := p.Assign[v]
			adj := g.Neighbors(v)
			ew := g.EdgeWeights(v)
			var internal int64
			for key := range aff {
				delete(aff, key)
			}
			// Candidate partitions are tracked in first-seen neighbor
			// order: picking the best by ranging over aff would let map
			// iteration order decide ties and break seeded determinism.
			cand = cand[:0]
			for i, u := range adj {
				pu := p.Assign[u]
				if pu == pv {
					internal += int64(ew[i])
				} else {
					if _, seen := aff[pu]; !seen {
						cand = append(cand, pu)
					}
					aff[pu] += int64(ew[i])
				}
			}
			if len(cand) == 0 {
				continue
			}
			w := int64(g.VertexWeight(v))
			best := int32(-1)
			var bestGain int64
			for _, pu := range cand {
				gain := aff[pu] - internal
				if gain > bestGain && load[pu]+w <= bound {
					best, bestGain = pu, gain
				}
			}
			if best >= 0 {
				p.Assign[v] = best
				load[pv] -= w
				load[best] += w
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
