#!/usr/bin/env bash
# Serving-layer pass (DESIGN.md §16): measures partition-directory lookup
# throughput under concurrent epoch flips across reader counts and emits
# BENCH_dir.json with ns/op, lookups/s, flips/s and allocs/op per point.
# Each point runs in its own test process.
#
# The flip schedule is fixed (it never depends on reader concurrency), so
# every worker count must end on the bit-identical assignment hash; the
# hashes are cross-checked and the run aborts on divergence — the
# lock-free read path is proven harmless, not assumed.
#
# Usage: scripts/bench_dir.sh [output.json]
#   DIR_WORKERS="1"  DIR_N=65536 DIR_FLIPS=64 \
#       scripts/bench_dir.sh /tmp/smoke.json   # ci.sh smoke config
#   DIR_ITERS=3 scripts/bench_dir.sh           # more iterations
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_dir.json}"
workers_list="${DIR_WORKERS:-1 2 4}"
n="${DIR_N:-1048576}"
flips="${DIR_FLIPS:-256}"
iters="${DIR_ITERS:-1}"

ncpu="$(getconf _NPROCESSORS_ONLN)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

go test -c -o "$tmpdir/dir.test" ./internal/dir/

# run_bench WORKERS HASHFILE -> "ns_op allocs_op lookups_s flips_s"
run_bench() {
    PARAGON_DIR_WORKERS="$1" PARAGON_DIR_N="$n" PARAGON_DIR_FLIPS="$flips" \
    PARAGON_DIR_HASH_FILE="$2" \
    "$tmpdir/dir.test" -test.run '^$' -test.bench '^BenchmarkDirLookupFlip$' \
        -test.benchtime "${iters}x" -test.benchmem \
    | awk '/^Benchmark/ {
        for (i = 3; i < NF; i += 2) u[$(i+1)] = $i
        printf("%s %s %s %s\n", u["ns/op"], u["allocs/op"], u["lookups/s"], u["flips/s"])
        found = 1
      }
      END { if (!found) exit 1 }'
}

points="$tmpdir/points"   # lines: label ns_op allocs_op lookups_s flips_s
: > "$points"
hashfile="$tmpdir/hash.txt"
: > "$hashfile"

for w in $workers_list; do
    echo "bench_dir: lookup-under-flip n=$n flips=$flips workers=$w..." >&2
    read -r nsop allocs lps fps < <(run_bench "$w" "$hashfile")
    echo "lookupflip/workers=$w $nsop $allocs $lps $fps" >> "$points"
done

# Bit-identity across reader counts: one distinct final hash, or die.
nh="$(awk '{ print $2 }' "$hashfile" | sort -u | wc -l)"
if [ "$nh" -ne 1 ]; then
    echo "bench_dir: FATAL: $nh distinct assignment hashes across worker counts:" >&2
    cat "$hashfile" >&2
    exit 1
fi
awk '{ sub(/^hash=/, "", $2); print "hash", $2; exit }' "$hashfile" >> "$points"

awk -v out="$out" -v iters="$iters" -v ncpu="$ncpu" -v n="$n" -v flips="$flips" '
{ kind = $1 }
kind ~ /^lookupflip\// {
    ns[kind] = $2; allocs[kind] = $3; lps[kind] = $4; fps[kind] = $5; order[cnt++] = kind
}
kind == "hash" { hash = $2 }
END {
    if (cnt == 0) { print "bench_dir.sh: no points" > "/dev/stderr"; exit 1 }
    printf("{\n")                                                     > out
    printf("  \"benchtime\": \"%sx per point, one process per point\",\n", iters) > out
    printf("  \"workload\": \"n=%s vertex directory (k=64, packed shards), %s rotation epoch flips concurrent with 2^19 lookups per reader; every lookup validated for epoch monotonicity\",\n", n, flips) > out
    printf("  \"hardware\": { \"online_cpus\": %s },\n", ncpu)        > out
    printf("  \"note\": \"every reader count ended on the recorded assignment hash — the flip schedule is reader-independent and the cross-check is enforced by the harness, not assumed.\",\n") > out
    printf("  \"assign_hash\": \"%s\",\n", hash)                      > out
    printf("  \"points\": {\n")                                       > out
    for (i = 0; i < cnt; i++) {
        p = order[i]
        printf("    \"%s\": { \"ns_op\": %s, \"allocs_op\": %s, \"lookups_per_s\": %s, \"flips_per_s\": %s }%s\n",
               p, ns[p], allocs[p], lps[p], fps[p], (i < cnt - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                                > out
}
' "$points"

echo "bench_dir: wrote $out"
