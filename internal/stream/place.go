package stream

import (
	"fmt"
	"math"
)

// Single-vertex placement, factored out of the batch partitioners so the
// streaming-ingest session places arriving vertices by exactly the same
// rules DG/LDG/Fennel apply during a batch pass. The batch partitioners
// in stream.go/fennel.go are now thin loops over a Placer, so a golden
// hash pinned on a batch run also pins the daemon's arrival placement.

// PlaceRule selects the placement heuristic.
type PlaceRule int

const (
	// PlaceDG: most edge-weighted neighbors, hard capacity.
	PlaceDG PlaceRule = iota
	// PlaceLDG: neighbor affinity damped by remaining capacity.
	PlaceLDG
	// PlaceFennel: affinity minus the α·γ·load^(γ−1) soft penalty.
	PlaceFennel
)

// String returns the CLI spelling of the rule.
func (r PlaceRule) String() string {
	switch r {
	case PlaceDG:
		return "dg"
	case PlaceLDG:
		return "ldg"
	case PlaceFennel:
		return "fennel"
	}
	return "unknown"
}

// ParsePlaceRule parses the CLI spelling of a rule.
func ParsePlaceRule(s string) (PlaceRule, error) {
	switch s {
	case "dg":
		return PlaceDG, nil
	case "ldg":
		return PlaceLDG, nil
	case "fennel":
		return PlaceFennel, nil
	}
	return 0, fmt.Errorf("stream: unknown placement rule %q (want dg, ldg, or fennel)", s)
}

// fennelGamma is the γ of the Fennel objective (WSDM'14 uses 1.5).
const fennelGamma = 1.5

// FennelAlpha returns the α = √k · m / n^γ coefficient for the current
// totals; the streaming session recomputes it per arrival as the live
// totals grow.
func FennelAlpha(k int32, totalEdgeWeight, totalVertexWeight float64) float64 {
	if totalVertexWeight <= 0 {
		totalVertexWeight = 1
	}
	return math.Sqrt(float64(k)) * totalEdgeWeight / math.Pow(totalVertexWeight, fennelGamma)
}

// Placer places one vertex at a time. The zero value is unusable; NewPlacer
// sizes the scratch. Not safe for concurrent use.
type Placer struct {
	Rule PlaceRule
	k    int32
	aff  []float64 // per-partition affinity scratch, reset via touched
	tch  []int32
}

// NewPlacer returns a placer for k partitions.
func NewPlacer(rule PlaceRule, k int32) *Placer {
	if k < 1 {
		panic(fmt.Sprintf("stream: placer k = %d", k))
	}
	return &Placer{Rule: rule, k: k, aff: make([]float64, k), tch: make([]int32, 0, 64)}
}

// Place picks the partition for one arriving vertex of weight vw whose
// (already placed) neighbors are adj with edge weights wts; assign maps a
// neighbor to its partition, negative meaning not yet placed (skipped).
// load is the per-partition vertex-weight total, updated by the caller.
//
//   - DG/LDG treat capacity as a hard bound and score only partitions
//     holding a neighbor; ties break to the lower load, then to the
//     first-touched partition. With no admissible positive-score
//     candidate the vertex falls back to the least-loaded partition
//     (lowest index on ties).
//   - Fennel scores every partition (capacity is its 2× hard backstop),
//     with the same uniform lowest-load tie-break — including against
//     the first candidate scored, which the pre-fix loop exempted by
//     tying against the best == -1 sentinel.
//
// The affinity scratch is reset through the touched list, so a call
// costs O(deg + k_rule) with k_rule = k only for Fennel's scoring scan,
// never for the reset — the O(n·k) streaming reset is gone.
func (pl *Placer) Place(adj, wts, assign []int32, load []float64, vw, capacity, alpha float64) int32 {
	aff := pl.aff
	touched := pl.tch[:0]
	for i, u := range adj {
		pu := assign[u]
		if pu < 0 {
			continue // neighbor not yet streamed in
		}
		if aff[pu] == 0 {
			touched = append(touched, pu)
		}
		aff[pu] += float64(wts[i])
	}

	best := int32(-1)
	bestScore := math.Inf(-1)
	switch pl.Rule {
	case PlaceFennel:
		for pi := int32(0); pi < pl.k; pi++ {
			if load[pi]+vw > capacity {
				continue
			}
			score := aff[pi] - alpha*fennelGamma*math.Pow(load[pi], fennelGamma-1)
			if best < 0 || score > bestScore || (score == bestScore && load[pi] < load[best]) {
				best, bestScore = pi, score
			}
		}
	default:
		for _, pi := range touched {
			if load[pi]+vw > capacity {
				continue
			}
			score := aff[pi]
			if pl.Rule == PlaceLDG {
				score *= 1 - load[pi]/capacity
			}
			if best < 0 || score > bestScore || (score == bestScore && load[pi] < load[best]) {
				best, bestScore = pi, score
			}
		}
		if best >= 0 && bestScore <= 0 {
			best = -1 // a zero-score candidate is no better than the fallback
		}
	}
	if best < 0 {
		// No admissible candidate: fall back to least loaded.
		best = 0
		for pi := int32(1); pi < pl.k; pi++ {
			if load[pi] < load[best] {
				best = pi
			}
		}
	}

	for _, pi := range touched {
		aff[pi] = 0
	}
	pl.tch = touched[:0]
	return best
}
