package gen

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// graphFingerprint hashes the full CSR adjacency (degrees + sorted
// neighbor lists) so two graphs fingerprint equal iff their edge sets
// are identical.
func graphFingerprint(t *testing.T, g interface {
	NumVertices() int32
	Neighbors(int32) []int32
}) uint64 {
	t.Helper()
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(x int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf)
	}
	n := g.NumVertices()
	put(int64(n))
	for v := int32(0); v < n; v++ {
		adj := g.Neighbors(v)
		put(int64(len(adj)))
		for _, u := range adj {
			put(int64(u))
		}
	}
	return h.Sum64()
}

func TestRMATShardedBasics(t *testing.T) {
	g := RMATSharded(1000, 5000, 0.57, 0.19, 0.19, 42, 4)
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d, want 1000", g.NumVertices())
	}
	// Attempt caps and cross-shard duplicate drops undershoot slightly;
	// isolate attachment can add up to n edges.
	if g.NumEdges() < 4000 || g.NumEdges() > 5000+int64(g.NumVertices()) {
		t.Fatalf("edges = %d, want near 5000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) == 0 {
			t.Fatalf("vertex %d isolated", v)
		}
	}
}

// TestRMATShardedWorkerInvariance is the generator's core contract: the
// logical shard decomposition is fixed, so the emitted graph is
// bit-identical no matter how many workers run the shards.
func TestRMATShardedWorkerInvariance(t *testing.T) {
	var want uint64
	for i, workers := range []int{1, 2, 8, 64} {
		g := RMATSharded(2000, 8000, 0.57, 0.19, 0.19, 7, workers)
		fp := graphFingerprint(t, g)
		if i == 0 {
			want = fp
			continue
		}
		if fp != want {
			t.Fatalf("workers=%d fingerprint %#x != workers=1 fingerprint %#x", workers, fp, want)
		}
	}
}

func TestRMATShardedSeedSensitivity(t *testing.T) {
	g1 := RMATSharded(500, 2000, 0.57, 0.19, 0.19, 7, 2)
	g2 := RMATSharded(500, 2000, 0.57, 0.19, 0.19, 8, 2)
	if graphFingerprint(t, g1) == graphFingerprint(t, g2) {
		t.Fatal("different seeds produced identical graphs")
	}
}

// TestRMATShardedGolden pins the sharded generator's stream at small n.
// If this hash moves, every committed benchmark and golden that consumed
// RMATSharded output is invalidated — treat a failure as a breaking
// change to the generator, not a test to update casually.
func TestRMATShardedGolden(t *testing.T) {
	g := RMATSharded(2000, 8000, 0.57, 0.19, 0.19, 7, 3)
	got := fmt.Sprintf("%#x", graphFingerprint(t, g))
	const want = "0xa8cc573f08e894cc"
	if got != want {
		t.Fatalf("sharded RMAT stream changed: fingerprint %s, want %s", got, want)
	}
}

// TestRMATSerialGoldenUnchanged pins the legacy serial generator: the
// staging-scan isolate fix must reproduce the historical throwaway-Build
// scan byte for byte (same isolate set, same order, same rng draws).
func TestRMATSerialGoldenUnchanged(t *testing.T) {
	g := RMAT(2000, 8000, 0.57, 0.19, 0.19, 7)
	got := fmt.Sprintf("%#x", graphFingerprint(t, g))
	const want = "0x7c69926acc37128b"
	if got != want {
		t.Fatalf("serial RMAT stream changed: fingerprint %s, want %s", got, want)
	}
}

func TestRMATShardedSkew(t *testing.T) {
	g := RMATSharded(4096, 40000, 0.57, 0.19, 0.19, 3, 4)
	maxDeg := int32(0)
	for v := int32(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 2 * g.NumEdges() / int64(g.NumVertices())
	if int64(maxDeg) < 4*avg {
		t.Fatalf("max degree %d not skewed vs average %d", maxDeg, avg)
	}
}
