package dyn

import (
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/partition"
)

func TestSnapshotsStructure(t *testing.T) {
	g := gen.RMAT(1000, 5000, 0.57, 0.19, 0.19, 2)
	snaps, err := Snapshots(g, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 5 {
		t.Fatalf("snapshots = %d, want 5", len(snaps))
	}
	for i, s := range snaps {
		wantN := int32(int64(g.NumVertices()) * int64(i+1) / 5)
		if s.Graph.NumVertices() != wantN {
			t.Fatalf("snapshot %d has %d vertices, want %d", i, s.Graph.NumVertices(), wantN)
		}
		if err := s.Graph.Validate(); err != nil {
			t.Fatalf("snapshot %d invalid: %v", i, err)
		}
		if i > 0 {
			if s.FirstNew != snaps[i-1].Graph.NumVertices() {
				t.Fatalf("snapshot %d FirstNew = %d, want %d", i, s.FirstNew, snaps[i-1].Graph.NumVertices())
			}
			if s.Graph.NumEdges() < snaps[i-1].Graph.NumEdges() {
				t.Fatalf("snapshot %d lost edges", i)
			}
		} else if s.FirstNew != 0 {
			t.Fatalf("first snapshot FirstNew = %d", s.FirstNew)
		}
	}
	last := snaps[4]
	if last.Graph.NumVertices() != g.NumVertices() || last.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("final snapshot incomplete: %d/%d vs %d/%d",
			last.Graph.NumVertices(), last.Graph.NumEdges(), g.NumVertices(), g.NumEdges())
	}
}

func TestSnapshotIdentityStable(t *testing.T) {
	// Vertex v in snapshot i must be the same original vertex in every
	// later snapshot (prefix relabeling).
	g := gen.ErdosRenyi(200, 600, 3)
	snaps, err := Snapshots(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		for r := int32(0); r < prev.Graph.NumVertices(); r++ {
			if prev.Orig[r] != cur.Orig[r] {
				t.Fatalf("vertex %d changed identity between snapshots %d and %d", r, i-1, i)
			}
		}
	}
	// Edges of a snapshot must exist in the full graph.
	s := snaps[1]
	for v := int32(0); v < s.Graph.NumVertices(); v++ {
		for _, u := range s.Graph.Neighbors(v) {
			if !g.HasEdge(s.Orig[v], s.Orig[u]) {
				t.Fatalf("phantom edge %d-%d in snapshot", s.Orig[v], s.Orig[u])
			}
		}
	}
}

func TestSnapshotsErrors(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	if _, err := Snapshots(g, 0, 1); err == nil {
		t.Fatal("expected error for s=0")
	}
	if _, err := Snapshots(g, 11, 1); err == nil {
		t.Fatal("expected error for s > n")
	}
}

func TestInjectKeepsOldAssignments(t *testing.T) {
	g := gen.RMAT(500, 2500, 0.57, 0.19, 0.19, 4)
	snaps, err := Snapshots(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := Inject(snaps[0], nil, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p0.Validate(snaps[0].Graph); err != nil {
		t.Fatalf("p0 invalid: %v", err)
	}
	p1, err := Inject(snaps[1], p0, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Validate(snaps[1].Graph); err != nil {
		t.Fatalf("p1 invalid: %v", err)
	}
	for v := int32(0); v < snaps[1].FirstNew; v++ {
		if p1.Assign[v] != p0.Assign[v] {
			t.Fatalf("injection moved old vertex %d", v)
		}
	}
}

func TestInjectAffinityPlacement(t *testing.T) {
	// New vertices with all placed neighbors in one partition join it
	// when capacity allows.
	g := gen.Mesh2D(16, 16)
	snaps, err := Snapshots(g, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := Inject(snaps[0], nil, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Inject(snaps[1], p0, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	g1 := snaps[1].Graph
	matched, candidates := 0, 0
	for v := snaps[1].FirstNew; v < g1.NumVertices(); v++ {
		// Collect placed-neighbor partitions.
		target := int32(-1)
		uniform := true
		for _, u := range g1.Neighbors(v) {
			if u >= snaps[1].FirstNew {
				continue
			}
			if target < 0 {
				target = p0.Assign[u]
			} else if p0.Assign[u] != target {
				uniform = false
			}
		}
		if target >= 0 && uniform {
			candidates++
			if p1.Assign[v] == target {
				matched++
			}
		}
	}
	if candidates == 0 {
		t.Skip("no uniform-neighborhood vertices in this split")
	}
	if float64(matched) < 0.7*float64(candidates) {
		t.Fatalf("affinity placement matched %d of %d uniform cases", matched, candidates)
	}
}

func TestInjectErrors(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 6)
	snaps, err := Snapshots(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inject(snaps[1], nil, 4, 0.1); err == nil {
		t.Fatal("expected missing-prev error")
	}
	short := partition.New(4, 3)
	if _, err := Inject(snaps[1], short, 4, 0.1); err == nil {
		t.Fatal("expected length error")
	}
	p0, _ := Inject(snaps[0], nil, 4, 0.1)
	if _, err := Inject(snaps[1], p0, 5, 0.1); err == nil {
		t.Fatal("expected k-change error")
	}
}

// Property: injection always yields a valid decomposition preserving the
// old prefix, for any snapshot count and k.
func TestQuickInjectChain(t *testing.T) {
	f := func(seed int64, sRaw, kRaw uint8) bool {
		s := int(sRaw%4) + 2
		k := int32(kRaw%6) + 2
		g := gen.ErdosRenyi(300, 900, seed)
		snaps, err := Snapshots(g, s, seed)
		if err != nil {
			return false
		}
		var prev *partition.Partitioning
		for _, snap := range snaps {
			p, err := Inject(snap, prev, k, 0.1)
			if err != nil {
				t.Logf("inject: %v", err)
				return false
			}
			if err := p.Validate(snap.Graph); err != nil {
				t.Logf("invalid: %v", err)
				return false
			}
			if prev != nil {
				for v := int32(0); v < snap.FirstNew; v++ {
					if p.Assign[v] != prev.Assign[v] {
						return false
					}
				}
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
