// Package paragon is the public API of the PARAGON reproduction: a
// parallel architecture-aware graph partition refinement library (Zheng
// et al., EDBT 2016) together with everything needed to use it — graph
// loading and generation, hardware topology modeling, initial
// partitioners, baselines, a cluster execution simulator, and the
// physical migration service.
//
// The minimal flow:
//
//	g, _ := paragon.ReadMETISFile("social.graph")
//	g.UseDegreeWeights()
//	cluster := paragon.PittCluster(2)
//	costs, _ := cluster.PartitionCostMatrix(cluster.TotalCores(), 1.0)
//	p := paragon.DG(g, int32(cluster.TotalCores()))
//	stats, _ := paragon.Refine(g, p, costs, paragon.DefaultConfig())
//
// Each subsystem's full surface lives in the corresponding internal
// package; this facade re-exports the types and entry points a
// downstream user needs, so the internal packages can evolve freely.
package paragon

import (
	"io"
	"os"

	"paragon/internal/apps"
	"paragon/internal/aragon"
	"paragon/internal/bsp"
	"paragon/internal/dir"
	"paragon/internal/dyn"
	"paragon/internal/faultsim"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/metis"
	"paragon/internal/migrate"
	"paragon/internal/obs"
	"paragon/internal/paragon"
	"paragon/internal/parmetis"
	"paragon/internal/partition"
	"paragon/internal/portfolio"
	"paragon/internal/session"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// ---- Graphs ----

// Graph is an immutable undirected CSR graph with vertex weights, vertex
// sizes, and edge weights.
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// Overlay is a mutable edge add/remove view over a Graph.
type Overlay = graph.Overlay

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int32) *Builder { return graph.NewBuilder(n) }

// NewOverlay wraps a graph for edge mutation.
func NewOverlay(g *Graph) *Overlay { return graph.NewOverlay(g) }

// ReadMETIS parses a METIS .graph stream.
func ReadMETIS(r io.Reader) (*Graph, error) { return graph.ReadMETIS(r) }

// ReadMETISFile parses a METIS .graph file.
func ReadMETISFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadMETIS(f)
}

// WriteMETIS writes a graph in METIS format.
func WriteMETIS(w io.Writer, g *Graph) error { return graph.WriteMETIS(w, g) }

// ReadEdgeList parses a "u v [w]" edge-list stream.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadBinary parses the library's binary CSR format.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteBinary writes the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ---- Synthetic datasets ----

// RMAT generates a power-law Kronecker graph (social-network class).
func RMAT(n int32, m int64, a, b, c float64, seed int64) *Graph {
	return gen.RMAT(n, m, a, b, c, seed)
}

// Mesh2D generates a triangulated FEM-style mesh.
func Mesh2D(rows, cols int32) *Graph { return gen.Mesh2D(rows, cols) }

// RoadGrid generates a near-planar road-network-like graph.
func RoadGrid(rows, cols int32, keep, diag float64, seed int64) *Graph {
	return gen.RoadGrid(rows, cols, keep, diag, seed)
}

// Dataset is a named stand-in for one of the paper's evaluation datasets.
type Dataset = gen.Dataset

// Datasets lists the paper's twelve Figure 9–11 dataset stand-ins.
func Datasets() []Dataset { return gen.Datasets() }

// ---- Hardware topology ----

// Cluster models a multicore cluster (nodes, sockets, caches, fabric).
type Cluster = topology.Cluster

// NodeSpec describes one compute node.
type NodeSpec = topology.NodeSpec

// Interconnect abstracts the network between nodes.
type Interconnect = topology.Interconnect

// PittCluster models n flat-switch 2×10-core NUMA nodes (the paper's
// PittMPICluster).
func PittCluster(nodes int) *Cluster { return topology.PittCluster(nodes) }

// GordonCluster models n 3D-torus 2×8-core NUMA nodes (the paper's
// Gordon).
func GordonCluster(nodes int) *Cluster { return topology.GordonCluster(nodes) }

// NewCluster builds a custom cluster.
func NewCluster(name string, nodes []NodeSpec, net Interconnect, lat topology.LatencyModel) (*Cluster, error) {
	return topology.NewCluster(name, nodes, net, lat)
}

// UniformMatrix returns the architecture-agnostic k×k cost matrix.
func UniformMatrix(k int) [][]float64 { return topology.UniformMatrix(k) }

// ---- Decompositions and metrics ----

// Partitioning assigns every vertex to one of K partitions.
type Partitioning = partition.Partitioning

// Quality bundles the §3 metrics (edge cut, Eq. 2 comm cost, Eq. 4 skew).
type Quality = partition.Quality

// Evaluate computes the quality metrics of a decomposition.
func Evaluate(g *Graph, p *Partitioning, c [][]float64, alpha float64) Quality {
	return partition.Evaluate(g, p, c, alpha)
}

// CommCost computes Eq. 2.
func CommCost(g *Graph, p *Partitioning, c [][]float64, alpha float64) float64 {
	return partition.CommCost(g, p, c, alpha)
}

// MigrationCost computes Eq. 3 between two decompositions.
func MigrationCost(g *Graph, old, now *Partitioning, c [][]float64) float64 {
	return partition.MigrationCost(g, old, now, c)
}

// Skewness computes Eq. 4.
func Skewness(g *Graph, p *Partitioning) float64 { return partition.Skewness(g, p) }

// ---- Initial partitioners ----

// HP hashes vertices across k partitions.
func HP(g *Graph, k int32) *Partitioning { return stream.HP(g, k) }

// DG runs the deterministic-greedy streaming partitioner (2% imbalance).
func DG(g *Graph, k int32) *Partitioning { return stream.DG(g, k, stream.DefaultOptions()) }

// LDG runs the linear deterministic-greedy streaming partitioner.
func LDG(g *Graph, k int32) *Partitioning { return stream.LDG(g, k, stream.DefaultOptions()) }

// Metis runs the multilevel partitioner (recursive bisection).
func Metis(g *Graph, k int32, seed int64) *Partitioning {
	return metis.Partition(g, k, metis.Options{Seed: seed})
}

// Repartition adapts an existing decomposition with the ParMETIS-style
// scratch-remap strategy.
func Repartition(g *Graph, old *Partitioning, seed int64) (*Partitioning, error) {
	return parmetis.Repartition(g, old, parmetis.Options{Seed: seed})
}

// ---- Refinement (the paper's contribution) ----

// Config tunes PARAGON refinement.
type Config = paragon.Config

// Stats reports what a refinement did.
type Stats = paragon.Stats

// DefaultConfig returns the paper's defaults (drp=8, 8 shuffles, α=10).
func DefaultConfig() Config { return paragon.DefaultConfig() }

// Refine improves a decomposition in place against a relative cost
// matrix (see Cluster.PartitionCostMatrix), returning statistics.
func Refine(g *Graph, p *Partitioning, c [][]float64, cfg Config) (Stats, error) {
	return paragon.Refine(g, p, c, cfg)
}

// RefineUniform runs the UNIPARAGON baseline (uniform costs).
func RefineUniform(g *Graph, p *Partitioning, cfg Config) (Stats, error) {
	return paragon.RefineUniform(g, p, cfg)
}

// RefineSerial runs the serial ARAGON refiner over all partition pairs.
func RefineSerial(g *Graph, p *Partitioning, c [][]float64, alpha, maxImbalance float64) error {
	_, err := aragon.Refine(g, p, c, aragon.Config{Alpha: alpha, MaxImbalance: maxImbalance})
	return err
}

// ---- Portfolio refinement ----

// PortfolioConfig sizes the seeded-ensemble layer (Config.Portfolio).
type PortfolioConfig = paragon.PortfolioConfig

// PortfolioStats reports what a portfolio refinement did, per member.
type PortfolioStats = portfolio.Stats

// PortfolioMemberStats is one member's line in PortfolioStats.
type PortfolioMemberStats = portfolio.MemberStats

// PortfolioPool is reusable portfolio scratch: passing one pool across
// RefinePortfolioWithPool calls on the same (graph, k) keeps allocations
// flat in the member count.
type PortfolioPool = portfolio.Pool

// Score is the shared Eq. 2–4 scorer's result (partition.ComputeScore):
// edge cut, communication cost, migration cost, and skewness, with the
// deterministic Better total order used for portfolio selection.
type Score = partition.Score

// ComputeScore evaluates the Eq. 2–4 metrics of p in one sweep. orig is
// the Eq. 3 migration reference assignment; nil scores in place.
func ComputeScore(g *Graph, p *Partitioning, orig []int32, c [][]float64, alpha float64) Score {
	return partition.ComputeScore(g, p, orig, c, alpha)
}

// RefinePortfolio races cfg.Portfolio.Size independently seeded
// refinements of p on cfg.Workers workers, scores every member with the
// Eq. 2–4 metrics, overlays the two best via the combine operator, and
// leaves the selected decomposition in p. The selection is bit-identical
// at every worker count.
func RefinePortfolio(g *Graph, p *Partitioning, c [][]float64, cfg Config) (PortfolioStats, error) {
	return portfolio.Refine(g, p, c, cfg)
}

// RefinePortfolioWithPool is RefinePortfolio on caller-owned scratch.
func RefinePortfolioWithPool(g *Graph, p *Partitioning, c [][]float64, cfg Config, pool *PortfolioPool) (PortfolioStats, error) {
	return portfolio.RefineWithPool(g, p, c, cfg, pool)
}

// ---- Observability ----

// Tracer is the deterministic structured-event tracer: install one via
// Config.Trace to receive the refinement's round/wave/pair/fault/
// exchange event stream, stamped with virtual ticks and sequence
// numbers — bit-identical for every Config.Workers value.
type Tracer = obs.Tracer

// TraceEvent is one trace record.
type TraceEvent = obs.Event

// MetricsRegistry collects the per-phase counters, gauges, and
// histograms of a refinement; install one via Config.Metrics.
type MetricsRegistry = obs.Registry

// NewTracer returns a tracer with a ring of capacity events (<= 0 picks
// the default, 65536).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WriteTrace serializes a tracer's retained events as JSONL.
func WriteTrace(w io.Writer, t *Tracer) error { return obs.WriteJSONL(w, t) }

// WriteMetrics serializes a registry in the Prometheus text exposition
// format.
func WriteMetrics(w io.Writer, r *MetricsRegistry) error { return obs.WriteProm(w, r) }

// WriteMetricsSummary renders a registry as a human per-phase table.
func WriteMetricsSummary(w io.Writer, r *MetricsRegistry) error { return obs.WriteSummary(w, r) }

// ---- Fault injection ----

// FaultConfig tunes the deterministic fault injector: a seed, a
// per-fault-point rate, and an optional scripted schedule.
type FaultConfig = faultsim.Config

// FaultInjector generates replayable fault schedules: group-server
// crashes, straggler delays, exchange message drops, and migration
// aborts, each a pure hash of (seed, coordinates). Install one via
// Config.Fabric, or set Config.FaultRate/FaultSeed to have Refine build
// its own. Its Realized method returns the schedule that fired, which
// replays bit-identically as FaultConfig.Script.
type FaultInjector = faultsim.Injector

// FaultEvent is one scripted (or realized) fault.
type FaultEvent = faultsim.Event

// FaultStats is the degraded-mode accounting block of Stats.Faults.
type FaultStats = paragon.FaultStats

// NewFaultInjector builds a deterministic fault injector.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultsim.NewInjector(cfg) }

// ---- Migration ----

// MigrationPlan schedules vertex movement between two decompositions.
type MigrationPlan = migrate.Plan

// NewMigrationPlan diffs two decompositions.
func NewMigrationPlan(old, now *Partitioning) (*MigrationPlan, error) {
	return migrate.NewPlan(old, now)
}

// MigrationStore is one rank's local vertex store.
type MigrationStore = migrate.Store

// MigrationStats reports what one migration execution did.
type MigrationStats = migrate.Stats

// MigrationAppContext carries per-vertex application state across a
// migration via save/restore hooks (§5's BFS-distance example).
type MigrationAppContext = migrate.AppContext

// ErrMigrationAborted marks a migration killed by the fault fabric;
// every rank was rolled back to its pre-plan state. Detect with
// errors.Is.
var ErrMigrationAborted = migrate.ErrAborted

// BuildMigrationStores materializes per-rank stores from a graph and its
// current decomposition.
func BuildMigrationStores(g *Graph, p *Partitioning) []*MigrationStore {
	return migrate.BuildStores(g, p)
}

// ExecuteMigration runs a migration plan over the stores, transactional
// against faults: it either commits fully or rolls back fully. A nil
// fabric runs fault-free.
func ExecuteMigration(stores []*MigrationStore, plan *MigrationPlan, ctx MigrationAppContext, fab *FaultInjector) (MigrationStats, error) {
	if fab == nil {
		return migrate.Execute(stores, plan, ctx)
	}
	return migrate.ExecuteWith(stores, plan, ctx, fab)
}

// VerifyMigration checks that the stores exactly realize a decomposition.
func VerifyMigration(stores []*MigrationStore, g *Graph, now *Partitioning) error {
	return migrate.Verify(stores, g, now)
}

// ---- Partition directory (serving layer) ----

// PartitionDirectory is the epoch-versioned serving layer: lock-free
// vertex→rank lookups against immutable epoch snapshots, crash-safe
// atomic epoch flips through a fault-injectable journal, and
// deterministic journal recovery. Wire one into Config.Directory to have
// Refine publish each committed round as an epoch.
type PartitionDirectory = dir.Directory

// DirectoryOptions tunes a PartitionDirectory (shard geometry, fault
// fabric, virtual clock, observability).
type DirectoryOptions = dir.Options

// DirectorySnapshot is one immutable committed epoch of a directory.
type DirectorySnapshot = dir.Snapshot

// DirectoryResult is a pinned-epoch lookup answer, carrying the
// stale-read forwarding hint.
type DirectoryResult = dir.Result

// ErrDirectoryPublishFailed marks an epoch publish abandoned by the
// fault layer; the previous epoch stayed live. Detect with errors.Is.
var ErrDirectoryPublishFailed = dir.ErrPublishFailed

// ErrDirectoryFutureEpoch marks a lookup pinned past the live epoch.
var ErrDirectoryFutureEpoch = dir.ErrFutureEpoch

// ErrDirectoryJournalCorrupt marks a journal whose damage exceeds the
// torn-tail model recovery absorbs.
var ErrDirectoryJournalCorrupt = dir.ErrJournalCorrupt

// NewPartitionDirectory builds a directory serving epoch 0 from a full
// assignment vector (values in [0, k)).
func NewPartitionDirectory(assign []int32, k int32, opts DirectoryOptions) (*PartitionDirectory, error) {
	return dir.New(assign, k, opts)
}

// RecoverPartitionDirectory rebuilds a directory from journal bytes,
// replaying to the last committed epoch and discarding any torn tail.
func RecoverPartitionDirectory(journal []byte, opts DirectoryOptions) (*PartitionDirectory, error) {
	return dir.Recover(journal, opts)
}

// ---- Streaming sessions (the paragond core) ----

// Session is the streaming-ingest repartitioning state machine behind
// cmd/paragond: it absorbs seeded churn batches into a live dynamic
// graph, maintains the Eq. 2–4 score incrementally, launches incremental
// refinement epochs when a TriggerPolicy fires, and publishes committed
// epochs atomically through an embedded PartitionDirectory. The whole
// (seed, schedule) run replays bit-identically at every worker count.
type Session = session.Session

// SessionConfig tunes a Session (capacity, trigger, epoch pacing,
// refinement config, fault injection, observability).
type SessionConfig = session.Config

// SessionStats is a session's cumulative accounting.
type SessionStats = session.Stats

// SessionBatchStats reports what one ingested batch did.
type SessionBatchStats = session.BatchStats

// NewSession opens a session over a base graph and its initial
// decomposition.
func NewSession(g0 *Graph, p0 *Partitioning, cfg SessionConfig) (*Session, error) {
	return session.New(g0, p0, cfg)
}

// ChurnSource is the adjacency view workload generation draws endpoints
// from; Session.Source exposes the live graph as one.
type ChurnSource = dyn.Source

// EdgeOp is one churn event (edge addition or removal).
type EdgeOp = dyn.EdgeOp

// ChurnBatch is one seeded workload step: edge churn plus vertex
// arrivals.
type ChurnBatch = dyn.Batch

// VertexArrival is one new vertex with its initial neighbor set.
type VertexArrival = dyn.Arrival

// Workload deterministically generates the churn-batch schedule a
// session ingests; same seed and config, same batches forever.
type Workload = dyn.Workload

// WorkloadConfig shapes each generated batch.
type WorkloadConfig = dyn.WorkloadConfig

// NewWorkload returns a seeded workload generator.
func NewWorkload(seed int64, cfg WorkloadConfig) *Workload {
	return dyn.NewWorkload(seed, cfg)
}

// TriggerPolicy decides when accumulated dynamism justifies a
// refinement epoch (Eq. 4 skew, churned-edge fraction, Eq. 2
// staleness).
type TriggerPolicy = dyn.TriggerPolicy

// TriggerDecision explains one trigger evaluation.
type TriggerDecision = dyn.Decision

// DefaultTrigger returns the default trigger policy.
func DefaultTrigger() TriggerPolicy { return dyn.DefaultTrigger() }

// PlaceRule selects the single-vertex arrival placement heuristic.
type PlaceRule = stream.PlaceRule

// Arrival placement rules.
const (
	PlaceDG     = stream.PlaceDG
	PlaceLDG    = stream.PlaceLDG
	PlaceFennel = stream.PlaceFennel
)

// ParsePlaceRule parses "dg", "ldg", or "fennel".
func ParsePlaceRule(s string) (PlaceRule, error) { return stream.ParsePlaceRule(s) }

// RandomChurn generates adds+removes seeded edge events against g.
func RandomChurn(g *Graph, adds, removes int, seed int64) []EdgeOp {
	return dyn.RandomChurn(g, adds, removes, seed)
}

// ---- Execution simulator ----

// Engine executes vertex programs on a modeled cluster.
type Engine = bsp.Engine

// EngineOptions tunes the simulator's cost model.
type EngineOptions = bsp.Options

// RunResult is the outcome of a simulated job (JET, volume breakdown).
type RunResult = bsp.Result

// NewEngine binds a graph, a decomposition, and a cluster (partition i
// runs on core i).
func NewEngine(g *Graph, p *Partitioning, cl *Cluster, opts EngineOptions) (*Engine, error) {
	return bsp.NewEngine(g, p, cl, opts)
}

// BFS runs breadth-first search from src on the engine.
func BFS(e *Engine, g *Graph, src int32) ([]int64, RunResult, error) {
	return apps.BFS(e, g, src)
}

// SSSP runs single-source shortest path from src on the engine.
func SSSP(e *Engine, g *Graph, src int32) ([]int64, RunResult, error) {
	return apps.SSSP(e, g, src)
}

// PageRank runs iters damped PageRank rounds on the engine.
func PageRank(e *Engine, g *Graph, iters int) ([]int64, RunResult, error) {
	return apps.PageRank(e, g, iters)
}
