package graph

import "fmt"

// Builder accumulates edges and produces an immutable CSR Graph. Edges may
// be added in any order and in either direction; duplicates are merged by
// summing their weights. Self-loops are dropped. Builders are not safe for
// concurrent use.
type Builder struct {
	n     int32
	src   []int32
	dst   []int32
	w     []int32
	vwgt  []int32
	vsize []int32
}

// NewBuilder returns a builder for a graph with n vertices. All vertex
// weights and sizes default to 1.
func NewBuilder(n int32) *Builder {
	b := &Builder{n: n, vwgt: make([]int32, n), vsize: make([]int32, n)}
	for i := range b.vwgt {
		b.vwgt[i] = 1
		b.vsize[i] = 1
	}
	return b
}

// Reserve pre-sizes the edge staging arrays for `edges` AddEdge calls, so
// streaming a known-size edge set (a generator shard merge, a file load)
// does not pay O(log m) growth reallocations — at the 10M-vertex scale
// the staging arrays are the peak allocation of a build.
func (b *Builder) Reserve(edges int64) {
	if int64(cap(b.src)) >= edges {
		return
	}
	b.src = append(make([]int32, 0, edges), b.src...)
	b.dst = append(make([]int32, 0, edges), b.dst...)
	b.w = append(make([]int32, 0, edges), b.w...)
}

// NumVertices returns the number of vertices the builder was created with.
func (b *Builder) NumVertices() int32 { return b.n }

// AddEdge records the undirected edge {u,v} with weight 1.
func (b *Builder) AddEdge(u, v int32) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge {u,v} with weight w.
// Out-of-range endpoints or non-positive weights panic: they indicate a
// programming error in the generator or loader feeding the builder.
func (b *Builder) AddWeightedEdge(u, v, w int32) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %d on (%d,%d)", w, u, v))
	}
	if u == v {
		return // drop self-loops, as METIS does
	}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
	b.w = append(b.w, w)
}

// AppendIsolated appends (ascending) every vertex that no staged edge
// touches. It scans the staging arrays, not a built graph — duplicate
// edges still mark both endpoints — so generators can attach isolates
// without paying for a throwaway Build.
func (b *Builder) AppendIsolated(dst []int32) []int32 {
	touched := make([]uint64, (int64(b.n)+63)/64)
	for i := range b.src {
		touched[b.src[i]>>6] |= 1 << (uint32(b.src[i]) & 63)
		touched[b.dst[i]>>6] |= 1 << (uint32(b.dst[i]) & 63)
	}
	for v := int32(0); v < b.n; v++ {
		if touched[v>>6]&(1<<(uint32(v)&63)) == 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// SetVertexWeight sets w(v) for the vertex under construction.
func (b *Builder) SetVertexWeight(v, w int32) { b.vwgt[v] = w }

// SetVertexSize sets vs(v) for the vertex under construction.
func (b *Builder) SetVertexSize(v, s int32) { b.vsize[v] = s }

// Build produces the CSR graph: it symmetrizes, sorts each adjacency list,
// and merges duplicate edges by summing weights. The builder may be reused
// afterwards, though that is rarely useful.
//
// Sorting is a single global counting pass, not a per-vertex comparison
// sort: pass A buckets every half-edge by its destination vertex, pass B
// replays the destinations in ascending order and scatters each bucket
// into its sources' CSR regions — so every region fills in ascending
// neighbor order as a side effect of the scan order. O(|V| + |E|) time,
// a constant number of O(|E|)-sized allocations, and no comparison sorts
// or per-vertex temporaries, which is what lets a 10M-vertex graph build
// near-linearly. Duplicates of an edge land adjacently and are merged by
// summing (order-free), so the output is identical to a sort-based build.
func (b *Builder) Build() *Graph {
	n := int64(b.n)
	// Count half-edges per vertex (each input edge contributes to both
	// ends); deg doubles as the bucket and region offset table since the
	// graph is symmetric.
	deg := make([]int64, n+1)
	for i := range b.src {
		deg[b.src[i]+1]++
		deg[b.dst[i]+1]++
	}
	for v := int64(1); v <= n; v++ {
		deg[v] += deg[v-1]
	}
	xadj := deg // prefix sums; deg[v] is now the start offset of v's list
	m := int64(len(b.src)) * 2
	// Pass A: bucket half-edges by destination, recording the source and
	// weight. Order within a bucket is irrelevant — pass B's scan order
	// is what sorts the output.
	bsrc := make([]int32, m)
	bw := make([]int32, m)
	fill := make([]int64, n)
	for i := range b.src {
		u, v, w := b.src[i], b.dst[i], b.w[i]
		p := xadj[u] + fill[u]
		bsrc[p], bw[p] = v, w // half-edge v->u, bucketed at destination u
		fill[u]++
		p = xadj[v] + fill[v]
		bsrc[p], bw[p] = u, w
		fill[v]++
	}
	// Pass B: replay destinations ascending; each source's region
	// receives its neighbors in ascending order.
	clear(fill)
	adj := make([]int32, m)
	ewgt := make([]int32, m)
	for d := int64(0); d < n; d++ {
		for p := xadj[d]; p < xadj[d+1]; p++ {
			s := bsrc[p]
			q := xadj[s] + fill[s]
			adj[q], ewgt[q] = int32(d), bw[p]
			fill[s]++
		}
	}
	// Merge duplicates in place (lists are sorted, duplicates adjacent).
	outAdj := adj[:0]
	outW := ewgt[:0]
	newXadj := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		lo, hi := xadj[v], xadj[v+1]
		newXadj[v] = int64(len(outAdj))
		for i := lo; i < hi; i++ {
			if k := len(outAdj); k > int(newXadj[v]) && outAdj[k-1] == adj[i] {
				outW[k-1] += ewgt[i] // merge duplicate edge
			} else {
				outAdj = append(outAdj, adj[i])
				outW = append(outW, ewgt[i])
			}
		}
	}
	newXadj[n] = int64(len(outAdj))
	g := &Graph{
		xadj:  newXadj,
		adj:   append([]int32(nil), outAdj...),
		ewgt:  append([]int32(nil), outW...),
		vwgt:  append([]int32(nil), b.vwgt...),
		vsize: append([]int32(nil), b.vsize...),
	}
	return g
}

// FromCSR constructs a Graph directly from raw CSR arrays. The arrays are
// copied. It validates the result and is intended for tests and loaders
// that already hold symmetric CSR data.
func FromCSR(xadj []int64, adj, ewgt, vwgt, vsize []int32) (*Graph, error) {
	g := &Graph{
		xadj:  append([]int64(nil), xadj...),
		adj:   append([]int32(nil), adj...),
		ewgt:  append([]int32(nil), ewgt...),
		vwgt:  append([]int32(nil), vwgt...),
		vsize: append([]int32(nil), vsize...),
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
