package vertexcut

import (
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/topology"
)

func TestRandomAssignsEveryEdge(t *testing.T) {
	g := gen.RMAT(1000, 5000, 0.57, 0.19, 0.19, 1)
	a := Random(g, 8)
	if a.EdgeCount() != g.NumEdges() {
		t.Fatalf("assigned %d of %d edges", a.EdgeCount(), g.NumEdges())
	}
	var sum int64
	for _, l := range a.EdgeLoad {
		sum += l
	}
	if sum != g.NumEdges() {
		t.Fatalf("edge loads sum to %d, want %d", sum, g.NumEdges())
	}
	for _, p := range a.EdgePart {
		if p < 0 || p >= 8 {
			t.Fatalf("edge partition %d out of range", p)
		}
	}
}

func TestReplicaInvariant(t *testing.T) {
	// Every vertex with degree > 0 must have >= 1 replica; every edge's
	// partition must hold replicas of both endpoints.
	g := gen.BarabasiAlbert(500, 3, 2)
	for name, a := range map[string]*Assignment{
		"random": Random(g, 6),
		"greedy": Greedy(g, 6),
		"hdrf":   HDRF(g, 6, 2),
	} {
		idx := 0
		for v := int32(0); v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if v < u {
					p := a.EdgePart[idx]
					if !a.has(v, p) || !a.has(u, p) {
						t.Fatalf("%s: edge %d-%d in %d lacks endpoint replicas", name, v, u, p)
					}
					idx++
				}
			}
			if g.Degree(v) > 0 && a.ReplicaCount(v) < 1 {
				t.Fatalf("%s: vertex %d has no replica", name, v)
			}
		}
	}
}

func TestReplicationFactorOrdering(t *testing.T) {
	// On power-law graphs: HDRF and Greedy must replicate far less than
	// Random (the reason vertex-cut heuristics exist).
	g := gen.RMAT(4000, 24000, 0.57, 0.19, 0.19, 3)
	rf := func(a *Assignment) float64 { return a.ReplicationFactor() }
	rnd, grd, hdrf := rf(Random(g, 16)), rf(Greedy(g, 16)), rf(HDRF(g, 16, 2))
	if grd >= rnd {
		t.Fatalf("greedy RF %.2f not below random %.2f", grd, rnd)
	}
	if hdrf >= rnd {
		t.Fatalf("HDRF RF %.2f not below random %.2f", hdrf, rnd)
	}
	if rnd < 1 || grd < 1 || hdrf < 1 {
		t.Fatalf("replication factors below 1: %v %v %v", rnd, grd, hdrf)
	}
}

func TestHDRFBalancesBetterThanGreedy(t *testing.T) {
	// Greedy collapses onto few partitions on power-law graphs; HDRF's
	// balance term prevents that.
	g := gen.BarabasiAlbert(3000, 5, 4)
	grd := Greedy(g, 12).LoadImbalance()
	hdrf := HDRF(g, 12, 2).LoadImbalance()
	if hdrf > grd+0.2 {
		t.Fatalf("HDRF imbalance %.2f much worse than greedy %.2f", hdrf, grd)
	}
	if hdrf > 1.6 {
		t.Fatalf("HDRF imbalance %.2f too high", hdrf)
	}
}

func TestSyncCostTopologyAware(t *testing.T) {
	g := gen.RMAT(2000, 12000, 0.57, 0.19, 0.19, 5)
	cl := topology.PittCluster(2)
	c, err := cl.PartitionCostMatrix(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := HDRF(g, 16, 2)
	cost := SyncCost(a, c)
	if cost <= 0 {
		t.Fatal("sync cost must be positive for a replicated assignment")
	}
	// Uniform matrix cost equals total replicas minus masters.
	uni := topology.UniformMatrix(16)
	var extra int64
	for v := int32(0); v < g.NumVertices(); v++ {
		if rc := a.ReplicaCount(v); rc > 1 {
			extra += int64(rc - 1)
		}
	}
	if got := SyncCost(a, uni); got != float64(extra) {
		t.Fatalf("uniform sync cost %v, want %d", got, extra)
	}
}

func TestPanicsOnBadK(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Random(g, 0)
}

func TestManyPartitionsBitset(t *testing.T) {
	// k > 64 exercises multi-word replica bitsets.
	g := gen.ErdosRenyi(500, 2500, 7)
	a := HDRF(g, 100, 4)
	if a.ReplicationFactor() < 1 {
		t.Fatal("replication factor below 1")
	}
	if a.LoadImbalance() > 3 {
		t.Fatalf("imbalance %.2f", a.LoadImbalance())
	}
}

// Property: for all assigners, loads sum to the edge count and the
// replica sets cover edge endpoints.
func TestQuickAssignersValid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int32(kRaw%20) + 2
		g := gen.ErdosRenyi(200, 600, seed)
		for _, a := range []*Assignment{Random(g, k), Greedy(g, k), HDRF(g, k, 2)} {
			var sum int64
			for _, l := range a.EdgeLoad {
				sum += l
			}
			if sum != g.NumEdges() {
				return false
			}
			if a.ReplicationFactor() < 1 && g.NumEdges() > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
