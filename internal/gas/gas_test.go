package gas

import (
	"testing"
	"testing/quick"

	"paragon/internal/apps"
	"paragon/internal/bsp"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/stream"
	"paragon/internal/topology"
	"paragon/internal/vertexcut"
)

func testEngine(t *testing.T, g *graph.Graph, k int32) *Engine {
	t.Helper()
	a := vertexcut.HDRF(g, k, 2)
	e, err := NewEngine(g, a, topology.PittCluster(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineErrors(t *testing.T) {
	g := gen.Mesh2D(6, 6)
	a := vertexcut.Random(g, 4)
	// Assignment from a different graph (edge count mismatch).
	g2 := gen.Mesh2D(8, 8)
	if _, err := NewEngine(g2, a, topology.PittCluster(1), Options{}); err == nil {
		t.Fatal("expected edge-count error")
	}
	big := vertexcut.Random(g, 100)
	if _, err := NewEngine(g, big, topology.UMACluster(1), Options{}); err == nil {
		t.Fatal("expected too-many-partitions error")
	}
}

func TestRunNeedsProgram(t *testing.T) {
	g := gen.Mesh2D(4, 4)
	e := testEngine(t, g, 4)
	if _, err := e.Run(Program{}); err == nil {
		t.Fatal("expected program error")
	}
}

func TestComponentsMatchesReference(t *testing.T) {
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	b.AddEdge(7, 8)
	g := b.Build()
	e := testEngine(t, g, 3)
	res, err := Components(e, g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 0, 3, 3, 5, 5, 5, 5, 9}
	for v, l := range res.Values {
		if l != want[v] {
			t.Fatalf("component[%d] = %d, want %d", v, l, want[v])
		}
	}
	if res.JET <= 0 || res.Iterations < 2 {
		t.Fatalf("implausible run: %+v", res)
	}
}

func TestComponentsLargeGraph(t *testing.T) {
	g := gen.RMAT(2000, 8000, 0.57, 0.19, 0.19, 3)
	e := testEngine(t, g, 16)
	res, err := Components(e, g)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := graph.ConnectedComponents(g)
	// GAS labels are min-vertex-ids; reference labels are component
	// indexes. Same grouping <=> equal label iff equal component.
	repr := map[int32]int64{}
	for v := int32(0); v < g.NumVertices(); v++ {
		c := comp[v]
		if r, ok := repr[c]; ok {
			if res.Values[v] != r {
				t.Fatalf("vertex %d label %d, component representative %d", v, res.Values[v], r)
			}
		} else {
			repr[c] = res.Values[v]
		}
	}
}

func TestPageRankGASMass(t *testing.T) {
	g := gen.BarabasiAlbert(800, 3, 4)
	e := testEngine(t, g, 8)
	res, err := PageRank(e, g, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 12 {
		t.Fatalf("iterations = %d, want 12", res.Iterations)
	}
	var sum int64
	for _, r := range res.Values {
		sum += r
	}
	if sum < PageRankScale*80/100 || sum > PageRankScale*105/100 {
		t.Fatalf("mass = %d, want ≈ %d", sum, PageRankScale)
	}
}

func TestPageRankGASMatchesBSP(t *testing.T) {
	// The same fixed-point PageRank over the two execution models must
	// agree closely (identical update rule, different partitioning).
	g := gen.ErdosRenyi(400, 1600, 6)
	e := testEngine(t, g, 8)
	resGAS, err := PageRank(e, g, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := stream.HP(g, 8)
	be, err := bsp.NewEngine(g, p, topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bspRanks, _, err := apps.PageRank(be, g, 10)
	if err != nil {
		t.Fatal(err)
	}
	for v := range bspRanks {
		diff := bspRanks[v] - resGAS.Values[v]
		if diff < 0 {
			diff = -diff
		}
		// Integer division orders differ slightly; tolerate 1% of scale/n.
		if diff > PageRankScale/int64(g.NumVertices())/10+5 {
			t.Fatalf("vertex %d: BSP %d vs GAS %d", v, bspRanks[v], resGAS.Values[v])
		}
	}
}

func TestHDRFSyncVolumeBelowRandom(t *testing.T) {
	// The PowerGraph/HDRF motivation, §8: fewer replicas => less replica
	// synchronization traffic for the same computation.
	g := gen.RMAT(3000, 18000, 0.57, 0.19, 0.19, 8)
	cl := topology.PittCluster(2)
	run := func(a *vertexcut.Assignment) int64 {
		e, err := NewEngine(g, a, cl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Components(e, g)
		if err != nil {
			t.Fatal(err)
		}
		return res.Volume.Total()
	}
	vRandom := run(vertexcut.Random(g, 32))
	vHDRF := run(vertexcut.HDRF(g, 32, 2))
	if vHDRF >= vRandom {
		t.Fatalf("HDRF sync volume %d not below random %d", vHDRF, vRandom)
	}
}

func TestIsolatedVertices(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	g := b.Build() // vertices 2,3,4 isolated
	a := vertexcut.Greedy(g, 2)
	e, err := NewEngine(g, a, topology.PittCluster(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Components(e, g)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(2); v < 5; v++ {
		if res.Values[v] != int64(v) {
			t.Fatalf("isolated vertex %d label %d", v, res.Values[v])
		}
	}
}

func TestIterationGuard(t *testing.T) {
	g := gen.Mesh2D(4, 4)
	a := vertexcut.Random(g, 2)
	e, err := NewEngine(g, a, topology.PittCluster(1), Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A program that always reports change must hit the guard.
	prog := Program{
		Init:   func(v int32) int64 { return 0 },
		Gather: func(v, u int32, uVal int64, w int32) int64 { return 1 },
		Sum:    func(a, b int64) int64 { return a + b },
		Apply:  func(v int32, old, sum int64, hasSum bool) (int64, bool) { return old + 1, true },
	}
	if _, err := e.Run(prog); err == nil {
		t.Fatal("expected iteration-guard error")
	}
}

// Property: GAS components equals the serial reference for arbitrary
// random graphs under all three assigners.
func TestQuickComponentsEquivalence(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		g := gen.ErdosRenyi(150, 300, seed) // sparse: several components
		var a *vertexcut.Assignment
		switch which % 3 {
		case 0:
			a = vertexcut.Random(g, 6)
		case 1:
			a = vertexcut.Greedy(g, 6)
		default:
			a = vertexcut.HDRF(g, 6, 2)
		}
		e, err := NewEngine(g, a, topology.GordonCluster(1), Options{})
		if err != nil {
			return false
		}
		res, err := Components(e, g)
		if err != nil {
			return false
		}
		comp, _ := graph.ConnectedComponents(g)
		repr := map[int32]int64{}
		for v := int32(0); v < g.NumVertices(); v++ {
			if r, ok := repr[comp[v]]; ok {
				if res.Values[v] != r {
					return false
				}
			} else {
				repr[comp[v]] = res.Values[v]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
