// Package lint is a small stdlib-only static-analysis framework plus the
// repo-specific checkers behind cmd/paragonlint. PARAGON's correctness
// story rests on bit-identical seeded runs (the golden FNV-hash tests pin
// refinement output), and the bug classes that silently break that
// contract — map-iteration-order leaks, ambient randomness, wall-clock
// reads in kernels, racy fan-out, reorder-sensitive float accumulation —
// are exactly the ones no stock Go tool catches. The checkers here encode
// the determinism contract of DESIGN.md as machine-checked rules.
//
// The framework is deliberately minimal: a package loader built on
// go/parser + go/types (load.go), positioned diagnostics, line-scoped
// `//lint:ignore <checker> <reason>` suppressions (ignore.go), and a
// runner that applies a checker suite to loaded packages. It has no
// dependency outside the standard library.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked package as seen by checkers.
type Package struct {
	// Path is the import path (or a synthetic path for fixture packages).
	Path string
	// Dir is the directory the files were loaded from.
	Dir string
	// Fset positions all files of this load.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the use/def/type maps checkers resolve through.
	Info *types.Info
	// TypeErrors collects soft type-check errors (the checkers still run;
	// resolution may be partial).
	TypeErrors []error
}

// Diagnostic is one checker finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Checker string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Checker, d.Message)
}

// Checker is one analysis run over a single package.
type Checker interface {
	// Name is the short identifier used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check reports diagnostics for pkg. Suppression filtering happens in
	// the runner; checkers report every finding.
	Check(pkg *Package) []Diagnostic
}

// Run applies every checker to every package, drops suppressed findings,
// appends framework diagnostics for malformed //lint:ignore directives,
// and returns the result sorted by position.
func Run(pkgs []*Package, checkers []Checker) []Diagnostic {
	known := make(map[string]bool, len(checkers))
	for _, c := range checkers {
		known[c.Name()] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg, known)
		out = append(out, ig.malformed...)
		for _, c := range checkers {
			for _, d := range c.Check(pkg) {
				if ig.suppresses(c.Name(), d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
		// The staleness sweep runs last: only after every checker has
		// consulted the suppression state is "never used" meaningful.
		if known["staleignore"] {
			for _, d := range ig.stale() {
				if ig.suppresses("staleignore", d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Checker < b.Checker
	})
	return out
}

// diag is the checkers' shared constructor.
func diag(pkg *Package, pos token.Pos, checker, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Checker: checker,
		Message: fmt.Sprintf(format, args...),
	}
}
