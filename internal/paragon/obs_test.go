package paragon

import (
	"bytes"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/obs"
	"paragon/internal/stream"
)

// TestObsDeterminismAcrossWorkers pins the observability half of the
// determinism contract (DESIGN.md §10, §13): for a fixed (Seed,
// FaultSeed, FaultRate), the serialized trace and metrics must be
// byte-identical at every Workers value — worker count may change wall
// clock and memory placement, never what the run observes about itself.
// Fault injection is on so the fault/retry/backoff event paths are
// exercised, not just the happy path.
func TestObsDeterminismAcrossWorkers(t *testing.T) {
	g := gen.RMAT(3000, 18000, 0.57, 0.19, 0.19, 11)
	g.UseDegreeWeights()

	run := func(workers int) (string, string, Stats) {
		p := stream.DG(g, 24, stream.DefaultOptions())
		tr := obs.NewTracer(0)
		reg := obs.NewRegistry()
		st, err := RefineUniform(g, p, Config{
			DRP: 4, Shuffles: 4, Seed: 9, Workers: workers,
			FaultRate: 0.05, FaultSeed: 3,
			Trace: tr, Metrics: reg,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var trace, prom bytes.Buffer
		if err := obs.WriteJSONL(&trace, tr); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteProm(&prom, reg); err != nil {
			t.Fatal(err)
		}
		if tr.Len() == 0 {
			t.Fatalf("workers=%d: empty trace", workers)
		}
		return trace.String(), prom.String(), st
	}

	refTrace, refProm, refStats := run(1)
	for _, w := range []int{2, 8} {
		gotTrace, gotProm, gotStats := run(w)
		if gotTrace != refTrace {
			t.Errorf("workers=%d: trace differs from workers=1 (%d vs %d bytes)", w, len(gotTrace), len(refTrace))
		}
		if gotProm != refProm {
			t.Errorf("workers=%d: metrics exposition differs from workers=1:\n%s\nvs\n%s", w, gotProm, refProm)
		}
		if gotStats.Moves != refStats.Moves || gotStats.Gain != refStats.Gain {
			t.Errorf("workers=%d: stats drifted (moves %d vs %d)", w, gotStats.Moves, refStats.Moves)
		}
	}
}

// TestObsMetricsAgreeWithStats cross-checks the registry against the
// Stats the same run returned: the two accounting paths must agree.
func TestObsMetricsAgreeWithStats(t *testing.T) {
	g := gen.RMAT(2000, 12000, 0.57, 0.19, 0.19, 5)
	g.UseDegreeWeights()
	p := stream.DG(g, 16, stream.DefaultOptions())
	reg := obs.NewRegistry()
	st, err := RefineUniform(g, p, Config{DRP: 4, Shuffles: 3, Seed: 2, FaultRate: 0.05, FaultSeed: 7, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		want int64
	}{
		{"refine_rounds_total", int64(st.Rounds)},
		{"refine_pairs_total", int64(st.PairsRefined)},
		{"refine_moves_total", int64(st.Moves)},
		{"ship_boundary_vertices_total", st.BoundaryShipped},
		{"ship_half_edges_total", st.ShippedEdgeVolume},
		{"exchange_bytes_total", st.LocationExchangeBytes},
		{"exchange_retries_total", int64(st.Faults.ExchangeRetries)},
		{"exchange_aborts_total", int64(st.Faults.ExchangeAborts)},
		{"fault_crashed_groups_total", int64(st.Faults.CrashedGroups)},
		{"fault_straggler_drops_total", int64(st.Faults.StragglerDrops)},
		{"fault_backoff_ticks_total", st.Faults.BackoffTicks},
		{"migrate_vertices_total", st.MigratedVertices},
	}
	for _, ck := range checks {
		if got := reg.Counter(ck.name, "").Value(); got != ck.want {
			t.Errorf("%s = %d, Stats says %d", ck.name, got, ck.want)
		}
	}
	if got := reg.Gauge("refine_gain", "").Value(); got != st.Gain {
		t.Errorf("refine_gain = %v, Stats says %v", got, st.Gain)
	}
	if got := reg.Gauge("migrate_cost", "").Value(); got != st.MigrationCost {
		t.Errorf("migrate_cost = %v, Stats says %v", got, st.MigrationCost)
	}
	if got := reg.Gauge("fault_virtual_ticks", "").Value(); got != float64(st.Faults.VirtualTicks) {
		t.Errorf("fault_virtual_ticks = %v, Stats says %d", got, st.Faults.VirtualTicks)
	}
}

// TestObsTraceAccountsEveryRound asserts the stream's structural
// invariants: one round_start/round_end per committed round, wave events
// properly bracketed, and the pair_refined moves of a round summing to
// the round_end total.
func TestObsTraceAccountsEveryRound(t *testing.T) {
	g := gen.RMAT(2000, 12000, 0.57, 0.19, 0.19, 5)
	g.UseDegreeWeights()
	p := stream.DG(g, 16, stream.DefaultOptions())
	tr := obs.NewTracer(0)
	st, err := RefineUniform(g, p, Config{DRP: 4, Shuffles: 3, Seed: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	ev := tr.Events()
	if ev[0].Kind != obs.KindRefineStart || ev[len(ev)-1].Kind != obs.KindRefineEnd {
		t.Fatalf("stream not bracketed by refine_start/refine_end: %v ... %v", ev[0].Kind, ev[len(ev)-1].Kind)
	}
	starts, ends := 0, 0
	pairMoves := map[int32]int64{}
	roundEnd := map[int32]int64{}
	for _, e := range ev {
		switch e.Kind {
		case obs.KindRoundStart:
			starts++
		case obs.KindRoundEnd:
			ends++
			roundEnd[e.Round] = e.N
		case obs.KindPairRefined:
			pairMoves[e.Round] += e.N
		}
	}
	if starts != st.Rounds || ends != st.Rounds {
		t.Fatalf("round_start=%d round_end=%d, Stats.Rounds=%d", starts, ends, st.Rounds)
	}
	for round, want := range roundEnd {
		if pairMoves[round] != want {
			t.Errorf("round %d: pair_refined moves sum to %d, round_end says %d", round, pairMoves[round], want)
		}
	}
	if int(tr.Events()[len(ev)-1].N) != st.Moves {
		t.Errorf("refine_end N = %d, Stats.Moves = %d", ev[len(ev)-1].N, st.Moves)
	}
}
