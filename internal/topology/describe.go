package topology

import (
	"fmt"
	"strings"
)

// Describe renders the cluster as an hwloc/lstopo-style tree — the view
// an operator uses to sanity-check the model against the real machine
// before trusting the cost matrix derived from it.
func (c *Cluster) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster %q: %d nodes, %d cores, %s\n", c.Name, len(c.Nodes), c.total, c.Net.Name())
	fmt.Fprintf(&b, "latency: shared-L2 %.1f, intra-socket %.1f, inter-socket %.1f, inter-node %.1f (+%.1f/hop, max %d hops)\n",
		c.Latency.SharedL2, c.Latency.IntraSocket, c.Latency.InterSocket,
		c.Latency.InterNodeBase, c.Latency.PerHop, c.Net.MaxHops())
	rank := 0
	for ni, spec := range c.Nodes {
		fmt.Fprintf(&b, "node %d (%s, %d sockets × %d cores)\n", ni, spec.Arch, spec.Sockets, spec.CoresPerSocket)
		for s := 0; s < spec.Sockets; s++ {
			fmt.Fprintf(&b, "  socket %d:", s)
			for cIdx := 0; cIdx < spec.CoresPerSocket; cIdx++ {
				if spec.L2GroupSize > 1 && cIdx%spec.L2GroupSize == 0 {
					b.WriteString(" [")
				} else if spec.L2GroupSize > 1 && cIdx%spec.L2GroupSize != 0 {
					b.WriteString(" ")
				} else {
					b.WriteString(" ")
				}
				fmt.Fprintf(&b, "core%d", rank)
				if spec.L2GroupSize > 1 && (cIdx+1)%spec.L2GroupSize == 0 {
					b.WriteString("]")
				}
				rank++
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
