package partition

import "paragon/internal/graph"

// NeighborProfile is a per-vertex partition-weight table: entry (v, q)
// holds Σ w(v,u) over neighbors u owned by partition q under a reference
// assignment. The scheduled uniform refiner seeds each candidate's
// pair-local external degrees from two O(log t) lookups here instead of
// an O(deg) adjacency scan per pair — on a tournament round every
// boundary vertex is a candidate of m−1 pairs, so the scan repeats its
// random-access walk of the frozen view m−1 times while the profile
// answers from one contiguous, presorted segment. The weights are exact
// integer sums, so a profile lookup returns bit-for-bit the value the
// scan would.
//
// The reference assignment is the scheduler's wave-start frozen view:
// after each wave barrier, MoveNeighbor replays the wave's kept moves
// (cost proportional to the moved vertices' degrees, never |V|), keeping
// the profile in lockstep with the frozen patches of the delta
// round-sync discipline (DESIGN.md §14).
//
// Layout: one CSR-style segment per vertex, entries sorted by partition,
// live entries exactly the partitions with nonzero weight. A vertex's
// segment capacity is min(deg(v), k) — the most distinct nonzero
// partitions its neighbors can occupy — so updates never spill.
type NeighborProfile struct {
	off   []int32 // v -> start of v's segment (capacity ends at off[v+1])
	end   []int32 // v -> one past the live entries of v's segment
	parts []int32 // partition per entry, ascending within a segment
	ws    []int64 // summed edge weight per entry, always > 0
}

// BuildNeighborProfile constructs the profile of g under assign in
// O(|V| + |E|), with k the partition count.
func BuildNeighborProfile(g *graph.Graph, assign []int32, k int32) *NeighborProfile {
	n := g.NumVertices()
	np := &NeighborProfile{off: make([]int32, int(n)+1), end: make([]int32, n)}
	var total int64
	for v := int32(0); v < n; v++ {
		np.off[v] = int32(total)
		c := int64(g.Degree(v))
		if c > int64(k) {
			c = int64(k)
		}
		total += c
	}
	np.off[n] = int32(total)
	np.parts = make([]int32, total)
	np.ws = make([]int64, total)
	buf := make([]int64, k)
	mask := make([]uint64, MaskWords(k))
	var tl []int32
	for v := int32(0); v < n; v++ {
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		w = w[:len(adj)]
		for i, u := range adj {
			q := assign[u]
			buf[q] += int64(w[i])
			mask[q>>6] |= 1 << (q & 63)
		}
		tl = drainMask(mask, tl[:0])
		base := int(np.off[v])
		for i, q := range tl {
			np.parts[base+i] = q
			np.ws[base+i] = buf[q]
			buf[q] = 0
		}
		np.end[v] = int32(base + len(tl))
	}
	return np
}

// Get returns Σ w(v,u) over neighbors u owned by partition q — zero when
// no neighbor is. Binary search over v's sorted segment.
func (np *NeighborProfile) Get(v, q int32) int64 {
	lo, hi := int(np.off[v]), int(np.end[v])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if np.parts[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(np.end[v]) && np.parts[lo] == q {
		return np.ws[lo]
	}
	return 0
}

// GetPair returns (Get(v, a), Get(v, b)) from one walk of v's segment —
// the delta-mode seeding path, which always needs both sides of a pair.
// Small segments scan linearly (one or two cache lines, hardware
// prefetched); large ones fall back to two binary searches.
func (np *NeighborProfile) GetPair(v, a, b int32) (wa, wb int64) {
	base, end := int(np.off[v]), int(np.end[v])
	if end-base <= 32 {
		parts := np.parts[base:end]
		ws := np.ws[base:end]
		for i, q := range parts {
			if q == a {
				wa = ws[i]
			} else if q == b {
				wb = ws[i]
			}
		}
		return wa, wb
	}
	return np.Get(v, a), np.Get(v, b)
}

// MoveNeighbor records that v's neighbor moved from partition `from` to
// `to`, shifting the connecting edge weight w between the two entries of
// v's segment. O(t) worst case for the entry insert/remove shift, with
// t = live entries of v.
func (np *NeighborProfile) MoveNeighbor(v, from, to int32, w int64) {
	if from == to || w == 0 {
		return
	}
	base, end := int(np.off[v]), int(np.end[v])
	// Decrement (and possibly remove) the `from` entry; it must exist.
	i := np.lowerBound(base, end, from)
	np.ws[i] -= w
	if np.ws[i] == 0 {
		copy(np.parts[i:end-1], np.parts[i+1:end])
		copy(np.ws[i:end-1], np.ws[i+1:end])
		end--
		np.end[v] = int32(end)
	}
	// Increment (or insert) the `to` entry.
	j := np.lowerBound(base, end, to)
	if j < end && np.parts[j] == to {
		np.ws[j] += w
		return
	}
	copy(np.parts[j+1:end+1], np.parts[j:end])
	copy(np.ws[j+1:end+1], np.ws[j:end])
	np.parts[j] = to
	np.ws[j] = w
	np.end[v] = int32(end + 1)
}

func (np *NeighborProfile) lowerBound(lo, hi int, q int32) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if np.parts[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
