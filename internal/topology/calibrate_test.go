package topology

import (
	"math"
	"testing"
)

func TestCalibrateRecoversKnownModel(t *testing.T) {
	// Generate synthetic "measurements" from a known model on Gordon
	// (32 nodes: multiple hop counts), then fit and compare.
	truth := SlowNetworkLatency()
	cl := GordonCluster(32)
	cl.Latency = truth
	var samples []LatencySample
	// Dense sampling over a rank subset covering all classes.
	ranks := []int{0, 1, 8, 9, 16, 17, 16 * 16, 16*16 + 1, 25 * 16, 30 * 16, 500}
	for _, a := range ranks {
		for _, b := range ranks {
			if a != b {
				samples = append(samples, LatencySample{a, b, cl.Cost(a, b) * 3.7}) // arbitrary unit scale
			}
		}
	}
	fit, err := CalibrateLatency(cl, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Fitted values are normalized to the cheapest class (intra-socket
	// shares value with SharedL2 on NUMA nodes); compare ratios against
	// the truth's ratios.
	ratio := func(m LatencyModel) [3]float64 {
		return [3]float64{
			m.InterSocket / m.IntraSocket,
			m.InterNodeBase / m.IntraSocket,
			m.PerHop / m.IntraSocket,
		}
	}
	want, got := ratio(truth), ratio(fit)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 0.05*want[i]+1e-9 {
			t.Fatalf("ratio %d: fit %v vs truth %v (full fit %+v)", i, got[i], want[i], fit)
		}
	}
}

func TestCalibrateSingleHopCount(t *testing.T) {
	// Flat switch: all inter-node pairs are 1 hop; PerHop must fit to 0
	// with the base carrying the whole cost.
	cl := PittCluster(3)
	samples := []LatencySample{
		{0, 1, 2},   // intra-socket
		{0, 10, 4},  // inter-socket
		{0, 20, 30}, // inter-node
		{0, 40, 30}, // inter-node
	}
	fit, err := CalibrateLatency(cl, samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PerHop != 0 {
		t.Fatalf("PerHop = %v, want 0 for single hop count", fit.PerHop)
	}
	if math.Abs(fit.InterNodeBase-15) > 1e-9 { // 30 normalized by cheapest (2)
		t.Fatalf("InterNodeBase = %v, want 15", fit.InterNodeBase)
	}
	if fit.IntraSocket != 1 || fit.InterSocket != 2 {
		t.Fatalf("class fits: %+v", fit)
	}
}

func TestCalibrateFallbacksForUnmeasuredClasses(t *testing.T) {
	cl := PittCluster(2)
	// Only intra-socket measured.
	fit, err := CalibrateLatency(cl, []LatencySample{{0, 1, 7}, {1, 2, 7}})
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultLatency()
	if fit.IntraSocket != 1 {
		t.Fatalf("intra-socket = %v", fit.IntraSocket)
	}
	if fit.InterSocket != def.InterSocket || fit.InterNodeBase != def.InterNodeBase || fit.PerHop != def.PerHop {
		t.Fatalf("unmeasured classes should keep defaults: %+v", fit)
	}
}

func TestCalibrateErrors(t *testing.T) {
	cl := PittCluster(1)
	if _, err := CalibrateLatency(cl, nil); err == nil {
		t.Fatal("expected no-samples error")
	}
	// Garbage samples only.
	bad := []LatencySample{
		{0, 0, 5},    // same rank
		{-1, 3, 5},   // out of range
		{0, 1, -2},   // non-positive latency
		{0, 9999, 5}, // out of range
	}
	if _, err := CalibrateLatency(cl, bad); err == nil {
		t.Fatal("expected error for unusable samples")
	}
}

func TestCalibratedModelDrivesCluster(t *testing.T) {
	// End-to-end: fit a model, install it, and verify cost ordering.
	cl := PittCluster(2)
	fit, err := CalibrateLatency(cl, []LatencySample{
		{0, 1, 1.1}, {0, 10, 3.9}, {0, 20, 14.5}, {1, 21, 15.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Latency = fit
	if !(cl.Cost(0, 1) < cl.Cost(0, 10) && cl.Cost(0, 10) < cl.Cost(0, 20)) {
		t.Fatalf("ordering violated after calibration: %v %v %v",
			cl.Cost(0, 1), cl.Cost(0, 10), cl.Cost(0, 20))
	}
}
