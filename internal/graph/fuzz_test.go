package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Parser fuzzing: whatever bytes arrive, the readers must either return
// an error or a graph that passes Validate — never panic, never produce
// a corrupt CSR.

func FuzzParseMETIS(f *testing.F) {
	f.Add("3 3\n2 3\n1 3\n1 2\n")
	f.Add("2 1 11\n1 1 2 5\n1 1 1 5\n")
	f.Add("% comment\n1 0\n\n")
	f.Add("3 2 100\n7 2\n7 1 3\n7 2\n")
	f.Add("junk")
	f.Add("-1 0\n")         // negative n once flowed into make() and panicked
	f.Add("1 -5\n\n")       // negative m
	f.Add("2147483648 0\n") // n overflows int32
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, in)
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 3\n# c\n")
	f.Add("100 200 5\n")
	f.Add("a b\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, in)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g := buildPaperGraph()
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PARG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
	})
}
