package aragonlb

import (
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func costMatrix(k int) [][]float64 {
	cl := topology.PittCluster(2)
	m, err := cl.PartitionCostMatrix(k, 0)
	if err != nil {
		panic(err)
	}
	return m
}

func TestRepartitionRebalances(t *testing.T) {
	g := gen.Mesh2D(24, 24)
	g.UseDegreeWeights()
	// Overload partition 0 with 60% of the graph.
	p := partition.New(6, g.NumVertices())
	for v := int32(0); v < g.NumVertices(); v++ {
		if int(v) < int(g.NumVertices())*6/10 {
			p.Assign[v] = 0
		} else {
			p.Assign[v] = 1 + v%5
		}
	}
	before := partition.Skewness(g, p)
	st, err := Repartition(g, p, costMatrix(6), Config{MaxImbalance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	after := partition.Skewness(g, p)
	if after >= before {
		t.Fatalf("skew not reduced: %.3f -> %.3f", before, after)
	}
	if after > 1.25 {
		t.Fatalf("residual skew %.3f too high", after)
	}
	if st.RebalanceMoves == 0 {
		t.Fatal("no rebalance moves recorded")
	}
}

func TestRepartitionImprovesCommCost(t *testing.T) {
	g := gen.RMAT(2000, 12000, 0.57, 0.19, 0.19, 3)
	g.UseDegreeWeights()
	k := 8
	c := costMatrix(k)
	p := stream.HP(g, int32(k))
	before := partition.CommCost(g, p, c, 10)
	orig := p.Clone()
	st, err := Repartition(g, p, c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	after := partition.CommCost(g, p, c, 10) + partition.MigrationCost(g, orig, p, c)
	if after >= before {
		t.Fatalf("objective not improved: %.0f -> %.0f", before, after)
	}
	if st.Gain <= 0 || st.RefineMoves == 0 {
		t.Fatalf("refinement did nothing: %+v", st)
	}
}

func TestShippedVolumeIsWholeGraph(t *testing.T) {
	g := gen.ErdosRenyi(500, 2000, 5)
	p := stream.DG(g, 4, stream.DefaultOptions())
	st, err := Repartition(g, p, costMatrix(4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(g.NumVertices())*12 + g.NumHalfEdges()*12
	if st.ShippedVolume != want {
		t.Fatalf("shipped %d, want whole graph %d", st.ShippedVolume, want)
	}
}

func TestParagonShipsLessThanAragonLB(t *testing.T) {
	// The headline limitation PARAGON fixes: ARAGONLB ships the whole
	// graph to one server, PARAGON ships only (k-hop) boundary sets.
	g := gen.Mesh2D(30, 30) // meshes have small boundaries
	g.UseDegreeWeights()
	k := 8
	c := costMatrix(k)
	initial := stream.DG(g, int32(k), stream.DefaultOptions())

	pLB := initial.Clone()
	stLB, err := Repartition(g, pLB, c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pPar := initial.Clone()
	stPar, err := paragon.Refine(g, pPar, c, paragon.Config{DRP: 4, Shuffles: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// PARAGON volume: shipped boundary vertices and their edge lists.
	parBytes := stPar.BoundaryShipped*12 + stPar.ShippedEdgeVolume*12
	if parBytes >= stLB.ShippedVolume {
		t.Fatalf("PARAGON shipped %d, ARAGONLB %d — boundary shipping should win on a mesh",
			parBytes, stLB.ShippedVolume)
	}
}

func TestRepartitionErrors(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 1)
	bad := partition.New(4, 3)
	if _, err := Repartition(g, bad, costMatrix(4), Config{}); err == nil {
		t.Fatal("expected validation error")
	}
	p := stream.HP(g, 4)
	if _, err := Repartition(g, p, topology.UniformMatrix(2), Config{}); err == nil {
		t.Fatal("expected matrix-size error")
	}
}

// Property: Repartition keeps decompositions valid and conserves weight.
func TestQuickRepartitionValid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int32(kRaw%6) + 2
		g := gen.ErdosRenyi(250, 800, seed)
		g.UseDegreeWeights()
		p := stream.HP(g, k)
		if _, err := Repartition(g, p, costMatrix(int(k)), Config{MaxImbalance: 0.1}); err != nil {
			return false
		}
		if err := p.Validate(g); err != nil {
			return false
		}
		var total int64
		for _, w := range p.Weights(g) {
			total += w
		}
		return total == g.TotalVertexWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
