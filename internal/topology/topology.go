// Package topology models the hardware of multicore HPC clusters: compute
// nodes (UMA or NUMA, Figure 2 of the paper), sockets, cache-sharing core
// groups, and the interconnect between nodes (flat switch or 3D torus).
// From the model it derives the relative network communication cost matrix
// c(Pi, Pj) that drives every architecture-aware decision in PARAGON, the
// intra-node shared-resource-contention penalty of Eq. 12, and the
// communication classification (intra-socket / inter-socket / inter-node)
// used for the volume breakdowns of Figures 12–13.
//
// The paper measures these costs with an osu_latency variant on real
// clusters; this package substitutes an analytic latency model that
// reproduces the orderings and magnitudes driving the algorithm (shared
// cache < intra-socket < inter-socket < one network hop < many hops).
package topology

import (
	"fmt"
)

// Arch distinguishes the two compute-node architectures of Figure 2.
type Arch int

const (
	// UMA is the front-side-bus architecture of Figure 2a: sockets share
	// one off-chip memory controller, and pairs of cores share an L2.
	UMA Arch = iota
	// NUMA is the architecture of Figure 2b: per-socket memory
	// controllers and an inter-socket link (QPI/HT), per-socket L3.
	NUMA
)

func (a Arch) String() string {
	switch a {
	case UMA:
		return "UMA"
	case NUMA:
		return "NUMA"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// NodeSpec describes one compute node. The paper's refinement explicitly
// allows heterogeneous nodes (ARAGONLB assumed homogeneous ones), so a
// Cluster carries one NodeSpec per node.
type NodeSpec struct {
	Sockets        int  // number of CPU sockets
	CoresPerSocket int  // physical cores per socket
	Arch           Arch // memory architecture
	// L2GroupSize is the number of adjacent cores sharing an L2 cache
	// (Figure 2a's pairs). 1 means private L2 (Figure 2b). Must divide
	// CoresPerSocket.
	L2GroupSize int
}

// Cores returns the number of cores on the node.
func (n NodeSpec) Cores() int { return n.Sockets * n.CoresPerSocket }

// Validate checks the spec for internal consistency.
func (n NodeSpec) Validate() error {
	if n.Sockets < 1 || n.CoresPerSocket < 1 {
		return fmt.Errorf("topology: node needs >=1 socket and core, got %d/%d", n.Sockets, n.CoresPerSocket)
	}
	if n.L2GroupSize < 1 || n.CoresPerSocket%n.L2GroupSize != 0 {
		return fmt.Errorf("topology: L2 group size %d must divide cores per socket %d", n.L2GroupSize, n.CoresPerSocket)
	}
	return nil
}

// Interconnect abstracts the network between compute nodes.
type Interconnect interface {
	// Hops returns the number of switch hops between two nodes. Zero
	// means the nodes hang off the same switch.
	Hops(a, b int) int
	// MaxHops returns the largest possible hop count for the topology.
	MaxHops() int
	// Name identifies the topology for reports.
	Name() string
}

// FlatSwitch is a single-switch (full crossbar) interconnect: every pair
// of distinct nodes is one hop apart, as in the paper's PittMPICluster.
type FlatSwitch struct{}

// Hops implements Interconnect.
func (FlatSwitch) Hops(a, b int) int {
	if a == b {
		return 0
	}
	return 1
}

// MaxHops implements Interconnect.
func (FlatSwitch) MaxHops() int { return 1 }

// Name implements Interconnect.
func (FlatSwitch) Name() string { return "flat switch" }

// Torus3D is an X×Y×Z torus of switches with NodesPerSwitch compute nodes
// attached to each switch, as in the paper's Gordon supercomputer
// (4×4×4, 16 nodes per switch). Node i hangs off switch i/NodesPerSwitch.
type Torus3D struct {
	X, Y, Z        int
	NodesPerSwitch int
}

// Hops implements Interconnect: the Manhattan distance on the torus
// between the switches owning the two nodes (0 when they share a switch).
func (t Torus3D) Hops(a, b int) int {
	sa, sb := a/t.NodesPerSwitch, b/t.NodesPerSwitch
	if sa == sb {
		return 0
	}
	ax, ay, az := t.coords(sa)
	bx, by, bz := t.coords(sb)
	return torusDist(ax, bx, t.X) + torusDist(ay, by, t.Y) + torusDist(az, bz, t.Z)
}

// MaxHops implements Interconnect.
func (t Torus3D) MaxHops() int { return t.X/2 + t.Y/2 + t.Z/2 }

// Name implements Interconnect.
func (t Torus3D) Name() string {
	return fmt.Sprintf("%dx%dx%d 3D torus (%d nodes/switch)", t.X, t.Y, t.Z, t.NodesPerSwitch)
}

func (t Torus3D) coords(s int) (x, y, z int) {
	x = s % t.X
	y = (s / t.X) % t.Y
	z = s / (t.X * t.Y)
	return
}

func torusDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// LatencyModel holds the relative cost of each communication class. The
// defaults reproduce the qualitative ratios of §2.1: intra-node is an
// order of magnitude cheaper than inter-node, and both are themselves
// non-uniform. Costs are relative (unitless); only ratios matter to the
// refiner, exactly as with the paper's osu_latency-derived matrices.
type LatencyModel struct {
	SharedL2      float64 // cores sharing an L2 cache
	IntraSocket   float64 // same socket, no shared L2 (through L3/FSB)
	InterSocket   float64 // same node, different sockets
	InterNodeBase float64 // nodes on the same switch (0 hops)
	PerHop        float64 // additional cost per switch hop
}

// DefaultLatency returns the model used throughout the reproduction:
// a 56 Gbps-class network where one network hop costs ~10× an
// intra-socket exchange.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		SharedL2:      1,
		IntraSocket:   2,
		InterSocket:   4,
		InterNodeBase: 10,
		PerHop:        5,
	}
}

// SlowNetworkLatency returns a model for an 8 Gbps-class oversubscribed
// torus (the paper's Gordon): network costs dominate more strongly.
func SlowNetworkLatency() LatencyModel {
	return LatencyModel{
		SharedL2:      1,
		IntraSocket:   2,
		InterSocket:   4,
		InterNodeBase: 20,
		PerHop:        10,
	}
}

// CommClass classifies the relationship between two cores; the BSP
// simulator uses it for the Figure 12/13 volume breakdown and Eq. 12 uses
// it to decide where the contention penalty applies.
type CommClass int

const (
	SameCore CommClass = iota
	SharedL2
	IntraSocket
	InterSocket
	InterNode
)

func (c CommClass) String() string {
	switch c {
	case SameCore:
		return "same-core"
	case SharedL2:
		return "shared-L2"
	case IntraSocket:
		return "intra-socket"
	case InterSocket:
		return "inter-socket"
	case InterNode:
		return "inter-node"
	default:
		return fmt.Sprintf("CommClass(%d)", int(c))
	}
}

// CoreLoc locates a global core rank within the cluster.
type CoreLoc struct {
	Node    int // compute node index
	Socket  int // socket within the node
	Core    int // core within the socket
	L2Group int // L2 sharing group within the socket
}

// Cluster is a collection of compute nodes joined by an interconnect,
// with a latency model for deriving relative communication costs. One MPI
// rank is assumed per physical core ("one partition per core", §7).
type Cluster struct {
	Name    string
	Nodes   []NodeSpec
	Net     Interconnect
	Latency LatencyModel

	coreBase []int // prefix sums of cores per node
	total    int
}

// NewCluster builds and validates a cluster.
func NewCluster(name string, nodes []NodeSpec, net Interconnect, lat LatencyModel) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("topology: cluster %q has no nodes", name)
	}
	if net == nil {
		return nil, fmt.Errorf("topology: cluster %q has no interconnect", name)
	}
	c := &Cluster{Name: name, Nodes: nodes, Net: net, Latency: lat}
	c.coreBase = make([]int, len(nodes)+1)
	for i, n := range nodes {
		if err := n.Validate(); err != nil {
			return nil, fmt.Errorf("topology: cluster %q node %d: %w", name, i, err)
		}
		c.coreBase[i+1] = c.coreBase[i] + n.Cores()
	}
	c.total = c.coreBase[len(nodes)]
	return c, nil
}

// TotalCores returns the number of cores (= ranks) in the cluster.
func (c *Cluster) TotalCores() int { return c.total }

// Loc maps a global core rank to its location. Ranks are laid out node by
// node, socket by socket, matching how MPI ranks are bound in the paper.
func (c *Cluster) Loc(rank int) CoreLoc {
	if rank < 0 || rank >= c.total {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, c.total))
	}
	// Binary search over coreBase.
	lo, hi := 0, len(c.Nodes)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if c.coreBase[mid] <= rank {
			lo = mid
		} else {
			hi = mid
		}
	}
	node := lo
	within := rank - c.coreBase[node]
	spec := c.Nodes[node]
	socket := within / spec.CoresPerSocket
	core := within % spec.CoresPerSocket
	return CoreLoc{
		Node:    node,
		Socket:  socket,
		Core:    core,
		L2Group: core / spec.L2GroupSize,
	}
}

// Class returns the communication class between two ranks.
func (c *Cluster) Class(r1, r2 int) CommClass {
	if r1 == r2 {
		return SameCore
	}
	a, b := c.Loc(r1), c.Loc(r2)
	if a.Node != b.Node {
		return InterNode
	}
	if a.Socket != b.Socket {
		return InterSocket
	}
	spec := c.Nodes[a.Node]
	if spec.L2GroupSize > 1 && a.L2Group == b.L2Group {
		return SharedL2
	}
	return IntraSocket
}

// Cost returns the relative communication cost between two ranks under
// the cluster's latency model. Cost(r, r) is 0.
func (c *Cluster) Cost(r1, r2 int) float64 {
	switch c.Class(r1, r2) {
	case SameCore:
		return 0
	case SharedL2:
		return c.Latency.SharedL2
	case IntraSocket:
		return c.Latency.IntraSocket
	case InterSocket:
		return c.Latency.InterSocket
	default:
		hops := c.Net.Hops(c.Loc(r1).Node, c.Loc(r2).Node)
		return c.Latency.InterNodeBase + c.Latency.PerHop*float64(hops)
	}
}

// CostMatrix returns the full |ranks|×|ranks| relative cost matrix — the
// c(Pi, Pj) input of the paper under the one-partition-per-core mapping.
func (c *Cluster) CostMatrix() [][]float64 {
	m := make([][]float64, c.total)
	for i := range m {
		m[i] = make([]float64, c.total)
		for j := range m[i] {
			m[i][j] = c.Cost(i, j)
		}
	}
	return m
}

// MaxInterNodeCost returns the paper's s1: the maximal inter-node cost in
// the cluster.
func (c *Cluster) MaxInterNodeCost() float64 {
	maxHops := c.Net.MaxHops()
	return c.Latency.InterNodeBase + c.Latency.PerHop*float64(maxHops)
}

// MaxInterSocketCost returns the paper's s2 basis: the maximal
// inter-socket cost within a node.
func (c *Cluster) MaxInterSocketCost() float64 { return c.Latency.InterSocket }
