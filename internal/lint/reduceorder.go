package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReduceOrder flags float reductions that fold results in goroutine
// completion order. Floating-point addition is not associative, so a
// reduction over values produced by concurrent workers is bit-identical
// across runs only when the fold happens in a fixed order — the repo's
// convention is shard-order: workers deposit partials into slots indexed
// by a static shard id and the coordinator folds the slice front to
// back (partialSums in the scheduler, sweepShards everywhere else).
//
// The checker reports two shapes that violate the convention:
//
//   - a float accumulation whose right-hand side contains a channel
//     receive (sum += <-results): the fold order is whichever worker
//     finishes first;
//   - a float accumulation inside a `for range ch` body whose target is
//     declared outside the loop: same completion-order fold, spelled as
//     a collector loop.
//
// Integer folds of the same shape are fine (associative + commutative),
// as is receiving all partials into an indexed slice and folding it
// afterwards — that is the fix this checker points at.
//
// ReduceOrder deliberately complements floatsum, which flags float
// accumulation *inside* goroutine bodies and map-range loops; this
// checker covers the collection side, where the partials come home.
type ReduceOrder struct{}

func (ReduceOrder) Name() string { return "reduceorder" }
func (ReduceOrder) Doc() string {
	return "float reductions over goroutine results must fold in shard order, not completion order"
}

func (c ReduceOrder) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				out = append(out, c.checkAssign(pkg, n)...)
			case *ast.RangeStmt:
				out = append(out, c.checkRangeChan(pkg, n)...)
			}
			return true
		})
	}
	return out
}

// checkAssign flags float accumulations whose RHS performs a channel
// receive: sum += <-partials.
func (c ReduceOrder) checkAssign(pkg *Package, n *ast.AssignStmt) []Diagnostic {
	if !isAccumAssign(n) || len(n.Lhs) != 1 {
		return nil
	}
	if !isFloatExpr(pkg, n.Lhs[0]) {
		return nil
	}
	if !containsReceive(n.Rhs[0]) {
		return nil
	}
	return []Diagnostic{diag(pkg, n.Pos(), "reduceorder",
		"float accumulation into %s folds channel receives in completion order; deposit partials into a shard-indexed slice and fold it in order",
		exprString(n.Lhs[0]))}
}

// checkRangeChan flags float accumulations inside `for range ch` bodies
// targeting variables declared outside the loop.
func (c ReduceOrder) checkRangeChan(pkg *Package, n *ast.RangeStmt) []Diagnostic {
	t := typeOf(pkg, n.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return nil
	}
	var out []Diagnostic
	ast.Inspect(n.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || !isAccumAssign(as) || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloatExpr(pkg, lhs) {
			return true
		}
		if declaredWithin(pkg, lhs, n.Body) {
			return true
		}
		out = append(out, diag(pkg, as.Pos(), "reduceorder",
			"float accumulation into %s inside a channel-range loop folds partials in completion order; deposit into a shard-indexed slice and fold it in order",
			exprString(lhs)))
		return true
	})
	return out
}

// isAccumAssign reports x += e, x -= e, and x = x ± e.
func isAccumAssign(n *ast.AssignStmt) bool {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return true
	case token.ASSIGN:
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return false
		}
		be, ok := n.Rhs[0].(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return false
		}
		return exprString(be.X) == exprString(n.Lhs[0])
	}
	return false
}

// containsReceive reports whether e contains a channel receive.
func containsReceive(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}

// declaredWithin reports whether the base identifier of lhs is declared
// inside the given node's span.
func declaredWithin(pkg *Package, lhs ast.Expr, within ast.Node) bool {
	base := lhs
	for {
		switch x := base.(type) {
		case *ast.IndexExpr:
			base = x.X
		case *ast.SelectorExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.ParenExpr:
			base = x.X
		default:
			id, ok := base.(*ast.Ident)
			if !ok {
				return false
			}
			obj := objectOf(pkg, id)
			if obj == nil {
				return false
			}
			return obj.Pos() >= within.Pos() && obj.Pos() <= within.End()
		}
	}
}
