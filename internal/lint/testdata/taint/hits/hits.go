// Package tainthits exercises interprocedural taint: the clock read
// hides two unexported helpers below the exported kernel surface, where
// the per-function wallclock checker's kernel predicate cannot see the
// connection.
package tainthits

import "time"

// Entry is the kernel entry point reachability starts from.
func Entry() int64 { return helper() }

func helper() int64 { return stamp() }

func stamp() int64 { return time.Now().UnixNano() }
