package aragon

import (
	"sync"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

var (
	hotBenchOnce  sync.Once
	hotBenchGraph *graph.Graph
)

func benchGraph100k() *graph.Graph {
	hotBenchOnce.Do(func() {
		g := gen.RMAT(100_000, 800_000, 0.57, 0.19, 0.19, 42)
		g.UseDegreeWeights()
		hotBenchGraph = g
	})
	return hotBenchGraph
}

// BenchmarkRefinePairHot measures refinement of a single partition pair
// on a 100k-vertex graph — the innermost unit of work PARAGON fans out
// k(k-1)/2m times per group per round. The index is built outside the
// timed region, as in a real sweep where one index amortizes over all
// k(k-1)/2 pairs.
func BenchmarkRefinePairHot(b *testing.B) {
	for _, k := range []int32{32, 128} {
		b.Run(map[int32]string{32: "k=32", 128: "k=128"}[k], func(b *testing.B) {
			g := benchGraph100k()
			p0 := stream.HP(g, k)
			orig := append([]int32(nil), p0.Assign...)
			c := topology.UniformMatrix(int(k))
			maxLoad := partition.BalanceBound(g, k, 0.02)
			cfg := Config{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := p0.Clone()
				loads := p.Weights(g)
				r := NewRefiner(g, partition.BuildIndex(g, p), cfg)
				b.StartTimer()
				r.RefinePair(orig, 0, 1, c, loads, maxLoad, nil)
			}
		})
	}
}
