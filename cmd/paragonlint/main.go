// Command paragonlint runs the repo-specific static-analysis suite of
// internal/lint over the tree. It enforces the determinism contract of
// DESIGN.md: seeded runs must be bit-identical, so map-iteration order,
// ambient randomness, kernel clock reads, unsynchronized fan-out,
// reorder-sensitive float accumulation, goroutine writes outside the
// arena/barrier commit protocol, and stale suppressions are
// machine-checked instead of hoped for.
//
// Usage:
//
//	paragonlint [-list] [-checkers a,b] [-kernel] [-json file] [-sarif file] [packages]
//
// Package patterns follow the go tool's directory forms ("./...",
// "./internal/...", plain directories). With no pattern, ./... is
// assumed. The exit status is 1 when any diagnostic is reported, so the
// command slots directly into scripts/ci.sh between `go vet` and the
// tests. Findings are suppressed site by site with
// `//lint:ignore <checker> <reason>`; the staleignore checker fails the
// gate when a suppression no longer matches a live diagnostic.
//
// The wallclock kernel set is not a hand-maintained list: the suite
// builds a CHA call graph over the loaded packages and computes the set
// as everything reachable from the kernel entry surface — the module
// facade plus the baseline partitioner and exchange APIs (-kernel prints
// it). The taint checker walks the same graph to flag nondeterminism
// sources hiding in helpers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"paragon/internal/lint"
)

// rootSurfaces are the kernel entry surfaces, as module-relative paths
// ("" is the facade package at the module root). Exported functions of
// these packages are the reachability roots: everything they can call is
// kernel code and must be clock-free, ambient-rand-free, and
// map-order-clean. The facade covers the refinement/partition/stream/
// trace APIs; aragonlb, zoltan, and mizan are the baseline partitioners
// driven directly by the experiment layer; exchange is the location
// service driven by the same layer. Driver code (cmd/*, internal/exp)
// stays outside the surface, so its wall-clock use never enters the set.
var rootSurfaces = []string{
	"",
	"internal/aragonlb",
	"internal/exchange",
	"internal/mizan",
	"internal/zoltan",
}

func main() {
	list := flag.Bool("list", false, "list the checkers and exit")
	sel := flag.String("checkers", "", "comma-separated subset of checkers to run (default all)")
	kernel := flag.Bool("kernel", false, "print the computed wallclock kernel package set and exit")
	jsonOut := flag.String("json", "", "also write diagnostics as JSON to this file (\"-\" for stdout)")
	sarifOut := flag.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to this file")
	flag.Parse()

	if *list {
		for _, c := range suite(nil, nil) {
			fmt.Printf("%-11s %s\n", c.Name(), c.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "paragonlint: type error (continuing): %v\n", terr)
		}
	}

	// Interprocedural state: the call graph spans the checked packages
	// plus every module-internal dependency the loader pulled in, and the
	// root surfaces are force-loaded so a partial run (e.g. a single
	// subdirectory) still computes the same kernel set as the full tree.
	rootPaths := loadRootSurfaces(loader)
	analysis := loader.AllLoaded()
	graph := lint.BuildCallGraph(analysis)
	roots := graph.ExportedRoots(rootPaths...)
	kernelSet := graph.ReachablePackages(roots)
	if *kernel {
		var paths []string
		for p := range kernelSet {
			paths = append(paths, p)
		}
		// ReachablePackages returns a set; print it sorted.
		sort.Strings(paths)
		for _, p := range paths {
			fmt.Println(p)
		}
		return
	}

	checkers := suite(lint.NewTaint(graph, roots, pkgs, analysis), kernelSet)
	if *sel != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*sel, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var subset []lint.Checker
		for _, c := range checkers {
			if want[c.Name()] {
				subset = append(subset, c)
			}
		}
		if len(subset) == 0 {
			fmt.Fprintf(os.Stderr, "paragonlint: no checker matches %q\n", *sel)
			os.Exit(2)
		}
		checkers = subset
	}

	diags := lint.Run(pkgs, checkers)
	if *jsonOut != "" {
		if err := writeArtifact(*jsonOut, func(w *os.File) error {
			return lint.WriteJSON(w, cwd, diags)
		}); err != nil {
			fatal(err)
		}
	}
	if *sarifOut != "" {
		if err := writeArtifact(*sarifOut, func(w *os.File) error {
			return lint.WriteSARIF(w, cwd, checkers, diags)
		}); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "-" {
		for _, d := range diags {
			pos := d.Pos
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
			fmt.Printf("%s: %s: %s\n", pos, d.Checker, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "paragonlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// suite assembles the full checker list. taint may be a zero-value
// placeholder (for -list) and kernelSet nil (wallclock then reports
// nothing — there is no kernel without a call graph).
func suite(taint *lint.Taint, kernelSet map[string]bool) []lint.Checker {
	if taint == nil {
		taint = &lint.Taint{}
	}
	return []lint.Checker{
		lint.MapRange{},
		lint.GlobalRand{},
		lint.WallClock{Kernel: func(path string) bool { return kernelSet[path] }},
		lint.LoopRace{},
		lint.FloatSum{},
		lint.SharedWrite{},
		lint.ReduceOrder{},
		taint,
		lint.StaleIgnore{},
	}
}

// loadRootSurfaces ensures the kernel entry surfaces are part of the
// loader's analysis set and returns their import paths. Surfaces missing
// from the module (fixture trees) are skipped.
func loadRootSurfaces(loader *lint.Loader) []string {
	var paths []string
	for _, rel := range rootSurfaces {
		if _, err := loader.LoadDir(filepath.Join(moduleRootOf(loader), filepath.FromSlash(rel))); err != nil {
			continue
		}
		if rel == "" {
			paths = append(paths, loader.Module())
		} else {
			paths = append(paths, loader.Module()+"/"+rel)
		}
	}
	return paths
}

// moduleRootOf recovers the module root directory from the loader. The
// loader resolves any directory through the module root, so walking up
// from the working directory repeats NewLoader's search.
func moduleRootOf(loader *lint.Loader) string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

func writeArtifact(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paragonlint:", err)
	os.Exit(2)
}
