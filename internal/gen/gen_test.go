package gen

import (
	"testing"
	"testing/quick"

	"paragon/internal/graph"
)

func TestRMATBasics(t *testing.T) {
	g := RMAT(1000, 5000, 0.57, 0.19, 0.19, 42)
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d, want 1000", g.NumVertices())
	}
	// Duplicate collisions make the exact count undershoot slightly.
	if g.NumEdges() < 4000 || g.NumEdges() > 5000+int64(g.NumVertices()) {
		t.Fatalf("edges = %d, want near 5000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	g1 := RMAT(500, 2000, 0.57, 0.19, 0.19, 7)
	g2 := RMAT(500, 2000, 0.57, 0.19, 0.19, 7)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for v := int32(0); v < g1.NumVertices(); v++ {
		a1, a2 := g1.Neighbors(v), g2.Neighbors(v)
		if len(a1) != len(a2) {
			t.Fatalf("vertex %d degree differs across runs", v)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("vertex %d adjacency differs across runs", v)
			}
		}
	}
	g3 := RMAT(500, 2000, 0.57, 0.19, 0.19, 8)
	same := g3.NumEdges() == g1.NumEdges()
	if same {
		diff := false
		for v := int32(0); v < g1.NumVertices() && !diff; v++ {
			a1, a3 := g1.Neighbors(v), g3.Neighbors(v)
			if len(a1) != len(a3) {
				diff = true
				break
			}
			for i := range a1 {
				if a1[i] != a3[i] {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT(4096, 40000, 0.57, 0.19, 0.19, 3)
	// A power-law graph must have a hub far above the average degree.
	if g.MaxDegree() < 4*int32(g.AvgDegree()) {
		t.Fatalf("RMAT not skewed: max degree %d vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATPanics(t *testing.T) {
	for i, f := range []func(){
		func() { RMAT(1, 10, 0.5, 0.2, 0.2, 1) },
		func() { RMAT(100, 10, 0, 0.2, 0.2, 1) },
		func() { RMAT(100, 10, 0.5, 0.3, 0.3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(2000, 4, 9)
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every vertex attaches with k edges, so min degree >= 1 and the
	// graph is connected by construction.
	_, comps := graph.ConnectedComponents(g)
	if comps != 1 {
		t.Fatalf("BA graph has %d components, want 1", comps)
	}
	if g.MaxDegree() < 3*int32(g.AvgDegree()) {
		t.Fatalf("BA graph lacks hubs: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 2000, 5)
	if g.NumEdges() != 2000 {
		t.Fatalf("edges = %d, want exactly 2000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on impossible m")
		}
	}()
	ErdosRenyi(3, 100, 1)
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(1000, 3, 0.1, 12)
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Ring lattice with k=3 gives ~3n edges, rewiring keeps the count close.
	if g.NumEdges() < 2800 || g.NumEdges() > 3000 {
		t.Fatalf("edges = %d, want ≈3000", g.NumEdges())
	}
}

func TestMesh2D(t *testing.T) {
	g := Mesh2D(10, 12)
	if g.NumVertices() != 120 {
		t.Fatalf("vertices = %d, want 120", g.NumVertices())
	}
	// Edges: horizontal 10*11 + vertical 9*12 + diagonal 9*11.
	want := int64(10*11 + 9*12 + 9*11)
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	_, comps := graph.ConnectedComponents(g)
	if comps != 1 {
		t.Fatalf("mesh has %d components", comps)
	}
	if g.MaxDegree() > 8 {
		t.Fatalf("mesh max degree %d, want <= 8", g.MaxDegree())
	}
}

func TestMesh3D(t *testing.T) {
	g := Mesh3D(4, 5, 6)
	if g.NumVertices() != 120 {
		t.Fatalf("vertices = %d, want 120", g.NumVertices())
	}
	want := int64(3*5*6 + 4*4*6 + 4*5*5)
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if g.MaxDegree() > 6 {
		t.Fatalf("3D mesh max degree %d, want <= 6", g.MaxDegree())
	}
}

func TestRoadGrid(t *testing.T) {
	g := RoadGrid(50, 50, 0.72, 0.05, 77)
	if g.NumVertices() != 2500 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	avg := g.AvgDegree()
	if avg < 2.0 || avg > 3.5 {
		t.Fatalf("road network avg degree %.2f outside road-like band [2.0,3.5]", avg)
	}
	// No isolated vertices by construction.
	for v := int32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) == 0 {
			t.Fatalf("vertex %d isolated", v)
		}
	}
}

func TestSampleEdges(t *testing.T) {
	base := ErdosRenyi(400, 4000, 3)
	half := SampleEdges(base, 0.5, 10)
	if half.NumVertices() != base.NumVertices() {
		t.Fatalf("sampling changed vertex count")
	}
	ratio := float64(half.NumEdges()) / float64(base.NumEdges())
	if ratio < 0.42 || ratio > 0.58 {
		t.Fatalf("sample ratio %.3f far from 0.5", ratio)
	}
	full := SampleEdges(base, 1.0, 10)
	if full.NumEdges() != base.NumEdges() {
		t.Fatalf("p=1 sample dropped edges: %d vs %d", full.NumEdges(), base.NumEdges())
	}
	none := SampleEdges(base, 0.0, 10)
	if none.NumEdges() != 0 {
		t.Fatalf("p=0 sample kept %d edges", none.NumEdges())
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 12 {
		t.Fatalf("registry has %d datasets, want 12 (Figures 9–11)", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset name %q", d.Name)
		}
		seen[d.Name] = true
		g := d.Build(0.02)
		if g.NumVertices() < 4 {
			t.Fatalf("%s at scale 0.02 produced %d vertices", d.Name, g.NumVertices())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", d.Name, err)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("com-lj")
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != "Social Network" {
		t.Fatalf("com-lj class = %q", d.Class)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestFriendsterSeries(t *testing.T) {
	series := FriendsterSeries(0.01)
	if len(series) != 4 {
		t.Fatalf("series length %d, want 4", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Graph.NumEdges() <= series[i-1].Graph.NumEdges() {
			t.Fatalf("series not increasing: p=%.2f has %d edges, p=%.2f has %d",
				series[i-1].P, series[i-1].Graph.NumEdges(),
				series[i].P, series[i].Graph.NumEdges())
		}
		if series[i].Graph.NumVertices() != series[0].Graph.NumVertices() {
			t.Fatal("sampling should keep the vertex set fixed, as the paper observed")
		}
	}
}

// Property: every generator output validates and has no self loops at any
// small scale.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed int64) bool {
		n := int32(seed%200+64) * 1
		if n < 64 {
			n = 64
		}
		for _, g := range []*graph.Graph{
			RMAT(n, int64(n)*4, 0.57, 0.19, 0.19, seed),
			ErdosRenyi(n, int64(n)*2, seed),
			BarabasiAlbert(n, 3, seed),
			WattsStrogatz(n, 2, 0.2, seed),
		} {
			if err := g.Validate(); err != nil {
				t.Logf("invalid: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// clusteringCoefficient estimates the global clustering coefficient by
// sampling triangles around up to 500 vertices.
func clusteringCoefficient(g *graph.Graph) float64 {
	var tri, wedges int64
	step := g.NumVertices()/500 + 1
	for v := int32(0); v < g.NumVertices(); v += step {
		adj := g.Neighbors(v)
		d := len(adj)
		if d < 2 {
			continue
		}
		wedges += int64(d) * int64(d-1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(adj[i], adj[j]) {
					tri++
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	return float64(tri) / float64(wedges)
}

func TestHolmeKim(t *testing.T) {
	g := HolmeKim(3000, 4, 0.8, 11)
	if g.NumVertices() != 3000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Power-law hubs, like BA.
	if g.MaxDegree() < 3*int32(g.AvgDegree()) {
		t.Fatalf("no hubs: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	// Triad formation must raise clustering well above plain BA.
	ba := BarabasiAlbert(3000, 4, 11)
	ccHK := clusteringCoefficient(g)
	ccBA := clusteringCoefficient(ba)
	if ccHK <= ccBA {
		t.Fatalf("Holme-Kim clustering %.4f not above BA %.4f", ccHK, ccBA)
	}
}

func TestHolmeKimPanics(t *testing.T) {
	for i, f := range []func(){
		func() { HolmeKim(3, 4, 0.5, 1) },
		func() { HolmeKim(100, 3, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
