// Package fixture uses ambient randomness; every use below must be
// reported.
package fixture

import (
	"math/rand"
	"time"
)

// Package-level helpers draw from the shared global source.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func pick(n int) int {
	return rand.Intn(n)
}

// Wall-clock seeding defeats reproducibility even through a
// constructor.
func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
