package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange flags `range` statements over maps whose loop body lets the
// (deliberately randomized) iteration order leak into program state —
// the bug class that silently breaks PARAGON's seeded-run reproducibility
// (gen.BarabasiAlbert shipped with exactly this defect before PR 1).
//
// A map range inside a deterministic package is accepted only when the
// body is provably order-insensitive, meaning every statement is one of:
//
//   - writes to map entries or slice/array elements indexed by the loop
//     variables (each iteration touches its own key's state);
//   - delete/clear of map entries;
//   - commutative integer accumulation (+=, -=, *=, |=, &=, ^=, ++, --);
//   - declarations of and assignments to loop-body locals;
//   - append to a slice that a later statement of the enclosing block
//     sorts (the collect-then-sort idiom);
//   - mutex Lock/Unlock around the above;
//   - control flow (if/switch/nested loops/continue) composed of the same.
//
// Everything else — early return/break, min/max selection into outer
// variables, float accumulation, calls with unknown effects — is
// order-sensitive and reported. Loops that genuinely do not care (e.g.
// error paths that fire only on invariant violations) document that with
// a //lint:ignore maprange <reason> directive.
type MapRange struct {
	// Deterministic reports whether a package's import path is covered by
	// the determinism contract. Nil covers every package.
	Deterministic func(path string) bool
}

func (MapRange) Name() string { return "maprange" }
func (MapRange) Doc() string {
	return "map iteration order must not leak into deterministic code paths"
}

func (c MapRange) Check(pkg *Package) []Diagnostic {
	if c.Deterministic != nil && !c.Deterministic(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			out = append(out, c.checkBlock(pkg, fn.Body.List)...)
			return false
		})
	}
	return out
}

// checkBlock walks a statement list looking for map ranges; the slice
// gives each loop access to its following siblings (for the
// collect-then-sort idiom).
func (c MapRange) checkBlock(pkg *Package, stmts []ast.Stmt) []Diagnostic {
	var out []Diagnostic
	for i, s := range stmts {
		out = append(out, c.checkStmt(pkg, s, stmts[i+1:])...)
	}
	return out
}

// checkStmt recurses into nested statement structure, keeping track of
// the statements that follow each block position.
func (c MapRange) checkStmt(pkg *Package, s ast.Stmt, rest []ast.Stmt) []Diagnostic {
	var out []Diagnostic
	switch s := s.(type) {
	case *ast.RangeStmt:
		if isMapType(pkg, s.X) {
			if d, bad := c.analyzeLoop(pkg, s, rest); bad {
				out = append(out, d)
			}
			// Nested map ranges inside this loop are judged as part of
			// analyzeLoop; don't double-report them.
			return out
		}
		out = append(out, c.checkBlock(pkg, s.Body.List)...)
	case *ast.ForStmt:
		out = append(out, c.checkBlock(pkg, s.Body.List)...)
	case *ast.BlockStmt:
		out = append(out, c.checkBlock(pkg, s.List)...)
	case *ast.IfStmt:
		out = append(out, c.checkBlock(pkg, s.Body.List)...)
		if s.Else != nil {
			out = append(out, c.checkStmt(pkg, s.Else, nil)...)
		}
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				out = append(out, c.checkBlock(pkg, cl.Body)...)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				out = append(out, c.checkBlock(pkg, cl.Body)...)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				out = append(out, c.checkBlock(pkg, cl.Body)...)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, c.checkStmt(pkg, s.Stmt, rest)...)
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			out = append(out, c.checkBlock(pkg, fl.Body.List)...)
		}
	case *ast.DeferStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			out = append(out, c.checkBlock(pkg, fl.Body.List)...)
		}
	}
	return out
}

// analyzeLoop decides one map-range loop. It returns a diagnostic at the
// loop position describing the first order-sensitive statement found.
func (c MapRange) analyzeLoop(pkg *Package, loop *ast.RangeStmt, rest []ast.Stmt) (Diagnostic, bool) {
	a := &loopAnalysis{
		pkg:     pkg,
		body:    loop.Body,
		tainted: map[types.Object]bool{},
	}
	for _, e := range []ast.Expr{loop.Key, loop.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := objectOf(pkg, id); obj != nil {
				a.tainted[obj] = true
			}
		}
	}
	a.collectSortedAfter(loop, rest)
	// Two passes so taint introduced late in the body reaches earlier
	// index expressions on the revisit.
	a.propagateTaint(loop.Body)
	a.propagateTaint(loop.Body)
	if why, pos := a.checkStmts(loop.Body.List); why != "" {
		line := pkg.Fset.Position(pos).Line
		return diag(pkg, loop.For, "maprange",
			"map iteration order leaks out of this loop: %s (line %d); sort the keys first, restructure, or //lint:ignore maprange <reason>", why, line), true
	}
	return Diagnostic{}, false
}

type loopAnalysis struct {
	pkg     *Package
	body    *ast.BlockStmt
	tainted map[types.Object]bool
	// sortedAfter holds slice variables appended to in the loop that a
	// later sibling statement sorts.
	sortedAfter map[types.Object]bool
}

// collectSortedAfter finds `x = append(x, ...)` targets in the loop and
// checks whether any following sibling statement passes x to a sort.
func (a *loopAnalysis) collectSortedAfter(loop *ast.RangeStmt, rest []ast.Stmt) {
	a.sortedAfter = map[types.Object]bool{}
	var targets []types.Object
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBuiltin(a.pkg, call.Fun, "append") {
				if obj := objectOf(a.pkg, id); obj != nil {
					targets = append(targets, obj)
				}
			}
		}
		return true
	})
	if len(targets) == 0 {
		return
	}
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
				if x, ok := fun.X.(*ast.Ident); ok {
					name = x.Name + "." + name
				}
			}
			if !strings.Contains(strings.ToLower(name), "sort") {
				return true
			}
			for _, t := range targets {
				if exprsMention(a.pkg, call.Args, t) {
					a.sortedAfter[t] = true
				}
			}
			return true
		})
	}
}

// propagateTaint marks loop-body locals derived from the loop variables.
func (a *loopAnalysis) propagateTaint(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil && a.mentionsTaint(rhs) {
					if obj := objectOf(a.pkg, id); obj != nil && a.isBodyLocal(obj) {
						a.tainted[obj] = true
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over a tainted container taints the inner loop
			// variables: they are per-outer-key state.
			if a.mentionsTaint(n.X) {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := objectOf(a.pkg, id); obj != nil {
							a.tainted[obj] = true
						}
					}
				}
			}
		}
		return true
	})
}

func (a *loopAnalysis) isBodyLocal(obj types.Object) bool {
	return obj.Pos() >= a.body.Pos() && obj.Pos() <= a.body.End()
}

func (a *loopAnalysis) mentionsTaint(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(a.pkg, id); obj != nil && a.tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkStmts validates a statement list; a non-empty reason means the
// loop is order-sensitive.
func (a *loopAnalysis) checkStmts(stmts []ast.Stmt) (string, token.Pos) {
	for _, s := range stmts {
		if why, pos := a.checkStmt(s); why != "" {
			return why, pos
		}
	}
	return "", token.NoPos
}

func (a *loopAnalysis) checkStmt(s ast.Stmt) (string, token.Pos) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return "", token.NoPos
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return "", token.NoPos
		}
		return fmt.Sprintf("%s exits after an order-dependent prefix of the keys", s.Tok), s.Pos()
	case *ast.ReturnStmt:
		return "return exits after an order-dependent prefix of the keys", s.Pos()
	case *ast.AssignStmt:
		return a.checkAssign(s)
	case *ast.IncDecStmt:
		if isIntegerExpr(a.pkg, s.X) {
			return "", token.NoPos
		}
		return "non-integer increment is reordering-sensitive", s.Pos()
	case *ast.DeclStmt:
		return "", token.NoPos // var/const decls introduce body-locals
	case *ast.ExprStmt:
		return a.checkCallStmt(s)
	case *ast.BlockStmt:
		return a.checkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			if why, pos := a.checkStmt(s.Init); why != "" {
				return why, pos
			}
		}
		if why, pos := a.checkStmts(s.Body.List); why != "" {
			return why, pos
		}
		if s.Else != nil {
			return a.checkStmt(s.Else)
		}
		return "", token.NoPos
	case *ast.SwitchStmt:
		if s.Init != nil {
			if why, pos := a.checkStmt(s.Init); why != "" {
				return why, pos
			}
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				if why, pos := a.checkStmts(cl.Body); why != "" {
					return why, pos
				}
			}
		}
		return "", token.NoPos
	case *ast.ForStmt:
		if s.Init != nil {
			if why, pos := a.checkStmt(s.Init); why != "" {
				return why, pos
			}
		}
		if s.Post != nil {
			if why, pos := a.checkStmt(s.Post); why != "" {
				return why, pos
			}
		}
		return a.checkStmts(s.Body.List)
	case *ast.RangeStmt:
		return a.checkStmts(s.Body.List)
	case *ast.LabeledStmt:
		return a.checkStmt(s.Stmt)
	default:
		// go/defer/send/select/type-switch inside a map range: launch and
		// communication order would follow map order.
		return fmt.Sprintf("%T is order-sensitive inside a map range", s), s.Pos()
	}
}

func (a *loopAnalysis) checkAssign(s *ast.AssignStmt) (string, token.Pos) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		if isIntegerExpr(a.pkg, s.Lhs[0]) {
			return "", token.NoPos
		}
		if isFloatExpr(a.pkg, s.Lhs[0]) {
			return fmt.Sprintf("floating-point accumulation into %s depends on summation order", exprString(s.Lhs[0])), s.Pos()
		}
		return fmt.Sprintf("%s accumulation into %s is not commutative", s.Tok, exprString(s.Lhs[0])), s.Pos()
	case token.SHL_ASSIGN, token.SHR_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		return fmt.Sprintf("%s accumulation is not commutative", s.Tok), s.Pos()
	}
	// Plain = or :=.
	for i, lhs := range s.Lhs {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := objectOf(a.pkg, lhs)
			if obj != nil && a.isBodyLocal(obj) {
				continue
			}
			// Collect-then-sort: x = append(x, ...) with a later sort.
			if i < len(s.Rhs) || len(s.Rhs) == 1 {
				rhs := s.Rhs[min(i, len(s.Rhs)-1)]
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(a.pkg, call.Fun, "append") {
					if obj != nil && a.sortedAfter[obj] {
						continue
					}
					return fmt.Sprintf("append to %s happens in map-iteration order and is never sorted afterwards", lhs.Name), s.Pos()
				}
			}
			return fmt.Sprintf("assignment to %s keeps whichever key the runtime visits last (or first)", lhs.Name), s.Pos()
		case *ast.IndexExpr:
			if a.mentionsTaint(lhs.Index) {
				continue // per-key write
			}
			return fmt.Sprintf("write to %s is not indexed by the loop variables", exprString(lhs)), s.Pos()
		case *ast.SelectorExpr:
			if a.mentionsTaint(lhs.X) {
				continue // field of per-key state
			}
			return fmt.Sprintf("write to %s escapes the iteration", exprString(lhs)), s.Pos()
		case *ast.StarExpr:
			if a.mentionsTaint(lhs.X) {
				continue
			}
			return fmt.Sprintf("write through %s escapes the iteration", exprString(lhs)), s.Pos()
		default:
			return fmt.Sprintf("write to %s escapes the iteration", exprString(lhs)), s.Pos()
		}
	}
	return "", token.NoPos
}

func (a *loopAnalysis) checkCallStmt(s *ast.ExprStmt) (string, token.Pos) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return fmt.Sprintf("%T is order-sensitive inside a map range", s.X), s.Pos()
	}
	if isBuiltin(a.pkg, call.Fun, "delete") || isBuiltin(a.pkg, call.Fun, "clear") {
		return "", token.NoPos
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "Unlock", "RLock", "RUnlock":
			return "", token.NoPos // sync points bracket per-key work
		}
	}
	return fmt.Sprintf("call to %s has effects the checker cannot order-qualify", exprString(call.Fun)), s.Pos()
}

// ---- shared type/AST helpers ----

func objectOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isMapType(pkg *Package, e ast.Expr) bool {
	t := typeOf(pkg, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func basicInfo(pkg *Package, e ast.Expr) types.BasicInfo {
	t := typeOf(pkg, e)
	if t == nil {
		return 0
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()
	}
	return 0
}

func isIntegerExpr(pkg *Package, e ast.Expr) bool {
	return basicInfo(pkg, e)&types.IsInteger != 0
}

func isFloatExpr(pkg *Package, e ast.Expr) bool {
	return basicInfo(pkg, e)&(types.IsFloat|types.IsComplex) != 0
}

func isBuiltin(pkg *Package, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := objectOf(pkg, id).(*types.Builtin)
	return isBuiltin
}

func exprsMention(pkg *Package, exprs []ast.Expr, obj types.Object) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && objectOf(pkg, id) == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// exprString renders a compact source form of simple expressions for
// messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("%T", e)
	}
}
