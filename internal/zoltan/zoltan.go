// Package zoltan implements a Zoltan-style hypergraph repartitioner —
// the remaining named baseline of the paper's Figure 1 and Table 6
// (Catalyurek et al., "A repartitioning hypergraph model for dynamic
// load balancing", JPDC 2009).
//
// The model: each vertex v of the graph induces a net (hyperedge)
// containing v and its neighbors; the communication metric is
// connectivity-1 — Σ_net w(net)·(λ(net) − 1), where λ(net) is the number
// of partitions the net touches — which, unlike edge cut, counts each
// remote partition once per net and therefore models message aggregation.
// Repartitioning adds one migration net per vertex binding it to its old
// owner, weighted by vertex size and scaled by 1/α, so the optimizer
// trades communication against migration exactly like Eq. 2/Eq. 3.
//
// Like the original (and unlike PARAGON), the repartitioner is
// architecture-agnostic: all partitions are equidistant.
package zoltan

import (
	"fmt"
	"time"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Options tunes Repartition.
type Options struct {
	// Eps is the imbalance tolerance (default 0.02).
	Eps float64
	// Alpha is the communication/migration weight of Eq. 2 (default 10):
	// migration nets weigh vs(v)/Alpha against communication nets.
	Alpha float64
	// Passes bounds the greedy refinement sweeps (default 4).
	Passes int
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.02
	}
	if o.Alpha == 0 {
		o.Alpha = 10
	}
	if o.Passes == 0 {
		o.Passes = 4
	}
	return o
}

// Stats reports one repartitioning.
type Stats struct {
	Moves              int
	ConnectivityBefore float64
	ConnectivityAfter  float64
	Elapsed            time.Duration
}

// ConnectivityCut computes the connectivity-1 metric of a decomposition
// under the vertex-net model: for each vertex v's net {v} ∪ N(v), the
// number of distinct partitions beyond the first, weighted by the net
// weight (1, the paper's uniform edge weights; weighted edges contribute
// via the max edge weight of the net, a common approximation).
func ConnectivityCut(g *graph.Graph, p *partition.Partitioning) float64 {
	var total float64
	seen := make(map[int32]struct{}, 8)
	for v := int32(0); v < g.NumVertices(); v++ {
		for k := range seen {
			delete(seen, k)
		}
		seen[p.Assign[v]] = struct{}{}
		var maxW int32 = 1
		adj := g.Neighbors(v)
		ws := g.EdgeWeights(v)
		for i, u := range adj {
			seen[p.Assign[u]] = struct{}{}
			if ws[i] > maxW {
				maxW = ws[i]
			}
		}
		total += float64(maxW) * float64(len(seen)-1)
	}
	return total
}

// Repartition adapts the decomposition old of g, minimizing
// connectivity-1 plus migration while restoring balance. It returns the
// new decomposition and statistics.
func Repartition(g *graph.Graph, old *partition.Partitioning, opt Options) (*partition.Partitioning, Stats, error) {
	//lint:ignore wallclock whole-run stopwatch for Stats.Elapsed; never read by repartitioning decisions
	start := time.Now()
	if err := old.Validate(g); err != nil {
		return nil, Stats{}, fmt.Errorf("zoltan: %w", err)
	}
	opt = opt.withDefaults()
	p := old.Clone()
	st := Stats{ConnectivityBefore: ConnectivityCut(g, p)}
	k := p.K
	bound := partition.BalanceBound(g, k, opt.Eps)
	load := p.Weights(g)

	// Phase 1: restore balance (spill overloaded partitions toward the
	// least connectivity-increasing admissible destination).
	for iter := 0; iter < int(k)*2; iter++ {
		src := int32(-1)
		for i := int32(0); i < k; i++ {
			if load[i] > bound && (src < 0 || load[i] > load[src]) {
				src = i
			}
		}
		if src < 0 {
			break
		}
		progressed := false
		for v := int32(0); v < g.NumVertices() && load[src] > bound; v++ {
			if p.Assign[v] != src {
				continue
			}
			dst := bestByConnectivity(g, p, old, v, load, bound, opt.Alpha, true)
			if dst < 0 {
				continue
			}
			applyMove(g, p, v, dst, load)
			st.Moves++
			progressed = true
		}
		if !progressed {
			break
		}
	}

	// Phase 2: greedy connectivity refinement sweeps over boundary
	// vertices, accepting strictly improving moves within balance.
	for pass := 0; pass < opt.Passes; pass++ {
		improved := false
		for v := int32(0); v < g.NumVertices(); v++ {
			if !partition.IsBoundary(g, p, v) {
				continue
			}
			cur := p.Assign[v]
			dst := bestByConnectivity(g, p, old, v, load, bound, opt.Alpha, false)
			if dst >= 0 && dst != cur {
				applyMove(g, p, v, dst, load)
				st.Moves++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	st.ConnectivityAfter = ConnectivityCut(g, p)
	//lint:ignore wallclock Stats.Elapsed bookkeeping at the driver boundary
	st.Elapsed = time.Since(start)
	return p, st, nil
}

// moveDelta computes the change in (connectivity-1 + migration/α) if v
// moves from its current partition to dst: the affected nets are v's own
// net and each neighbor's net.
func moveDelta(g *graph.Graph, p *partition.Partitioning, old []int32, v, dst int32, alpha float64) float64 {
	cur := p.Assign[v]
	if cur == dst {
		return 0
	}
	delta := netLambdaDelta(g, p, v, v, dst)
	for _, u := range g.Neighbors(v) {
		delta += netLambdaDelta(g, p, u, v, dst)
	}
	// Migration net: binds v to its original owner with weight vs(v)/α.
	mig := float64(g.VertexSize(v)) / alpha
	if old[v] == cur && old[v] != dst {
		delta += mig // leaving home cuts the migration net
	} else if old[v] == dst && old[v] != cur {
		delta -= mig // returning home heals it
	}
	return delta
}

// netLambdaDelta returns the λ change of the net centered at c when v
// moves to dst.
func netLambdaDelta(g *graph.Graph, p *partition.Partitioning, c, v, dst int32) float64 {
	cur := p.Assign[v]
	// Count members of net(c) in cur and dst, excluding v.
	var inCur, inDst int
	count := func(u int32) {
		if u == v {
			return
		}
		switch p.Assign[u] {
		case cur:
			inCur++
		case dst:
			inDst++
		}
	}
	count(c)
	for _, u := range g.Neighbors(c) {
		count(u)
	}
	var delta float64
	if inCur == 0 {
		delta-- // v was the last net member in cur
	}
	if inDst == 0 {
		delta++ // v opens dst for this net
	}
	return delta
}

// bestByConnectivity picks the admissible destination with the lowest
// move delta. In spill mode (mustMove) the least-bad admissible
// destination is returned even when the delta is positive; otherwise
// only strictly improving moves qualify.
func bestByConnectivity(g *graph.Graph, p *partition.Partitioning, old *partition.Partitioning, v int32, load []int64, bound int64, alpha float64, mustMove bool) int32 {
	w := int64(g.VertexWeight(v))
	cur := p.Assign[v]
	best := int32(-1)
	bestDelta := 0.0
	// Candidate destinations: partitions adjacent to v, plus (in spill
	// mode) the globally least-loaded partition. Candidates are kept in
	// first-seen neighbor order — iterating a map here would let the
	// runtime's randomized order break delta ties differently every run.
	seen := map[int32]struct{}{}
	var cands []int32
	for _, u := range g.Neighbors(v) {
		if pu := p.Assign[u]; pu != cur {
			if _, dup := seen[pu]; !dup {
				seen[pu] = struct{}{}
				cands = append(cands, pu)
			}
		}
	}
	if mustMove {
		least := int32(-1)
		for i := int32(0); i < p.K; i++ {
			if i != cur && (least < 0 || load[i] < load[least]) {
				least = i
			}
		}
		if least >= 0 {
			if _, dup := seen[least]; !dup {
				cands = append(cands, least)
			}
		}
	}
	for _, dst := range cands {
		if load[dst]+w > bound {
			continue
		}
		d := moveDelta(g, p, old.Assign, v, dst, alpha)
		if best < 0 && mustMove {
			best, bestDelta = dst, d
			continue
		}
		if d < bestDelta || (best < 0 && d < 0) {
			best, bestDelta = dst, d
		}
	}
	if !mustMove && bestDelta >= 0 {
		return -1
	}
	return best
}

func applyMove(g *graph.Graph, p *partition.Partitioning, v, dst int32, load []int64) {
	w := int64(g.VertexWeight(v))
	load[p.Assign[v]] -= w
	load[dst] += w
	p.Assign[v] = dst
}
