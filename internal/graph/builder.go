package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable CSR Graph. Edges may
// be added in any order and in either direction; duplicates are merged by
// summing their weights. Self-loops are dropped. Builders are not safe for
// concurrent use.
type Builder struct {
	n     int32
	src   []int32
	dst   []int32
	w     []int32
	vwgt  []int32
	vsize []int32
}

// NewBuilder returns a builder for a graph with n vertices. All vertex
// weights and sizes default to 1.
func NewBuilder(n int32) *Builder {
	b := &Builder{n: n, vwgt: make([]int32, n), vsize: make([]int32, n)}
	for i := range b.vwgt {
		b.vwgt[i] = 1
		b.vsize[i] = 1
	}
	return b
}

// NumVertices returns the number of vertices the builder was created with.
func (b *Builder) NumVertices() int32 { return b.n }

// AddEdge records the undirected edge {u,v} with weight 1.
func (b *Builder) AddEdge(u, v int32) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge {u,v} with weight w.
// Out-of-range endpoints or non-positive weights panic: they indicate a
// programming error in the generator or loader feeding the builder.
func (b *Builder) AddWeightedEdge(u, v, w int32) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %d on (%d,%d)", w, u, v))
	}
	if u == v {
		return // drop self-loops, as METIS does
	}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
	b.w = append(b.w, w)
}

// SetVertexWeight sets w(v) for the vertex under construction.
func (b *Builder) SetVertexWeight(v, w int32) { b.vwgt[v] = w }

// SetVertexSize sets vs(v) for the vertex under construction.
func (b *Builder) SetVertexSize(v, s int32) { b.vsize[v] = s }

// Build produces the CSR graph: it symmetrizes, sorts each adjacency list,
// and merges duplicate edges by summing weights. The builder may be reused
// afterwards, though that is rarely useful.
func (b *Builder) Build() *Graph {
	n := int64(b.n)
	// Count half-edges per vertex (each input edge contributes to both ends).
	deg := make([]int64, n+1)
	for i := range b.src {
		deg[b.src[i]+1]++
		deg[b.dst[i]+1]++
	}
	for v := int64(1); v <= n; v++ {
		deg[v] += deg[v-1]
	}
	xadj := deg // prefix sums; deg[v] is now the start offset of v's list
	m := int64(len(b.src)) * 2
	adj := make([]int32, m)
	ewgt := make([]int32, m)
	fill := make([]int64, n)
	for i := range b.src {
		u, v, w := b.src[i], b.dst[i], b.w[i]
		p := xadj[u] + fill[u]
		adj[p], ewgt[p] = v, w
		fill[u]++
		p = xadj[v] + fill[v]
		adj[p], ewgt[p] = u, w
		fill[v]++
	}
	// Sort each adjacency list and merge duplicates in place.
	outAdj := adj[:0]
	outW := ewgt[:0]
	newXadj := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		lo, hi := xadj[v], xadj[v+1]
		sortAdj(adj[lo:hi], ewgt[lo:hi])
		newXadj[v] = int64(len(outAdj))
		for i := lo; i < hi; i++ {
			if k := len(outAdj); k > int(newXadj[v]) && outAdj[k-1] == adj[i] {
				outW[k-1] += ewgt[i] // merge duplicate edge
			} else {
				outAdj = append(outAdj, adj[i])
				outW = append(outW, ewgt[i])
			}
		}
	}
	newXadj[n] = int64(len(outAdj))
	g := &Graph{
		xadj:  newXadj,
		adj:   append([]int32(nil), outAdj...),
		ewgt:  append([]int32(nil), outW...),
		vwgt:  append([]int32(nil), b.vwgt...),
		vsize: append([]int32(nil), b.vsize...),
	}
	return g
}

// sortAdj sorts the neighbor slice and keeps the weight slice parallel.
func sortAdj(adj []int32, w []int32) {
	if len(adj) < 2 {
		return
	}
	idx := make([]int32, len(adj))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return adj[idx[a]] < adj[idx[b]] })
	ta := make([]int32, len(adj))
	tw := make([]int32, len(w))
	for i, j := range idx {
		ta[i], tw[i] = adj[j], w[j]
	}
	copy(adj, ta)
	copy(w, tw)
}

// FromCSR constructs a Graph directly from raw CSR arrays. The arrays are
// copied. It validates the result and is intended for tests and loaders
// that already hold symmetric CSR data.
func FromCSR(xadj []int64, adj, ewgt, vwgt, vsize []int32) (*Graph, error) {
	g := &Graph{
		xadj:  append([]int64(nil), xadj...),
		adj:   append([]int32(nil), adj...),
		ewgt:  append([]int32(nil), ewgt...),
		vwgt:  append([]int32(nil), vwgt...),
		vsize: append([]int32(nil), vsize...),
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
