// Package staleignorehits carries a suppression whose diagnostic is
// gone: the clock read it once excused was removed, so the directive is
// dead weight that would silently swallow the next real finding here.
package staleignorehits

//lint:ignore wallclock the stopwatch this excused was deleted
func Stamp() int64 { return 1 }
