#!/usr/bin/env bash
# Tier-1 gate: vet, the determinism linter, build, full test suite, then
# the race detector over the whole tree (DESIGN.md §8 requires
# `go test -race` to stay clean on everything that shares state across
# goroutines, and the determinism contract of DESIGN.md is enforced
# mechanically by paragonlint — any diagnostic fails the gate). Tests
# run with -shuffle=on so inter-test ordering dependencies can't hide;
# the race pass covers the fault-matrix sweep, exercising degraded-mode
# recovery under the detector.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...

# Determinism linter: built into a temp dir (never the repo root), run
# with the SARIF artifact for CI consumers. The gate fails on any
# non-suppressed diagnostic, stale suppressions included — staleignore
# reports every //lint:ignore that no longer matches a live finding.
lintdir="$(mktemp -d)"
trap 'rm -rf "$lintdir"' EXIT
go build -o "$lintdir/paragonlint" ./cmd/paragonlint
"$lintdir/paragonlint" -sarif paragonlint.sarif -json paragonlint.json ./...

go build ./...
go test -shuffle=on ./...
go test -race -shuffle=on ./...

# Scheduler worker extremes: the paragon package under the race detector
# at GOMAXPROCS 1 and 4, so the pair-level waves run both fully serialized
# and genuinely interleaved (TestSchedulerDeterminism's contract holds at
# every worker count; -cpu also changes the Config.Workers default).
go test -race -cpu=1,4 ./internal/paragon/

# Observability layer under the race detector: the tracer's staged-commit
# path and the registry's atomic accumulators share state across the
# worker pool by design (DESIGN.md §13).
go test -race ./internal/obs/

# Serving layer under the race detector at GOMAXPROCS 1 and 4: the
# partition directory's lock-free lookups race epoch flips by design
# (DESIGN.md §16); the stress test asserts no torn (vertex, rank, epoch)
# triple at either extreme.
go test -race -cpu=1,4 ./internal/dir/

# Portfolio ensembles under the race detector at GOMAXPROCS 1 and 4:
# members race on the shared frozen graph with member-id-owned result
# slots (DESIGN.md §17); -cpu also changes the Config.Workers default,
# so the determinism tests cover serialized and interleaved members.
go test -race -cpu=1,4 ./internal/portfolio/

# Streaming sessions under the race detector at GOMAXPROCS 1 and 4: the
# ingest goroutine and the epoch refinement goroutine hand the index and
# snapshot back and forth through a channel by design (DESIGN.md §18);
# the replay tests assert bit-identity at both extremes, with faults on.
go test -race -cpu=1,4 ./internal/session/

# The directory, the portfolio, and the session must sit inside
# paragonlint's computed kernel set (the facade re-exports pull them
# in) — if any drops out, the wallclock/sharedwrite/reduceorder checkers
# silently stop covering it.
"$lintdir/paragonlint" -kernel | grep -q '^paragon/internal/dir$'
"$lintdir/paragonlint" -kernel | grep -q '^paragon/internal/portfolio$'
"$lintdir/paragonlint" -kernel | grep -q '^paragon/internal/session$'

# Obs determinism end to end: the same seeded faulty run at -workers 1
# and 8 must serialize byte-identical trace and metrics files — the
# observability half of the determinism contract, checked through the
# real CLI, not just the unit test.
obsdir="$(mktemp -d)"
trap 'rm -rf "$lintdir" "$obsdir"' EXIT
go build -o "$obsdir/paragon" ./cmd/paragon
go run ./cmd/gengraph -rmat -n 5000 -m 30000 -seed 13 -o "$obsdir/g.metis" > /dev/null
for w in 1 8; do
    "$obsdir/paragon" -in "$obsdir/g.metis" -k 24 -workers "$w" -seed 9 \
        -fault-rate 0.05 -fault-seed 3 \
        -trace "$obsdir/t$w.jsonl" -metrics "$obsdir/m$w.prom" > /dev/null
done
cmp "$obsdir/t1.jsonl" "$obsdir/t8.jsonl"
cmp "$obsdir/m1.prom" "$obsdir/m8.prom"

# Daemon determinism end to end: the same seeded churn schedule with the
# fault layer on must produce byte-identical replay summaries, traces,
# and metrics at -workers 1 and 8 — the streaming half of the replay
# contract, checked through the real CLI.
go build -o "$obsdir/paragond" ./cmd/paragond
for w in 1 8; do
    "$obsdir/paragond" -n0 2000 -m0 10000 -k 8 -batches 40 \
        -adds 200 -removes 80 -arrivals 5 -workers "$w" \
        -fault-rate 0.35 -replay-out "$obsdir/d$w.txt" \
        -trace "$obsdir/dt$w.jsonl" -metrics "$obsdir/dm$w.prom" > /dev/null
done
cmp "$obsdir/d1.txt" "$obsdir/d8.txt"
cmp "$obsdir/dt1.jsonl" "$obsdir/dt8.jsonl"
cmp "$obsdir/dm1.prom" "$obsdir/dm8.prom"

# Bench bitrot smoke: compile and run every benchmark once so benchmark
# code can't silently rot between perf-measurement sessions.
go test -bench=. -benchtime=1x -run='^$' ./... > /dev/null

# Scale-harness smoke: the full bench_scale.sh pipeline (sharded
# generation, binary write/reload, env-driven bench processes, hash
# cross-check, JSON assembly) at n=100k with one iteration and the 10M
# point disabled — seconds, not minutes, but any wiring rot fails here
# instead of during a real measurement session.
SCALE_NS="100000" SCALE_WORKERS="1 2" SCALE_TENM=0 \
    scripts/bench_scale.sh "$obsdir/scale_smoke.json" > /dev/null
grep -q '"refine/n=100000/workers=2"' "$obsdir/scale_smoke.json"

# Serving-layer harness smoke: bench_dir.sh end to end (env-driven bench
# processes, reader-count hash cross-check, JSON assembly) at a small
# directory — wiring rot fails here, not in a measurement session.
DIR_WORKERS="1 2" DIR_N=65536 DIR_FLIPS=64 \
    scripts/bench_dir.sh "$obsdir/dir_smoke.json" > /dev/null
grep -q '"lookupflip/workers=2"' "$obsdir/dir_smoke.json"

# Portfolio harness smoke: bench_portfolio.sh end to end (env-driven
# bench processes, cross-worker selected-hash identity, JSON assembly)
# at a small grid — the bit-identity enforcement itself runs here too.
PORT_P="2" PORT_WORKERS="1 2" PORT_N=10000 PORT_K=32 \
    scripts/bench_portfolio.sh "$obsdir/port_smoke.json" > /dev/null
grep -q '"portfolio/p=2/workers=2"' "$obsdir/port_smoke.json"

# Daemon harness smoke: bench_daemon.sh end to end (env-driven daemon
# runs, cmp-enforced cross-worker replay identity, JSON assembly) at a
# small schedule — the replay enforcement itself runs here too.
DAEMON_WORKERS="1 4" DAEMON_N0=2000 DAEMON_M0=10000 DAEMON_BATCHES=30 \
    scripts/bench_daemon.sh "$obsdir/daemon_smoke.json" > /dev/null
grep -q '"ingest/workers=4"' "$obsdir/daemon_smoke.json"

echo "ci: all green"
