package partition

import (
	"math/rand"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/graph"
)

// nonUniformCost builds a k×k cost matrix with distinct off-diagonal
// entries so accumulation-order bugs can't hide behind symmetry.
func nonUniformCost(k int32, rng *rand.Rand) [][]float64 {
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			if i != j {
				c[i][j] = 1 + rng.Float64()*4
			}
		}
	}
	return c
}

// TestScoreMatchesMetrics pins the shared-scorer contract: every field of
// ComputeScore is bitwise identical to the standalone metric function it
// replaced, on several graph families and random decompositions. Evaluate
// is checked through the same lens since it now routes through the scorer.
func TestScoreMatchesMetrics(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyi(500, 2500, 3)},
		{"ba", gen.BarabasiAlbert(400, 4, 5)},
		{"mesh", gen.Mesh2D(20, 20)},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			const k = 9
			c := nonUniformCost(k, rng)
			for trial := 0; trial < 4; trial++ {
				p := randomPartitioning(tc.g, k, rng)
				orig := randomPartitioning(tc.g, k, rng)
				alpha := 0.5 + rng.Float64()
				s := ComputeScore(tc.g, p, orig.Assign, c, alpha)
				if want := EdgeCut(tc.g, p); s.EdgeCut != want {
					t.Fatalf("trial %d: EdgeCut = %d, want %d", trial, s.EdgeCut, want)
				}
				if want := CommCost(tc.g, p, c, alpha); s.CommCost != want {
					t.Fatalf("trial %d: CommCost = %v, want %v (not bitwise equal)", trial, s.CommCost, want)
				}
				if want := MigrationCost(tc.g, orig, p, c); s.MigrationCost != want {
					t.Fatalf("trial %d: MigrationCost = %v, want %v (not bitwise equal)", trial, s.MigrationCost, want)
				}
				if want := Skewness(tc.g, p); s.Skewness != want {
					t.Fatalf("trial %d: Skewness = %v, want %v (not bitwise equal)", trial, s.Skewness, want)
				}
				if nomig := ComputeScore(tc.g, p, nil, c, alpha); nomig.MigrationCost != 0 {
					t.Fatalf("trial %d: nil orig must score MigrationCost 0, got %v", trial, nomig.MigrationCost)
				}
				q := Evaluate(tc.g, p, c, alpha)
				if q.EdgeCut != s.EdgeCut || q.CommCost != s.CommCost || q.Skewness != s.Skewness {
					t.Fatalf("trial %d: Evaluate %+v diverges from ComputeScore %+v", trial, q, s)
				}
				wbuf := make([]int64, k)
				if into := ComputeScoreInto(tc.g, p, orig.Assign, c, alpha, wbuf); into != s {
					t.Fatalf("trial %d: ComputeScoreInto %+v diverges from ComputeScore %+v", trial, into, s)
				}
			}
		})
	}
}

func TestScoreBetterTotalOrder(t *testing.T) {
	base := Score{EdgeCut: 10, CommCost: 5, MigrationCost: 2, Skewness: 1.1}
	cases := []struct {
		name string
		a, b Score
		want bool
	}{
		{"lower cost wins", Score{CommCost: 4}, Score{CommCost: 5}, true},
		{"higher cost loses", Score{CommCost: 6}, Score{CommCost: 5}, false},
		{"migration counts toward cost", Score{CommCost: 3, MigrationCost: 3}, Score{CommCost: 5}, false},
		{"cost tie, lower cut wins", Score{CommCost: 5, EdgeCut: 9}, Score{CommCost: 5, EdgeCut: 10}, true},
		{"cost+cut tie, lower skew wins", Score{CommCost: 5, EdgeCut: 10, Skewness: 1.0}, Score{CommCost: 5, EdgeCut: 10, Skewness: 1.1}, true},
		{"full tie is not better", base, base, false},
	}
	for _, tc := range cases {
		if got := tc.a.Better(tc.b); got != tc.want {
			t.Errorf("%s: Better = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestIndexRebuild checks that re-seeding an index in place after
// overwriting the assignment wholesale (the pooled-scratch path) restores
// every maintained invariant, repeatedly on the same backing arrays.
func TestIndexRebuild(t *testing.T) {
	g := gen.ErdosRenyi(600, 3000, 17)
	rng := rand.New(rand.NewSource(23))
	const k = 8
	p := randomPartitioning(g, k, rng)
	ix := BuildIndex(g, p)
	for trial := 0; trial < 5; trial++ {
		// Mutate through Move first so buckets are mid-life, then clobber
		// the assignment directly — the state Rebuild must recover from.
		for i := 0; i < 200; i++ {
			ix.Move(rng.Int31n(g.NumVertices()), rng.Int31n(k))
		}
		for v := range p.Assign {
			p.Assign[v] = rng.Int31n(k)
		}
		ix.Rebuild()
		if err := ix.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
