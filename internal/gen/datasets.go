package gen

import (
	"fmt"
	"math"

	"paragon/internal/graph"
)

// Dataset is a named synthetic stand-in for one of the paper's real-world
// datasets (Table 2). Build(scale) produces the graph at a given size
// multiplier: scale=1 is the reproduction's standard size (roughly 10–100×
// smaller than the paper's originals so the full suite runs on one
// machine), smaller scales are used by unit tests and benchmarks.
type Dataset struct {
	Name  string // paper dataset this stands in for
	Class string // structural class ("2D FEM", "Social Network", ...)
	Build func(scale float64) *graph.Graph
}

// scaleN scales a vertex count, clamping at a small minimum so tiny test
// scales still produce valid graphs.
func scaleN(base int32, scale float64, min int32) int32 {
	n := int32(math.Round(float64(base) * scale))
	if n < min {
		n = min
	}
	return n
}

func scaleM(base int64, scale float64, min int64) int64 {
	m := int64(math.Round(float64(base) * scale))
	if m < min {
		m = min
	}
	return m
}

// side returns the side length of a square grid with about base² cells
// scaled by scale.
func side(base int32, scale float64) int32 {
	s := int32(math.Round(float64(base) * math.Sqrt(scale)))
	if s < 4 {
		s = 4
	}
	return s
}

// Datasets returns the stand-ins for the twelve datasets of Figures 9–11
// in the paper's presentation order. Every generator is seeded by the
// dataset name's position so results are reproducible run to run.
func Datasets() []Dataset {
	return []Dataset{
		{Name: "wave", Class: "2D/3D FEM", Build: func(s float64) *graph.Graph {
			return Mesh2D(side(110, s), side(142, s))
		}},
		{Name: "auto", Class: "3D FEM", Build: func(s float64) *graph.Graph {
			k := int32(math.Round(28 * math.Cbrt(s)))
			if k < 3 {
				k = 3
			}
			return Mesh3D(k, k, k)
		}},
		{Name: "333SP", Class: "2D FE Triangular Mesh", Build: func(s float64) *graph.Graph {
			return Mesh2D(side(200, s), side(300, s))
		}},
		{Name: "roadNet-PA", Class: "Road Network", Build: func(s float64) *graph.Graph {
			return RoadGrid(side(170, s), side(180, s), 0.72, 0.05, 1004)
		}},
		{Name: "USA-road-d", Class: "Road Network", Build: func(s float64) *graph.Graph {
			return RoadGrid(side(240, s), side(250, s), 0.70, 0.04, 1005)
		}},
		{Name: "CA-CondMat", Class: "Collaboration Network", Build: func(s float64) *graph.Graph {
			return RMAT(scaleN(10800, s, 64), scaleM(37000, s, 128), 0.45, 0.22, 0.22, 1006)
		}},
		{Name: "com-dblp", Class: "Collaboration Network", Build: func(s float64) *graph.Graph {
			return RMAT(scaleN(15800, s, 64), scaleM(52000, s, 128), 0.45, 0.22, 0.22, 1007)
		}},
		{Name: "com-amazon", Class: "Product Network", Build: func(s float64) *graph.Graph {
			n := scaleN(16700, s, 64)
			return WattsStrogatz(n, 3, 0.10, 1008)
		}},
		{Name: "Email-Enron", Class: "Communication Network", Build: func(s float64) *graph.Graph {
			return RMAT(scaleN(3670, s, 64), scaleM(18000, s, 128), 0.57, 0.19, 0.19, 1009)
		}},
		{Name: "YouTube", Class: "Social Network", Build: func(s float64) *graph.Graph {
			return RMAT(scaleN(32000, s, 64), scaleM(244000, s, 256), 0.57, 0.19, 0.19, 1010)
		}},
		{Name: "as-skitter", Class: "Internet Topology", Build: func(s float64) *graph.Graph {
			n := scaleN(17000, s, 64)
			return BarabasiAlbert(n, 13, 1011)
		}},
		{Name: "com-lj", Class: "Social Network", Build: func(s float64) *graph.Graph {
			return RMAT(scaleN(40000, s, 64), scaleM(690000, s, 512), 0.57, 0.19, 0.19, 1012)
		}},
	}
}

// DatasetByName returns the stand-in for a paper dataset by name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// FriendsterSeries returns the §7.3 scaling series: a base social graph
// plus edge-sampled versions at keep probabilities 0.25, 0.5, 0.75 and 1.0
// (the paper's friendster-p datasets). scale sizes the base graph.
func FriendsterSeries(scale float64) []struct {
	P     float64
	Graph *graph.Graph
} {
	base := RMAT(scaleN(120000, scale, 256), scaleM(1200000, scale, 1024), 0.57, 0.19, 0.19, 2001)
	ps := []float64{0.25, 0.5, 0.75, 1.0}
	out := make([]struct {
		P     float64
		Graph *graph.Graph
	}, 0, len(ps))
	for i, p := range ps {
		g := base
		if p < 1.0 {
			g = SampleEdges(base, p, 2100+int64(i))
		}
		out = append(out, struct {
			P     float64
			Graph *graph.Graph
		}{p, g})
	}
	return out
}
