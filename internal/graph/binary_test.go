package graph

import (
	"bytes"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := buildPaperGraph()
	g.UseDegreeWeights()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("size mismatch after round trip")
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		if g2.VertexWeight(v) != g.VertexWeight(v) || g2.VertexSize(v) != g.VertexSize(v) {
			t.Fatalf("vertex %d attrs differ", v)
		}
		a1, a2 := g.Neighbors(v), g2.Neighbors(v)
		w1, w2 := g.EdgeWeights(v), g2.EdgeWeights(v)
		if len(a1) != len(a2) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}

func TestBinaryErrors(t *testing.T) {
	// Truncated stream.
	g := buildPath(5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 4, 10, len(full) - 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad2 := append([]byte(nil), full...)
	bad2[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Corrupted payload (asymmetric edge) must fail validation.
	bad3 := append([]byte(nil), full...)
	bad3[len(bad3)-1] ^= 0xff // flips a vsize byte -> negative size
	if _, err := ReadBinary(bytes.NewReader(bad3)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}
