// Package reduceorderhits folds goroutine partials in completion order:
// float addition is not associative, so the sum depends on which worker
// finishes first.
package reduceorderhits

// Sum collects partials straight off the channel.
func Sum(parts chan float64, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += <-parts // completion-order fold
	}
	var total float64
	for p := range parts {
		total += p // same fold, spelled as a collector loop
	}
	return sum + total
}
