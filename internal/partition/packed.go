package partition

import (
	"fmt"
	"math/bits"
)

// Packed is a bit-packed assignment vector: n entries in [0, K), each
// stored in ceil(log2(K)) bits, entries never straddling a word. At
// k = 128 an entry costs 7 bits instead of 32 — the epoch snapshots of
// the partition directory (internal/dir) hold one of these per shard, so
// a 10M-vertex directory epoch is ~9 MB instead of 40 MB, and a
// copy-on-write epoch flip clones only the shards a migration touched.
//
// Entries within one word are independent bit fields, so concurrent
// readers racing a *different* Packed instance (the directory's
// immutable-snapshot discipline) need no synchronization; Packed itself
// is not safe for concurrent mutation.
type Packed struct {
	words []uint64
	n     int32
	k     int32
	bits  uint8 // bits per entry
	per   int32 // entries per word (64/bits)
}

// bitsFor returns the entry width for assignments in [0, k).
func bitsFor(k int32) uint8 {
	if k <= 1 {
		return 1
	}
	return uint8(bits.Len32(uint32(k - 1)))
}

// NewPacked returns an all-zero packed vector of n entries in [0, k).
func NewPacked(n, k int32) *Packed {
	if k < 1 {
		panic(fmt.Sprintf("partition: packed k = %d must be positive", k))
	}
	if n < 0 {
		panic(fmt.Sprintf("partition: packed n = %d must be non-negative", n))
	}
	b := bitsFor(k)
	per := int32(64 / int(b))
	nwords := (int(n) + int(per) - 1) / int(per)
	return &Packed{words: make([]uint64, nwords), n: n, k: k, bits: b, per: per}
}

// PackAssign packs a plain assignment slice (values in [0, k)).
func PackAssign(assign []int32, k int32) *Packed {
	p := NewPacked(int32(len(assign)), k)
	for v, r := range assign {
		p.Set(int32(v), r)
	}
	return p
}

// Len returns the number of entries.
func (p *Packed) Len() int32 { return p.n }

// K returns the assignment range bound.
func (p *Packed) K() int32 { return p.k }

// Get returns entry v.
func (p *Packed) Get(v int32) int32 {
	if v < 0 || v >= p.n {
		panic(fmt.Sprintf("partition: packed index %d out of range [0,%d)", v, p.n))
	}
	w := p.words[v/p.per]
	shift := uint(v%p.per) * uint(p.bits)
	return int32((w >> shift) & (1<<p.bits - 1))
}

// Set stores entry v = r.
func (p *Packed) Set(v, r int32) {
	if v < 0 || v >= p.n {
		panic(fmt.Sprintf("partition: packed index %d out of range [0,%d)", v, p.n))
	}
	if r < 0 || r >= p.k {
		panic(fmt.Sprintf("partition: packed value %d out of range [0,%d)", r, p.k))
	}
	shift := uint(v%p.per) * uint(p.bits)
	wi := v / p.per
	p.words[wi] = p.words[wi]&^((1<<p.bits-1)<<shift) | uint64(r)<<shift
}

// Clone returns a deep copy.
func (p *Packed) Clone() *Packed {
	q := *p
	q.words = append([]uint64(nil), p.words...)
	return &q
}

// AppendAssign appends the unpacked entries to dst and returns dst.
func (p *Packed) AppendAssign(dst []int32) []int32 {
	for v := int32(0); v < p.n; v++ {
		dst = append(dst, p.Get(v))
	}
	return dst
}

// Words exposes the backing words (for serialization); the layout is
// fixed by (n, k), so two Packed with equal contents have equal words.
func (p *Packed) Words() []uint64 { return p.words }

// PackedFromWords rebuilds a packed vector from its serialized words
// (the layout Words exposes). The word count must match (n, k) exactly
// and every entry must be in [0, k) — a journal-recovery guard against
// decoding a vector that the writer could never have produced.
func PackedFromWords(n, k int32, words []uint64) (*Packed, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: packed k = %d must be positive", k)
	}
	if n < 0 {
		return nil, fmt.Errorf("partition: packed n = %d must be non-negative", n)
	}
	p := NewPacked(n, k)
	if len(words) != len(p.words) {
		return nil, fmt.Errorf("partition: packed (n=%d, k=%d) needs %d words, got %d", n, k, len(p.words), len(words))
	}
	copy(p.words, words)
	for v := int32(0); v < n; v++ {
		if r := p.Get(v); r >= k {
			return nil, fmt.Errorf("partition: packed entry %d = %d outside [0,%d)", v, r, k)
		}
	}
	return p, nil
}

// Hash64 returns an order-sensitive FNV-1a digest of the contents,
// folding in n and k so vectors of different shape never collide by
// accident. Two Packed holding the same assignment hash identically.
func (p *Packed) Hash64() uint64 {
	h := fnvMix(fnvOffset, uint64(uint32(p.n)))
	h = fnvMix(h, uint64(uint32(p.k)))
	for _, w := range p.words {
		h = fnvMix(h, w)
	}
	return h
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnvMix folds one 64-bit quantity into an FNV-1a state, byte by byte.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}
