package apps

import (
	"fmt"

	"paragon/internal/bsp"
	"paragon/internal/graph"
)

// KCore computes membership in the k-core: the maximal subgraph in which
// every vertex has degree >= k. It runs the standard distributed peeling
// protocol: a vertex whose surviving degree drops below k removes itself
// and notifies its neighbors (message = 1 removal each), repeating until
// a fixed point. Returns 1 for members, 0 otherwise.
func KCore(e *bsp.Engine, g *graph.Graph, k int) ([]int64, bsp.Result, error) {
	if k < 1 {
		return nil, bsp.Result{}, fmt.Errorf("apps: KCore needs k >= 1")
	}
	n := g.NumVertices()
	// survivors tracks each vertex's current surviving degree; indexed
	// per vertex, only its own rank's goroutine touches it.
	deg := make([]int64, n)
	removed := make([]bool, n)
	prog := bsp.Program{
		Init: func(v int32) (int64, bool) {
			deg[v] = int64(g.Degree(v))
			return 1, true // everyone starts as a member and checks itself
		},
		Compute: func(v int32, value int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if removed[v] {
				return 0, false
			}
			if msgs != nil {
				deg[v] -= msgs[0] // combined count of removed neighbors
			}
			if deg[v] < int64(k) {
				removed[v] = true
				for _, u := range g.Neighbors(v) {
					send(u, 1)
				}
				return 0, false
			}
			return 1, false
		},
		Combine: func(a, b int64) int64 { return a + b },
	}
	res, err := e.Run(prog)
	return res.Values, res, err
}

// KCoreSerial is the serial reference: iterative peeling.
func KCoreSerial(g *graph.Graph, k int) []int64 {
	n := g.NumVertices()
	deg := make([]int64, n)
	member := make([]int64, n)
	queue := make([]int32, 0, 64)
	for v := int32(0); v < n; v++ {
		deg[v] = int64(g.Degree(v))
		member[v] = 1
		if deg[v] < int64(k) {
			queue = append(queue, v)
			member[v] = 0
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.Neighbors(v) {
			if member[u] == 1 {
				deg[u]--
				if deg[u] < int64(k) {
					member[u] = 0
					queue = append(queue, u)
				}
			}
		}
	}
	return member
}

// TriangleCount counts the triangles of the graph with the standard
// BSP protocol: in round one every vertex v forwards, to each neighbor u
// with u > v, the ids of its neighbors w with w > u; in round two each
// recipient counts the forwarded ids that are also its neighbors. The
// total is the exact triangle count (each triangle v<u<w counted once,
// at u). Runs without a combiner — every candidate id must arrive.
func TriangleCount(e *bsp.Engine, g *graph.Graph) (int64, bsp.Result, error) {
	n := g.NumVertices()
	counts := make([]int64, n) // per vertex, own-rank access only
	isNeighbor := func(u, w int32) bool { return g.HasEdge(u, w) }
	prog := bsp.Program{
		Init: func(v int32) (int64, bool) { return 0, true },
		Compute: func(v int32, value int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if msgs == nil {
				// Round 1: forward wedges.
				adj := g.Neighbors(v)
				for i, u := range adj {
					if u <= v {
						continue
					}
					for _, w := range adj[i+1:] {
						if w > u {
							send(u, int64(w))
						}
					}
				}
				return 0, false
			}
			// Round 2: count closures.
			for _, m := range msgs {
				if isNeighbor(v, int32(m)) {
					counts[v]++
				}
			}
			return counts[v], false
		},
	}
	res, err := e.Run(prog)
	if err != nil {
		return 0, res, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, res, nil
}

// TriangleCountSerial is the serial reference (adjacency intersection).
func TriangleCountSerial(g *graph.Graph) int64 {
	var total int64
	for v := int32(0); v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		for i, u := range adj {
			if u <= v {
				continue
			}
			for _, w := range adj[i+1:] {
				if w > u && g.HasEdge(u, w) {
					total++
				}
			}
		}
	}
	return total
}
