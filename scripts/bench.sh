#!/usr/bin/env bash
# Runs the refinement hot-path benchmarks (BenchmarkRefinePairHot,
# BenchmarkParagonRound — 100k-vertex RMAT, k ∈ {32, 128}) and emits
# BENCH_refine.json with ns/op and allocs/op for each, next to the
# recorded pre-index baseline so the speedup is visible in one file.
# A second pass pairs BenchmarkParagonRound with its fault-layer twin
# (BenchmarkParagonRoundFault: injector installed, zero-fault schedule)
# and emits BENCH_fault.json with the instrumentation overhead per
# config; the budget for the fault layer is < 5%.
#
# Usage: scripts/bench.sh [output.json] [fault-output.json]
#   BENCHTIME=10x scripts/bench.sh   # more iterations for stable numbers
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_refine.json}"
faultout="${2:-BENCH_fault.json}"
benchtime="${BENCHTIME:-5x}"
count="${BENCHCOUNT:-3}"

tmp="$(mktemp)"
faulttmp="$(mktemp)"
trap 'rm -f "$tmp" "$faulttmp"' EXIT

go test -run '^$' -bench 'BenchmarkRefinePairHot' -benchmem -benchtime "$benchtime" ./internal/aragon/ | tee -a "$tmp"
# The overhead pair runs each side in its own process: heap growth and
# drift inside a long-lived benchmark process systematically penalize
# whichever benchmark runs second, swamping the ~1% signal. A fresh
# process per side plus min-of-count repetitions (the emitters keep the
# minimum) makes the comparison honest.
go test -run '^$' -bench 'BenchmarkParagonRound$' -count "$count" -benchmem -benchtime "$benchtime" ./internal/paragon/ | tee -a "$faulttmp"
go test -run '^$' -bench 'BenchmarkParagonRoundFault$' -count "$count" -benchmem -benchtime "$benchtime" ./internal/paragon/ | tee -a "$faulttmp"
grep '^BenchmarkParagonRound/' "$faulttmp" >> "$tmp"

# Benchmark lines look like:
#   BenchmarkParagonRound/k=128-8   5   336316376 ns/op   15844968 B/op   2307 allocs/op
# The baseline block is the scan-based implementation (commit a4d204a,
# before internal/partition.Index) on the same graphs and configs.
awk -v out="$out" -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip -GOMAXPROCS suffix
    if (!(name in ns) || $3 + 0 < ns[name] + 0) { ns[name] = $3; allocs[name] = $7 }
    if (!(name in seen)) { seen[name] = 1; order[n++] = name }
}
END {
    if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf("{\n")                                               > out
    printf("  \"benchtime\": \"%s\",\n", benchtime)             > out
    printf("  \"graph\": \"RMAT n=100000 m=800000 seed=42, degree weights\",\n") > out
    printf("  \"baseline\": {\n")                               > out
    printf("    \"commit\": \"a4d204a (pre-index scan-based refinement)\",\n") > out
    printf("    \"BenchmarkRefinePairHot/k=32\":  { \"ns_op\": 3065617,    \"allocs_op\": 50 },\n")    > out
    printf("    \"BenchmarkRefinePairHot/k=128\": { \"ns_op\": 1253660,    \"allocs_op\": 30 },\n")    > out
    printf("    \"BenchmarkParagonRound/k=32\":   { \"ns_op\": 159739650,  \"allocs_op\": 2528 },\n")  > out
    printf("    \"BenchmarkParagonRound/k=128\":  { \"ns_op\": 1386737586, \"allocs_op\": 28217 }\n")  > out
    printf("  },\n")                                            > out
    printf("  \"current\": {\n")                                > out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf("    \"%s\": { \"ns_op\": %s, \"allocs_op\": %s }%s\n",
               name, ns[name], allocs[name], (i < n - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                          > out
}
' "$tmp"

# Fault-layer overhead: pair BenchmarkParagonRound/<cfg> with
# BenchmarkParagonRoundFault/<cfg> and report the relative cost of the
# instrumented (never-firing) fault points.
awk -v out="$faultout" -v benchtime="$benchtime" -v count="$count" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in ns) || $3 + 0 < ns[name] + 0) { ns[name] = $3; allocs[name] = $7 }
    split(name, parts, "/")
    cfg = parts[2]
    if (!(cfg in seen)) { seen[cfg] = 1; order[n++] = cfg }
}
END {
    if (n == 0) { print "bench.sh: no fault benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf("{\n")                                               > out
    printf("  \"benchtime\": \"%s\",\n", benchtime)             > out
    printf("  \"graph\": \"RMAT n=100000 m=800000 seed=42, degree weights\",\n") > out
    printf("  \"note\": \"fault = injector installed at rate 0: every fault point consulted, none fires; overhead budget < 5%%. min ns/op over %s runs of %s, one process per side (in-process drift penalizes whichever side runs second)\",\n", count, benchtime) > out
    printf("  \"rounds\": {\n")                                 > out
    for (i = 0; i < n; i++) {
        cfg = order[i]
        base = "BenchmarkParagonRound/" cfg
        fault = "BenchmarkParagonRoundFault/" cfg
        pct = (ns[base] > 0) ? 100 * (ns[fault] - ns[base]) / ns[base] : 0
        printf("    \"%s\": { \"base_ns_op\": %s, \"fault_ns_op\": %s, \"overhead_pct\": %.2f, \"base_allocs_op\": %s, \"fault_allocs_op\": %s }%s\n",
               cfg, ns[base], ns[fault], pct, allocs[base], allocs[fault], (i < n - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                          > out
}
' "$faulttmp"

echo "bench: wrote $out and $faultout"
