package exchange

import (
	"errors"
	"slices"
	"strings"
	"testing"

	"paragon/internal/faultsim"
)

// The satellite fix: Directory must surface conflicting shard updates as
// an error (like Region), not silently keep the last writer.
func TestDirectoryConflictDetection(t *testing.T) {
	servers, _ := buildScenario(100, 2, 0, 3)
	servers[0].Updates[7] = 0
	servers[1].Updates[7] = 1
	_, err := (Directory{}).Propagate(servers)
	if err == nil {
		t.Fatal("expected conflict error")
	}
	if !strings.Contains(err.Error(), "conflicting updates for vertex 7") {
		t.Fatalf("conflict error %q does not name vertex 7", err)
	}
}

// Multiple conflicts must report a deterministic representative (the
// lowest vertex id), whatever order the goroutines pushed in.
func TestDirectoryConflictDeterministicReport(t *testing.T) {
	var msgs []string
	for i := 0; i < 20; i++ {
		servers, _ := buildScenario(100, 4, 0, 3)
		for _, v := range []int32{90, 12, 55} {
			servers[1].Updates[v] = 1
			servers[3].Updates[v] = 2
		}
		_, err := (Directory{}).Propagate(servers)
		if err == nil {
			t.Fatal("expected conflict error")
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs {
		if m != msgs[0] {
			t.Fatalf("conflict report unstable: %q vs %q", m, msgs[0])
		}
		if !strings.Contains(m, "vertex 12") {
			t.Fatalf("conflict report %q does not pick the lowest vertex", m)
		}
	}
}

// Agreeing duplicate updates (same vertex, same location) are not a
// conflict — retransmissions and echoes stay legal.
func TestDirectoryAgreeingDuplicatesOK(t *testing.T) {
	servers, _ := buildScenario(100, 2, 0, 3)
	servers[0].Updates[7] = 1
	servers[1].Updates[7] = 1
	if _, err := (Directory{}).Propagate(servers); err != nil {
		t.Fatalf("agreeing duplicates rejected: %v", err)
	}
}

// A dropped region reduce is retried: the exchange still converges, the
// retry bytes are accounted, and backoff lands on the virtual clock.
func TestRegionRetriesDroppedReduce(t *testing.T) {
	servers, want := buildScenario(1000, 6, 40, 1)
	clk := faultsim.NewClock()
	// Script: region 2's first delivery attempt is lost, once.
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindDrop, Round: 0, Index: 2, Attempt: 0},
	}})
	vol, err := Region{Size: 256, Fabric: fab, Clock: clk}.Propagate(servers)
	if err != nil {
		t.Fatal(err)
	}
	if !Consistent(servers) {
		t.Fatal("views diverged after retried reduce")
	}
	for v, loc := range want {
		if servers[0].Locations[v] != loc {
			t.Fatalf("vertex %d: %d, want %d", v, servers[0].Locations[v], loc)
		}
	}
	// 1000 vertices in 4 regions of 256/256/256/232; region 2 is sent
	// twice: base 4000 bytes + one 256-vertex retransmission.
	if wantVol := int64(1000*4 + 256*4); vol != wantVol {
		t.Fatalf("volume = %d, want %d (base + one region retry)", vol, wantVol)
	}
	if clk.Now() != faultsim.DefaultPolicy().Backoff(0) {
		t.Fatalf("clock = %d ticks, want one base backoff", clk.Now())
	}
	if c := fab.Counters(); c.Drops != 1 {
		t.Fatalf("drops = %d, want 1", c.Drops)
	}
}

// A reduce dropped on every attempt exhausts the retry budget and fails
// with ErrExchangeFailed, leaving the failed region un-broadcast.
func TestRegionRetryBudgetExhausted(t *testing.T) {
	servers, _ := buildScenario(1000, 6, 40, 1)
	pol := faultsim.Policy{MaxRetries: 3}
	var script []faultsim.Event
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		script = append(script, faultsim.Event{Kind: faultsim.KindDrop, Round: 0, Index: 1, Attempt: attempt})
	}
	fab := faultsim.NewInjector(faultsim.Config{Script: script})
	clk := faultsim.NewClock()
	_, err := Region{Size: 256, Fabric: fab, Policy: pol, Clock: clk}.Propagate(servers)
	if !errors.Is(err, ErrExchangeFailed) {
		t.Fatalf("err = %v, want ErrExchangeFailed", err)
	}
	// Backoff 1+2+4 ticks were spent before giving up.
	if clk.Now() != 1+2+4 {
		t.Fatalf("clock = %d, want 7 backoff ticks", clk.Now())
	}
}

// Directory push/pull batches retry the same way.
func TestDirectoryRetriesDroppedBatches(t *testing.T) {
	servers, want := buildScenario(400, 4, 20, 9)
	for _, s := range servers {
		s.Needs = s.Needs[:0]
		for v := 0; v < 400; v++ {
			s.Needs = append(s.Needs, int32(v))
		}
	}
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindDrop, Round: 0, Index: 1, Attempt: 0}, // server 1's push
		{Kind: faultsim.KindDrop, Round: 0, Index: 4, Attempt: 0}, // server 0's pull (ops 4..7 are pulls)
	}})
	clk := faultsim.NewClock()
	vol, err := Directory{Fabric: fab, Clock: clk}.Propagate(servers)
	if err != nil {
		t.Fatal(err)
	}
	if !Consistent(servers) {
		t.Fatal("views diverged after retried batches")
	}
	for v, loc := range want {
		if servers[0].Locations[v] != loc {
			t.Fatalf("vertex %d: %d, want %d", v, servers[0].Locations[v], loc)
		}
	}
	// Both retried batches were paid for twice.
	base := int64(4*20)*updateBytes + int64(4*400)*(requestBytes+replyBytes)
	extra := int64(20)*updateBytes + int64(400)*(requestBytes+replyBytes)
	if vol != base+extra {
		t.Fatalf("volume = %d, want %d", vol, base+extra)
	}
	if clk.Now() != 2*faultsim.DefaultPolicy().Backoff(0) {
		t.Fatalf("clock = %d, want two base backoffs", clk.Now())
	}
}

func TestDirectoryRetryBudgetExhausted(t *testing.T) {
	servers, _ := buildScenario(100, 3, 5, 2)
	// Drop server 2's push on every attempt of the default budget.
	var script []faultsim.Event
	for attempt := 0; attempt <= faultsim.DefaultPolicy().MaxRetries; attempt++ {
		script = append(script, faultsim.Event{Kind: faultsim.KindDrop, Round: 0, Index: 2, Attempt: attempt})
	}
	fab := faultsim.NewInjector(faultsim.Config{Script: script})
	_, err := Directory{Fabric: fab}.Propagate(servers)
	if !errors.Is(err, ErrExchangeFailed) {
		t.Fatalf("err = %v, want ErrExchangeFailed", err)
	}
}

// Consecutive Propagate calls under one fabric consume distinct epochs,
// so a schedule that kills epoch 0 leaves epoch 1 untouched.
func TestEpochsIsolatePropagateCalls(t *testing.T) {
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindDrop, Round: 0, Index: 0, Attempt: 0},
	}})
	clk := faultsim.NewClock()
	s1, _ := buildScenario(100, 3, 5, 2)
	if _, err := (Region{Fabric: fab, Clock: clk}).Propagate(s1); err != nil {
		t.Fatal(err)
	}
	ticksAfterFirst := clk.Now()
	if ticksAfterFirst == 0 {
		t.Fatal("epoch-0 drop did not fire")
	}
	s2, _ := buildScenario(100, 3, 5, 2)
	if _, err := (Region{Fabric: fab, Clock: clk}).Propagate(s2); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != ticksAfterFirst {
		t.Fatal("epoch-1 call re-fired epoch-0's schedule")
	}
}

// Identical (seed, rate) fabrics must produce identical exchange
// outcomes — volumes, clocks, and final views.
func TestFaultyExchangeDeterministic(t *testing.T) {
	run := func() (int64, int64, []int32) {
		servers, _ := buildScenario(2000, 8, 50, 6)
		fab := faultsim.NewInjector(faultsim.Config{Seed: 17, Rate: 0.3})
		clk := faultsim.NewClock()
		vol, err := Region{Size: 128, Fabric: fab, Clock: clk}.Propagate(servers)
		if err != nil && !errors.Is(err, ErrExchangeFailed) {
			t.Fatal(err)
		}
		return vol, clk.Now(), append([]int32(nil), servers[0].Locations...)
	}
	v1, t1, l1 := run()
	v2, t2, l2 := run()
	if v1 != v2 || t1 != t2 {
		t.Fatalf("faulty exchange nondeterministic: vol %d/%d ticks %d/%d", v1, v2, t1, t2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("views diverged at vertex %d", i)
		}
	}
}

// When several servers exhaust their retry budget in the same
// Propagate, the error must name the full exhausted-server set in
// ascending rank order — identically on every run, independent of
// goroutine completion order — so a failed directory-epoch publish is
// attributable to specific servers instead of an arbitrary
// representative.
func TestMultiFailureDeterministicError(t *testing.T) {
	run := func() error {
		servers, _ := buildScenario(100, 6, 5, 2)
		var script []faultsim.Event
		for _, idx := range []int{1, 3, 4} {
			for attempt := 0; attempt <= faultsim.DefaultPolicy().MaxRetries; attempt++ {
				script = append(script, faultsim.Event{Kind: faultsim.KindDrop, Round: 0, Index: idx, Attempt: attempt})
			}
		}
		fab := faultsim.NewInjector(faultsim.Config{Script: script})
		_, err := Directory{Fabric: fab}.Propagate(servers)
		if !errors.Is(err, ErrExchangeFailed) {
			t.Fatalf("err = %v, want ErrExchangeFailed", err)
		}
		return err
	}
	first := run()
	var det *DeliveryError
	if !errors.As(first, &det) {
		t.Fatalf("err = %T %v, want *DeliveryError", first, first)
	}
	if det.Phase != "push" {
		t.Fatalf("failed phase = %q, want push", det.Phase)
	}
	if want := []int{1, 3, 4}; !slices.Equal(det.Servers, want) {
		t.Fatalf("exhausted server set = %v, want %v", det.Servers, want)
	}
	if !strings.Contains(first.Error(), "[1 3 4]") {
		t.Fatalf("error text %q does not list the server set", first.Error())
	}
	for i := 0; i < 20; i++ {
		if got := run().Error(); got != first.Error() {
			t.Fatalf("error varies across runs: %q vs %q", got, first.Error())
		}
	}
}

// Pull-phase budget exhaustion must be attributed the same way.
func TestPullFailureAttributed(t *testing.T) {
	servers, _ := buildScenario(100, 4, 5, 3)
	var script []faultsim.Event
	// Pull ops are offset by len(servers) in the Directory fault
	// coordinates; exhaust server 2's pull batch.
	for attempt := 0; attempt <= faultsim.DefaultPolicy().MaxRetries; attempt++ {
		script = append(script, faultsim.Event{Kind: faultsim.KindDrop, Round: 0, Index: 4 + 2, Attempt: attempt})
	}
	fab := faultsim.NewInjector(faultsim.Config{Script: script})
	_, err := Directory{Fabric: fab}.Propagate(servers)
	var det *DeliveryError
	if !errors.As(err, &det) {
		t.Fatalf("err = %T %v, want *DeliveryError", err, err)
	}
	if det.Phase != "pull" || !slices.Equal(det.Servers, []int{2}) {
		t.Fatalf("attribution = %q %v, want pull [2]", det.Phase, det.Servers)
	}
}
