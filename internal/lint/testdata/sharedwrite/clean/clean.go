// Package sharedwriteclean is the arena/barrier protocol done right:
// per-worker slots indexed by a task id, guarded commutative integer
// counters, channel-received work items, and a coordinator that commits
// after the barrier.
package sharedwriteclean

import "sync"

// Fan is the closure form: every goroutine write lands in a slot
// indexed by its own task id or behind the commutative-counter escape.
func Fan(vals []float64, workers int) float64 {
	partials := make([]float64, workers)
	var volume int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan int, len(vals))
	for i := range vals {
		work <- i
	}
	close(work)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := 0.0
			for i := range work { // channel-received task id
				local += vals[i]
				mu.Lock()
				volume += 8 // guarded commutative integer counter
				mu.Unlock()
			}
			partials[w] = local // per-worker arena slot
		}(w)
	}
	wg.Wait()
	var sum float64
	for _, p := range partials { // shard-order reduction at the barrier
		sum += p
	}
	return sum
}

// pool is the worker-pool form: a directly spawned method whose
// receiver is shared but whose writes are parameter-indexed arena slots.
type pool struct {
	arenas [][]int
	start  chan int
}

func (p *pool) worker(w int) {
	for t := range p.start {
		p.arenas[w] = append(p.arenas[w], t)
	}
}

// Run spawns the pool; the coordinator owns the commit after close.
func Run(workers int) *pool {
	p := &pool{arenas: make([][]int, workers), start: make(chan int)}
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	close(p.start)
	return p
}
