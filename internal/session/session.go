// Package session is the streaming-ingest repartitioning daemon core:
// the long-running form of the one-shot Refine call. A Session owns a
// live, mutable graph (seeded from a base snapshot, grown by batched
// edge churn and vertex arrivals), places arriving vertices with the
// stream package's DG/LDG/Fennel rules, tracks the Eq. 2–4 score of the
// live decomposition incrementally, and — when the dyn.TriggerPolicy
// fires — launches an incremental refinement epoch that reuses the live
// partition.Index via Index.Retarget + RefineIndexed instead of
// rebuilding from scratch. Committed epochs publish atomically through
// the internal/dir epoch directory, so concurrent lookups never observe
// a torn mapping; an epoch killed by the fault fabric (refinement crash
// faults, or a dropped directory publish) aborts, rolls the index back,
// and leaves the previous epoch live.
//
// Determinism contract (DESIGN.md §18): ingestion runs on the caller's
// goroutine and a refinement epoch runs on one background goroutine,
// but every interaction between the two happens at schedule-determined
// points — an epoch launched after batch L is joined (blocking if it
// hasn't finished) at the start of batch L+EpochLagBatches, never
// polled. All progress is stamped on the faultsim virtual clock; wall
// time is never read. A (seed, schedule) pair therefore replays
// bit-identically — live assignment, directory epochs, trace bytes,
// metrics — at every Config.Workers value and under any real-time
// interleaving.
package session

import (
	"errors"
	"fmt"

	"paragon/internal/dir"
	"paragon/internal/dyn"
	"paragon/internal/faultsim"
	"paragon/internal/graph"
	"paragon/internal/obs"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
)

// Config tunes a Session. The zero value of every field has a usable
// default except Costs, which is required.
type Config struct {
	// Capacity is the vertex-id space ceiling: the session pre-sizes
	// every structure to it and activates ids [n0, Capacity) as arrivals
	// come in. 0 means the base graph's size (no arrivals possible).
	Capacity int32
	// Eps is the placement imbalance tolerance for arriving vertices
	// (default 0.02, the paper's setting).
	Eps float64
	// Placement selects the arrival placement rule (default PlaceLDG).
	Placement stream.PlaceRule
	// Trigger decides when to launch a refinement epoch; the zero value
	// uses dyn's defaults (skew 1.1, churn 5%, staleness off).
	Trigger dyn.TriggerPolicy
	// EpochLagBatches is the deterministic join point: an epoch launched
	// after batch L is joined at the start of batch L+lag (default 2).
	// Larger lags give refinement more concurrent wall time per epoch at
	// the price of merging a staler result.
	EpochLagBatches int
	// CooldownBatches is the minimum number of batches between an epoch
	// join and the next launch (default 4), so a trigger the refinement
	// cannot clear does not relaunch every batch.
	CooldownBatches int
	// BatchTicks advances the virtual clock per ingested batch
	// (default 1).
	BatchTicks int64
	// Refine configures the per-epoch refinement. The session overrides
	// the ownership fields — Trace and Directory are forced nil (the
	// session emits its own events and owns publishing), Fabric/
	// FaultRate/FaultSeed are replaced by the session's per-epoch
	// injectors, and Seed is folded with the epoch launch index so each
	// epoch draws a fresh deterministic schedule. A zero-value Refine
	// gets paragon.DefaultConfig() with Shuffles reduced to 2 (epochs
	// run often; nine rounds each would starve ingest).
	Refine paragon.Config
	// Costs is the k×k relative communication cost matrix (required).
	Costs [][]float64
	// FaultRate, with FaultSeed, drives the session's fault layer: each
	// epoch's refinement and each directory publish consult independent
	// deterministic injectors derived from (FaultSeed, launch index).
	FaultRate float64
	FaultSeed int64
	// DirShardBits passes through to the directory (0 = its default).
	DirShardBits int
	// Trace, when non-nil, receives ingest_batch / epoch_* events. The
	// session emits only from the ingest goroutine at deterministic
	// points, so the stream is bit-identical at every Workers value.
	Trace *obs.Tracer
	// Metrics, when non-nil, accumulates ingest_*/epoch_* counters plus
	// the refinement and directory metrics of the epochs.
	Metrics *obs.Registry
}

// half is one directed half-edge of the live adjacency.
type half struct{ to, w int32 }

// epochResult crosses the epoch goroutine's channel exactly once.
type epochResult struct {
	st  paragon.Stats
	err error
}

// epochRun is one in-flight refinement epoch.
type epochRun struct {
	launch    int64 // launch index (0-based)
	joinBatch int64 // batch seq whose ingest starts with the join
	done      chan epochResult
}

// Stats is a point-in-time snapshot of a session's counters.
type Stats struct {
	Batches          int64
	OpsApplied       int64
	EdgesAdded       int64
	EdgesRemoved     int64
	Arrivals         int64
	ArrivalsRejected int64
	EpochsLaunched   int64
	EpochsCommitted  int64
	EpochsAborted    int64
	EpochMoves       int64 // vertices moved by committed epochs
	DirectoryEpoch   int64
	Active           int32
	Edges            int64
	VirtualTicks     int64
	Live             partition.Score // live Eq. 2–4 score (migration 0)
}

// BatchStats reports what one Ingest call did.
type BatchStats struct {
	Seq          int64
	OpsApplied   int
	EdgesAdded   int
	EdgesRemoved int
	Arrivals     int
	Rejected     int
	Joined       bool // an epoch merged (or aborted) at this batch's entry
	Committed    bool // the joined epoch committed a directory publish
	Launched     bool // a new epoch launched after this batch
	Trigger      dyn.Decision
}

// sessionMetrics bundles the nil-safe obs handles.
type sessionMetrics struct {
	batches, ops, edgesAdded, edgesRemoved *obs.Counter
	arrivals, rejected                     *obs.Counter
	launches, commits, aborts, moves       *obs.Counter
	activeGauge, edgesGauge                *obs.Gauge
}

func newSessionMetrics(r *obs.Registry) sessionMetrics {
	return sessionMetrics{
		batches:      r.Counter("ingest_batches_total", "batches ingested by the streaming session"),
		ops:          r.Counter("ingest_ops_total", "churn ops applied (adds + removes that changed the graph)"),
		edgesAdded:   r.Counter("ingest_edges_added_total", "edges added by churn ops and arrivals"),
		edgesRemoved: r.Counter("ingest_edges_removed_total", "edges removed by churn ops"),
		arrivals:     r.Counter("ingest_arrivals_total", "vertices activated by arrivals"),
		rejected:     r.Counter("ingest_arrivals_rejected_total", "arrivals dropped because capacity was exhausted"),
		launches:     r.Counter("epoch_launches_total", "refinement epochs launched"),
		commits:      r.Counter("epoch_commits_total", "refinement epochs committed through the directory"),
		aborts:       r.Counter("epoch_aborts_total", "refinement epochs aborted (faults or failed publish)"),
		moves:        r.Counter("epoch_moves_total", "vertices moved by committed epochs"),
		activeGauge:  r.Gauge("session_active_vertices", "currently active vertices of the live graph"),
		edgesGauge:   r.Gauge("session_live_edges", "edges of the live graph"),
	}
}

// Session is the daemon core. Not safe for concurrent use: Ingest,
// Drain, and the accessors must all be called from one goroutine (the
// ingest loop); only Directory().Lookup is safe to call from anywhere.
type Session struct {
	cfg   Config
	k     int32
	n0    int32
	cap   int32
	alpha float64

	// Live graph (ingest-side truth). adj/weight/vsize are indexed by
	// vertex id over [0, cap); ids >= active are inactive: weight 0, no
	// edges, placeholder partition — invisible to scoring and never
	// moved by refinement.
	active int32
	adj    [][]half
	weight []int32
	vsize  []int32

	// Live decomposition and its incrementally maintained score.
	live    []int32
	loads   []int64
	floads  []float64 // float mirror for the placer
	totalW  int64
	edges   int64
	ewTotal int64
	cut     int64
	comm    float64 // raw Σ w·c (CommCost = alpha·comm)

	// Trigger state.
	baseComm float64 // comm reference of the last committed epoch
	churned  int64   // churned edges since the last committed epoch

	// Epoch-side state: owned by the ingest goroutine while run == nil,
	// owned exclusively by the epoch goroutine between launch and join.
	pidx      *partition.Partitioning
	ix        *partition.Index
	snap      *graph.Graph
	run       *epochRun
	pre       []int32 // assignment at epoch launch, for diff/rollback
	merged    []int32 // publish scratch
	diffBuf   []int32 // refined-move list scratch
	dirty     *partition.Bitset
	dirtyList []int32
	placed    []int32 // vertices placed since the last launch

	batches       int64
	cooldownUntil int64
	launches      int64
	commits       int64
	aborts        int64
	epochMoves    int64
	opsApplied    int64
	edgesAdded    int64
	edgesRemoved  int64
	arrivals      int64
	rejected      int64

	clock  *faultsim.Clock
	dirc   *dir.Directory
	placer *stream.Placer
	tr     *obs.Tracer
	mx     sessionMetrics
}

// New builds a session over the base graph g0 and its initial
// decomposition p0 (len(p0.Assign) == g0.NumVertices(), K >= 2).
// Vertex ids [g0.NumVertices(), cfg.Capacity) start inactive with the
// placeholder partition id % K, which is also what directory lookups
// return for them until they arrive.
func New(g0 *graph.Graph, p0 *partition.Partitioning, cfg Config) (*Session, error) {
	n0 := g0.NumVertices()
	if p0 == nil || int32(len(p0.Assign)) != n0 {
		return nil, errors.New("session: p0 does not cover g0")
	}
	k := p0.K
	if k < 2 {
		return nil, fmt.Errorf("session: k = %d, need >= 2", k)
	}
	if int32(len(cfg.Costs)) < k {
		return nil, fmt.Errorf("session: cost matrix %d×· smaller than k=%d", len(cfg.Costs), k)
	}
	capN := cfg.Capacity
	if capN == 0 {
		capN = n0
	}
	if capN < n0 {
		return nil, fmt.Errorf("session: capacity %d below base graph size %d", capN, n0)
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.02
	}
	if cfg.EpochLagBatches <= 0 {
		cfg.EpochLagBatches = 2
	}
	if cfg.CooldownBatches <= 0 {
		cfg.CooldownBatches = 4
	}
	if cfg.BatchTicks <= 0 {
		cfg.BatchTicks = 1
	}
	if cfg.Refine.Alpha == 0 && cfg.Refine.DRP == 0 {
		shf := cfg.Refine.Shuffles
		workers := cfg.Refine.Workers
		seed := cfg.Refine.Seed
		cfg.Refine = paragon.DefaultConfig()
		cfg.Refine.Shuffles = 2
		if shf > 0 {
			cfg.Refine.Shuffles = shf
		}
		cfg.Refine.Workers = workers
		cfg.Refine.Seed = seed
	}
	alpha := cfg.Refine.Alpha
	if alpha == 0 {
		alpha = paragon.DefaultConfig().Alpha
	}

	s := &Session{
		cfg:    cfg,
		k:      k,
		n0:     n0,
		cap:    capN,
		alpha:  alpha,
		active: n0,
		adj:    make([][]half, capN),
		weight: make([]int32, capN),
		vsize:  make([]int32, capN),
		live:   make([]int32, capN),
		loads:  make([]int64, k),
		floads: make([]float64, k),
		pre:    make([]int32, capN),
		merged: make([]int32, capN),
		dirty:  partition.NewBitset(capN),
		clock:  faultsim.NewClock(),
		placer: stream.NewPlacer(cfg.Placement, k),
		tr:     cfg.Trace,
		mx:     newSessionMetrics(cfg.Metrics),
	}
	for v := int32(0); v < n0; v++ {
		nbrs := g0.Neighbors(v)
		wts := g0.EdgeWeights(v)
		hs := make([]half, len(nbrs))
		for i, u := range nbrs {
			hs[i] = half{to: u, w: wts[i]}
		}
		s.adj[v] = hs
		s.weight[v] = g0.VertexWeight(v)
		s.vsize[v] = g0.VertexSize(v)
		s.live[v] = p0.Assign[v]
		s.loads[p0.Assign[v]] += int64(g0.VertexWeight(v))
		s.totalW += int64(g0.VertexWeight(v))
	}
	for v := n0; v < capN; v++ {
		s.live[v] = v % k // placeholder rank for not-yet-arrived ids
	}
	for q := int32(0); q < k; q++ {
		s.floads[q] = float64(s.loads[q])
	}
	s.edges = g0.NumEdges()
	s.ewTotal = g0.TotalEdgeWeight()
	s.recomputeLive()
	s.baseComm = s.comm

	if s.tr != nil {
		s.tr.SetClock(s.clock.Now)
	}

	// Epoch-side mirror: the persistent index over the padded snapshot.
	s.pidx = &partition.Partitioning{K: k, Assign: append([]int32(nil), s.live...)}
	s.snap = s.materialize()
	s.ix = partition.BuildIndex(s.snap, s.pidx)

	// The serving layer, on the session clock, with its own fault
	// injector so dropped publishes abort epochs deterministically.
	dopt := dir.Options{
		ShardBits: cfg.DirShardBits,
		Clock:     s.clock,
		Trace:     cfg.Trace,
		Metrics:   cfg.Metrics,
	}
	if cfg.FaultRate > 0 {
		in := faultsim.NewInjector(faultsim.Config{
			Seed: int64(sessionMix(uint64(cfg.FaultSeed) ^ 0xd19c)),
			Rate: cfg.FaultRate,
		})
		in.Observe(cfg.Metrics)
		dopt.Fabric = in
	}
	d, err := dir.New(s.live, k, dopt)
	if err != nil {
		return nil, fmt.Errorf("session: directory: %w", err)
	}
	s.dirc = d
	return s, nil
}

// sessionMix is the splitmix64 finalizer — the same mixer faultsim uses —
// for deriving independent per-epoch seeds from one session seed.
func sessionMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// materialize freezes the live graph into an immutable CSR snapshot over
// the full capacity id space (inactive vertices isolated, weight 0).
func (s *Session) materialize() *graph.Graph {
	b := graph.NewBuilder(s.cap)
	b.Reserve(s.edges)
	for v := int32(0); v < s.cap; v++ {
		// Builder defaults every weight to 1; inactive vertices must carry
		// 0 so they are invisible to Eq. 3/4 and to the refiner's balance
		// bound.
		b.SetVertexWeight(v, s.weight[v])
		b.SetVertexSize(v, s.vsize[v])
		for _, h := range s.adj[v] {
			if v < h.to {
				b.AddWeightedEdge(v, h.to, h.w)
			}
		}
	}
	return b.Build()
}

// recomputeLive re-derives the cut and raw comm sum from the live
// adjacency in one deterministic ascending-vertex sweep — O(|E|), run at
// construction and after each committed epoch (the incremental deltas
// carry the score between those points).
func (s *Session) recomputeLive() {
	var cut int64
	var comm float64
	c := s.cfg.Costs
	for v := int32(0); v < s.active; v++ {
		pv := s.live[v]
		for _, h := range s.adj[v] {
			if h.to <= v {
				continue
			}
			if pu := s.live[h.to]; pu != pv {
				cut += int64(h.w)
				comm += float64(h.w) * c[pv][pu]
			}
		}
	}
	s.cut = cut
	s.comm = comm
}

// LiveScore returns the incrementally maintained Eq. 2–4 score of the
// live decomposition (migration cost 0 by definition — the live state is
// its own reference).
func (s *Session) LiveScore() partition.Score {
	return partition.Score{EdgeCut: s.cut, CommCost: s.alpha * s.comm, Skewness: s.skewness()}
}

func (s *Session) skewness() float64 {
	if s.totalW == 0 {
		return 0
	}
	var max int64
	for _, l := range s.loads {
		if l > max {
			max = l
		}
	}
	return float64(max) / (float64(s.totalW) / float64(s.k))
}

// Directory returns the epoch-versioned serving layer; its Lookup is
// safe for concurrent use from any goroutine.
func (s *Session) Directory() *dir.Directory { return s.dirc }

// Active returns the number of active (arrived) vertices.
func (s *Session) Active() int32 { return s.active }

// Edges returns the live undirected edge count.
func (s *Session) Edges() int64 { return s.edges }

// Stats snapshots the session counters.
func (s *Session) Stats() Stats {
	return Stats{
		Batches:          s.batches,
		OpsApplied:       s.opsApplied,
		EdgesAdded:       s.edgesAdded,
		EdgesRemoved:     s.edgesRemoved,
		Arrivals:         s.arrivals,
		ArrivalsRejected: s.rejected,
		EpochsLaunched:   s.launches,
		EpochsCommitted:  s.commits,
		EpochsAborted:    s.aborts,
		EpochMoves:       s.epochMoves,
		DirectoryEpoch:   s.dirc.Epoch(),
		Active:           s.active,
		Edges:            s.edges,
		VirtualTicks:     s.clock.Now(),
		Live:             s.LiveScore(),
	}
}

// AssignHash folds the live assignment, the active count, and the
// committed-epoch count into one FNV-1a word — the replay-identity
// fingerprint the daemon CLI prints and the benches cmp across worker
// counts.
func (s *Session) AssignHash() uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	for _, a := range s.live {
		mix(uint64(uint32(a)))
	}
	mix(uint64(uint32(s.active)))
	mix(uint64(s.commits))
	return h
}

// Source returns the live adjacency bounded to the active prefix, the
// view the workload generator draws churn against. The view is only
// valid on the ingest goroutine between Ingest calls.
func (s *Session) Source() dyn.Source { return liveView{s} }

type liveView struct{ s *Session }

func (v liveView) NumVertices() int32        { return v.s.active }
func (v liveView) Degree(u int32) int32      { return int32(len(v.s.adj[u])) }
func (v liveView) Neighbor(u, i int32) int32 { return v.s.adj[u][i].to }
