// NUMA contention: the §6 profiling experiment. Sweeps the contention
// degree λ from 0 to 1 on two cluster models and shows how the refined
// decomposition's communication placement — and the resulting simulated
// job time — shifts as intra-node costs are penalized.
package main

import (
	"fmt"
	"log"

	"paragon/internal/apps"
	"paragon/internal/bsp"
	"paragon/internal/gen"
	"paragon/internal/paragon"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func main() {
	g := gen.RMAT(8000, 60000, 0.57, 0.19, 0.19, 5)
	g.UseDegreeWeights()

	for _, tc := range []struct {
		name       string
		cluster    *topology.Cluster
		contention float64 // BSP memory-subsystem factor
	}{
		{"flat/fast network (Pitt-like, intra-node bound)", topology.PittCluster(2), 0.6},
		{"torus/slow network (Gordon-like, network bound)", topology.GordonCluster(2), 0.1},
	} {
		fmt.Printf("--- %s ---\n", tc.name)
		k := tc.cluster.TotalCores()
		dg := stream.DG(g, int32(k), stream.DefaultOptions())
		nodeOf, _ := tc.cluster.NodeOf(k)
		for _, lambda := range []float64{0, 0.5, 1.0} {
			costs, err := tc.cluster.PartitionCostMatrix(k, lambda)
			if err != nil {
				log.Fatal(err)
			}
			p := dg.Clone()
			cfg := paragon.DefaultConfig()
			cfg.Seed = 11
			cfg.NodeOf = nodeOf
			if _, err := paragon.Refine(g, p, costs, cfg); err != nil {
				log.Fatal(err)
			}
			engine, err := bsp.NewEngine(g, p, tc.cluster, bsp.Options{
				MsgGroupSize: 8, MemoryContention: tc.contention,
			})
			if err != nil {
				log.Fatal(err)
			}
			var jet float64
			var vol bsp.VolumeBreakdown
			for _, src := range []int32{1, 2345} {
				_, res, err := apps.BFS(engine, g, src)
				if err != nil {
					log.Fatal(err)
				}
				jet += res.JET
				vol.IntraSocket += res.Volume.IntraSocket
				vol.InterSocket += res.Volume.InterSocket
				vol.InterNode += res.Volume.InterNode
			}
			intra := vol.IntraSocket + vol.InterSocket
			fmt.Printf("λ=%.1f  BFS JET %8.0f   intra-node %5d KB   inter-node %5d KB\n",
				lambda, jet, intra/1024, vol.InterNode/1024)
		}
	}
	fmt.Println("\nAs λ grows, PARAGON offloads intra-node communication across nodes;")
	fmt.Println("that pays off where the memory subsystem is the bottleneck and")
	fmt.Println("hurts where the network is (the paper fixed λ=1 on PittMPICluster,")
	fmt.Println("λ=0 on Gordon).")
}
