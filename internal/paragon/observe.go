package paragon

// Observability plumbing (DESIGN.md §13). A Refine call with
// Config.Trace / Config.Metrics set emits a structured event stream and
// populates a metrics registry; with both nil the layer costs a handful
// of nil checks. Every emission below happens on the coordinator
// goroutine — the one exception, the per-pair events of the worker pool,
// is staged in per-worker obs.Bufs and committed in task order at the
// wave barrier (schedule.go), mirroring the move arenas. That discipline
// is what keeps the trace byte-identical across Config.Workers values.

import (
	"paragon/internal/obs"
)

// refineMetrics resolves every registry handle the refinement driver
// touches, once per Refine call, so the hot loops increment fields
// instead of hashing metric names. With observability off the zero
// value's nil handles turn every operation into a no-op (obs metrics
// are nil-safe), so call sites need no guards.
type refineMetrics struct {
	rounds    *obs.Counter
	waves     *obs.Counter
	pairs     *obs.Counter
	moves     *obs.Counter
	pairMoves *obs.Histogram
	wavePairs *obs.Histogram
	gain      *obs.Gauge

	shipVerts *obs.Counter
	shipEdges *obs.Counter

	exchangeBytes   *obs.Counter
	exchangeRetries *obs.Counter
	exchangeAborts  *obs.Counter

	crashedGroups  *obs.Counter
	stragglerDrops *obs.Counter
	backoffTicks   *obs.Counter
	virtualTicks   *obs.Gauge

	migratedVerts *obs.Counter
	migrationCost *obs.Gauge
}

func newRefineMetrics(r *obs.Registry) refineMetrics {
	if r == nil {
		return refineMetrics{}
	}
	return refineMetrics{
		rounds:    r.Counter("refine_rounds_total", "refinement rounds committed (initial + shuffles)"),
		waves:     r.Counter("refine_waves_total", "tournament waves dispatched to the worker pool"),
		pairs:     r.Counter("refine_pairs_total", "partition pairs refined"),
		moves:     r.Counter("refine_moves_total", "vertex moves kept across all rounds"),
		pairMoves: r.Histogram("refine_pair_moves", "kept moves per refined pair", obs.PowersOfTwoBounds(16)),
		wavePairs: r.Histogram("refine_wave_pairs", "pairs per tournament wave", obs.PowersOfTwoBounds(10)),
		gain:      r.Gauge("refine_gain", "total realized Eq. 5 gain"),

		shipVerts: r.Counter("ship_boundary_vertices_total", "k-hop boundary vertices shipped to group servers"),
		shipEdges: r.Counter("ship_half_edges_total", "half-edges accompanying shipped vertices"),

		exchangeBytes:   r.Counter("exchange_bytes_total", "location-exchange traffic, lost attempts included"),
		exchangeRetries: r.Counter("exchange_retries_total", "region reduces retransmitted after a drop"),
		exchangeAborts:  r.Counter("exchange_aborts_total", "region reduces abandoned beyond the retry budget"),

		crashedGroups:  r.Counter("fault_crashed_groups_total", "group servers crashed; their rounds' moves discarded"),
		stragglerDrops: r.Counter("fault_straggler_drops_total", "groups dropped for exceeding the round timeout"),
		backoffTicks:   r.Counter("fault_backoff_ticks_total", "virtual ticks spent backing off dropped reduces"),
		virtualTicks:   r.Gauge("fault_virtual_ticks", "total virtual time of the run"),

		migratedVerts: r.Counter("migrate_vertices_total", "vertices whose final owner changed"),
		migrationCost: r.Gauge("migrate_cost", "Eq. 3 migration cost vs. the input decomposition"),
	}
}
