package paragon

// Pair-level parallel scheduling (DESIGN.md §12). The per-group fan-out
// of Algorithm 1 refines each group's m·(m−1)/2 partition pairs serially
// on its group server; here the pairs are instead laid out with the
// round-robin tournament ("circle") schedule — every tournament round of
// a group is a set of ⌊m/2⌋ pairs over pairwise-disjoint partitions — and
// all groups' same-round pairs form one global wave executed concurrently
// on a bounded worker pool.
//
// Determinism is structural, not incidental:
//
//   - Pairs within a wave touch pairwise-disjoint partitions, so their
//     candidate buckets, load entries, and moved vertices are disjoint —
//     every shared write during a wave goes to memory owned by exactly
//     one pair.
//   - Reads of vertices OUTSIDE a pair go through the `frozen` view,
//     which only the coordinator updates, between waves, in task order.
//     A pair's computation therefore depends only on wave-start state,
//     never on how concurrent pairs interleave.
//   - Per-pair results land in task-indexed slices and are reduced in
//     task order; the sharded sweeps accumulate into a fixed number of
//     shards (sweepShards, independent of Workers) reduced in shard
//     order, so every float sum associates identically at any worker
//     count.
//
// Scaling discipline (DESIGN.md §14): all per-round sequential work is
// proportional to *moved/boundary* vertices, never to |V|. The frozen
// view, the shared shadow, and the boundary bitset are initialized once
// per Refine and thereafter patched only from the move log — the commit
// loop leaves master, shadow, and frozen bit-identical at every round
// boundary, so the per-round O(|V|) copies of the original design are
// gone. The remaining full sweeps (ship accounting, migration sweep)
// walk bit-packed masks at 64 vertices per word.
//
// The result is bit-identical to serial execution of the same schedule
// for any Config.Workers, which TestSchedulerDeterminism asserts.

import (
	"paragon/internal/aragon"
	"paragon/internal/graph"
	"paragon/internal/obs"
	"paragon/internal/partition"
)

// sweepShards is the fixed shard count for the per-round sweeps (allowed
// mask, boundary-shipping accounting, final migration sweep). It is
// deliberately independent of Config.Workers: per-shard accumulators
// always cover identical vertex ranges, so the shard-order reduction
// sums over the same boundaries no matter how many workers executed the
// shards — and the serial migration sweep emulates the same shard
// association exactly.
const sweepShards = 64

// pairTask is one scheduled refinement pair.
type pairTask struct {
	pi, pj int32
}

// taskSpan locates a task's kept moves inside its worker's arena, and —
// when tracing — its staged trace events inside the worker's event buf.
// Arenas and bufs grow by append, so the span stores indices, not slices.
type taskSpan struct {
	worker int32
	mstart int32
	mend   int32
	estart int32
	eend   int32
}

// span is the work order sent to every worker: a task kind plus, for
// pair waves, the wave's task range. Workers pick the indices congruent
// to their id modulo Workers — a static assignment, so allocation counts
// are deterministic for a fixed worker count (no work stealing).
type span struct {
	kind int32
	lo   int32
	hi   int32
}

const (
	kindPairs int32 = iota
	kindMask
	kindShip
)

// Test hooks, consulted only when non-nil (set by scheduler tests, from
// the coordinator goroutine, never concurrently with a running Refine).
// testRoundStart fires before the first wave of a round; testWaveSynced
// fires at each wave barrier after the frozen view absorbed the wave's
// kept moves, with the wave's task range.
var (
	testRoundStart func(sc *scheduler)
	testWaveSynced func(sc *scheduler, wave int, lo, hi int32)
)

// scheduler owns the shared state of one Refine call's parallel
// execution: the shadow view the waves refine, the wave-constant frozen
// assignment, the per-worker refiners and move arenas, and the shard
// accumulators of the sharded sweeps. It is created once per Refine and
// its worker goroutines live until close.
//
// Delta round-sync invariant (DESIGN.md §14): outside runRound,
//
//	cur.Assign == frozen == pm.Assign,
//
// and the shadow's buckets hold the same membership as the master
// index's. newScheduler establishes the invariant with one O(|V|) init;
// commitRound preserves it by replaying exactly the kept moves into the
// master that the waves already applied to the shadow (rolled-back moves
// were undone through the shadow before the wave barrier) and that the
// barriers already patched into frozen.
type scheduler struct {
	g       *graph.Graph
	pm      *partition.Partitioning // master (authoritative) partitioning
	ix      *partition.Index
	c       [][]float64
	orig    []int32
	maxLoad int64
	workers int

	cur     *partition.Partitioning // shared live view refined by the waves
	frozen  []int32                 // wave-constant copy, synced at barriers
	shadow  *partition.Shadow
	profile *partition.NeighborProfile // wave-start neighbor weights, synced with frozen

	refiners []*aragon.Refiner
	arenas   [][]aragon.Move

	// Observability: workers stage KindPairRefined events in their ebuf
	// (never touching the tracer directly); the coordinator commits each
	// task's staged span at the wave barrier, in task order — the same
	// discipline as the move arenas, and the reason the trace is
	// bit-identical across worker counts.
	trace *obs.Tracer
	mx    refineMetrics
	round int32
	ebufs []obs.Buf

	tasks   []pairTask
	pairbuf [][2]int32 // scratch for AppendTournamentRound
	waves   []int32    // wave t = tasks[waves[t]:waves[t+1]]
	spans   []taskSpan
	results []aragon.Result
	live    []int32 // surviving group indices this round, ascending

	roundLoads []int64

	// Movable-vertex mask machinery (§5). bmask is the boundary bitset,
	// filled by one sharded scan on the first round and thereafter
	// delta-maintained from the commit log's dirty list (a vertex's
	// boundary status can change only when it or a neighbor moves).
	// mask is what refiners and the ship sweep consume: bmask itself at
	// k-hop 0, or the k-hop expansion kmask otherwise.
	mask     *partition.Bitset
	bmask    *partition.Bitset
	kmask    *partition.Bitset // lazily allocated, k-hop > 0 only
	maskInit bool
	dirty    []int32           // moved vertices + neighbors since the last mask refresh
	diff     *partition.Bitset // v set iff pm.Assign[v] != orig[v]
	boundary []int32           // AppendSet scratch for the k-hop path
	frontier []int32           // ExpandFrontier scratch for the k-hop path
	serverOf []int32           // partition -> group server, set by the caller

	shipVerts []int64
	shipEdges []int64

	start []chan span
	done  chan struct{}
}

func newScheduler(g *graph.Graph, pm *partition.Partitioning, ix *partition.Index, c [][]float64, orig []int32, maxLoad int64, cfg Config) *scheduler {
	n := g.NumVertices()
	w := cfg.Workers
	sc := &scheduler{
		g:       g,
		pm:      pm,
		ix:      ix,
		c:       c,
		orig:    orig,
		maxLoad: maxLoad,
		workers: w,

		cur:    &partition.Partitioning{K: pm.K, Assign: make([]int32, n)},
		frozen: make([]int32, n),

		refiners: make([]*aragon.Refiner, w),
		arenas:   make([][]aragon.Move, w),

		trace: cfg.Trace,
		mx:    newRefineMetrics(cfg.Metrics),
		ebufs: make([]obs.Buf, w),

		roundLoads: make([]int64, pm.K),
		bmask:      partition.NewBitset(n),
		diff:       partition.NewBitset(n),

		shipVerts: make([]int64, sweepShards),
		shipEdges: make([]int64, sweepShards),

		start: make([]chan span, w),
		done:  make(chan struct{}, w),
	}
	sc.mask = sc.bmask
	// The one O(|V|) sync of the whole Refine: seed the live view, the
	// frozen view, and the shadow from the master. Every later round
	// starts from the delta round-sync invariant instead of re-copying.
	copy(sc.cur.Assign, pm.Assign)
	copy(sc.frozen, pm.Assign)
	sc.shadow = partition.NewShadow(sc.cur, n)
	sc.shadow.Reset(ix)
	sc.profile = partition.BuildNeighborProfile(g, sc.frozen, pm.K)
	acfg := cfg.AragonConfig()
	for i := 0; i < w; i++ {
		r := aragon.NewRefiner(g, sc.shadow, acfg)
		r.SetFrozen(sc.frozen)
		r.SetProfile(sc.profile)
		sc.refiners[i] = r
		sc.start[i] = make(chan span, 1)
		go sc.worker(i)
	}
	return sc
}

// close shuts the worker pool down. Workers drain their channel and
// exit; the buffered done channel needs no further synchronization
// because close is only called after every dispatched span completed.
func (sc *scheduler) close() {
	for _, ch := range sc.start {
		close(ch)
	}
}

func (sc *scheduler) worker(w int) {
	for sp := range sc.start[w] {
		switch sp.kind {
		case kindPairs:
			sc.runPairs(w, sp.lo, sp.hi)
		case kindMask:
			sc.runMaskShards(w)
		case kindShip:
			sc.runShipShards(w)
		}
		sc.done <- struct{}{}
	}
}

// dispatch hands one span to every worker and waits for all of them —
// the wave barrier. Channel send/receive pairs give the coordinator's
// preceding writes happens-before visibility in the workers and vice
// versa on completion.
func (sc *scheduler) dispatch(sp span) {
	for _, ch := range sc.start {
		ch <- sp
	}
	for range sc.start {
		<-sc.done
	}
}

// shardRange returns shard s of [0, n) under the fixed sweepShards
// split. 64-bit intermediate math: n·s can exceed int32.
func shardRange(n int32, s int) (int32, int32) {
	lo := int32(int64(n) * int64(s) / sweepShards)
	hi := int32(int64(n) * int64(s+1) / sweepShards)
	return lo, hi
}

// buildSchedule lays out the round's tasks: wave t holds, in ascending
// group order, every surviving group's tournament-round-t pairs. Groups
// of uneven size finish early; their slots simply stop contributing to
// later waves.
func (sc *scheduler) buildSchedule(groups [][]int32) {
	sc.tasks = sc.tasks[:0]
	sc.waves = sc.waves[:0]
	maxR := 0
	for _, gi := range sc.live {
		m := len(groups[gi])
		if r := m + (m & 1) - 1; r > maxR {
			maxR = r
		}
	}
	sc.waves = append(sc.waves, 0)
	for t := 0; t < maxR; t++ {
		for _, gi := range sc.live {
			sc.appendWavePairs(groups[gi], t)
		}
		sc.waves = append(sc.waves, int32(len(sc.tasks)))
	}
	nt := len(sc.tasks)
	if cap(sc.results) < nt {
		sc.results = make([]aragon.Result, nt)
		sc.spans = make([]taskSpan, nt)
	} else {
		sc.results = sc.results[:nt]
		sc.spans = sc.spans[:nt]
	}
}

// appendWavePairs appends tournament round t of one group to the task
// list, via the shared circle-schedule generator and a reused pair
// scratch.
func (sc *scheduler) appendWavePairs(group []int32, t int) {
	sc.pairbuf = AppendTournamentRound(sc.pairbuf[:0], group, t)
	for _, pr := range sc.pairbuf {
		sc.tasks = append(sc.tasks, pairTask{pr[0], pr[1]})
	}
}

// AppendTournamentRound appends round t of the circle tournament over
// group to dst and returns dst: the circle method over M = m (+1 if odd,
// a bye) slots. Slot M−1 is fixed and plays slot t; slot (t+i) mod (M−1)
// plays slot (t−i) mod (M−1). Pairs within one round are pairwise
// disjoint — the disjointness the scheduler's wave barrier relies on —
// and each pair is emitted ascending (pi < pj). Rounds t in
// [0, m + (m&1) − 1) cover every pair of the group exactly once.
// Exported because portfolio members replay the same schedule serially.
func AppendTournamentRound(dst [][2]int32, group []int32, t int) [][2]int32 {
	m := len(group)
	mm := m + (m & 1)
	rounds := mm - 1
	if t >= rounds {
		return dst
	}
	pair := func(a, b int) {
		if a >= m || b >= m {
			return // the bye slot of an odd group
		}
		pi, pj := group[a], group[b]
		if pi > pj {
			pi, pj = pj, pi
		}
		dst = append(dst, [2]int32{pi, pj})
	}
	pair(mm-1, t%rounds)
	for i := 1; i < mm/2; i++ {
		pair((t+i)%rounds, (t-i+rounds)%rounds)
	}
	return dst
}

// runRound executes the current schedule against the live shadow: wave
// by wave, with the coordinator syncing the frozen view in task order at
// every barrier. The shadow, the live view, and the frozen view already
// equal the master on entry (delta round-sync invariant) — no per-round
// copies. Kept moves land in per-worker arenas; commitRound replays them
// into the master in task order. Staged trace events are committed at
// the same barrier, also in task order.
func (sc *scheduler) runRound(round int32, loads []int64) {
	copy(sc.roundLoads, loads)
	sc.round = round
	for w := range sc.arenas {
		sc.arenas[w] = sc.arenas[w][:0]
		sc.ebufs[w].Reset()
	}
	if testRoundStart != nil {
		testRoundStart(sc)
	}
	for t := 0; t+1 < len(sc.waves); t++ {
		lo, hi := sc.waves[t], sc.waves[t+1]
		if lo == hi {
			continue
		}
		if sc.trace != nil {
			sc.trace.Emit(obs.Event{Kind: obs.KindWaveScheduled, Round: round,
				A: int32(t), N: int64(hi - lo)})
		}
		sc.dispatch(span{kind: kindPairs, lo: lo, hi: hi})
		// Wave barrier: publish this wave's kept moves into the frozen
		// view and the wave-start profile, in task order — a delta patch
		// over the move log, never a full copy. Each vertex is moved by
		// at most one pair per wave (disjoint partitions), so this is a
		// plain replay.
		waveMoves := 0
		for ti := lo; ti < hi; ti++ {
			for _, mv := range sc.taskMoves(ti) {
				old := sc.frozen[mv.V]
				adj := sc.g.Neighbors(mv.V)
				ew := sc.g.EdgeWeights(mv.V)
				ew = ew[:len(adj)]
				for i, u := range adj {
					sc.profile.MoveNeighbor(u, old, mv.To, int64(ew[i]))
				}
				sc.frozen[mv.V] = mv.To
			}
			waveMoves += sc.results[ti].Moves
			if sc.trace != nil {
				sp := sc.spans[ti]
				sc.trace.CommitStaged(&sc.ebufs[sp.worker], int(sp.estart), int(sp.eend))
			}
		}
		sc.mx.waves.Inc()
		sc.mx.wavePairs.Observe(int64(hi - lo))
		if sc.trace != nil {
			sc.trace.Emit(obs.Event{Kind: obs.KindWaveCommitted, Round: round,
				A: int32(t), N: int64(waveMoves)})
		}
		if testWaveSynced != nil {
			testWaveSynced(sc, t, lo, hi)
		}
	}
}

// commitRound replays the round's kept moves into the master
// partitioning, in task order, restoring the delta round-sync invariant:
// the shadow applied exactly these moves during the waves (rolled-back
// suffixes were undone through it), and the wave barriers patched
// exactly these moves into frozen, so after the replay
// cur.Assign == frozen == pm.Assign without any copying. Per-task gains
// are reduced into st in task order — the fixed-order float summation of
// the determinism contract. The move log also feeds the two delta
// structures of the sweeps: the dirty list (moved vertices + neighbors,
// whose boundary status the next mask refresh re-evaluates) and the diff
// bitset (vertices whose owner differs from the original decomposition,
// walked by the final migration sweep).
func (sc *scheduler) commitRound(loads []int64, st *Stats) (roundMoves int, roundGain float64) {
	for ti := range sc.tasks {
		res := sc.results[ti]
		st.PairsRefined++
		st.Moves += res.Moves
		st.Gain += res.Gain
		roundGain += res.Gain
		roundMoves += res.Moves
		sc.mx.pairMoves.Observe(int64(res.Moves))
		for _, mv := range sc.taskMoves(int32(ti)) {
			from := sc.pm.Assign[mv.V]
			sc.ix.Move(mv.V, mv.To)
			w := int64(sc.g.VertexWeight(mv.V))
			loads[from] -= w
			loads[mv.To] += w
			sc.diff.SetTo(mv.V, mv.To != sc.orig[mv.V])
			sc.dirty = append(sc.dirty, mv.V)
			sc.dirty = append(sc.dirty, sc.g.Neighbors(mv.V)...)
		}
	}
	return roundMoves, roundGain
}

// runPairs refines this worker's share (static modulo assignment) of
// one wave's tasks. When tracing, each task's KindPairRefined event is
// staged in this worker's ebuf — the coordinator commits it at the
// barrier — so workers never contend on the tracer and the stream stays
// independent of Workers.
func (sc *scheduler) runPairs(w int, lo, hi int32) {
	r := sc.refiners[w]
	for ti := lo; ti < hi; ti++ {
		if int(ti)%sc.workers != w {
			continue
		}
		t := sc.tasks[ti]
		mstart := int32(len(sc.arenas[w]))
		var res aragon.Result
		sc.arenas[w], res = r.RefinePairScheduled(sc.arenas[w], sc.orig, t.pi, t.pj, sc.c, sc.roundLoads, sc.maxLoad, sc.mask)
		sc.results[ti] = res
		estart := sc.ebufs[w].Mark()
		if sc.trace != nil {
			sc.ebufs[w].Emit(obs.Event{Kind: obs.KindPairRefined, Round: sc.round,
				A: t.pi, B: t.pj, N: int64(res.Moves), X: res.Gain})
		}
		sc.spans[ti] = taskSpan{worker: int32(w), mstart: mstart, mend: int32(len(sc.arenas[w])),
			estart: int32(estart), eend: int32(sc.ebufs[w].Mark())}
	}
}

// taskMoves returns task ti's kept moves, in execution order.
func (sc *scheduler) taskMoves(ti int32) []aragon.Move {
	sp := sc.spans[ti]
	return sc.arenas[sp.worker][sp.mstart:sp.mend]
}

// allowedMask refreshes and returns the movable-vertex mask of §5. The
// boundary bitset is filled by one sharded full scan on the first call;
// every later round only re-evaluates the commit log's dirty vertices —
// a vertex's boundary status can change only when it or a neighbor
// moves, so the refresh cost is proportional to the previous round's
// moved volume, not |V|. The k-hop 0 default returns the boundary
// bitset directly; a positive radius expands it with the BFS into the
// separate kmask.
func (sc *scheduler) allowedMask(kHop int) *partition.Bitset {
	if !sc.maskInit {
		sc.dispatch(span{kind: kindMask})
		sc.maskInit = true
	} else {
		for _, v := range sc.dirty {
			sc.bmask.SetTo(v, sc.ix.IsBoundary(v))
		}
	}
	sc.dirty = sc.dirty[:0]
	if kHop <= 0 {
		sc.mask = sc.bmask
		return sc.mask
	}
	if sc.kmask == nil {
		sc.kmask = partition.NewBitset(sc.g.NumVertices())
	}
	sc.boundary = sc.bmask.AppendSet(sc.boundary[:0])
	sc.frontier = graph.ExpandFrontier(sc.g, sc.boundary, kHop, sc.frontier)
	sc.kmask.ClearAll()
	for _, v := range sc.frontier {
		sc.kmask.Set(v)
	}
	sc.mask = sc.kmask
	return sc.mask
}

// runMaskShards fills this worker's word-aligned shards of the boundary
// bitset from the index's maintained counts — the one full boundary
// scan of a Refine. Shard boundaries are word-aligned (WordShard), so
// concurrent workers never write the same word.
func (sc *scheduler) runMaskShards(w int) {
	n := sc.g.NumVertices()
	words := sc.bmask.Words()
	for s := w; s < sweepShards; s += sc.workers {
		wLo, wHi := partition.WordShard(n, s, sweepShards)
		for wi := wLo; wi < wHi; wi++ {
			lo := int32(wi) << 6
			hi := lo + 64
			if hi > n {
				hi = n
			}
			var word uint64
			for v := lo; v < hi; v++ {
				if sc.ix.IsBoundary(v) {
					word |= 1 << (uint32(v) & 63)
				}
			}
			words[wi] = word
		}
	}
}

// shipAccounting runs the boundary-shipping volume sweep: every allowed
// vertex whose partition's group server is a different partition is
// shipped, with its half-edges. serverOf maps partition -> server (−1
// for partitions outside every group).
func (sc *scheduler) shipAccounting(serverOf []int32) (verts, edges int64) {
	sc.serverOf = serverOf
	sc.dispatch(span{kind: kindShip})
	for s := 0; s < sweepShards; s++ {
		verts += sc.shipVerts[s]
		edges += sc.shipEdges[s]
	}
	return verts, edges
}

// runShipShards walks only the set bits of the movable mask — 64
// vertices per word skipped when none is movable — instead of testing
// every vertex. Shard partials are integers, summed in shard order.
func (sc *scheduler) runShipShards(w int) {
	n := sc.g.NumVertices()
	assign := sc.pm.Assign
	for s := w; s < sweepShards; s += sc.workers {
		lo, hi := shardRange(n, s)
		var verts, edges int64
		sc.mask.Range(lo, hi, func(v int32) {
			if sv := sc.serverOf[assign[v]]; sv >= 0 && sv != assign[v] {
				verts++
				edges += int64(sc.g.Degree(v))
			}
		})
		sc.shipVerts[s] = verts
		sc.shipEdges[s] = edges
	}
}

// migrationSweep computes the final migration plan vs. the input
// decomposition by walking the maintained diff bitset — cost
// proportional to migrated vertices (plus the O(|V|/64) word scan),
// not |V|. The float partials are still accumulated per fixed shard and
// reduced in shard order, emulating the historical sharded sweep's
// summation association exactly, so the result is bit-identical to the
// full-scan implementation at every worker count.
func (sc *scheduler) migrationSweep() (int64, float64) {
	n := sc.g.NumVertices()
	assign := sc.pm.Assign
	var mv int64
	var mc float64
	for s := 0; s < sweepShards; s++ {
		lo, hi := shardRange(n, s)
		var shardVerts int64
		var shardCost float64
		sc.diff.Range(lo, hi, func(v int32) {
			shardVerts++
			shardCost += float64(sc.g.VertexSize(v)) * sc.c[sc.orig[v]][assign[v]]
		})
		mv += shardVerts
		mc += shardCost
	}
	return mv, mc
}
