// Package helpers is the dependency of the crosspkg taint fixture; it
// is loaded for the call graph but not itself checked.
package helpers

import "time"

// Stamp hides a clock read behind one more call.
func Stamp() int64 { return tick() }

func tick() int64 { return time.Now().UnixNano() }
