package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedWrite enforces the parallel-commit contract of DESIGN.md §12:
// state written from inside a goroutine must be a per-worker arena slot
// — a slice/map element whose index is owned by exactly one task — or a
// commutative guarded counter; everything else must be committed by the
// coordinator at a barrier. A captured variable assigned from a worker
// is at best a race and at worst (mutex-guarded) a completion-order leak
// that breaks bit-identical replay across worker counts.
//
// The checker analyzes every `go` statement's body: a function literal,
// or the declaration of a directly spawned same-package function or
// method (the worker-pool pattern, `go sc.worker(i)`), following calls
// one level into same-package helpers with parameter roles mapped.
// Objects are classified as
//
//   - task ids: the spawn body's parameters (loop fan-out passes its
//     variables as arguments — the looprace contract), values received
//     from or ranged over a channel (work-queue items are delivered to
//     exactly one worker), and for-loop variables seeded from task ids
//     (the static modulo-stride idiom);
//   - arena aliases: locals bound to a shared container indexed by a
//     task id (st := stores[r]) — the worker owns the slot, so writes
//     anywhere under it are private;
//   - shared: captured variables, package-level variables, receivers and
//     parameters fed from captured state.
//
// A write is accepted when its target is a local or arena alias, when
// some index on its access path is a task id (outcomes[r] = ...), or
// when it is an integer increment bracketed by a mutex Lock/Unlock pair
// (commutative, so completion order cannot leak). Everything else is
// reported. Disjointness the checker cannot see — partition-disjoint
// wave tasks, rank-owned vertex ranges — is documented site by site with
// //lint:ignore sharedwrite <reason>.
type SharedWrite struct{}

func (SharedWrite) Name() string { return "sharedwrite" }
func (SharedWrite) Doc() string {
	return "goroutine writes must target per-worker arena slots or be committed at a barrier"
}

func (c SharedWrite) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	// A helper followed from several spawn sites can report the same
	// write once per caller; identical findings are deduplicated.
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			for _, d := range c.checkSpawn(pkg, gs) {
				key := d.Pos.String() + "\x00" + d.Message
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// checkSpawn analyzes one go statement.
func (c SharedWrite) checkSpawn(pkg *Package, gs *ast.GoStmt) []Diagnostic {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		sw := newSpawnWalker(pkg, fun.Body)
		for _, obj := range paramObjs(pkg, fun.Type) {
			sw.taskIDs[obj] = true
		}
		sw.markResults(fun.Type)
		sw.classify(fun.Body)
		sw.walk(fun.Body)
		return sw.diags
	case *ast.Ident, *ast.SelectorExpr:
		fn := calleeFunc(pkg, fun)
		if fn == nil {
			return nil
		}
		decl := declOf(pkg, fn)
		if decl == nil || decl.Body == nil {
			return nil
		}
		sw := newSpawnWalker(pkg, decl.Body)
		// Spawn arguments are loop-iteration values (looprace enforces
		// pass-as-arg), so every parameter is a task id; the receiver is
		// shared worker-pool state.
		for _, obj := range paramObjs(pkg, decl.Type) {
			sw.taskIDs[obj] = true
		}
		if obj := recvObj(pkg, decl); obj != nil {
			sw.shared[obj] = true
		}
		sw.markResults(decl.Type)
		sw.classify(decl.Body)
		sw.walk(decl.Body)
		return sw.diags
	}
	return nil
}

// spawnWalker carries one spawn body's classification state.
type spawnWalker struct {
	pkg  *Package
	body *ast.BlockStmt
	// taskIDs may index shared containers (per-task slot ownership).
	taskIDs map[types.Object]bool
	// arenas are locals the worker owns outright (writes under them are
	// private).
	arenas map[types.Object]bool
	// shared are objects explicitly known shared: receivers and
	// parameters mapped from captured arguments.
	shared map[types.Object]bool
	// private are objects declared in the signature but owned by the
	// body — named result parameters.
	private map[types.Object]bool
	// locks/unlocks are the positions of mutex Lock/Unlock calls, for
	// the guarded-counter rule.
	locks, unlocks []token.Pos
	depth          int
	diags          []Diagnostic
}

func newSpawnWalker(pkg *Package, body *ast.BlockStmt) *spawnWalker {
	return &spawnWalker{
		pkg:     pkg,
		body:    body,
		taskIDs: map[types.Object]bool{},
		arenas:  map[types.Object]bool{},
		shared:  map[types.Object]bool{},
		private: map[types.Object]bool{},
	}
}

// markResults registers a signature's named result parameters as
// body-owned: they are declared outside the body span but are ordinary
// locals of the call frame, not captures.
func (sw *spawnWalker) markResults(ft *ast.FuncType) {
	if ft == nil || ft.Results == nil {
		return
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if obj := sw.pkg.Info.Defs[name]; obj != nil {
				sw.private[obj] = true
			}
		}
	}
}

// isShared reports whether obj is shared state from this body's point of
// view: explicitly mapped shared, a package-level variable, or (for
// literal bodies) captured from an enclosing scope.
func (sw *spawnWalker) isShared(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if sw.shared[obj] {
		return true
	}
	if sw.taskIDs[obj] || sw.arenas[obj] || sw.private[obj] {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		// Field selections inherit sharedness from their base expression;
		// the field object itself (declared at the struct type) says
		// nothing about who owns this access path.
		return false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return true // package-level variable
	}
	// Declared outside the body span: captured.
	return obj.Pos() < sw.body.Pos() || obj.Pos() > sw.body.End()
}

// classify runs the local-role propagation: two passes so chains resolve
// (sp := <-ch; lo := sp.lo; for ti := lo; ...).
func (sw *spawnWalker) classify(body *ast.BlockStmt) {
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false // nested spawns are classified on their own
			case *ast.RangeStmt:
				sw.classifyRange(n)
			case *ast.ForStmt:
				if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					// for ti := lo; ...: stride loops seeded from a task id
					// keep task-id status (the modulo-assignment idiom).
					sw.classifyAssign(init, true)
				}
			case *ast.AssignStmt:
				sw.classifyAssign(n, false)
			case *ast.UnaryExpr:
				// x := <-ch handled via classifyAssign's receive case.
			}
			return true
		})
	}
}

// classifyRange assigns roles to range variables: channel ranges yield
// task ids; ranges over an arena alias yield arena values.
func (sw *spawnWalker) classifyRange(n *ast.RangeStmt) {
	overChan := false
	if t := typeOf(sw.pkg, n.X); t != nil {
		_, overChan = t.Underlying().(*types.Chan)
	}
	overArena := sw.rootIsArena(n.X)
	for _, e := range []ast.Expr{n.Key, n.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := objectOf(sw.pkg, id)
		if obj == nil {
			continue
		}
		if overChan {
			sw.taskIDs[obj] = true
		} else if overArena {
			sw.arenas[obj] = true
		}
	}
}

// classifyAssign assigns roles to defined/assigned locals.
func (sw *spawnWalker) classifyAssign(n *ast.AssignStmt, forInit bool) {
	if len(n.Lhs) != len(n.Rhs) && len(n.Rhs) != 1 {
		return
	}
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := objectOf(sw.pkg, id)
		if obj == nil || sw.isShared(obj) {
			continue
		}
		rhs := n.Rhs[0]
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		}
		switch {
		case isReceive(rhs):
			sw.taskIDs[obj] = true
		case sw.isArenaExpr(rhs):
			sw.arenas[obj] = true
		case forInit && sw.mentionsTaskID(rhs):
			sw.taskIDs[obj] = true
		case sw.mentionsTaskID(rhs) && !sw.mentionsSharedIdent(rhs):
			// Values derived purely from task ids (sp.lo, ti+1) stay
			// task ids; mixing in shared state forfeits the role.
			sw.taskIDs[obj] = true
		case sw.sharedAccessPath(rhs) && isRefType(obj.Type()):
			// A pointer/slice/map local bound to a piece of shared state
			// (sh := dir[i]) still points into shared state; writes through
			// it are shared writes. Value copies and call results stay
			// private.
			sw.shared[obj] = true
		}
	}
}

// isArenaExpr reports expressions granting slot ownership: a shared
// container indexed by a task id (stores[r]), or any access path rooted
// at an existing arena alias.
func (sw *spawnWalker) isArenaExpr(e ast.Expr) bool {
	if sw.rootIsArena(e) {
		return true
	}
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	return sw.mentionsTaskID(ix.Index)
}

// rootIsArena peels selectors/indexes/derefs and reports whether the
// base identifier is an arena alias.
func (sw *spawnWalker) rootIsArena(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := objectOf(sw.pkg, x)
			return obj != nil && sw.arenas[obj]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// sharedAccessPath reports whether e is a pure access path — selectors,
// indexes, slices, derefs, address-of — rooted at a shared identifier.
// Unlike mentionsSharedIdent it does not fire on call results, so fresh
// values computed FROM shared state stay private.
func (sw *spawnWalker) sharedAccessPath(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := objectOf(sw.pkg, x)
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				return sw.isShared(obj)
			}
			return false
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		default:
			return false
		}
	}
}

func (sw *spawnWalker) mentionsTaskID(e ast.Expr) bool {
	return sw.mentionsRole(e, sw.taskIDs)
}

func (sw *spawnWalker) mentionsSharedIdent(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, isVar := objectOf(sw.pkg, id).(*types.Var); isVar && sw.isShared(obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (sw *spawnWalker) mentionsRole(e ast.Expr, role map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(sw.pkg, id); obj != nil && role[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func isReceive(e ast.Expr) bool {
	u, ok := e.(*ast.UnaryExpr)
	return ok && u.Op == token.ARROW
}

// walk reports violating writes in the spawn body, descending into
// nested non-go function literals (they run inside this goroutine) and
// one level into same-package callees.
func (sw *spawnWalker) walk(body *ast.BlockStmt) {
	sw.collectLockSpans(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested spawn is its own analysis unit
		case *ast.AssignStmt:
			sw.checkWrite(n)
		case *ast.IncDecStmt:
			sw.checkIncDec(n)
		case *ast.CallExpr:
			sw.checkCall(n)
		}
		return true
	})
}

func (sw *spawnWalker) collectLockSpans(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock":
				sw.locks = append(sw.locks, call.Pos())
			case "Unlock", "RUnlock":
				sw.unlocks = append(sw.unlocks, call.Pos())
			}
		}
		return true
	})
}

// guarded reports whether pos falls between some Lock and some Unlock in
// this body — the commutative-counter escape applies only there.
func (sw *spawnWalker) guarded(pos token.Pos) bool {
	before, after := false, false
	for _, l := range sw.locks {
		if l < pos {
			before = true
		}
	}
	for _, u := range sw.unlocks {
		if u > pos {
			after = true
		}
	}
	return before && after
}

func (sw *spawnWalker) checkWrite(n *ast.AssignStmt) {
	for _, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		verdict := sw.judgeTarget(lhs)
		if verdict == "" {
			continue
		}
		if sw.guarded(n.Pos()) && isCommutativeTok(n.Tok) && isIntegerExpr(sw.pkg, lhs) {
			continue // guarded commutative counter
		}
		sw.diags = append(sw.diags, diag(sw.pkg, n.Pos(), "sharedwrite",
			"goroutine writes %s %s; use a per-worker arena slot indexed by a task id, or commit at the barrier",
			verdict, exprString(lhs)))
	}
}

func (sw *spawnWalker) checkIncDec(n *ast.IncDecStmt) {
	verdict := sw.judgeTarget(n.X)
	if verdict == "" {
		return
	}
	if sw.guarded(n.Pos()) && isIntegerExpr(sw.pkg, n.X) {
		return
	}
	sw.diags = append(sw.diags, diag(sw.pkg, n.Pos(), "sharedwrite",
		"goroutine writes %s %s; use a per-worker arena slot indexed by a task id, or commit at the barrier",
		verdict, exprString(n.X)))
}

// checkCall judges builtins with write effects (copy, delete) and
// follows same-package callees one level deep.
func (sw *spawnWalker) checkCall(n *ast.CallExpr) {
	if isBuiltin(sw.pkg, n.Fun, "copy") || isBuiltin(sw.pkg, n.Fun, "delete") {
		if len(n.Args) >= 1 {
			if verdict := sw.judgeTarget(n.Args[0]); verdict != "" {
				sw.diags = append(sw.diags, diag(sw.pkg, n.Pos(), "sharedwrite",
					"goroutine mutates %s %s through %s; use a per-worker arena slot or commit at the barrier",
					verdict, exprString(n.Args[0]), exprString(n.Fun)))
			}
		}
		return
	}
	if sw.depth >= 1 {
		return
	}
	fn := calleeFunc(sw.pkg, n.Fun)
	if fn == nil || fn.Pkg() == nil || sw.pkg.Types == nil || fn.Pkg() != sw.pkg.Types {
		return
	}
	decl := declOf(sw.pkg, fn)
	if decl == nil || decl.Body == nil || decl.Body == sw.body {
		return
	}
	inner := newSpawnWalker(sw.pkg, decl.Body)
	inner.depth = sw.depth + 1
	params := paramObjs(sw.pkg, decl.Type)
	for i, obj := range params {
		if i < len(n.Args) {
			switch {
			case sw.mentionsTaskID(n.Args[i]) && !sw.mentionsSharedIdent(n.Args[i]):
				inner.taskIDs[obj] = true
			case sw.rootIsArena(n.Args[i]):
				inner.arenas[obj] = true
			case sw.mentionsSharedIdent(n.Args[i]):
				inner.shared[obj] = true
			}
		}
	}
	if obj := recvObj(sw.pkg, decl); obj != nil {
		shared := true
		if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sw.rootIsArena(sel.X) {
			shared = false
			inner.arenas[obj] = true
		}
		if shared {
			inner.shared[obj] = true
		}
	}
	inner.markResults(decl.Type)
	inner.classify(decl.Body)
	inner.walk(decl.Body)
	sw.diags = append(sw.diags, inner.diags...)
}

// judgeTarget decides one write target. It returns "" when the write is
// allowed, else a short description of why the target is shared.
func (sw *spawnWalker) judgeTarget(lhs ast.Expr) string {
	// Any task-id index on the access path grants slot ownership.
	e := lhs
	peeled := false
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			if sw.mentionsTaskID(x.Index) {
				return ""
			}
			e = x.X
			peeled = true
			continue
		case *ast.SelectorExpr:
			e = x.X
			peeled = true
			continue
		case *ast.StarExpr:
			e = x.X
			peeled = true
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := objectOf(sw.pkg, x)
			if obj == nil || sw.arenas[obj] || sw.taskIDs[obj] || sw.private[obj] {
				return ""
			}
			v, isVar := obj.(*types.Var)
			if !isVar || v.IsField() {
				return ""
			}
			pkgLevel := v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
			captured := obj.Pos() < sw.body.Pos() || obj.Pos() > sw.body.End()
			if !peeled {
				// Rebinding a binding this frame owns — a local, parameter,
				// receiver, or alias — writes the binding's own storage and
				// is private. Only storage living outside the frame is
				// shared when written directly.
				if sw.shared[obj] {
					return ""
				}
				if pkgLevel {
					return "package-level"
				}
				if captured {
					return "captured"
				}
				return ""
			}
			if sw.shared[obj] {
				return "shared"
			}
			if pkgLevel {
				return "package-level"
			}
			if captured {
				return "captured"
			}
			return ""
		default:
			return ""
		}
	}
}

// ---- shared helpers ----

// paramObjs returns the declared objects of a function type's parameters.
func paramObjs(pkg *Package, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft == nil || ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// recvObj returns the receiver object of a method declaration, nil for
// functions or anonymous receivers.
func recvObj(pkg *Package, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[decl.Recv.List[0].Names[0]]
}

// declOf finds the FuncDecl of fn within pkg's files.
func declOf(pkg *Package, fn *types.Func) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if pkg.Info.Defs[fd.Name] == fn {
					return fd
				}
			}
		}
	}
	return nil
}

// isRefType reports types whose copies still alias the original backing
// store: pointers, slices, maps, channels, and interfaces.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func isCommutativeTok(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}
