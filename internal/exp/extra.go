package exp

import (
	"fmt"
	"strings"

	"paragon/internal/gen"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// Extras: Table 1 (contention matrix), the §6 λ profiling sweep, and the
// ablation studies DESIGN.md calls out.

// Table1 reproduces the paper's Table 1: which shared resources core
// pairs contend for, per architecture and core group.
func Table1() *Table {
	tab := &Table{
		ID:     "table1",
		Title:  "Intra-node shared resource contention (Figure 2 architectures)",
		Header: []string{"arch", "group", "example pair", "contended resources"},
	}
	uma := topology.UMACluster(1)
	numa := topology.PittCluster(1)
	rows := []struct {
		arch  string
		group string
		cl    *topology.Cluster
		a, b  int
	}{
		{"UMA", "G1 (same socket, shared L2)", uma, 0, 1},
		{"UMA", "G2 (same socket)", uma, 0, 2},
		{"UMA", "G3 (different sockets)", uma, 0, 4},
		{"NUMA", "G1 (same socket)", numa, 0, 1},
		{"NUMA", "G2 (different sockets)", numa, 0, 10},
	}
	for _, r := range rows {
		res := r.cl.ContendedResources(r.a, r.b)
		names := make([]string, len(res))
		for i, x := range res {
			names[i] = x.String()
		}
		tab.Rows = append(tab.Rows, []string{
			r.arch, r.group, fmt.Sprintf("cores %d,%d", r.a, r.b), strings.Join(names, ", "),
		})
	}
	return tab
}

// LambdaSweep reproduces the §6/§7.2 profiling experiment: BFS JET on
// the YouTube stand-in as λ grows from 0 to 1, on both clusters. The
// paper found the optimum at λ=1 on PittMPICluster (intra-node bound)
// and λ=0 on Gordon (network bound).
func LambdaSweep(scale float64, nSources int) *Table {
	tab := &Table{
		ID:     "lambda",
		Title:  "BFS JET vs contention degree λ (YouTube stand-in)",
		Header: []string{"cluster", "lambda", "JET"},
		Notes:  "paper: λ=1 best on PittMPICluster, λ=0 best on Gordon",
	}
	d, err := gen.DatasetByName("YouTube")
	if err != nil {
		panic(err)
	}
	g := d.Build(scale)
	g.UseDegreeWeights()
	for _, base := range []Env{PittEnv(3), GordonEnv(3)} {
		dg := stream.DG(g, int32(base.K), stream.DefaultOptions())
		srcs := sources(g.NumVertices(), nSources, 99)
		for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			env := base
			env.Lambda = lambda
			p := dg.Clone()
			RefineParagon(g, p, env, 8, 8, 42)
			jet, _ := runJob(appBFS, g, p, env, 8, srcs)
			tab.Rows = append(tab.Rows, []string{env.Name, fmt.Sprintf("%.2f", lambda), f0(jet)})
		}
	}
	return tab
}

// AblationKHop studies the §5 communication-volume knob: shipped volume
// and resulting quality as the boundary expansion radius k grows.
func AblationKHop(scale float64) *Table {
	env := microEnv()
	g := comLJ(scale)
	c := env.PlainMatrix()
	initial := stream.DG(g, int32(env.K), stream.DefaultOptions())
	base := partition.CommCost(g, initial, c, env.Alpha)
	tab := &Table{
		ID:     "ablation-khop",
		Title:  "k-hop boundary shipping: volume vs quality (com-lj)",
		Header: []string{"k", "shipped_vertices", "shipped_halfedges", "norm_comm", "refinement_time"},
		Notes:  "paper: quality is insensitive to k, so k=0 is the default",
	}
	for _, k := range []int{0, 1, 2} {
		p := initial.Clone()
		cfg := paragonCfg(env, 8, 4, 42)
		cfg.KHop = k
		st := refineWith(g, p, env, cfg)
		cost := partition.CommCost(g, p, c, env.Alpha)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(st.BoundaryShipped),
			fmt.Sprint(st.ShippedEdgeVolume),
			f2(cost / base),
			secs(st.RefinementTime),
		})
	}
	return tab
}

// AblationServerPenalty isolates Eq. 10's group-server concentration
// penalty on the scenario it exists for: a cluster where one compute
// node is the cheapest destination for every group (a "hot" node, e.g.
// the one adjacent to most switches). Without the (1+σ/drp) term every
// group server lands on that node — the memory-exhaustion risk §5 calls
// out; with it, servers spill to other nodes once the hot node fills.
func AblationServerPenalty(scale float64) *Table {
	_ = scale // the scenario is synthetic; size-independent
	const k = 16
	const drp = 8
	const serversPerNode = 4
	// Cost matrix: servers 0..3 live on the hot node 0 (cheap to reach
	// from everywhere, cost 1); all other pairs cost 4.
	nodeOf := make([]int, k)
	for s := range nodeOf {
		nodeOf[s] = s / serversPerNode
	}
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			switch {
			case i == j:
			case nodeOf[j] == 0 || nodeOf[i] == 0:
				c[i][j] = 1
			default:
				c[i][j] = 4
			}
		}
	}
	ps := make([]int64, k)
	for i := range ps {
		ps[i] = 1000
	}
	groups := make([][]int32, drp)
	for i := int32(0); i < k; i++ {
		groups[i%drp] = append(groups[i%drp], i)
	}
	tab := &Table{
		ID:     "ablation-penalty",
		Title:  "Group-server concentration on a hot node, with and without the Eq. 10 penalty",
		Header: []string{"variant", "servers_on_hot_node", "distinct_nodes"},
		Notes:  "the (1+σ/drp) term exists to avoid memory exhaustion on one node",
	}
	measure := func(useNodes bool) (hot, distinct int) {
		no := nodeOf
		if !useNodes {
			no = nil
		}
		servers := paragon.SelectGroupServers(groups, ps, c, no, drp)
		nodes := map[int]bool{}
		for _, s := range servers {
			if nodeOf[s] == 0 {
				hot++
			}
			nodes[nodeOf[s]] = true
		}
		return hot, len(nodes)
	}
	h, d := measure(true)
	tab.Rows = append(tab.Rows, []string{"with penalty (NodeOf set)", fmt.Sprint(h), fmt.Sprint(d)})
	h, d = measure(false)
	tab.Rows = append(tab.Rows, []string{"without node awareness", fmt.Sprint(h), fmt.Sprint(d)})
	return tab
}

// AblationUniformCost quantifies what architecture-awareness buys: the
// comm cost (on the real matrix) of PARAGON vs UNIPARAGON refinement.
func AblationUniformCost(scale float64) *Table {
	env := microEnv()
	g := comLJ(scale)
	c := env.PlainMatrix()
	initial := stream.DG(g, int32(env.K), stream.DefaultOptions())
	base := partition.CommCost(g, initial, c, env.Alpha)
	tab := &Table{
		ID:     "ablation-uniform",
		Title:  "Architecture-aware vs uniform-cost refinement (comm cost on the real matrix)",
		Header: []string{"variant", "norm_comm"},
	}
	pa := initial.Clone()
	RefineParagon(g, pa, env, 8, 8, 42)
	pu := initial.Clone()
	RefineUniParagon(g, pu, env, 8, 8, 42)
	tab.Rows = append(tab.Rows, []string{"PARAGON", f2(partition.CommCost(g, pa, c, env.Alpha) / base)})
	tab.Rows = append(tab.Rows, []string{"UNIPARAGON", f2(partition.CommCost(g, pu, c, env.Alpha) / base)})
	tab.Rows = append(tab.Rows, []string{"initial (DG)", "1.00"})
	return tab
}
