package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildPath returns the path graph 0-1-2-...-(n-1) with unit weights.
func buildPath(n int32) *Graph {
	b := NewBuilder(n)
	for v := int32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// buildPaperGraph returns the 10-vertex graph of Figures 3–5 of the paper.
// Vertices: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9.
func buildPaperGraph() *Graph {
	b := NewBuilder(10)
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 9}, // a-b, a-c, a-j
		{1, 2}, {1, 3}, // b-c, b-d
		{2, 3},         // c-d
		{3, 4},         // d-e
		{4, 5}, {4, 6}, // e-f, e-g
		{5, 6},                 // f-g
		{7, 8}, {7, 9}, {8, 9}, // h-i, h-j, i-j
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph reports %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	b := NewBuilder(0)
	g2 := b.Build()
	if g2.NumVertices() != 0 {
		t.Fatalf("zero builder produced %d vertices", g2.NumVertices())
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestBuilderBasic(t *testing.T) {
	g := buildPath(5)
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Fatalf("unexpected degrees: %d %d %d", g.Degree(0), g.Degree(2), g.Degree(4))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 0, 3) // same undirected edge, reversed
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after merging", g.NumEdges())
	}
	if w := g.EdgeWeightBetween(0, 1); w != 5 {
		t.Fatalf("merged weight = %d, want 5", w)
	}
	if w := g.EdgeWeightBetween(1, 0); w != 5 {
		t.Fatalf("reverse merged weight = %d, want 5", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestBuilderPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestBuilderPanicsOnBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive weight")
		}
	}()
	NewBuilder(2).AddWeightedEdge(0, 1, 0)
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(50)
	for i := 0; i < 300; i++ {
		u, v := int32(rng.Intn(50)), int32(rng.Intn(50))
		if u != v {
			b.AddWeightedEdge(u, v, int32(rng.Intn(9)+1))
		}
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("adjacency of %d not strictly sorted", v)
			}
		}
	}
}

func TestEdgeWeightBetween(t *testing.T) {
	g := buildPaperGraph()
	if w := g.EdgeWeightBetween(0, 9); w != 1 {
		t.Fatalf("a-j weight = %d, want 1", w)
	}
	if w := g.EdgeWeightBetween(0, 5); w != 0 {
		t.Fatalf("a-f weight = %d, want 0 (no edge)", w)
	}
	if !g.HasEdge(7, 8) || g.HasEdge(0, 4) {
		t.Fatal("HasEdge mismatch")
	}
}

func TestUseDegreeWeights(t *testing.T) {
	g := buildPaperGraph()
	g.UseDegreeWeights()
	for v := int32(0); v < g.NumVertices(); v++ {
		want := g.Degree(v)
		if want < 1 {
			want = 1
		}
		if g.VertexWeight(v) != want || g.VertexSize(v) != want {
			t.Fatalf("vertex %d: weight %d size %d, want %d", v, g.VertexWeight(v), g.VertexSize(v), want)
		}
	}
}

func TestTotals(t *testing.T) {
	g := buildPath(4) // 3 edges, unit weights
	if tw := g.TotalEdgeWeight(); tw != 3 {
		t.Fatalf("TotalEdgeWeight = %d, want 3", tw)
	}
	if tw := g.TotalVertexWeight(); tw != 4 {
		t.Fatalf("TotalVertexWeight = %d, want 4", tw)
	}
}

func TestClone(t *testing.T) {
	g := buildPaperGraph()
	cp := g.Clone()
	cp.vwgt[0] = 99
	if g.VertexWeight(0) == 99 {
		t.Fatal("Clone shares vertex weight storage")
	}
	if cp.NumEdges() != g.NumEdges() {
		t.Fatal("Clone lost edges")
	}
}

func TestSetVertexAttrs(t *testing.T) {
	g := buildPath(3)
	if err := g.SetVertexWeights([]int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetVertexSizes([]int32{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if g.VertexWeight(1) != 2 || g.VertexSize(2) != 6 {
		t.Fatal("attribute setters did not apply")
	}
	if err := g.SetVertexWeights([]int32{1}); err == nil {
		t.Fatal("expected length error")
	}
	if err := g.SetVertexSizes([]int32{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g := buildPaperGraph()
	g.UseDegreeWeights()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatalf("WriteMETIS: %v", err)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatalf("ReadMETIS: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		if g2.VertexWeight(v) != g.VertexWeight(v) || g2.VertexSize(v) != g.VertexSize(v) {
			t.Fatalf("vertex %d attrs differ", v)
		}
		a1, a2 := g.Neighbors(v), g2.Neighbors(v)
		if len(a1) != len(a2) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestReadMETISPlainFormat(t *testing.T) {
	// fmt code absent: unweighted triangle.
	in := "3 3\n2 3\n1 3\n1 2\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMETIS: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestReadMETISComments(t *testing.T) {
	in := "% a comment\n3 2\n% another\n2\n1 3\n2\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMETIS: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"junk header\n",          // unparsable n
		"2 5\n2\n1\n",            // edge count mismatch
		"2 1\n9\n1\n",            // neighbor out of range
		"2 1 11\n1 1 2\n1 1 1\n", // truncated weighted line (missing weight field)
	}
	for i, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error, got none", i)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := buildPaperGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch")
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	in := "# comment\n100 200\n200 300\n% another comment\n300 100 5\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges, want 3/3", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for i, in := range []string{"1\n", "a b\n", "1 b\n", "1 2 x\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBFSLevels(t *testing.T) {
	g := buildPath(5)
	lv := BFSLevels(g, 0)
	for v := int32(0); v < 5; v++ {
		if lv[v] != v {
			t.Fatalf("level[%d] = %d, want %d", v, lv[v], v)
		}
	}
	// Disconnected vertex.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g2 := b.Build()
	lv2 := BFSLevels(g2, 0)
	if lv2[2] != -1 {
		t.Fatalf("unreachable vertex level = %d, want -1", lv2[2])
	}
	// Out of range source.
	lv3 := BFSLevels(g2, 99)
	for _, l := range lv3 {
		if l != -1 {
			t.Fatal("out-of-range source should reach nothing")
		}
	}
}

func TestSSSPDistances(t *testing.T) {
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 10)
	b.AddWeightedEdge(0, 2, 1)
	b.AddWeightedEdge(2, 1, 2)
	b.AddWeightedEdge(1, 3, 1)
	g := b.Build()
	d := SSSPDistances(g, 0)
	want := []int64{0, 3, 1, 4}
	for v, dv := range d {
		if dv != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dv, want[v])
		}
	}
}

func TestSSSPMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder(200)
	seen := make(map[[2]int32]bool)
	for i := 0; i < 600; i++ {
		u, v := int32(rng.Intn(200)), int32(rng.Intn(200))
		if u > v {
			u, v = v, u
		}
		if u != v && !seen[[2]int32{u, v}] {
			seen[[2]int32{u, v}] = true
			b.AddEdge(u, v) // dedup so merged duplicates don't inflate weights
		}
	}
	g := b.Build()
	lv := BFSLevels(g, 0)
	d := SSSPDistances(g, 0)
	for v := range lv {
		if int64(lv[v]) != d[v] {
			t.Fatalf("vertex %d: BFS %d vs SSSP %d", v, lv[v], d[v])
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, k := ConnectedComponents(g)
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("vertices 0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Fatal("vertices 3,4 should share a component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("vertex 5 should be its own component")
	}
}

func TestExpandFrontier(t *testing.T) {
	g := buildPath(6)
	f0 := ExpandFrontier(g, []int32{2}, 0, nil)
	if len(f0) != 1 || f0[0] != 2 {
		t.Fatalf("k=0 frontier = %v, want [2]", f0)
	}
	f1 := ExpandFrontier(g, []int32{2}, 1, nil)
	if len(f1) != 3 {
		t.Fatalf("k=1 frontier = %v, want 3 vertices", f1)
	}
	f9 := ExpandFrontier(g, []int32{0}, 9, nil)
	if len(f9) != 6 {
		t.Fatalf("k=9 frontier should cover the path, got %v", f9)
	}
	// Duplicated and out-of-range seeds must be handled.
	fd := ExpandFrontier(g, []int32{1, 1, -5, 99}, 0, nil)
	if len(fd) != 1 || fd[0] != 1 {
		t.Fatalf("dedup frontier = %v, want [1]", fd)
	}
	// A caller-provided buffer must be reused, not reallocated.
	buf := make([]int32, 0, 16)
	fr := ExpandFrontier(g, []int32{2}, 1, buf)
	if &fr[:1][0] != &buf[:1][0] {
		t.Fatal("dst buffer was not reused")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildPath(4) // degrees 1,2,2,1
	h := g.DegreeHistogram()
	if h[0] != 2 || h[1] != 2 {
		t.Fatalf("histogram = %v, want [2 2]", h)
	}
}

func TestMaxAvgDegree(t *testing.T) {
	g := buildPaperGraph()
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	want := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if g.AvgDegree() != want {
		t.Fatalf("AvgDegree = %f, want %f", g.AvgDegree(), want)
	}
}

func TestFromCSR(t *testing.T) {
	// A single edge 0-1.
	g, err := FromCSR([]int64{0, 1, 2}, []int32{1, 0}, []int32{1, 1}, []int32{1, 1}, []int32{1, 1})
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Asymmetric weight must fail validation.
	if _, err := FromCSR([]int64{0, 1, 2}, []int32{1, 0}, []int32{1, 2}, []int32{1, 1}, []int32{1, 1}); err == nil {
		t.Fatal("expected asymmetry error")
	}
}

// Property: for any random multigraph input, Build produces a graph that
// passes Validate and preserves total inserted edge weight.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed int64, nSmall uint8, edges uint16) bool {
		n := int32(nSmall%40) + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		var inserted int64
		for i := 0; i < int(edges%500); i++ {
			u, v := int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))
			if u == v {
				continue
			}
			w := int32(rng.Intn(5) + 1)
			b.AddWeightedEdge(u, v, w)
			inserted += int64(w)
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Logf("Validate failed: %v", err)
			return false
		}
		return g.TotalEdgeWeight() == inserted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS levels satisfy the triangle property — adjacent vertices'
// levels differ by at most 1 when both are reachable.
func TestQuickBFSLevelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(rng.Intn(60) + 2)
		b := NewBuilder(n)
		for i := 0; i < int(n)*3; i++ {
			u, v := int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		lv := BFSLevels(g, 0)
		for v := int32(0); v < n; v++ {
			if lv[v] < 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if lv[u] < 0 {
					return false // neighbor of reachable vertex must be reachable
				}
				diff := lv[v] - lv[u]
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	g := buildPaperGraph()
	st := ComputeStats(g)
	if st.Vertices != 10 || st.Edges != 13 {
		t.Fatalf("stats size: %+v", st)
	}
	if st.MinDegree != 2 || st.MaxDegree != 3 {
		t.Fatalf("degrees: %+v", st)
	}
	if st.Components != 1 || st.LargestComp != 10 {
		t.Fatalf("components: %+v", st)
	}
	// h-i-j triangle exists: clustering must be positive.
	if st.ClusteringCoeff <= 0 {
		t.Fatalf("clustering = %v", st.ClusteringCoeff)
	}
	if st.String() == "" {
		t.Fatal("empty report")
	}
	// Empty graph.
	empty := ComputeStats(NewBuilder(0).Build())
	if empty.Vertices != 0 || empty.Edges != 0 {
		t.Fatalf("empty stats: %+v", empty)
	}
}
