package gas_test

import (
	"fmt"

	"paragon/internal/gas"
	"paragon/internal/gen"
	"paragon/internal/topology"
	"paragon/internal/vertexcut"
)

// Example runs connected components over an HDRF vertex-cut assignment
// on a modeled cluster and reports the replica-synchronization traffic.
func Example() {
	g := gen.Mesh2D(10, 10) // one connected component
	a := vertexcut.HDRF(g, 8, 2)
	engine, err := gas.NewEngine(g, a, topology.PittCluster(1), gas.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := gas.Components(engine, g)
	if err != nil {
		fmt.Println(err)
		return
	}
	allZero := true
	for _, l := range res.Values {
		if l != 0 {
			allZero = false
		}
	}
	fmt.Println("single component found:", allZero)
	fmt.Println("replica sync happened:", res.Messages > 0)
	// Output:
	// single component found: true
	// replica sync happened: true
}
