// Package fixture holds map-range loops whose result depends on Go's
// randomized map iteration order; every loop below must be reported.
package fixture

// argmax over a map: ties resolve by whichever key the runtime yields
// first, so the winner changes between runs.
func argmax(aff map[int32]int64) int32 {
	best := int32(-1)
	var bestGain int64
	for pu, a := range aff {
		if a > bestGain {
			best = pu
			bestGain = a
		}
	}
	return best
}

// Keys escape in map order and are never sorted.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Early exit: which matching key wins depends on iteration order.
func firstMatch(m map[int]int) (int, bool) {
	for k, v := range m {
		if v > 10 {
			return k, true
		}
	}
	return 0, false
}

// Float accumulation is not associative, so the sum differs in ULPs
// between iteration orders.
func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
