package partition

import (
	"math/rand"
	"slices"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/graph"
)

// randomPartitioning assigns every vertex uniformly at random.
func randomPartitioning(g *graph.Graph, k int32, rng *rand.Rand) *Partitioning {
	p := New(k, g.NumVertices())
	for v := range p.Assign {
		p.Assign[v] = rng.Int31n(k)
	}
	return p
}

// scanPairCandidates is the historical O(|V|) candidate enumeration the
// index replaced: scan every vertex, keep members of the pair that are
// movable. The index must reproduce its output exactly.
func scanPairCandidates(g *graph.Graph, p *Partitioning, pi, pj int32, allowed *Bitset) []int32 {
	var out []int32
	for v := int32(0); v < g.NumVertices(); v++ {
		pv := p.Assign[v]
		if pv != pi && pv != pj {
			continue
		}
		if allowed != nil {
			if allowed.Get(v) {
				out = append(out, v)
			}
		} else if IsBoundary(g, p, v) {
			out = append(out, v)
		}
	}
	return out
}

func TestIndexMatchesScanOnRandomGraphs(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyi(400, 1600, 1)},
		{"ba", gen.BarabasiAlbert(300, 3, 2)},
		{"mesh", gen.Mesh2D(15, 15)},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const k = 7
			p := randomPartitioning(tc.g, k, rng)
			ix := BuildIndex(tc.g, p)
			allowed := NewBitset(tc.g.NumVertices())
			for v := int32(0); v < allowed.Len(); v++ {
				allowed.SetTo(v, rng.Intn(3) != 0)
			}
			check := func() {
				t.Helper()
				for pi := int32(0); pi < k; pi++ {
					for pj := pi + 1; pj < k; pj++ {
						want := scanPairCandidates(tc.g, p, pi, pj, nil)
						got := ix.AppendPairCandidates(nil, pi, pj, nil)
						if !slices.Equal(got, want) {
							t.Fatalf("pair (%d,%d) nil-mask candidates: got %v want %v", pi, pj, got, want)
						}
						want = scanPairCandidates(tc.g, p, pi, pj, allowed)
						got = ix.AppendPairCandidates(nil, pi, pj, allowed)
						if !slices.Equal(got, want) {
							t.Fatalf("pair (%d,%d) masked candidates: got %v want %v", pi, pj, got, want)
						}
					}
				}
			}
			check()
			// Fuzz a move sequence and re-check equivalence plus every
			// maintained invariant after each batch.
			for batch := 0; batch < 10; batch++ {
				for i := 0; i < 50; i++ {
					v := rng.Int31n(tc.g.NumVertices())
					ix.Move(v, rng.Int31n(k))
				}
				if err := ix.Validate(); err != nil {
					t.Fatalf("after batch %d: %v", batch, err)
				}
				check()
			}
		})
	}
}

func TestIndexMaintainedAggregates(t *testing.T) {
	g := gen.ErdosRenyi(300, 1200, 3)
	rng := rand.New(rand.NewSource(11))
	const k = 5
	p := randomPartitioning(g, k, rng)
	ix := BuildIndex(g, p)
	for i := 0; i < 200; i++ {
		ix.Move(rng.Int31n(g.NumVertices()), rng.Int31n(k))
	}
	// Boundary() and IsBoundary must agree with the definition.
	var wantBoundary []int32
	for v := int32(0); v < g.NumVertices(); v++ {
		if IsBoundary(g, p, v) {
			wantBoundary = append(wantBoundary, v)
		}
		if ix.IsBoundary(v) != IsBoundary(g, p, v) {
			t.Fatalf("IsBoundary(%d) = %v, want %v", v, ix.IsBoundary(v), IsBoundary(g, p, v))
		}
	}
	if !slices.Equal(ix.Boundary(), wantBoundary) {
		t.Fatalf("Boundary() diverged from scan")
	}
	// IncidentEdges must agree with the O(|V|) rescan.
	if got, want := ix.IncidentEdges(), p.IncidentEdges(g); !slices.Equal(got, want) {
		t.Fatalf("IncidentEdges() = %v, want %v", got, want)
	}
	// Self-move must be a no-op.
	v := int32(42)
	before := ix.ExternalNeighbors(v)
	ix.Move(v, p.Assign[v])
	if ix.ExternalNeighbors(v) != before {
		t.Fatal("self-move changed ext count")
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShadow(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 5)
	rng := rand.New(rand.NewSource(13))
	const k = 6
	p := randomPartitioning(g, k, rng)
	ix := BuildIndex(g, p)
	view := p.Clone()
	s := NewShadow(view, g.NumVertices())
	s.Reset(ix)

	// Candidate enumeration under a mask must match the scan over the view,
	// before and after moves through the shadow.
	allowed := NewBitset(g.NumVertices())
	for v := int32(0); v < allowed.Len(); v++ {
		allowed.SetTo(v, rng.Intn(2) == 0)
	}
	checkPairs := func() {
		t.Helper()
		for pi := int32(0); pi < k; pi++ {
			for pj := pi + 1; pj < k; pj++ {
				want := scanPairCandidates(g, view, pi, pj, allowed)
				got := s.AppendPairCandidates(nil, pi, pj, allowed)
				if !slices.Equal(got, want) {
					t.Fatalf("pair (%d,%d): got %v want %v", pi, pj, got, want)
				}
			}
		}
	}
	checkPairs()
	for i := 0; i < 200; i++ {
		s.Move(rng.Int31n(g.NumVertices()), rng.Int31n(k))
	}
	checkPairs()

	// Moves through the shadow must not have leaked into the base index or
	// the base partitioning.
	if err := ix.Validate(); err != nil {
		t.Fatalf("base index corrupted by shadow moves: %v", err)
	}

	// Reset must discard the shadow's divergence and re-match the master,
	// reusing the same shadow for a fresh round.
	copy(view.Assign, p.Assign)
	s.Reset(ix)
	checkPairs()
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}

	// A nil mask is a programming error for shadows.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil mask")
		}
	}()
	s.AppendPairCandidates(nil, 0, 1, nil)
}

func TestExternalDegreesSparseFrozen(t *testing.T) {
	// With frozen == cur the frozen variant must agree with the live one
	// for every vertex and pair; with a diverged cur, pair-owned neighbors
	// must be read live and all others from the frozen view.
	g := gen.ErdosRenyi(300, 1500, 23)
	rng := rand.New(rand.NewSource(29))
	const k = 6
	p := randomPartitioning(g, k, rng)
	frozen := append([]int32(nil), p.Assign...)
	buf := make([]int64, k)
	mask := make([]uint64, MaskWords(k))
	ref := make([]int64, k)
	var tlist []int32
	for v := int32(0); v < g.NumVertices(); v++ {
		tlist = ExternalDegreesSparse(g, p, v, buf, mask, tlist[:0])
		copy(ref, buf)
		for _, q := range tlist {
			buf[q] = 0
		}
		tlist = ExternalDegreesSparseFrozen(g, p.Assign, frozen, v, 0, 1, buf, mask, tlist[:0])
		for q := int32(0); q < k; q++ {
			if buf[q] != ref[q] {
				t.Fatalf("v=%d frozen==cur: d_ext[%d] = %d, want %d", v, q, buf[q], ref[q])
			}
		}
		for _, q := range tlist {
			buf[q] = 0
		}
	}
	// Diverge cur: flip some vertices between partitions 0 and 1 (the
	// "pair"), and some others among foreign partitions. Frozen reads must
	// see pair members live and foreigners at their frozen owners.
	cur := append([]int32(nil), p.Assign...)
	for i := 0; i < 100; i++ {
		v := rng.Int31n(g.NumVertices())
		if cur[v] <= 1 {
			cur[v] = 1 - cur[v] // pair-internal move, visible
		} else {
			cur[v] = 2 + (cur[v]+1)%4 // foreign move, must stay invisible
		}
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		// The reference: neighbors owned by the pair (per frozen) read cur,
		// others read frozen.
		for q := range ref {
			ref[q] = 0
		}
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			pu := frozen[u]
			if pu == 0 || pu == 1 {
				pu = cur[u]
			}
			ref[pu] += int64(w[i])
		}
		tlist = ExternalDegreesSparseFrozen(g, cur, frozen, v, 0, 1, buf, mask, tlist[:0])
		if !slices.IsSorted(tlist) {
			t.Fatalf("v=%d: touched list not sorted: %v", v, tlist)
		}
		for q := int32(0); q < k; q++ {
			if buf[q] != ref[q] {
				t.Fatalf("v=%d diverged: d_ext[%d] = %d, want %d", v, q, buf[q], ref[q])
			}
		}
		for _, q := range tlist {
			buf[q] = 0
		}
	}
}

func TestExternalDegreesSparse(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 17)
	rng := rand.New(rand.NewSource(19))
	const k = 9
	p := randomPartitioning(g, k, rng)
	buf := make([]int64, k)
	mask := make([]uint64, MaskWords(k))
	var tlist []int32
	for v := int32(0); v < g.NumVertices(); v++ {
		dense := ExternalDegrees(g, p, v)
		tlist = ExternalDegreesSparse(g, p, v, buf, mask, tlist[:0])
		if !slices.IsSorted(tlist) {
			t.Fatalf("v=%d: touched list not sorted: %v", v, tlist)
		}
		for q := int32(0); q < k; q++ {
			if buf[q] != dense[q] {
				t.Fatalf("v=%d: sparse d_ext[%d] = %d, want %d", v, q, buf[q], dense[q])
			}
			if buf[q] != 0 && !slices.Contains(tlist, q) {
				t.Fatalf("v=%d: partition %d has weight %d but is not in touched list", v, q, buf[q])
			}
		}
		for _, q := range tlist {
			buf[q] = 0
		}
		// The sparse reset must leave buf all-zero, and ExternalDegreesSparse
		// itself must leave the bitmap all-zero, for the next call.
		for q, d := range buf {
			if d != 0 {
				t.Fatalf("v=%d: buf[%d] = %d after sparse reset", v, q, d)
			}
		}
		for w, b := range mask {
			if b != 0 {
				t.Fatalf("v=%d: mask[%d] = %#x on return", v, w, b)
			}
		}
	}
}
