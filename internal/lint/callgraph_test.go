package lint

import (
	"go/types"
	"strings"
	"testing"
)

// TestCallGraphCHA pins the interface fan-out on a real package: lint's
// own Run invokes Checker.Check dynamically, and CHA must resolve that
// call to every concrete Check method declared in the package.
func TestCallGraphCHA(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]*Package{pkg})

	runFn, ok := pkg.Types.Scope().Lookup("Run").(*types.Func)
	if !ok {
		t.Fatal("lint.Run not found")
	}
	n := g.NodeOf(runFn)
	if n == nil {
		t.Fatal("no call-graph node for lint.Run")
	}
	dynamic := map[string]bool{}
	for _, e := range n.Out {
		if e.Dynamic {
			dynamic[funcDisplayName(e.Callee.Fn)] = true
		}
	}
	for _, want := range []string{"MapRange.Check", "SharedWrite.Check", "ReduceOrder.Check", "(*Taint).Check"} {
		if !dynamic[want] {
			t.Errorf("CHA edge Run → %s missing; dynamic callees: %v", want, dynamic)
		}
	}
}

// TestCallGraphReach pins reachability, the computed package closure,
// and the rendered call path on the cross-package taint fixture.
func TestCallGraphReach(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/taint/crosspkg")
	if err != nil {
		t.Fatal(err)
	}
	helpers, err := loader.LoadDir("testdata/taint/crosspkg/helpers")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]*Package{pkg, helpers})
	roots := g.ExportedRoots(pkg.Path)
	if len(roots) != 1 || roots[0].Fn.Name() != "Entry" {
		t.Fatalf("ExportedRoots = %v, want [Entry]", roots)
	}

	pkgs := g.ReachablePackages(roots)
	if !pkgs[pkg.Path] || !pkgs[helpers.Path] {
		t.Fatalf("ReachablePackages = %v, want both fixture packages", pkgs)
	}

	reached, parent := g.Reach(roots)
	var tick *CallNode
	for _, n := range g.Nodes() {
		if n.Fn.Name() == "tick" {
			tick = n
		}
	}
	if tick == nil || !reached[tick] {
		t.Fatalf("helpers.tick not reached; reached %d nodes", len(reached))
	}
	if got, want := PathTo(parent, tick), "crosspkg.Entry → helpers.Stamp → helpers.tick"; got != want {
		t.Errorf("PathTo = %q, want %q", got, want)
	}
}

// TestKernelSetComputed guards the acceptance criterion that the
// wallclock kernel set comes from reachability, not a hand list: the
// unreachable function in the taint clean fixture contributes no
// package membership on its own.
func TestKernelSetComputed(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/taint/clean")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]*Package{pkg})
	// Roots restricted to a package with no exported functions would
	// yield an empty closure; the fixture's Entry/Audited are the only
	// roots and reach only in-package code.
	pkgs := g.ReachablePackages(g.ExportedRoots(pkg.Path))
	if len(pkgs) != 1 || !pkgs[pkg.Path] {
		t.Fatalf("ReachablePackages = %v, want exactly the fixture package", pkgs)
	}
	if got := g.ReachablePackages(g.ExportedRoots("no/such/package")); len(got) != 0 {
		t.Fatalf("closure of empty root set = %v, want empty", got)
	}
	if !strings.HasPrefix(pkg.Path, "paragon/") {
		t.Fatalf("fixture path %q not module-qualified", pkg.Path)
	}
}
