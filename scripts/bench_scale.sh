#!/usr/bin/env bash
# Scale pass (DESIGN.md §14): measures the refinement round at n ≥ 1M
# vertices across worker counts, plus the 10M-vertex cold-start pipeline
# (sharded generation + CSR build + initial decomposition + one round),
# and emits BENCH_scale.json with ns/op, allocs/op and peak RSS per
# point. Each point runs in its own test process because peak RSS is a
# per-process high watermark (/proc/self/status VmHWM).
#
# Graphs are generated ONCE per n by gengraph -shards/-binary-out and
# reloaded by every worker-count run, so the curve never re-pays
# generation. The per-n assignment hashes are cross-checked: every
# worker count must produce the bit-identical decomposition, or the run
# aborts.
#
# Usage: scripts/bench_scale.sh [output.json]
#   SCALE_NS="100000"  SCALE_WORKERS="1" SCALE_TENM=0 \
#       scripts/bench_scale.sh /tmp/smoke.json    # ci.sh smoke config
#   SCALE_ITERS=3 scripts/bench_scale.sh          # more iterations
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_scale.json}"
ns_list="${SCALE_NS:-1000000}"
workers_list="${SCALE_WORKERS:-1 2 4}"
tenm="${SCALE_TENM:-10000000}"
iters="${SCALE_ITERS:-1}"
seed=42

ncpu="$(getconf _NPROCESSORS_ONLN)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

go build -o "$tmpdir/gengraph" ./cmd/gengraph
go test -c -o "$tmpdir/paragon.test" ./internal/paragon/

# run_bench BENCH N WORKERS GRAPHFILE HASHFILE -> "ns_op allocs_op rss_kb"
run_bench() {
    PARAGON_SCALE_N="$2" PARAGON_SCALE_WORKERS="$3" PARAGON_SCALE_GRAPH="$4" \
    PARAGON_SCALE_HASH_FILE="$5" \
    "$tmpdir/paragon.test" -test.run '^$' -test.bench "^$1\$" \
        -test.benchtime "${iters}x" -test.benchmem \
    | awk '/^Benchmark/ {
        for (i = 3; i < NF; i += 2) u[$(i+1)] = $i
        # Pass the raw strings through: ns/op at 10M vertices exceeds
        # 2^31 and printf %d clamps in 32-bit awks (mawk).
        printf("%s %s %s\n", u["ns/op"], u["allocs/op"], u["peakRSS-KB"])
        found = 1
      }
      END { if (!found) exit 1 }'
}

points="$tmpdir/points"   # lines: label ns_op allocs_op rss_kb
: > "$points"

for n in $ns_list; do
    m=$((n * 8))
    gfile="$tmpdir/rmat_$n.bin"
    echo "bench_scale: generating n=$n m=$m (sharded, $ncpu workers)..." >&2
    "$tmpdir/gengraph" -rmat -n "$n" -m "$m" -seed "$seed" -shards "$ncpu" \
        -binary-out "$gfile"
    hashfile="$tmpdir/hash_$n.txt"
    : > "$hashfile"
    for w in $workers_list; do
        echo "bench_scale: refine n=$n workers=$w..." >&2
        read -r nsop allocs rss < <(run_bench BenchmarkScaleRefine "$n" "$w" "$gfile" "$hashfile")
        echo "refine/n=$n/workers=$w $nsop $allocs $rss" >> "$points"
    done
    # Bit-identity across worker counts: one distinct hash per n, or die.
    nh="$(awk '{ print $3 }' "$hashfile" | sort -u | wc -l)"
    if [ "$nh" -ne 1 ]; then
        echo "bench_scale: FATAL: n=$n produced $nh distinct assignment hashes across worker counts:" >&2
        cat "$hashfile" >&2
        exit 1
    fi
    awk -v n="$n" '{ sub(/^hash=/, "", $3); print "hash/n=" n, $3; exit }' "$hashfile" >> "$points"
done

if [ "$tenm" -gt 0 ]; then
    echo "bench_scale: 10M cold-start pipeline (n=$tenm, gen+build+decompose+round)..." >&2
    hashfile="$tmpdir/hash_tenm.txt"
    : > "$hashfile"
    read -r nsop allocs rss < <(run_bench BenchmarkScaleGenBuildRound "$tenm" "$ncpu" "" "$hashfile")
    echo "pipeline/n=$tenm $nsop $allocs $rss" >> "$points"
    awk -v n="$tenm" '{ sub(/^hash=/, "", $3); print "pipelinehash/n=" n, $3; exit }' "$hashfile" >> "$points"
fi

awk -v out="$out" -v iters="$iters" -v ncpu="$ncpu" -v seed="$seed" '
{ kind = $1 }
kind ~ /^refine\// || kind ~ /^pipeline\// {
    ns[kind] = $2; allocs[kind] = $3; rss[kind] = $4; order[cnt++] = kind
    split(kind, parts, "/")
    if (parts[3] == "workers=1") w1[parts[2]] = $2
}
kind ~ /hash\// { split(kind, parts, "/"); hash[parts[2]] = $2 }
END {
    if (cnt == 0) { print "bench_scale.sh: no points" > "/dev/stderr"; exit 1 }
    printf("{\n")                                                     > out
    printf("  \"benchtime\": \"%sx per point, one process per point\",\n", iters) > out
    printf("  \"graph\": \"RMATSharded m=8n seed=%s, degree weights, k=128, DRP 8, 1 round; generated once via gengraph -shards/-binary-out, reloaded per point\",\n", seed) > out
    printf("  \"hardware\": { \"online_cpus\": %s },\n", ncpu)        > out
    printf("  \"note\": \"peak_rss_kb is the process VmHWM (graph + refine). every worker count of an n produced the recorded assignment hash — bit-identity is checked by the harness, not assumed. speedup_vs_workers1 is bounded above by min(workers, online_cpus).\",\n") > out
    printf("  \"points\": {\n")                                       > out
    for (i = 0; i < cnt; i++) {
        p = order[i]
        split(p, parts, "/")
        nlabel = parts[2]
        s1 = (p ~ /^refine\// && w1[nlabel] > 0) ? w1[nlabel] / ns[p] : 1
        printf("    \"%s\": { \"ns_op\": %s, \"allocs_op\": %s, \"peak_rss_kb\": %s, \"speedup_vs_workers1\": %.2f, \"assign_hash\": \"%s\" }%s\n",
               p, ns[p], allocs[p], rss[p], s1, hash[nlabel], (i < cnt - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                                > out
}
' "$points"

echo "bench_scale: wrote $out"
