package aragon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// exampleGraph reconstructs the worked example of Figures 3–6: a ten
// vertex graph with unit weights and sizes. Vertices a..j are 0..9.
// Edges: a-{b,c,d,j}, b-c, c-d, d-e, e-{f,g}, f-g, h-{i,j}, i-j.
func exampleGraph() *graph.Graph {
	b := graph.NewBuilder(10)
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 9},
		{1, 2}, {2, 3},
		{3, 4}, {4, 5}, {4, 6}, {5, 6},
		{7, 8}, {7, 9}, {8, 9},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// fig3 is the old decomposition: P1={b,c}, P2={d,e,f,g}, P3={a,h,i,j}.
func fig3() *partition.Partitioning {
	p := partition.New(3, 10)
	copy(p.Assign, []int32{2, 0, 0, 1, 1, 1, 1, 2, 2, 2})
	return p
}

// fig4 is the better decomposition: P1={a,b,c}, P2={d,e,f,g}, P3={h,i,j}.
func fig4() *partition.Partitioning {
	p := partition.New(3, 10)
	copy(p.Assign, []int32{0, 0, 0, 1, 1, 1, 1, 2, 2, 2})
	return p
}

// fig5 is the best decomposition: P1={b,c}, P2={a,d,e,f,g}, P3={h,i,j}.
func fig5() *partition.Partitioning {
	p := partition.New(3, 10)
	copy(p.Assign, []int32{1, 0, 0, 1, 1, 1, 1, 2, 2, 2})
	return p
}

func TestPaperEdgeCuts(t *testing.T) {
	g := exampleGraph()
	// "the number of edges among partitions goes from 4 in Figure 3, to
	// 3 in Figure 4".
	if cut := partition.EdgeCut(g, fig3()); cut != 4 {
		t.Fatalf("Figure 3 cut = %d, want 4", cut)
	}
	if cut := partition.EdgeCut(g, fig4()); cut != 3 {
		t.Fatalf("Figure 4 cut = %d, want 3", cut)
	}
}

func TestPaperWorkedExampleGain(t *testing.T) {
	g := exampleGraph()
	p := fig4()
	orig := fig3().Assign
	c := topology.PaperExampleMatrix()
	// Moving a (0) from P1 to P2 with α=1:
	// g_std  = (1−2)·c(P1,P2) = −1 ("increases the cost between P1 and
	//          P2 by 1");
	// g_topo = 1·(c(P1,P3)−c(P2,P3)) = 6−1 = 5 ("reduces the
	//          communication cost between a and j by 5");
	// g_mig  = 1·(c(P1,P3)−c(P2,P3)) = 5 ("decreases the migration cost
	//          of a by 5, since vertex a was originally in P3").
	gain := Gain(g, p, orig, 0, 1, c, 1)
	if math.Abs(gain-9) > 1e-9 {
		t.Fatalf("gain of moving a to P2 = %v, want 9", gain)
	}
}

func TestStandardFMGainIsNegative(t *testing.T) {
	// §5 Partition Grouping: "for standard FM algorithms, the gain of
	// migrating a to P2 will be -1, since a has two neighbors in P1 and
	// 1 in P2". Standard FM = uniform costs, no migration history.
	g := exampleGraph()
	p := fig4()
	orig := fig4().Assign // no prior owners: migration term vanishes
	c := topology.UniformMatrix(3)
	gain := Gain(g, p, orig, 0, 1, c, 1)
	// With uniform costs g_topo = 0 and g_mig for orig=P1: c(P1,P1)=0,
	// c(P2,P1)=1 => −1. Standard FM has no migration term, so compare
	// only g_std by canceling: total = −1 (std) + 0 (topo) − 1 (mig).
	if math.Abs(gain-(-2)) > 1e-9 {
		t.Fatalf("uniform gain = %v, want -2 (std −1, mig −1)", gain)
	}
}

func TestGainSamePartitionIsZero(t *testing.T) {
	g := exampleGraph()
	p := fig4()
	if gain := Gain(g, p, p.Assign, 0, p.Assign[0], topology.PaperExampleMatrix(), 1); gain != 0 {
		t.Fatalf("self-move gain = %v", gain)
	}
}

func TestRefinePairProducesFigure5(t *testing.T) {
	g := exampleGraph()
	p := fig4()
	orig := fig3().Assign
	c := topology.PaperExampleMatrix()
	loads := p.Weights(g)
	cfg := Config{Alpha: 1, MaxImbalance: 0.3, BadMoveLimit: 8}
	maxLoad := partition.BalanceBound(g, 3, 0.3) // ceil(10/3)·1.3 = 5
	res := RefinePair(g, p, orig, 0, 1, c, loads, maxLoad, cfg)
	if res.Moves < 1 {
		t.Fatalf("no move made: %+v", res)
	}
	want := fig5()
	for v := range p.Assign {
		if p.Assign[v] != want.Assign[v] {
			t.Fatalf("vertex %d in %d, want %d (Figure 5)", v, p.Assign[v], want.Assign[v])
		}
	}
	// Loads must be maintained incrementally and match recomputation.
	fresh := p.Weights(g)
	for i := range fresh {
		if fresh[i] != loads[i] {
			t.Fatalf("loads diverged: %v vs %v", loads, fresh)
		}
	}
}

func TestRefinePairRespectsBalance(t *testing.T) {
	g := exampleGraph()
	p := fig4()
	orig := fig3().Assign
	c := topology.PaperExampleMatrix()
	loads := p.Weights(g)
	// maxLoad 4 forbids P2 from growing to 5: a must stay in P1.
	res := RefinePair(g, p, orig, 0, 1, c, loads, 4, Config{Alpha: 1})
	want := fig4()
	for v := range p.Assign {
		if p.Assign[v] != want.Assign[v] {
			t.Fatalf("balance-violating move was kept (vertex %d), result %+v", v, res)
		}
	}
}

func TestRefineFullImprovesObjective(t *testing.T) {
	g := exampleGraph()
	p := fig3()
	orig := fig3()
	c := topology.PaperExampleMatrix()
	cfg := Config{Alpha: 1, MaxImbalance: 0.3}
	before := partition.CommCost(g, p, c, 1)
	res, err := Refine(g, p, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := partition.CommCost(g, p, c, 1) + partition.MigrationCost(g, orig, p, c)
	if after > before {
		t.Fatalf("objective rose: %v -> %v (result %+v)", before, after, res)
	}
	if res.PairsSeen != 3 {
		t.Fatalf("pairs seen = %d, want 3 for k=3", res.PairsSeen)
	}
}

func TestRefineErrors(t *testing.T) {
	g := exampleGraph()
	bad := partition.New(3, 4)
	if _, err := Refine(g, bad, topology.PaperExampleMatrix(), Config{}); err == nil {
		t.Fatal("expected validation error")
	}
	p := fig3()
	if _, err := Refine(g, p, topology.UniformMatrix(2), Config{}); err == nil {
		t.Fatal("expected small-matrix error")
	}
}

func TestRefineUniformCostsReducesEdgeCut(t *testing.T) {
	// With a uniform matrix ARAGON degenerates toward standard FM: it
	// must not worsen the plain edge cut objective (comm+migration).
	g := gen.Mesh2D(20, 20)
	g.UseDegreeWeights()
	p := stream.HP(g, 4)
	orig := p.Clone()
	c := topology.UniformMatrix(4)
	alpha := 10.0
	before := partition.CommCost(g, p, c, alpha)
	if _, err := Refine(g, p, c, Config{Alpha: alpha}); err != nil {
		t.Fatal(err)
	}
	after := partition.CommCost(g, p, c, alpha) + partition.MigrationCost(g, orig, p, c)
	if after > before {
		t.Fatalf("uniform refinement worsened objective: %v -> %v", before, after)
	}
	if partition.EdgeCut(g, p) >= partition.EdgeCut(g, orig) {
		t.Fatalf("edge cut did not improve from hashing: %d vs %d",
			partition.EdgeCut(g, p), partition.EdgeCut(g, orig))
	}
}

func TestRefineArchitectureAwareBeatsUniformOnHopCost(t *testing.T) {
	// The core claim: refining against the real cost matrix yields lower
	// architecture-aware communication cost than refining against the
	// uniform matrix (UNIPARAGON), measured on the real matrix.
	cl := topology.PittCluster(2) // 40 cores
	k := int32(8)
	// Use an 8-rank submatrix spanning both nodes: ranks 0..3 node 0,
	// ranks 20..23 node 1.
	ranks := []int{0, 1, 2, 3, 20, 21, 22, 23}
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			c[i][j] = cl.Cost(ranks[i], ranks[j])
		}
	}
	g := gen.RMAT(2000, 10000, 0.57, 0.19, 0.19, 13)
	g.UseDegreeWeights()
	alpha := 10.0

	pAware := stream.DG(g, k, stream.DefaultOptions())
	pUni := pAware.Clone()
	if _, err := Refine(g, pAware, c, Config{Alpha: alpha}); err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(g, pUni, topology.UniformMatrix(int(k)), Config{Alpha: alpha}); err != nil {
		t.Fatal(err)
	}
	costAware := partition.CommCost(g, pAware, c, alpha)
	costUni := partition.CommCost(g, pUni, c, alpha)
	if costAware >= costUni {
		t.Fatalf("architecture-aware refinement (%.0f) not below uniform refinement (%.0f) on the real matrix",
			costAware, costUni)
	}
}

func TestRefinePreservesVertexSet(t *testing.T) {
	g := gen.BarabasiAlbert(800, 3, 21)
	g.UseDegreeWeights()
	p := stream.DG(g, 6, stream.DefaultOptions())
	cl := topology.PittCluster(1)
	c := make([][]float64, 6)
	for i := range c {
		c[i] = make([]float64, 6)
		for j := range c[i] {
			c[i][j] = cl.Cost(i, j)
		}
	}
	if _, err := Refine(g, p, c, Config{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("refined decomposition invalid: %v", err)
	}
	var total int64
	for _, w := range p.Weights(g) {
		total += w
	}
	if total != g.TotalVertexWeight() {
		t.Fatal("vertex weight lost during refinement")
	}
}

func TestRefineKeepsBalanceBound(t *testing.T) {
	g := gen.Mesh2D(24, 24)
	p := stream.DG(g, 4, stream.DefaultOptions())
	eps := 0.05
	bound := partition.BalanceBound(g, 4, eps)
	// Precondition: initial decomposition within bound.
	for _, w := range p.Weights(g) {
		if w > bound {
			t.Skip("initial decomposition exceeds bound; balance invariant untestable")
		}
	}
	if _, err := Refine(g, p, topology.UniformMatrix(4), Config{MaxImbalance: eps}); err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Weights(g) {
		if w > bound {
			t.Fatalf("partition %d weight %d exceeds bound %d after refinement", i, w, bound)
		}
	}
}

func TestFloatHeap(t *testing.T) {
	h := newFloatHeap(4)
	gains := []float64{1.5, -3, 8, 0}
	for i, g := range gains {
		h.push(int32(i), g)
	}
	moved := make([]bool, 4)
	var out []float64
	for {
		_, g, ok := h.popValid(gains, moved)
		if !ok {
			break
		}
		out = append(out, g)
	}
	want := []float64{8, 1.5, 0, -3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("heap order %v, want %v", out, want)
		}
	}
}

// Property: Refine never increases the combined objective
// comm(new) + mig(orig→new), never violates the balance bound it is
// given (when the input satisfies it), and always yields a valid
// decomposition.
func TestQuickRefineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(250, 900, seed)
		g.UseDegreeWeights()
		k := int32(rng.Intn(5) + 2)
		p := stream.LDG(g, k, stream.DefaultOptions())
		orig := p.Clone()
		cl := topology.GordonCluster(2)
		c := make([][]float64, k)
		for i := range c {
			c[i] = make([]float64, k)
			for j := range c[i] {
				c[i][j] = cl.Cost(int(i)*3%cl.TotalCores(), int(j)*3%cl.TotalCores())
			}
		}
		alpha := 10.0
		before := partition.CommCost(g, p, c, alpha)
		if _, err := Refine(g, p, c, Config{Alpha: alpha, MaxImbalance: 0.1}); err != nil {
			return false
		}
		if err := p.Validate(g); err != nil {
			return false
		}
		after := partition.CommCost(g, p, c, alpha) + partition.MigrationCost(g, orig, p, c)
		return after <= before+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
