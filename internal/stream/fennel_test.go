package stream

import (
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
)

func TestFennelBasic(t *testing.T) {
	g := gen.RMAT(2000, 10000, 0.57, 0.19, 0.19, 8)
	p := Fennel(g, 8, DefaultOptions())
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for v, a := range p.Assign {
		if a < 0 {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
}

func TestFennelBeatsHashingOnCut(t *testing.T) {
	g := gen.Mesh2D(40, 40)
	fp := Fennel(g, 4, DefaultOptions())
	hp := HP(g, 4)
	if partition.EdgeCut(g, fp) >= partition.EdgeCut(g, hp) {
		t.Fatalf("Fennel cut %d not below HP cut %d",
			partition.EdgeCut(g, fp), partition.EdgeCut(g, hp))
	}
}

func TestFennelSoftBalance(t *testing.T) {
	g := gen.RMAT(3000, 15000, 0.57, 0.19, 0.19, 9)
	g.UseDegreeWeights()
	p := Fennel(g, 8, DefaultOptions())
	if s := partition.Skewness(g, p); s > 2.2 {
		t.Fatalf("Fennel skew %.2f beyond its soft-balance regime", s)
	}
}

func TestFennelPanicsOnBadK(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fennel(g, 0, DefaultOptions())
}

func TestStreamOrders(t *testing.T) {
	g := gen.Mesh2D(10, 10)
	for _, o := range []Order{OrderNatural, OrderRandom, OrderBFS, OrderDFS} {
		seq := streamOrder(g, o, 3)
		if len(seq) != int(g.NumVertices()) {
			t.Fatalf("%v order length %d", o, len(seq))
		}
		seen := make([]bool, g.NumVertices())
		for _, v := range seq {
			if seen[v] {
				t.Fatalf("%v order repeats vertex %d", o, v)
			}
			seen[v] = true
		}
		if o.String() == "unknown" {
			t.Fatalf("order %d has no name", o)
		}
	}
	if Order(99).String() != "unknown" {
		t.Fatal("unknown order should stringify as unknown")
	}
}

func TestBFSOrderIsBreadthFirst(t *testing.T) {
	// On a path graph starting anywhere, BFS order must expand outward:
	// positions of vertices are monotone in distance from the start.
	g := gen.Mesh2D(2, 20) // thin strip; BFS layers are predictable
	seq := traversalOrder(g, 7, false)
	pos := make([]int, g.NumVertices())
	for i, v := range seq {
		pos[v] = i
	}
	start := seq[0]
	// Every vertex (connected graph) must appear after at least one
	// neighbor nearer the start.
	for _, v := range seq[1:] {
		ok := false
		for _, u := range g.Neighbors(v) {
			if pos[u] < pos[v] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("vertex %d appears before all its neighbors (start %d)", v, start)
		}
	}
}

func TestOrdersCoverDisconnectedGraphs(t *testing.T) {
	g := gen.ErdosRenyi(50, 30, 4) // sparse: likely disconnected
	for _, o := range []Order{OrderBFS, OrderDFS} {
		seq := streamOrder(g, o, 1)
		if len(seq) != 50 {
			t.Fatalf("%v covered %d of 50 vertices", o, len(seq))
		}
	}
}

func TestDGOrderVariants(t *testing.T) {
	g := gen.Mesh2D(20, 20)
	for _, o := range []Order{OrderNatural, OrderRandom, OrderBFS, OrderDFS} {
		p := DG(g, 4, Options{Eps: 0.02, Order: o, Seed: 5})
		if err := p.Validate(g); err != nil {
			t.Fatalf("order %v: %v", o, err)
		}
	}
	// BFS order should give DG strong locality on a mesh: at least as
	// good as natural order is not guaranteed, but it must beat hashing.
	pb := DG(g, 4, Options{Eps: 0.02, Order: OrderBFS, Seed: 5})
	if partition.EdgeCut(g, pb) >= partition.EdgeCut(g, HP(g, 4)) {
		t.Fatal("BFS-ordered DG lost to hashing")
	}
}
