// Package fixture shows the sanctioned randomness idioms; nothing here
// may be reported.
package fixture

import "math/rand"

type sampler struct {
	rng *rand.Rand
}

// Constructors building a seeded generator are the approved path.
func newSampler(seed int64) *sampler {
	return &sampler{rng: rand.New(rand.NewSource(seed))}
}

// Methods on an injected *rand.Rand are fine.
func (s *sampler) pick(n int) int {
	return s.rng.Intn(n)
}

// A deliberate escape hatch, silenced with a reason.
func jitter() int {
	//lint:ignore globalrand startup jitter only; never feeds partition state
	return rand.Intn(16)
}
