package topology_test

import (
	"fmt"

	"paragon/internal/topology"
)

// Example shows how communication cost varies with placement on a
// modeled two-node NUMA cluster, and how the Eq. 12 contention penalty
// reshapes the matrix.
func Example() {
	cl := topology.PittCluster(2) // 2 nodes × 2 sockets × 10 cores
	fmt.Printf("intra-socket: %.0f\n", cl.Cost(0, 1))
	fmt.Printf("inter-socket: %.0f\n", cl.Cost(0, 10))
	fmt.Printf("inter-node:   %.0f\n", cl.Cost(0, 20))

	// λ=1 penalizes intra-node pairs past the network cost.
	m, _ := cl.PartitionCostMatrix(40, 1.0)
	fmt.Printf("with contention penalty, intra-socket: %.0f\n", m[0][1])
	// Output:
	// intra-socket: 2
	// inter-socket: 4
	// inter-node:   15
	// with contention penalty, intra-socket: 21
}

// ExampleCluster_ContendedResources reproduces a Table 1 row.
func ExampleCluster_ContendedResources() {
	uma := topology.UMACluster(1)
	for _, r := range uma.ContendedResources(0, 2) {
		fmt.Println(r)
	}
	// Output:
	// socket
	// FSB/QPI(HT)
	// memory controller
}
