package dir

import (
	"bytes"
	"errors"
	"testing"

	"paragon/internal/faultsim"
	"paragon/internal/migrate"
	"paragon/internal/obs"
)

// buildHistory drives a directory through a mixed publish history —
// committed flips interleaved with a crashed publish and an exhausted
// retry budget — and records every committed epoch's full assignment.
// Returns the directory and the committed assignment per epoch.
func buildHistory(t *testing.T, n int, k int32) (*Directory, map[int64][]int32) {
	t.Helper()
	assign := testAssign(n, k, 99)
	// Fabric epochs 0..: publish 2 crashes between prepare and flip,
	// publish 4's prepare append exhausts the retry budget.
	var script []faultsim.Event
	script = append(script, faultsim.Event{Kind: faultsim.KindCrash, Round: 2, Index: 0})
	for attempt := 0; attempt <= faultsim.DefaultPolicy().MaxRetries; attempt++ {
		script = append(script, faultsim.Event{Kind: faultsim.KindDrop, Round: 4, Index: opPrepare, Attempt: attempt})
	}
	fab := faultsim.NewInjector(faultsim.Config{Script: script})
	d := mustNew(t, assign, k, Options{ShardBits: 7, Fabric: fab})
	committed := map[int64][]int32{0: append([]int32(nil), assign...)}

	target := append([]int32(nil), assign...)
	for pub := 0; pub < 6; pub++ {
		for v := pub; v < n; v += 5 {
			target[v] = (target[v] + 1) % k
		}
		epoch, err := d.PublishAssign(target)
		switch pub {
		case 2, 4: // the scripted failures
			if !errors.Is(err, ErrPublishFailed) {
				t.Fatalf("publish %d: err = %v, want ErrPublishFailed", pub, err)
			}
		default:
			if err != nil {
				t.Fatalf("publish %d: %v", pub, err)
			}
			committed[epoch] = append([]int32(nil), target...)
		}
	}
	if d.Epoch() != 4 {
		t.Fatalf("final epoch = %d, want 4 (6 publishes, 2 failed)", d.Epoch())
	}
	return d, committed
}

func TestRecoverRoundTrip(t *testing.T) {
	d, committed := buildHistory(t, 700, 5)
	j := d.JournalBytes()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	r, err := Recover(j, Options{Metrics: reg, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != d.Epoch() {
		t.Fatalf("recovered epoch = %d, want %d", r.Epoch(), d.Epoch())
	}
	if r.Current().AssignHash() != d.Current().AssignHash() {
		t.Fatal("recovered assignment hash differs from live directory")
	}
	want := committed[d.Epoch()]
	got := r.Current().AppendAssign(nil)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d = %d, want %d", v, got[v], want[v])
		}
	}
	// The journal is complete (no torn tail) — recovery keeps it
	// byte-identical, so recovery is idempotent.
	if !bytes.Equal(r.JournalBytes(), j) {
		t.Fatal("recovered journal differs from the original")
	}
	if got := reg.Counter("dir_recoveries_total", "").Value(); got != 1 {
		t.Fatalf("dir_recoveries_total = %d, want 1", got)
	}
	if got := reg.Counter("dir_torn_bytes_total", "").Value(); got != 0 {
		t.Fatalf("dir_torn_bytes_total = %d, want 0", got)
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != obs.KindDirRecovered || evs[0].N != d.Epoch() {
		t.Fatalf("trace = %+v, want one dir_recovered at epoch %d", evs, d.Epoch())
	}
	// The recovered instance keeps publishing where the original left
	// off, and its extended journal recovers too.
	a := r.Current().AppendAssign(nil)
	a[0] = (a[0] + 1) % 5
	if e, err := r.PublishAssign(a); err != nil || e != d.Epoch()+1 {
		t.Fatalf("publish on recovered directory = (%d, %v)", e, err)
	}
	r2, err := Recover(r.JournalBytes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch() != d.Epoch()+1 || r2.Current().AssignHash() != r.Current().AssignHash() {
		t.Fatal("second-generation recovery diverged")
	}
}

// The acceptance sweep: recovery from EVERY truncated journal prefix
// either fails loudly (the base record itself is torn) or rebuilds some
// committed epoch bit-identically — never a mix of epochs, never an
// uncommitted prepare, and never a regression as the prefix grows.
func TestRecoverTruncatedPrefixSweep(t *testing.T) {
	d, committed := buildHistory(t, 300, 4)
	j := d.JournalBytes()
	lastEpoch := int64(-1)
	recovered := 0
	for cut := 0; cut <= len(j); cut++ {
		r, err := Recover(j[:cut], Options{})
		if err != nil {
			if lastEpoch >= 0 {
				t.Fatalf("prefix %d failed after prefix recovery worked: %v", cut, err)
			}
			continue
		}
		recovered++
		epoch := r.Epoch()
		want, ok := committed[epoch]
		if !ok {
			t.Fatalf("prefix %d recovered epoch %d, which was never committed", cut, epoch)
		}
		if epoch < lastEpoch {
			t.Fatalf("prefix %d recovered epoch %d after a longer prefix gave %d", cut, epoch, lastEpoch)
		}
		lastEpoch = epoch
		got := r.Current().AppendAssign(nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("prefix %d epoch %d: vertex %d = %d, want %d (torn read materialized)", cut, epoch, v, got[v], want[v])
			}
		}
	}
	if lastEpoch != d.Epoch() {
		t.Fatalf("full journal recovered epoch %d, want %d", lastEpoch, d.Epoch())
	}
	if recovered == 0 {
		t.Fatal("no prefix recovered at all")
	}
}

func TestRecoverRejectsEmptyAndGarbage(t *testing.T) {
	if _, err := Recover(nil, Options{}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("empty journal: err = %v, want ErrJournalCorrupt", err)
	}
	if _, err := Recover(bytes.Repeat([]byte{0xee}, 100), Options{}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("garbage journal: err = %v, want ErrJournalCorrupt", err)
	}
}

func TestRecoverStopsAtMidJournalCorruption(t *testing.T) {
	d, committed := buildHistory(t, 300, 4)
	j := d.JournalBytes()
	// Flip one byte well past the base record: the checksum of the record
	// containing it fails, parsing stops there, and recovery lands on an
	// earlier committed epoch instead of serving corrupted mappings.
	j2 := append([]byte(nil), j...)
	j2[len(j2)/2] ^= 0xff
	r, err := Recover(j2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() >= d.Epoch() {
		t.Fatalf("corruption at the midpoint still recovered epoch %d", r.Epoch())
	}
	want := committed[r.Epoch()]
	got := r.Current().AppendAssign(nil)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d = %d, want %d", v, got[v], want[v])
		}
	}
}

// Structural violations inside a well-checksummed prefix are corruption,
// not truncation: the writer cannot produce them, so recovery must fail
// loudly rather than guess.
func TestRecoverRejectsStructuralViolations(t *testing.T) {
	assign := testAssign(64, 2, 1)
	base := appendBaseRecord(nil, assign, 2, 6)
	plan := &migrate.Plan{K: 2, Moves: []migrate.Move{{Vertex: 0, From: assign[0], To: 1 - assign[0]}}}

	// Commit without its prepare.
	j := appendRecordBytes(append([]byte(nil), base...), recCommit, 1, appendUint64(nil, 0))
	if _, err := Recover(j, Options{}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("orphan commit: err = %v, want ErrJournalCorrupt", err)
	}

	// Prepare skipping an epoch.
	j = appendRecordBytes(append([]byte(nil), base...), recPrepare, 5, plan.AppendBinary(nil))
	if _, err := Recover(j, Options{}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("epoch-skipping prepare: err = %v, want ErrJournalCorrupt", err)
	}

	// Prepare before any base record.
	j = appendRecordBytes(nil, recPrepare, 1, plan.AppendBinary(nil))
	if _, err := Recover(j, Options{}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("prepare before base: err = %v, want ErrJournalCorrupt", err)
	}

	// Commit whose hash does not match the replayed delta.
	j = appendRecordBytes(append([]byte(nil), base...), recPrepare, 1, plan.AppendBinary(nil))
	j = appendRecordBytes(j, recCommit, 1, appendUint64(nil, 0xdeadbeef))
	if _, err := Recover(j, Options{}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("hash mismatch: err = %v, want ErrJournalCorrupt", err)
	}

	// Duplicate base.
	j = append(append([]byte(nil), base...), base...)
	if _, err := Recover(j, Options{}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("duplicate base: err = %v, want ErrJournalCorrupt", err)
	}
}

func TestRecordParseRejectsTampering(t *testing.T) {
	rec := appendRecordBytes(nil, recPrepare, 3, []byte{1, 2, 3, 4})
	if _, _, _, _, ok := parseRecord(rec); !ok {
		t.Fatal("pristine record did not parse")
	}
	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x01
		if typ, epoch, payload, _, ok := parseRecord(bad); ok {
			// A flip in the checksum trailer could in principle collide,
			// but FNV over these bytes does not; everything else must
			// change the parse outcome.
			t.Fatalf("byte %d flip still parsed: typ=%d epoch=%d payload=%v", i, typ, epoch, payload)
		}
	}
	for cut := 0; cut < len(rec); cut++ {
		if _, _, _, _, ok := parseRecord(rec[:cut]); ok {
			t.Fatalf("truncation at %d still parsed", cut)
		}
	}
}
