// Package gen provides seeded, deterministic synthetic graph generators
// that stand in for the paper's 13 real-world datasets (Table 2). Each
// generator targets one structural class used in the evaluation:
//
//   - RMAT / Kronecker: skewed power-law graphs (social, collaboration,
//     communication networks — com-lj, YouTube, DBLP, Enron, friendster);
//   - BarabasiAlbert: preferential attachment (internet topology —
//     as-skitter);
//   - WattsStrogatz: high clustering, short paths (product co-purchase —
//     com-amazon);
//   - Mesh2D / Mesh3D: finite-element meshes (wave, auto, 333SP);
//   - RoadGrid: near-planar, low-degree networks (USA-road-d, roadNet-PA);
//   - ErdosRenyi: uniform random baseline for tests.
//
// All generators produce undirected, connected-ish simple graphs with unit
// edge weights; callers apply the paper's degree-based vertex weights via
// (*graph.Graph).UseDegreeWeights.
package gen

import (
	"fmt"
	"math/rand"

	"paragon/internal/graph"
)

// RMAT generates a recursive-matrix (Kronecker) graph with n vertices
// (rounded up to a power of two internally, then compacted) and
// approximately m undirected edges, using partition probabilities a, b, c
// (d = 1-a-b-c). Typical social-network parameters are a=0.57, b=0.19,
// c=0.19. Vertex ids are randomly permuted so that locality does not leak
// the recursive structure to streaming partitioners.
func RMAT(n int32, m int64, a, b, c float64, seed int64) *graph.Graph {
	if n < 2 {
		panic("gen: RMAT needs n >= 2")
	}
	if a <= 0 || b < 0 || c < 0 || a+b+c >= 1 {
		panic(fmt.Sprintf("gen: RMAT bad probabilities a=%v b=%v c=%v", a, b, c))
	}
	rng := rand.New(rand.NewSource(seed))
	levels := 0
	for (int64(1) << levels) < int64(n) {
		levels++
	}
	size := int64(1) << levels
	perm := rng.Perm(int(size))
	bld := graph.NewBuilder(n)
	attempts := m * 4
	var added int64
	seen := make(map[int64]struct{}, m)
	for i := int64(0); i < attempts && added < m; i++ {
		var u, v int64
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			u <<= 1
			v <<= 1
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1
			case r < a+b+c:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		pu, pv := int64(perm[u])%int64(n), int64(perm[v])%int64(n)
		if pu == pv {
			continue
		}
		if pu > pv {
			pu, pv = pv, pu
		}
		key := pu*int64(n) + pv
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		bld.AddEdge(int32(pu), int32(pv))
		added++
	}
	ensureNoIsolates(bld, rng)
	return bld.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: vertices
// arrive one at a time and attach k edges to existing vertices chosen
// proportionally to their current degree.
func BarabasiAlbert(n int32, k int, seed int64) *graph.Graph {
	if n < int32(k)+1 || k < 1 {
		panic("gen: BarabasiAlbert needs n > k >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	// Repeated-vertex list: picking a uniform element is equivalent to
	// degree-proportional selection.
	targets := make([]int32, 0, int64(n)*int64(k)*2)
	// Seed clique of k+1 vertices.
	for u := int32(0); u <= int32(k); u++ {
		for v := u + 1; v <= int32(k); v++ {
			bld.AddEdge(u, v)
			targets = append(targets, u, v)
		}
	}
	chosen := make(map[int32]struct{}, k)
	picks := make([]int32, 0, k)
	for v := int32(k) + 1; v < n; v++ {
		for id := range chosen {
			delete(chosen, id)
		}
		picks = picks[:0]
		for len(chosen) < k {
			u := targets[rng.Intn(len(targets))]
			if _, dup := chosen[u]; dup {
				continue
			}
			chosen[u] = struct{}{}
			picks = append(picks, u)
		}
		// Iterate picks in selection order, not map order: map iteration
		// is randomized per run and would leak into the edge insertion
		// order and the targets list, breaking the package's seeded
		// determinism guarantee.
		for _, u := range picks {
			bld.AddEdge(v, u)
			targets = append(targets, v, u)
		}
	}
	return bld.Build()
}

// HolmeKim generates a power-law graph with tunable clustering
// (Holme & Kim, 2002): preferential attachment like Barabási–Albert,
// but after each preferential link the next link closes a triangle with
// probability pt. High pt produces the clustered hub structure of
// internet topologies.
func HolmeKim(n int32, k int, pt float64, seed int64) *graph.Graph {
	if n < int32(k)+1 || k < 1 {
		panic("gen: HolmeKim needs n > k >= 1")
	}
	if pt < 0 || pt > 1 {
		panic("gen: HolmeKim needs 0 <= pt <= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	targets := make([]int32, 0, int64(n)*int64(k)*2)
	for u := int32(0); u <= int32(k); u++ {
		for v := u + 1; v <= int32(k); v++ {
			bld.AddEdge(u, v)
			targets = append(targets, u, v)
		}
	}
	adjacency := make(map[int32][]int32, n) // incremental adjacency for triad closure
	for u := int32(0); u <= int32(k); u++ {
		for v := int32(0); v <= int32(k); v++ {
			if u != v {
				adjacency[u] = append(adjacency[u], v)
			}
		}
	}
	chosen := make(map[int32]struct{}, k)
	picks := make([]int32, 0, k)
	for v := int32(k) + 1; v < n; v++ {
		for id := range chosen {
			delete(chosen, id)
		}
		picks = picks[:0]
		var last int32 = -1
		for len(chosen) < k {
			var pick int32
			if last >= 0 && rng.Float64() < pt && len(adjacency[last]) > 0 {
				// Triad formation: connect to a neighbor of the last
				// preferential target.
				pick = adjacency[last][rng.Intn(len(adjacency[last]))]
			} else {
				pick = targets[rng.Intn(len(targets))]
			}
			if pick == v {
				continue
			}
			if _, dup := chosen[pick]; dup {
				// Fall back to preferential attachment to make progress.
				pick = targets[rng.Intn(len(targets))]
				if pick == v {
					continue
				}
				if _, dup := chosen[pick]; dup {
					continue
				}
			}
			chosen[pick] = struct{}{}
			picks = append(picks, pick)
			last = pick
		}
		// Selection order, not map order — see BarabasiAlbert.
		for _, u := range picks {
			bld.AddEdge(v, u)
			targets = append(targets, v, u)
			adjacency[v] = append(adjacency[v], u)
			adjacency[u] = append(adjacency[u], v)
		}
	}
	return bld.Build()
}

// ErdosRenyi generates G(n, m): m distinct uniform random edges.
func ErdosRenyi(n int32, m int64, seed int64) *graph.Graph {
	maxM := int64(n) * int64(n-1) / 2
	if m > maxM {
		panic(fmt.Sprintf("gen: ErdosRenyi m=%d exceeds max %d", m, maxM))
	}
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	for added := int64(0); added < m; {
		u, v := int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		bld.AddEdge(u, v)
		added++
	}
	ensureNoIsolates(bld, rng)
	return bld.Build()
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors on each side, with each edge
// rewired to a random endpoint with probability beta.
func WattsStrogatz(n int32, k int, beta float64, seed int64) *graph.Graph {
	if k < 1 || int32(2*k) >= n {
		panic("gen: WattsStrogatz needs 1 <= k and 2k < n")
	}
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	type pair struct{ u, v int32 }
	seen := make(map[pair]struct{}, int64(n)*int64(k))
	add := func(u, v int32) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if _, dup := seen[pair{u, v}]; dup {
			return false
		}
		seen[pair{u, v}] = struct{}{}
		bld.AddEdge(u, v)
		return true
	}
	for v := int32(0); v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + int32(j)) % n
			if rng.Float64() < beta {
				// Rewire: try a few random targets before falling back.
				done := false
				for t := 0; t < 8 && !done; t++ {
					done = add(v, int32(rng.Intn(int(n))))
				}
				if !done {
					add(v, u)
				}
			} else {
				add(v, u)
			}
		}
	}
	return bld.Build()
}

// Mesh2D generates a triangulated rows×cols grid: the FEM-style mesh class
// (wave, 333SP). Each cell contributes its right, down, and one diagonal
// edge, giving interior degree 6.
func Mesh2D(rows, cols int32) *graph.Graph {
	if rows < 2 || cols < 2 {
		panic("gen: Mesh2D needs rows, cols >= 2")
	}
	n := rows * cols
	bld := graph.NewBuilder(n)
	id := func(r, c int32) int32 { return r*cols + c }
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			if c+1 < cols {
				bld.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				bld.AddEdge(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				bld.AddEdge(id(r, c), id(r+1, c+1)) // triangulating diagonal
			}
		}
	}
	return bld.Build()
}

// Mesh3D generates an x×y×z hexahedral grid: the 3D FEM class (auto).
func Mesh3D(x, y, z int32) *graph.Graph {
	if x < 2 || y < 2 || z < 2 {
		panic("gen: Mesh3D needs x, y, z >= 2")
	}
	n := x * y * z
	bld := graph.NewBuilder(n)
	id := func(i, j, k int32) int32 { return (i*y+j)*z + k }
	for i := int32(0); i < x; i++ {
		for j := int32(0); j < y; j++ {
			for k := int32(0); k < z; k++ {
				if i+1 < x {
					bld.AddEdge(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < y {
					bld.AddEdge(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < z {
					bld.AddEdge(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	return bld.Build()
}

// RoadGrid generates a near-planar road-network-like graph: a rows×cols
// grid where each grid edge is kept with probability keep and a sparse set
// of diagonal "shortcut" edges is added with probability diag. Average
// degree lands near the 2.4–2.8 of real road networks for keep≈0.7.
func RoadGrid(rows, cols int32, keep, diag float64, seed int64) *graph.Graph {
	if rows < 2 || cols < 2 {
		panic("gen: RoadGrid needs rows, cols >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	bld := graph.NewBuilder(n)
	id := func(r, c int32) int32 { return r*cols + c }
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			if c+1 < cols && rng.Float64() < keep {
				bld.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows && rng.Float64() < keep {
				bld.AddEdge(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < diag {
				bld.AddEdge(id(r, c), id(r+1, c+1))
			}
		}
	}
	ensureNoIsolates(bld, rng)
	return bld.Build()
}

// SampleEdges returns a copy of g in which each undirected edge is kept
// independently with probability p — the "friendster-p" scaling series of
// §7.3. Vertex count, weights and sizes are preserved.
func SampleEdges(g *graph.Graph, p float64, seed int64) *graph.Graph {
	if p < 0 || p > 1 {
		panic("gen: SampleEdges needs 0 <= p <= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	bld := graph.NewBuilder(n)
	for v := int32(0); v < n; v++ {
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u && rng.Float64() < p {
				bld.AddWeightedEdge(v, u, w[i])
			}
		}
		bld.SetVertexWeight(v, g.VertexWeight(v))
		bld.SetVertexSize(v, g.VertexSize(v))
	}
	out := bld.Build()
	return out
}

// ensureNoIsolates attaches every isolated vertex to a random other vertex
// so downstream partitioners and BSP apps see a degenerate-free graph.
// Isolates are found by scanning the builder's staging arrays (same set,
// same ascending order, same rng draws as the historical throwaway-Build
// scan, so seeded outputs are unchanged).
func ensureNoIsolates(bld *graph.Builder, rng *rand.Rand) {
	n := bld.NumVertices()
	if n < 2 {
		return
	}
	for _, v := range bld.AppendIsolated(nil) {
		u := int32(rng.Intn(int(n)))
		for u == v {
			u = int32(rng.Intn(int(n)))
		}
		bld.AddEdge(v, u)
	}
}
