// Package migrate implements the physical data migration service of §5:
// after a refinement changes vertex ownership, the graph data of every
// moved vertex (adjacency, weights) must be shipped from its old server
// to its new one. As in the paper, the service redistributes the graph
// data itself; application data attached to vertices is the user's
// responsibility, handled through save/restore hooks invoked around each
// move (the paper's example: a BFS implementation must carry each
// vertex's current distance along).
package migrate

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"paragon/internal/faultsim"
	"paragon/internal/graph"
	"paragon/internal/obs"
	"paragon/internal/partition"
)

// ErrAborted marks a migration that was killed mid-plan by the fault
// fabric. The transaction guarantee holds: every rank has been rolled
// back to its exact pre-plan state (vertex stores and, via the Restore
// hook, application context), so Verify against the old decomposition
// passes. Detect it with errors.Is.
var ErrAborted = errors.New("migration aborted; all ranks rolled back")

// Move is one vertex changing owner.
type Move struct {
	Vertex   int32
	From, To int32
}

// Plan is the full migration schedule derived from two decompositions.
type Plan struct {
	K     int32
	Moves []Move // sorted by (From, To, Vertex)
}

// NewPlan diffs the two decompositions and returns the migration plan.
func NewPlan(old, now *partition.Partitioning) (*Plan, error) {
	if old.K != now.K {
		return nil, fmt.Errorf("migrate: partition count changed %d -> %d", old.K, now.K)
	}
	if len(old.Assign) != len(now.Assign) {
		return nil, fmt.Errorf("migrate: vertex count changed %d -> %d", len(old.Assign), len(now.Assign))
	}
	p := &Plan{K: old.K}
	for v := range old.Assign {
		if old.Assign[v] != now.Assign[v] {
			p.Moves = append(p.Moves, Move{Vertex: int32(v), From: old.Assign[v], To: now.Assign[v]})
		}
	}
	sort.Slice(p.Moves, func(i, j int) bool {
		a, b := p.Moves[i], p.Moves[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Vertex < b.Vertex
	})
	return p, nil
}

// AppendBinary appends the canonical little-endian wire form of the
// plan to dst and returns dst: K, the move count, then one
// (vertex, from, to) int32 triple per move in plan order. This is the
// journal-record payload shape shared with the epoch-versioned partition
// directory (internal/dir), whose crash recovery replays these records;
// DecodePlan is its exact inverse.
func (p *Plan) AppendBinary(dst []byte) []byte {
	dst = appendInt32(dst, p.K)
	dst = appendInt32(dst, int32(len(p.Moves)))
	for _, m := range p.Moves {
		dst = appendInt32(dst, m.Vertex)
		dst = appendInt32(dst, m.From)
		dst = appendInt32(dst, m.To)
	}
	return dst
}

// DecodePlan parses the AppendBinary wire form. It is strict: short
// buffers, trailing bytes, and negative counts all fail, so a torn
// journal record can never decode into a half-plan.
func DecodePlan(data []byte) (*Plan, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("migrate: plan record truncated: %d bytes", len(data))
	}
	k := readInt32(data[0:])
	n := readInt32(data[4:])
	if k < 1 || n < 0 {
		return nil, fmt.Errorf("migrate: plan record corrupt: k=%d moves=%d", k, n)
	}
	if want := 8 + int64(n)*12; int64(len(data)) != want {
		return nil, fmt.Errorf("migrate: plan record is %d bytes, want %d for %d moves", len(data), want, n)
	}
	p := &Plan{K: k}
	if n > 0 {
		p.Moves = make([]Move, n)
	}
	for i := int32(0); i < n; i++ {
		off := 8 + int(i)*12
		p.Moves[i] = Move{
			Vertex: readInt32(data[off:]),
			From:   readInt32(data[off+4:]),
			To:     readInt32(data[off+8:]),
		}
	}
	return p, nil
}

func appendInt32(dst []byte, v int32) []byte {
	u := uint32(v)
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

func readInt32(b []byte) int32 {
	return int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}

// SendsFrom returns the moves departing a rank.
func (p *Plan) SendsFrom(rank int32) []Move {
	var out []Move
	for _, m := range p.Moves {
		if m.From == rank {
			out = append(out, m)
		}
	}
	return out
}

// ReceivesAt returns the moves arriving at a rank.
func (p *Plan) ReceivesAt(rank int32) []Move {
	var out []Move
	for _, m := range p.Moves {
		if m.To == rank {
			out = append(out, m)
		}
	}
	return out
}

// Volume returns the total vertex size (application data mass, Eq. 3's
// vs(v)) moved by the plan.
func (p *Plan) Volume(g *graph.Graph) int64 {
	var total int64
	for _, m := range p.Moves {
		total += int64(g.VertexSize(m.Vertex))
	}
	return total
}

// Cost returns the Eq. 3 migration cost of the plan under a cost matrix.
func (p *Plan) Cost(g *graph.Graph, c [][]float64) float64 {
	var total float64
	for _, m := range p.Moves {
		total += float64(g.VertexSize(m.Vertex)) * c[m.From][m.To]
	}
	return total
}

// VertexData is the graph payload of one vertex held by a rank store.
type VertexData struct {
	Adj     []int32
	Weights []int32
	VWeight int32
	VSize   int32
	App     []byte // opaque application context (saved/restored via hooks)
}

// Store is one rank's local vertex store.
type Store struct {
	Rank     int32
	Vertices map[int32]*VertexData
}

// BuildStores materializes per-rank stores from a graph and its current
// decomposition — the state of a running computation before migration.
func BuildStores(g *graph.Graph, p *partition.Partitioning) []*Store {
	stores := make([]*Store, p.K)
	for r := int32(0); r < p.K; r++ {
		stores[r] = &Store{Rank: r, Vertices: make(map[int32]*VertexData)}
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		stores[p.Assign[v]].Vertices[v] = &VertexData{
			Adj:     append([]int32(nil), g.Neighbors(v)...),
			Weights: append([]int32(nil), g.EdgeWeights(v)...),
			VWeight: g.VertexWeight(v),
			VSize:   g.VertexSize(v),
		}
	}
	return stores
}

// AppContext lets the application carry per-vertex state across a
// migration, as §5 requires: Save is called on the sender before the
// vertex departs, Restore on the receiver after it arrives. Either hook
// may be nil.
type AppContext struct {
	Save    func(v int32) []byte
	Restore func(v int32, data []byte)
}

// Stats reports what one Execute did.
type Stats struct {
	MovedVertices int64
	MovedBytes    int64 // serialized payload bytes (12 bytes/edge + 8 fixed + app data)
	PerRankSent   []int64
	PerRankRecv   []int64
	Aborted       bool  // the run ended in a rollback (fault or plan error)
	RolledBack    int64 // vertices that departed and were restored to their sender
}

// Execute runs the migration: one goroutine per rank exchanges vertex
// payloads over channels according to the plan, invoking the application
// hooks around each move. Stores are updated in place.
func Execute(stores []*Store, plan *Plan, ctx AppContext) (Stats, error) {
	return ExecuteWith(stores, plan, ctx, nil)
}

// validatePlan rejects malformed plans before any store is touched:
// out-of-range ranks, degenerate moves, and conflicting moves (the same
// vertex scheduled twice). It returns the vertex -> plan-index map the
// abort machinery needs.
func validatePlan(plan *Plan, k int32) (map[int32]int, error) {
	index := make(map[int32]int, len(plan.Moves))
	for i, m := range plan.Moves {
		if m.From < 0 || m.From >= k || m.To < 0 || m.To >= k {
			return nil, fmt.Errorf("migrate: move %d sends vertex %d between out-of-range ranks %d -> %d (k=%d)", i, m.Vertex, m.From, m.To, k)
		}
		if m.From == m.To {
			return nil, fmt.Errorf("migrate: move %d is degenerate: vertex %d stays on rank %d", i, m.Vertex, m.From)
		}
		if j, dup := index[m.Vertex]; dup {
			return nil, fmt.Errorf("migrate: conflicting plan: vertex %d scheduled by moves %d and %d", m.Vertex, j, i)
		}
		index[m.Vertex] = i
	}
	return index, nil
}

// ExecOptions extends Execute with the fault fabric and the
// observability layer. All fields are optional.
type ExecOptions struct {
	// Fabric optionally injects migration-abort faults (nil = fault-free).
	Fabric faultsim.Fabric
	// Trace, when set, receives migration_plan / migration_commit /
	// migration_rollback events, emitted from the coordinator after the
	// per-rank goroutines have joined.
	Trace *obs.Tracer
	// Metrics, when set, accumulates migrate_* counters.
	Metrics *obs.Registry
}

// ExecuteWith is Execute under a fault fabric; see ExecuteOpts for the
// full option surface.
func ExecuteWith(stores []*Store, plan *Plan, ctx AppContext, fab faultsim.Fabric) (Stats, error) {
	return ExecuteOpts(stores, plan, ctx, ExecOptions{Fabric: fab})
}

// migrateMetrics resolves the registry handles ExecuteOpts touches; the
// zero value (nil registry) makes every operation a no-op.
type migrateMetrics struct {
	moved      *obs.Counter
	movedBytes *obs.Counter
	rolledBack *obs.Counter
	rollbacks  *obs.Counter
}

func newMigrateMetrics(r *obs.Registry) migrateMetrics {
	if r == nil {
		return migrateMetrics{}
	}
	return migrateMetrics{
		moved:      r.Counter("migrate_moved_vertices_total", "vertices committed to a new rank"),
		movedBytes: r.Counter("migrate_moved_bytes_total", "serialized payload bytes committed"),
		rolledBack: r.Counter("migrate_rolled_back_total", "departed vertices restored to their senders"),
		rollbacks:  r.Counter("migrate_rollbacks_total", "migrations that ended in a rollback"),
	}
}

// ExecuteOpts is Execute under a fault fabric and the observability
// layer. The migration is a transaction: senders journal every departing
// vertex, receivers stage arrivals without applying them, and only a
// fully-staged plan commits. If the fabric aborts the migration mid-plan
// (or a sender finds a vertex missing), every journaled departure is
// restored to its sender — application context included, via the Restore
// hook — and ExecuteOpts returns ErrAborted (or the protocol error).
// Either way Verify holds afterwards: against the new decomposition on
// commit, against the old one on rollback.
func ExecuteOpts(stores []*Store, plan *Plan, ctx AppContext, opts ExecOptions) (Stats, error) {
	fab := opts.Fabric
	tr := opts.Trace
	mx := newMigrateMetrics(opts.Metrics)
	k := int32(len(stores))
	if plan.K != k {
		return Stats{}, fmt.Errorf("migrate: plan for %d ranks, %d stores", plan.K, k)
	}
	moveIndex, err := validatePlan(plan, k)
	if err != nil {
		return Stats{}, err
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindMigrationPlan, Round: -1, N: int64(len(plan.Moves))})
	}
	// The abort point is fixed up front from the schedule: the first plan
	// index the fabric kills. Sends at or past it never happen — the
	// "crashed" tail of the plan.
	abortAt := len(plan.Moves)
	if fab != nil {
		epoch := fab.NextEpoch()
		for i := range plan.Moves {
			if fab.AbortMigration(epoch, i) {
				abortAt = i
				break
			}
		}
	}
	type parcel struct {
		vertex int32
		data   *VertexData
	}
	// Channel fabric: inbox per rank, buffered to the plan size so
	// senders never block on slow receivers.
	inbox := make([]chan parcel, k)
	for r := range inbox {
		inbox[r] = make(chan parcel, len(plan.Moves)+1)
	}
	stats := Stats{PerRankSent: make([]int64, k), PerRankRecv: make([]int64, k)}
	perRankBytes := make([]int64, k)
	journal := make([][]parcel, k) // per sender: departed vertices, in send order
	missing := make([][]int32, k)  // per sender: vertices absent at send time

	var wg sync.WaitGroup
	for r := int32(0); r < k; r++ {
		wg.Add(1)
		go func(r int32) {
			defer wg.Done()
			st := stores[r]
			for _, m := range plan.SendsFrom(r) {
				if moveIndex[m.Vertex] >= abortAt {
					continue // the migration dies before this send
				}
				vd, ok := st.Vertices[m.Vertex]
				if !ok {
					missing[r] = append(missing[r], m.Vertex)
					continue
				}
				if ctx.Save != nil {
					vd.App = ctx.Save(m.Vertex)
				}
				delete(st.Vertices, m.Vertex)
				journal[r] = append(journal[r], parcel{m.Vertex, vd})
				inbox[m.To] <- parcel{m.Vertex, vd}
				perRankBytes[r] += payloadBytes(vd)
				stats.PerRankSent[r]++
			}
		}(r)
	}
	wg.Wait()

	// Deterministic verdict: a protocol violation outranks a scheduled
	// abort, and the reported vertex is the lowest missing one however
	// the goroutines interleaved.
	var verdict error
	var missingAll []int32
	for r := int32(0); r < k; r++ {
		missingAll = append(missingAll, missing[r]...)
	}
	if len(missingAll) > 0 {
		sort.Slice(missingAll, func(i, j int) bool { return missingAll[i] < missingAll[j] })
		v := missingAll[0]
		verdict = fmt.Errorf("migrate: rank %d does not hold vertex %d; rolled back", plan.Moves[moveIndex[v]].From, v)
	} else if abortAt < len(plan.Moves) {
		verdict = fmt.Errorf("migrate: fault at plan move %d of %d: %w", abortAt, len(plan.Moves), ErrAborted)
	}

	if verdict != nil {
		// Rollback: discard everything in flight and restore each
		// journaled departure to its sender, handing the application
		// context back through the Restore hook at the origin rank.
		for r := int32(0); r < k; r++ {
			close(inbox[r])
			for range inbox[r] {
			}
			for _, pc := range journal[r] {
				stores[r].Vertices[pc.vertex] = pc.data
				if ctx.Restore != nil {
					ctx.Restore(pc.vertex, pc.data.App)
				}
				stats.RolledBack++
			}
		}
		stats.Aborted = true
		stats.PerRankSent = make([]int64, k) // nothing moved
		mx.rollbacks.Inc()
		mx.rolledBack.Add(stats.RolledBack)
		if tr != nil {
			at := int32(-1) // protocol violation
			if len(missingAll) == 0 {
				at = int32(abortAt)
			}
			tr.Emit(obs.Event{Kind: obs.KindMigrationRollback, Round: -1, A: at, N: stats.RolledBack})
		}
		return stats, verdict
	}

	// Commit phase: all sends staged, drain inboxes into the stores.
	for r := int32(0); r < k; r++ {
		wg.Add(1)
		go func(r int32) {
			defer wg.Done()
			close(inbox[r])
			for pc := range inbox[r] {
				stores[r].Vertices[pc.vertex] = pc.data
				if ctx.Restore != nil {
					ctx.Restore(pc.vertex, pc.data.App)
				}
				stats.PerRankRecv[r]++
			}
		}(r)
	}
	wg.Wait()
	for r := int32(0); r < k; r++ {
		stats.MovedBytes += perRankBytes[r]
		stats.MovedVertices += stats.PerRankSent[r]
	}
	mx.moved.Add(stats.MovedVertices)
	mx.movedBytes.Add(stats.MovedBytes)
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindMigrationCommit, Round: -1, N: stats.MovedVertices, M: stats.MovedBytes})
	}
	return stats, nil
}

// payloadBytes models the wire size of a vertex payload: 12 bytes per
// half-edge (4 id + 4 weight + 4 framing), 8 bytes of vertex attributes,
// plus the application blob.
func payloadBytes(vd *VertexData) int64 {
	return int64(len(vd.Adj))*12 + 8 + int64(len(vd.App))
}

// Verify checks that the stores exactly realize the decomposition now:
// every vertex present in precisely the store of its partition.
func Verify(stores []*Store, g *graph.Graph, now *partition.Partitioning) error {
	seen := make([]bool, g.NumVertices())
	for _, st := range stores {
		// Walk each store's vertices in sorted order so a violation is
		// always reported against the same vertex, run after run.
		verts := make([]int32, 0, len(st.Vertices))
		for v := range st.Vertices {
			verts = append(verts, v)
		}
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		for _, v := range verts {
			if v < 0 || v >= g.NumVertices() {
				return fmt.Errorf("migrate: store %d holds out-of-range vertex %d", st.Rank, v)
			}
			if seen[v] {
				return fmt.Errorf("migrate: vertex %d present in multiple stores", v)
			}
			seen[v] = true
			if now.Assign[v] != st.Rank {
				return fmt.Errorf("migrate: vertex %d in store %d, should be %d", v, st.Rank, now.Assign[v])
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("migrate: vertex %d lost", v)
		}
	}
	return nil
}
