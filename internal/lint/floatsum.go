package lint

import (
	"go/ast"
	"go/token"
)

// FloatSum flags reordering-sensitive floating-point accumulation in the
// two contexts where the summation order is not fixed: ranging over a
// map, and goroutine bodies. Floating-point addition is not associative,
// so `gain += x` in either context produces run-to-run ULP drift that
// the golden-hash tests amplify into full failures. Gain code paths
// accumulate through a deterministic drain instead — aragon.Refiner
// collects per-candidate gains in a slot array and drains a sparse
// bitmap in index order; parallel reductions (paragon, bsp, gas) reduce
// per-worker partials in rank order after the barrier.
type FloatSum struct {
	// Deterministic reports whether a package is under the determinism
	// contract. Nil covers every package.
	Deterministic func(path string) bool
}

func (FloatSum) Name() string { return "floatsum" }
func (FloatSum) Doc() string {
	return "floating-point accumulation must happen in a deterministic order"
}

func (c FloatSum) Check(pkg *Package) []Diagnostic {
	if c.Deterministic != nil && !c.Deterministic(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pkg, n.X) {
					out = append(out, c.scanBody(pkg, n.Body, "map-iteration")...)
				}
			case *ast.GoStmt:
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
					out = append(out, c.scanBody(pkg, fl.Body, "goroutine-interleaving")...)
				}
			}
			return true
		})
	}
	return dedupeDiags(out)
}

func (c FloatSum) scanBody(pkg *Package, body *ast.BlockStmt, order string) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		case token.ASSIGN:
			// x = x + y spelled out.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
				return true
			}
			if exprString(bin.X) != exprString(as.Lhs[0]) && exprString(bin.Y) != exprString(as.Lhs[0]) {
				return true
			}
		default:
			return true
		}
		if !isFloatExpr(pkg, as.Lhs[0]) {
			return true
		}
		out = append(out, diag(pkg, as.Pos(), "floatsum",
			"floating-point accumulation into %s in %s order is nondeterministic; drain in a fixed order (see aragon.Refiner's bitmap drain)",
			exprString(as.Lhs[0]), order))
		return true
	})
	return out
}

// dedupeDiags drops duplicate positions (a float += inside a map range
// inside a goroutine would otherwise report twice).
func dedupeDiags(in []Diagnostic) []Diagnostic {
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range in {
		key := d.Pos.String() + d.Message
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}
