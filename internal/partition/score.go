package partition

import "paragon/internal/graph"

// Score bundles the §3 objective of one decomposition: the Eq. 2
// communication cost, the Eq. 3 migration cost against a reference
// assignment, the Eq. 4 skewness, and the raw edge cut. It is the shared
// scorer behind Evaluate, the refinement Stats, and portfolio selection —
// one accumulation order, so every consumer sees bit-identical floats.
type Score struct {
	EdgeCut       int64
	CommCost      float64 // Eq. 2: α · Σ_{cut edges} w(e) · c(Pi, Pj)
	MigrationCost float64 // Eq. 3 vs the orig assignment; 0 when orig is nil
	Skewness      float64 // Eq. 4: max w(Pi) / avg w(Pi)
}

// Cost is the paper's composite objective (Eq. 1 with the balance
// constraint handled separately): communication plus migration cost.
func (s Score) Cost() float64 { return s.CommCost + s.MigrationCost }

// Better reports whether s strictly precedes o in the deterministic
// total order used for portfolio selection: lower Cost first, then lower
// EdgeCut, then lower Skewness. Full ties are NOT better, so selecting
// with strict Better over ascending member ids yields the lowest id —
// the "score, then member id" total order without a separate tie field.
func (s Score) Better(o Score) bool {
	if s.Cost() != o.Cost() {
		return s.Cost() < o.Cost()
	}
	if s.EdgeCut != o.EdgeCut {
		return s.EdgeCut < o.EdgeCut
	}
	return s.Skewness < o.Skewness
}

// ComputeScore evaluates all Score metrics in one vertex sweep. orig is
// the Eq. 3 reference assignment (the pre-refinement decomposition);
// nil means "no migration", scoring the decomposition in place. The cost
// matrix c must be at least K×K.
//
// Each accumulator folds in exactly the order of the corresponding
// standalone metric function (EdgeCut, CommCost, MigrationCost,
// Skewness): a single ascending vertex loop with adjacency-order inner
// folds. The per-metric results are therefore bitwise identical to the
// standalone functions — regression-tested in score_test.go — which is
// what lets Evaluate, Refine's Stats, and portfolio selection share one
// scorer without perturbing any golden value.
func ComputeScore(g *graph.Graph, p *Partitioning, orig []int32, c [][]float64, alpha float64) Score {
	return ComputeScoreInto(g, p, orig, c, alpha, make([]int64, p.K))
}

// ComputeScoreInto is ComputeScore with a caller-provided weight buffer
// of length >= K (overwritten here) — the allocation-free form used by
// the portfolio workers, which score every member on pooled scratch.
func ComputeScoreInto(g *graph.Graph, p *Partitioning, orig []int32, c [][]float64, alpha float64, wbuf []int64) Score {
	w := wbuf[:p.K]
	for i := range w {
		w[i] = 0
	}
	var (
		cut  int64
		comm float64
		mig  float64
	)
	for v := int32(0); v < g.NumVertices(); v++ {
		pv := p.Assign[v]
		w[pv] += int64(g.VertexWeight(v))
		if orig != nil {
			if from := orig[v]; from != pv {
				mig += float64(g.VertexSize(v)) * c[from][pv]
			}
		}
		adj := g.Neighbors(v)
		ew := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u {
				if pu := p.Assign[u]; pu != pv {
					cut += int64(ew[i])
					comm += float64(ew[i]) * c[pv][pu]
				}
			}
		}
	}
	var sum, max int64
	for _, wi := range w {
		sum += wi
		if wi > max {
			max = wi
		}
	}
	skew := 1.0
	if sum != 0 {
		skew = float64(max) / (float64(sum) / float64(p.K))
	}
	return Score{
		EdgeCut:       cut,
		CommCost:      alpha * comm,
		MigrationCost: mig,
		Skewness:      skew,
	}
}
