package apps

import (
	"fmt"
	"sort"

	"paragon/internal/bsp"
	"paragon/internal/graph"
)

// LabelPropagation runs synchronous label propagation (community
// detection) for a fixed number of iterations: every vertex starts with
// its own label and repeatedly adopts the most frequent label among its
// neighbors (ties to the smallest label, which guarantees progress and
// determinism). Returns the final label of every vertex.
//
// Unlike the min-combining apps, LPA needs the full multiset of neighbor
// labels, so it runs without a combiner — a useful stress of the bsp
// engine's uncombined delivery path.
func LabelPropagation(e *bsp.Engine, g *graph.Graph, iters int) ([]int64, bsp.Result, error) {
	if iters < 1 {
		return nil, bsp.Result{}, fmt.Errorf("apps: LabelPropagation needs >= 1 iteration")
	}
	n := g.NumVertices()
	remaining := make([]int32, n) // per-vertex, touched only by its own rank
	for i := range remaining {
		remaining[i] = int32(iters)
	}
	prog := bsp.Program{
		Init: func(v int32) (int64, bool) { return int64(v), true },
		Compute: func(v int32, value int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if msgs != nil {
				value = pluralityLabel(msgs)
			}
			remaining[v]--
			if remaining[v] <= 0 {
				return value, false
			}
			for _, u := range g.Neighbors(v) {
				send(u, value)
			}
			return value, true
		},
	}
	res, err := e.Run(prog)
	return res.Values, res, err
}

// pluralityLabel returns the most frequent label, ties to the smallest.
func pluralityLabel(msgs []int64) int64 {
	sorted := append([]int64(nil), msgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	best, bestCount := sorted[0], 0
	cur, curCount := sorted[0], 0
	for _, m := range sorted {
		if m == cur {
			curCount++
		} else {
			cur, curCount = m, 1
		}
		if curCount > bestCount {
			best, bestCount = cur, curCount
		}
	}
	return best
}
