// Package taintclean holds the negative cases: a clock read in dead
// code no kernel entry reaches, and an audited escape whose directive
// stops taint from seeding.
package taintclean

import "time"

// Entry's helper chain is clock-free.
func Entry() int { return helper() }

func helper() int { return 42 }

// unreachable is neither exported nor called: its clock read is outside
// the reachability closure and must not taint anything.
func unreachable() int64 { return time.Now().UnixNano() }

// Audited is reachable, but the reasoned directive makes the source an
// audited escape — taint seeds nothing from it.
func Audited() int64 {
	//lint:ignore wallclock fixture documents an audited boundary stopwatch
	return time.Now().UnixNano()
}
