package exp

import (
	"fmt"

	"paragon/internal/gen"
	"paragon/internal/stream"
)

// Billion-edge scaling (§7.3), reproduced with the friendster-p series of
// edge-sampled social graphs. The paper runs on three PittMPICluster
// nodes with drp, shuffles and message grouping set to 10, 10 and 256.

// Fig15and16 regenerates Figures 15 and 16: BFS JET and PARAGON
// refinement time as the graph scale grows (p = fraction of edges kept).
func Fig15and16(scale float64, nSources int) (*Table, *Table) {
	env := PittEnv(3)
	k := int32(env.K)
	series := gen.FriendsterSeries(scale)
	jetTab := &Table{
		ID:     "fig15",
		Title:  "BFS JET vs graph scale (friendster-p series, model units)",
		Header: []string{"p", "edges", "JET_DG", "JET_PARAGON"},
		Notes:  "paper: PARAGON lowers both the JET and its growth rate with graph size",
	}
	refTab := &Table{
		ID:     "fig16",
		Title:  "PARAGON refinement time vs graph scale",
		Header: []string{"p", "edges", "refinement_time"},
		Notes:  "paper: refinement time grows much more slowly than graph size",
	}
	for _, s := range series {
		g := s.Graph
		g.UseDegreeWeights()
		dg := stream.DG(g, k, stream.DefaultOptions())
		refined := dg.Clone()
		st := RefineParagon(g, refined, env, 10, 10, 42)
		srcs := sources(g.NumVertices(), nSources, 77)
		jetDG, _ := runJob(appBFS, g, dg, env, 256, srcs)
		jetPar, _ := runJob(appBFS, g, refined, env, 256, srcs)
		p := fmt.Sprintf("%.2f", s.P)
		edges := fmt.Sprint(g.NumEdges())
		jetTab.Rows = append(jetTab.Rows, []string{p, edges, f0(jetDG), f0(jetPar)})
		refTab.Rows = append(refTab.Rows, []string{p, edges, secs(st.RefinementTime)})
	}
	return jetTab, refTab
}
