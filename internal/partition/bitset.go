package partition

import "math/bits"

// Bitset is a fixed-length bit-packed vertex mask: the boundary/allowed
// masks of the refinement pipeline, 64 vertices per word instead of one
// byte each. At the 10M-vertex scale the []bool form of the movable
// mask alone is 10 MB of scratch touched once per round; the packed
// form is 1.25 MB and lets sweeps skip 64 vertices per zero word.
//
// Bit v lives in Words()[v>>6] at position v&63, so contiguous 64-aligned
// vertex ranges map to disjoint word ranges — the property the sharded
// sweeps rely on to fill a shared mask from several workers without
// write overlap (see WordShard).
type Bitset struct {
	words []uint64
	n     int32
}

// NewBitset returns an all-zero bitset over n vertices.
func NewBitset(n int32) *Bitset {
	return &Bitset{words: make([]uint64, (int(n)+63)/64), n: n}
}

// Len returns the number of bits (vertices) the set covers.
func (b *Bitset) Len() int32 { return b.n }

// Get reports bit v.
func (b *Bitset) Get(v int32) bool {
	return b.words[v>>6]&(1<<(uint32(v)&63)) != 0
}

// Set sets bit v.
func (b *Bitset) Set(v int32) {
	b.words[v>>6] |= 1 << (uint32(v) & 63)
}

// Unset clears bit v.
func (b *Bitset) Unset(v int32) {
	b.words[v>>6] &^= 1 << (uint32(v) & 63)
}

// SetTo sets bit v to on.
func (b *Bitset) SetTo(v int32, on bool) {
	if on {
		b.Set(v)
	} else {
		b.Unset(v)
	}
}

// ClearAll zeroes the whole set in O(n/64).
func (b *Bitset) ClearAll() {
	clear(b.words)
}

// Words exposes the backing words. Callers writing through it must
// respect the 64-vertex word granularity (see WordShard).
func (b *Bitset) Words() []uint64 { return b.words }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendSet appends every set bit to dst in ascending order and returns
// dst.
func (b *Bitset) AppendSet(dst []int32) []int32 {
	for wi, w := range b.words {
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// Range calls fn for every set bit in [lo, hi), ascending. The bounds
// need not be word-aligned; partial edge words are masked. Used by the
// migration sweep to reproduce the fixed shard-order float reduction
// over only the set bits.
func (b *Bitset) Range(lo, hi int32, fn func(v int32)) {
	if lo >= hi {
		return
	}
	loW, hiW := int(lo>>6), int((hi-1)>>6)
	for wi := loW; wi <= hiW; wi++ {
		w := b.words[wi]
		if wi == loW {
			w &= ^uint64(0) << (uint32(lo) & 63)
		}
		if wi == hiW && hi&63 != 0 {
			w &= (1 << (uint32(hi) & 63)) - 1
		}
		base := int32(wi << 6)
		for w != 0 {
			fn(base + int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// WordShard splits the word array of a length-n bitset into nshards
// contiguous word ranges and returns the word range of shard s. Shard
// boundaries are word-aligned, so concurrent writers of distinct shards
// never share a word. The vertex range of the shard is
// [64·wordLo, min(64·wordHi, n)).
func WordShard(n int32, s, nshards int) (wordLo, wordHi int) {
	nw := (int64(n) + 63) / 64
	wordLo = int(nw * int64(s) / int64(nshards))
	wordHi = int(nw * int64(s+1) / int64(nshards))
	return wordLo, wordHi
}
