package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags ambient randomness: calls to math/rand (or
// math/rand/v2) package-level functions, which draw from the shared
// global source, and rand.New/rand.NewSource seeded from the wall clock.
// Every random decision in this repo must flow from an injected, seeded
// *rand.Rand so that a fixed Config.Seed reproduces runs bit-identically;
// a single rand.Intn buried in a kernel silently breaks the golden-hash
// tests on some future run. Constructors (New, NewSource, NewZipf) are
// allowed — they are how the seeded generators get built.
type GlobalRand struct{}

func (GlobalRand) Name() string { return "globalrand" }
func (GlobalRand) Doc() string {
	return "randomness must flow from an injected seeded *rand.Rand, not the global source"
}

var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func (c GlobalRand) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := pkg.Info.Uses[n].(*types.Func)
				if !ok || !isRandPkg(fn.Pkg()) || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if randConstructors[fn.Name()] {
					return true
				}
				out = append(out, diag(pkg, n.Pos(), "globalrand",
					"rand.%s uses the process-global random source; draw from an injected seeded *rand.Rand instead", fn.Name()))
			case *ast.CallExpr:
				fn := calleeFunc(pkg, n.Fun)
				if fn == nil || !isRandPkg(fn.Pkg()) || !randConstructors[fn.Name()] {
					return true
				}
				if argReadsClock(pkg, n.Args) {
					out = append(out, diag(pkg, n.Pos(), "globalrand",
						"rand.%s seeded from the wall clock defeats reproducibility; plumb a Config.Seed through", fn.Name()))
				}
			}
			return true
		})
	}
	return out
}

func isRandPkg(p *types.Package) bool {
	return p != nil && (p.Path() == "math/rand" || p.Path() == "math/rand/v2")
}

func calleeFunc(pkg *Package, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func argReadsClock(pkg *Package, args []ast.Expr) bool {
	for _, arg := range args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call.Fun)
			if fn == nil {
				return true
			}
			// A nested rand constructor (rand.New(rand.NewSource(...)))
			// is checked on its own visit; don't double-report.
			if isRandPkg(fn.Pkg()) && randConstructors[fn.Name()] {
				return false
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
				(fn.Name() == "Now" || fn.Name() == "Since") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
