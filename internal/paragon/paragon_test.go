package paragon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// exampleGraph reconstructs the Figures 3–6 worked example (see the
// aragon package tests for the derivation). Vertices a..j are 0..9.
func exampleGraph() *graph.Graph {
	b := graph.NewBuilder(10)
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 9},
		{1, 2}, {2, 3},
		{3, 4}, {4, 5}, {4, 6}, {5, 6},
		{7, 8}, {7, 9}, {8, 9},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func fig3() *partition.Partitioning {
	p := partition.New(3, 10)
	copy(p.Assign, []int32{2, 0, 0, 1, 1, 1, 1, 2, 2, 2})
	return p
}

func TestSelectMasterPaperExample(t *testing.T) {
	// §5 Master Node Selection: "in case of Figure 4, we should select
	// server M[2] as the master node" — index 1 in 0-based terms.
	c := topology.PaperExampleMatrix()
	if m := selectMaster(3, c); m != 1 {
		t.Fatalf("master = %d, want 1 (the paper's M[2])", m)
	}
}

func TestSelectGroupServersPaperExample(t *testing.T) {
	// §5 Group Server Selection: for the group {P1, P2, P3} under the
	// Figure 6 costs, M[2] (index 1) is optimal.
	c := topology.PaperExampleMatrix()
	ps := []int64{10, 10, 10} // equal shipping mass
	servers := SelectGroupServers([][]int32{{0, 1, 2}}, ps, c, nil, 1)
	if servers[0] != 1 {
		t.Fatalf("group server = %d, want 1", servers[0])
	}
}

func TestSelectGroupServersPenaltySpreads(t *testing.T) {
	// Two groups, all costs equal: without node info both would pick
	// cheap servers independently; with all servers on one node except
	// one, the σ(s) penalty must push the second group off the hot node.
	k := 4
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			if i != j {
				c[i][j] = 1
			}
		}
	}
	ps := []int64{100, 100, 100, 100}
	nodeOf := []int{0, 0, 0, 1}
	groups := [][]int32{{0, 1}, {2, 3}}
	servers := SelectGroupServers(groups, ps, c, nodeOf, 2)
	if nodeOf[servers[0]] == nodeOf[servers[1]] {
		t.Fatalf("both group servers on node %d: %v", nodeOf[servers[0]], servers)
	}
}

func TestRandomGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	groups := randomGrouping(10, 4, rng)
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	seen := map[int32]bool{}
	for _, g := range groups {
		if len(g) < 2 {
			t.Fatalf("group %v smaller than 2", g)
		}
		for _, pi := range g {
			if seen[pi] {
				t.Fatalf("partition %d in two groups", pi)
			}
			seen[pi] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("grouping covered %d of 10 partitions", len(seen))
	}
	// drp above k/2 is clamped.
	groups = randomGrouping(6, 100, rng)
	if len(groups) != 3 {
		t.Fatalf("clamped groups = %d, want 3", len(groups))
	}
}

func TestShuffleGroupsPreservesPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	groups := randomGrouping(12, 3, rng)
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g)
	}
	for round := 0; round < 5; round++ {
		ShuffleGroups(groups, rng, round)
	}
	seen := map[int32]bool{}
	for i, g := range groups {
		if len(g) != sizes[i] {
			t.Fatalf("group %d size changed: %d -> %d", i, sizes[i], len(g))
		}
		for _, pi := range g {
			if seen[pi] {
				t.Fatalf("partition %d duplicated after shuffles", pi)
			}
			seen[pi] = true
		}
	}
	if len(seen) != 12 {
		t.Fatalf("shuffling lost partitions: %d of 12", len(seen))
	}
}

func TestRefineWorkedExample(t *testing.T) {
	g := exampleGraph()
	p := fig3()
	c := topology.PaperExampleMatrix()
	before := partition.CommCost(g, p, c, 1)
	orig := p.Clone()
	st, err := Refine(g, p, c, Config{DRP: 1, Shuffles: 0, Alpha: 1, MaxImbalance: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := partition.CommCost(g, p, c, 1) + partition.MigrationCost(g, orig, p, c)
	if after >= before {
		t.Fatalf("objective did not improve: %v -> %v (stats %+v)", before, after, st)
	}
	if st.Moves == 0 || st.Gain <= 0 {
		t.Fatalf("no gain recorded: %+v", st)
	}
	// Migration stats must agree with the metric package.
	if st.MigrationCost != partition.MigrationCost(g, orig, p, c) {
		t.Fatalf("migration cost mismatch: %v vs %v", st.MigrationCost, partition.MigrationCost(g, orig, p, c))
	}
}

func TestRefinePairCountFormula(t *testing.T) {
	// §5 Degree of Refinement Parallelism: with n partitions and m
	// groups, one round refines n(n−m)/2m pairs (evenly divisible case).
	g := gen.ErdosRenyi(400, 1600, 3)
	for _, tc := range []struct {
		k    int32
		drp  int
		want int
	}{
		{8, 2, 12}, // 8·6/4
		{8, 4, 4},  // 8·4/8
		{8, 1, 28}, // full ARAGON: 8·7/2
	} {
		p := stream.HP(g, tc.k)
		st, err := RefineUniform(g, p, Config{DRP: tc.drp, Shuffles: 0, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if st.PairsRefined != tc.want {
			t.Fatalf("k=%d drp=%d: pairs = %d, want %d", tc.k, tc.drp, st.PairsRefined, tc.want)
		}
	}
}

func TestShufflesIncreasePairCoverage(t *testing.T) {
	g := gen.ErdosRenyi(300, 1200, 4)
	p0 := stream.HP(g, 8)
	p1 := p0.Clone()
	st0, err := RefineUniform(g, p0, Config{DRP: 4, Shuffles: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := RefineUniform(g, p1, Config{DRP: 4, Shuffles: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st1.PairsRefined <= st0.PairsRefined {
		t.Fatalf("shuffles did not expand coverage: %d vs %d", st1.PairsRefined, st0.PairsRefined)
	}
	if st1.Rounds != 7 || st0.Rounds != 1 {
		t.Fatalf("rounds = %d/%d", st0.Rounds, st1.Rounds)
	}
	if st1.LocationExchangeBytes != int64(g.NumVertices())*4*6 {
		t.Fatalf("exchange bytes = %d", st1.LocationExchangeBytes)
	}
}

func TestRefineImprovesArchAwareCost(t *testing.T) {
	// End-to-end: DG initial decomposition on a 2-node cluster, PARAGON
	// must reduce the architecture-aware communication cost (the Fig. 7b
	// "always below the initial decomposition" claim).
	cl := topology.PittCluster(2)
	k := 40
	c, err := cl.PartitionCostMatrix(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf, _ := cl.NodeOf(k)
	g := gen.RMAT(4000, 24000, 0.57, 0.19, 0.19, 6)
	g.UseDegreeWeights()
	p := stream.DG(g, int32(k), stream.DefaultOptions())
	before := partition.CommCost(g, p, c, 10)
	st, err := Refine(g, p, c, Config{DRP: 8, Shuffles: 4, Seed: 7, NodeOf: nodeOf})
	if err != nil {
		t.Fatal(err)
	}
	after := partition.CommCost(g, p, c, 10)
	if after >= before {
		t.Fatalf("comm cost not reduced: %.0f -> %.0f (%+v)", before, after, st)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("refined decomposition invalid: %v", err)
	}
	// Balance must hold.
	bound := partition.BalanceBound(g, int32(k), 0.02)
	for i, w := range p.Weights(g) {
		if w > bound {
			t.Fatalf("partition %d weight %d above bound %d", i, w, bound)
		}
	}
}

func TestRefineDeterministic(t *testing.T) {
	g := gen.Mesh2D(20, 20)
	cfg := Config{DRP: 3, Shuffles: 3, Seed: 42}
	p1 := stream.DG(g, 8, stream.DefaultOptions())
	p2 := p1.Clone()
	st1, err := RefineUniform(g, p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := RefineUniform(g, p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range p1.Assign {
		if p1.Assign[v] != p2.Assign[v] {
			t.Fatalf("nondeterministic refinement at vertex %d", v)
		}
	}
	if st1.Gain != st2.Gain || st1.Moves != st2.Moves {
		t.Fatalf("nondeterministic stats: %+v vs %+v", st1, st2)
	}
}

func TestDRP1MatchesSinglePairSemantics(t *testing.T) {
	// DRP=1 means one group holding all partitions: PARAGON degenerates
	// to ARAGON (§5). All pairs must be refined in round one.
	g := gen.ErdosRenyi(200, 800, 8)
	p := stream.HP(g, 6)
	st, err := RefineUniform(g, p, Config{DRP: 1, Shuffles: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PairsRefined != 15 {
		t.Fatalf("pairs = %d, want C(6,2)=15", st.PairsRefined)
	}
	if st.DRP != 1 {
		t.Fatalf("effective drp = %d", st.DRP)
	}
}

func TestKHopExpandsShippedSet(t *testing.T) {
	g := gen.Mesh2D(16, 16)
	p0 := stream.DG(g, 4, stream.DefaultOptions())
	p1 := p0.Clone()
	st0, err := RefineUniform(g, p0, Config{DRP: 2, Shuffles: 0, Seed: 2, KHop: 0})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := RefineUniform(g, p1, Config{DRP: 2, Shuffles: 0, Seed: 2, KHop: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st1.BoundaryShipped <= st0.BoundaryShipped {
		t.Fatalf("k-hop=2 shipped %d, k-hop=0 shipped %d — expansion missing",
			st1.BoundaryShipped, st0.BoundaryShipped)
	}
}

func TestRefineErrors(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 1)
	bad := partition.New(4, 5)
	if _, err := Refine(g, bad, topology.UniformMatrix(4), Config{}); err == nil {
		t.Fatal("expected validation error")
	}
	p := stream.HP(g, 4)
	if _, err := Refine(g, p, topology.UniformMatrix(2), Config{}); err == nil {
		t.Fatal("expected matrix-size error")
	}
	if _, err := Refine(g, p, topology.UniformMatrix(4), Config{NodeOf: []int{0}}); err == nil {
		t.Fatal("expected NodeOf-size error")
	}
}

func TestRefineSinglePartitionNoop(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 1)
	p := partition.New(1, g.NumVertices())
	st, err := Refine(g, p, topology.UniformMatrix(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves != 0 || st.PairsRefined != 0 {
		t.Fatalf("k=1 refinement did something: %+v", st)
	}
}

func TestUniformVariantIgnoresTopology(t *testing.T) {
	// UNIPARAGON still reduces edge cut even though it cannot see hops.
	g := gen.Mesh2D(20, 20)
	p := stream.HP(g, 8)
	before := partition.EdgeCut(g, p)
	if _, err := RefineUniform(g, p, Config{DRP: 4, Shuffles: 2, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if after := partition.EdgeCut(g, p); after >= before {
		t.Fatalf("UNIPARAGON did not cut edges: %d -> %d", before, after)
	}
}

func TestGroupMovesAreDisjoint(t *testing.T) {
	// Structural invariant behind the parallel exchange: a vertex is
	// moved by at most one group per round, because candidate membership
	// is determined by the snapshot. Detectable as: after refinement,
	// every vertex is in a valid partition and loads reconcile.
	g := gen.RMAT(1500, 9000, 0.57, 0.19, 0.19, 11)
	g.UseDegreeWeights()
	p := stream.DG(g, 12, stream.DefaultOptions())
	if _, err := RefineUniform(g, p, Config{DRP: 6, Shuffles: 5, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, w := range p.Weights(g) {
		total += w
	}
	if total != g.TotalVertexWeight() {
		t.Fatal("weight not conserved across parallel rounds")
	}
}

func TestStatsVolumeAccounting(t *testing.T) {
	g := gen.Mesh2D(12, 12)
	p := stream.DG(g, 4, stream.DefaultOptions())
	st, err := RefineUniform(g, p, Config{DRP: 2, Shuffles: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundaryShipped <= 0 || st.ShippedEdgeVolume < st.BoundaryShipped {
		t.Fatalf("implausible shipping stats: %+v", st)
	}
	if st.ExchangeRegions != 1 {
		t.Fatalf("regions = %d, want 1 for a small graph", st.ExchangeRegions)
	}
	if len(st.GroupServers) != st.Rounds {
		t.Fatalf("group servers recorded for %d rounds, want %d", len(st.GroupServers), st.Rounds)
	}
}

func TestRegionChunking(t *testing.T) {
	g := gen.ErdosRenyi(1000, 3000, 9)
	p := stream.HP(g, 4)
	st, err := RefineUniform(g, p, Config{DRP: 2, Shuffles: 2, Seed: 5, RegionSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	if st.ExchangeRegions != 4 { // ceil(1000/300)
		t.Fatalf("regions = %d, want 4", st.ExchangeRegions)
	}
}

// Property: Refine preserves decomposition validity, weight conservation,
// and never worsens the comm+migration objective, across random graphs,
// k, drp, and shuffle counts.
func TestQuickRefineInvariants(t *testing.T) {
	f := func(seed int64, kRaw, drpRaw, shRaw uint8) bool {
		k := int32(kRaw%10) + 2
		drp := int(drpRaw%5) + 1
		sh := int(shRaw % 4)
		g := gen.ErdosRenyi(200, 700, seed)
		g.UseDegreeWeights()
		p := stream.LDG(g, k, stream.DefaultOptions())
		orig := p.Clone()
		cl := topology.GordonCluster(4)
		c := make([][]float64, k)
		for i := range c {
			c[i] = make([]float64, k)
			for j := range c[i] {
				c[i][j] = cl.Cost(int(i)*5%cl.TotalCores(), int(j)*5%cl.TotalCores())
			}
		}
		before := partition.CommCost(g, p, c, 10)
		st, err := Refine(g, p, c, Config{DRP: drp, Shuffles: sh, Seed: seed})
		if err != nil {
			t.Logf("refine error: %v", err)
			return false
		}
		if err := p.Validate(g); err != nil {
			return false
		}
		after := partition.CommCost(g, p, c, 10) + partition.MigrationCost(g, orig, p, c)
		if after > before+1e-6 {
			t.Logf("objective rose %v -> %v (%+v)", before, after, st)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundGainsRecorded(t *testing.T) {
	g := gen.Mesh2D(16, 16)
	p := stream.HP(g, 6)
	st, err := RefineUniform(g, p, Config{DRP: 3, Shuffles: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.RoundGains) != st.Rounds {
		t.Fatalf("round gains for %d of %d rounds", len(st.RoundGains), st.Rounds)
	}
	var sum float64
	for _, rg := range st.RoundGains {
		if rg < 0 {
			t.Fatalf("negative round gain %v", rg)
		}
		sum += rg
	}
	if sum != st.Gain {
		t.Fatalf("round gains sum %v != total %v", sum, st.Gain)
	}
}
