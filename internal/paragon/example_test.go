package paragon_test

import (
	"fmt"

	"paragon/internal/graph"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/topology"
)

// Example refines the paper's Figures 3–6 worked example: the graph
// starts in the "old" decomposition of Figure 3 and PARAGON improves it
// against the nonuniform cost matrix of Figure 6.
func Example() {
	// The ten-vertex example graph (a..j = 0..9).
	b := graph.NewBuilder(10)
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 9}, {1, 2}, {2, 3},
		{3, 4}, {4, 5}, {4, 6}, {5, 6}, {7, 8}, {7, 9}, {8, 9},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()

	// Figure 3: P1={b,c}, P2={d,e,f,g}, P3={a,h,i,j}.
	p := partition.New(3, 10)
	copy(p.Assign, []int32{2, 0, 0, 1, 1, 1, 1, 2, 2, 2})

	c := topology.PaperExampleMatrix() // c(P1,P3)=6, others 1
	before := partition.CommCost(g, p, c, 1)

	_, err := paragon.Refine(g, p, c, paragon.Config{
		DRP: 1, Shuffles: 0, Alpha: 1, MaxImbalance: 0.5, Seed: 2,
	})
	if err != nil {
		fmt.Println("refine:", err)
		return
	}
	after := partition.CommCost(g, p, c, 1)
	fmt.Printf("comm cost %.0f -> %.0f\n", before, after)
	// Output:
	// comm cost 14 -> 3
}
