// Package sharedwritehits violates the parallel-commit contract: the
// spawned workers write captured state that is neither a per-worker
// arena slot nor a guarded commutative counter.
package sharedwritehits

import "sync"

// Fan fans out over workers that write shared state directly.
func Fan(vals []float64, n int) float64 {
	out := make([]float64, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0.0
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[0] = vals[w]  // fixed index: every worker writes slot 0
			total += vals[w]  // unguarded captured accumulator
			mu.Lock()
			total += vals[w] // guarded, but float: completion order still leaks
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return total + out[0]
}
