package stream

import (
	"math/rand"

	"paragon/internal/graph"
)

// Order is the sequence in which vertices arrive at a streaming
// partitioner. Stanton & Kliot showed (and §7.1 of the PARAGON paper
// re-observed) that streaming quality depends on arrival order; the
// common orders are provided for experimentation.
type Order int

const (
	// OrderNatural streams vertices by ascending id — how a stored edge
	// list replays (the evaluation default).
	OrderNatural Order = iota
	// OrderRandom streams a seeded random permutation.
	OrderRandom
	// OrderBFS streams in breadth-first order from a seeded start,
	// restarting per component.
	OrderBFS
	// OrderDFS streams in depth-first order from a seeded start,
	// restarting per component.
	OrderDFS
)

func (o Order) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderRandom:
		return "random"
	case OrderBFS:
		return "bfs"
	case OrderDFS:
		return "dfs"
	default:
		return "unknown"
	}
}

// streamOrder materializes the arrival sequence for a graph.
func streamOrder(g *graph.Graph, o Order, seed int64) []int32 {
	n := g.NumVertices()
	out := make([]int32, n)
	switch o {
	case OrderRandom:
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(int(n))
		for i, v := range perm {
			out[i] = int32(v)
		}
	case OrderBFS:
		return traversalOrder(g, seed, false)
	case OrderDFS:
		return traversalOrder(g, seed, true)
	default:
		for i := range out {
			out[i] = int32(i)
		}
	}
	return out
}

// traversalOrder produces a BFS (dfs=false) or DFS (dfs=true) arrival
// order covering all components, starting each component at its
// lowest-id unvisited vertex after a seeded random first start.
func traversalOrder(g *graph.Graph, seed int64, dfs bool) []int32 {
	n := g.NumVertices()
	out := make([]int32, 0, n)
	visited := make([]bool, n)
	var frontier []int32
	push := func(v int32) {
		if !visited[v] {
			visited[v] = true
			frontier = append(frontier, v)
		}
	}
	start := int32(0)
	if n > 0 {
		rng := rand.New(rand.NewSource(seed))
		start = int32(rng.Intn(int(n)))
	}
	next := func() (int32, bool) {
		if len(frontier) == 0 {
			return 0, false
		}
		var v int32
		if dfs {
			v = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		} else {
			v = frontier[0]
			frontier = frontier[1:]
		}
		return v, true
	}
	push(start)
	for scan := int32(0); ; {
		v, ok := next()
		if !ok {
			// Restart on the next unvisited vertex.
			for scan < n && visited[scan] {
				scan++
			}
			if scan >= n {
				break
			}
			push(scan)
			continue
		}
		out = append(out, v)
		for _, u := range g.Neighbors(v) {
			push(u)
		}
	}
	return out
}
