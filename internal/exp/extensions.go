package exp

import (
	"fmt"
	"time"

	"paragon/internal/apps"
	"paragon/internal/bsp"
	"paragon/internal/exchange"
	"paragon/internal/gas"
	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
	"paragon/internal/vertexcut"
)

// Extension experiments beyond the paper's own tables: the §8
// related-work directions the paper points at (vertex-cut partitioning)
// and the §5 implementation comparison it describes in prose (the
// distributed data directory vs the region-chunked location exchange).

// VertexCutComparison compares edge-cut and vertex-cut partitioning on a
// power-law graph: replication factor, balance, and architecture-aware
// synchronization cost of the replicas.
func VertexCutComparison(scale float64) *Table {
	env := microEnv()
	g := comLJ(scale)
	k := int32(env.K)
	c := env.PlainMatrix()
	tab := &Table{
		ID:     "vertexcut",
		Title:  "Vertex-cut partitioners on the com-lj stand-in (extension of §8)",
		Header: []string{"method", "replication_factor", "edge_imbalance", "arch_sync_cost"},
		Notes:  "HDRF/Greedy cut hubs, shrinking replicas vs random edge hashing",
	}
	for _, m := range []struct {
		name string
		run  func() *vertexcut.Assignment
	}{
		{"random", func() *vertexcut.Assignment { return vertexcut.Random(g, k) }},
		{"greedy", func() *vertexcut.Assignment { return vertexcut.Greedy(g, k) }},
		{"hdrf", func() *vertexcut.Assignment { return vertexcut.HDRF(g, k, 2) }},
	} {
		a := m.run()
		tab.Rows = append(tab.Rows, []string{
			m.name,
			f2(a.ReplicationFactor()),
			f2(a.LoadImbalance()),
			f0(vertexcut.SyncCost(a, c)),
		})
	}
	return tab
}

// ExchangeComparison times and measures both §5 location-propagation
// strategies on a refinement-shaped workload, reproducing the paper's
// finding that the directory approach is "very inefficient for really
// big graphs" while the region exchange stays O(|V|).
func ExchangeComparison(scale float64) *Table {
	g := comLJ(scale)
	p := stream.DG(g, 16, stream.DefaultOptions())
	nServers := 8
	mkServers := func() []*exchange.Server {
		servers := make([]*exchange.Server, nServers)
		bv := partition.BoundaryVertices(g, p)
		for i := range servers {
			s := &exchange.Server{
				ID:        i,
				Locations: append([]int32(nil), p.Assign...),
				Updates:   map[int32]int32{},
			}
			// Each server owns partitions 2i, 2i+1 and moves its
			// boundary vertices between them (the shuffle-refinement
			// update pattern).
			for _, v := range bv[i*2] {
				s.Updates[v] = int32(i*2 + 1)
			}
			// Needs: the neighbors of its vertices.
			for v := int32(0); v < g.NumVertices(); v++ {
				pv := p.Assign[v]
				if pv == int32(i*2) || pv == int32(i*2+1) {
					s.Needs = append(s.Needs, g.Neighbors(v)...)
				}
			}
			servers[i] = s
		}
		return servers
	}
	tab := &Table{
		ID:     "exchange",
		Title:  "Shuffle location-exchange strategies (§5 implementation study)",
		Header: []string{"strategy", "volume_KB", "time"},
		Notes:  "paper: the directory needs O(|V|+|E|) traffic, the region exchange O(|V|)",
	}
	// Ground truth after all updates.
	truth := append([]int32(nil), p.Assign...)
	for _, s := range mkServers() {
		for v, loc := range s.Updates {
			truth[v] = loc
		}
	}
	for _, s := range []exchange.Strategy{exchange.Directory{}, exchange.Region{}} {
		servers := mkServers()
		start := time.Now()
		vol, err := s.Propagate(servers)
		if err != nil {
			panic(fmt.Sprintf("exp: exchange: %v", err))
		}
		// The region exchange refreshes everything; the directory only
		// guarantees freshness for the vertices a server pulled — check
		// each strategy at its own contract.
		if _, isRegion := s.(exchange.Region); isRegion {
			if !exchange.Consistent(servers) {
				panic("exp: region exchange left views inconsistent")
			}
		}
		for _, sv := range servers {
			for _, v := range sv.Needs {
				if sv.Locations[v] != truth[v] {
					panic(fmt.Sprintf("exp: %s left server %d stale on needed vertex %d", s.Name(), sv.ID, v))
				}
			}
		}
		tab.Rows = append(tab.Rows, []string{s.Name(), f0(float64(vol) / 1024), secs(time.Since(start))})
	}
	return tab
}

// EdgeCutVsVertexCut runs the same computation — min-label connected
// components — under both execution models on a power-law graph: the
// Pregel/BSP engine over edge-cut decompositions and the
// PowerGraph-style GAS engine over vertex-cut assignments. It extends
// §8's observation that vertex-cut systems face the same communication
// heterogeneity: replica placement determines how much sync traffic
// crosses expensive links.
func EdgeCutVsVertexCut(scale float64) *Table {
	d, err := gen.DatasetByName("YouTube")
	if err != nil {
		panic(err)
	}
	g := d.Build(scale)
	g.UseDegreeWeights()
	cl := topology.PittCluster(2)
	k := int32(cl.TotalCores())
	tab := &Table{
		ID:     "cutmodels",
		Title:  "Connected components: edge-cut BSP vs vertex-cut GAS (YouTube stand-in)",
		Header: []string{"model", "partitioner", "total_volume_KB", "inter_node_KB", "JET"},
		Notes:  "vertex-cut trades replicas for locality on power-law graphs (§8)",
	}
	// Edge-cut rows.
	for _, pr := range []struct {
		name string
		p    *partition.Partitioning
	}{
		{"HP", stream.HP(g, k)},
		{"DG", stream.DG(g, k, stream.DefaultOptions())},
	} {
		e, err := bsp.NewEngine(g, pr.p, cl, bsp.Options{})
		if err != nil {
			panic(err)
		}
		_, res, err := apps.WCC(e, g)
		if err != nil {
			panic(err)
		}
		tab.Rows = append(tab.Rows, []string{
			"BSP/edge-cut", pr.name,
			f0(float64(res.Volume.Total()) / 1024),
			f0(float64(res.Volume.InterNode) / 1024),
			f0(res.JET),
		})
	}
	// Vertex-cut rows.
	for _, vr := range []struct {
		name string
		a    *vertexcut.Assignment
	}{
		{"random", vertexcut.Random(g, k)},
		{"HDRF", vertexcut.HDRF(g, k, 2)},
	} {
		e, err := gas.NewEngine(g, vr.a, cl, gas.Options{})
		if err != nil {
			panic(err)
		}
		res, err := gas.Components(e, g)
		if err != nil {
			panic(err)
		}
		tab.Rows = append(tab.Rows, []string{
			"GAS/vertex-cut", vr.name,
			f0(float64(res.Volume.Total()) / 1024),
			f0(float64(res.Volume.InterNode) / 1024),
			f0(res.JET),
		})
	}
	return tab
}

// StreamOrderStudy quantifies the §7.1 remark that streaming quality
// depends on arrival order: DG and LDG cut quality across the four
// stream orders, plus Fennel as an additional baseline.
func StreamOrderStudy(scale float64) *Table {
	env := microEnv()
	c := env.PlainMatrix()
	d, err := gen.DatasetByName("YouTube")
	if err != nil {
		panic(err)
	}
	g := d.Build(scale)
	g.UseDegreeWeights()
	k := int32(env.K)
	tab := &Table{
		ID:     "streamorder",
		Title:  "Streaming partitioner quality vs arrival order (YouTube stand-in)",
		Header: []string{"partitioner", "order", "comm_cost", "skew"},
		Notes:  "the paper observed DG beating LDG under its natural replay order",
	}
	for _, ord := range []stream.Order{stream.OrderNatural, stream.OrderRandom, stream.OrderBFS, stream.OrderDFS} {
		opts := stream.Options{Eps: 0.02, Order: ord, Seed: 7}
		for _, pr := range []struct {
			name string
			run  func() *partition.Partitioning
		}{
			{"DG", func() *partition.Partitioning { return stream.DG(g, k, opts) }},
			{"LDG", func() *partition.Partitioning { return stream.LDG(g, k, opts) }},
			{"Fennel", func() *partition.Partitioning { return stream.Fennel(g, k, opts) }},
		} {
			p := pr.run()
			tab.Rows = append(tab.Rows, []string{
				pr.name, ord.String(),
				f0(partition.CommCost(g, p, c, env.Alpha)),
				f2(partition.Skewness(g, p)),
			})
		}
	}
	return tab
}
