package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOverlayAddRemove(t *testing.T) {
	g := buildPath(4) // 0-1-2-3
	o := NewOverlay(g)
	if o.NumEdges() != 3 {
		t.Fatalf("initial edges = %d", o.NumEdges())
	}
	if err := o.AddEdge(0, 3, 5); err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(0, 3) || o.EdgeWeightBetween(3, 0) != 5 {
		t.Fatal("added edge missing")
	}
	if o.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", o.NumEdges())
	}
	if o.Degree(0) != 2 || o.Degree(3) != 2 {
		t.Fatalf("degrees %d %d", o.Degree(0), o.Degree(3))
	}
	o.RemoveEdge(1, 2) // base edge
	if o.HasEdge(1, 2) || o.EdgeWeightBetween(1, 2) != 0 {
		t.Fatal("removed base edge still visible")
	}
	if o.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", o.NumEdges())
	}
	o.RemoveEdge(0, 3) // added edge
	if o.HasEdge(0, 3) {
		t.Fatal("removed added edge still visible")
	}
	// Removing a non-edge is a no-op.
	o.RemoveEdge(0, 2)
	if o.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", o.NumEdges())
	}
}

func TestOverlayReAddBaseEdge(t *testing.T) {
	g := buildPath(3)
	o := NewOverlay(g)
	o.RemoveEdge(0, 1)
	if err := o.AddEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if o.EdgeWeightBetween(0, 1) != 7 {
		t.Fatalf("re-added weight = %d", o.EdgeWeightBetween(0, 1))
	}
	// Overwriting a base edge's weight shadows it.
	if err := o.AddEdge(1, 2, 9); err != nil {
		t.Fatal(err)
	}
	if o.EdgeWeightBetween(1, 2) != 9 {
		t.Fatal("weight overwrite failed")
	}
	if o.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", o.NumEdges())
	}
	// Adding with the identical base weight is a no-op overlay-wise.
	o2 := NewOverlay(g)
	if err := o2.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if o2.PendingChanges() != 0 {
		t.Fatalf("identical re-add left %d pending changes", o2.PendingChanges())
	}
}

func TestOverlayErrors(t *testing.T) {
	g := buildPath(3)
	o := NewOverlay(g)
	if err := o.AddEdge(0, 9, 1); err == nil {
		t.Fatal("expected range error")
	}
	if err := o.AddEdge(1, 1, 1); err == nil {
		t.Fatal("expected self-loop error")
	}
	if err := o.AddEdge(0, 2, 0); err == nil {
		t.Fatal("expected weight error")
	}
}

func TestOverlayForEachNeighbor(t *testing.T) {
	g := buildPath(4)
	o := NewOverlay(g)
	o.AddEdge(1, 3, 2)
	o.RemoveEdge(1, 0)
	seen := map[int32]int32{}
	o.ForEachNeighbor(1, func(u, w int32) { seen[u] = w })
	if len(seen) != 2 || seen[2] != 1 || seen[3] != 2 {
		t.Fatalf("neighbors of 1 = %v", seen)
	}
}

func TestOverlayMaterialize(t *testing.T) {
	g := buildPaperGraph()
	g.UseDegreeWeights()
	o := NewOverlay(g)
	o.AddEdge(0, 4, 3)
	o.RemoveEdge(7, 8)
	m := o.Materialize()
	if err := m.Validate(); err != nil {
		t.Fatalf("materialized invalid: %v", err)
	}
	if m.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d (one added, one removed)", m.NumEdges(), g.NumEdges())
	}
	if m.EdgeWeightBetween(0, 4) != 3 {
		t.Fatal("added edge lost in materialization")
	}
	if m.HasEdge(7, 8) {
		t.Fatal("removed edge survived materialization")
	}
	// Vertex attributes carried over.
	for v := int32(0); v < g.NumVertices(); v++ {
		if m.VertexWeight(v) != g.VertexWeight(v) || m.VertexSize(v) != g.VertexSize(v) {
			t.Fatalf("vertex %d attrs lost", v)
		}
	}
}

func TestOverlayAddedEdgesAndPending(t *testing.T) {
	g := buildPath(5)
	o := NewOverlay(g)
	o.AddEdge(0, 4, 1)
	o.AddEdge(1, 3, 1)
	added := o.AddedEdges()
	if len(added) != 2 || added[0] != [2]int32{0, 4} || added[1] != [2]int32{1, 3} {
		t.Fatalf("added = %v", added)
	}
	if o.PendingChanges() != 4 { // two half-edge entries per added edge
		t.Fatalf("pending = %d", o.PendingChanges())
	}
}

// Property: a random mutation sequence applied to an overlay and then
// materialized equals applying the same final edge set to a builder.
func TestQuickOverlayMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := buildPath(20)
		o := NewOverlay(base)
		// Reference edge set: start from the base.
		ref := map[edgeKey]int32{}
		for v := int32(0); v < 19; v++ {
			ref[canonKey(v, v+1)] = 1
		}
		for i := 0; i < 60; i++ {
			u := int32(rng.Intn(20))
			v := int32(rng.Intn(20))
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				o.RemoveEdge(u, v)
				delete(ref, canonKey(u, v))
			} else {
				w := int32(rng.Intn(5) + 1)
				if o.AddEdge(u, v, w) == nil {
					ref[canonKey(u, v)] = w
				}
			}
		}
		m := o.Materialize()
		if m.Validate() != nil {
			return false
		}
		if m.NumEdges() != int64(len(ref)) {
			return false
		}
		for key, w := range ref {
			if m.EdgeWeightBetween(key.a, key.b) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
