package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Get-or-create accessors are safe for
// concurrent use and idempotent: the first registration of a name fixes
// its type, help string, and (for histograms) bucket bounds; later calls
// return the same instance. Exposition iterates names in sorted order,
// so the output is independent of registration order.
//
// Metric naming convention: <phase>_<quantity>[_total], where the phase
// prefix (refine, ship, exchange, migrate, fault) is what groups the
// human summary table (WriteSummary) into the per-phase breakdown.
type Registry struct {
	mu     sync.Mutex
	byName map[string]metric
}

// metric is the exposition surface every concrete type implements.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string // "counter", "gauge", "histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// Counter is a monotonically increasing int64. Add is an atomic
// operation: integer addition is associative, so concurrent increments
// from worker goroutines reach the same total in any interleaving.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add increments the counter by n (negative n is ignored — counters are
// monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }

// Gauge is a float64 point-in-time value. Set must be called from
// coordinator (deterministically sequenced) call sites with
// deterministically computed values: float stores are not accumulative,
// so there is no order-free concurrent update discipline for gauges.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }

// Histogram is a fixed-bucket distribution of int64 observations.
// Bounds are upper-inclusive (Prometheus "le" semantics) and fixed at
// registration, so bucket counts — like counters — are associative
// atomic adds and any interleaving of Observe calls yields identical
// exposition. The sum is an int64 for the same reason: float
// accumulation would make the total depend on observation order.
type Histogram struct {
	name, help string
	bounds     []int64 // ascending; implicit +Inf bucket at the end
	buckets    []atomic.Int64
	count      atomic.Int64
	sum        atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }

// Counter returns the counter registered under name, creating it with
// help on first use. A nil registry returns nil (and nil metrics accept
// all operations as no-ops), so call sites need no double guards.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, isC := m.(*Counter)
		if !isC {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, m.metricType()))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.byName[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it with help
// on first use. A nil registry returns nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, isG := m.(*Gauge)
		if !isG {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, m.metricType()))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.byName[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with help and the given ascending bucket bounds on first use. A nil
// registry returns nil. Bounds must be strictly ascending and non-empty;
// an implicit +Inf bucket is always appended.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, isH := m.(*Histogram)
		if !isH {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, m.metricType()))
		}
		return h
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.byName[name] = h
	return h
}

// names returns all registered metric names in sorted order.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PowersOfTwoBounds returns the canonical histogram bounds
// 0, 1, 2, 4, …, 2^maxExp — the fixed bucket layout the pipeline's
// count/byte distributions use.
func PowersOfTwoBounds(maxExp int) []int64 {
	if maxExp < 0 {
		maxExp = 0
	}
	out := make([]int64, 0, maxExp+2)
	out = append(out, 0)
	for e := 0; e <= maxExp; e++ {
		out = append(out, int64(1)<<e)
	}
	return out
}
