package topology

import "fmt"

// Additional interconnects beyond the paper's two platforms. The paper's
// argument — communication cost varies with topology distance and jobs
// should be placed topology-aware — applies to every modern HPC fabric;
// these models let users reproduce the experiments on fat-tree and
// dragonfly clusters.

// FatTree is a three-level fat-tree (leaf/aggregation/core): nodes hang
// off leaf switches, leaves group into pods, pods join through the core.
// Hop counts: same leaf = 1, same pod = 3 (leaf-agg-leaf), cross pod = 5
// (leaf-agg-core-agg-leaf).
type FatTree struct {
	NodesPerLeaf int
	LeavesPerPod int
	Pods         int
}

// Hops implements Interconnect.
func (f FatTree) Hops(a, b int) int {
	if a == b {
		return 0
	}
	leafA, leafB := a/f.NodesPerLeaf, b/f.NodesPerLeaf
	if leafA == leafB {
		return 1
	}
	podA, podB := leafA/f.LeavesPerPod, leafB/f.LeavesPerPod
	if podA == podB {
		return 3
	}
	return 5
}

// MaxHops implements Interconnect.
func (f FatTree) MaxHops() int {
	if f.Pods > 1 {
		return 5
	}
	if f.LeavesPerPod > 1 {
		return 3
	}
	return 1
}

// Name implements Interconnect.
func (f FatTree) Name() string {
	return fmt.Sprintf("fat-tree (%d pods × %d leaves × %d nodes)", f.Pods, f.LeavesPerPod, f.NodesPerLeaf)
}

// Dragonfly is a two-tier dragonfly: nodes attach to routers, routers
// form fully-connected groups, groups join by global links. Hop counts:
// same router = 1, same group = 2 (router-router), cross group = 4
// (router-global-router, counting the global link as two).
type Dragonfly struct {
	NodesPerRouter  int
	RoutersPerGroup int
	Groups          int
}

// Hops implements Interconnect.
func (d Dragonfly) Hops(a, b int) int {
	if a == b {
		return 0
	}
	rA, rB := a/d.NodesPerRouter, b/d.NodesPerRouter
	if rA == rB {
		return 1
	}
	gA, gB := rA/d.RoutersPerGroup, rB/d.RoutersPerGroup
	if gA == gB {
		return 2
	}
	return 4
}

// MaxHops implements Interconnect.
func (d Dragonfly) MaxHops() int {
	if d.Groups > 1 {
		return 4
	}
	if d.RoutersPerGroup > 1 {
		return 2
	}
	return 1
}

// Name implements Interconnect.
func (d Dragonfly) Name() string {
	return fmt.Sprintf("dragonfly (%d groups × %d routers × %d nodes)", d.Groups, d.RoutersPerGroup, d.NodesPerRouter)
}

// FatTreeCluster builds a NUMA cluster (2×10-core nodes) on a fat-tree
// fabric, for experiments beyond the paper's two platforms.
func FatTreeCluster(pods, leavesPerPod, nodesPerLeaf int) *Cluster {
	n := pods * leavesPerPod * nodesPerLeaf
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{Sockets: 2, CoresPerSocket: 10, Arch: NUMA, L2GroupSize: 1}
	}
	c, err := NewCluster("fat-tree", specs, FatTree{NodesPerLeaf: nodesPerLeaf, LeavesPerPod: leavesPerPod, Pods: pods}, DefaultLatency())
	if err != nil {
		panic(fmt.Sprintf("topology: FatTreeCluster preset invalid: %v", err))
	}
	return c
}

// DragonflyCluster builds a NUMA cluster on a dragonfly fabric.
func DragonflyCluster(groups, routersPerGroup, nodesPerRouter int) *Cluster {
	n := groups * routersPerGroup * nodesPerRouter
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{Sockets: 2, CoresPerSocket: 10, Arch: NUMA, L2GroupSize: 1}
	}
	c, err := NewCluster("dragonfly", specs, Dragonfly{NodesPerRouter: nodesPerRouter, RoutersPerGroup: routersPerGroup, Groups: groups}, DefaultLatency())
	if err != nil {
		panic(fmt.Sprintf("topology: DragonflyCluster preset invalid: %v", err))
	}
	return c
}
