// Package fixture shows order-deterministic accumulation; nothing here
// may be reported (by floatsum).
package fixture

import "sort"

// The bitmap-drain idiom: collect keys, sort, then accumulate in a
// fixed order.
func sortedDrain(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// Integer accumulation is exact; order cannot matter.
func intAccum(m map[int]int64) int64 {
	var n int64
	for _, v := range m {
		n += v
	}
	return n
}

// Slice iteration has a fixed order; no diagnostic.
func sliceSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// A tolerated drift, silenced with a reason.
func tolerated(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:ignore floatsum,maprange diagnostic-only aggregate; ULP drift is acceptable
		sum += v
	}
	return sum
}
