package portfolio

import (
	"paragon/internal/graph"
	"paragon/internal/partition"
)

// combine overlays the two best decompositions and re-refines only where
// they disagree. Starting from the better member a, the disagreement set
// D = {v : a[v] != b[v]} is expanded one hop (the frontier machinery of
// §5 — b's dissenting moves are only worth re-judging together with
// their immediate neighborhoods) into a movable-vertex mask, and the
// partitions touched by D are re-refined pairwise, ascending, for at
// most `rounds` boundary-restricted rounds with early exit once no move
// is kept.
//
// Every kept prefix has strictly positive Eq. 5 gain, so the overlay
// never scores worse than a under the partition.Score total order up to
// float re-association; the caller compares the recomputed scores and
// keeps a when the overlay fails to strictly improve. Deterministic
// because it is serial: a fixed traversal of a fixed schedule on the
// coordinator.
func (scr *memberScratch) combine(a, b, base []int32, c [][]float64, par memberParams, rounds int) (score partition.Score, diff, moves int, gain float64) {
	copy(scr.p.Assign, a)
	scr.ix.Rebuild()
	scr.reloadWeights()

	for i := range scr.inPart {
		scr.inPart[i] = false
	}
	scr.boundary = scr.boundary[:0]
	for v := int32(0); v < scr.g.NumVertices(); v++ {
		if a[v] != b[v] {
			scr.boundary = append(scr.boundary, v)
			scr.inPart[a[v]] = true
			scr.inPart[b[v]] = true
		}
	}
	diff = len(scr.boundary)
	score = partition.ComputeScoreInto(scr.g, scr.p, base, c, par.alpha, scr.wbuf)
	if diff == 0 {
		return score, diff, 0, 0
	}

	scr.frontier = graph.ExpandFrontier(scr.g, scr.boundary, 1, scr.frontier[:0])
	scr.mask.ClearAll()
	for _, v := range scr.frontier {
		scr.mask.Set(v)
	}
	scr.parts = scr.parts[:0]
	for q := int32(0); q < scr.p.K; q++ {
		if scr.inPart[q] {
			scr.parts = append(scr.parts, q)
		}
	}

	for r := 0; r < rounds; r++ {
		roundMoves := 0
		for i := 0; i < len(scr.parts); i++ {
			for j := i + 1; j < len(scr.parts); j++ {
				res := scr.ref.RefinePair(base, scr.parts[i], scr.parts[j], c, scr.loads, par.maxLoad, scr.mask)
				roundMoves += res.Moves
				gain += res.Gain
			}
		}
		moves += roundMoves
		if roundMoves == 0 {
			break
		}
	}
	if moves > 0 {
		score = partition.ComputeScoreInto(scr.g, scr.p, base, c, par.alpha, scr.wbuf)
	}
	return score, diff, moves, gain
}
