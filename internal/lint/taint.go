package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Taint is the interprocedural nondeterminism checker (DESIGN.md §15).
// The per-function checkers (wallclock, globalrand, maprange) judge a
// source site syntactically; Taint judges it structurally: a
// nondeterminism source — a wall-clock read, an ambient-rand draw, or a
// map-iteration-order-sensitive loop — anywhere in the call-graph
// closure of the kernel entry surface poisons every seeded run that
// reaches it, no matter which helper package it hides in. The taint
// lattice is the simplest one that works: a function is tainted iff it
// is a source or (transitively) calls one, and a finding is a source
// that is both unaudited and reachable from a kernel root.
//
// Audited escapes do not seed taint: a source site carrying a reasoned
// //lint:ignore directive for its base checker (wallclock, globalrand,
// maprange) or for taint itself is an escape the repo has already
// justified — e.g. the Stats.Elapsed stopwatches at the driver boundary
// — and propagating it would force a cascade of suppressions up the call
// chain. The staleignore checker keeps those directives honest.
//
// Findings are positioned where they are fixable: at the source site
// when the source's package is part of the checked set, otherwise at the
// last call site inside a checked package on the path to it (the
// frontier — used by fixtures that import helper packages). Every
// message carries the shortest root→source call path, so the diagnostic
// explains how nondeterminism enters the kernel, not just where it
// lives.
type Taint struct {
	graph *CallGraph
	diags map[string][]Diagnostic // keyed by package path
}

func (*Taint) Name() string { return "taint" }
func (*Taint) Doc() string {
	return "nondeterminism sources must not be reachable from kernel entry points (interprocedural)"
}

// taintSource is one direct nondeterminism site inside a function body.
type taintSource struct {
	node *CallNode
	pos  token.Pos
	base string // the syntactic checker owning this source kind
	desc string
}

// NewTaint builds the analysis. graph and analysisPkgs span the whole
// analysis set (checked packages plus their loaded module-internal
// imports); checkPkgs are the packages the runner will actually check —
// diagnostics are only attributed to those. roots is the kernel entry
// surface (see CallGraph.ExportedRoots).
func NewTaint(graph *CallGraph, roots []*CallNode, checkPkgs, analysisPkgs []*Package) *Taint {
	t := &Taint{graph: graph, diags: map[string][]Diagnostic{}}
	if graph == nil {
		return t
	}
	checked := map[string]bool{}
	for _, p := range checkPkgs {
		checked[p.Path] = true
	}

	// Suppression state of the whole analysis set: a source under a
	// reasoned directive for its base checker (or all) is an audited
	// escape and seeds nothing. Directives naming taint itself are NOT
	// consulted here — those suppress the taint diagnostic in the runner,
	// which also marks them used for the staleignore sweep.
	ignores := map[string]*ignoreSet{}
	for _, p := range analysisPkgs {
		ignores[p.Path] = collectIgnores(p, map[string]bool{
			"wallclock": true, "globalrand": true, "maprange": true,
		})
	}

	reached, parent := graph.Reach(roots)
	sources := collectTaintSources(graph)
	for _, s := range sources {
		if !reached[s.node] {
			continue
		}
		pkg := s.node.Pkg
		pos := pkg.Fset.Position(s.pos)
		if ig := ignores[pkg.Path]; ig != nil && ig.suppresses(s.base, pos) {
			continue
		}
		path := PathTo(parent, s.node)
		if checked[pkg.Path] {
			t.diags[pkg.Path] = append(t.diags[pkg.Path], diag(pkg, s.pos, "taint",
				"%s is reachable from a kernel entry point (%s)", s.desc, path))
			continue
		}
		// Source lives outside the checked set: report at the frontier —
		// the last call site inside a checked package on the BFS path.
		fpkg, fpos, callee := frontierSite(parent, s.node, checked)
		if fpkg == nil {
			continue
		}
		t.diags[fpkg.Path] = append(t.diags[fpkg.Path], diag(fpkg, fpos, "taint",
			"call to %s reaches %s (%s)", funcDisplayName(callee.Fn), s.desc, path))
	}
	return t
}

// Check returns the precomputed findings attributed to pkg.
func (t *Taint) Check(pkg *Package) []Diagnostic {
	return t.diags[pkg.Path]
}

// frontierSite walks the BFS path from the root toward src and returns
// the last call edge whose caller sits in a checked package: the
// position to report, the package owning it, and the callee stepped
// into.
func frontierSite(parent map[*CallNode]*CallEdge, src *CallNode, checked map[string]bool) (*Package, token.Pos, *CallNode) {
	var pkg *Package
	var pos token.Pos
	var callee *CallNode
	for cur := src; ; {
		e := parent[cur]
		if e == nil {
			break
		}
		if checked[e.Caller.Pkg.Path] {
			pkg, pos, callee = e.Caller.Pkg, e.Pos, e.Callee
			// Keep walking toward the root: we want the LAST checked-
			// package edge, i.e. the first one found walking rootward is
			// the innermost... the walk goes src→root, so the first
			// checked edge seen is the innermost frontier — stop here.
			break
		}
		cur = e.Caller
	}
	return pkg, pos, callee
}

// collectTaintSources scans every function body of the graph for direct
// nondeterminism sites. Map-order sources are delegated to the maprange
// analysis (run with full sibling context, so the collect-then-sort
// idiom is not mistaken for a source) and attributed to their enclosing
// function.
func collectTaintSources(g *CallGraph) []taintSource {
	var out []taintSource
	for _, n := range g.nodes {
		out = append(out, scanFuncSources(n)...)
	}
	var lastPath string
	for _, n := range g.nodes {
		if n.Pkg.Path == lastPath {
			continue // nodes are grouped by package; run maprange once each
		}
		lastPath = n.Pkg.Path
		for _, d := range (MapRange{}).Check(n.Pkg) {
			pos := posIn(n.Pkg, d.Pos)
			if owner := enclosingNode(g, n.Pkg, pos); owner != nil {
				out = append(out, taintSource{node: owner, pos: pos, base: "maprange",
					desc: "map-iteration-order-sensitive loop"})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.node.Pkg.Path != b.node.Pkg.Path {
			return a.node.Pkg.Path < b.node.Pkg.Path
		}
		return a.pos < b.pos
	})
	return out
}

// posIn converts a resolved token.Position back to the token.Pos it came
// from within pkg's fileset.
func posIn(pkg *Package, p token.Position) token.Pos {
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf != nil && tf.Name() == p.Filename {
			return tf.LineStart(p.Line) + token.Pos(p.Column-1)
		}
	}
	return token.NoPos
}

// enclosingNode finds the graph node whose declaration spans pos.
func enclosingNode(g *CallGraph, pkg *Package, pos token.Pos) *CallNode {
	if pos == token.NoPos {
		return nil
	}
	for _, n := range g.nodes {
		if n.Pkg == pkg && n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			return n
		}
	}
	return nil
}

// scanFuncSources finds the wall-clock and ambient-rand sources directly
// inside one function body.
func scanFuncSources(n *CallNode) []taintSource {
	var out []taintSource
	pkg := n.Pkg
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Tick":
				out = append(out, taintSource{node: n, pos: id.Pos(), base: "wallclock",
					desc: "wall-clock read (time." + fn.Name() + ")"})
			}
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
				out = append(out, taintSource{node: n, pos: id.Pos(), base: "globalrand",
					desc: "ambient randomness (rand." + fn.Name() + ")"})
			}
		}
		return true
	})
	return out
}
