package dir

import (
	"errors"
	"strings"
	"testing"

	"paragon/internal/exchange"
	"paragon/internal/faultsim"
	"paragon/internal/migrate"
	"paragon/internal/obs"
)

// testAssign builds a deterministic pseudo-random assignment.
func testAssign(n int, k int32, seed uint64) []int32 {
	assign := make([]int32, n)
	x := seed*0x9e3779b97f4a7c15 + 1
	for v := range assign {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		assign[v] = int32(x % uint64(k))
	}
	return assign
}

func mustNew(t *testing.T, assign []int32, k int32, opts Options) *Directory {
	t.Helper()
	d, err := New(assign, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewAndLookup(t *testing.T) {
	assign := testAssign(1000, 7, 1)
	d := mustNew(t, assign, 7, Options{ShardBits: 8})
	if d.Epoch() != 0 {
		t.Fatalf("fresh directory epoch = %d, want 0", d.Epoch())
	}
	for v, want := range assign {
		rank, epoch := d.Lookup(int32(v))
		if rank != want || epoch != 0 {
			t.Fatalf("Lookup(%d) = (%d, %d), want (%d, 0)", v, rank, epoch, want)
		}
	}
	got := d.Current().AppendAssign(nil)
	for v := range assign {
		if got[v] != assign[v] {
			t.Fatalf("AppendAssign[%d] = %d, want %d", v, got[v], assign[v])
		}
	}
	if _, err := New(assign, 0, Options{}); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, err := New([]int32{0, 9}, 3, Options{}); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}

func TestPublishFlipsEpochAndPreservesOldSnapshot(t *testing.T) {
	assign := testAssign(600, 4, 2)
	d := mustNew(t, assign, 4, Options{ShardBits: 7})
	before := d.Current()
	moves := []migrate.Move{
		{Vertex: 5, From: assign[5], To: (assign[5] + 1) % 4},
		{Vertex: 300, From: assign[300], To: (assign[300] + 2) % 4},
	}
	epoch, err := d.Publish(moves)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || d.Epoch() != 1 {
		t.Fatalf("epoch after publish = %d/%d, want 1", epoch, d.Epoch())
	}
	for _, m := range moves {
		if rank, _ := d.Lookup(m.Vertex); rank != m.To {
			t.Fatalf("vertex %d = %d after flip, want %d", m.Vertex, rank, m.To)
		}
		// The pre-flip snapshot is immutable: a pinned reader still sees
		// the old epoch's answer.
		if before.Rank(m.Vertex) != m.From {
			t.Fatalf("old snapshot mutated: vertex %d = %d, want %d", m.Vertex, before.Rank(m.Vertex), m.From)
		}
	}
	if before.Epoch() != 0 {
		t.Fatalf("old snapshot epoch mutated to %d", before.Epoch())
	}
	// An empty delta is a legal epoch flip.
	if e, err := d.Publish(nil); err != nil || e != 2 {
		t.Fatalf("empty publish = (%d, %v), want (2, nil)", e, err)
	}
}

func TestPublishValidation(t *testing.T) {
	assign := testAssign(100, 3, 3)
	d := mustNew(t, assign, 3, Options{})
	j0 := d.JournalBytes()
	cases := []struct {
		name  string
		moves []migrate.Move
		want  string
	}{
		{"stale from", []migrate.Move{{Vertex: 1, From: assign[1] + 1, To: 0}}, "stale delta"},
		{"vertex range", []migrate.Move{{Vertex: 100, From: 0, To: 1}}, "out of range"},
		{"rank range", []migrate.Move{{Vertex: 1, From: assign[1], To: 3}}, "out of range"},
		{"dup vertex", []migrate.Move{
			{Vertex: 1, From: assign[1], To: (assign[1] + 1) % 3},
			{Vertex: 1, From: assign[1], To: (assign[1] + 2) % 3},
		}, "scheduled twice"},
	}
	for _, tc := range cases {
		_, err := d.Publish(tc.moves)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	if d.Epoch() != 0 {
		t.Fatalf("rejected publishes advanced the epoch to %d", d.Epoch())
	}
	if j1 := d.JournalBytes(); len(j1) != len(j0) {
		t.Fatal("rejected publishes touched the journal")
	}
}

func TestPublishAssignDiffsAgainstLiveEpoch(t *testing.T) {
	assign := testAssign(500, 5, 4)
	d := mustNew(t, assign, 5, Options{ShardBits: 6})
	target := append([]int32(nil), assign...)
	for v := 0; v < 500; v += 3 {
		target[v] = (target[v] + 1) % 5
	}
	if _, err := d.PublishAssign(target); err != nil {
		t.Fatal(err)
	}
	got := d.Current().AppendAssign(nil)
	for v := range target {
		if got[v] != target[v] {
			t.Fatalf("vertex %d = %d, want %d", v, got[v], target[v])
		}
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", d.Epoch())
	}
	if _, err := d.PublishAssign(target[:100]); err == nil {
		t.Fatal("length-mismatched assignment accepted")
	}
}

func TestLookupAtForwardsStaleEpochs(t *testing.T) {
	assign := testAssign(200, 4, 5)
	d := mustNew(t, assign, 4, Options{})
	reg := obs.NewRegistry()
	d.mx = newDirMetrics(reg)
	v := int32(42)
	to := (assign[v] + 1) % 4
	if _, err := d.Publish([]migrate.Move{{Vertex: v, From: assign[v], To: to}}); err != nil {
		t.Fatal(err)
	}
	// Current client: straight answer.
	r, err := d.LookupAt(1, v)
	if err != nil || r.Forwarded || r.Rank != to || r.Epoch != 1 {
		t.Fatalf("current lookup = %+v, %v", r, err)
	}
	// Stale client pinned to epoch 0: deterministic forwarding hint.
	r, err = d.LookupAt(0, v)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Forwarded || r.Rank != to || r.Epoch != 1 {
		t.Fatalf("stale lookup = %+v, want forwarded to (rank %d, epoch 1)", r, to)
	}
	// Future epoch: protocol error, not a forward.
	if _, err := d.LookupAt(2, v); !errors.Is(err, ErrFutureEpoch) {
		t.Fatalf("future lookup err = %v, want ErrFutureEpoch", err)
	}
	if got := reg.Counter("dir_forwards_total", "").Value(); got != 1 {
		t.Fatalf("dir_forwards_total = %d, want 1", got)
	}
}

func TestPublishUpdates(t *testing.T) {
	assign := testAssign(300, 6, 6)
	d := mustNew(t, assign, 6, Options{})
	ups := []exchange.Update{
		{Vertex: 3, Rank: (assign[3] + 1) % 6},
		{Vertex: 7, Rank: assign[7]}, // no-op entry: skipped, not an error
		{Vertex: 250, Rank: (assign[250] + 3) % 6},
	}
	if _, err := d.PublishUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if rank, _ := d.Lookup(3); rank != ups[0].Rank {
		t.Fatalf("vertex 3 = %d, want %d", rank, ups[0].Rank)
	}
	if rank, _ := d.Lookup(250); rank != ups[2].Rank {
		t.Fatalf("vertex 250 = %d, want %d", rank, ups[2].Rank)
	}
	if _, err := d.PublishUpdates([]exchange.Update{{Vertex: -1, Rank: 0}}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
}

func TestPublishCrashLeavesPreviousEpochLive(t *testing.T) {
	assign := testAssign(400, 4, 7)
	// Script: the publisher of fabric-epoch 0 crashes between prepare
	// and flip.
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindCrash, Round: 0, Index: 0},
	}})
	reg := obs.NewRegistry()
	d := mustNew(t, assign, 4, Options{Fabric: fab, Metrics: reg})
	moves := []migrate.Move{{Vertex: 9, From: assign[9], To: (assign[9] + 1) % 4}}
	_, err := d.Publish(moves)
	if !errors.Is(err, ErrPublishCrashed) || !errors.Is(err, ErrPublishFailed) {
		t.Fatalf("err = %v, want ErrPublishCrashed (is ErrPublishFailed)", err)
	}
	if d.Epoch() != 0 {
		t.Fatalf("crashed publish flipped the epoch to %d", d.Epoch())
	}
	if rank, _ := d.Lookup(9); rank != assign[9] {
		t.Fatalf("crashed publish leaked: vertex 9 = %d, want %d", rank, assign[9])
	}
	// The same delta republished (fabric-epoch 1, fault-free) commits.
	if e, err := d.Publish(moves); err != nil || e != 1 {
		t.Fatalf("republish = (%d, %v), want (1, nil)", e, err)
	}
	if got := reg.Counter("dir_publish_crashes_total", "").Value(); got != 1 {
		t.Fatalf("dir_publish_crashes_total = %d, want 1", got)
	}
	if got := reg.Counter("dir_epoch_flips_total", "").Value(); got != 1 {
		t.Fatalf("dir_epoch_flips_total = %d, want 1", got)
	}
}

func TestPublishDropRetriesOnVirtualClock(t *testing.T) {
	assign := testAssign(100, 3, 8)
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindDrop, Round: 0, Index: opPrepare, Attempt: 0},
	}})
	clk := faultsim.NewClock()
	d := mustNew(t, assign, 3, Options{Fabric: fab, Clock: clk, FsyncTicks: 2})
	base := clk.Now() // the base-record fsync
	if _, err := d.Publish(nil); err != nil {
		t.Fatal(err)
	}
	// Prepare fsync'd twice (drop + retry), commit once, plus one base
	// backoff between the prepare attempts.
	want := base + 3*2 + faultsim.DefaultPolicy().Backoff(0)
	if clk.Now() != want {
		t.Fatalf("clock = %d ticks, want %d", clk.Now(), want)
	}
}

func TestPublishRetryBudgetExhausted(t *testing.T) {
	assign := testAssign(100, 3, 9)
	var script []faultsim.Event
	for attempt := 0; attempt <= faultsim.DefaultPolicy().MaxRetries; attempt++ {
		script = append(script, faultsim.Event{Kind: faultsim.KindDrop, Round: 0, Index: opCommit, Attempt: attempt})
	}
	fab := faultsim.NewInjector(faultsim.Config{Script: script})
	d := mustNew(t, assign, 3, Options{Fabric: fab})
	j0 := d.JournalBytes()
	moves := []migrate.Move{{Vertex: 1, From: assign[1], To: (assign[1] + 1) % 3}}
	_, err := d.Publish(moves)
	if !errors.Is(err, ErrPublishFailed) {
		t.Fatalf("err = %v, want ErrPublishFailed", err)
	}
	if d.Epoch() != 0 {
		t.Fatalf("failed publish flipped the epoch to %d", d.Epoch())
	}
	// The prepare record is durable (commit-less) — the journal grew by
	// exactly that prepare, and recovery ignores it.
	j1 := d.JournalBytes()
	if len(j1) <= len(j0) {
		t.Fatal("durable prepare missing from the journal")
	}
	r, err := Recover(j1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 0 {
		t.Fatalf("recovery saw the uncommitted epoch: %d", r.Epoch())
	}
	// Fabric-epoch 1 is fault-free: the directory catches up.
	if e, err := d.Publish(moves); err != nil || e != 1 {
		t.Fatalf("retry publish = (%d, %v), want (1, nil)", e, err)
	}
}

func TestPublishPlanCommitAndAbort(t *testing.T) {
	// Two ranks, four vertices, stores built by hand.
	assign := []int32{0, 0, 1, 1}
	newStores := func() []*migrate.Store {
		stores := []*migrate.Store{
			{Rank: 0, Vertices: map[int32]*migrate.VertexData{}},
			{Rank: 1, Vertices: map[int32]*migrate.VertexData{}},
		}
		for v, r := range assign {
			stores[r].Vertices[int32(v)] = &migrate.VertexData{VWeight: 1, VSize: 1}
		}
		return stores
	}
	plan := &migrate.Plan{K: 2, Moves: []migrate.Move{{Vertex: 1, From: 0, To: 1}}}

	d := mustNew(t, assign, 2, Options{})
	stores := newStores()
	epoch, st, err := d.PublishPlan(stores, plan, migrate.AppContext{})
	if err != nil || epoch != 1 {
		t.Fatalf("PublishPlan = (%d, %v), want (1, nil)", epoch, err)
	}
	if st.MovedVertices != 1 {
		t.Fatalf("moved = %d, want 1", st.MovedVertices)
	}
	if rank, _ := d.Lookup(1); rank != 1 {
		t.Fatalf("directory did not follow the migration: vertex 1 = %d", rank)
	}
	if _, ok := stores[1].Vertices[1]; !ok {
		t.Fatal("vertex 1 did not arrive at rank 1")
	}

	// An aborted migration rolls back and publishes nothing.
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindAbort, Round: 0, Index: 0},
	}})
	d2 := mustNew(t, assign, 2, Options{Fabric: fab})
	stores2 := newStores()
	_, _, err = d2.PublishPlan(stores2, plan, migrate.AppContext{})
	if !errors.Is(err, migrate.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if d2.Epoch() != 0 {
		t.Fatalf("aborted migration flipped the directory to epoch %d", d2.Epoch())
	}
	if _, ok := stores2[0].Vertices[1]; !ok {
		t.Fatal("rollback did not restore vertex 1 to rank 0")
	}
}

func TestCopyOnWriteSharesUntouchedShards(t *testing.T) {
	assign := testAssign(1<<10, 4, 10)
	d := mustNew(t, assign, 4, Options{ShardBits: 6}) // 16 shards of 64
	s0 := d.Current()
	if _, err := d.Publish([]migrate.Move{{Vertex: 70, From: assign[70], To: (assign[70] + 1) % 4}}); err != nil {
		t.Fatal(err)
	}
	s1 := d.Current()
	for si := range s0.shards {
		if si == 1 { // vertex 70 lives in shard 1
			if s0.shards[si] == s1.shards[si] {
				t.Fatal("touched shard was not cloned")
			}
			continue
		}
		if s0.shards[si] != s1.shards[si] {
			t.Fatalf("untouched shard %d was copied", si)
		}
	}
}

func TestTraceEventsFromPublish(t *testing.T) {
	assign := testAssign(100, 3, 11)
	tr := obs.NewTracer(0)
	fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindCrash, Round: 1, Index: 0},
	}})
	d := mustNew(t, assign, 3, Options{Trace: tr, Fabric: fab})
	if _, err := d.Publish(nil); err != nil { // fabric-epoch 0: clean
		t.Fatal(err)
	}
	if _, err := d.Publish(nil); !errors.Is(err, ErrPublishCrashed) { // epoch 1: crash
		t.Fatalf("err = %v, want crash", err)
	}
	var kinds []obs.Kind
	for _, e := range tr.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []obs.Kind{obs.KindEpochPrepare, obs.KindEpochCommit, obs.KindEpochPrepare, obs.KindEpochAbort}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}
