package stream

import (
	"fmt"
	"math"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Fennel implements the streaming partitioner of Tsourakakis et al.
// (WSDM'14), which the paper classifies alongside DG/LDG. Each arriving
// vertex v goes to the partition maximizing
//
//	affinity(v, Pi) − α·γ·w(Pi)^(γ−1)
//
// with γ = 1.5 and α = √k · m / n^1.5 — a soft load penalty in place of
// LDG's hard capacity. The weighted extension uses edge-weight affinity
// and vertex-weight loads, consistent with the paper's extension of DG
// and LDG. A hard capacity of (1+Eps)·avg·2 backstops pathological
// skew.
func Fennel(g *graph.Graph, k int32, opt Options) *partition.Partitioning {
	if k < 1 {
		panic(fmt.Sprintf("stream: Fennel k = %d", k))
	}
	n := g.NumVertices()
	p := partition.New(k, n)
	for i := range p.Assign {
		p.Assign[i] = -1
	}
	totalW := float64(g.TotalVertexWeight())
	totalE := float64(g.TotalEdgeWeight())
	if totalW == 0 {
		totalW = 1
	}
	const gamma = 1.5
	alpha := math.Sqrt(float64(k)) * totalE / math.Pow(totalW, gamma)
	hardCap := 2 * float64(partition.BalanceBound(g, k, opt.Eps))
	load := make([]float64, k)
	aff := make([]float64, k)

	for _, v := range streamOrder(g, opt.order(), opt.Seed) {
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			if pu := p.Assign[u]; pu >= 0 {
				aff[pu] += float64(w[i])
			}
		}
		best := int32(-1)
		bestScore := math.Inf(-1)
		for pi := int32(0); pi < k; pi++ {
			if load[pi]+float64(g.VertexWeight(v)) > hardCap {
				continue
			}
			score := aff[pi] - alpha*gamma*math.Pow(load[pi], gamma-1)
			if score > bestScore || (score == bestScore && best >= 0 && load[pi] < load[best]) {
				best, bestScore = pi, score
			}
		}
		if best < 0 {
			best = 0
			for pi := int32(1); pi < k; pi++ {
				if load[pi] < load[best] {
					best = pi
				}
			}
		}
		p.Assign[v] = best
		load[best] += float64(g.VertexWeight(v))
		for pi := range aff {
			aff[pi] = 0
		}
	}
	return p
}
