// Package main_test holds the benchmark harness: one testing.B per table
// and figure of the paper's evaluation (regenerating its rows via the
// internal/exp harness at benchmark scale) plus component benchmarks for
// the core operations and the DESIGN.md ablations.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// For the paper-shaped output at a larger scale, use cmd/experiments.
package paragon_test

import (
	"testing"

	"paragon/internal/apps"
	"paragon/internal/aragon"
	"paragon/internal/bsp"
	"paragon/internal/exp"
	"paragon/internal/gas"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/metis"
	"paragon/internal/migrate"
	"paragon/internal/paragon"
	"paragon/internal/parmetis"
	"paragon/internal/stream"
	"paragon/internal/topology"
	"paragon/internal/vertexcut"
	"paragon/internal/zoltan"
)

// benchScale sizes the datasets for benchmarking (the exp tests use a
// similar scale; cmd/experiments defaults to 0.3).
const benchScale = 0.06

// ---- Evaluation tables and figures (§7) ----

// BenchmarkFig7DegreeOfParallelism regenerates Figures 7a/7b: refinement
// time and quality across drp = 1..20.
func BenchmarkFig7DegreeOfParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, c := exp.Fig7(benchScale)
		sinkTables(b, a, c)
	}
}

// BenchmarkFig8ShuffleRefinement regenerates Figure 8: shuffle rounds vs
// quality and time at drp=8.
func BenchmarkFig8ShuffleRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.Fig8(benchScale))
	}
}

// BenchmarkFig9InitialPartitioners regenerates Figure 9 (and, sharing
// the sweep, Figures 10a/10b/11a/11b): initial decomposition quality for
// HP/DG/LDG/METIS across the twelve datasets.
func BenchmarkFig9InitialPartitioners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.Fig9to11(benchScale)...)
	}
}

// BenchmarkFig10Refinement isolates the refinement half of Figures
// 10a/10b on the com-lj stand-in with a DG initial decomposition.
func BenchmarkFig10Refinement(b *testing.B) {
	env := exp.PittEnv(2)
	env.Lambda = 0
	d, err := gen.DatasetByName("com-lj")
	if err != nil {
		b.Fatal(err)
	}
	g := d.Build(benchScale)
	g.UseDegreeWeights()
	initial := stream.DG(g, int32(env.K), stream.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := initial.Clone()
		exp.RefineParagon(g, p, env, 8, 8, 42)
	}
}

// BenchmarkTable4BFS regenerates Table 4: BFS JET for all algorithms on
// both clusters.
func BenchmarkTable4BFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.Table4(benchScale, 1))
	}
}

// BenchmarkTable5SSSP regenerates Table 5: SSSP JET.
func BenchmarkTable5SSSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.Table5(benchScale, 1))
	}
}

// BenchmarkFig12VolumePitt regenerates Figure 12 (Pitt volume breakdown).
func BenchmarkFig12VolumePitt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.Fig12(benchScale, 1))
	}
}

// BenchmarkFig13VolumeGordon regenerates Figure 13 (Gordon breakdown).
func BenchmarkFig13VolumeGordon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.Fig13(benchScale, 1))
	}
}

// BenchmarkFig14Dynamism regenerates Figure 14: BFS JET over five
// growing snapshots for all five algorithms.
func BenchmarkFig14Dynamism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.Fig14(benchScale*2, 1))
	}
}

// BenchmarkFig15Scaling regenerates Figures 15/16: JET and refinement
// time along the friendster-p edge-sampled series.
func BenchmarkFig15Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, c := exp.Fig15and16(benchScale, 1)
		sinkTables(b, a, c)
	}
}

// BenchmarkTable1Contention regenerates Table 1 from the topology model.
func BenchmarkTable1Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.Table1())
	}
}

// BenchmarkLambdaSweep regenerates the §6 λ profiling sweep.
func BenchmarkLambdaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.LambdaSweep(benchScale, 1))
	}
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkAblationUniformCost: PARAGON vs UNIPARAGON quality.
func BenchmarkAblationUniformCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.AblationUniformCost(benchScale))
	}
}

// BenchmarkAblationKHop: boundary-shipping radius vs volume and quality.
func BenchmarkAblationKHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.AblationKHop(benchScale))
	}
}

// BenchmarkAblationServerPenalty: Eq. 10 spreading penalty on/off.
func BenchmarkAblationServerPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.AblationServerPenalty(benchScale))
	}
}

// ---- Component benchmarks ----

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g := gen.RMAT(20000, 120000, 0.57, 0.19, 0.19, 1)
	g.UseDegreeWeights()
	return g
}

// BenchmarkStreamDG measures the DG streaming partitioner.
func BenchmarkStreamDG(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.DG(g, 40, stream.DefaultOptions())
	}
}

// BenchmarkStreamLDG measures the LDG streaming partitioner.
func BenchmarkStreamLDG(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.LDG(g, 40, stream.DefaultOptions())
	}
}

// BenchmarkMetisPartition measures the multilevel partitioner.
func BenchmarkMetisPartition(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metis.Partition(g, 40, metis.Options{Seed: int64(i)})
	}
}

// BenchmarkParMetisRepartition measures scratch-remap repartitioning.
func BenchmarkParMetisRepartition(b *testing.B) {
	g := benchGraph(b)
	p := stream.DG(g, 40, stream.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parmetis.Repartition(g, p, parmetis.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAragonSerial measures full serial ARAGON over all pairs.
func BenchmarkAragonSerial(b *testing.B) {
	g := benchGraph(b)
	cl := topology.PittCluster(1)
	k := 20
	c, err := cl.PartitionCostMatrix(k, 0)
	if err != nil {
		b.Fatal(err)
	}
	initial := stream.DG(g, int32(k), stream.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := initial.Clone()
		if _, err := aragon.Refine(g, p, c, aragon.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParagonParallel measures PARAGON at drp=8 on the same input
// as BenchmarkAragonSerial — the speedup is the Figure 7a story.
func BenchmarkParagonParallel(b *testing.B) {
	g := benchGraph(b)
	cl := topology.PittCluster(1)
	k := 20
	c, err := cl.PartitionCostMatrix(k, 0)
	if err != nil {
		b.Fatal(err)
	}
	nodeOf, _ := cl.NodeOf(k)
	initial := stream.DG(g, int32(k), stream.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := initial.Clone()
		if _, err := paragon.Refine(g, p, c, paragon.Config{DRP: 8, Shuffles: 0, Seed: 42, NodeOf: nodeOf}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBSPBFS measures a full simulated BFS job.
func BenchmarkBSPBFS(b *testing.B) {
	g := benchGraph(b)
	cl := topology.PittCluster(2)
	p := stream.DG(g, int32(cl.TotalCores()), stream.DefaultOptions())
	e, err := bsp.NewEngine(g, p, cl, bsp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := apps.BFS(e, g, int32(i)%g.NumVertices()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild measures CSR construction throughput.
func BenchmarkGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen.RMAT(20000, 120000, 0.57, 0.19, 0.19, int64(i))
	}
}

// sinkTables keeps results alive so the compiler cannot elide the work.
func sinkTables(b *testing.B, tables ...*exp.Table) {
	b.Helper()
	for _, t := range tables {
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", t.ID)
		}
	}
}

// ---- Extension studies ----

// BenchmarkExchangeStrategies compares the §5 location-exchange
// strategies (directory vs region reduce).
func BenchmarkExchangeStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.ExchangeComparison(benchScale))
	}
}

// BenchmarkVertexCut compares edge-cut vs vertex-cut replication (§8).
func BenchmarkVertexCut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.VertexCutComparison(benchScale))
	}
}

// BenchmarkStreamOrder sweeps streaming partitioner arrival orders.
func BenchmarkStreamOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.StreamOrderStudy(benchScale))
	}
}

// BenchmarkMigrationService measures the §5 physical migration service.
func BenchmarkMigrationService(b *testing.B) {
	g := benchGraph(b)
	old := stream.DG(g, 40, stream.DefaultOptions())
	now := old.Clone()
	if _, err := paragon.RefineUniform(g, now, paragon.Config{DRP: 8, Shuffles: 2, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	plan, err := migrate.NewPlan(old, now)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stores := migrate.BuildStores(g, old)
		if _, err := migrate.Execute(stores, plan, migrate.AppContext{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCutModels compares edge-cut BSP and vertex-cut GAS execution
// of connected components (§8 extension).
func BenchmarkCutModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.EdgeCutVsVertexCut(benchScale))
	}
}

// BenchmarkRepartitionerLandscape compares every repartitioner family on
// a churned decomposition (the Figure 1 landscape as a measurement).
func BenchmarkRepartitionerLandscape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkTables(b, exp.RepartitionerLandscape(benchScale, 1))
	}
}

// BenchmarkGASComponents measures the vertex-cut GAS engine on
// connected components.
func BenchmarkGASComponents(b *testing.B) {
	g := benchGraph(b)
	a := vertexcut.HDRF(g, 40, 2)
	e, err := gas.NewEngine(g, a, topology.PittCluster(2), gas.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gas.Components(e, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHDRFAssign measures HDRF vertex-cut assignment throughput.
func BenchmarkHDRFAssign(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vertexcut.HDRF(g, 40, 2)
	}
}

// BenchmarkZoltanRepartition measures the hypergraph repartitioner.
func BenchmarkZoltanRepartition(b *testing.B) {
	g := benchGraph(b)
	old := stream.DG(g, 40, stream.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := zoltan.Repartition(g, old, zoltan.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
