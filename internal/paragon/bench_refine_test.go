package paragon

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"paragon/internal/faultsim"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/obs"
	"paragon/internal/stream"
)

// The refinement benchmarks run on a 100k-vertex power-law graph, the
// scale at which the per-pair full-graph scans of the naive hot path
// dominate. scripts/bench.sh records their trajectory in BENCH_refine.json.

var (
	refineBenchOnce  sync.Once
	refineBenchGraph *graph.Graph
)

func benchGraph100k() *graph.Graph {
	refineBenchOnce.Do(func() {
		g := gen.RMAT(100_000, 800_000, 0.57, 0.19, 0.19, 42)
		g.UseDegreeWeights()
		refineBenchGraph = g
	})
	return refineBenchGraph
}

// BenchmarkParagonRound measures one full PARAGON refinement round
// (grouping, shipping accounting, parallel group refinement, exchange)
// at the paper's drp=8 on 100k vertices.
func BenchmarkParagonRound(b *testing.B) {
	benchParagonRound(b, false, false)
}

// BenchmarkParagonRoundFault is the guard on the fault layer's
// instrumentation cost: the identical round with a fault fabric
// installed but a zero-fault schedule, so every fault point is consulted
// and none fires. scripts/bench.sh records the pair to BENCH_fault.json;
// the overhead target is < 5%.
func BenchmarkParagonRoundFault(b *testing.B) {
	benchParagonRound(b, true, false)
}

// BenchmarkParagonRoundObs is the same guard on the observability layer:
// the identical round with a tracer and a metrics registry installed, so
// every emission site pays its full cost. scripts/bench.sh records the
// pair to BENCH_obs.json; with both nil (BenchmarkParagonRound) the
// layer must cost nothing but nil checks.
func BenchmarkParagonRoundObs(b *testing.B) {
	benchParagonRound(b, false, true)
}

func benchParagonRound(b *testing.B, faultLayer, observed bool) {
	for _, k := range []int32{32, 128} {
		b.Run(map[int32]string{32: "k=32", 128: "k=128"}[k], func(b *testing.B) {
			g := benchGraph100k()
			p0 := stream.HP(g, k)
			cfg := Config{DRP: 8, Shuffles: 0, Seed: 1}
			if faultLayer {
				cfg.Fabric = faultsim.NewInjector(faultsim.Config{Seed: 1}) // rate 0: never fires
			}
			if observed {
				cfg.Trace = obs.NewTracer(0)
				cfg.Metrics = obs.NewRegistry()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := p0.Clone()
				b.StartTimer()
				if _, err := RefineUniform(g, p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParagonRoundWorkers is the worker-scaling curve of the
// pair-level scheduler: the identical round at Workers ∈ {1, 2, 4,
// GOMAXPROCS}. Every point computes the bit-identical decomposition —
// only the wall clock (and per-worker scratch) may differ.
// scripts/bench_parallel.sh records the curve in BENCH_parallel.json.
func BenchmarkParagonRoundWorkers(b *testing.B) {
	gomax := runtime.GOMAXPROCS(0)
	points := []int{1, 2, 4}
	if gomax != 1 && gomax != 2 && gomax != 4 {
		points = append(points, gomax)
	}
	for _, k := range []int32{32, 128} {
		for _, w := range points {
			b.Run(fmt.Sprintf("k=%d/workers=%d", k, w), func(b *testing.B) {
				g := benchGraph100k()
				p0 := stream.HP(g, k)
				cfg := Config{DRP: 8, Shuffles: 0, Seed: 1, Workers: w}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					p := p0.Clone()
					b.StartTimer()
					if _, err := RefineUniform(g, p, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
