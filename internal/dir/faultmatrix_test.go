package dir

import (
	"errors"
	"fmt"
	"testing"

	"paragon/internal/faultsim"
	"paragon/internal/obs"
)

// sweepOutcome is everything one faulty publish sequence produced; two
// runs are "bit-identical" iff their outcomes compare equal.
type sweepOutcome struct {
	finalEpoch int64
	finalHash  uint64
	ticks      int64
	faults     faultsim.Counters
	aborts     int64
	journalLen int
	pattern    string // per-publish 'c' committed / 'x' crashed / 'd' drop-exhausted
}

// runPublishSweep drives one directory through a fixed 24-publish
// sequence under fab, asserting the torn-read invariant at every step:
// a committed publish serves exactly its target assignment, a failed
// publish serves exactly the previous committed one — never a mixture.
func runPublishSweep(t *testing.T, fab faultsim.Fabric) sweepOutcome {
	t.Helper()
	const n, k, pubs = 512, 6, 24
	assign := testAssign(n, k, 1234)
	clk := faultsim.NewClock()
	reg := obs.NewRegistry()
	d := mustNew(t, assign, int32(k), Options{ShardBits: 7, Fabric: fab, Clock: clk, Metrics: reg})

	committedHash := d.Current().AssignHash()
	target := append([]int32(nil), assign...)
	pattern := make([]byte, 0, pubs)
	for pub := 0; pub < pubs; pub++ {
		for v := pub % 7; v < n; v += 7 {
			target[v] = (target[v] + 1 + int32(pub)%(k-1)) % k
		}
		// The intended post-flip state, independent of the directory.
		wantHash := buildSnapshot(target, k, 7, 0).AssignHash()
		_, err := d.PublishAssign(target)
		switch {
		case err == nil:
			if got := d.Current().AssignHash(); got != wantHash {
				t.Fatalf("publish %d: committed epoch hash %#x, want %#x (mixed-epoch state)", pub, got, wantHash)
			}
			committedHash = wantHash
			pattern = append(pattern, 'c')
		case errors.Is(err, ErrPublishCrashed):
			pattern = append(pattern, 'x')
		case errors.Is(err, ErrPublishFailed):
			pattern = append(pattern, 'd')
		default:
			t.Fatalf("publish %d: unexpected error %v", pub, err)
		}
		if err != nil {
			if got := d.Current().AssignHash(); got != committedHash {
				t.Fatalf("publish %d: failed publish leaked state: hash %#x, want %#x", pub, got, committedHash)
			}
		}
		// Recovery agrees with the live directory after every publish,
		// failed or not.
		r, rerr := Recover(d.JournalBytes(), Options{})
		if rerr != nil {
			t.Fatalf("publish %d: recovery failed: %v", pub, rerr)
		}
		if r.Epoch() != d.Epoch() || r.Current().AssignHash() != committedHash {
			t.Fatalf("publish %d: recovery diverged: epoch %d/%d hash %#x/%#x",
				pub, r.Epoch(), d.Epoch(), r.Current().AssignHash(), committedHash)
		}
	}
	return sweepOutcome{
		finalEpoch: d.Epoch(),
		finalHash:  d.Current().AssignHash(),
		ticks:      clk.Now(),
		faults:     fab.(*faultsim.Injector).Counters(),
		aborts:     reg.Counter("dir_publish_aborts_total", "").Value(),
		journalLen: len(d.JournalBytes()),
		pattern:    string(pattern),
	}
}

// The publish-phase fault matrix: crash, drop, and straggler faults
// injected between prepare and flip at rates up to 0.6. Each cell must
// (a) never serve a mixed-epoch state, (b) recover bit-identically at
// every step (both asserted inside runPublishSweep), (c) replay
// bit-identically from the same seed, and (d) replay bit-identically
// from its realized schedule as a script.
func TestPublishFaultMatrix(t *testing.T) {
	rates := []float64{0.15, 0.3, 0.45, 0.6}
	seeds := []int64{7, 21}
	var totalFaults int64
	for _, rate := range rates {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("rate=%v/seed=%d", rate, seed), func(t *testing.T) {
				cfg := faultsim.Config{Seed: seed, Rate: rate}
				first := runPublishSweep(t, faultsim.NewInjector(cfg))
				again := runPublishSweep(t, faultsim.NewInjector(cfg))
				if first != again {
					t.Fatalf("same-seed rerun diverged:\n  %+v\n  %+v", first, again)
				}
				// Replay the realized schedule as a script with the
				// stochastic layer off: same run, bit for bit.
				inj := faultsim.NewInjector(cfg)
				_ = runPublishSweep(t, inj)
				replay := runPublishSweep(t, faultsim.NewInjector(faultsim.Config{Script: inj.Realized()}))
				if replay != first {
					t.Fatalf("scripted replay diverged:\n  %+v\n  %+v", replay, first)
				}
				totalFaults += first.faults.Total()
			})
		}
	}
	// The matrix must actually exercise the fault machinery.
	if totalFaults == 0 {
		t.Fatal("fault matrix fired no faults at all")
	}
}

// At rate 1.0 every publish dies, the directory never leaves epoch 0,
// and recovery still works — the degenerate corner of the matrix.
func TestPublishTotalFaultRate(t *testing.T) {
	assign := testAssign(128, 3, 5)
	fab := faultsim.NewInjector(faultsim.Config{Seed: 3, Rate: 1})
	d := mustNew(t, assign, 3, Options{Fabric: fab})
	for i := 0; i < 5; i++ {
		a := append([]int32(nil), assign...)
		a[i] = (a[i] + 1) % 3
		if _, err := d.PublishAssign(a); !errors.Is(err, ErrPublishFailed) {
			t.Fatalf("publish %d survived rate 1.0: %v", i, err)
		}
	}
	if d.Epoch() != 0 {
		t.Fatalf("epoch = %d under total fault rate, want 0", d.Epoch())
	}
	r, err := Recover(d.JournalBytes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 0 || r.Current().AssignHash() != d.Current().AssignHash() {
		t.Fatal("recovery diverged under total fault rate")
	}
}
