// Dynamic graph maintenance: the Figure 14 scenario at example scale. A
// growing social graph arrives as five snapshots; new vertices are
// injected with DG, and the decomposition either stays as injected or is
// re-refined by PARAGON after every snapshot. BFS job time is measured
// on each snapshot for both strategies.
package main

import (
	"fmt"
	"log"

	"paragon/internal/apps"
	"paragon/internal/bsp"
	"paragon/internal/dyn"
	"paragon/internal/gen"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/topology"
)

func main() {
	full := gen.RMAT(10000, 80000, 0.57, 0.19, 0.19, 9)
	full.UseDegreeWeights()
	snaps, err := dyn.Snapshots(full, 5, 17)
	if err != nil {
		log.Fatal(err)
	}

	cluster := topology.PittCluster(3)
	k := int32(cluster.TotalCores())
	costs, err := cluster.PartitionCostMatrix(int(k), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	nodeOf, _ := cluster.NodeOf(int(k))

	jet := func(snap dyn.Snapshot, p *partition.Partitioning) float64 {
		engine, err := bsp.NewEngine(snap.Graph, p, cluster, bsp.Options{
			MsgGroupSize: 8, MemoryContention: 0.6,
		})
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, src := range []int32{0, 7, 99} {
			_, res, err := apps.BFS(engine, snap.Graph, src%snap.Graph.NumVertices())
			if err != nil {
				log.Fatal(err)
			}
			total += res.JET
		}
		return total
	}

	fmt.Println("snapshot   vertices   edges      JET(DG only)   JET(DG+PARAGON)")
	var dgPrev, parPrev *partition.Partitioning
	for i, snap := range snaps {
		// Strategy 1: streaming injection only (decomposition decays).
		dgCur, err := dyn.Inject(snap, dgPrev, k, 0.02)
		if err != nil {
			log.Fatal(err)
		}
		// Strategy 2: inject, then re-refine with PARAGON.
		parCur, err := dyn.Inject(snap, parPrev, k, 0.02)
		if err != nil {
			log.Fatal(err)
		}
		cfg := paragon.DefaultConfig()
		cfg.Seed = int64(31 + i)
		cfg.NodeOf = nodeOf
		if _, err := paragon.Refine(snap.Graph, parCur, costs, cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("S%d         %-10d %-10d %-14.0f %.0f\n",
			i+1, snap.Graph.NumVertices(), snap.Graph.NumEdges(),
			jet(snap, dgCur), jet(snap, parCur))
		dgPrev, parPrev = dgCur, parCur
	}
	fmt.Println("\nThe gap widens as the graph drifts from its original shape —")
	fmt.Println("the paper measured PARAGON 90% ahead of DG by snapshot S5.")
}
