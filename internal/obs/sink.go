package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sinks. All three serializers are deterministic functions of their
// inputs: field order is fixed, metric order is name-sorted, and floats
// are formatted with strconv's shortest round-trip form — so two runs
// that produced identical tracer/registry contents produce byte-identical
// files. No sink ever stamps wall-clock time into its output; if a
// caller wants a wall-clock header it belongs outside these files (a
// sibling log line), or the cross-worker-count byte-identity the ci.sh
// determinism check asserts would break.

// WriteJSONL serializes the tracer's retained events, one JSON object
// per line, in sequence order. Every field is always present (stable
// schema, trivially diffable); X is formatted with the shortest
// round-trip representation.
func WriteJSONL(w io.Writer, t *Tracer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		fmt.Fprintf(bw, `{"seq":%d,"tick":%d,"kind":%q,"round":%d,"a":%d,"b":%d,"n":%d,"m":%d,"x":%s}`,
			e.Seq, e.Tick, e.Kind.String(), e.Round, e.A, e.B, e.N, e.M, formatFloat(e.X))
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteProm serializes the registry in the Prometheus text exposition
// format (HELP/TYPE comments, cumulative histogram buckets), metrics in
// name-sorted order.
func WriteProm(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names() {
		m := r.byName[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, m.metricHelp())
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, m.metricType())
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s %d\n", name, v.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s %s\n", name, formatFloat(v.Value()))
		case *Histogram:
			var cum int64
			for i, b := range v.bounds {
				cum += v.buckets[i].Load()
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, b, cum)
			}
			cum += v.buckets[len(v.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", name, v.Sum())
			fmt.Fprintf(bw, "%s_count %d\n", name, v.Count())
		}
	}
	return bw.Flush()
}

// phaseOrder fixes the row-group order of the summary table; phases not
// listed here sort alphabetically after the known ones.
var phaseOrder = map[string]int{
	"refine":    0,
	"ship":      1,
	"exchange":  2,
	"migrate":   3,
	"dir":       4,
	"fault":     5,
	"portfolio": 6,
}

// WriteSummary renders the registry as a human per-phase table: metrics
// are grouped by their name's leading phase segment (refine_, ship_,
// exchange_, migrate_, fault_), counters and gauges print their value,
// histograms print count, sum, and mean. Like the other sinks it is
// deterministic, though it is meant for eyes, not for diffing.
func WriteSummary(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := r.names()
	type row struct {
		phase, metric, value string
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		m := r.byName[name]
		phase := name
		rest := name
		if i := strings.IndexByte(name, '_'); i > 0 {
			phase, rest = name[:i], name[i+1:]
		}
		var val string
		switch v := m.(type) {
		case *Counter:
			val = strconv.FormatInt(v.Value(), 10)
		case *Gauge:
			val = formatFloat(v.Value())
		case *Histogram:
			n, s := v.Count(), v.Sum()
			mean := "-"
			if n > 0 {
				mean = formatFloat(float64(s) / float64(n))
			}
			val = fmt.Sprintf("n=%d sum=%d mean=%s", n, s, mean)
		}
		rows = append(rows, row{phase: phase, metric: rest, value: val})
	}
	r.mu.Unlock()
	sort.SliceStable(rows, func(i, j int) bool {
		pi, iKnown := phaseOrder[rows[i].phase]
		pj, jKnown := phaseOrder[rows[j].phase]
		switch {
		case iKnown && jKnown && pi != pj:
			return pi < pj
		case iKnown != jKnown:
			return iKnown
		case rows[i].phase != rows[j].phase:
			return rows[i].phase < rows[j].phase
		}
		return rows[i].metric < rows[j].metric
	})

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-10s %-32s %s\n", "phase", "metric", "value")
	prev := ""
	for _, rw := range rows {
		label := rw.phase
		if label == prev {
			label = ""
		} else if prev != "" {
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "%-10s %-32s %s\n", label, rw.metric, rw.value)
		prev = rw.phase
	}
	return bw.Flush()
}

// formatFloat is the one float formatter of the sinks: shortest
// round-trip form, so identical float64 values serialize identically.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
