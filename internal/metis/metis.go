package metis

import (
	"fmt"
	"math/rand"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Options configures the multilevel partitioner.
type Options struct {
	// Eps is the per-partition imbalance tolerance (default 0.02, the
	// paper's 2%).
	Eps float64
	// Seed drives matching and initial-bisection randomness.
	Seed int64
	// CoarsenTo is the coarsest-graph size per bisection (default 100).
	CoarsenTo int32
	// InitTries is the number of greedy-growing attempts per bisection
	// (default 4).
	InitTries int
	// RefinePasses bounds FM passes per level (default 4).
	RefinePasses int
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.02
	}
	if o.CoarsenTo == 0 {
		o.CoarsenTo = 100
	}
	if o.InitTries == 0 {
		o.InitTries = 4
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 4
	}
	return o
}

// Partition computes a k-way decomposition of g by recursive multilevel
// bisection, honoring vertex weights with imbalance tolerance opt.Eps.
func Partition(g *graph.Graph, k int32, opt Options) *partition.Partitioning {
	if k < 1 {
		panic(fmt.Sprintf("metis: k = %d", k))
	}
	opt = opt.withDefaults()
	p := partition.New(k, g.NumVertices())
	if k == 1 || g.NumVertices() == 0 {
		return p
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	verts := make([]int32, g.NumVertices())
	for i := range verts {
		verts[i] = int32(i)
	}
	recursiveBisect(g, verts, 0, k, p, opt, rng)
	return p
}

// recursiveBisect splits the induced subgraph on verts into partitions
// [lo, lo+k) of p.
func recursiveBisect(g *graph.Graph, verts []int32, lo, k int32, p *partition.Partitioning, opt Options, rng *rand.Rand) {
	if k == 1 {
		for _, v := range verts {
			p.Assign[v] = lo
		}
		return
	}
	k0 := k / 2
	k1 := k - k0
	target0 := float64(k0) / float64(k)
	sub, orig := graph.Induced(g, verts)
	side := multilevelBisect(sub, target0, opt, rng)
	var verts0, verts1 []int32
	for i, s := range side {
		if s == 0 {
			verts0 = append(verts0, orig[i])
		} else {
			verts1 = append(verts1, orig[i])
		}
	}
	recursiveBisect(g, verts0, lo, k0, p, opt, rng)
	recursiveBisect(g, verts1, lo+k0, k1, p, opt, rng)
}

// multilevelBisect coarsens, bisects the coarsest graph, and projects the
// split back while FM-refining at every level.
func multilevelBisect(g *graph.Graph, target0 float64, opt Options, rng *rand.Rand) []int8 {
	levels := coarsen(g, opt.CoarsenTo, rng)
	coarsest := levels[len(levels)-1].g
	side := initialBisection(coarsest, target0, rng, opt.InitTries)
	total := g.TotalVertexWeight()
	maxW := [2]int64{
		int64(float64(total) * target0 * (1 + opt.Eps)),
		int64(float64(total) * (1 - target0) * (1 + opt.Eps)),
	}
	// Weight is conserved by contraction, so the same bounds apply at
	// every level.
	fmRefine(coarsest, side, maxW, opt.RefinePasses)
	for li := len(levels) - 1; li >= 1; li-- {
		fine := levels[li-1].g
		cmap := levels[li].map_
		fineSide := make([]int8, fine.NumVertices())
		for v := range fineSide {
			fineSide[v] = side[cmap[v]]
		}
		side = fineSide
		fmRefine(fine, side, maxW, opt.RefinePasses)
	}
	return side
}
