package apps

import (
	"testing"
	"testing/quick"

	"paragon/internal/bsp"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func TestKCoreMatchesSerial(t *testing.T) {
	g := gen.RMAT(1500, 7500, 0.57, 0.19, 0.19, 4)
	e := engineFor(t, g, 8)
	for _, k := range []int{2, 3, 5} {
		got, _, err := KCore(e, g, k)
		if err != nil {
			t.Fatal(err)
		}
		want := KCoreSerial(g, k)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("k=%d vertex %d: BSP %d vs serial %d", k, v, got[v], want[v])
			}
		}
	}
}

func TestKCoreSmallCases(t *testing.T) {
	// A triangle plus a pendant: 2-core = the triangle.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	e := engineFor(t, g, 2)
	m, _, err := KCore(e, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 1, 0}
	for v := range want {
		if m[v] != want[v] {
			t.Fatalf("membership = %v, want %v", m, want)
		}
	}
	// k above max degree: empty core.
	m9, _, err := KCore(e, g, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range m9 {
		if x != 0 {
			t.Fatalf("vertex %d in impossible 9-core", v)
		}
	}
	if _, _, err := KCore(e, g, 0); err == nil {
		t.Fatal("expected k>=1 error")
	}
}

func TestKCorePeelingCascades(t *testing.T) {
	// A path: 2-core is empty, peeling must cascade end to end.
	b := graph.NewBuilder(10)
	for v := int32(0); v < 9; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Build()
	e := engineFor(t, g, 4)
	m, res, err := KCore(e, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range m {
		if x != 0 {
			t.Fatalf("vertex %d survived in a path 2-core", v)
		}
	}
	if res.Supersteps < 3 {
		t.Fatalf("cascade finished in %d supersteps — too few for a 10-path", res.Supersteps)
	}
}

func TestTriangleCountMatchesSerial(t *testing.T) {
	g := gen.RMAT(600, 3600, 0.57, 0.19, 0.19, 6)
	e := engineFor(t, g, 6)
	got, res, err := TriangleCount(e, g)
	if err != nil {
		t.Fatal(err)
	}
	want := TriangleCountSerial(g)
	if got != want {
		t.Fatalf("BSP triangles %d vs serial %d", got, want)
	}
	if want == 0 {
		t.Fatal("test graph should contain triangles")
	}
	if res.Supersteps != 2 {
		t.Fatalf("supersteps = %d, want 2", res.Supersteps)
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// K4 has 4 triangles.
	b := graph.NewBuilder(4)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
		}
	}
	k4 := b.Build()
	e, err := bsp.NewEngine(k4, stream.HP(k4, 2), topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := TriangleCount(e, k4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	// A tree has none.
	tr := gen.Mesh2D(2, 5) // has diagonals => has triangles; use a path instead
	_ = tr
	pb := graph.NewBuilder(6)
	for v := int32(0); v < 5; v++ {
		pb.AddEdge(v, v+1)
	}
	path := pb.Build()
	e2, err := bsp.NewEngine(path, stream.HP(path, 2), topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = TriangleCount(e2, path)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("path triangles = %d, want 0", got)
	}
}

// Property: BSP k-core equals serial peeling for random graphs and k.
func TestQuickKCoreEquivalence(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		g := gen.ErdosRenyi(200, 700, seed)
		p := stream.HP(g, 4)
		e, err := bsp.NewEngine(g, p, topology.GordonCluster(1), bsp.Options{})
		if err != nil {
			return false
		}
		got, _, err := KCore(e, g, k)
		if err != nil {
			return false
		}
		want := KCoreSerial(g, k)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankConvergedStopsEarly(t *testing.T) {
	g := gen.ErdosRenyi(400, 1600, 9)
	e := engineFor(t, g, 4)
	// Loose tolerance: must stop well before the iteration cap.
	ranks, res, err := PageRankConverged(e, g, PageRankScale/100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps >= 200 {
		t.Fatalf("did not converge early: %d supersteps", res.Supersteps)
	}
	if res.Supersteps < 3 {
		t.Fatalf("converged implausibly fast: %d supersteps", res.Supersteps)
	}
	if len(res.Aggregates) != res.Supersteps {
		t.Fatalf("aggregates recorded for %d of %d steps", len(res.Aggregates), res.Supersteps)
	}
	// Deltas must shrink monotonically-ish; final delta below tolerance.
	last := res.Aggregates[len(res.Aggregates)-1]
	if last > PageRankScale/100 {
		t.Fatalf("final delta %d above tolerance", last)
	}
	var sum int64
	for _, r := range ranks {
		sum += r
	}
	if sum < PageRankScale*80/100 || sum > PageRankScale*105/100 {
		t.Fatalf("mass %d", sum)
	}
}

func TestPageRankConvergedErrors(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	e := engineFor(t, g, 2)
	if _, _, err := PageRankConverged(e, g, 0, 0); err == nil {
		t.Fatal("expected maxIters error")
	}
	if _, _, err := PageRankConverged(e, g, -1, 5); err == nil {
		t.Fatal("expected tolerance error")
	}
}

func TestPageRankConvergedTightToleranceRunsLonger(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 7)
	e := engineFor(t, g, 4)
	_, loose, err := PageRankConverged(e, g, PageRankScale/10, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, tight, err := PageRankConverged(e, g, PageRankScale/100000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Supersteps <= loose.Supersteps {
		t.Fatalf("tight tolerance (%d steps) not longer than loose (%d)", tight.Supersteps, loose.Supersteps)
	}
}
