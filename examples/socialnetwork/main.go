// Social-network analytics: the §7.2 story at example scale. A BFS and
// an SSSP job run over a power-law social graph on a modeled 3-node
// cluster, once on the raw streaming decomposition and once after
// PARAGON refinement, reporting the job execution time (JET) and the
// communication-volume breakdown the paper uses in Figures 12–13.
package main

import (
	"fmt"
	"log"

	"paragon/internal/apps"
	"paragon/internal/bsp"
	"paragon/internal/gen"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func main() {
	// A YouTube-class social graph.
	g := gen.RMAT(12000, 90000, 0.57, 0.19, 0.19, 3)
	g.UseDegreeWeights()

	cluster := topology.PittCluster(3)
	k := cluster.TotalCores() // 60 cores, one partition each
	dg := stream.DG(g, int32(k), stream.DefaultOptions())

	// PARAGON with the full contention penalty (λ=1): on this
	// flat-network cluster the intra-node memory subsystem is the
	// bottleneck, so some communication is pushed across nodes.
	costs, err := cluster.PartitionCostMatrix(k, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	nodeOf, _ := cluster.NodeOf(k)
	refined := dg.Clone()
	cfg := paragon.DefaultConfig()
	cfg.Seed = 7
	cfg.NodeOf = nodeOf
	if _, err := paragon.Refine(g, refined, costs, cfg); err != nil {
		log.Fatal(err)
	}

	run := func(name string, p *partition.Partitioning) {
		engine, err := bsp.NewEngine(g, p, cluster, bsp.Options{
			MsgGroupSize:     8,
			MemoryContention: 0.6, // intra-node bound, like PittMPICluster
		})
		if err != nil {
			log.Fatal(err)
		}
		var bfsJET, ssspJET float64
		var vol bsp.VolumeBreakdown
		for _, src := range []int32{0, 911, 4242} {
			if _, res, err := apps.BFS(engine, g, src); err != nil {
				log.Fatal(err)
			} else {
				bfsJET += res.JET
				vol.IntraSocket += res.Volume.IntraSocket
				vol.InterSocket += res.Volume.InterSocket
				vol.InterNode += res.Volume.InterNode
			}
			if _, res, err := apps.SSSP(engine, g, src); err != nil {
				log.Fatal(err)
			} else {
				ssspJET += res.JET
			}
		}
		fmt.Printf("%-12s BFS JET %8.0f   SSSP JET %8.0f   volume KB (intra-socket/inter-socket/inter-node) %d/%d/%d\n",
			name, bfsJET, ssspJET,
			vol.IntraSocket/1024, vol.InterSocket/1024, vol.InterNode/1024)
	}
	run("DG", dg)
	run("PARAGON", refined)
}
