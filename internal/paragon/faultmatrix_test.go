package paragon

import (
	"testing"

	"paragon/internal/faultsim"
	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// TestFaultMatrix is the acceptance sweep for degraded-mode refinement:
// for every seeded fault schedule in the matrix, Refine must terminate,
// the result must be a valid partitioning whose edge-cut does not exceed
// the unrefined input, and rerunning the identical (Seed, fault
// schedule) must be bit-identical. Faults cost quality, never validity.
func TestFaultMatrix(t *testing.T) {
	g := gen.RMAT(3000, 18000, 0.57, 0.19, 0.19, 21)
	g.UseDegreeWeights()
	p0 := stream.DG(g, 24, stream.DefaultOptions())
	cutBefore := partition.EdgeCut(g, p0)

	rates := []float64{0.02, 0.1, 0.3, 0.6}
	seeds := []int64{1, 2, 3}
	var totalFaultActivity int64
	for _, rate := range rates {
		for _, fseed := range seeds {
			cfg := Config{DRP: 6, Shuffles: 4, Seed: 9, FaultRate: rate, FaultSeed: fseed}
			run := func() (*partition.Partitioning, Stats) {
				p := p0.Clone()
				st, err := RefineUniform(g, p, cfg)
				if err != nil {
					t.Fatalf("rate %v seed %d: Refine failed: %v", rate, fseed, err)
				}
				return p, st
			}
			p1, st1 := run()
			if err := p1.Validate(g); err != nil {
				t.Fatalf("rate %v seed %d: invalid partitioning: %v", rate, fseed, err)
			}
			if cut := partition.EdgeCut(g, p1); cut > cutBefore {
				t.Fatalf("rate %v seed %d: edge-cut %d exceeds unrefined %d", rate, fseed, cut, cutBefore)
			}
			// Bit-identical rerun under the identical fault schedule.
			p2, st2 := run()
			if assignHash(p1) != assignHash(p2) {
				t.Fatalf("rate %v seed %d: reruns diverged", rate, fseed)
			}
			if st1.Faults != st2.Faults {
				t.Fatalf("rate %v seed %d: fault accounting diverged: %+v vs %+v", rate, fseed, st1.Faults, st2.Faults)
			}
			if st1.Faults.DegradedGroups != st1.Faults.CrashedGroups+st1.Faults.StragglerDrops {
				t.Fatalf("degraded-group accounting inconsistent: %+v", st1.Faults)
			}
			totalFaultActivity += int64(st1.Faults.DegradedGroups + st1.Faults.ExchangeRetries + st1.Faults.ExchangeAborts)
		}
	}
	if totalFaultActivity == 0 {
		t.Fatal("matrix swept rates up to 0.6 and no fault ever fired — injector not wired in")
	}
}

// A realized stochastic schedule replayed as a script must reproduce the
// run bit-identically — the "seeded and replayable" half of the fault
// contract.
func TestFaultScheduleReplaysBitIdentical(t *testing.T) {
	g := gen.RMAT(2000, 12000, 0.57, 0.19, 0.19, 4)
	g.UseDegreeWeights()
	p0 := stream.DG(g, 16, stream.DefaultOptions())

	live := faultsim.NewInjector(faultsim.Config{Seed: 33, Rate: 0.25})
	pLive := p0.Clone()
	stLive, err := RefineUniform(g, pLive, Config{DRP: 4, Shuffles: 3, Seed: 2, Fabric: live})
	if err != nil {
		t.Fatal(err)
	}
	sched := live.Realized()
	if stLive.Faults.DegradedGroups+stLive.Faults.ExchangeRetries == 0 {
		t.Skip("schedule fired nothing at this seed; replay is vacuous")
	}

	replay := faultsim.NewInjector(faultsim.Config{Script: sched})
	pReplay := p0.Clone()
	stReplay, err := RefineUniform(g, pReplay, Config{DRP: 4, Shuffles: 3, Seed: 2, Fabric: replay})
	if err != nil {
		t.Fatal(err)
	}
	if assignHash(pLive) != assignHash(pReplay) {
		t.Fatal("replayed schedule produced a different decomposition")
	}
	if stLive.Faults != stReplay.Faults {
		t.Fatalf("replayed fault accounting diverged: %+v vs %+v", stLive.Faults, stReplay.Faults)
	}
}

// With the fault layer installed but firing nothing (rate 0), the result
// must be bit-identical to a run with no fault layer at all — the
// instrumented fault points are pure observers.
func TestZeroFaultFabricIsNoop(t *testing.T) {
	g := gen.RMAT(2500, 15000, 0.57, 0.19, 0.19, 9)
	g.UseDegreeWeights()
	cl := topology.PittCluster(2)
	k := 32
	c, err := cl.PartitionCostMatrix(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf, err := cl.NodeOf(k)
	if err != nil {
		t.Fatal(err)
	}
	p0 := stream.DG(g, int32(k), stream.DefaultOptions())

	bare := p0.Clone()
	stBare, err := Refine(g, bare, c, Config{DRP: 4, Shuffles: 3, Seed: 77, KHop: 1, NodeOf: nodeOf})
	if err != nil {
		t.Fatal(err)
	}
	instrumented := p0.Clone()
	fab := faultsim.NewInjector(faultsim.Config{Seed: 5}) // rate 0: never fires
	stInst, err := Refine(g, instrumented, c, Config{DRP: 4, Shuffles: 3, Seed: 77, KHop: 1, NodeOf: nodeOf, Fabric: fab})
	if err != nil {
		t.Fatal(err)
	}
	if assignHash(bare) != assignHash(instrumented) {
		t.Fatal("zero-fault fabric changed the decomposition")
	}
	if stInst.Faults != (FaultStats{VirtualTicks: stInst.Faults.VirtualTicks}) {
		t.Fatalf("zero-fault fabric recorded fault activity: %+v", stInst.Faults)
	}
	if stBare.LocationExchangeBytes != stInst.LocationExchangeBytes {
		t.Fatalf("exchange bytes drifted: %d vs %d", stBare.LocationExchangeBytes, stInst.LocationExchangeBytes)
	}
	if fc := fab.Counters(); fc.Total() != 0 {
		t.Fatalf("injector fired at rate 0: %+v", fc)
	}
}

// Scripted catastrophe: every group crashes in round 0. The round must
// commit with zero moves, later rounds proceed, and validity holds.
func TestAllGroupsCrashedRoundCommitsEmpty(t *testing.T) {
	g := gen.Mesh2D(40, 40)
	p := stream.HP(g, 8)
	var script []faultsim.Event
	for gi := 0; gi < 4; gi++ {
		script = append(script, faultsim.Event{Kind: faultsim.KindCrash, Round: 0, Index: gi})
	}
	fab := faultsim.NewInjector(faultsim.Config{Script: script})
	st, err := RefineUniform(g, p, Config{DRP: 4, Shuffles: 2, Seed: 5, Fabric: fab})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if st.Faults.CrashedGroups != 4 {
		t.Fatalf("crashed groups = %d, want 4", st.Faults.CrashedGroups)
	}
	if st.RoundGains[0] != 0 {
		t.Fatalf("round 0 realized gain %v with every group dead", st.RoundGains[0])
	}
	// Later rounds survived the massacre and did useful work.
	var later float64
	for _, rg := range st.RoundGains[1:] {
		later += rg
	}
	if later <= 0 {
		t.Fatal("no gain recovered after the crashed round")
	}
}

// A region reduce dropped beyond the retry budget ends shuffling early:
// Rounds reflects the committed rounds, and the result stays valid.
func TestExchangeAbortEndsShufflingEarly(t *testing.T) {
	g := gen.Mesh2D(40, 40)
	p := stream.HP(g, 8)
	pol := faultsim.DefaultPolicy()
	var script []faultsim.Event
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		script = append(script, faultsim.Event{Kind: faultsim.KindDrop, Round: 1, Index: 0, Attempt: attempt})
	}
	fab := faultsim.NewInjector(faultsim.Config{Script: script})
	st, err := RefineUniform(g, p, Config{DRP: 4, Shuffles: 5, Seed: 5, Fabric: fab})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if st.Faults.ExchangeAborts != 1 {
		t.Fatalf("exchange aborts = %d, want 1", st.Faults.ExchangeAborts)
	}
	if st.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (round-1 exchange died)", st.Rounds)
	}
	if st.Faults.ExchangeRetries != pol.MaxRetries {
		t.Fatalf("retries = %d, want %d", st.Faults.ExchangeRetries, pol.MaxRetries)
	}
	if st.Faults.BackoffTicks == 0 {
		t.Fatal("no backoff recorded")
	}
}

// Straggler semantics: a delay within the timeout only advances the
// virtual clock; a delay past it drops the group like a crash.
func TestStragglerTimeoutBoundary(t *testing.T) {
	g := gen.Mesh2D(30, 30)
	p0 := stream.HP(g, 8)
	pol := faultsim.DefaultPolicy()

	slowOK := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindStraggler, Round: 0, Index: 1, Delay: pol.RoundTimeout - 1},
	}})
	pA := p0.Clone()
	stA, err := RefineUniform(g, pA, Config{DRP: 4, Shuffles: 0, Seed: 3, Fabric: slowOK})
	if err != nil {
		t.Fatal(err)
	}
	if stA.Faults.DegradedGroups != 0 {
		t.Fatalf("in-budget straggler degraded a group: %+v", stA.Faults)
	}
	if stA.Faults.VirtualTicks != pol.RoundTimeout {
		t.Fatalf("virtual ticks = %d, want the straggler's %d", stA.Faults.VirtualTicks, pol.RoundTimeout)
	}

	tooSlow := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
		{Kind: faultsim.KindStraggler, Round: 0, Index: 1, Delay: pol.RoundTimeout},
	}})
	pB := p0.Clone()
	stB, err := RefineUniform(g, pB, Config{DRP: 4, Shuffles: 0, Seed: 3, Fabric: tooSlow})
	if err != nil {
		t.Fatal(err)
	}
	if stB.Faults.StragglerDrops != 1 || stB.Faults.DegradedGroups != 1 {
		t.Fatalf("over-budget straggler not dropped: %+v", stB.Faults)
	}
	if err := pB.Validate(g); err != nil {
		t.Fatal(err)
	}

	// The no-fault baseline strictly out-gains the degraded run or ties:
	// the dropped group's moves are pure quality loss.
	pC := p0.Clone()
	stC, err := RefineUniform(g, pC, Config{DRP: 4, Shuffles: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stB.Gain > stC.Gain {
		t.Fatalf("degraded run gained %v > fault-free %v", stB.Gain, stC.Gain)
	}
}
