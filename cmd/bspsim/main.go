// Command bspsim runs a distributed graph application (BFS, SSSP, WCC,
// PageRank, or LPA) on the BSP cluster simulator and reports the job
// execution time and communication-volume breakdown — the measurement
// side of the paper's §7.2.
//
// Usage:
//
//	bspsim -in graph.metis -app bfs -cluster pitt -nodes 3 \
//	       -partitioner dg -refine paragon -lambda 1 -sources 15
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"paragon/internal/apps"
	"paragon/internal/aragonlb"
	"paragon/internal/bsp"
	"paragon/internal/graph"
	"paragon/internal/metis"
	"paragon/internal/paragon"
	"paragon/internal/parmetis"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func main() {
	in := flag.String("in", "", "input graph (required)")
	format := flag.String("format", "metis", "input format: metis, edgelist, or binary")
	app := flag.String("app", "bfs", "application: bfs, sssp, wcc, pagerank, lpa, kcore, triangles")
	clusterName := flag.String("cluster", "pitt", "cluster model: pitt or gordon")
	nodes := flag.Int("nodes", 3, "compute nodes")
	partitioner := flag.String("partitioner", "dg", "initial partitioner: hp, dg, ldg, fennel, metis, metis-kway")
	refine := flag.String("refine", "none", "refinement: none, paragon, uniparagon, parmetis, aragonlb")
	lambda := flag.Float64("lambda", 0, "contention degree λ for paragon refinement")
	drp := flag.Int("drp", 8, "paragon degree of parallelism")
	shuffles := flag.Int("shuffles", 8, "paragon shuffle rounds")
	sourceCount := flag.Int("sources", 5, "random sources for bfs/sssp")
	iters := flag.Int("iters", 10, "iterations for pagerank/lpa")
	kcore := flag.Int("k", 3, "k for the kcore app")
	group := flag.Int("group", 8, "message grouping size")
	contention := flag.Float64("contention", 0.3, "simulator memory-contention factor")
	seed := flag.Int64("seed", 42, "seed")
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	var g *graph.Graph
	switch *format {
	case "metis":
		g, err = graph.ReadMETIS(f)
	case "edgelist":
		g, err = graph.ReadEdgeList(f)
	case "binary":
		g, err = graph.ReadBinary(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}

	var cl *topology.Cluster
	switch *clusterName {
	case "pitt":
		cl = topology.PittCluster(*nodes)
	case "gordon":
		cl = topology.GordonCluster(*nodes)
	default:
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}
	k := cl.TotalCores()

	var p *partition.Partitioning
	switch *partitioner {
	case "hp":
		p = stream.HP(g, int32(k))
	case "dg":
		p = stream.DG(g, int32(k), stream.DefaultOptions())
	case "ldg":
		p = stream.LDG(g, int32(k), stream.DefaultOptions())
	case "fennel":
		p = stream.Fennel(g, int32(k), stream.DefaultOptions())
	case "metis":
		p = metis.Partition(g, int32(k), metis.Options{Seed: *seed})
	case "metis-kway":
		p = metis.PartitionKWay(g, int32(k), metis.Options{Seed: *seed})
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *partitioner))
	}

	switch *refine {
	case "none":
	case "paragon":
		c, err := cl.PartitionCostMatrix(k, *lambda)
		if err != nil {
			fatal(err)
		}
		nodeOf, _ := cl.NodeOf(k)
		st, err := paragon.Refine(g, p, c, paragon.Config{
			DRP: *drp, Shuffles: *shuffles, Seed: *seed, NodeOf: nodeOf,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("paragon refinement: %d moves, gain %.0f, %s\n", st.Moves, st.Gain, st.RefinementTime.Round(0))
	case "uniparagon":
		st, err := paragon.RefineUniform(g, p, paragon.Config{
			DRP: *drp, Shuffles: *shuffles, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("uniparagon refinement: %d moves, %s\n", st.Moves, st.RefinementTime.Round(0))
	case "parmetis":
		p2, err := parmetis.Repartition(g, p, parmetis.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		p = p2
	case "aragonlb":
		c, err := cl.PartitionCostMatrix(k, *lambda)
		if err != nil {
			fatal(err)
		}
		st, err := aragonlb.Repartition(g, p, c, aragonlb.Config{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("aragonlb: %d rebalance + %d refine moves, shipped %d bytes, %s\n",
			st.RebalanceMoves, st.RefineMoves, st.ShippedVolume, st.Elapsed.Round(0))
	default:
		fatal(fmt.Errorf("unknown refinement %q", *refine))
	}

	engine, err := bsp.NewEngine(g, p, cl, bsp.Options{
		MsgGroupSize: *group, MemoryContention: *contention,
	})
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	var totalJET float64
	var vol bsp.VolumeBreakdown
	var steps int
	runs := 0
	accumulate := func(res bsp.Result) {
		totalJET += res.JET
		steps += res.Supersteps
		vol.IntraSocket += res.Volume.IntraSocket
		vol.InterSocket += res.Volume.InterSocket
		vol.InterNode += res.Volume.InterNode
		runs++
	}
	switch strings.ToLower(*app) {
	case "bfs", "sssp":
		for i := 0; i < *sourceCount; i++ {
			src := int32(rng.Intn(int(g.NumVertices())))
			var res bsp.Result
			if *app == "bfs" {
				_, res, err = apps.BFS(engine, g, src)
			} else {
				_, res, err = apps.SSSP(engine, g, src)
			}
			if err != nil {
				fatal(err)
			}
			accumulate(res)
		}
	case "wcc":
		_, res, err := apps.WCC(engine, g)
		if err != nil {
			fatal(err)
		}
		accumulate(res)
	case "pagerank":
		_, res, err := apps.PageRank(engine, g, *iters)
		if err != nil {
			fatal(err)
		}
		accumulate(res)
	case "lpa":
		_, res, err := apps.LabelPropagation(engine, g, *iters)
		if err != nil {
			fatal(err)
		}
		accumulate(res)
	case "kcore":
		members, res, err := apps.KCore(engine, g, *kcore)
		if err != nil {
			fatal(err)
		}
		var inCore int64
		for _, m := range members {
			inCore += m
		}
		fmt.Printf("%d-core members: %d of %d vertices\n", *kcore, inCore, g.NumVertices())
		accumulate(res)
	case "triangles":
		total, res, err := apps.TriangleCount(engine, g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("triangles: %d\n", total)
		accumulate(res)
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	fmt.Printf("app=%s cluster=%s(%d nodes, %d ranks) partitioner=%s refine=%s\n",
		*app, cl.Name, *nodes, k, *partitioner, *refine)
	fmt.Printf("runs=%d supersteps=%d JET=%.0f (model units)\n", runs, steps, totalJET)
	fmt.Printf("volume KB: intra-socket %d, inter-socket %d, inter-node %d\n",
		vol.IntraSocket/1024, vol.InterSocket/1024, vol.InterNode/1024)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bspsim: %v\n", err)
	os.Exit(1)
}
