package partition

import (
	"fmt"
	"math/bits"
	"slices"

	"paragon/internal/graph"
)

// This file holds the incrementally maintained hot-path data structures
// behind the ARAGON/PARAGON refiners. The naive refinement loop re-scans
// every vertex of the graph for every partition pair — O(k²·|V|) of pure
// scanning per sweep. The Index replaces those scans with per-partition
// vertex buckets plus a per-vertex external-neighbor count, both updated
// in O(deg(v)) on every Move, so enumerating the candidates of a pair
// costs O(|P_i| + |P_j|) instead of O(|V|). See DESIGN.md §"Hot-path
// data structures" for the complexity table and the Move invariants.

// PairIndexer is the minimal surface the pairwise refiner needs: candidate
// enumeration for a partition pair and delta-maintained vertex moves.
// Index (full boundary tracking) and GroupIndex (a group server's private
// bucket view) both implement it.
type PairIndexer interface {
	// Partitioning returns the decomposition the indexer maintains;
	// Move must keep its Assign array in sync.
	Partitioning() *Partitioning
	// AppendPairCandidates appends the movable candidates of the pair
	// (pi, pj) to dst in ascending vertex order and returns dst. With a
	// non-nil mask, the candidates are exactly the members of the two
	// partitions whose mask bit is set; with a nil mask they are the
	// pair's boundary vertices.
	AppendPairCandidates(dst []int32, pi, pj int32, allowed *Bitset) []int32
	// Move reassigns v, updating the underlying partitioning and every
	// incrementally maintained structure.
	Move(v, to int32)
}

// Index is the full incremental refinement index over a partitioning:
// per-partition vertex buckets, per-vertex external-neighbor counts (the
// boundary test), and per-partition incident-edge sums (ps of Eq. 10).
//
// Invariants preserved by Move, for every vertex v and partition q:
//
//	buckets[q] holds exactly {v : Assign[v] == q}, each at pos[v];
//	ext[v] == |{u ∈ N(v) : Assign[u] != Assign[v]}|;
//	incident[q] == Σ_{v ∈ buckets[q]} deg(v).
//
// All queries are O(1) or output-sensitive; Move is O(deg(v)).
type Index struct {
	g        *graph.Graph
	p        *Partitioning
	ext      []int32   // per-vertex count of neighbors outside own partition
	buckets  [][]int32 // per-partition vertex lists (unordered, swap-delete)
	pos      []int32   // vertex -> position in its bucket
	incident []int64   // per-partition Σ deg(v)
}

// BuildIndex constructs the index for p over g in O(|V| + |E|). The index
// keeps references to both; all subsequent moves must go through Move so
// the maintained structures stay consistent with p.Assign.
func BuildIndex(g *graph.Graph, p *Partitioning) *Index {
	n := g.NumVertices()
	ix := &Index{
		g:        g,
		p:        p,
		ext:      make([]int32, n),
		buckets:  make([][]int32, p.K),
		pos:      make([]int32, n),
		incident: make([]int64, p.K),
	}
	// Exact-size bucket preallocation: a counting pass first, then one
	// allocation per bucket with growth slack. Appending into nil
	// buckets instead costs O(K·log(|V|/K)) reallocations, which shows
	// up as allocation counts that grow with the graph size.
	cnt := make([]int32, p.K)
	for v := int32(0); v < n; v++ {
		cnt[p.Assign[v]]++
	}
	for q := range ix.buckets {
		ix.buckets[q] = make([]int32, 0, bucketCap(cnt[q]))
	}
	ix.Rebuild()
	return ix
}

// Rebuild re-derives every maintained structure from the current
// p.Assign in O(|V| + |E|), reusing all backing arrays (bucket capacity
// only ever grows). It is how a pooled member scratch of the portfolio
// layer re-seeds an Index after overwriting Assign wholesale — cheaper
// than BuildIndex by all the allocations, and valid for the same (g, p)
// the index was built over.
func (ix *Index) Rebuild() {
	for q := range ix.buckets {
		ix.buckets[q] = ix.buckets[q][:0]
		ix.incident[q] = 0
	}
	n := ix.g.NumVertices()
	for v := int32(0); v < n; v++ {
		pv := ix.p.Assign[v]
		ix.pos[v] = int32(len(ix.buckets[pv]))
		ix.buckets[pv] = append(ix.buckets[pv], v)
		ix.incident[pv] += int64(ix.g.Degree(v))
		var ext int32
		for _, u := range ix.g.Neighbors(v) {
			if ix.p.Assign[u] != pv {
				ext++
			}
		}
		ix.ext[v] = ext
	}
}

// bucketCap adds headroom for refinement moves on top of a bucket's
// seeded size, so steady-state rounds rarely reallocate.
func bucketCap(n int32) int32 { return n + n/8 + 8 }

// Partitioning returns the decomposition this index maintains.
func (ix *Index) Partitioning() *Partitioning { return ix.p }

// Graph returns the graph snapshot this index currently targets.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Retarget switches the index to a new graph snapshot over the same
// vertex-id space, delta-repairing only the dirty vertices instead of
// the O(|V| + |E|) Rebuild — the operation behind the streaming-ingest
// session's "reuse the live index across epochs" contract. dirty must
// list, without duplicates, every vertex whose adjacency differs
// between the old snapshot and g (both endpoints of every added or
// removed edge); vertices outside dirty are assumed bit-identical in
// both snapshots. Cost: O(Σ_{v ∈ dirty} (deg_old(v) + deg_new(v))).
//
// Buckets and positions are untouched (membership is a function of the
// partitioning, not the graph); the per-partition incident-edge sums
// take the degree delta of each dirty vertex and the external-neighbor
// counts of dirty vertices are recomputed against g. A duplicate entry
// in dirty would double-count its degree delta, which is why the
// contract forbids duplicates rather than hiding them behind a set.
func (ix *Index) Retarget(g *graph.Graph, dirty []int32) error {
	old := ix.g
	if g.NumVertices() != old.NumVertices() {
		return fmt.Errorf("partition: Retarget to %d vertices, index holds %d", g.NumVertices(), old.NumVertices())
	}
	for _, v := range dirty {
		ix.incident[ix.p.Assign[v]] += int64(g.Degree(v)) - int64(old.Degree(v))
	}
	ix.g = g
	for _, v := range dirty {
		pv := ix.p.Assign[v]
		var ext int32
		for _, u := range g.Neighbors(v) {
			if ix.p.Assign[u] != pv {
				ext++
			}
		}
		ix.ext[v] = ext
	}
	return nil
}

// Move reassigns v to partition `to` in O(deg(v)): the bucket membership,
// the external-neighbor counts of v and all its neighbors, and the
// incident-edge sums are all delta-updated. A self-move is a no-op.
func (ix *Index) Move(v, to int32) {
	from := ix.p.Assign[v]
	if from == to {
		return
	}
	ix.bucketRemove(v, from)
	ix.pos[v] = int32(len(ix.buckets[to]))
	ix.buckets[to] = append(ix.buckets[to], v)
	deg := int64(ix.g.Degree(v))
	ix.incident[from] -= deg
	ix.incident[to] += deg
	ix.p.Assign[v] = to
	var extV int32
	for _, u := range ix.g.Neighbors(v) {
		switch ix.p.Assign[u] {
		case from:
			ix.ext[u]++ // v left u's partition
		case to:
			ix.ext[u]-- // v joined u's partition
		}
		if ix.p.Assign[u] != to {
			extV++
		}
	}
	ix.ext[v] = extV
}

func (ix *Index) bucketRemove(v, q int32) {
	b := ix.buckets[q]
	i := ix.pos[v]
	last := int32(len(b)) - 1
	w := b[last]
	b[i] = w
	ix.pos[w] = i
	ix.buckets[q] = b[:last]
}

// IsBoundary reports whether v has a neighbor outside its own partition,
// in O(1) from the maintained count.
func (ix *Index) IsBoundary(v int32) bool { return ix.ext[v] > 0 }

// ExternalNeighbors returns the maintained count of v's neighbors outside
// its own partition.
func (ix *Index) ExternalNeighbors(v int32) int32 { return ix.ext[v] }

// Boundary returns every boundary vertex in ascending order — one O(|V|)
// sweep over the maintained counts, with no edge traversal.
func (ix *Index) Boundary() []int32 { return ix.AppendBoundary(nil) }

// AppendBoundary appends every boundary vertex to dst in ascending order
// and returns dst, so per-round callers can reuse one backing array.
func (ix *Index) AppendBoundary(dst []int32) []int32 {
	for v := int32(0); v < int32(len(ix.ext)); v++ {
		if ix.ext[v] > 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// PartitionVertices returns the vertices of partition q in bucket order
// (unordered). The slice aliases internal storage: it must not be modified
// and is invalidated by the next Move.
func (ix *Index) PartitionVertices(q int32) []int32 { return ix.buckets[q] }

// IncidentEdges returns a copy of the maintained per-partition
// incident-edge sums — the ps[i] of Eq. 10, without the O(|V|) rescan of
// Partitioning.IncidentEdges.
func (ix *Index) IncidentEdges() []int64 {
	return ix.AppendIncidentEdges(nil)
}

// AppendIncidentEdges appends the maintained per-partition incident-edge
// sums to dst and returns dst, so per-round callers can reuse one
// backing array.
func (ix *Index) AppendIncidentEdges(dst []int64) []int64 {
	return append(dst, ix.incident...)
}

// PairCandidates returns the boundary vertices of the pair (pi, pj) in
// ascending order.
func (ix *Index) PairCandidates(pi, pj int32) []int32 {
	return ix.AppendPairCandidates(nil, pi, pj, nil)
}

// AppendPairCandidates implements PairIndexer: candidates are gathered
// from the two buckets — O(|P_i| + |P_j| + c·log c) — instead of a full
// vertex scan, and returned in ascending vertex order (the order the
// scan-based enumeration produced, which the refiner's heap tie-breaking
// depends on).
func (ix *Index) AppendPairCandidates(dst []int32, pi, pj int32, allowed *Bitset) []int32 {
	n0 := len(dst)
	for _, b := range [2][]int32{ix.buckets[pi], ix.buckets[pj]} {
		for _, v := range b {
			if allowed != nil {
				if allowed.Get(v) {
					dst = append(dst, v)
				}
			} else if ix.ext[v] > 0 {
				dst = append(dst, v)
			}
		}
	}
	slices.Sort(dst[n0:])
	return dst
}

// Validate checks every maintained invariant against a from-scratch
// rebuild. O(|V| + |E|); intended for tests.
func (ix *Index) Validate() error {
	fresh := BuildIndex(ix.g, ix.p.Clone())
	for v := range ix.ext {
		if ix.ext[v] != fresh.ext[v] {
			return fmt.Errorf("index: ext[%d] = %d, want %d", v, ix.ext[v], fresh.ext[v])
		}
	}
	for q := int32(0); q < ix.p.K; q++ {
		if ix.incident[q] != fresh.incident[q] {
			return fmt.Errorf("index: incident[%d] = %d, want %d", q, ix.incident[q], fresh.incident[q])
		}
		a := append([]int32(nil), ix.buckets[q]...)
		b := append([]int32(nil), fresh.buckets[q]...)
		slices.Sort(a)
		slices.Sort(b)
		if !slices.Equal(a, b) {
			return fmt.Errorf("index: bucket %d membership diverged", q)
		}
	}
	for v, q := range ix.p.Assign {
		if ix.pos[v] < 0 || ix.pos[v] >= int32(len(ix.buckets[q])) || ix.buckets[q][ix.pos[v]] != int32(v) {
			return fmt.Errorf("index: pos[%d] inconsistent with bucket %d", v, q)
		}
	}
	return nil
}

// Shadow is the pair-level scheduler's copy-free round view: one mutable
// bucket shadow of a master Index, shared by every group server of a
// round. Groups own disjoint partitions and every tournament wave's
// pairs are partition-disjoint, so concurrent pair refinements touch
// disjoint buckets, disjoint pos entries, and disjoint Assign entries of
// the shared view — no per-group copies, no synchronization beyond the
// scheduler's wave barriers. It tracks no boundary counts — scheduled
// refinement always runs under the round's k-hop allowed mask, which
// subsumes the boundary test — so Move is O(1), not O(deg).
//
// Reset reseeds the shadow from the master index while reusing every
// backing array, so steady-state rounds allocate nothing.
type Shadow struct {
	p       *Partitioning
	buckets [][]int32
	pos     []int32
}

// NewShadow builds an empty shadow over view; view.Assign is the shared
// live assignment array the round's pairs mutate. Call Reset before use.
func NewShadow(view *Partitioning, n int32) *Shadow {
	return &Shadow{
		p:       view,
		buckets: make([][]int32, view.K),
		pos:     make([]int32, n),
	}
}

// Reset reseeds the shadow's buckets and positions from the master index
// in O(|V|), reusing (and exactly pre-sizing) the bucket backing arrays.
// The caller must bring the view's Assign array in sync with the master
// separately. Under the delta round-sync discipline (DESIGN.md §14) the
// scheduler calls this once per Refine, not once per round: the commit
// loop leaves the shadow and the master bit-identical, so later rounds
// start from the live shadow state.
func (s *Shadow) Reset(ix *Index) {
	copy(s.pos, ix.pos)
	for q := range s.buckets {
		b := ix.buckets[q]
		if cap(s.buckets[q]) < len(b) {
			s.buckets[q] = make([]int32, 0, bucketCap(int32(len(b))))
		}
		s.buckets[q] = append(s.buckets[q][:0], b...)
	}
}

// Partitioning returns the shared round view of the decomposition.
func (s *Shadow) Partitioning() *Partitioning { return s.p }

// Move implements PairIndexer in O(1). Concurrent calls are safe iff
// they move vertices of disjoint partition pairs, which the tournament
// schedule guarantees within a wave.
func (s *Shadow) Move(v, to int32) {
	from := s.p.Assign[v]
	if from == to {
		return
	}
	b := s.buckets[from]
	i := s.pos[v]
	last := int32(len(b)) - 1
	w := b[last]
	b[i] = w
	s.pos[w] = i
	s.buckets[from] = b[:last]
	s.pos[v] = int32(len(s.buckets[to]))
	s.buckets[to] = append(s.buckets[to], v)
	s.p.Assign[v] = to
}

// AppendPairCandidates implements PairIndexer. A Shadow tracks no
// boundary counts, so the mask is mandatory.
func (s *Shadow) AppendPairCandidates(dst []int32, pi, pj int32, allowed *Bitset) []int32 {
	if allowed == nil {
		panic("partition: Shadow.AppendPairCandidates requires an allowed mask (shadows keep no boundary counts)")
	}
	n0 := len(dst)
	for _, b := range [2][]int32{s.buckets[pi], s.buckets[pj]} {
		for _, v := range b {
			if allowed.Get(v) {
				dst = append(dst, v)
			}
		}
	}
	slices.Sort(dst[n0:])
	return dst
}

// ExternalDegreesSparse is the sparse-reset form of ExternalDegreesInto:
// buf (length >= K) must be all-zero on entry; d_ext(v, ·) is accumulated
// into it and the distinct partitions touched are appended to tlist,
// ascending, and returned. mask is a caller-owned bitmap of at least
// ⌈K/64⌉ words, all-zero on entry and restored to all-zero on return — it
// is how the touched set comes out sorted without a per-call sort, which
// profiles as the dominant cost of gain evaluation otherwise. The caller
// reads buf at the returned indices and must re-zero exactly those
// entries before the next call. One gain evaluation over the result is
// O(deg(v) + K/64 + t) with t <= min(deg, K), instead of the
// O(deg(v) + K) of a dense zero-and-refill.
func ExternalDegreesSparse(g *graph.Graph, p *Partitioning, v int32, buf []int64, mask []uint64, tlist []int32) []int32 {
	adj := g.Neighbors(v)
	w := g.EdgeWeights(v)
	w = w[:len(adj)]
	for i, u := range adj {
		pu := p.Assign[u]
		buf[pu] += int64(w[i])
		mask[pu>>6] |= 1 << (pu & 63)
	}
	return drainMask(mask, tlist)
}

// ExternalDegreesSparseFrozen is ExternalDegreesSparse under the
// tournament scheduler's dual-view read rule: a neighbor whose frozen
// owner is pi or pj belongs to the calling pair — only that pair moves
// it this wave, so its live entry in cur is read race-free — while every
// other neighbor is read from frozen, whose entries change only at wave
// barriers. The result is independent of how concurrently executing
// pairs interleave.
func ExternalDegreesSparseFrozen(g *graph.Graph, cur, frozen []int32, v, pi, pj int32, buf []int64, mask []uint64, tlist []int32) []int32 {
	adj := g.Neighbors(v)
	w := g.EdgeWeights(v)
	w = w[:len(adj)]
	for i, u := range adj {
		pu := frozen[u]
		if pu == pi || pu == pj {
			pu = cur[u]
		}
		buf[pu] += int64(w[i])
		mask[pu>>6] |= 1 << (pu & 63)
	}
	return drainMask(mask, tlist)
}

// drainMask appends the set bits of mask to tlist in ascending order and
// clears them — the sort-free path that keeps gain summation in
// ascending partition order.
func drainMask(mask []uint64, tlist []int32) []int32 {
	for wi, b := range mask {
		if b == 0 {
			continue
		}
		mask[wi] = 0
		base := int32(wi << 6)
		for b != 0 {
			tlist = append(tlist, base+int32(bits.TrailingZeros64(b)))
			b &= b - 1
		}
	}
	return tlist
}

// MaskWords returns the bitmap length ExternalDegreesSparse needs for k
// partitions.
func MaskWords(k int32) int { return (int(k) + 63) / 64 }
