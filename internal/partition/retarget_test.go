package partition

import (
	"testing"

	"paragon/internal/gen"
	"paragon/internal/graph"
)

// Retarget against a churned snapshot must leave the index bit-identical
// to a from-scratch BuildIndex over the new graph — ext counts, incident
// sums, and bucket membership all repaired through the dirty list alone.
func TestRetargetMatchesRebuild(t *testing.T) {
	g0 := gen.RMAT(1200, 6000, 0.57, 0.19, 0.19, 17)
	k := int32(8)
	p := New(k, g0.NumVertices())
	for v := range p.Assign {
		p.Assign[v] = int32(v) % k
	}
	ix := BuildIndex(g0, p)

	// Churn through an overlay: adds and removes, dirty = endpoints.
	o := graph.NewOverlay(g0)
	dirtySet := make(map[int32]bool)
	ops := []struct {
		add  bool
		u, v int32
	}{
		{true, 3, 977}, {true, 14, 500}, {true, 201, 202}, {true, 7, 8},
		{false, 0, -1}, // placeholder, replaced below with real edges
	}
	ops = ops[:4]
	// Remove the first incident edge of a few vertices.
	for _, v := range []int32{5, 42, 300, 999} {
		if g0.Degree(v) == 0 {
			continue
		}
		ops = append(ops, struct {
			add  bool
			u, v int32
		}{false, v, g0.Neighbors(v)[0]})
	}
	for _, op := range ops {
		if op.add {
			if o.HasEdge(op.u, op.v) {
				continue
			}
			if err := o.AddEdge(op.u, op.v, 1); err != nil {
				t.Fatalf("add (%d,%d): %v", op.u, op.v, err)
			}
		} else {
			if !o.HasEdge(op.u, op.v) {
				continue
			}
			o.RemoveEdge(op.u, op.v)
		}
		dirtySet[op.u] = true
		dirtySet[op.v] = true
	}
	g1 := o.Materialize()
	if g1.NumVertices() != g0.NumVertices() {
		t.Fatal("overlay changed the vertex count")
	}
	var dirty []int32
	for v := int32(0); v < g0.NumVertices(); v++ {
		if dirtySet[v] {
			dirty = append(dirty, v)
		}
	}

	if err := ix.Retarget(g1, dirty); err != nil {
		t.Fatalf("Retarget: %v", err)
	}
	if ix.Graph() != g1 {
		t.Fatal("Graph() does not return the new snapshot")
	}
	if err := ix.Validate(); err != nil {
		t.Fatalf("retargeted index invalid: %v", err)
	}

	fresh := BuildIndex(g1, p.Clone())
	for v := int32(0); v < g1.NumVertices(); v++ {
		if ix.ExternalNeighbors(v) != fresh.ExternalNeighbors(v) {
			t.Fatalf("ext[%d] = %d, want %d", v, ix.ExternalNeighbors(v), fresh.ExternalNeighbors(v))
		}
	}
	a, b := ix.IncidentEdges(), fresh.IncidentEdges()
	for q := range a {
		if a[q] != b[q] {
			t.Fatalf("incident[%d] = %d, want %d", q, a[q], b[q])
		}
	}
}

// Retargeting and then Moving must compose: the O(deg) Move invariants
// hold on the new snapshot.
func TestRetargetThenMove(t *testing.T) {
	g0 := gen.Mesh2D(20, 20)
	p := New(4, g0.NumVertices())
	for v := range p.Assign {
		p.Assign[v] = int32(v) % 4
	}
	ix := BuildIndex(g0, p)

	o := graph.NewOverlay(g0)
	if err := o.AddEdge(0, 399, 1); err != nil {
		t.Fatal(err)
	}
	o.RemoveEdge(0, 1)
	g1 := o.Materialize()
	if err := ix.Retarget(g1, []int32{0, 1, 399}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int32{0, 1, 17, 399, 200} {
		ix.Move(v, (p.Assign[v]+1)%4)
	}
	if err := ix.Validate(); err != nil {
		t.Fatalf("index invalid after retarget+moves: %v", err)
	}
}

func TestRetargetRejectsSizeMismatch(t *testing.T) {
	g0 := gen.Mesh2D(5, 5)
	p := New(2, g0.NumVertices())
	ix := BuildIndex(g0, p)
	if err := ix.Retarget(gen.Mesh2D(6, 5), nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
