// Package obs is the determinism-safe observability layer of the
// pipeline: a structured event tracer and a metrics registry that the
// refinement driver (internal/paragon), the exchange strategies
// (internal/exchange), the migration service (internal/migrate), and the
// fault injector (internal/faultsim) thread their per-round, per-wave,
// and per-message telemetry through, plus sinks (JSONL trace files,
// Prometheus-style text exposition, a human per-phase summary table).
//
// The design constraint that shapes everything here is the determinism
// contract of DESIGN.md §10: a seeded run must stay bit-identical, and
// that now includes its trace and metrics output. Three rules follow:
//
//   - No wall clock. Events are stamped with the faultsim virtual tick
//     clock (injected as a plain func() int64) plus a monotonic sequence
//     number. obs is part of paragonlint's wallclock kernel set; if a
//     sink ever wants wall-clock context it must live with the caller,
//     outside the serialized stream, or the Workers=1 and Workers=8
//     trace files stop comparing equal.
//
//   - Worker emission is staged, not direct. Code running on a worker
//     pool appends events to a per-worker Buf and the coordinator
//     commits the staged spans in task order at the next barrier —
//     the same discipline as the move arenas of
//     internal/paragon/schedule.go. Direct Tracer.Emit is reserved for
//     coordinator (single-goroutine) call sites.
//
//   - Metrics are order-free. Counters and histograms accumulate int64
//     quantities with atomic adds — associative, so any interleaving of
//     worker increments yields the same totals. Gauges carry float64
//     values but must only be Set from coordinator call sites with
//     deterministically computed values (e.g. a fixed-order float
//     reduction), never accumulated concurrently.
//
// Everything is stdlib-only and allocation-conscious: a nil *Tracer or
// nil *Registry disables the layer entirely (every emission site is
// nil-guarded), and an enabled tracer writes into a preallocated ring.
package obs

import (
	"sync"
)

// Kind enumerates the typed trace events. The coordinate fields of Event
// (Round, A, B, N, M, X) are interpreted per kind as documented on each
// constant.
type Kind uint8

const (
	// KindRefineStart opens a Refine call: A = master server (Eq. 11),
	// B = effective DRP, N = partition count k.
	KindRefineStart Kind = iota
	// KindRoundStart opens one refinement round: N = group count.
	KindRoundStart
	// KindGroupCrashed is a fault fate: group A's server crashed in
	// Round; its whole tournament is discarded.
	KindGroupCrashed
	// KindGroupStraggler is a fault fate: group A's server was delayed
	// N virtual ticks past the round timeout and its outcome dropped.
	KindGroupStraggler
	// KindWaveScheduled announces tournament wave A of Round with N
	// partition-disjoint pairs about to execute.
	KindWaveScheduled
	// KindPairRefined reports one refined partition pair (A, B): N kept
	// moves, X realized Eq. 5 gain. Emitted from worker goroutines via
	// per-worker Bufs, committed in task order at the wave barrier.
	KindPairRefined
	// KindWaveCommitted closes wave A of Round: N moves entered the
	// frozen view at the barrier.
	KindWaveCommitted
	// KindShipAccounted reports the round's boundary-shipping volume:
	// N vertices, M accompanying half-edges.
	KindShipAccounted
	// KindRoundEnd closes a round: N kept moves, X realized gain.
	KindRoundEnd
	// KindRegionSent reports one location-exchange region reduce that
	// was ultimately delivered: region A of Round, N bytes spent
	// (including lost attempts), M retransmissions.
	KindRegionSent
	// KindRegionRetry reports one dropped region reduce being retried:
	// region A of Round, attempt B, N backoff ticks.
	KindRegionRetry
	// KindRegionAbort reports region A of Round dropped beyond the retry
	// budget after B attempts; shuffle refinement ends early.
	KindRegionAbort
	// KindMigrationPlan opens a migration: N planned moves.
	KindMigrationPlan
	// KindMigrationCommit closes a committed migration: N moved
	// vertices, M payload bytes.
	KindMigrationCommit
	// KindMigrationRollback closes an aborted migration: N vertices
	// restored to their senders, A the plan index of the abort (-1 for a
	// protocol violation).
	KindMigrationRollback
	// KindMigrationSweep reports the final migration bookkeeping of a
	// Refine call: N vertices whose owner changed, X Eq. 3 cost.
	KindMigrationSweep
	// KindRefineEnd closes a Refine call: N total kept moves, X total
	// realized gain.
	KindRefineEnd
	// KindEpochPrepare reports a directory epoch publish whose prepare
	// record reached the journal: N = target epoch, M = delta moves.
	KindEpochPrepare
	// KindEpochCommit reports a committed directory epoch flip: N = the
	// now-live epoch, M = delta moves applied.
	KindEpochCommit
	// KindEpochAbort reports a failed directory epoch publish: N = the
	// epoch that was being published, A = the phase that failed
	// (0 prepare append, 1 publisher crash, 2 commit append), B = write
	// attempts spent. The previous epoch stays live.
	KindEpochAbort
	// KindDirRecovered reports a directory rebuilt from its journal:
	// N = last committed epoch recovered, M = torn tail bytes discarded.
	KindDirRecovered
	// KindPortfolioStart opens a portfolio refinement: N = member count,
	// M = combine width (top members the combine operator overlays).
	KindPortfolioStart
	// KindMemberForfeit reports a portfolio member excluded by the fault
	// fabric before running: A = member id.
	KindMemberForfeit
	// KindMemberRefined reports a completed portfolio member: A = member
	// id, N = kept moves, X = the member's Eq. 2+3 selection cost.
	KindMemberRefined
	// KindPortfolioCombine reports the combine operator's overlay pass:
	// N = disagreement vertices between the two best members, M = moves
	// kept by the boundary-restricted rounds, X = the combined cost.
	KindPortfolioCombine
	// KindPortfolioSelect closes a portfolio refinement: A = winning
	// member id (-1 if every member forfeited), B = 1 if the combined
	// decomposition beat the winner (0 otherwise), X = the selected cost.
	KindPortfolioSelect
	// KindIngestBatch closes one ingested batch of the streaming
	// session: Round = batch sequence, N = churn ops applied, M = vertex
	// arrivals placed, A = active vertex count, X = live Eq. 4 skewness.
	KindIngestBatch
	// KindEpochTrigger reports the trigger decision that launched a
	// session refinement epoch: Round = batch sequence, A = reason code
	// (0 skew, 1 churn, 2 staleness), X = the offending metric value.
	KindEpochTrigger
	// KindEpochLaunch opens a session refinement epoch: Round = batch
	// sequence at launch, A = epoch launch index, N = snapshot edges.
	KindEpochLaunch
	// KindEpochMerge closes a session refinement epoch at its join
	// barrier: Round = batch sequence at join, A = 1 committed / 0
	// aborted, N = the directory epoch now live, M = moved vertices,
	// X = the live Eq. 2 comm cost after the merge (0 on abort).
	KindEpochMerge

	numKinds // sentinel; keep last
)

var kindNames = [numKinds]string{
	KindRefineStart:       "refine_start",
	KindRoundStart:        "round_start",
	KindGroupCrashed:      "group_crashed",
	KindGroupStraggler:    "group_straggler",
	KindWaveScheduled:     "wave_scheduled",
	KindPairRefined:       "pair_refined",
	KindWaveCommitted:     "wave_committed",
	KindShipAccounted:     "ship_accounted",
	KindRoundEnd:          "round_end",
	KindRegionSent:        "region_sent",
	KindRegionRetry:       "region_retry",
	KindRegionAbort:       "region_abort",
	KindMigrationPlan:     "migration_plan",
	KindMigrationCommit:   "migration_commit",
	KindMigrationRollback: "migration_rollback",
	KindMigrationSweep:    "migration_sweep",
	KindRefineEnd:         "refine_end",
	KindEpochPrepare:      "epoch_prepare",
	KindEpochCommit:       "epoch_commit",
	KindEpochAbort:        "epoch_abort",
	KindDirRecovered:      "dir_recovered",
	KindPortfolioStart:    "portfolio_start",
	KindMemberForfeit:     "member_forfeit",
	KindMemberRefined:     "member_refined",
	KindPortfolioCombine:  "portfolio_combine",
	KindPortfolioSelect:   "portfolio_select",
	KindIngestBatch:       "ingest_batch",
	KindEpochTrigger:      "epoch_trigger",
	KindEpochLaunch:       "epoch_launch",
	KindEpochMerge:        "epoch_merge",
}

// String returns the snake_case event name used by the JSONL sink.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. Seq and Tick are assigned by the Tracer at
// commit time; the remaining fields are generic coordinates whose
// meaning is fixed per Kind (see the Kind constants). Round is -1 for
// run-scoped events that belong to no refinement round.
type Event struct {
	Seq   uint64  // monotonic commit order, dense from 0
	Tick  int64   // virtual clock at commit (never wall clock)
	Kind  Kind    //
	Round int32   // refinement round / epoch, -1 = run scope
	A     int32   // per-kind coordinate (group, wave, region, pair i, …)
	B     int32   // per-kind coordinate (pair j, attempt, …)
	N     int64   // per-kind count (moves, bytes, ticks, …)
	M     int64   // per-kind secondary count (edges, retries, …)
	X     float64 // per-kind measure (gain, cost)
}

// Tracer is a bounded ring of Events. When the ring fills, the oldest
// events are overwritten (and counted in Dropped) — drop-oldest is
// itself deterministic, because which events drop depends only on the
// emission sequence, never on timing.
//
// Concurrency: Emit/CommitStaged are safe for concurrent use, but
// sequence numbers then reflect interleaving — the pipeline only ever
// emits from the coordinator goroutine and routes worker emission
// through Bufs, which is what keeps the stream bit-identical across
// worker counts.
type Tracer struct {
	mu      sync.Mutex
	clock   func() int64
	ring    []Event
	head    int // index of the oldest event
	n       int // live events in the ring
	seq     uint64
	dropped uint64
}

// DefaultTracerCapacity is the ring size NewTracer uses for capacity <= 0.
const DefaultTracerCapacity = 1 << 16

// NewTracer returns a tracer whose ring holds capacity events
// (DefaultTracerCapacity if capacity <= 0). The virtual clock defaults
// to a constant 0 until SetClock installs a source.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// SetClock installs the virtual tick source (typically
// (*faultsim.Clock).Now). A nil source stamps tick 0.
func (t *Tracer) SetClock(now func() int64) {
	t.mu.Lock()
	t.clock = now
	t.mu.Unlock()
}

// Emit stamps e with the current tick and the next sequence number and
// appends it to the ring. Coordinator call sites only; worker-pool code
// stages into a Buf instead.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	t.emitLocked(e)
	t.mu.Unlock()
}

func (t *Tracer) emitLocked(e Event) {
	e.Seq = t.seq
	t.seq++
	e.Tick = 0
	if t.clock != nil {
		e.Tick = t.clock()
	}
	if t.n < cap(t.ring) {
		t.ring = append(t.ring, e)
		t.n++
		return
	}
	// Ring full: overwrite the oldest.
	t.ring[t.head] = e
	t.head++
	if t.head == cap(t.ring) {
		t.head = 0
	}
	t.dropped++
}

// Buf is a per-worker staging buffer: worker-pool code appends events
// here (no locks, no stamps) and the coordinator commits contiguous
// spans in task order at the next barrier via CommitStaged — mirroring
// the per-worker move arenas of the pair scheduler. A Buf must not be
// shared between goroutines.
type Buf struct {
	ev []Event
}

// Emit stages one event. Seq/Tick are assigned later, at commit.
func (b *Buf) Emit(e Event) { b.ev = append(b.ev, e) }

// Mark returns the current staging position; a task's span is
// [Mark-before, Mark-after).
func (b *Buf) Mark() int { return len(b.ev) }

// Reset empties the buffer, keeping its backing storage.
func (b *Buf) Reset() { b.ev = b.ev[:0] }

// CommitStaged stamps and appends the staged span [lo, hi) of b, in
// staging order. The caller sequences CommitStaged calls in task order,
// which is what makes the merged stream independent of which worker
// staged which span.
func (t *Tracer) CommitStaged(b *Buf, lo, hi int) {
	if b == nil || lo >= hi {
		return
	}
	t.mu.Lock()
	for _, e := range b.ev[lo:hi] {
		t.emitLocked(e)
	}
	t.mu.Unlock()
}

// Events returns a copy of the retained events in sequence order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.head+i)%cap(t.ring)])
	}
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all retained events and restarts sequence numbering,
// keeping the ring storage and the clock.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.head, t.n = 0, 0
	t.seq, t.dropped = 0, 0
	t.mu.Unlock()
}
