package apps

import (
	"fmt"

	"paragon/internal/bsp"
	"paragon/internal/graph"
)

// PageRankConverged runs damped PageRank until the total absolute rank
// change per round drops below tol (in fixed-point units) or maxIters is
// reached, using the engine's aggregator support to detect convergence
// globally. It returns the ranks and how many iterations ran.
func PageRankConverged(e *bsp.Engine, g *graph.Graph, tol int64, maxIters int) ([]int64, bsp.Result, error) {
	if maxIters < 1 {
		return nil, bsp.Result{}, fmt.Errorf("apps: PageRankConverged needs maxIters >= 1")
	}
	if tol < 0 {
		return nil, bsp.Result{}, fmt.Errorf("apps: negative tolerance")
	}
	n := int64(g.NumVertices())
	if n == 0 {
		return nil, bsp.Result{}, nil
	}
	base := PageRankScale * 15 / (100 * n)
	prev := make([]int64, n)      // previous value per vertex (own-rank access)
	remaining := make([]int32, n) // iteration budget per vertex
	for v := range prev {
		prev[v] = PageRankScale / n
		remaining[v] = int32(maxIters)
	}
	// converged is written only inside OnAggregate (at the barrier) and
	// read by the next superstep's Compute calls — ordered, no race.
	converged := false
	prog := bsp.Program{
		Init: func(v int32) (int64, bool) { return PageRankScale / n, true },
		Compute: func(v int32, value int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if msgs != nil {
				var sum int64
				for _, m := range msgs {
					sum += m
				}
				value = base + sum*85/100
			}
			remaining[v]--
			if converged || remaining[v] <= 0 {
				return value, false
			}
			if d := int64(g.Degree(v)); d > 0 {
				share := value / d
				for _, u := range g.Neighbors(v) {
					send(u, share)
				}
			}
			return value, true
		},
		Combine: func(a, b int64) int64 { return a + b },
		Contribute: func(v int32, value int64) int64 {
			d := value - prev[v]
			if d < 0 {
				d = -d
			}
			prev[v] = value
			return d
		},
		AggCombine: func(a, b int64) int64 { return a + b },
		OnAggregate: func(step int, agg int64) {
			// The first round's delta is 0 (values just initialized);
			// require at least one propagation round before declaring
			// convergence.
			if step > 0 && agg <= tol {
				converged = true
			}
		},
	}
	res, err := e.Run(prog)
	return res.Values, res, err
}
