package metis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/partition"
	"paragon/internal/stream"
)

func TestHeavyEdgeMatchingValid(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, 1)
	rng := rand.New(rand.NewSource(2))
	m := heavyEdgeMatching(g, rng)
	for v := int32(0); v < g.NumVertices(); v++ {
		u := m[v]
		if u < 0 || u >= g.NumVertices() {
			t.Fatalf("match[%d] = %d out of range", v, u)
		}
		if m[u] != v {
			t.Fatalf("matching not symmetric: m[%d]=%d but m[%d]=%d", v, u, u, m[u])
		}
		if u != v && !g.HasEdge(u, v) {
			t.Fatalf("matched non-adjacent pair %d-%d", v, u)
		}
	}
}

func TestHeavyEdgeMatchingPrefersHeavy(t *testing.T) {
	// Star with one heavy edge: center must match across the heavy edge.
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(0, 2, 100)
	b.AddWeightedEdge(0, 3, 1)
	g := b.Build()
	// The random visit order can start anywhere; when it starts at 0 the
	// heavy edge must win. Force it by matching many seeds.
	heavyWins := 0
	for seed := int64(0); seed < 10; seed++ {
		m := heavyEdgeMatching(g, rand.New(rand.NewSource(seed)))
		if m[0] == 2 {
			heavyWins++
		}
	}
	if heavyWins == 0 {
		t.Fatal("heavy edge never matched across 10 seeds")
	}
}

func TestContractConservesWeight(t *testing.T) {
	g := gen.Mesh2D(20, 20)
	g.UseDegreeWeights()
	rng := rand.New(rand.NewSource(3))
	m := heavyEdgeMatching(g, rng)
	coarse, cmap := contract(g, m)
	if coarse.TotalVertexWeight() != g.TotalVertexWeight() {
		t.Fatalf("vertex weight not conserved: %d vs %d", coarse.TotalVertexWeight(), g.TotalVertexWeight())
	}
	if coarse.NumVertices() >= g.NumVertices() {
		t.Fatal("contraction did not shrink the graph")
	}
	if err := coarse.Validate(); err != nil {
		t.Fatalf("coarse graph invalid: %v", err)
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		if cmap[v] < 0 || cmap[v] >= coarse.NumVertices() {
			t.Fatalf("cmap[%d] = %d out of range", v, cmap[v])
		}
	}
	// Edge weight: coarse total = fine total − weight of internal
	// (contracted) edges.
	var internal int64
	for v := int32(0); v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u && cmap[v] == cmap[u] {
				internal += int64(w[i])
			}
		}
	}
	if coarse.TotalEdgeWeight() != g.TotalEdgeWeight()-internal {
		t.Fatalf("edge weight mismatch: coarse %d, fine %d, internal %d",
			coarse.TotalEdgeWeight(), g.TotalEdgeWeight(), internal)
	}
}

func TestCoarsenHierarchy(t *testing.T) {
	g := gen.Mesh2D(40, 40)
	rng := rand.New(rand.NewSource(4))
	levels := coarsen(g, 100, rng)
	if len(levels) < 2 {
		t.Fatal("expected multiple levels for a 1600-vertex mesh")
	}
	if levels[0].g != g {
		t.Fatal("first level must be the input graph")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].g.NumVertices() >= levels[i-1].g.NumVertices() {
			t.Fatalf("level %d did not shrink", i)
		}
		if levels[i].g.TotalVertexWeight() != g.TotalVertexWeight() {
			t.Fatalf("level %d lost vertex weight", i)
		}
	}
	last := levels[len(levels)-1].g
	if last.NumVertices() > 200 {
		t.Fatalf("coarsest graph still has %d vertices", last.NumVertices())
	}
}

func TestGainHeap(t *testing.T) {
	h := newGainHeap(8)
	gains := []int64{5, -2, 9, 0, 9, 3}
	for v, g := range gains {
		h.push(int32(v), g)
	}
	locked := make([]bool, len(gains))
	gainArr := append([]int64(nil), gains...)
	var popped []int64
	for {
		_, g, ok := h.popValid(gainArr, locked)
		if !ok {
			break
		}
		popped = append(popped, g)
	}
	for i := 1; i < len(popped); i++ {
		if popped[i] > popped[i-1] {
			t.Fatalf("heap not descending: %v", popped)
		}
	}
	if len(popped) != len(gains) {
		t.Fatalf("popped %d of %d", len(popped), len(gains))
	}
	// Stale entries are skipped.
	h2 := newGainHeap(4)
	h2.push(0, 7)
	gainArr2 := []int64{3} // heap entry (0,7) is stale
	h2.push(0, 3)
	v, g, ok := h2.popValid(gainArr2, []bool{false})
	if !ok || v != 0 || g != 3 {
		t.Fatalf("stale skip failed: %d %d %v", v, g, ok)
	}
}

func TestFMImprovesRandomBisection(t *testing.T) {
	g := gen.Mesh2D(30, 30)
	rng := rand.New(rand.NewSource(5))
	side := make([]int8, g.NumVertices())
	for v := range side {
		side[v] = int8(rng.Intn(2))
	}
	before := cutWeight(g, side)
	total := g.TotalVertexWeight()
	maxW := [2]int64{int64(float64(total) * 0.55), int64(float64(total) * 0.55)}
	fmRefine(g, side, maxW, 8)
	after := cutWeight(g, side)
	if after >= before {
		t.Fatalf("FM did not improve cut: %d -> %d", before, after)
	}
	w := sideWeights(g, side)
	if w[0] > maxW[0] || w[1] > maxW[1] {
		t.Fatalf("FM violated balance: %v vs %v", w, maxW)
	}
	// A mesh bisection should be far below a random cut (~half the edges).
	if after > before/2 {
		t.Fatalf("FM cut %d still above half the random cut %d", after, before)
	}
}

func TestPartitionBasic(t *testing.T) {
	g := gen.Mesh2D(32, 32)
	p := Partition(g, 8, Options{Seed: 1})
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := p.Counts(g)
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d empty", i)
		}
	}
	if s := partition.Skewness(g, p); s > 1.35 {
		t.Fatalf("skewness %.3f too high", s)
	}
}

func TestPartitionK1(t *testing.T) {
	g := gen.ErdosRenyi(50, 100, 1)
	p := Partition(g, 1, Options{})
	for _, a := range p.Assign {
		if a != 0 {
			t.Fatal("k=1 must assign all to 0")
		}
	}
}

func TestPartitionOddK(t *testing.T) {
	g := gen.Mesh2D(30, 30)
	for _, k := range []int32{3, 5, 7, 11} {
		p := Partition(g, k, Options{Seed: 2})
		if err := p.Validate(g); err != nil {
			t.Fatalf("k=%d Validate: %v", k, err)
		}
		for i, c := range p.Counts(g) {
			if c == 0 {
				t.Fatalf("k=%d partition %d empty", k, i)
			}
		}
		if s := partition.Skewness(g, p); s > 1.5 {
			t.Fatalf("k=%d skewness %.3f", k, s)
		}
	}
}

func TestMETISBeatsStreamingOnMesh(t *testing.T) {
	// The Figure 9 headline: METIS produces the best initial cuts,
	// especially on FEM-style meshes.
	g := gen.Mesh2D(40, 40)
	g.UseDegreeWeights()
	mp := Partition(g, 8, Options{Seed: 3})
	dg := stream.DG(g, 8, stream.DefaultOptions())
	hp := stream.HP(g, 8)
	cutM := partition.EdgeCut(g, mp)
	cutD := partition.EdgeCut(g, dg)
	cutH := partition.EdgeCut(g, hp)
	if cutM >= cutD {
		t.Fatalf("METIS cut %d not below DG cut %d", cutM, cutD)
	}
	if cutD >= cutH {
		t.Fatalf("DG cut %d not below HP cut %d", cutD, cutH)
	}
}

func TestPartitionWeightedGraph(t *testing.T) {
	g := gen.RMAT(3000, 12000, 0.57, 0.19, 0.19, 6)
	g.UseDegreeWeights()
	p := Partition(g, 6, Options{Seed: 4, Eps: 0.05})
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Power-law graphs are hard to balance exactly under recursive
	// bisection; require the tolerance band (with slack for the heavy
	// hub vertices).
	if s := partition.Skewness(g, p); s > 1.6 {
		t.Fatalf("weighted skewness %.3f", s)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := gen.Mesh2D(8, 8)
	g.UseDegreeWeights()
	verts := []int32{0, 1, 2, 8, 9, 10}
	sub, orig := graph.Induced(g, verts)
	if sub.NumVertices() != 6 {
		t.Fatalf("sub vertices = %d", sub.NumVertices())
	}
	if len(orig) != 6 || orig[3] != 8 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("sub invalid: %v", err)
	}
	for i, v := range orig {
		if sub.VertexWeight(int32(i)) != g.VertexWeight(v) {
			t.Fatalf("vertex weight not carried for %d", v)
		}
	}
	// Every sub edge must exist in g between the mapped endpoints.
	for i := int32(0); i < sub.NumVertices(); i++ {
		for _, j := range sub.Neighbors(i) {
			if !g.HasEdge(orig[i], orig[j]) {
				t.Fatalf("phantom edge %d-%d", orig[i], orig[j])
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := gen.Mesh2D(20, 20)
	p1 := Partition(g, 4, Options{Seed: 11})
	p2 := Partition(g, 4, Options{Seed: 11})
	for v := range p1.Assign {
		if p1.Assign[v] != p2.Assign[v] {
			t.Fatal("same seed must give identical partitionings")
		}
	}
}

// Property: Partition always yields a valid, complete decomposition with
// bounded skew for arbitrary graphs and k.
func TestQuickPartitionValid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int32(kRaw%7) + 2
		g := gen.ErdosRenyi(400, 1200, seed)
		p := Partition(g, k, Options{Seed: seed})
		if err := p.Validate(g); err != nil {
			t.Logf("invalid: %v", err)
			return false
		}
		var total int64
		for _, c := range p.Counts(g) {
			total += c
		}
		return total == int64(g.NumVertices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
