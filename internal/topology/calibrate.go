package topology

import (
	"fmt"
	"sort"
)

// Calibration: the paper derives its relative cost matrix from
// osu_latency measurements between bound MPI ranks. CalibrateLatency
// plays that role for the model: given measured samples of (rank pair,
// latency) on a cluster whose *shape* is known, it fits a LatencyModel
// by averaging per communication class and normalizing to the cheapest
// class, so modeled clusters can be parameterized from real probes.

// LatencySample is one measured point-to-point latency between two
// ranks (cores), in any consistent unit (µs, cycles, ...).
type LatencySample struct {
	RankA, RankB int
	Latency      float64
}

// CalibrateLatency fits a LatencyModel from samples measured on a
// cluster of the given shape. Same-rank samples are ignored. The
// inter-node term is fit as base + perHop·hops by averaging per hop
// count (single-hop-count data yields PerHop 0). Classes without samples
// keep the DefaultLatency value, scaled consistently. Returns an error
// when no usable sample exists.
func CalibrateLatency(c *Cluster, samples []LatencySample) (LatencyModel, error) {
	sums := map[CommClass]float64{}
	counts := map[CommClass]int{}
	hopSums := map[int]float64{}
	hopCounts := map[int]int{}
	for _, s := range samples {
		if s.RankA == s.RankB || s.RankA < 0 || s.RankB < 0 ||
			s.RankA >= c.TotalCores() || s.RankB >= c.TotalCores() || s.Latency <= 0 {
			continue
		}
		cl := c.Class(s.RankA, s.RankB)
		sums[cl] += s.Latency
		counts[cl]++
		if cl == InterNode {
			h := c.Net.Hops(c.Loc(s.RankA).Node, c.Loc(s.RankB).Node)
			hopSums[h] += s.Latency
			hopCounts[h]++
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return LatencyModel{}, fmt.Errorf("topology: no usable latency samples")
	}
	// Normalization anchor: the cheapest measured class.
	def := DefaultLatency()
	avg := func(cl CommClass, fallback float64) float64 {
		if counts[cl] > 0 {
			return sums[cl] / float64(counts[cl])
		}
		return -fallback // negative marks "unmeasured"; resolved after scaling
	}
	m := LatencyModel{
		SharedL2:    avg(SharedL2, def.SharedL2),
		IntraSocket: avg(IntraSocket, def.IntraSocket),
		InterSocket: avg(InterSocket, def.InterSocket),
	}
	// Inter-node: fit base + perHop·hops from per-hop averages. The hop
	// buckets are drained in sorted order: float accumulation in map
	// order would make the fitted model differ in ULPs between runs.
	hops := make([]int, 0, len(hopCounts))
	for h := range hopCounts {
		hops = append(hops, h)
	}
	sort.Ints(hops)
	switch len(hops) {
	case 0:
		m.InterNodeBase = -def.InterNodeBase
		m.PerHop = -def.PerHop
	case 1:
		h := hops[0]
		m.InterNodeBase = hopSums[h] / float64(hopCounts[h])
		m.PerHop = 0
	default:
		// Least-squares over (hops, mean latency).
		var sx, sy, sxx, sxy float64
		var k int
		for _, h := range hops {
			x := float64(h)
			y := hopSums[h] / float64(hopCounts[h])
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			k++
		}
		fk := float64(k)
		den := fk*sxx - sx*sx
		if den == 0 {
			m.InterNodeBase = sy / fk
			m.PerHop = 0
		} else {
			m.PerHop = (fk*sxy - sx*sy) / den
			m.InterNodeBase = (sy - m.PerHop*sx) / fk
			if m.PerHop < 0 {
				m.PerHop = 0
				m.InterNodeBase = sy / fk
			}
		}
	}
	// Normalize so the cheapest measured class is 1, and scale
	// unmeasured fallbacks by the same factor.
	cheapest := 0.0
	for _, v := range []float64{m.SharedL2, m.IntraSocket, m.InterSocket, m.InterNodeBase} {
		if v > 0 && (cheapest == 0 || v < cheapest) {
			cheapest = v
		}
	}
	if cheapest <= 0 {
		return LatencyModel{}, fmt.Errorf("topology: calibration degenerate")
	}
	norm := func(v, defV float64) float64 {
		if v > 0 {
			return v / cheapest
		}
		return defV // unmeasured: keep the default's relative value
	}
	out := LatencyModel{
		SharedL2:      norm(m.SharedL2, def.SharedL2),
		IntraSocket:   norm(m.IntraSocket, def.IntraSocket),
		InterSocket:   norm(m.InterSocket, def.InterSocket),
		InterNodeBase: norm(m.InterNodeBase, def.InterNodeBase),
	}
	if m.PerHop > 0 {
		out.PerHop = m.PerHop / cheapest
	} else if m.InterNodeBase < 0 {
		out.PerHop = def.PerHop // inter-node entirely unmeasured
	}
	return out, nil
}
