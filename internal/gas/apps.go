package gas

import (
	"fmt"

	"paragon/internal/graph"
)

// Reference GAS applications.

// Components runs min-label propagation to convergence: every vertex
// ends with the smallest vertex id in its connected component.
func Components(e *Engine, g *graph.Graph) (Result, error) {
	prog := Program{
		Init:   func(v int32) int64 { return int64(v) },
		Gather: func(v, u int32, uVal int64, w int32) int64 { return uVal },
		Sum: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		Apply: func(v int32, old, sum int64, hasSum bool) (int64, bool) {
			if hasSum && sum < old {
				return sum, true
			}
			return old, false
		},
	}
	return e.Run(prog)
}

// PageRankScale is the fixed-point scale shared with the bsp apps.
const PageRankScale = int64(1_000_000_000)

// PageRank runs iters damped PageRank rounds (d = 0.85) over the
// vertex-cut assignment.
func PageRank(e *Engine, g *graph.Graph, iters int) (Result, error) {
	if iters < 1 {
		return Result{}, fmt.Errorf("gas: PageRank needs >= 1 iteration")
	}
	n := int64(g.NumVertices())
	if n == 0 {
		return Result{}, nil
	}
	base := PageRankScale * 15 / (100 * n)
	remaining := iters
	prog := Program{
		Init: func(v int32) int64 { return PageRankScale / n },
		Gather: func(v, u int32, uVal int64, w int32) int64 {
			if d := int64(g.Degree(u)); d > 0 {
				return uVal / d
			}
			return 0
		},
		Sum: func(a, b int64) int64 { return a + b },
		Apply: func(v int32, old, sum int64, hasSum bool) (int64, bool) {
			nv := old
			if hasSum {
				nv = base + sum*85/100
			}
			// The iteration budget is global: Apply for vertex 0 (called
			// once per iteration, first) decrements it.
			if v == 0 {
				remaining--
			}
			return nv, remaining > 0
		},
	}
	return e.Run(prog)
}
