package paragon

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/stream"
)

// The scale benches (scripts/bench_scale.sh) are env-driven so one
// process measures exactly one configuration — peak RSS is a per-process
// high watermark (/proc/self/status VmHWM) and would smear across
// sub-benchmarks otherwise. Without PARAGON_SCALE_N set they skip, so
// ci.sh's bench-bitrot smoke still compiles and enters them.
//
//	PARAGON_SCALE_N         vertex count (required; edges = 8n)
//	PARAGON_SCALE_WORKERS   Config.Workers for the refine round (default 1)
//	PARAGON_SCALE_GRAPH     binary CSR file to load instead of generating
//	                        (written once by gengraph -binary-out)
//	PARAGON_SCALE_HASH_FILE append "n=<n> workers=<w> hash=<h>" after the
//	                        run; the script cross-checks the hash over all
//	                        worker counts (bit-identity at scale)

func scaleEnvN(b *testing.B) int32 {
	s := os.Getenv("PARAGON_SCALE_N")
	if s == "" {
		b.Skip("PARAGON_SCALE_N not set; run via scripts/bench_scale.sh")
	}
	n, err := strconv.ParseInt(s, 10, 32)
	if err != nil || n < 2 {
		b.Fatalf("bad PARAGON_SCALE_N %q: %v", s, err)
	}
	return int32(n)
}

func scaleEnvWorkers() int {
	if s := os.Getenv("PARAGON_SCALE_WORKERS"); s != "" {
		if w, err := strconv.Atoi(s); err == nil && w > 0 {
			return w
		}
	}
	return 1
}

func scaleGraph(b *testing.B, n int32) *graph.Graph {
	if path := os.Getenv("PARAGON_SCALE_GRAPH"); path != "" {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		g, err := graph.ReadBinary(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			b.Fatalf("load %s: %v", path, err)
		}
		if g.NumVertices() != n {
			b.Fatalf("%s has %d vertices, PARAGON_SCALE_N says %d", path, g.NumVertices(), n)
		}
		g.UseDegreeWeights()
		return g
	}
	g := gen.RMATSharded(n, int64(n)*8, 0.57, 0.19, 0.19, 42, runtime.GOMAXPROCS(0))
	g.UseDegreeWeights()
	return g
}

// peakRSSKB reads the process high-water resident set from
// /proc/self/status (Linux; zero elsewhere).
func peakRSSKB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				kb, _ := strconv.ParseFloat(fields[0], 64)
				return kb
			}
		}
	}
	return 0
}

func recordScaleHash(b *testing.B, n int32, workers int, hash uint64) {
	path := os.Getenv("PARAGON_SCALE_HASH_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "n=%d workers=%d hash=%#x\n", n, workers, hash)
}

// BenchmarkScaleRefine measures one full refinement round (k=128, DRP 8,
// the BenchmarkParagonRound configuration) at PARAGON_SCALE_N vertices
// and PARAGON_SCALE_WORKERS workers — the end-to-end point of the
// worker-scaling curve at n ≥ 1M.
func BenchmarkScaleRefine(b *testing.B) {
	n := scaleEnvN(b)
	workers := scaleEnvWorkers()
	g := scaleGraph(b, n)
	p0 := stream.HP(g, 128)
	cfg := Config{DRP: 8, Shuffles: 0, Seed: 1, Workers: workers}
	var hash uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := p0.Clone()
		b.StartTimer()
		if _, err := RefineUniform(g, p, cfg); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		hash = assignHash(p)
		b.StartTimer()
	}
	b.ReportMetric(peakRSSKB(), "peakRSS-KB")
	recordScaleHash(b, n, workers, hash)
}

// BenchmarkScaleGenBuildRound is the 10M-vertex headline: sharded
// generation, CSR build, initial streaming decomposition, and one
// refinement round, all inside the timer — the full cold-start path a
// 10M-vertex deployment pays once.
func BenchmarkScaleGenBuildRound(b *testing.B) {
	n := scaleEnvN(b)
	workers := scaleEnvWorkers()
	var hash uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gen.RMATSharded(n, int64(n)*8, 0.57, 0.19, 0.19, 42, runtime.GOMAXPROCS(0))
		g.UseDegreeWeights()
		p := stream.HP(g, 128)
		if _, err := RefineUniform(g, p, Config{DRP: 8, Shuffles: 0, Seed: 1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		hash = assignHash(p)
		b.StartTimer()
	}
	b.ReportMetric(peakRSSKB(), "peakRSS-KB")
	recordScaleHash(b, n, workers, hash)
}
