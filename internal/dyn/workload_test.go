package dyn

import (
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"paragon/internal/gen"
)

// opsHash folds an op list into one FNV-1a word for golden pinning.
func opsHash(ops []EdgeOp) uint64 {
	h := fnv.New64a()
	var buf [13]byte
	for _, op := range ops {
		if op.Add {
			buf[0] = 1
		} else {
			buf[0] = 0
		}
		put32 := func(off int, x int32) {
			buf[off] = byte(x)
			buf[off+1] = byte(x >> 8)
			buf[off+2] = byte(x >> 16)
			buf[off+3] = byte(x >> 24)
		}
		put32(1, op.U)
		put32(5, op.V)
		put32(9, op.W)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// The churn.go:56 regression: a failed friend-of-friend draw used to
// leave the zero-value endpoint sentinel in place half the time, pulling
// ~25% of all added edges onto vertex 0. On a degree-uniform mesh the
// fixed generator hits vertex 0 about 2·adds/n times; give it an order
// of magnitude of slack and it still catches the bug by a factor of 10.
func TestRandomChurnNoVertexZeroBias(t *testing.T) {
	g := gen.Mesh2D(30, 34) // 1020 vertices, near-uniform degree
	const adds = 4000
	ops := RandomChurn(g, adds, 0, 11)
	if len(ops) < adds*9/10 {
		t.Fatalf("generated %d of %d requested adds", len(ops), adds)
	}
	zero := 0
	for _, op := range ops {
		if !op.Add {
			t.Fatal("unexpected remove op")
		}
		if op.U == 0 || op.V == 0 {
			zero++
		}
	}
	// Uniform expectation ≈ 2·adds/n ≈ 8; the pre-fix bias produced ~1000.
	if zero > 100 {
		t.Fatalf("vertex 0 appears in %d/%d added edges; endpoint bias is back", zero, len(ops))
	}
}

// Removal dedupe: every remove op names a distinct edge, so requested
// removals equal applied removals instead of duplicates collapsing into
// ApplyChurn no-ops.
func TestRandomChurnRemovalsDistinct(t *testing.T) {
	g := gen.Mesh2D(20, 20)
	const removes = 300
	ops := RandomChurn(g, 0, removes, 23)
	if len(ops) != removes {
		t.Fatalf("generated %d of %d requested removals", len(ops), removes)
	}
	seen := make(map[[2]int32]struct{}, removes)
	for _, op := range ops {
		if op.Add {
			t.Fatal("unexpected add op")
		}
		key := [2]int32{op.U, op.V}
		if op.V < op.U {
			key = [2]int32{op.V, op.U}
		}
		if _, dup := seen[key]; dup {
			t.Fatalf("edge {%d,%d} picked twice", op.U, op.V)
		}
		seen[key] = struct{}{}
	}
}

// Distribution-pinning golden: the generator is part of the daemon's
// deterministic replay surface, so its op stream for a fixed (graph,
// seed) is pinned. Re-pin deliberately if the sampling scheme changes.
func TestRandomChurnGolden(t *testing.T) {
	g := gen.RMAT(1000, 5000, 0.57, 0.19, 0.19, 1)
	ops := RandomChurn(g, 200, 100, 7)
	const want = uint64(0xe3cdf7a7e5e73b33)
	if got := opsHash(ops); got != want {
		t.Fatalf("churn ops hash = %#x, want %#x", got, want)
	}
}

func TestChurnOpsSourceEquivalence(t *testing.T) {
	g := gen.Mesh2D(15, 15)
	a := RandomChurn(g, 80, 40, 5)
	b := ChurnOps(GraphSource{g}, 80, 40, rand.New(rand.NewSource(5)))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RandomChurn and ChurnOps diverge for the same seed")
	}
}

func TestWorkloadDeterministicReplay(t *testing.T) {
	g := gen.RMAT(800, 4000, 0.57, 0.19, 0.19, 3)
	cfg := WorkloadConfig{Adds: 20, Removes: 10, Arrivals: 4}
	w1 := NewWorkload(41, cfg)
	w2 := NewWorkload(41, cfg)
	for i := 0; i < 12; i++ {
		b1 := w1.Next(GraphSource{g})
		b2 := w2.Next(GraphSource{g})
		if b1.Seq != int64(i) {
			t.Fatalf("batch %d has Seq %d", i, b1.Seq)
		}
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("batch %d diverged between identical workloads", i)
		}
	}
	w3 := NewWorkload(42, cfg)
	if reflect.DeepEqual(w1.Next(GraphSource{g}), w3.Next(GraphSource{g})) {
		t.Fatal("different seeds produced identical batches")
	}
}

func TestWorkloadArrivalShape(t *testing.T) {
	g := gen.Mesh2D(12, 12)
	n := g.NumVertices()
	w := NewWorkload(9, WorkloadConfig{Arrivals: 6, ArrivalDegree: 4})
	for i := 0; i < 8; i++ {
		b := w.Next(GraphSource{g})
		if len(b.Arrivals) != 6 {
			t.Fatalf("batch %d has %d arrivals", i, len(b.Arrivals))
		}
		for _, a := range b.Arrivals {
			if len(a.Neighbors) == 0 || len(a.Neighbors) > 4 {
				t.Fatalf("arrival has %d neighbors", len(a.Neighbors))
			}
			if len(a.Neighbors) != len(a.Weights) {
				t.Fatal("neighbor/weight length mismatch")
			}
			seen := map[int32]bool{}
			for j, u := range a.Neighbors {
				if u < 0 || u >= n {
					t.Fatalf("arrival neighbor %d out of range", u)
				}
				if seen[u] {
					t.Fatal("duplicate arrival neighbor")
				}
				seen[u] = true
				if a.Weights[j] <= 0 {
					t.Fatal("non-positive arrival edge weight")
				}
			}
		}
	}
}
