package exchange

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
)

// buildScenario creates s servers over a shared initial location view,
// with disjoint random updates and neighbor-derived needs — the shape of
// a PARAGON shuffle exchange.
func buildScenario(nVerts, nServers, updatesPer int, seed int64) ([]*Server, []int32) {
	rng := rand.New(rand.NewSource(seed))
	initial := make([]int32, nVerts)
	for v := range initial {
		initial[v] = int32(rng.Intn(nServers))
	}
	perm := rng.Perm(nVerts)
	servers := make([]*Server, nServers)
	idx := 0
	for i := range servers {
		s := &Server{
			ID:        i,
			Locations: append([]int32(nil), initial...),
			Updates:   map[int32]int32{},
		}
		for u := 0; u < updatesPer && idx < len(perm); u++ {
			v := int32(perm[idx])
			idx++
			s.Updates[v] = int32(rng.Intn(nServers))
		}
		// Needs: a random sample standing in for neighbor lookups.
		for u := 0; u < updatesPer*4; u++ {
			s.Needs = append(s.Needs, int32(rng.Intn(nVerts)))
		}
		servers[i] = s
	}
	// Expected final view.
	want := append([]int32(nil), initial...)
	for _, s := range servers {
		for v, loc := range s.Updates {
			want[v] = loc
		}
	}
	return servers, want
}

func TestRegionPropagatesAllUpdates(t *testing.T) {
	servers, want := buildScenario(1000, 6, 40, 1)
	vol, err := Region{Size: 256}.Propagate(servers)
	if err != nil {
		t.Fatal(err)
	}
	if !Consistent(servers) {
		t.Fatal("views diverged")
	}
	for v, loc := range want {
		if servers[0].Locations[v] != loc {
			t.Fatalf("vertex %d: %d, want %d", v, servers[0].Locations[v], loc)
		}
	}
	if vol != 1000*4 {
		t.Fatalf("region volume = %d, want O(|V|) = 4000", vol)
	}
}

func TestRegionDefaultSize(t *testing.T) {
	servers, _ := buildScenario(100, 3, 5, 2)
	vol, err := Region{}.Propagate(servers)
	if err != nil {
		t.Fatal(err)
	}
	if vol != 400 {
		t.Fatalf("volume = %d", vol)
	}
}

func TestRegionConflictDetection(t *testing.T) {
	servers, _ := buildScenario(100, 2, 0, 3)
	servers[0].Updates[7] = 0
	servers[1].Updates[7] = 1
	if _, err := (Region{}).Propagate(servers); err == nil {
		t.Fatal("expected conflict error")
	}
}

func TestDirectoryDeliversUpdatesAndPulls(t *testing.T) {
	servers, want := buildScenario(1000, 6, 40, 4)
	// Directory only refreshes what a server needs or updated itself;
	// make every server need everything for a full comparison.
	for _, s := range servers {
		s.Needs = s.Needs[:0]
		for v := 0; v < 1000; v++ {
			s.Needs = append(s.Needs, int32(v))
		}
	}
	vol, err := Directory{}.Propagate(servers)
	if err != nil {
		t.Fatal(err)
	}
	if !Consistent(servers) {
		t.Fatal("views diverged")
	}
	for v, loc := range want {
		if servers[0].Locations[v] != loc {
			t.Fatalf("vertex %d: %d, want %d", v, servers[0].Locations[v], loc)
		}
	}
	if vol <= 1000*4 {
		t.Fatalf("directory volume = %d — should exceed the region reduce", vol)
	}
}

func TestDirectoryVolumeScalesWithNeeds(t *testing.T) {
	// The paper's complaint: directory traffic is O(|V|+|E|). Double the
	// needs (≈ edges) and volume must grow.
	s1, _ := buildScenario(500, 4, 20, 5)
	v1, err := Directory{}.Propagate(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := buildScenario(500, 4, 20, 5)
	for _, s := range s2 {
		s.Needs = append(s.Needs, s.Needs...)
	}
	v2, err := Directory{}.Propagate(s2)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatalf("doubling needs did not raise volume: %d vs %d", v1, v2)
	}
}

func TestRegionBeatsDirectoryOnVolume(t *testing.T) {
	// With realistic needs (average degree ≈ 12), region exchange must
	// move far fewer bytes — the reason the paper adopted it.
	mk := func() []*Server {
		servers, _ := buildScenario(2000, 8, 50, 6)
		for _, s := range servers {
			s.Needs = s.Needs[:0]
			rng := rand.New(rand.NewSource(int64(s.ID)))
			for i := 0; i < 2000*12/8; i++ {
				s.Needs = append(s.Needs, int32(rng.Intn(2000)))
			}
		}
		return servers
	}
	dirVol, err := Directory{}.Propagate(mk())
	if err != nil {
		t.Fatal(err)
	}
	regVol, err := Region{}.Propagate(mk())
	if err != nil {
		t.Fatal(err)
	}
	if regVol >= dirVol {
		t.Fatalf("region %d not below directory %d", regVol, dirVol)
	}
}

func TestStrategiesOnRealRefinementShape(t *testing.T) {
	// Drive the scenario from an actual decomposition so vertex ids and
	// partitions are realistic.
	g := gen.RMAT(1500, 9000, 0.57, 0.19, 0.19, 7)
	p := stream.DG(g, 8, stream.DefaultOptions())
	nServers := 4
	servers := make([]*Server, nServers)
	for i := range servers {
		servers[i] = &Server{
			ID:        i,
			Locations: append([]int32(nil), p.Assign...),
			Updates:   map[int32]int32{},
		}
	}
	// Each server "moves" boundary vertices of its two partitions.
	bv := partition.BoundaryVertices(g, p)
	for i, s := range servers {
		for _, v := range bv[i*2] {
			s.Updates[v] = int32(i*2 + 1)
		}
		for _, u := range bv[i*2+1] {
			if _, dup := s.Updates[u]; !dup {
				s.Updates[u] = int32(i * 2)
			}
		}
		for v := int32(0); v < g.NumVertices(); v++ {
			if p.Assign[v] == int32(i*2) || p.Assign[v] == int32(i*2+1) {
				s.Needs = append(s.Needs, g.Neighbors(v)...)
			}
		}
	}
	if _, err := (Region{Size: 512}).Propagate(servers); err != nil {
		t.Fatal(err)
	}
	if !Consistent(servers) {
		t.Fatal("region exchange diverged on real shape")
	}
}

func TestEmptyServers(t *testing.T) {
	if _, err := (Region{}).Propagate(nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := (Directory{}).Propagate(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestMismatchedViews(t *testing.T) {
	a := &Server{ID: 0, Locations: make([]int32, 10), Updates: map[int32]int32{}}
	b := &Server{ID: 1, Locations: make([]int32, 9), Updates: map[int32]int32{}}
	if _, err := (Region{}).Propagate([]*Server{a, b}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := (Directory{}).Propagate([]*Server{a, b}); err == nil {
		t.Fatal("expected length error")
	}
	if Consistent([]*Server{a, b}) {
		t.Fatal("mismatched views reported consistent")
	}
}

// Property: after a region exchange, every server view equals the
// initial view overlaid with the union of disjoint updates.
func TestQuickRegionCorrect(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		size := int64(sizeRaw%200) + 16
		servers, want := buildScenario(777, 5, 30, seed)
		if _, err := (Region{Size: size}).Propagate(servers); err != nil {
			return false
		}
		if !Consistent(servers) {
			return false
		}
		for v, loc := range want {
			if servers[2].Locations[v] != loc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// EpochDelta must merge all servers' updates into one vertex-sorted,
// duplicate-free delta — the whole-epoch write the partition directory
// applies — independent of map iteration order.
func TestEpochDelta(t *testing.T) {
	servers, want := buildScenario(200, 5, 8, 11)
	delta, err := EpochDelta(servers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(delta); i++ {
		if delta[i-1].Vertex >= delta[i].Vertex {
			t.Fatalf("delta not strictly vertex-sorted at %d: %v %v", i, delta[i-1], delta[i])
		}
	}
	// The delta applied to the initial view must equal the converged view.
	got := append([]int32(nil), servers[0].Locations...)
	for _, u := range delta {
		got[u.Vertex] = u.Rank
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("delta-applied view wrong at vertex %d: %d, want %d", v, got[v], want[v])
		}
	}
	// Determinism: rebuilt scenario, identical delta.
	servers2, _ := buildScenario(200, 5, 8, 11)
	delta2, err := EpochDelta(servers2)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != len(delta2) {
		t.Fatalf("delta lengths differ: %d vs %d", len(delta), len(delta2))
	}
	for i := range delta {
		if delta[i] != delta2[i] {
			t.Fatalf("delta diverged at %d: %v vs %v", i, delta[i], delta2[i])
		}
	}
	// Agreeing duplicates dedup; disagreeing ones are a protocol error.
	servers[1].Updates[9999] = 3
	servers[2].Updates[9999] = 3
	if _, err := EpochDelta(servers); err != nil {
		t.Fatalf("agreeing duplicate rejected: %v", err)
	}
	servers[2].Updates[9999] = 4
	if _, err := EpochDelta(servers); err == nil {
		t.Fatal("conflicting duplicate accepted")
	}
}
