// Command paragond is the streaming-ingest repartitioning daemon: it
// opens a Session over a generated base graph, feeds it a seeded
// churn-batch schedule (edge adds/removes plus vertex arrivals), and
// lets the session launch incremental refinement epochs whenever its
// trigger policy fires — ingest continues on the foreground goroutine
// while each epoch refines a frozen snapshot in the background and
// publishes the committed result atomically through the partition
// directory.
//
// Usage:
//
//	paragond -n0 20000 -m0 100000 -k 16 -batches 200 \
//	         -adds 400 -removes 150 -arrivals 10 -workers 4 \
//	         -fault-rate 0.3 -replay-out run.txt -bench-json bench.json
//
// Everything the daemon computes is a pure function of the seeds and
// the schedule: the -replay-out file (final assignment hash, directory
// epoch, live score, full counter block) is byte-identical at every
// -workers value and every -fault-rate replay. Wall-clock numbers
// (edges/sec while refining) go to stdout and -bench-json only, never
// into the replay file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"paragon"
)

func main() {
	n0 := flag.Int("n0", 20000, "base graph vertices")
	m0 := flag.Int64("m0", 100000, "base graph edges (RMAT)")
	k := flag.Int("k", 16, "number of partitions")
	capacity := flag.Int("capacity", 0, "vertex-id ceiling (0 = n0 + batches*arrivals)")
	batches := flag.Int("batches", 200, "churn batches to ingest")
	adds := flag.Int("adds", 400, "edge additions per batch")
	removes := flag.Int("removes", 150, "edge removals per batch")
	arrivals := flag.Int("arrivals", 10, "vertex arrivals per batch")
	arrivalDeg := flag.Int("arrival-degree", 3, "initial edges per arriving vertex")
	placement := flag.String("placement", "ldg", "arrival placement rule: dg, ldg, or fennel")
	gseed := flag.Int64("gseed", 42, "base graph seed")
	wseed := flag.Int64("wseed", 7, "workload schedule seed")
	seed := flag.Int64("seed", 11, "refinement seed (folded with the epoch index)")
	workers := flag.Int("workers", 0, "refinement workers (0 = GOMAXPROCS; replay is identical for any value)")
	shuffles := flag.Int("shuffles", 2, "shuffle rounds per epoch")
	drp := flag.Int("drp", 8, "degree of refinement parallelism")
	alpha := flag.Float64("alpha", 10, "communication/migration weight α")
	eps := flag.Float64("eps", 0.02, "allowed load imbalance")
	epochLag := flag.Int("epoch-lag", 2, "batches an epoch refines in the background before its join")
	cooldown := flag.Int("cooldown", 4, "minimum batches between an epoch join and the next launch")
	maxSkew := flag.Float64("max-skew", 1.1, "trigger: Eq. 4 skewness bound")
	maxChurn := flag.Float64("max-churn", 0.05, "trigger: churned-edge fraction bound")
	maxStale := flag.Float64("max-staleness", 0.25, "trigger: Eq. 2 growth bound over the last committed epoch (0 disables)")
	faultRate := flag.Float64("fault-rate", 0, "per-fault-point probability for epoch refinement and directory publishes")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	replayOut := flag.String("replay-out", "", "write the deterministic replay summary here (byte-identical at every -workers)")
	traceOut := flag.String("trace", "", "write the session event stream here (JSONL, deterministic)")
	metricsOut := flag.String("metrics", "", "write session+epoch metrics here (Prometheus text format, deterministic)")
	benchJSON := flag.String("bench-json", "", "append one wall-clock benchmark JSON line here")
	flag.Parse()

	rule, err := paragon.ParsePlaceRule(*placement)
	if err != nil {
		fatal(err)
	}
	if *capacity == 0 {
		*capacity = *n0 + *batches**arrivals
	}

	g0 := paragon.RMAT(int32(*n0), *m0, 0.57, 0.19, 0.19, *gseed)
	p0 := paragon.LDG(g0, int32(*k))

	var tracer *paragon.Tracer
	if *traceOut != "" {
		tracer = paragon.NewTracer(0)
	}
	var registry *paragon.MetricsRegistry
	if *metricsOut != "" {
		registry = paragon.NewMetricsRegistry()
	}

	cfg := paragon.SessionConfig{
		Capacity:  int32(*capacity),
		Eps:       *eps,
		Placement: rule,
		Trigger: paragon.TriggerPolicy{
			MaxSkew: *maxSkew, MaxChurn: *maxChurn, MaxStaleness: *maxStale,
		},
		EpochLagBatches: *epochLag,
		CooldownBatches: *cooldown,
		Costs:           paragon.UniformMatrix(*k),
		FaultRate:       *faultRate,
		FaultSeed:       *faultSeed,
		Trace:           tracer,
		Metrics:         registry,
	}
	cfg.Refine = paragon.DefaultConfig()
	cfg.Refine.DRP = *drp
	cfg.Refine.Workers = *workers
	cfg.Refine.Shuffles = *shuffles
	cfg.Refine.Alpha = *alpha
	cfg.Refine.MaxImbalance = *eps
	cfg.Refine.Seed = *seed

	s, err := paragon.NewSession(g0, p0, cfg)
	if err != nil {
		fatal(err)
	}
	w := paragon.NewWorkload(*wseed, paragon.WorkloadConfig{
		Adds: *adds, Removes: *removes, Arrivals: *arrivals, ArrivalDegree: *arrivalDeg,
	})

	// The ingest loop. Wall time is measured around it — that is the
	// window refinement epochs run concurrently inside — but feeds only
	// the stdout/bench reporting, never the replay summary.
	start := time.Now()
	for i := 0; i < *batches; i++ {
		if _, err := s.Ingest(w.Next(s.Source())); err != nil {
			fatal(fmt.Errorf("batch %d: %w", i, err))
		}
	}
	if _, err := s.Drain(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	st := s.Stats()
	churnEdges := st.EdgesAdded + st.EdgesRemoved
	edgesPerSec := float64(churnEdges) / elapsed.Seconds()

	fmt.Printf("paragond: %d batches in %s (%.0f churned edges/s while refining)\n",
		st.Batches, elapsed.Round(time.Millisecond), edgesPerSec)
	fmt.Printf("epochs:   %d launched, %d committed, %d aborted, %d vertices moved\n",
		st.EpochsLaunched, st.EpochsCommitted, st.EpochsAborted, st.EpochMoves)

	if *replayOut != "" {
		rf, err := os.Create(*replayOut)
		if err != nil {
			fatal(err)
		}
		writeReplay(rf, s, st)
		if err := rf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote replay summary to %s\n", *replayOut)
	} else {
		writeReplay(os.Stdout, s, st)
	}

	if tracer != nil {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := paragon.WriteTrace(tf, tracer); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s (%d events)\n", *traceOut, tracer.Len())
	}
	if registry != nil {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := paragon.WriteMetrics(mf, registry); err != nil {
			fatal(err)
		}
		if err := mf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}

	if *benchJSON != "" {
		bf, err := os.OpenFile(*benchJSON, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(bf,
			`{"n0":%d,"m0":%d,"k":%d,"batches":%d,"workers":%d,"fault_rate":%g,`+
				`"elapsed_ms":%d,"churn_edges_per_sec":%.0f,"epochs_launched":%d,`+
				`"epochs_committed":%d,"epochs_aborted":%d,"assign_hash":"%#x"}`+"\n",
			*n0, *m0, *k, st.Batches, *workers, *faultRate,
			elapsed.Milliseconds(), edgesPerSec, st.EpochsLaunched,
			st.EpochsCommitted, st.EpochsAborted, s.AssignHash())
		if err := bf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("appended benchmark line to %s\n", *benchJSON)
	}
}

// writeReplay renders the deterministic half of the run: every line is a
// pure function of (seeds, schedule, flags minus -workers), so two runs
// that should replay each other can be compared with cmp.
func writeReplay(w io.Writer, s *paragon.Session, st paragon.SessionStats) {
	fmt.Fprintf(w, "batches       %d\n", st.Batches)
	fmt.Fprintf(w, "ops           %d applied (%d added, %d removed)\n", st.OpsApplied, st.EdgesAdded, st.EdgesRemoved)
	fmt.Fprintf(w, "arrivals      %d placed, %d rejected\n", st.Arrivals, st.ArrivalsRejected)
	fmt.Fprintf(w, "epochs        %d launched, %d committed, %d aborted\n", st.EpochsLaunched, st.EpochsCommitted, st.EpochsAborted)
	fmt.Fprintf(w, "moves         %d\n", st.EpochMoves)
	fmt.Fprintf(w, "active        %d vertices, %d edges\n", st.Active, st.Edges)
	fmt.Fprintf(w, "vticks        %d\n", st.VirtualTicks)
	fmt.Fprintf(w, "live          cut %d comm %.0f skew %.4f\n", st.Live.EdgeCut, st.Live.CommCost, st.Live.Skewness)
	fmt.Fprintf(w, "assign-hash   %#x\n", s.AssignHash())
	fmt.Fprintf(w, "dir           epoch %d hash %#x\n", st.DirectoryEpoch, s.Directory().Current().AssignHash())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "paragond: %v\n", err)
	os.Exit(1)
}
