#!/usr/bin/env bash
# Runs the refinement hot-path benchmarks (BenchmarkRefinePairHot,
# BenchmarkParagonRound — 100k-vertex RMAT, k ∈ {32, 128}) and emits
# BENCH_refine.json with ns/op and allocs/op for each, next to the
# recorded pre-index baseline so the speedup is visible in one file.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=10x scripts/bench.sh   # more iterations for stable numbers
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_refine.json}"
benchtime="${BENCHTIME:-5x}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkRefinePairHot' -benchmem -benchtime "$benchtime" ./internal/aragon/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkParagonRound' -benchmem -benchtime "$benchtime" ./internal/paragon/ | tee -a "$tmp"

# Benchmark lines look like:
#   BenchmarkParagonRound/k=128-8   5   336316376 ns/op   15844968 B/op   2307 allocs/op
# The baseline block is the scan-based implementation (commit a4d204a,
# before internal/partition.Index) on the same graphs and configs.
awk -v out="$out" -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip -GOMAXPROCS suffix
    ns[name] = $3
    allocs[name] = $7
    if (!(name in seen)) { seen[name] = 1; order[n++] = name }
}
END {
    if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf("{\n")                                               > out
    printf("  \"benchtime\": \"%s\",\n", benchtime)             > out
    printf("  \"graph\": \"RMAT n=100000 m=800000 seed=42, degree weights\",\n") > out
    printf("  \"baseline\": {\n")                               > out
    printf("    \"commit\": \"a4d204a (pre-index scan-based refinement)\",\n") > out
    printf("    \"BenchmarkRefinePairHot/k=32\":  { \"ns_op\": 3065617,    \"allocs_op\": 50 },\n")    > out
    printf("    \"BenchmarkRefinePairHot/k=128\": { \"ns_op\": 1253660,    \"allocs_op\": 30 },\n")    > out
    printf("    \"BenchmarkParagonRound/k=32\":   { \"ns_op\": 159739650,  \"allocs_op\": 2528 },\n")  > out
    printf("    \"BenchmarkParagonRound/k=128\":  { \"ns_op\": 1386737586, \"allocs_op\": 28217 }\n")  > out
    printf("  },\n")                                            > out
    printf("  \"current\": {\n")                                > out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf("    \"%s\": { \"ns_op\": %s, \"allocs_op\": %s }%s\n",
               name, ns[name], allocs[name], (i < n - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                          > out
}
' "$tmp"

echo "bench: wrote $out"
