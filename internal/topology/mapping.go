package topology

import "fmt"

// Helpers for the paper's default deployment: an n-way decomposition with
// one partition per core, partition i bound to rank i (the assignment M
// of §3 is the identity). These produce the c(Pi, Pj) inputs PARAGON and
// the BSP simulator consume.

// PartitionCostMatrix returns the k×k relative cost matrix for partitions
// bound to the first k ranks of the cluster, with the Eq. 12 contention
// penalty applied at degree lambda.
func (c *Cluster) PartitionCostMatrix(k int, lambda float64) ([][]float64, error) {
	if k < 1 || k > c.total {
		return nil, fmt.Errorf("topology: k = %d outside [1,%d] for cluster %s", k, c.total, c.Name)
	}
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
		for j := range m[i] {
			m[i][j] = c.Cost(i, j)
		}
	}
	if lambda > 0 {
		m = c.ApplyContention(m, lambda)
	}
	return m, nil
}

// NodeOf returns the compute-node index hosting each of the first k
// ranks — the σ(s) bookkeeping input of Eq. 10's group-server penalty.
func (c *Cluster) NodeOf(k int) ([]int, error) {
	if k < 1 || k > c.total {
		return nil, fmt.Errorf("topology: k = %d outside [1,%d] for cluster %s", k, c.total, c.Name)
	}
	nodes := make([]int, k)
	for r := 0; r < k; r++ {
		nodes[r] = c.Loc(r).Node
	}
	return nodes, nil
}
