package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LoopRace targets the group-server fan-out pattern (internal/paragon,
// internal/exchange, internal/migrate, internal/bsp): goroutines or
// deferred closures spawned from a loop. It enforces two rules:
//
//  1. The closure must not capture the loop variables — they are passed
//     as arguments (`go func(gi int) {...}(gi)`). Go 1.22 made per-
//     iteration semantics the default, but the pass-as-arg convention
//     keeps the code correct under older toolchains, makes the data flow
//     explicit, and is what every fan-out site in this repo does.
//
//  2. A goroutine that writes an indexable shared structure declared
//     outside itself must have a visible synchronization point somewhere
//     in the enclosing function — a WaitGroup Wait/Done, a mutex, or a
//     channel operation. Fan-out that mutates shared slices with no sync
//     in sight is a read-uncommitted bug waiting for the race detector.
type LoopRace struct{}

func (LoopRace) Name() string { return "looprace" }
func (LoopRace) Doc() string {
	return "loop fan-out must pass loop variables as arguments and synchronize shared writes"
}

func (c LoopRace) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			hasSync := bodyHasSyncPoint(pkg, fn.Body)
			w := &raceWalker{pkg: pkg, hasSync: hasSync}
			w.walk(fn.Body, nil)
			out = append(out, w.diags...)
			return false
		})
	}
	return out
}

type raceWalker struct {
	pkg     *Package
	hasSync bool
	diags   []Diagnostic
}

// walk descends the statement tree carrying the set of loop-variable
// objects currently in scope.
func (w *raceWalker) walk(n ast.Node, loopVars []types.Object) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.RangeStmt:
		vars := loopVars
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := w.pkg.Info.Defs[id]; obj != nil {
					vars = append(vars, obj)
				}
			}
		}
		w.walk(n.Body, vars)
	case *ast.ForStmt:
		vars := loopVars
		if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			for _, lhs := range init.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := w.pkg.Info.Defs[id]; obj != nil {
						vars = append(vars, obj)
					}
				}
			}
		}
		w.walk(n.Body, vars)
	case *ast.GoStmt:
		w.checkSpawn(n.Call, "goroutine", true, loopVars)
		w.walkCall(n.Call, loopVars)
	case *ast.DeferStmt:
		w.checkSpawn(n.Call, "deferred closure", false, loopVars)
		w.walkCall(n.Call, loopVars)
	case *ast.BlockStmt:
		for _, s := range n.List {
			w.walk(s, loopVars)
		}
	case *ast.IfStmt:
		w.walk(n.Body, loopVars)
		w.walk(n.Else, loopVars)
	case *ast.SwitchStmt:
		w.walk(n.Body, loopVars)
	case *ast.TypeSwitchStmt:
		w.walk(n.Body, loopVars)
	case *ast.SelectStmt:
		w.walk(n.Body, loopVars)
	case *ast.CaseClause:
		for _, s := range n.Body {
			w.walk(s, loopVars)
		}
	case *ast.CommClause:
		for _, s := range n.Body {
			w.walk(s, loopVars)
		}
	case *ast.LabeledStmt:
		w.walk(n.Stmt, loopVars)
	}
}

// walkCall descends into a spawned func literal so nested loops inside
// the goroutine are themselves checked.
func (w *raceWalker) walkCall(call *ast.CallExpr, loopVars []types.Object) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		w.walk(fl.Body, nil)
	}
	_ = loopVars
}

func (w *raceWalker) checkSpawn(call *ast.CallExpr, kind string, isGo bool, loopVars []types.Object) {
	fl, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	if len(loopVars) > 0 {
		for _, captured := range capturedOf(w.pkg, fl, loopVars) {
			w.diags = append(w.diags, diag(w.pkg, fl.Pos(), "looprace",
				"%s captures loop variable %s; pass it as an argument (go func(%s ...) {...}(%s))",
				kind, captured.Name(), captured.Name(), captured.Name()))
		}
	}
	if isGo && !w.hasSync {
		if target := sharedWrite(w.pkg, fl); target != "" {
			w.diags = append(w.diags, diag(w.pkg, fl.Pos(), "looprace",
				"goroutine writes shared %s but the enclosing function has no synchronization point (WaitGroup, mutex, or channel)", target))
		}
	}
}

// capturedOf returns the loop variables referenced inside the func
// literal body (uses resolving to the loop-var objects themselves, not
// to shadowing parameters).
func capturedOf(pkg *Package, fl *ast.FuncLit, loopVars []types.Object) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		for _, lv := range loopVars {
			if obj == lv {
				seen[obj] = true
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// sharedWrite reports the first indexed write inside the literal whose
// base is declared outside it ("results[i] = ..." against an outer
// slice/map), which is the shared-mutation half of the race pattern.
func sharedWrite(pkg *Package, fl *ast.FuncLit) string {
	found := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			base, ok := ix.X.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pkg.Info.Uses[base]
			if obj == nil {
				continue
			}
			if obj.Pos() < fl.Pos() || obj.Pos() > fl.End() {
				found = base.Name
			}
		}
		return true
	})
	return found
}

// bodyHasSyncPoint scans for any evidence of synchronization in the
// function: WaitGroup/mutex method calls, channel sends/receives, or
// close().
func bodyHasSyncPoint(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if isBuiltin(pkg, n.Fun, "close") {
				found = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Wait", "Done", "Lock", "Unlock", "RLock", "RUnlock":
					found = true
				}
			}
		case *ast.RangeStmt:
			if t := typeOf(pkg, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
