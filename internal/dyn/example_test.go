package dyn_test

import (
	"fmt"

	"paragon/internal/dyn"
	"paragon/internal/gen"
	"paragon/internal/partition"
)

// Example replays a growing graph as snapshots, injecting each new batch
// of vertices into the running decomposition and consulting the trigger
// policy.
func Example() {
	full := gen.RMAT(2000, 8000, 0.57, 0.19, 0.19, 5)
	full.UseDegreeWeights()
	snaps, err := dyn.Snapshots(full, 3, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	var p *partition.Partitioning
	policy := dyn.DefaultTrigger()
	for i, snap := range snaps {
		p, err = dyn.Inject(snap, p, 8, 0.02)
		if err != nil {
			fmt.Println(err)
			return
		}
		d := policy.Evaluate(snap.Graph, p, 0)
		fmt.Printf("S%d: %d vertices, refine=%v\n", i+1, snap.Graph.NumVertices(), d.Refine)
	}
	// Output:
	// S1: 666 vertices, refine=false
	// S2: 1333 vertices, refine=false
	// S3: 2000 vertices, refine=false
}
