package stream

import (
	"hash/fnv"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
)

// assignHash folds an assignment into one FNV-1a word for golden pinning.
func assignHash(p *partition.Partitioning) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, a := range p.Assign {
		buf[0] = byte(a)
		buf[1] = byte(a >> 8)
		buf[2] = byte(a >> 16)
		buf[3] = byte(a >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// The streaming partitioners feed both the batch pipeline and the
// daemon's arrival placement, so their output for a fixed (graph, k,
// options) is pinned here — any change to the placement rules must
// re-pin deliberately instead of shifting silently. (These were the
// last golden-free partitioners in the tree.)
func TestStreamPartitionerGoldens(t *testing.T) {
	g := gen.RMAT(2000, 10000, 0.57, 0.19, 0.19, 8)
	opt := DefaultOptions()
	cases := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"dg", assignHash(DG(g, 8, opt)), 0x291214702a71cde6},
		{"ldg", assignHash(LDG(g, 8, opt)), 0xf91f311bcb4d23f1},
		{"fennel", assignHash(Fennel(g, 8, opt)), 0x44c85c402ea64c20},
		{"hp", assignHash(HP(g, 8)), 0xd1ac061190dba633},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s assignment hash = %#x, want %#x", c.name, c.got, c.want)
		}
	}
}

// Placement is deterministic run to run and identical between the batch
// partitioner and a fresh Placer fed the same arrival order — the
// property the daemon's replay contract rests on.
func TestPlacerMatchesBatchPartitioner(t *testing.T) {
	g := gen.RMAT(1500, 7000, 0.57, 0.19, 0.19, 4)
	const k = 6
	opt := DefaultOptions()

	ldg := LDG(g, k, opt)
	capacity := float64(partition.BalanceBound(g, k, opt.Eps))
	pl := NewPlacer(PlaceLDG, k)
	load := make([]float64, k)
	p := partition.New(k, g.NumVertices())
	for i := range p.Assign {
		p.Assign[i] = -1
	}
	for v := int32(0); v < g.NumVertices(); v++ { // natural order, as opt
		vw := float64(g.VertexWeight(v))
		best := pl.Place(g.Neighbors(v), g.EdgeWeights(v), p.Assign, load, vw, capacity, 0)
		p.Assign[v] = best
		load[best] += vw
	}
	for v := range p.Assign {
		if p.Assign[v] != ldg.Assign[v] {
			t.Fatalf("vertex %d: placer chose %d, batch LDG chose %d", v, p.Assign[v], ldg.Assign[v])
		}
	}
}

// The fennel.go:57 regression: a tie against the first candidate scored
// must break to the lower load like any other tie, not stick with the
// earlier partition.
func TestPlaceFennelTieBreaksToLowerLoad(t *testing.T) {
	pl := NewPlacer(PlaceFennel, 3)
	// alpha = 0 makes every empty-affinity score 0: a three-way tie.
	load := []float64{5, 2, 4}
	if got := pl.Place(nil, nil, nil, load, 1, 100, 0); got != 1 {
		t.Fatalf("fennel tie placed on %d, want least-loaded 1", got)
	}
	// With affinity toward partition 0 and 2 equal, the tie again breaks
	// to the lower load even though partition 0 is scored first.
	pl2 := NewPlacer(PlaceFennel, 3)
	adj := []int32{0, 1}
	wts := []int32{2, 2}
	assign := []int32{0, 2} // neighbor 0 in partition 0, neighbor 1 in partition 2
	load2 := []float64{7, 9, 3}
	if got := pl2.Place(adj, wts, assign, load2, 1, 100, 0); got != 2 {
		t.Fatalf("fennel affinity tie placed on %d, want lower-load 2", got)
	}
}

func TestPlaceGreedyFallbackLeastLoaded(t *testing.T) {
	pl := NewPlacer(PlaceDG, 4)
	load := []float64{3, 1, 2, 1}
	// No placed neighbors: DG falls back to least loaded, lowest index.
	if got := pl.Place(nil, nil, nil, load, 1, 10, 0); got != 1 {
		t.Fatalf("fallback placed on %d, want 1", got)
	}
	// All candidates over capacity: same fallback.
	adj := []int32{0}
	wts := []int32{5}
	assign := []int32{0}
	if got := pl.Place(adj, wts, assign, load, 8, 10, 0); got != 1 {
		t.Fatalf("over-capacity fallback placed on %d, want 1", got)
	}
}

// The touched-list reset must leave no residue between calls: two
// placements with disjoint neighborhoods see independent affinities.
func TestPlacerScratchReset(t *testing.T) {
	pl := NewPlacer(PlaceDG, 4)
	load := make([]float64, 4)
	assign := []int32{3, 2}
	if got := pl.Place([]int32{0}, []int32{9}, assign, load, 1, 100, 0); got != 3 {
		t.Fatalf("first placement on %d, want 3", got)
	}
	load[3]++
	// If aff[3] leaked, this would still pick 3 over 2.
	if got := pl.Place([]int32{1}, []int32{5}, assign, load, 1, 100, 0); got != 2 {
		t.Fatalf("second placement on %d, want 2 (scratch residue?)", got)
	}
}
