// Package exchange implements the two strategies §5 discusses for
// propagating decomposition changes among PARAGON's group servers during
// shuffle refinement:
//
//   - Directory: a Zoltan-style distributed data directory. Every vertex
//     has a home shard (hash-based); group servers push their location
//     updates to the shards and then pull the locations of every vertex
//     their vertices neighbor. The paper found this "very inefficient for
//     really big graphs in terms of both memory footprint and execution
//     time", costing O(|V|+|E|) communication.
//
//   - Region: the paper's adopted variant — the global vertex id space is
//     chunked into equal regions of min(2^26, |V|) ids, and the locations
//     of one region are exchanged per round with a single reduce,
//     costing O(|V|) communication and bounding per-server memory to one
//     region.
//
// Both strategies are implemented over real goroutine servers and report
// the simulated wire volume, so the paper's claim is directly
// benchmarkable (BenchmarkExchangeStrategies).
package exchange

import (
	"fmt"
	"sync"
)

// Server is one group server's view during a shuffle exchange.
type Server struct {
	ID int
	// Locations is this server's (possibly stale) view of every vertex's
	// partition. All servers' views have the same length.
	Locations []int32
	// Updates are the ownership changes this server made during its
	// group refinement (vertex -> new partition). Servers own disjoint
	// partitions, so no two servers update the same vertex.
	Updates map[int32]int32
	// Needs are the vertices whose up-to-date location this server needs
	// (the neighbors of its vertices); only the Directory strategy uses
	// it — the Region strategy refreshes everything.
	Needs []int32
}

// Strategy propagates all updates so that every server's Locations view
// becomes identical and up to date. It returns the simulated
// communication volume in bytes.
type Strategy interface {
	Name() string
	Propagate(servers []*Server) (int64, error)
}

// wire-size constants: a location update is (vertex id, partition) = 8
// bytes; a pull request is a 4-byte id, its reply 4 bytes.
const (
	updateBytes  = 8
	requestBytes = 4
	replyBytes   = 4
)

// Directory is the Zoltan-style distributed data directory strategy.
// Shards defaults to the number of servers.
type Directory struct {
	Shards int
}

// Name implements Strategy.
func (Directory) Name() string { return "distributed data directory" }

// Propagate implements Strategy: push updates to hash-owned shards, then
// pull every needed location.
func (d Directory) Propagate(servers []*Server) (int64, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("exchange: no servers")
	}
	shards := d.Shards
	if shards <= 0 {
		shards = len(servers)
	}
	n := len(servers[0].Locations)
	for _, s := range servers {
		if len(s.Locations) != n {
			return 0, fmt.Errorf("exchange: server %d has %d locations, want %d", s.ID, len(s.Locations), n)
		}
	}
	// Shard state: authoritative locations for the vertices it owns.
	type shard struct {
		mu   sync.Mutex
		locs map[int32]int32
	}
	shardOf := func(v int32) int { return int(uint32(v)*2654435761) % shards }
	dir := make([]*shard, shards)
	for i := range dir {
		dir[i] = &shard{locs: make(map[int32]int32)}
	}
	var volume int64
	var volMu sync.Mutex
	// Phase 1: every server pushes its updates to the owning shards.
	var wg sync.WaitGroup
	for _, s := range servers {
		wg.Add(1)
		go func(s *Server) {
			defer wg.Done()
			var bytes int64
			for v, loc := range s.Updates {
				sh := dir[shardOf(v)]
				sh.mu.Lock()
				if old, dup := sh.locs[v]; dup && old != loc {
					// Two servers moved the same vertex: a protocol
					// violation PARAGON's disjoint grouping prevents.
					sh.locs[v] = loc // keep latest; surfaced by consistency check below
				} else {
					sh.locs[v] = loc
				}
				sh.mu.Unlock()
				bytes += updateBytes
			}
			volMu.Lock()
			volume += bytes
			volMu.Unlock()
		}(s)
	}
	wg.Wait()
	// Phase 2: every server pulls the locations it needs.
	for _, s := range servers {
		wg.Add(1)
		go func(s *Server) {
			defer wg.Done()
			var bytes int64
			for _, v := range s.Needs {
				if v < 0 || int(v) >= n {
					continue
				}
				sh := dir[shardOf(v)]
				sh.mu.Lock()
				loc, ok := sh.locs[v]
				sh.mu.Unlock()
				bytes += requestBytes + replyBytes
				if ok {
					s.Locations[v] = loc
				}
			}
			volMu.Lock()
			volume += bytes
			volMu.Unlock()
		}(s)
	}
	wg.Wait()
	// The directory only refreshes pulled vertices; apply each server's
	// own updates locally too (free — they are local writes).
	for _, s := range servers {
		for v, loc := range s.Updates {
			s.Locations[v] = loc
		}
	}
	return volume, nil
}

// Region is the paper's adopted chunked-array strategy.
type Region struct {
	// Size is the region length in vertex ids; 0 means min(2^26, |V|).
	Size int64
}

// Name implements Strategy.
func (Region) Name() string { return "region-chunked array exchange" }

// Propagate implements Strategy: for each region, reduce all servers'
// updates into a merged location array and broadcast it back.
func (r Region) Propagate(servers []*Server) (int64, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("exchange: no servers")
	}
	n := int64(len(servers[0].Locations))
	for _, s := range servers {
		if int64(len(s.Locations)) != n {
			return 0, fmt.Errorf("exchange: server %d has %d locations, want %d", s.ID, len(s.Locations), n)
		}
	}
	size := r.Size
	if size <= 0 {
		size = 1 << 26
	}
	if size > n && n > 0 {
		size = n
	}
	var volume int64
	for lo := int64(0); lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		// Reduce: merge every server's updates for this region. Updates
		// are disjoint across servers by PARAGON's construction; detect
		// violations.
		merged := make([]int32, hi-lo)
		written := make([]bool, hi-lo)
		for i := range merged {
			merged[i] = -1
		}
		// Conflicting updates abort mid-iteration, so which conflict is
		// reported depends on map order; the success path only performs
		// per-key writes and is order-independent.
		for _, s := range servers {
			//lint:ignore maprange early exit fires only on a protocol violation PARAGON's disjoint grouping rules out
			for v, loc := range s.Updates {
				if int64(v) < lo || int64(v) >= hi {
					continue
				}
				i := int64(v) - lo
				if written[i] && merged[i] != loc {
					return volume, fmt.Errorf("exchange: conflicting updates for vertex %d", v)
				}
				merged[i] = loc
				written[i] = true
			}
		}
		// Fill unchanged slots from the first server's view (all views
		// agree on unchanged vertices).
		base := servers[0].Locations[lo:hi]
		for i := range merged {
			if !written[i] {
				merged[i] = base[i]
			}
		}
		// Broadcast: every server adopts the merged region. The reduce
		// wire cost is one 4-byte location per vertex of the region
		// (the paper's O(|V|) total).
		var wg sync.WaitGroup
		for _, s := range servers {
			wg.Add(1)
			go func(s *Server, lo, hi int64) {
				defer wg.Done()
				copy(s.Locations[lo:hi], merged)
			}(s, lo, hi)
		}
		wg.Wait()
		volume += (hi - lo) * 4
	}
	return volume, nil
}

// Consistent reports whether all servers hold identical location views.
func Consistent(servers []*Server) bool {
	if len(servers) < 2 {
		return true
	}
	ref := servers[0].Locations
	for _, s := range servers[1:] {
		if len(s.Locations) != len(ref) {
			return false
		}
		for i := range ref {
			if s.Locations[i] != ref[i] {
				return false
			}
		}
	}
	return true
}
