// Package partition defines the n-way decomposition model of the paper's
// §3 problem statement and its quality metrics: communication cost
// (Eq. 2), migration cost (Eq. 3), skewness (Eq. 4), edge-cut, and the
// partition statistics (boundary vertices, external degrees, per-partition
// loads) consumed by the streaming partitioners and the refiners.
package partition

import (
	"fmt"

	"paragon/internal/graph"
)

// Partitioning assigns every vertex of a graph to one of K partitions.
// Partition i is mapped to server M[i]; with the paper's default
// one-partition-per-core mapping, M is the identity and the cost matrix is
// indexed directly by partition id.
type Partitioning struct {
	K      int32
	Assign []int32 // vertex -> partition in [0, K)
}

// New returns a partitioning of n vertices into k partitions with all
// vertices initially in partition 0.
func New(k, n int32) *Partitioning {
	if k < 1 {
		panic(fmt.Sprintf("partition: k = %d must be positive", k))
	}
	return &Partitioning{K: k, Assign: make([]int32, n)}
}

// Clone returns a deep copy.
func (p *Partitioning) Clone() *Partitioning {
	return &Partitioning{K: p.K, Assign: append([]int32(nil), p.Assign...)}
}

// Of returns the partition of vertex v.
func (p *Partitioning) Of(v int32) int32 { return p.Assign[v] }

// Move reassigns vertex v to partition to.
func (p *Partitioning) Move(v, to int32) {
	if to < 0 || to >= p.K {
		panic(fmt.Sprintf("partition: move to %d out of range [0,%d)", to, p.K))
	}
	p.Assign[v] = to
}

// Validate checks that the partitioning covers exactly the vertices of g
// and that every assignment is in range.
func (p *Partitioning) Validate(g *graph.Graph) error {
	if int32(len(p.Assign)) != g.NumVertices() {
		return fmt.Errorf("partition: %d assignments for %d vertices", len(p.Assign), g.NumVertices())
	}
	for v, part := range p.Assign {
		if part < 0 || part >= p.K {
			return fmt.Errorf("partition: vertex %d assigned to %d outside [0,%d)", v, part, p.K)
		}
	}
	return nil
}

// Weights returns w(Pi) for every partition: the sum of vertex weights,
// i.e. the computational load (Eq. 4's numerator inputs).
func (p *Partitioning) Weights(g *graph.Graph) []int64 {
	w := make([]int64, p.K)
	for v := int32(0); v < g.NumVertices(); v++ {
		w[p.Assign[v]] += int64(g.VertexWeight(v))
	}
	return w
}

// Sizes returns the total vertex size per partition (migration mass).
func (p *Partitioning) Sizes(g *graph.Graph) []int64 {
	s := make([]int64, p.K)
	for v := int32(0); v < g.NumVertices(); v++ {
		s[p.Assign[v]] += int64(g.VertexSize(v))
	}
	return s
}

// Counts returns the number of vertices per partition.
func (p *Partitioning) Counts(g *graph.Graph) []int64 {
	c := make([]int64, p.K)
	for v := int32(0); v < g.NumVertices(); v++ {
		c[p.Assign[v]]++
	}
	return c
}

// IncidentEdges returns ps[i] of Eq. 10: the number of half-edges incident
// to vertices of each partition — the paper's approximation of the data
// volume each server ships to its group server.
func (p *Partitioning) IncidentEdges(g *graph.Graph) []int64 {
	e := make([]int64, p.K)
	for v := int32(0); v < g.NumVertices(); v++ {
		e[p.Assign[v]] += int64(g.Degree(v))
	}
	return e
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different partitions (each undirected edge counted once).
func EdgeCut(g *graph.Graph, p *Partitioning) int64 {
	var cut int64
	for v := int32(0); v < g.NumVertices(); v++ {
		pv := p.Assign[v]
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u && p.Assign[u] != pv {
				cut += int64(w[i])
			}
		}
	}
	return cut
}

// CommCost computes Eq. 2: α · Σ_{cut edges} w(e) · c(Pi, Pj). The cost
// matrix c must be at least K×K; with a uniform matrix this reduces to
// α·EdgeCut.
func CommCost(g *graph.Graph, p *Partitioning, c [][]float64, alpha float64) float64 {
	var total float64
	for v := int32(0); v < g.NumVertices(); v++ {
		pv := p.Assign[v]
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u {
				if pu := p.Assign[u]; pu != pv {
					total += float64(w[i]) * c[pv][pu]
				}
			}
		}
	}
	return alpha * total
}

// HopCut computes the hop-weighted edge cut of §2.1's take-away: the
// total of w(e)·hops(Pi, Pj) over cut edges, where hops gives the
// topology distance between the servers of two partitions. It isolates
// the network-distance component that architecture-agnostic partitioners
// ignore (their objective is EdgeCut = HopCut with hops ≡ 1).
func HopCut(g *graph.Graph, p *Partitioning, hops func(i, j int32) int) int64 {
	var total int64
	for v := int32(0); v < g.NumVertices(); v++ {
		pv := p.Assign[v]
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u {
				if pu := p.Assign[u]; pu != pv {
					total += int64(w[i]) * int64(hops(pv, pu))
				}
			}
		}
	}
	return total
}

// MigrationCost computes Eq. 3: Σ_{v moved} vs(v) · c(P_old, P_new) — the
// cost of physically migrating every vertex whose owner changed between
// the old and new decompositions.
func MigrationCost(g *graph.Graph, old, now *Partitioning, c [][]float64) float64 {
	var total float64
	for v := int32(0); v < g.NumVertices(); v++ {
		from, to := old.Assign[v], now.Assign[v]
		if from != to {
			total += float64(g.VertexSize(v)) * c[from][to]
		}
	}
	return total
}

// Skewness computes Eq. 4: max w(Pi) / (Σ w(Pi) / n). A perfectly
// balanced decomposition has skewness 1.
func Skewness(g *graph.Graph, p *Partitioning) float64 {
	w := p.Weights(g)
	var sum, max int64
	for _, wi := range w {
		sum += wi
		if wi > max {
			max = wi
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(p.K))
}

// ExternalDegrees returns d_ext(v, Pk) of Eq. 7 for a single vertex: the
// total edge weight v communicates with each partition. The returned
// slice has length K; entry p.Assign[v] holds v's internal degree.
func ExternalDegrees(g *graph.Graph, p *Partitioning, v int32) []int64 {
	return ExternalDegreesInto(g, p, v, make([]int64, p.K))
}

// ExternalDegreesInto is ExternalDegrees writing into a caller-provided
// buffer of length >= K (zeroed and truncated to K here) — the
// allocation-free form used in the refiners' gain loops.
func ExternalDegreesInto(g *graph.Graph, p *Partitioning, v int32, buf []int64) []int64 {
	d := buf[:p.K]
	for i := range d {
		d[i] = 0
	}
	adj := g.Neighbors(v)
	w := g.EdgeWeights(v)
	for i, u := range adj {
		d[p.Assign[u]] += int64(w[i])
	}
	return d
}

// IsBoundary reports whether v has at least one neighbor outside its own
// partition.
func IsBoundary(g *graph.Graph, p *Partitioning, v int32) bool {
	pv := p.Assign[v]
	for _, u := range g.Neighbors(v) {
		if p.Assign[u] != pv {
			return true
		}
	}
	return false
}

// BoundaryVertices returns all boundary vertices grouped by partition.
func BoundaryVertices(g *graph.Graph, p *Partitioning) [][]int32 {
	out := make([][]int32, p.K)
	for v := int32(0); v < g.NumVertices(); v++ {
		if IsBoundary(g, p, v) {
			pv := p.Assign[v]
			out[pv] = append(out[pv], v)
		}
	}
	return out
}

// BalanceBound returns the maximum allowed partition weight for a given
// imbalance tolerance eps (the paper permits eps = 0.02, i.e. 2%):
// (1+eps) · ceil(totalWeight / K).
func BalanceBound(g *graph.Graph, k int32, eps float64) int64 {
	total := g.TotalVertexWeight()
	avg := (total + int64(k) - 1) / int64(k)
	return int64(float64(avg) * (1 + eps))
}

// Quality bundles the §3 metrics for reporting.
type Quality struct {
	EdgeCut  int64
	CommCost float64
	Skewness float64
}

// Evaluate computes all quality metrics in one sweep via the shared
// scorer; the values are bitwise identical to the standalone metric
// functions (see ComputeScore).
func Evaluate(g *graph.Graph, p *Partitioning, c [][]float64, alpha float64) Quality {
	s := ComputeScore(g, p, nil, c, alpha)
	return Quality{
		EdgeCut:  s.EdgeCut,
		CommCost: s.CommCost,
		Skewness: s.Skewness,
	}
}
