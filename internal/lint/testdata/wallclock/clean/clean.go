// Package fixture shows clock usage that the checker accepts: duration
// types without clock reads, and reads silenced at a driver boundary.
package fixture

import "time"

type stats struct {
	Elapsed time.Duration
}

// Handling time.Duration values is fine; only reading the clock is not.
func accumulate(s *stats, d time.Duration) {
	s.Elapsed += d
}

// Driver-boundary stopwatch, silenced with a reason.
func drive() stats {
	//lint:ignore wallclock stopwatch at the driver boundary; kernels stay clock-free
	start := time.Now()
	refine()
	//lint:ignore wallclock stopwatch at the driver boundary; kernels stay clock-free
	return stats{Elapsed: time.Since(start)}
}

func refine() {}
