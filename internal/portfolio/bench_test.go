package portfolio

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"paragon/internal/gen"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
)

// The portfolio bench (scripts/bench_portfolio.sh) is env-driven so one
// process measures exactly one (P, workers) grid point — the wall-clock
// speedup claim needs a quiet process per point, and the selected-hash
// cross-check needs one hash line per run. Without PARAGON_PORT_P set it
// runs a small fixed smoke configuration, so ci.sh's bench-bitrot pass
// still compiles and exercises it.
//
//	PARAGON_PORT_P          portfolio size (members)
//	PARAGON_PORT_WORKERS    Config.Workers (default 1)
//	PARAGON_PORT_N          vertex count (default 50000; edges = 6n)
//	PARAGON_PORT_K          partitions (default 64)
//	PARAGON_PORT_HASH_FILE  append "p=<P> workers=<w> hash=<h>" after the
//	                        run; the script cross-checks the hash over all
//	                        worker counts of a P (bit-identical selection)

func portEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// BenchmarkPortfolio measures one full portfolio refinement on a warmed
// pool. Reported metrics beyond ns/op:
//
//	membercpu-ns/op  Σ per-member CPU time — member-level concurrency
//	                 witness: on a multi-core box wall clock shrinks
//	                 with workers while this stays ~constant, so
//	                 membercpu/ns_op > 1 proves members overlapped.
//	selcost          the selected decomposition's Eq. 2+3 cost —
//	                 quality at each grid point (lower is better).
func BenchmarkPortfolio(b *testing.B) {
	size := portEnvInt("PARAGON_PORT_P", 4)
	workers := portEnvInt("PARAGON_PORT_WORKERS", 0)
	n := int32(portEnvInt("PARAGON_PORT_N", 50000))
	k := int32(portEnvInt("PARAGON_PORT_K", 64))
	if os.Getenv("PARAGON_PORT_P") == "" {
		// Bitrot-smoke configuration: small enough for -benchtime=1x.
		n, k, size = 10000, 32, 2
	}
	g := gen.RMAT(n, int64(n)*6, 0.57, 0.19, 0.19, 42)
	g.UseDegreeWeights()
	p0 := stream.HP(g, k)
	cfg := paragon.Config{
		DRP: 8, Shuffles: 2, Seed: 1, Workers: workers,
		Portfolio: paragon.PortfolioConfig{Size: size, CombineTop: 2},
	}
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			if i != j {
				c[i][j] = 1
			}
		}
	}
	var pool Pool
	p := p0.Clone()
	st, err := RefineWithPool(g, p, c, cfg, &pool) // warm the pool
	if err != nil {
		b.Fatal(err)
	}
	var cpu time.Duration
	var hash uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(p.Assign, p0.Assign)
		b.StartTimer()
		st, err = RefineWithPool(g, p, c, cfg, &pool)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cpu += st.CPUTime
		hash = assignHash(p)
		b.StartTimer()
	}
	b.ReportMetric(float64(cpu)/float64(b.N), "membercpu-ns/op")
	b.ReportMetric(st.SelectedScore.Cost(), "selcost")
	if path := os.Getenv("PARAGON_PORT_HASH_FILE"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintf(f, "p=%d workers=%d hash=%#x\n", size, workers, hash)
	}
}

// BenchmarkPortfolioScorer isolates the shared Eq. 2–4 scorer — the
// per-member selection overhead the portfolio pays on top of refinement.
func BenchmarkPortfolioScorer(b *testing.B) {
	g := gen.RMAT(20000, 120000, 0.57, 0.19, 0.19, 7)
	g.UseDegreeWeights()
	const k = 64
	p := stream.HP(g, k)
	orig := p.Clone()
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			if i != j {
				c[i][j] = 2
			}
		}
	}
	wbuf := make([]int64, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = partition.ComputeScoreInto(g, p, orig.Assign, c, 10, wbuf)
	}
}
