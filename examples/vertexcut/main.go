// Vertex-cut execution: the §8 extension. Partitions a power-law graph
// by edges (PowerGraph-style vertex-cut) with three assigners, runs
// connected components on the GAS engine over each, and compares
// replication, synchronization volume, and where that volume lands on
// the cluster topology — the same architecture-awareness question
// PARAGON answers for edge-cut decompositions.
package main

import (
	"fmt"
	"log"

	"paragon/internal/gas"
	"paragon/internal/gen"
	"paragon/internal/topology"
	"paragon/internal/vertexcut"
)

func main() {
	g := gen.RMAT(15000, 100000, 0.57, 0.19, 0.19, 21)
	g.UseDegreeWeights()
	cluster := topology.PittCluster(2)
	k := int32(cluster.TotalCores())

	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())
	fmt.Println("assigner  repl.factor  imbalance  sync KB (intra/inter-socket/inter-node)  CC iters")
	for _, tc := range []struct {
		name string
		a    *vertexcut.Assignment
	}{
		{"random", vertexcut.Random(g, k)},
		{"greedy", vertexcut.Greedy(g, k)},
		{"hdrf", vertexcut.HDRF(g, k, 2)},
	} {
		engine, err := gas.NewEngine(g, tc.a, cluster, gas.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := gas.Components(engine, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %-11.2f  %-9.2f  %d/%d/%d  %d\n",
			tc.name, tc.a.ReplicationFactor(), tc.a.LoadImbalance(),
			res.Volume.IntraSocket/1024, res.Volume.InterSocket/1024, res.Volume.InterNode/1024,
			res.Iterations)
	}
	fmt.Println("\nHub-replicating assigners (greedy/HDRF) shrink the replica sets of")
	fmt.Println("power-law graphs, which shrinks every class of synchronization")
	fmt.Println("traffic — the same topology-aware accounting PARAGON applies to")
	fmt.Println("edge-cut decompositions (paper §8).")
}
