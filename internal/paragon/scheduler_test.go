package paragon

import (
	"math/rand"
	"reflect"
	"testing"

	"paragon/internal/faultsim"
	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// TestSchedulerDeterminism is the scheduler's core contract: the final
// decomposition AND every Stats field except the wall clock are
// bit-identical for any Config.Workers value. Run under -race (ci.sh
// exercises -cpu=1,4) this also proves the waves are data-race free.
func TestSchedulerDeterminism(t *testing.T) {
	type cse struct {
		name string
		run  func(t *testing.T, workers int) (*partition.Partitioning, Stats)
	}
	cases := []cse{
		{
			// Arch-aware cost matrix (general gain path, frozen sparse
			// external degrees), k-hop 1 mask, even group sizes.
			name: "arch-aware",
			run: func(t *testing.T, workers int) (*partition.Partitioning, Stats) {
				g := gen.RMAT(4000, 24000, 0.57, 0.19, 0.19, 13)
				g.UseDegreeWeights()
				cl := topology.PittCluster(2)
				k := 32
				c, err := cl.PartitionCostMatrix(k, 0)
				if err != nil {
					t.Fatal(err)
				}
				nodeOf, err := cl.NodeOf(k)
				if err != nil {
					t.Fatal(err)
				}
				p := stream.DG(g, int32(k), stream.DefaultOptions())
				st, err := Refine(g, p, c, Config{DRP: 4, Shuffles: 2, Seed: 5, KHop: 1, NodeOf: nodeOf, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				return p, st
			},
		},
		{
			// Uniform matrix (frozen dual-view fast path), odd group
			// sizes so the tournament's bye slot is exercised, plus a
			// stochastic fault schedule over the upfront fate resolution.
			name: "uniform-odd-faulty",
			run: func(t *testing.T, workers int) (*partition.Partitioning, Stats) {
				g := gen.BarabasiAlbert(3000, 4, 7)
				g.UseDegreeWeights()
				p := stream.LDG(g, 30, stream.DefaultOptions())
				st, err := RefineUniform(g, p, Config{DRP: 4, Shuffles: 3, Seed: 11, Workers: workers, FaultRate: 0.15, FaultSeed: 6})
				if err != nil {
					t.Fatal(err)
				}
				return p, st
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pRef, stRef := tc.run(t, 1)
			stRef.RefinementTime = 0
			hRef := assignHash(pRef)
			for _, w := range []int{2, 8} {
				p, st := tc.run(t, w)
				st.RefinementTime = 0
				if assignHash(p) != hRef {
					t.Fatalf("Workers=%d produced a different decomposition than Workers=1", w)
				}
				if !reflect.DeepEqual(st, stRef) {
					t.Fatalf("Workers=%d stats diverged from Workers=1:\n%+v\nvs\n%+v", w, st, stRef)
				}
			}
		})
	}
}

// A crashed group discards its ENTIRE tournament — every pair, including
// pairs of tournament rounds that executed before the crash would have
// surfaced. With the upfront fate resolution none of the group's pairs
// is ever scheduled, so the group's partitions come out of the round
// exactly as they went in, at every worker count.
func TestCrashedGroupDiscardsWholeTournament(t *testing.T) {
	g := gen.RMAT(3000, 18000, 0.57, 0.19, 0.19, 31)
	g.UseDegreeWeights()
	const k, drp = 24, 4
	const seed = 9
	p0 := stream.DG(g, k, stream.DefaultOptions())

	// Reproduce Refine's round-0 grouping: the grouping rng is seeded
	// with cfg.Seed and consumed before anything else.
	rng := rand.New(rand.NewSource(seed))
	groups := randomGrouping(k, drp, rng)
	const crashed = 2
	if len(groups[crashed]) < 4 {
		t.Fatalf("group %d has %d partitions; need ≥4 for a multi-round tournament", crashed, len(groups[crashed]))
	}
	inCrashed := make([]bool, k)
	for _, pi := range groups[crashed] {
		inCrashed[pi] = true
	}

	run := func(workers int, crash bool) *partition.Partitioning {
		var script []faultsim.Event
		if crash {
			script = []faultsim.Event{{Kind: faultsim.KindCrash, Round: 0, Index: crashed}}
		}
		fab := faultsim.NewInjector(faultsim.Config{Script: script})
		p := p0.Clone()
		st, err := Refine(g, p, topology.UniformMatrix(k), Config{DRP: drp, Shuffles: 0, Seed: seed, Workers: workers, Fabric: fab})
		if err != nil {
			t.Fatal(err)
		}
		if crash && st.Faults.CrashedGroups != 1 {
			t.Fatalf("crashed groups = %d, want 1", st.Faults.CrashedGroups)
		}
		return p
	}

	pCrash := run(1, true)
	for v := int32(0); v < g.NumVertices(); v++ {
		if inCrashed[p0.Assign[v]] && pCrash.Assign[v] != p0.Assign[v] {
			t.Fatalf("vertex %d left crashed group's partition %d -> %d: a discarded pair's move leaked", v, p0.Assign[v], pCrash.Assign[v])
		}
		if !inCrashed[p0.Assign[v]] && inCrashed[pCrash.Assign[v]] {
			t.Fatalf("vertex %d entered crashed group's partition %d", v, pCrash.Assign[v])
		}
	}

	// Non-vacuity: without the crash the same group does move vertices
	// (its tournament includes multiple rounds of pairs).
	pLive := run(1, false)
	moved := 0
	for v := int32(0); v < g.NumVertices(); v++ {
		if inCrashed[p0.Assign[v]] && pLive.Assign[v] != p0.Assign[v] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("control run never moved a vertex of the (un)crashed group; the crash assertion is vacuous")
	}

	// The crashed schedule replays bit-identically at Workers > 1.
	h := assignHash(pCrash)
	for _, w := range []int{2, 8} {
		if got := assignHash(run(w, true)); got != h {
			t.Fatalf("crashed-schedule replay at Workers=%d diverged", w)
		}
	}
}
