package mizan

import (
	"testing"

	"paragon/internal/apps"
	"paragon/internal/bsp"
	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func TestTrafficTrackingProducesCounters(t *testing.T) {
	g := gen.RMAT(800, 4000, 0.57, 0.19, 0.19, 2)
	p := stream.HP(g, 8)
	e, err := bsp.NewEngine(g, p, topology.PittCluster(1), bsp.Options{TrackVertexTraffic: true})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := apps.BFS(e, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VertexTraffic) != int(g.NumVertices()) {
		t.Fatalf("traffic length %d", len(res.VertexTraffic))
	}
	var total int64
	for _, c := range res.VertexTraffic {
		if c < 0 {
			t.Fatal("negative counter")
		}
		total += c
	}
	if total == 0 {
		t.Fatal("no traffic recorded for a BFS over a connected-ish graph")
	}
	// Off by default.
	e2, err := bsp.NewEngine(g, p, topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, res2, err := apps.BFS(e2, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.VertexTraffic != nil {
		t.Fatal("tracking should be opt-in")
	}
}

func TestRepartitionMigratesHotVertices(t *testing.T) {
	g := gen.RMAT(2000, 12000, 0.57, 0.19, 0.19, 3)
	g.UseDegreeWeights()
	old := stream.HP(g, 8)
	e, err := bsp.NewEngine(g, old, topology.PittCluster(1), bsp.Options{TrackVertexTraffic: true})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := apps.BFS(e, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	now, st, err := Repartition(g, old, res.VertexTraffic, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := now.Validate(g); err != nil {
		t.Fatal(err)
	}
	if st.Moves == 0 {
		t.Fatal("no hot vertex migrated from a hashed decomposition")
	}
	// Migrations must reduce the edge cut (hot vertices move toward
	// their neighbors).
	if partition.EdgeCut(g, now) >= partition.EdgeCut(g, old) {
		t.Fatalf("cut did not improve: %d -> %d",
			partition.EdgeCut(g, old), partition.EdgeCut(g, now))
	}
	// And balance must hold.
	bound := partition.BalanceBound(g, 8, 0.02)
	for i, w := range now.Weights(g) {
		if w > bound {
			t.Fatalf("partition %d weight %d above bound %d", i, w, bound)
		}
	}
}

func TestRepartitionErrors(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 1)
	bad := partition.New(4, 5)
	if _, _, err := Repartition(g, bad, make([]int64, 30), Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	ok := stream.HP(g, 4)
	if _, _, err := Repartition(g, ok, make([]int64, 3), Options{}); err == nil {
		t.Fatal("expected traffic-length error")
	}
}

func TestRepartitionNoTrafficNoMoves(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 2)
	old := stream.HP(g, 4)
	now, st, err := Repartition(g, old, make([]int64, g.NumVertices()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves != 0 || st.Considered != 0 {
		t.Fatalf("moves without traffic: %+v", st)
	}
	for v := range old.Assign {
		if now.Assign[v] != old.Assign[v] {
			t.Fatal("assignment changed without traffic")
		}
	}
}

func TestTopFractionClamps(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 3)
	old := stream.HP(g, 4)
	traffic := make([]int64, g.NumVertices())
	for i := range traffic {
		traffic[i] = int64(i)
	}
	_, st, err := Repartition(g, old, traffic, Options{TopFraction: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Considered != 99 { // vertex 0 has zero traffic
		t.Fatalf("considered %d, want 99 at fraction 1.0", st.Considered)
	}
}
