// Command experiments regenerates every table and figure of the paper's
// evaluation (§7) on the modeled clusters and prints them as aligned
// text tables.
//
// Usage:
//
//	experiments [-scale 0.3] [-sources 5] [-only fig7,table4]
//
// Experiment ids: fig7, fig8, fig9 (also produces fig10/fig11), table4,
// table5, fig12, fig13, fig14, fig15 (also fig16), table1, lambda, ablations, and the
// extension studies vertexcut, exchange, and streamorder. The default
// runs everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paragon/internal/exp"
)

func main() {
	scale := flag.Float64("scale", 0.3, "dataset size multiplier (1.0 = standard reproduction size)")
	sources := flag.Int("sources", 5, "BFS/SSSP source vertices per measurement (paper: 15)")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.Manifest() {
			fmt.Printf("%-12s %-22s %s\n", e.ID, e.Paper, e.What)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	start := time.Now()
	ran := 0
	emit := func(tables ...*exp.Table) {
		for _, t := range tables {
			if *csv {
				fmt.Println(t.CSV())
			} else {
				fmt.Println(t.String())
			}
			ran++
		}
	}

	if sel("fig7") {
		a, b := exp.Fig7(*scale)
		emit(a, b)
	}
	if sel("fig8") {
		emit(exp.Fig8(*scale))
	}
	if sel("fig9") || sel("fig10") || sel("fig11") {
		emit(exp.Fig9to11(*scale)...)
	}
	if sel("table4") {
		emit(exp.Table4(*scale, *sources))
	}
	if sel("table5") {
		emit(exp.Table5(*scale, *sources))
	}
	if sel("fig12") {
		emit(exp.Fig12(*scale, *sources))
	}
	if sel("fig13") {
		emit(exp.Fig13(*scale, *sources))
	}
	if sel("fig14") {
		emit(exp.Fig14(*scale, *sources))
	}
	if sel("fig15") || sel("fig16") {
		a, b := exp.Fig15and16(*scale, *sources)
		emit(a, b)
	}
	if sel("table1") {
		emit(exp.Table1())
	}
	if sel("lambda") {
		emit(exp.LambdaSweep(*scale, *sources))
	}
	if sel("ablations") {
		emit(exp.AblationKHop(*scale), exp.AblationServerPenalty(*scale), exp.AblationUniformCost(*scale))
	}
	if sel("vertexcut") {
		emit(exp.VertexCutComparison(*scale))
	}
	if sel("exchange") {
		emit(exp.ExchangeComparison(*scale))
	}
	if sel("streamorder") {
		emit(exp.StreamOrderStudy(*scale))
	}
	if sel("cutmodels") {
		emit(exp.EdgeCutVsVertexCut(*scale))
	}
	if sel("landscape") {
		emit(exp.RepartitionerLandscape(*scale, *sources))
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matched -only=%q\n", *only)
		os.Exit(2)
	}
	fmt.Printf("ran %d tables in %s (scale %.2f, %d sources)\n", ran, time.Since(start).Round(time.Millisecond), *scale, *sources)
}
