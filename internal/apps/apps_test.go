package apps

import (
	"testing"
	"testing/quick"

	"paragon/internal/bsp"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func engineFor(t *testing.T, g *graph.Graph, k int32) *bsp.Engine {
	t.Helper()
	p := stream.DG(g, k, stream.DefaultOptions())
	e, err := bsp.NewEngine(g, p, topology.PittCluster(2), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBFSMatchesSerialReference(t *testing.T) {
	g := gen.RMAT(800, 3200, 0.57, 0.19, 0.19, 3)
	e := engineFor(t, g, 8)
	dist, res, err := BFS(e, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.BFSLevels(g, 0)
	for v := range want {
		if int64(want[v]) != dist[v] {
			t.Fatalf("vertex %d: BSP %d vs serial %d", v, dist[v], want[v])
		}
	}
	if res.Supersteps < 2 {
		t.Fatalf("supersteps = %d, implausibly few", res.Supersteps)
	}
	if res.JET <= 0 {
		t.Fatal("JET must be positive for a multi-step run")
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	p := partition.New(2, 4)
	p.Assign[2], p.Assign[3] = 1, 1
	e, err := bsp.NewEngine(g, p, topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := BFS(e, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Fatalf("unreachable vertices got %d %d", dist[2], dist[3])
	}
	if dist[0] != 0 || dist[1] != 1 {
		t.Fatalf("reachable distances wrong: %d %d", dist[0], dist[1])
	}
}

func TestBFSBadSource(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	e := engineFor(t, g, 2)
	if _, _, err := BFS(e, g, -1); err == nil {
		t.Fatal("expected error")
	}
	if _, _, err := SSSP(e, g, 99); err == nil {
		t.Fatal("expected error")
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	// Weighted graph: builder merges duplicates so weights vary 1..9.
	g := gen.RMAT(600, 2400, 0.5, 0.2, 0.2, 7)
	e := engineFor(t, g, 6)
	dist, _, err := SSSP(e, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.SSSPDistances(g, 1)
	for v := range want {
		if want[v] != dist[v] {
			t.Fatalf("vertex %d: BSP %d vs Dijkstra %d", v, dist[v], want[v])
		}
	}
}

func TestSSSPWeighted(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 10)
	b.AddWeightedEdge(0, 2, 1)
	b.AddWeightedEdge(2, 1, 2)
	b.AddWeightedEdge(1, 3, 1)
	g := b.Build()
	p := partition.New(2, 4)
	p.Assign[1], p.Assign[3] = 1, 1
	e, err := bsp.NewEngine(g, p, topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := SSSP(e, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 3, 1, 4}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestWCCMatchesComponents(t *testing.T) {
	b := graph.NewBuilder(9)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	g := b.Build()
	p := stream.HP(g, 3)
	e, err := bsp.NewEngine(g, p, topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	labels, _, err := WCC(e, g)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 0 {
		t.Fatalf("component of 0..2 = %v", labels[:3])
	}
	if labels[3] != 3 || labels[4] != 3 {
		t.Fatalf("component of 3,4 = %v", labels[3:5])
	}
	if labels[5] != 5 || labels[6] != 5 || labels[7] != 5 {
		t.Fatalf("component of 5..7 = %v", labels[5:8])
	}
	if labels[8] != 8 {
		t.Fatalf("isolated vertex label = %d", labels[8])
	}
}

func TestPageRankConservesMass(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 5)
	e := engineFor(t, g, 4)
	ranks, res, err := PageRank(e, g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 10 {
		t.Fatalf("supersteps = %d, want 10", res.Supersteps)
	}
	var sum int64
	var max int64
	for _, r := range ranks {
		sum += r
		if r > max {
			max = r
		}
	}
	// Total mass ≈ PageRankScale (integer truncation loses a little).
	if sum < PageRankScale*80/100 || sum > PageRankScale*105/100 {
		t.Fatalf("rank mass = %d, want ≈ %d", sum, PageRankScale)
	}
	// Hubs in a BA graph must outrank the average.
	avg := sum / int64(len(ranks))
	if max < 5*avg {
		t.Fatalf("max rank %d not hub-like vs avg %d", max, avg)
	}
}

func TestPageRankBadIters(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	e := engineFor(t, g, 2)
	if _, _, err := PageRank(e, g, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestParagonPlacementBeatsDGOnJET(t *testing.T) {
	// The Table 4 headline at reduced scale: PARAGON-refined placement
	// must yield lower BFS JET than the raw DG decomposition on a
	// 2-node cluster.
	g := gen.RMAT(3000, 18000, 0.57, 0.19, 0.19, 9)
	g.UseDegreeWeights()
	cl := topology.PittCluster(2)
	k := 40
	dg := stream.DG(g, int32(k), stream.DefaultOptions())

	refined := dg.Clone()
	c, err := cl.PartitionCostMatrix(k, 1.0) // λ=1 on the Pitt-style cluster
	if err != nil {
		t.Fatal(err)
	}
	nodeOf, _ := cl.NodeOf(k)
	if _, err := paragon.Refine(g, refined, c, paragon.Config{DRP: 8, Shuffles: 8, Seed: 3, NodeOf: nodeOf}); err != nil {
		t.Fatal(err)
	}

	jet := func(p *partition.Partitioning) float64 {
		e, err := bsp.NewEngine(g, p, cl, bsp.Options{MemoryContention: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, src := range []int32{0, 77, 1234} {
			_, res, err := BFS(e, g, src)
			if err != nil {
				t.Fatal(err)
			}
			total += res.JET
		}
		return total
	}
	jDG, jPar := jet(dg), jet(refined)
	if jPar >= jDG {
		t.Fatalf("PARAGON placement JET %.1f not below DG %.1f", jPar, jDG)
	}
}

// Property: BSP BFS equals the serial reference on arbitrary random
// graphs and partitionings.
func TestQuickBFSEquivalence(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int32(kRaw%6) + 2
		g := gen.ErdosRenyi(150, 450, seed)
		p := stream.HP(g, k)
		e, err := bsp.NewEngine(g, p, topology.GordonCluster(1), bsp.Options{})
		if err != nil {
			return false
		}
		dist, _, err := BFS(e, g, 0)
		if err != nil {
			return false
		}
		want := graph.BFSLevels(g, 0)
		for v := range want {
			if int64(want[v]) != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
