package topology

import "testing"

func TestFatTreeHops(t *testing.T) {
	f := FatTree{NodesPerLeaf: 4, LeavesPerPod: 2, Pods: 3}
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 3, 1},  // same leaf
		{0, 4, 3},  // same pod, different leaves
		{0, 8, 5},  // different pods
		{9, 13, 3}, // pod 1 internal (leaves 2,3)
	}
	for _, tc := range cases {
		if got := f.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if f.Hops(tc.a, tc.b) != f.Hops(tc.b, tc.a) {
			t.Errorf("asymmetric hops %d,%d", tc.a, tc.b)
		}
	}
	if f.MaxHops() != 5 {
		t.Fatalf("MaxHops = %d", f.MaxHops())
	}
	if (FatTree{NodesPerLeaf: 4, LeavesPerPod: 2, Pods: 1}).MaxHops() != 3 {
		t.Fatal("single-pod MaxHops should be 3")
	}
	if (FatTree{NodesPerLeaf: 4, LeavesPerPod: 1, Pods: 1}).MaxHops() != 1 {
		t.Fatal("single-leaf MaxHops should be 1")
	}
	if f.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestDragonflyHops(t *testing.T) {
	d := Dragonfly{NodesPerRouter: 2, RoutersPerGroup: 3, Groups: 2}
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},  // same router
		{0, 2, 2},  // same group, different routers
		{0, 6, 4},  // different groups
		{7, 11, 2}, // group 1 internal
	}
	for _, tc := range cases {
		if got := d.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if d.MaxHops() != 4 {
		t.Fatalf("MaxHops = %d", d.MaxHops())
	}
	if (Dragonfly{NodesPerRouter: 2, RoutersPerGroup: 3, Groups: 1}).MaxHops() != 2 {
		t.Fatal("single-group MaxHops should be 2")
	}
	if d.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestFabricClusters(t *testing.T) {
	ft := FatTreeCluster(2, 2, 2) // 8 nodes × 20 cores
	if ft.TotalCores() != 160 {
		t.Fatalf("fat-tree cores = %d", ft.TotalCores())
	}
	df := DragonflyCluster(2, 2, 2)
	if df.TotalCores() != 160 {
		t.Fatalf("dragonfly cores = %d", df.TotalCores())
	}
	// Cost ordering must respect the fabric distances.
	sameLeaf := ft.Cost(0, 20)   // nodes 0,1 share a leaf
	crossPod := ft.Cost(0, 4*20) // node 4 is in pod 1
	if sameLeaf >= crossPod {
		t.Fatalf("fat-tree cost ordering violated: %v vs %v", sameLeaf, crossPod)
	}
	sameRouter := df.Cost(0, 20)
	crossGroup := df.Cost(0, 4*20)
	if sameRouter >= crossGroup {
		t.Fatalf("dragonfly cost ordering violated: %v vs %v", sameRouter, crossGroup)
	}
}
