package dyn

import (
	"testing"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/partition"
	"paragon/internal/stream"
)

func TestRandomChurnShape(t *testing.T) {
	g := gen.RMAT(1000, 5000, 0.57, 0.19, 0.19, 1)
	ops := RandomChurn(g, 50, 30, 7)
	adds, removes := 0, 0
	for _, op := range ops {
		if op.U == op.V {
			t.Fatal("self-loop event generated")
		}
		if op.Add {
			adds++
			if op.W <= 0 {
				t.Fatal("add event without weight")
			}
		} else {
			removes++
			if !g.HasEdge(op.U, op.V) {
				t.Fatal("remove event for a non-edge")
			}
		}
	}
	if adds == 0 || removes == 0 {
		t.Fatalf("adds=%d removes=%d", adds, removes)
	}
	if RandomChurn(gen.Mesh2D(2, 2), 1, 1, 1) == nil {
		// tiny graphs still produce events
		t.Log("tiny graph produced no events (acceptable)")
	}
	if got := RandomChurn(graph.NewBuilder(1).Build(), 5, 5, 1); got != nil {
		t.Fatalf("single-vertex graph produced events: %v", got)
	}
}

func TestApplyChurn(t *testing.T) {
	g := gen.Mesh2D(10, 10)
	o := graph.NewOverlay(g)
	before := o.NumEdges()
	ops := RandomChurn(g, 40, 20, 3)
	applied := ApplyChurn(o, ops)
	if applied == 0 {
		t.Fatal("nothing applied")
	}
	m := o.Materialize()
	if err := m.Validate(); err != nil {
		t.Fatalf("churned graph invalid: %v", err)
	}
	if m.NumEdges() == before {
		t.Log("edge count unchanged (adds balanced removes) — still fine")
	}
	// Removing an absent edge and re-adding an existing one are skipped.
	o2 := graph.NewOverlay(g)
	skip := []EdgeOp{
		{Add: false, U: 0, V: 99},     // not an edge
		{Add: true, U: 0, V: 1, W: 1}, // already exists
	}
	if got := ApplyChurn(o2, skip); got != 0 {
		t.Fatalf("applied %d no-op events", got)
	}
}

func TestTriggerPolicySkew(t *testing.T) {
	g := gen.Mesh2D(12, 12)
	p := partition.New(4, g.NumVertices()) // everything in partition 0
	d := DefaultTrigger().Evaluate(g, p, 0)
	if !d.Refine {
		t.Fatalf("collapsed decomposition not flagged: %+v", d)
	}
	if d.Skew < 3 {
		t.Fatalf("skew = %v for a fully collapsed decomposition", d.Skew)
	}
}

func TestTriggerPolicyChurn(t *testing.T) {
	g := gen.Mesh2D(12, 12)
	p := stream.DG(g, 4, stream.DefaultOptions())
	tp := DefaultTrigger()
	healthy := tp.Evaluate(g, p, 0)
	if healthy.Refine {
		t.Fatalf("healthy decomposition flagged: %+v", healthy)
	}
	churned := tp.Evaluate(g, p, g.NumEdges()/10) // 10% churn
	if !churned.Refine {
		t.Fatalf("10%% churn not flagged: %+v", churned)
	}
	if churned.Reason == "" {
		t.Fatal("decision must carry a reason")
	}
}

func TestTriggerZeroValueDefaults(t *testing.T) {
	g := gen.Mesh2D(8, 8)
	p := stream.DG(g, 4, stream.DefaultOptions())
	var tp TriggerPolicy // zero value: defaults apply inside Evaluate
	d := tp.Evaluate(g, p, 0)
	if d.Refine {
		t.Fatalf("zero-value policy misfired: %+v", d)
	}
}

func TestChurnThenRefineLoop(t *testing.T) {
	// End-to-end edge-dynamism loop: churn -> trigger -> refine ->
	// healthy again.
	g := gen.RMAT(2000, 10000, 0.57, 0.19, 0.19, 5)
	g.UseDegreeWeights()
	p := stream.DG(g, 8, stream.DefaultOptions())
	o := graph.NewOverlay(g)
	applied := ApplyChurn(o, RandomChurn(g, 1500, 200, 9))
	cur := o.Materialize()
	cur.UseDegreeWeights()
	d := DefaultTrigger().Evaluate(cur, p, int64(applied))
	if !d.Refine {
		t.Fatalf("heavy churn not flagged: %+v", d)
	}
}
