package zoltan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func TestConnectivityCutBasics(t *testing.T) {
	// A path 0-1-2 split {0},{1},{2}: net(0)={0,1} spans 2 parts (+1),
	// net(1)={0,1,2} spans 3 (+2), net(2)={1,2} spans 2 (+1) => 4.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	p := partition.New(3, 3)
	p.Assign[1], p.Assign[2] = 1, 2
	if c := ConnectivityCut(g, p); c != 4 {
		t.Fatalf("connectivity = %v, want 4", c)
	}
	// Single partition: zero.
	p1 := partition.New(1, 3)
	if c := ConnectivityCut(g, p1); c != 0 {
		t.Fatalf("1-way connectivity = %v", c)
	}
}

func TestConnectivityVsEdgeCut(t *testing.T) {
	// Connectivity-1 counts each remote partition once per net, so it is
	// at most the edge cut (for unit weights) but can be far less on
	// hub vertices.
	g := gen.RMAT(800, 4800, 0.57, 0.19, 0.19, 2)
	p := stream.HP(g, 8)
	conn := ConnectivityCut(g, p)
	cut := float64(partition.EdgeCut(g, p))
	if conn <= 0 {
		t.Fatal("connectivity must be positive for a hashed power-law graph")
	}
	if conn > 2*cut {
		t.Fatalf("connectivity %v implausibly above cut %v", conn, cut)
	}
}

func TestRepartitionImprovesConnectivity(t *testing.T) {
	g := gen.Mesh2D(24, 24)
	g.UseDegreeWeights()
	old := stream.HP(g, 6)
	_, st, err := Repartition(g, old, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ConnectivityAfter >= st.ConnectivityBefore {
		t.Fatalf("connectivity not improved: %v -> %v", st.ConnectivityBefore, st.ConnectivityAfter)
	}
	if st.Moves == 0 {
		t.Fatal("no moves recorded")
	}
}

func TestRepartitionRestoresBalance(t *testing.T) {
	g := gen.Mesh2D(20, 20)
	old := partition.New(4, g.NumVertices()) // collapsed
	now, _, err := Repartition(g, old, Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := now.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s := partition.Skewness(g, now); s > 1.25 {
		t.Fatalf("residual skew %.3f", s)
	}
}

func TestRepartitionKeepsMigrationModest(t *testing.T) {
	// Starting from a decent decomposition, the migration-net term must
	// keep most vertices home.
	g := gen.Mesh2D(24, 24)
	g.UseDegreeWeights()
	old := stream.DG(g, 6, stream.DefaultOptions())
	now, _, err := Repartition(g, old, Options{})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for v := range old.Assign {
		if old.Assign[v] != now.Assign[v] {
			moved++
		}
	}
	if float64(moved) > 0.5*float64(len(old.Assign)) {
		t.Fatalf("moved %d of %d vertices despite migration nets", moved, len(old.Assign))
	}
	// Objective (connectivity + migration/α) must not rise.
	alpha := 10.0
	uni := topology.UniformMatrix(6)
	objOld := ConnectivityCut(g, old)
	objNew := ConnectivityCut(g, now) + partition.MigrationCost(g, old, now, uni)/alpha
	if objNew > objOld+1e-6 {
		t.Fatalf("objective rose: %v -> %v", objOld, objNew)
	}
}

func TestRepartitionErrors(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 1)
	bad := partition.New(4, 3)
	if _, _, err := Repartition(g, bad, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMoveDeltaMatchesRecomputation(t *testing.T) {
	// The incremental delta must equal the exact connectivity difference
	// (migration term excluded by old == current assignment at cur).
	rng := rand.New(rand.NewSource(5))
	g := gen.ErdosRenyi(150, 600, 4)
	p := stream.HP(g, 5)
	for trial := 0; trial < 200; trial++ {
		v := int32(rng.Intn(int(g.NumVertices())))
		dst := int32(rng.Intn(5))
		cur := p.Assign[v]
		if dst == cur {
			continue
		}
		old := p.Clone() // old owner == current: migration term is -vs/α for leaving
		before := ConnectivityCut(g, p)
		delta := moveDelta(g, p, old.Assign, v, dst, 10)
		migTerm := float64(g.VertexSize(v)) / 10 // leaving home
		p.Assign[v] = dst
		after := ConnectivityCut(g, p)
		p.Assign[v] = cur
		got, want := delta-migTerm, after-before
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: delta %v (conn part) vs exact %v", trial, got, want)
		}
	}
}

// Property: repartitioning always yields valid, weight-conserving
// decompositions and never raises the combined objective.
func TestQuickRepartitionInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int32(kRaw%6) + 2
		g := gen.ErdosRenyi(200, 700, seed)
		g.UseDegreeWeights()
		old := stream.HP(g, k)
		now, st, err := Repartition(g, old, Options{})
		if err != nil {
			return false
		}
		if err := now.Validate(g); err != nil {
			return false
		}
		var total int64
		for _, w := range now.Weights(g) {
			total += w
		}
		if total != g.TotalVertexWeight() {
			return false
		}
		return st.ConnectivityAfter <= st.ConnectivityBefore+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
