// Package graph provides the in-memory graph substrate used throughout the
// PARAGON reproduction: a compact CSR (compressed sparse row) representation
// of an undirected graph with integer vertex weights, vertex sizes, and edge
// weights, plus builders, accessors, and structural utilities.
//
// Conventions follow the METIS input model that the paper builds on:
//
//   - vertices are dense 0-based int32 identifiers;
//   - the graph is undirected and stored symmetrically — every edge {u,v}
//     appears in both adjacency lists with the same weight;
//   - vertex weight w(v) models the computational requirement of v,
//   - vertex size vs(v) models the amount of application data carried by v
//     (the quantity that must move when v migrates, Eq. 3 of the paper),
//   - edge weight w(e) models the amount of data communicated along e per
//     superstep (Eq. 2 of the paper).
package graph

import (
	"fmt"
	"math"
)

// Graph is an immutable undirected graph in CSR form. Use a Builder to
// construct one. The zero value is an empty graph.
type Graph struct {
	xadj  []int64 // length n+1; adjacency list of v is adj[xadj[v]:xadj[v+1]]
	adj   []int32 // concatenated neighbor lists
	ewgt  []int32 // parallel to adj; weight of each half-edge
	vwgt  []int32 // length n; computational weight of each vertex
	vsize []int32 // length n; data size of each vertex
}

// NumVertices returns the number of vertices in g.
func (g *Graph) NumVertices() int32 {
	if g == nil || len(g.xadj) == 0 {
		return 0
	}
	return int32(len(g.xadj) - 1)
}

// NumEdges returns the number of undirected edges in g. Each undirected
// edge {u,v} counts once even though it is stored twice.
func (g *Graph) NumEdges() int64 {
	if g == nil || len(g.xadj) == 0 {
		return 0
	}
	return int64(len(g.adj)) / 2
}

// NumHalfEdges returns the number of directed (stored) half-edges, i.e.
// 2·NumEdges for a symmetric graph.
func (g *Graph) NumHalfEdges() int64 { return int64(len(g.adj)) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int32 {
	return int32(g.xadj[v+1] - g.xadj[v])
}

// Neighbors returns the adjacency slice of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.xadj[v]:g.xadj[v+1]]
}

// EdgeWeights returns the weights parallel to Neighbors(v). The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) EdgeWeights(v int32) []int32 {
	return g.ewgt[g.xadj[v]:g.xadj[v+1]]
}

// VertexWeight returns w(v), the computational requirement of v.
func (g *Graph) VertexWeight(v int32) int32 { return g.vwgt[v] }

// VertexSize returns vs(v), the amount of application data on v.
func (g *Graph) VertexSize(v int32) int32 { return g.vsize[v] }

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 {
	var t int64
	for _, w := range g.vwgt {
		t += int64(w)
	}
	return t
}

// TotalEdgeWeight returns the sum of w(e) over undirected edges.
func (g *Graph) TotalEdgeWeight() int64 {
	var t int64
	for _, w := range g.ewgt {
		t += int64(w)
	}
	return t / 2
}

// EdgeWeightBetween returns the weight of edge {u,v}, or 0 when the edge
// does not exist. It scans the shorter adjacency list.
func (g *Graph) EdgeWeightBetween(u, v int32) int32 {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	for i, nb := range adj {
		if nb == v {
			return g.EdgeWeights(u)[i]
		}
	}
	return 0
}

// HasEdge reports whether the edge {u,v} exists.
func (g *Graph) HasEdge(u, v int32) bool { return g.EdgeWeightBetween(u, v) != 0 }

// MaxDegree returns the largest vertex degree in g.
func (g *Graph) MaxDegree() int32 {
	var m int32
	for v := int32(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns the mean vertex degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumHalfEdges()) / float64(n)
}

// Validate checks internal CSR invariants: monotone xadj, neighbor ids in
// range, no self-loops, positive weights, and symmetry of both structure
// and weights. It is O(V+E·logE) and intended for tests and tooling.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if int64(len(g.xadj)) != int64(n)+1 && n != 0 {
		return fmt.Errorf("graph: xadj length %d != n+1 (%d)", len(g.xadj), n+1)
	}
	if len(g.adj) != len(g.ewgt) {
		return fmt.Errorf("graph: adj/ewgt length mismatch %d vs %d", len(g.adj), len(g.ewgt))
	}
	if int32(len(g.vwgt)) != n || int32(len(g.vsize)) != n {
		return fmt.Errorf("graph: vertex attribute length mismatch")
	}
	// Offset sanity first: every later check indexes adj via xadj, so a
	// corrupt offset table must be rejected before it can be followed.
	if n > 0 {
		if g.xadj[0] != 0 {
			return fmt.Errorf("graph: xadj[0] = %d, want 0", g.xadj[0])
		}
		if g.xadj[n] != int64(len(g.adj)) {
			return fmt.Errorf("graph: xadj[n] = %d, want adj length %d", g.xadj[n], len(g.adj))
		}
	} else if len(g.adj) != 0 {
		return fmt.Errorf("graph: %d half-edges with no vertices", len(g.adj))
	}
	// The whole offset table must be verified before any adj dereference:
	// a monotonicity break at v+2 would otherwise be reachable through
	// vertex v+1's adjacency scan.
	for v := int32(0); v < n; v++ {
		if g.xadj[v] < 0 || g.xadj[v] > g.xadj[v+1] {
			return fmt.Errorf("graph: xadj not monotone at %d", v)
		}
	}
	for v := int32(0); v < n; v++ {
		if g.vwgt[v] < 0 || g.vsize[v] < 0 {
			return fmt.Errorf("graph: negative vertex weight/size at %d", v)
		}
		prev := int32(-1)
		dup := false
		for i := g.xadj[v]; i < g.xadj[v+1]; i++ {
			u := g.adj[i]
			if u < 0 || u >= n {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if g.ewgt[i] <= 0 {
				return fmt.Errorf("graph: non-positive edge weight on (%d,%d)", v, u)
			}
			if u == prev {
				dup = true
			}
			prev = u
		}
		if dup {
			return fmt.Errorf("graph: duplicate neighbor in sorted list of %d", v)
		}
	}
	// Symmetry: every half-edge must have a matching reverse with equal weight.
	for v := int32(0); v < n; v++ {
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			if rw := g.EdgeWeightBetween(u, v); rw != w[i] {
				return fmt.Errorf("graph: asymmetric edge (%d,%d): %d vs %d", v, u, w[i], rw)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		xadj:  append([]int64(nil), g.xadj...),
		adj:   append([]int32(nil), g.adj...),
		ewgt:  append([]int32(nil), g.ewgt...),
		vwgt:  append([]int32(nil), g.vwgt...),
		vsize: append([]int32(nil), g.vsize...),
	}
	return cp
}

// SetVertexWeights replaces all vertex weights. The slice is copied.
func (g *Graph) SetVertexWeights(w []int32) error {
	if int32(len(w)) != g.NumVertices() {
		return fmt.Errorf("graph: SetVertexWeights: length %d != n %d", len(w), g.NumVertices())
	}
	copy(g.vwgt, w)
	return nil
}

// SetVertexSizes replaces all vertex sizes. The slice is copied.
func (g *Graph) SetVertexSizes(s []int32) error {
	if int32(len(s)) != g.NumVertices() {
		return fmt.Errorf("graph: SetVertexSizes: length %d != n %d", len(s), g.NumVertices())
	}
	copy(g.vsize, s)
	return nil
}

// UseDegreeWeights sets, as the paper's evaluation does, both the vertex
// weight and the vertex size of every vertex to its degree (minimum 1), and
// leaves edge weights untouched.
func (g *Graph) UseDegreeWeights() {
	for v := int32(0); v < g.NumVertices(); v++ {
		d := g.Degree(v)
		if d < 1 {
			d = 1
		}
		g.vwgt[v] = d
		g.vsize[v] = d
	}
}

// DegreeHistogram returns counts of vertices per degree bucket where bucket
// i covers degrees [2^i, 2^(i+1)). Bucket 0 covers degrees 0 and 1.
func (g *Graph) DegreeHistogram() []int64 {
	var hist []int64
	for v := int32(0); v < g.NumVertices(); v++ {
		d := g.Degree(v)
		b := 0
		if d > 1 {
			b = int(math.Log2(float64(d)))
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}
