package lint

import (
	"go/ast"
	"go/types"
)

// WallClock flags time.Now / time.Since inside refinement-kernel
// packages. Kernels must be pure functions of (graph, partitioning,
// seed): reading the clock there either leaks nondeterminism into
// results or, more insidiously, tempts time-based tie-breaking and
// adaptive cutoffs that vary run to run. Timing belongs in the driver
// layer (cmd/*, internal/exp, the baselines' Stats plumbing), which is
// outside the kernel set. A kernel-adjacent orchestration layer that
// legitimately reports wall-clock stats documents each site with
// //lint:ignore wallclock <reason>.
type WallClock struct {
	// Kernel reports whether an import path is a refinement kernel
	// package. Nil covers every package (useful for fixtures).
	Kernel func(path string) bool
}

func (WallClock) Name() string { return "wallclock" }
func (WallClock) Doc() string {
	return "refinement kernels must not read the wall clock; timing belongs to the driver layer"
}

func (c WallClock) Check(pkg *Package) []Diagnostic {
	if c.Kernel != nil && !c.Kernel(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since", "Tick":
				out = append(out, diag(pkg, id.Pos(), "wallclock",
					"time.%s inside a refinement kernel; move timing to the driver layer", fn.Name()))
			}
			return true
		})
	}
	return out
}
