package graph_test

import (
	"fmt"
	"math/rand"
	"testing"

	"paragon/internal/graph"
)

// BenchmarkBuild measures the counting-scatter CSR build across graph
// sizes at fixed average degree. Build is O(|V| + |E|) with no
// comparison sorts, so ns/op must grow near-linearly with n (within
// cache effects) and allocs/op must stay flat — the regression guards
// for the 10M-vertex scale path (scripts/bench_scale.sh exercises the
// full 10M build; this bench keeps the complexity honest in CI).
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int32{100_000, 400_000, 1_600_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const avgDeg = 8
			m := int64(n) * avgDeg / 2
			// Pre-generate the edge list outside the timer: the bench
			// measures Build, not the RNG.
			rng := rand.New(rand.NewSource(42))
			us := make([]int32, m)
			vs := make([]int32, m)
			for i := range us {
				u := rng.Int31n(n)
				v := rng.Int31n(n)
				for v == u {
					v = rng.Int31n(n)
				}
				us[i], vs[i] = u, v
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bld := graph.NewBuilder(n)
				bld.Reserve(m)
				for j := range us {
					bld.AddEdge(us[j], vs[j])
				}
				g := bld.Build()
				if g.NumVertices() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}
