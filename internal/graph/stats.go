package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes a graph's structure — the numbers used to check that
// a synthetic stand-in matches its real dataset's class (Table 2 of the
// paper lists |V| and |E|; degree shape and clustering distinguish FEM
// meshes from road networks from power-law graphs).
type Stats struct {
	Vertices    int32
	Edges       int64
	MinDegree   int32
	MaxDegree   int32
	AvgDegree   float64
	MedDegree   int32
	Components  int32
	LargestComp int64
	// ClusteringCoeff is a sampled global clustering coefficient
	// (triangles over wedges around up to sampleCap vertices).
	ClusteringCoeff float64
	// DegreeSkew is max degree over average degree — >10 marks
	// power-law-like graphs.
	DegreeSkew float64
}

const sampleCap = 2000

// ComputeStats analyzes g.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	st := Stats{Vertices: n, Edges: g.NumEdges()}
	if n == 0 {
		return st
	}
	degs := make([]int32, n)
	st.MinDegree = math.MaxInt32
	for v := int32(0); v < n; v++ {
		d := g.Degree(v)
		degs[v] = d
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	st.AvgDegree = g.AvgDegree()
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	st.MedDegree = degs[n/2]
	if st.AvgDegree > 0 {
		st.DegreeSkew = float64(st.MaxDegree) / st.AvgDegree
	}
	comp, k := ConnectedComponents(g)
	st.Components = k
	sizes := make([]int64, k)
	for _, c := range comp {
		sizes[c]++
	}
	for _, s := range sizes {
		if s > st.LargestComp {
			st.LargestComp = s
		}
	}
	// Sampled clustering coefficient.
	step := n/sampleCap + 1
	var tri, wedges int64
	for v := int32(0); v < n; v += step {
		adj := g.Neighbors(v)
		d := len(adj)
		if d < 2 {
			continue
		}
		wedges += int64(d) * int64(d-1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(adj[i], adj[j]) {
					tri++
				}
			}
		}
	}
	if wedges > 0 {
		st.ClusteringCoeff = float64(tri) / float64(wedges)
	}
	return st
}

// String renders the stats as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices:    %d\n", s.Vertices)
	fmt.Fprintf(&b, "edges:       %d\n", s.Edges)
	fmt.Fprintf(&b, "degree:      min %d / med %d / avg %.2f / max %d (skew %.1f)\n",
		s.MinDegree, s.MedDegree, s.AvgDegree, s.MaxDegree, s.DegreeSkew)
	fmt.Fprintf(&b, "components:  %d (largest %d)\n", s.Components, s.LargestComp)
	fmt.Fprintf(&b, "clustering:  %.4f (sampled)", s.ClusteringCoeff)
	return b.String()
}
