package faultsim

import (
	"sync"
	"testing"
)

func TestZeroRateNeverFires(t *testing.T) {
	in := NewInjector(Config{Seed: 99})
	for round := 0; round < 50; round++ {
		for g := 0; g < 16; g++ {
			if in.CrashGroup(round, g) {
				t.Fatalf("crash fired at rate 0 (round %d group %d)", round, g)
			}
			if d := in.GroupDelay(round, g); d != 0 {
				t.Fatalf("delay %d at rate 0", d)
			}
			if in.Drop(round, g, 0) {
				t.Fatal("drop fired at rate 0")
			}
			if in.AbortMigration(round, g) {
				t.Fatal("abort fired at rate 0")
			}
		}
	}
	if c := in.Counters(); c.Total() != 0 {
		t.Fatalf("counters %+v at rate 0", c)
	}
	if r := in.Realized(); len(r) != 0 {
		t.Fatalf("realized %v at rate 0", r)
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := NewInjector(Config{Seed: 7, Rate: 1})
	if !in.CrashGroup(0, 0) || !in.Drop(3, 1, 2) || !in.AbortMigration(0, 5) {
		t.Fatal("rate-1 decision did not fire")
	}
	if d := in.GroupDelay(1, 2); d < 1 || d > 32 {
		t.Fatalf("rate-1 delay %d outside [1, MaxDelay]", d)
	}
}

// Decisions are pure functions of (seed, kind, coordinates): independent
// of query order and of which goroutine asks.
func TestDecisionsAreOrderIndependent(t *testing.T) {
	type q struct{ round, group int }
	var queries []q
	for round := 0; round < 10; round++ {
		for g := 0; g < 8; g++ {
			queries = append(queries, q{round, g})
		}
	}
	ask := func(in *Injector, reverse bool) map[q]bool {
		out := make(map[q]bool)
		for i := range queries {
			idx := i
			if reverse {
				idx = len(queries) - 1 - i
			}
			qu := queries[idx]
			out[qu] = in.CrashGroup(qu.round, qu.group)
		}
		return out
	}
	a := ask(NewInjector(Config{Seed: 5, Rate: 0.3}), false)
	b := ask(NewInjector(Config{Seed: 5, Rate: 0.3}), true)
	for qu, fired := range a {
		if b[qu] != fired {
			t.Fatalf("decision for %+v depends on query order", qu)
		}
	}
}

func TestConcurrentQueriesDeterministic(t *testing.T) {
	run := func() Counters {
		in := NewInjector(Config{Seed: 11, Rate: 0.25})
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for round := 0; round < 40; round++ {
					in.CrashGroup(round, w)
					in.GroupDelay(round, w)
					in.Drop(round, w, 0)
				}
			}(w)
		}
		wg.Wait()
		return in.Counters()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("concurrent runs diverged: %+v vs %+v", a, b)
	}
}

// Replaying the realized schedule of a stochastic run (script mode,
// rate 0) reproduces every decision exactly.
func TestRealizedScheduleReplays(t *testing.T) {
	live := NewInjector(Config{Seed: 42, Rate: 0.35})
	type obs struct {
		crash bool
		delay int64
		drop  bool
	}
	observe := func(in *Injector) []obs {
		var out []obs
		for round := 0; round < 20; round++ {
			for g := 0; g < 6; g++ {
				out = append(out, obs{
					crash: in.CrashGroup(round, g),
					delay: in.GroupDelay(round, g),
					drop:  in.Drop(round, g, 1),
				})
			}
		}
		return out
	}
	want := observe(live)
	sched := live.Realized()
	if len(sched) == 0 {
		t.Fatal("no faults fired at rate 0.35 over 360 points — hash suspect")
	}
	replay := NewInjector(Config{Script: sched})
	got := observe(replay)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("replay diverged at point %d: %+v vs %+v", i, want[i], got[i])
		}
	}
	// The replay's realized log matches the script it was fed.
	re := replay.Realized()
	if len(re) != len(sched) {
		t.Fatalf("replay realized %d events, script had %d", len(re), len(sched))
	}
	for i := range re {
		if re[i] != sched[i] {
			t.Fatalf("replay event %d = %+v, want %+v", i, re[i], sched[i])
		}
	}
}

func TestScriptedEventsFire(t *testing.T) {
	in := NewInjector(Config{Script: []Event{
		{Kind: KindCrash, Round: 2, Index: 1},
		{Kind: KindStraggler, Round: 0, Index: 3, Delay: 9},
		{Kind: KindDrop, Round: 1, Index: 0, Attempt: 2},
		{Kind: KindAbort, Round: 0, Index: 4},
	}})
	if !in.CrashGroup(2, 1) || in.CrashGroup(2, 0) || in.CrashGroup(1, 1) {
		t.Fatal("scripted crash coordinates wrong")
	}
	if d := in.GroupDelay(0, 3); d != 9 {
		t.Fatalf("scripted delay = %d, want 9", d)
	}
	if in.GroupDelay(0, 2) != 0 {
		t.Fatal("unscripted straggler fired")
	}
	if !in.Drop(1, 0, 2) || in.Drop(1, 0, 0) || in.Drop(1, 0, 1) {
		t.Fatal("scripted drop must hit only its attempt")
	}
	if !in.AbortMigration(0, 4) || in.AbortMigration(0, 3) {
		t.Fatal("scripted abort coordinates wrong")
	}
}

func TestNextEpochMonotone(t *testing.T) {
	in := NewInjector(Config{})
	for i := 0; i < 5; i++ {
		if e := in.NextEpoch(); e != i {
			t.Fatalf("epoch %d, want %d", e, i)
		}
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("clock not at zero")
	}
	if c.Advance(5) != 5 || c.Advance(-3) != 5 || c.Advance(2) != 7 {
		t.Fatalf("advance arithmetic wrong: now=%d", c.Now())
	}
}

func TestPolicyBackoffCapped(t *testing.T) {
	p := DefaultPolicy()
	want := []int64{1, 2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Fatalf("backoff(%d) = %d, want %d", i, got, w)
		}
	}
	// Zero value behaves like the default.
	var zero Policy
	if zero.Backoff(3) != 8 || zero.Normalized() != DefaultPolicy() {
		t.Fatal("zero Policy does not default")
	}
}

// The stochastic layer's empirical rate should be in the neighborhood of
// the configured rate (law of large numbers over 20k independent points).
func TestRateRoughlyHonored(t *testing.T) {
	in := NewInjector(Config{Seed: 3, Rate: 0.2})
	fired := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if in.Drop(i/100, i%100, 0) {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("empirical rate %.4f far from 0.2", frac)
	}
}
