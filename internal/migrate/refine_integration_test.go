// External test package: the refinement driver now depends on migrate
// transitively (paragon → dir → migrate), so a test that drives a real
// refinement to obtain its plan must live outside package migrate to
// avoid an import cycle in the test binary.
package migrate_test

import (
	"testing"

	"paragon/internal/gen"
	"paragon/internal/migrate"
	"paragon/internal/paragon"
	"paragon/internal/stream"
)

func TestExecuteMovesEverything(t *testing.T) {
	g := gen.RMAT(800, 4000, 0.57, 0.19, 0.19, 2)
	g.UseDegreeWeights()
	old := stream.DG(g, 8, stream.DefaultOptions())
	stores := migrate.BuildStores(g, old)
	if err := migrate.Verify(stores, g, old); err != nil {
		t.Fatalf("initial stores invalid: %v", err)
	}
	// Refine to get a real migration plan.
	now := old.Clone()
	if _, err := paragon.RefineUniform(g, now, paragon.Config{DRP: 4, Shuffles: 2, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	plan, err := migrate.NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Skip("refinement made no moves at this seed")
	}
	st, err := migrate.Execute(stores, plan, migrate.AppContext{})
	if err != nil {
		t.Fatal(err)
	}
	if err := migrate.Verify(stores, g, now); err != nil {
		t.Fatalf("post-migration stores invalid: %v", err)
	}
	if st.MovedVertices != int64(len(plan.Moves)) {
		t.Fatalf("moved %d, plan had %d", st.MovedVertices, len(plan.Moves))
	}
	var sent, recv int64
	for r := range st.PerRankSent {
		sent += st.PerRankSent[r]
		recv += st.PerRankRecv[r]
	}
	if sent != recv || sent != st.MovedVertices {
		t.Fatalf("send/recv mismatch: %d %d %d", sent, recv, st.MovedVertices)
	}
	if st.MovedBytes <= 0 {
		t.Fatal("moved bytes not accounted")
	}
}
