package session

import (
	"bytes"
	"math"
	"testing"

	"paragon/internal/dyn"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/obs"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

const (
	tN0   = 600
	tM0   = 3000
	tK    = 8
	tCap  = 800
	tSeed = 7
)

func testBase(t *testing.T) (*graph.Graph, *partition.Partitioning) {
	t.Helper()
	g0 := gen.RMAT(tN0, tM0, 0.57, 0.19, 0.19, tSeed)
	p0 := stream.LDG(g0, tK, stream.DefaultOptions())
	return g0, p0
}

func testConfig(workers int, faultRate float64, tr *obs.Tracer, mr *obs.Registry) Config {
	cfg := Config{
		Capacity:  tCap,
		Costs:     topology.UniformMatrix(tK),
		FaultRate: faultRate,
		FaultSeed: 33,
		Trace:     tr,
		Metrics:   mr,
	}
	cfg.Refine.Workers = workers
	cfg.Refine.Seed = 11
	return cfg
}

type runResult struct {
	hash      uint64
	dirHash   uint64
	dirEpoch  int64
	stats     Stats
	trace     []byte
	metrics   []byte
	committed int
	launched  int
}

// runSchedule replays the same seeded workload into a fresh session and
// returns everything the replay contract pins.
func runSchedule(t *testing.T, workers int, faultRate float64, batches int) runResult {
	t.Helper()
	g0, p0 := testBase(t)
	tr := obs.NewTracer(1 << 14)
	mr := obs.NewRegistry()
	s, err := New(g0, p0, testConfig(workers, faultRate, tr, mr))
	if err != nil {
		t.Fatal(err)
	}
	w := dyn.NewWorkload(101, dyn.WorkloadConfig{Adds: 40, Removes: 15, Arrivals: 5})
	var res runResult
	for i := 0; i < batches; i++ {
		st, err := s.Ingest(w.Next(s.Source()))
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if st.Launched {
			res.launched++
		}
		if st.Committed {
			res.committed++
		}
	}
	if committed, err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	} else if committed {
		res.committed++
	}
	res.hash = s.AssignHash()
	res.dirHash = s.Directory().Current().AssignHash()
	res.dirEpoch = s.Directory().Epoch()
	res.stats = s.Stats()
	var tb, mb bytes.Buffer
	if err := obs.WriteJSONL(&tb, tr); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteProm(&mb, mr); err != nil {
		t.Fatal(err)
	}
	res.trace = tb.Bytes()
	res.metrics = mb.Bytes()
	return res
}

// The replay contract: a (seed, schedule) pair produces bit-identical
// live assignment, directory state, trace bytes, and metrics at every
// Workers value — fault-free and at fault rate 0.35 (≥ the 0.3 the
// acceptance criteria require).
func TestSessionReplayBitIdentity(t *testing.T) {
	for _, rate := range []float64{0, 0.35} {
		base := runSchedule(t, 1, rate, 40)
		if base.launched == 0 {
			t.Fatalf("rate %v: schedule never launched an epoch", rate)
		}
		if rate == 0 && base.committed == 0 {
			t.Fatal("fault-free schedule never committed an epoch")
		}
		for _, workers := range []int{2, 8} {
			got := runSchedule(t, workers, rate, 40)
			if got.hash != base.hash {
				t.Errorf("rate %v workers %d: assign hash %#x != %#x", rate, workers, got.hash, base.hash)
			}
			if got.dirHash != base.dirHash || got.dirEpoch != base.dirEpoch {
				t.Errorf("rate %v workers %d: directory diverged (epoch %d vs %d)", rate, workers, got.dirEpoch, base.dirEpoch)
			}
			if got.stats != base.stats {
				t.Errorf("rate %v workers %d: stats diverged\n got %+v\nwant %+v", rate, workers, got.stats, base.stats)
			}
			if !bytes.Equal(got.trace, base.trace) {
				t.Errorf("rate %v workers %d: trace bytes diverged", rate, workers)
			}
			if !bytes.Equal(got.metrics, base.metrics) {
				t.Errorf("rate %v workers %d: metrics bytes diverged", rate, workers)
			}
		}
	}
}

// Under a certain-fault fabric every publish dies: epochs must abort,
// the base directory epoch must stay live and untorn, and the session
// must keep ingesting — degradation, not corruption.
func TestSessionEpochAbortLeavesPreviousLive(t *testing.T) {
	g0, p0 := testBase(t)
	s, err := New(g0, p0, testConfig(2, 1.0, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	baseHash := s.Directory().Current().AssignHash()
	w := dyn.NewWorkload(55, dyn.WorkloadConfig{Adds: 60, Removes: 20, Arrivals: 4})
	for i := 0; i < 30; i++ {
		if _, err := s.Ingest(w.Next(s.Source())); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.EpochsLaunched == 0 {
		t.Fatal("no epochs launched under heavy churn")
	}
	if st.EpochsCommitted != 0 {
		t.Fatalf("%d epochs committed under a certain-fault publish fabric", st.EpochsCommitted)
	}
	if st.EpochsAborted != st.EpochsLaunched {
		t.Fatalf("launched %d but aborted %d", st.EpochsLaunched, st.EpochsAborted)
	}
	if got := s.Directory().Epoch(); got != 0 {
		t.Fatalf("directory advanced to epoch %d despite aborted publishes", got)
	}
	if got := s.Directory().Current().AssignHash(); got != baseHash {
		t.Fatal("base directory epoch mutated by aborted publishes")
	}
	// The rolled-back index must still satisfy every invariant and the
	// epoch-side assignment must agree with the live side for every
	// vertex that is not awaiting its first post-arrival sync.
	if err := s.ix.Validate(); err != nil {
		t.Fatalf("index invalid after aborts: %v", err)
	}
	pending := make(map[int32]bool, len(s.placed))
	for _, v := range s.placed {
		pending[v] = true
	}
	for v := int32(0); v < s.cap; v++ {
		if !pending[v] && s.pidx.Assign[v] != s.live[v] {
			t.Fatalf("vertex %d: epoch-side %d != live %d after rollback", v, s.pidx.Assign[v], s.live[v])
		}
	}
}

// After a committed drain the directory serves exactly the live
// assignment — the atomic-publish half of the contract.
func TestSessionDirectoryFollowsCommit(t *testing.T) {
	g0, p0 := testBase(t)
	s, err := New(g0, p0, testConfig(1, 0, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	w := dyn.NewWorkload(77, dyn.WorkloadConfig{Adds: 80, Removes: 30, Arrivals: 3})
	launched := false
	for i := 0; i < 60 && !launched; i++ {
		st, err := s.Ingest(w.Next(s.Source()))
		if err != nil {
			t.Fatal(err)
		}
		launched = st.Launched
	}
	if !launched {
		t.Fatal("schedule never launched an epoch")
	}
	committed, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("fault-free epoch did not commit")
	}
	served := s.Directory().Current().AppendAssign(nil)
	for v := int32(0); v < s.cap; v++ {
		if served[v] != s.live[v] {
			t.Fatalf("vertex %d: directory serves %d, live is %d", v, served[v], s.live[v])
		}
	}
}

// The incrementally maintained score must match a from-scratch Eq. 2–4
// computation over the materialized live graph, and the reused index
// must stay bit-consistent across commit/abort cycles.
func TestSessionLiveStateConsistency(t *testing.T) {
	g0, p0 := testBase(t)
	s, err := New(g0, p0, testConfig(2, 0.3, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	w := dyn.NewWorkload(13, dyn.WorkloadConfig{Adds: 50, Removes: 20, Arrivals: 6})
	for i := 0; i < 30; i++ {
		if _, err := s.Ingest(w.Next(s.Source())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.EpochsLaunched == 0 {
		t.Fatal("schedule never launched an epoch")
	}

	if err := s.ix.Validate(); err != nil {
		t.Fatalf("live index invalid: %v", err)
	}

	live := &partition.Partitioning{K: tK, Assign: s.live}
	ref := partition.ComputeScore(s.materialize(), live, s.live, s.cfg.Costs, s.alpha)
	got := s.LiveScore()
	if got.EdgeCut != ref.EdgeCut {
		t.Fatalf("incremental cut %d != recomputed %d", got.EdgeCut, ref.EdgeCut)
	}
	if math.Abs(got.CommCost-ref.CommCost) > 1e-6*(1+math.Abs(ref.CommCost)) {
		t.Fatalf("incremental comm %v != recomputed %v", got.CommCost, ref.CommCost)
	}
	if math.Abs(got.Skewness-ref.Skewness) > 1e-12 {
		t.Fatalf("incremental skew %v != recomputed %v", got.Skewness, ref.Skewness)
	}

	// Loads must agree with a fresh per-partition weight sum.
	var loads [tK]int64
	for v := int32(0); v < s.cap; v++ {
		loads[s.live[v]] += int64(s.weight[v])
	}
	for q := 0; q < tK; q++ {
		if loads[q] != s.loads[q] {
			t.Fatalf("partition %d: maintained load %d != recomputed %d", q, s.loads[q], loads[q])
		}
	}
}

func TestSessionArrivalCapacity(t *testing.T) {
	g0, p0 := testBase(t)
	cfg := testConfig(1, 0, nil, nil)
	cfg.Capacity = tN0 + 3
	s, err := New(g0, p0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := dyn.NewWorkload(5, dyn.WorkloadConfig{Arrivals: 2})
	for i := 0; i < 4; i++ {
		if _, err := s.Ingest(w.Next(s.Source())); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Active != tN0+3 {
		t.Fatalf("active = %d, want capacity %d", st.Active, tN0+3)
	}
	if st.Arrivals != 3 || st.ArrivalsRejected != 5 {
		t.Fatalf("arrivals %d rejected %d, want 3/5", st.Arrivals, st.ArrivalsRejected)
	}
}

func TestSessionConfigValidation(t *testing.T) {
	g0, p0 := testBase(t)
	if _, err := New(g0, p0, Config{}); err == nil {
		t.Fatal("missing cost matrix accepted")
	}
	bad := testConfig(1, 0, nil, nil)
	bad.Capacity = tN0 - 1
	if _, err := New(g0, p0, bad); err == nil {
		t.Fatal("capacity below base size accepted")
	}
	p1 := partition.New(1, g0.NumVertices())
	cfg := testConfig(1, 0, nil, nil)
	if _, err := New(g0, p1, cfg); err == nil {
		t.Fatal("k = 1 accepted")
	}
}
