// Command paragon partitions a graph with a streaming heuristic and then
// refines the decomposition with PARAGON against a modeled cluster
// topology, reporting the quality metrics of §3 before and after.
//
// Usage:
//
//	paragon -in graph.metis -k 40 -cluster pitt -nodes 2 -lambda 1 \
//	        -partitioner dg -drp 8 -shuffles 8 -out assignment.txt
//
// The input is a METIS .graph file (as written by gengraph) or an edge
// list (-format edgelist).
//
// Fault tolerance can be exercised with -fault-rate/-fault-seed: a
// deterministic injector (internal/faultsim) crashes group servers,
// delays stragglers, and drops exchange messages at the given rate, and
// refinement degrades gracefully — a lost group costs quality, never
// validity. The same (-seed, -fault-seed, -fault-rate) triple replays
// the identical run bit-for-bit.
//
// -workers sizes the pair-level worker pool (default GOMAXPROCS); the
// output is bit-identical for every value. -cpuprofile/-memprofile write
// runtime/pprof profiles for diagnosing scaling regressions:
//
//	paragon -in graph.metis -k 128 -workers 8 -cpuprofile cpu.pb.gz
//	go tool pprof cpu.pb.gz
//
// Observability (DESIGN.md §13): -trace writes the structured refinement
// event stream as JSONL, -metrics writes the per-phase counters in the
// Prometheus text format, -summary prints a human per-phase table. Both
// files are deterministic — stamped with virtual ticks, never wall
// clock — so the same seeded run produces byte-identical files at any
// -workers value. -pprof-http serves net/http/pprof for live profiling
// of long refinements:
//
//	paragon -in graph.metis -trace run.jsonl -metrics run.prom -summary
//
// The serving layer (DESIGN.md §16): -dir-journal runs the refinement
// against an epoch-versioned partition directory, writes the directory's
// crash-safe epoch journal to the given path, and proves it by
// recovering the journal and comparing the recovered assignment hash
// against the live directory. -dir-bench additionally measures lookup
// throughput while a publisher keeps flipping epochs underneath the
// readers:
//
//	paragon -in graph.metis -dir-journal dir.journal -dir-bench
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"paragon/internal/dir"
	"paragon/internal/graph"
	"paragon/internal/metis"
	"paragon/internal/obs"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/portfolio"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func main() {
	in := flag.String("in", "", "input graph file (required)")
	format := flag.String("format", "metis", "input format: metis, edgelist, or binary")
	k := flag.Int("k", 0, "number of partitions (default: all cores of the cluster)")
	clusterName := flag.String("cluster", "pitt", "cluster model: pitt, gordon, or uma")
	nodes := flag.Int("nodes", 2, "number of compute nodes")
	lambda := flag.Float64("lambda", 0, "contention degree λ of Eq. 12")
	partitioner := flag.String("partitioner", "dg", "initial partitioner: hp, dg, ldg, fennel, metis, or metis-kway")
	drp := flag.Int("drp", 8, "degree of refinement parallelism")
	workers := flag.Int("workers", 0, "pair-level refinement workers (0 = GOMAXPROCS; result is identical for any value)")
	shuffles := flag.Int("shuffles", 8, "shuffle refinement rounds")
	khop := flag.Int("khop", 0, "boundary expansion hops shipped to group servers")
	alpha := flag.Float64("alpha", 10, "communication/migration weight α")
	eps := flag.Float64("eps", 0.02, "allowed load imbalance")
	seed := flag.Int64("seed", 42, "refinement seed")
	faultRate := flag.Float64("fault-rate", 0, "per-fault-point probability of injected faults (0 disables)")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the deterministic fault injector")
	portfolioSize := flag.Int("portfolio", 0, "portfolio members: race this many seeded refinements on the worker pool and keep the best (0 = plain refinement)")
	portfolioCombine := flag.Int("portfolio-combine", 2, "overlay the top members with the combine operator (< 2 disables)")
	out := flag.String("out", "", "write the final vertex->partition assignment here")
	topo := flag.Bool("topo", false, "print the modeled cluster topology and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile here (pprof format)")
	memProfile := flag.String("memprofile", "", "write a heap profile here on exit (pprof format)")
	traceOut := flag.String("trace", "", "write the structured refinement event stream here (JSONL, deterministic)")
	metricsOut := flag.String("metrics", "", "write refinement metrics here (Prometheus text format, deterministic)")
	summary := flag.Bool("summary", false, "print a per-phase metrics summary table after refinement")
	pprofHTTP := flag.String("pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060) during the run")
	dirJournal := flag.String("dir-journal", "", "serve the refinement through a partition directory and write its epoch journal here (recovery-verified)")
	dirBench := flag.Bool("dir-bench", false, "benchmark directory lookup throughput under concurrent epoch flips")
	flag.Parse()

	if *pprofHTTP != "" {
		go func() {
			if err := http.ListenAndServe(*pprofHTTP, nil); err != nil {
				fmt.Fprintf(os.Stderr, "paragon: pprof server: %v\n", err)
			}
		}()
	}

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := pf.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			mf, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fatal(err)
			}
			if err := mf.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	if *topo {
		var cl *topology.Cluster
		switch *clusterName {
		case "pitt":
			cl = topology.PittCluster(*nodes)
		case "gordon":
			cl = topology.GordonCluster(*nodes)
		case "uma":
			cl = topology.UMACluster(*nodes)
		default:
			fatal(fmt.Errorf("unknown cluster %q", *clusterName))
		}
		fmt.Print(cl.Describe())
		return
	}

	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	var g *graph.Graph
	switch *format {
	case "metis":
		g, err = graph.ReadMETIS(f)
	case "edgelist":
		g, err = graph.ReadEdgeList(f)
	case "binary":
		g, err = graph.ReadBinary(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}

	var cl *topology.Cluster
	switch *clusterName {
	case "pitt":
		cl = topology.PittCluster(*nodes)
	case "gordon":
		cl = topology.GordonCluster(*nodes)
	case "uma":
		cl = topology.UMACluster(*nodes)
	default:
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}
	if *k == 0 {
		*k = cl.TotalCores()
	}
	c, err := cl.PartitionCostMatrix(*k, *lambda)
	if err != nil {
		fatal(err)
	}
	nodeOf, err := cl.NodeOf(*k)
	if err != nil {
		fatal(err)
	}

	var p *partition.Partitioning
	switch *partitioner {
	case "hp":
		p = stream.HP(g, int32(*k))
	case "dg":
		p = stream.DG(g, int32(*k), stream.Options{Eps: *eps})
	case "ldg":
		p = stream.LDG(g, int32(*k), stream.Options{Eps: *eps})
	case "fennel":
		p = stream.Fennel(g, int32(*k), stream.Options{Eps: *eps})
	case "metis":
		p = metis.Partition(g, int32(*k), metis.Options{Eps: *eps, Seed: *seed})
	case "metis-kway":
		p = metis.PartitionKWay(g, int32(*k), metis.Options{Eps: *eps, Seed: *seed})
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *partitioner))
	}

	report := func(stage string, q partition.Quality) {
		fmt.Printf("%-8s edge-cut %-10d comm-cost %-14.0f skew %.4f\n", stage, q.EdgeCut, q.CommCost, q.Skewness)
	}
	report("initial", partition.Evaluate(g, p, c, *alpha))

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
	}
	var registry *obs.Registry
	if *metricsOut != "" || *summary {
		registry = obs.NewRegistry()
	}

	// The serving layer: every committed round becomes one directory
	// epoch; the journal written at the end replays to the final state.
	var directory *dir.Directory
	if *dirJournal != "" || *dirBench {
		var derr error
		directory, derr = dir.New(p.Assign, p.K, dir.Options{Trace: tracer, Metrics: registry})
		if derr != nil {
			fatal(derr)
		}
	}

	var dirEpochs int
	var pubAborts int
	if *portfolioSize > 0 {
		pst, err := portfolio.Refine(g, p, c, paragon.Config{
			DRP: *drp, Workers: *workers, Shuffles: *shuffles, KHop: *khop,
			Alpha: *alpha, MaxImbalance: *eps, Seed: *seed,
			FaultRate: *faultRate, FaultSeed: *faultSeed,
			Trace: tracer, Metrics: registry,
			Portfolio: paragon.PortfolioConfig{Size: *portfolioSize, CombineTop: *portfolioCombine},
		})
		if err != nil {
			fatal(err)
		}
		report("refined", partition.Evaluate(g, p, c, *alpha))
		fmt.Printf("portfolio:  %d members (%d forfeited), winner %d, wall %s, member cpu %s\n",
			pst.Size, pst.Forfeits, pst.Winner, pst.WallTime.Round(0), pst.CPUTime.Round(0))
		for m, ms := range pst.Members {
			mark := " "
			if m == pst.Winner {
				mark = "*"
			}
			if ms.Forfeited {
				fmt.Printf("  member %2d%s seed %-20d forfeited\n", m, mark, ms.Seed)
				continue
			}
			fmt.Printf("  member %2d%s seed %-20d cost %-14.0f cut %-10d skew %.4f moves %d\n",
				m, mark, ms.Seed, ms.Score.Cost(), ms.Score.EdgeCut, ms.Score.Skewness, ms.Moves)
		}
		if pst.RunnerUp >= 0 {
			fmt.Printf("combine:    members %d+%d, diff %d vertices, %d moves, gain %.0f, applied=%v\n",
				pst.Winner, pst.RunnerUp, pst.CombineDiff, pst.CombineMoves, pst.CombineGain, pst.CombineApplied)
		}
		fmt.Printf("selected:   cost %.0f (input %.0f)\n", pst.SelectedScore.Cost(), pst.InputScore.Cost())
		// The portfolio commits no per-round epochs — members race on
		// private scratch — so flip the directory once to the selection.
		if directory != nil && pst.Winner >= 0 {
			if _, err := directory.PublishAssign(p.Assign); err != nil {
				fatal(err)
			}
			dirEpochs = 1
		}
	} else {
		st, err := paragon.Refine(g, p, c, paragon.Config{
			DRP: *drp, Workers: *workers, Shuffles: *shuffles, KHop: *khop,
			Alpha: *alpha, MaxImbalance: *eps, Seed: *seed, NodeOf: nodeOf,
			FaultRate: *faultRate, FaultSeed: *faultSeed,
			Trace: tracer, Metrics: registry, Directory: directory,
		})
		if err != nil {
			fatal(err)
		}
		dirEpochs, pubAborts = st.DirectoryEpochs, st.Faults.PublishAborts
		report("refined", partition.Evaluate(g, p, c, *alpha))
		fmt.Printf("refinement: master=%d drp=%d rounds=%d pairs=%d moves=%d gain=%.0f time=%s\n",
			st.Master, st.DRP, st.Rounds, st.PairsRefined, st.Moves, st.Gain, st.RefinementTime.Round(0))
		fmt.Printf("migration:  %d vertices, cost %.0f (%.1f%% of graph)\n",
			st.MigratedVertices, st.MigrationCost,
			100*float64(st.MigratedVertices)/float64(g.NumVertices()))
		fmt.Printf("volume:     shipped %d boundary vertices (%d half-edges), %d exchange bytes\n",
			st.BoundaryShipped, st.ShippedEdgeVolume, st.LocationExchangeBytes)
		if *faultRate > 0 {
			fmt.Printf("faults:     %d crashed groups, %d straggler drops, %d degraded; %d exchange retries, %d aborts; %d virtual ticks (%d backoff)\n",
				st.Faults.CrashedGroups, st.Faults.StragglerDrops, st.Faults.DegradedGroups,
				st.Faults.ExchangeRetries, st.Faults.ExchangeAborts,
				st.Faults.VirtualTicks, st.Faults.BackoffTicks)
		}
	}

	if tracer != nil {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteJSONL(tf, tracer); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s (%d events, %d dropped)\n", *traceOut, tracer.Len(), tracer.Dropped())
	}
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteProm(mf, registry); err != nil {
			fatal(err)
		}
		if err := mf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
	if *summary {
		fmt.Println()
		if err := obs.WriteSummary(os.Stdout, registry); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if directory != nil {
		fmt.Printf("directory:  %d epochs published (%d aborted), journal %d bytes, assignment hash %#x\n",
			dirEpochs, pubAborts, len(directory.JournalBytes()), directory.Current().AssignHash())
	}
	if *dirJournal != "" {
		j := directory.JournalBytes()
		if err := os.WriteFile(*dirJournal, j, 0o644); err != nil {
			fatal(err)
		}
		// Prove the journal: recover it and compare against the live
		// directory, epoch and assignment hash both.
		rec, err := dir.Recover(j, dir.Options{})
		if err != nil {
			fatal(fmt.Errorf("journal verification: %w", err))
		}
		if rec.Epoch() != directory.Epoch() || rec.Current().AssignHash() != directory.Current().AssignHash() {
			fatal(fmt.Errorf("journal verification: recovered epoch %d hash %#x, live epoch %d hash %#x",
				rec.Epoch(), rec.Current().AssignHash(), directory.Epoch(), directory.Current().AssignHash()))
		}
		fmt.Printf("wrote directory journal to %s (recovery verified at epoch %d)\n", *dirJournal, rec.Epoch())
	}
	if *dirBench {
		benchDirectory(directory, g.NumVertices())
	}

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(of)
		for v := int32(0); v < g.NumVertices(); v++ {
			fmt.Fprintf(w, "%d %d\n", v, p.Assign[v])
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := of.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote assignment to %s\n", *out)
	}
}

// benchDirectory measures lookup throughput while a publisher flips
// epochs underneath the readers: GOMAXPROCS reader goroutines hammer
// Lookup for a fixed wall-clock window (driver code — the directory
// itself never reads the wall clock) while one goroutine keeps
// publishing small rotation epochs. Every observed epoch must be
// monotone per reader, or the bench aborts.
func benchDirectory(d *dir.Directory, n int32) {
	const window = 500 * time.Millisecond
	readers := runtime.GOMAXPROCS(0)
	var stop atomic.Bool
	var lookups, flips atomic.Int64
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			x := uint64(r)*0x9e3779b97f4a7c15 + 1
			var count int64
			lastEpoch := int64(-1)
			for !stop.Load() {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				_, epoch := d.Lookup(int32(x % uint64(n)))
				if epoch < lastEpoch {
					torn.Add(1)
					break
				}
				lastEpoch = epoch
				count++
			}
			lookups.Add(count)
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := d.Current().K()
		for !stop.Load() {
			s := d.Current()
			v := int32(flips.Load()) % n
			from := s.Rank(v)
			if _, err := d.Publish([]dir.Move{{Vertex: v, From: from, To: (from + 1) % k}}); err != nil {
				fatal(err)
			}
			flips.Add(1)
		}
	}()
	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if torn.Load() != 0 {
		fatal(fmt.Errorf("dir-bench: %d epoch-order violations observed", torn.Load()))
	}
	fmt.Printf("dir-bench:  %.1fM lookups/s across %d readers, %d epoch flips in %s (final epoch %d)\n",
		float64(lookups.Load())/elapsed.Seconds()/1e6, readers, flips.Load(), elapsed.Round(time.Millisecond), d.Epoch())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "paragon: %v\n", err)
	os.Exit(1)
}
