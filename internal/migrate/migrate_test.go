package migrate

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func TestNewPlanDiff(t *testing.T) {
	old := partition.New(3, 5)
	copy(old.Assign, []int32{0, 0, 1, 2, 2})
	now := old.Clone()
	now.Assign[1] = 2
	now.Assign[3] = 0
	plan, err := NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 2 {
		t.Fatalf("moves = %v", plan.Moves)
	}
	if plan.Moves[0] != (Move{Vertex: 1, From: 0, To: 2}) {
		t.Fatalf("first move = %+v", plan.Moves[0])
	}
	if plan.Moves[1] != (Move{Vertex: 3, From: 2, To: 0}) {
		t.Fatalf("second move = %+v", plan.Moves[1])
	}
	if got := plan.SendsFrom(0); len(got) != 1 || got[0].Vertex != 1 {
		t.Fatalf("SendsFrom(0) = %v", got)
	}
	if got := plan.ReceivesAt(0); len(got) != 1 || got[0].Vertex != 3 {
		t.Fatalf("ReceivesAt(0) = %v", got)
	}
}

func TestNewPlanErrors(t *testing.T) {
	a := partition.New(2, 4)
	b := partition.New(3, 4)
	if _, err := NewPlan(a, b); err == nil {
		t.Fatal("expected k-mismatch error")
	}
	c := partition.New(2, 5)
	if _, err := NewPlan(a, c); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestPlanCostMatchesMetric(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, 1)
	g.UseDegreeWeights()
	old := stream.HP(g, 4)
	now := old.Clone()
	for v := 0; v < 50; v++ {
		now.Assign[v] = (now.Assign[v] + 1) % 4
	}
	plan, err := NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.UniformMatrix(4)
	if plan.Cost(g, c) != partition.MigrationCost(g, old, now, c) {
		t.Fatalf("plan cost %v != metric %v", plan.Cost(g, c), partition.MigrationCost(g, old, now, c))
	}
	if plan.Volume(g) <= 0 {
		t.Fatal("volume must be positive")
	}
}

func TestExecuteAppContextHooks(t *testing.T) {
	// The §5 BFS scenario: each vertex carries a distance value that
	// must survive migration via the save/restore hooks.
	g := gen.Mesh2D(10, 10)
	old := stream.DG(g, 4, stream.DefaultOptions())
	now := old.Clone()
	for v := int32(0); v < 20; v++ {
		now.Assign[v] = (now.Assign[v] + 1) % 4
	}
	distances := make([]int64, g.NumVertices())
	for v := range distances {
		distances[v] = int64(v) * 7
	}
	saved := make([]int64, g.NumVertices())
	copy(saved, distances)

	stores := BuildStores(g, old)
	plan, err := NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	restored := map[int32]bool{}
	ctx := AppContext{
		Save: func(v int32) []byte {
			var buf bytes.Buffer
			binary.Write(&buf, binary.LittleEndian, distances[v])
			distances[v] = -999 // simulate the sender dropping its copy
			return buf.Bytes()
		},
		Restore: func(v int32, data []byte) {
			var d int64
			binary.Read(bytes.NewReader(data), binary.LittleEndian, &d)
			distances[v] = d
			restored[v] = true
		},
	}
	if _, err := Execute(stores, plan, ctx); err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(plan.Moves) {
		t.Fatalf("restored %d of %d moved vertices", len(restored), len(plan.Moves))
	}
	for v := range distances {
		if distances[v] != saved[v] {
			t.Fatalf("vertex %d distance corrupted: %d vs %d", v, distances[v], saved[v])
		}
	}
}

func TestExecuteMissingVertex(t *testing.T) {
	g := gen.Mesh2D(4, 4)
	old := stream.HP(g, 2)
	stores := BuildStores(g, old)
	delete(stores[old.Assign[0]].Vertices, 0) // sabotage
	now := old.Clone()
	now.Assign[0] = 1 - now.Assign[0]
	plan, err := NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(stores, plan, AppContext{}); err == nil {
		t.Fatal("expected missing-vertex error")
	}
}

func TestExecutePlanStoreMismatch(t *testing.T) {
	g := gen.Mesh2D(4, 4)
	old := stream.HP(g, 2)
	stores := BuildStores(g, old)
	plan := &Plan{K: 5}
	if _, err := Execute(stores, plan, AppContext{}); err == nil {
		t.Fatal("expected rank-count error")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := gen.Mesh2D(4, 4)
	p := stream.HP(g, 2)
	stores := BuildStores(g, p)
	// Duplicate a vertex.
	stores[0].Vertices[15] = &VertexData{}
	stores[1].Vertices[15] = &VertexData{}
	if err := Verify(stores, g, p); err == nil {
		t.Fatal("expected duplicate error")
	}
	// Lost vertex.
	stores2 := BuildStores(g, p)
	delete(stores2[p.Assign[3]].Vertices, 3)
	if err := Verify(stores2, g, p); err == nil {
		t.Fatal("expected lost-vertex error")
	}
	// Wrong owner.
	stores3 := BuildStores(g, p)
	vd := stores3[p.Assign[5]].Vertices[5]
	delete(stores3[p.Assign[5]].Vertices, 5)
	stores3[1-p.Assign[5]].Vertices[5] = vd
	if err := Verify(stores3, g, p); err == nil {
		t.Fatal("expected wrong-owner error")
	}
}

// Property: Execute realizes any random target decomposition exactly.
func TestQuickExecuteRealizesTarget(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(120, 360, seed)
		old := stream.HP(g, 5)
		now := old.Clone()
		rngMoves := int(seed%50) + 1
		for i := 0; i < rngMoves; i++ {
			v := int32((seed + int64(i)*37) % int64(g.NumVertices()))
			if v < 0 {
				v = -v
			}
			now.Assign[v] = (now.Assign[v] + 1 + int32(i)%4) % 5
		}
		stores := BuildStores(g, old)
		plan, err := NewPlan(old, now)
		if err != nil {
			return false
		}
		if _, err := Execute(stores, plan, AppContext{}); err != nil {
			return false
		}
		return Verify(stores, g, now) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The binary wire form must round-trip exactly and reject every torn
// prefix — the property the directory journal's crash recovery stands on.
func TestPlanBinaryRoundTrip(t *testing.T) {
	plans := []*Plan{
		{K: 4},
		{K: 7, Moves: []Move{{Vertex: 0, From: 1, To: 2}}},
		{K: 128, Moves: []Move{
			{Vertex: 5, From: 0, To: 3},
			{Vertex: 9, From: 2, To: 1},
			{Vertex: 1 << 20, From: 127, To: 0},
		}},
	}
	for _, p := range plans {
		enc := p.AppendBinary(nil)
		got, err := DecodePlan(enc)
		if err != nil {
			t.Fatalf("DecodePlan: %v", err)
		}
		if got.K != p.K || len(got.Moves) != len(p.Moves) {
			t.Fatalf("decoded shape (%d,%d), want (%d,%d)", got.K, len(got.Moves), p.K, len(p.Moves))
		}
		for i := range p.Moves {
			if got.Moves[i] != p.Moves[i] {
				t.Fatalf("move %d = %+v, want %+v", i, got.Moves[i], p.Moves[i])
			}
		}
		// Every strict prefix is a torn record and must be rejected, as
		// must trailing garbage.
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodePlan(enc[:cut]); err == nil {
				t.Fatalf("torn prefix of %d/%d bytes decoded", cut, len(enc))
			}
		}
		if _, err := DecodePlan(append(append([]byte(nil), enc...), 0)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	}
}
