// Package staleignoreclean carries a live suppression: wallclock fires
// on the line below and is silenced, so the directive is in use and the
// staleness sweep stays quiet.
package staleignoreclean

import "time"

// Stamp is an audited boundary stopwatch.
func Stamp() int64 {
	//lint:ignore wallclock fixture exercises a live suppression
	return time.Now().UnixNano()
}
