package exp

import (
	"time"

	"paragon/internal/apps"
	"paragon/internal/aragonlb"
	"paragon/internal/bsp"
	"paragon/internal/dyn"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/mizan"
	"paragon/internal/parmetis"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/zoltan"
)

// RepartitionerLandscape reproduces the paper's Figure 1 landscape as a
// measurement: every repartitioner family in the repository adapts the
// same churned decomposition, and BFS JET, migration cost, and
// adaptation time are compared. The scenario: a DG decomposition of the
// YouTube stand-in degraded by edge churn (10% adds, friend-of-friend
// biased), exactly the §1 motivation for online repartitioning.
func RepartitionerLandscape(scale float64, nSources int) *Table {
	env := PittEnv(3)
	k := int32(env.K)
	d, err := gen.DatasetByName("YouTube")
	if err != nil {
		panic(err)
	}
	base := d.Build(scale)
	base.UseDegreeWeights()
	old := stream.DG(base, k, stream.DefaultOptions())

	// Churn the graph: the decomposition is now stale.
	ov := graph.NewOverlay(base)
	adds := int(base.NumEdges() / 10)
	dyn.ApplyChurn(ov, dyn.RandomChurn(base, adds, adds/4, 31))
	g := ov.Materialize()
	g.UseDegreeWeights()

	c := env.PlainMatrix()
	srcs := sources(g.NumVertices(), nSources, 99)
	jet := func(p *partition.Partitioning) float64 {
		j, _ := runJob(appBFS, g, p, env, 8, srcs)
		return j
	}
	mig := func(p *partition.Partitioning) float64 {
		return partition.MigrationCost(g, old, p, c)
	}

	tab := &Table{
		ID:     "landscape",
		Title:  "Repartitioner landscape under 10% edge churn (YouTube stand-in, Figure 1 families)",
		Header: []string{"repartitioner", "family", "BFS_JET", "migration_cost", "adapt_time"},
		Notes:  "architecture-aware + parallel (PARAGON) vs heavyweight, lightweight, and runtime-driven families",
	}
	add := func(name, family string, p *partition.Partitioning, dt time.Duration) {
		tab.Rows = append(tab.Rows, []string{name, family, f0(jet(p)), f0(mig(p)), secs(dt)})
	}

	// Baseline: no adaptation.
	add("none (stale DG)", "streaming", old, 0)

	// Heavyweight multilevel repartitioners.
	start := time.Now()
	pScratch, err := parmetis.Repartition(g, old, parmetis.Options{Method: parmetis.ScratchRemap, Seed: 7})
	if err != nil {
		panic(err)
	}
	add("parmetis scratch-remap", "heavyweight", pScratch, time.Since(start))

	start = time.Now()
	pDiff, err := parmetis.Repartition(g, old, parmetis.Options{Method: parmetis.Diffusion, Seed: 7})
	if err != nil {
		panic(err)
	}
	add("parmetis diffusion", "heavyweight", pDiff, time.Since(start))

	// Hypergraph repartitioner.
	start = time.Now()
	pZ, _, err := zoltan.Repartition(g, old, zoltan.Options{Alpha: env.Alpha})
	if err != nil {
		panic(err)
	}
	add("zoltan hypergraph", "heavyweight", pZ, time.Since(start))

	// Runtime-statistics-driven (Mizan): profile one BFS, then migrate
	// hot vertices.
	profEngine, err := bsp.NewEngine(g, old, env.Cluster, bsp.Options{
		MsgGroupSize: 8, MemoryContention: env.Contention, TrackVertexTraffic: true,
	})
	if err != nil {
		panic(err)
	}
	_, prof, err := apps.BFS(profEngine, g, srcs[0])
	if err != nil {
		panic(err)
	}
	start = time.Now()
	pM, _, err := mizan.Repartition(g, old, prof.VertexTraffic, mizan.Options{})
	if err != nil {
		panic(err)
	}
	add("mizan hot-vertex", "lightweight/runtime", pM, time.Since(start))

	// Architecture-aware single-server prior work.
	pLB := old.Clone()
	stLB, err := aragonlb.Repartition(g, pLB, c, aragonlb.Config{Alpha: env.Alpha})
	if err != nil {
		panic(err)
	}
	add("aragonlb", "architecture-aware serial", pLB, stLB.Elapsed)

	// PARAGON (the paper: architecture-aware AND parallel).
	pPar := old.Clone()
	stPar := RefineParagon(g, pPar, env, 8, 8, 42)
	add("paragon", "architecture-aware parallel", pPar, stPar.RefinementTime)

	return tab
}
