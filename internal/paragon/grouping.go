package paragon

import (
	"math/rand"
)

// selectMaster implements Eq. 11: pick the server m minimizing the total
// cost of exchanging auxiliary data with every other server,
// min_m Σ_{i≠m} (c(Pi, Pm) + c(Pm, Pi)) — the exchange is bidirectional
// (servers push updates to the master and pull the merged view back), so
// both directions of an asymmetric cost matrix count. Every server
// computes this locally without synchronization, so determinism matters:
// ties break to the lowest id.
func selectMaster(k int32, c [][]float64) int32 {
	best := int32(0)
	bestCost := masterCost(0, k, c)
	for m := int32(1); m < k; m++ {
		if cost := masterCost(m, k, c); cost < bestCost {
			best, bestCost = m, cost
		}
	}
	return best
}

func masterCost(m, k int32, c [][]float64) float64 {
	var total float64
	for i := int32(0); i < k; i++ {
		if i != m {
			total += c[i][m] + c[m][i]
		}
	}
	return total
}

// randomGrouping splits partitions 0..k-1 into drp groups of (nearly)
// equal size, each with at least two partitions. §5 observes that random
// grouping plus shuffle refinement works well because the streaming
// input decompositions have edge cuts across essentially all pairs.
func randomGrouping(k int32, drp int, rng *rand.Rand) [][]int32 {
	perm := rng.Perm(int(k))
	m := drp
	if m > int(k)/2 {
		m = int(k) / 2
	}
	if m < 1 {
		m = 1
	}
	groups := make([][]int32, m)
	for idx, pi := range perm {
		gi := idx % m
		groups[gi] = append(groups[gi], int32(pi))
	}
	return groups
}

// SelectGroupServers implements Eq. 10: for each group, choose the server
// s minimizing Σ_{Pi∈g} ps[i] · c(Pi, Ps) · (1 + σ(s)/drp), where ps[i]
// approximates the data partition i ships (its incident edges) and σ(s)
// is the number of group servers already placed on s's compute node —
// the penalty that avoids concentrating group servers (and their memory
// footprint) on one node. nodeOf may be nil (each server its own node).
//
// Ties break deterministically toward the lowest-id member of the group:
// a group whose candidate costs are all equal (e.g. every member has
// zero incident edges early in a refinement) should host itself rather
// than ship to an arbitrary foreign server — server 0 was the old
// accidental winner, paying needless boundary shipping for every group
// that didn't contain it.
func SelectGroupServers(groups [][]int32, ps []int64, c [][]float64, nodeOf []int, drp int) []int32 {
	k := len(ps)
	servers := make([]int32, len(groups))
	member := make([]bool, k)
	nodeServerCount := map[int]int{}
	node := func(s int) int {
		if nodeOf != nil {
			return nodeOf[s]
		}
		return s
	}
	for gi, grp := range groups {
		for _, pi := range grp {
			member[pi] = true
		}
		best := int32(-1)
		bestCost := 0.0
		bestIn := false
		for s := 0; s < k; s++ {
			sigma := float64(nodeServerCount[node(s)])
			penalty := 1 + sigma/float64(drp)
			var cost float64
			for _, pi := range grp {
				cost += float64(ps[pi]) * c[pi][s] * penalty
			}
			// Strict improvement wins; an exact tie only displaces the
			// incumbent when it upgrades an out-of-group server to an
			// in-group one. Ascending s makes both rules favor low ids.
			if best < 0 || cost < bestCost || (cost == bestCost && member[s] && !bestIn) {
				best, bestCost, bestIn = int32(s), cost, member[s]
			}
		}
		servers[gi] = best
		nodeServerCount[node(int(best))]++
		for _, pi := range grp {
			member[pi] = false
		}
	}
	return servers
}

// ShuffleGroups performs one shuffle-refinement swap: each group hands a
// random partition to a randomly paired partner group and receives one
// back, expanding the set of partition pairs the next round can refine.
// Groups of size ≤ 2 still swap (sizes are preserved by the exchange).
// Exported because portfolio members run the same shuffle discipline over
// their own groupings.
func ShuffleGroups(groups [][]int32, rng *rand.Rand, round int) {
	ShuffleGroupsScratch(groups, rng, round, nil)
}

// ShuffleGroupsScratch is ShuffleGroups with a caller-owned permutation
// scratch (grown as needed and returned), so per-round callers — the
// portfolio members in particular, whose allocs/op must stay flat in the
// member count — allocate nothing in steady state. The draw sequence is
// identical to ShuffleGroups for any scratch.
func ShuffleGroupsScratch(groups [][]int32, rng *rand.Rand, round int, scratch []int) []int {
	m := len(groups)
	if m < 2 {
		return scratch
	}
	order := permInto(rng, m, scratch)
	for i := 0; i+1 < m; i += 2 {
		a, b := order[i], order[i+1]
		ai := rng.Intn(len(groups[a]))
		bi := rng.Intn(len(groups[b]))
		groups[a][ai], groups[b][bi] = groups[b][bi], groups[a][ai]
	}
	// With an odd group count, rotate one partition through the last
	// group too so no group is starved of fresh pairs.
	if m%2 == 1 && m >= 3 {
		last := order[m-1]
		other := order[0]
		li := rng.Intn(len(groups[last]))
		oi := rng.Intn(len(groups[other]))
		groups[last][li], groups[other][oi] = groups[other][oi], groups[last][li]
	}
	return order
}

// permInto reproduces rand.Perm's exact draw sequence (inside-out
// Fisher-Yates, one Intn(i+1) per i in [0, n) — the i = 0 draw is a
// no-op swap but still consumes from the source) into a reused buffer,
// so ShuffleGroupsScratch emits the same permutation stream as the
// allocating form — pinned by TestShuffleGroupsScratchMatchesPerm.
func permInto(rng *rand.Rand, n int, dst []int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}
