package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements readers and writers for the two on-disk formats the
// reproduction uses:
//
//   - the METIS .graph format (the format the paper's baselines consume),
//     including the fmt flags for vertex sizes (the 100s digit), vertex
//     weights (the 10s digit) and edge weights (the 1s digit);
//   - a simple whitespace-separated edge-list format ("u v [w]" per line),
//     which is how SNAP distributes the paper's real-world datasets.

// WriteMETIS writes g to w in METIS .graph format with vertex sizes,
// vertex weights, and edge weights (fmt code 111).
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	if _, err := fmt.Fprintf(bw, "%d %d 111 1\n", n, g.NumEdges()); err != nil {
		return err
	}
	for v := int32(0); v < n; v++ {
		bw.WriteString(strconv.FormatInt(int64(g.VertexSize(v)), 10))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(int64(g.VertexWeight(v)), 10))
		adj := g.Neighbors(v)
		wt := g.EdgeWeights(v)
		for i, u := range adj {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(int64(u)+1, 10)) // 1-based
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(int64(wt[i]), 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadMETIS parses a METIS .graph stream. It supports fmt codes 0, 1, 10,
// 11, 100, 110, and 111 and an optional ncon=1 constraint count.
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: METIS header needs at least n and m: %q", line)
	}
	n64, err := strconv.ParseInt(fields[0], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header n: %w", err)
	}
	m64, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header m: %w", err)
	}
	// A negative n would flow into make() inside NewBuilder and panic;
	// reject both counts up front (found by FuzzParseMETIS).
	if n64 < 0 || m64 < 0 {
		return nil, fmt.Errorf("graph: METIS header has negative count: n=%d m=%d", n64, m64)
	}
	var hasVSize, hasVWgt, hasEWgt bool
	if len(fields) >= 3 {
		code := fields[2]
		for len(code) < 3 {
			code = "0" + code
		}
		hasVSize = code[0] == '1'
		hasVWgt = code[1] == '1'
		hasEWgt = code[2] == '1'
	}
	n := int32(n64)
	b := NewBuilder(n)
	for v := int32(0); v < n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: METIS vertex %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasVSize {
			s, err := parseI32(toks, i)
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d size: %w", v+1, err)
			}
			if s < 0 {
				return nil, fmt.Errorf("graph: vertex %d has negative size %d", v+1, s)
			}
			b.SetVertexSize(v, s)
			i++
		}
		if hasVWgt {
			s, err := parseI32(toks, i)
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d weight: %w", v+1, err)
			}
			if s < 0 {
				return nil, fmt.Errorf("graph: vertex %d has negative weight %d", v+1, s)
			}
			b.SetVertexWeight(v, s)
			i++
		}
		for i < len(toks) {
			u, err := parseI32(toks, i)
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d neighbor: %w", v+1, err)
			}
			i++
			w := int32(1)
			if hasEWgt {
				w, err = parseI32(toks, i)
				if err != nil {
					return nil, fmt.Errorf("graph: vertex %d edge weight: %w", v+1, err)
				}
				i++
			}
			if u < 1 || u > n {
				return nil, fmt.Errorf("graph: vertex %d neighbor %d out of range", v+1, u)
			}
			if w <= 0 {
				return nil, fmt.Errorf("graph: non-positive weight %d on edge (%d,%d)", w, v+1, u)
			}
			if u == v+1 {
				return nil, fmt.Errorf("graph: self-loop on vertex %d", v+1)
			}
			// Each undirected edge appears twice in METIS files; add only
			// the canonical direction to avoid doubling weights.
			if v < u-1 {
				b.AddWeightedEdge(v, u-1, w)
			}
		}
	}
	g := b.Build()
	if g.NumEdges() != m64 {
		return nil, fmt.Errorf("graph: METIS edge count mismatch: header %d, found %d", m64, g.NumEdges())
	}
	return g, nil
}

// WriteEdgeList writes g as "u v w" lines (0-based, one line per
// undirected edge).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	if _, err := fmt.Fprintf(bw, "# %d %d\n", n, g.NumEdges()); err != nil {
		return err
	}
	for v := int32(0); v < n; v++ {
		adj := g.Neighbors(v)
		wt := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u {
				fmt.Fprintf(bw, "%d %d %d\n", v, u, wt[i])
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses "u v [w]" lines. Lines starting with '#' or '%' are
// comments. Vertex ids may be sparse; they are compacted to a dense range
// and the mapping is discarded (consistent with how the paper's datasets
// are preprocessed). Duplicate edges are merged by summing weights.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	type edge struct {
		u, v int64
		w    int32
	}
	var edges []edge
	remap := make(map[int64]int32)
	next := int32(0)
	id := func(raw int64) int32 {
		if d, ok := remap[raw]; ok {
			return d
		}
		d := next
		remap[raw] = d
		next++
		return d
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		toks := strings.Fields(line)
		if len(toks) < 2 {
			return nil, fmt.Errorf("graph: edge list line %q", line)
		}
		u, err := strconv.ParseInt(toks[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list u: %w", err)
		}
		v, err := strconv.ParseInt(toks[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list v: %w", err)
		}
		w := int32(1)
		if len(toks) >= 3 {
			w64, err := strconv.ParseInt(toks[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: edge list w: %w", err)
			}
			if w64 <= 0 {
				return nil, fmt.Errorf("graph: non-positive edge weight %d on (%d,%d)", w64, u, v)
			}
			w = int32(w64)
		}
		edges = append(edges, edge{u, v, w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range edges {
		id(e.u)
		id(e.v)
	}
	b := NewBuilder(next)
	for _, e := range edges {
		if e.u == e.v {
			continue
		}
		b.AddWeightedEdge(id(e.u), id(e.v), e.w)
	}
	return b.Build(), nil
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

func parseI32(toks []string, i int) (int32, error) {
	if i >= len(toks) {
		return 0, fmt.Errorf("missing field %d", i)
	}
	v, err := strconv.ParseInt(toks[i], 10, 32)
	if err != nil {
		return 0, err
	}
	return int32(v), nil
}
