package topology

// Contention modelling (§2.2 and §6 of the paper).
//
// MPI intra-node communication is implemented over shared memory, so
// packing too much communication inside a compute node congests the
// memory subsystem. Eq. 12 mitigates this by *penalizing* intra-node
// communication costs:
//
//	c(Pi, Pj) += λ · (s1 + s2)
//
// where λ ∈ [0,1] is the degree of contention, s1 is the maximal
// inter-node network cost, and s2 is the maximal inter-socket cost when
// Pi and Pj share a socket (0 otherwise). λ=0 keeps pure communication
// heterogeneity; λ=1 prioritizes contention avoidance over heterogeneity.

// ApplyContention returns a copy of the cost matrix with the Eq. 12
// penalty applied to every pair of ranks collocated on a compute node.
// The mapping from matrix index to rank is the identity (one partition
// per core), matching CostMatrix.
func (c *Cluster) ApplyContention(matrix [][]float64, lambda float64) [][]float64 {
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	out := make([][]float64, len(matrix))
	s1 := c.MaxInterNodeCost()
	for i := range matrix {
		out[i] = append([]float64(nil), matrix[i]...)
	}
	if lambda == 0 {
		return out
	}
	for i := 0; i < len(out) && i < c.total; i++ {
		for j := 0; j < len(out[i]) && j < c.total; j++ {
			if i == j {
				continue
			}
			switch c.Class(i, j) {
			case SharedL2, IntraSocket:
				// Same socket: both penalties apply.
				out[i][j] += lambda * (s1 + c.MaxInterSocketCost())
			case InterSocket:
				// Same node, different sockets: s2 = 0.
				out[i][j] += lambda * s1
			}
		}
	}
	return out
}

// SharedResource identifies a hardware resource two communicating cores
// may contend for (Table 1 of the paper).
type SharedResource int

const (
	ResSocket SharedResource = iota
	ResLLCSharing
	ResLLCContention
	ResFSBorQPI
	ResMemController
)

func (r SharedResource) String() string {
	switch r {
	case ResSocket:
		return "socket"
	case ResLLCSharing:
		return "LLC (sharing)"
	case ResLLCContention:
		return "LLC (contention)"
	case ResFSBorQPI:
		return "FSB/QPI(HT)"
	case ResMemController:
		return "memory controller"
	default:
		return "unknown"
	}
}

// ContendedResources reproduces Table 1: the set of resources two
// distinct cores contend for when communicating, as a function of the
// node architecture and the cores' placement. The result is empty for
// cores on different nodes (they communicate via RDMA, bypassing the
// memory subsystem per §2.2).
func (c *Cluster) ContendedResources(r1, r2 int) []SharedResource {
	if r1 == r2 {
		return nil
	}
	a, b := c.Loc(r1), c.Loc(r2)
	if a.Node != b.Node {
		return nil
	}
	spec := c.Nodes[a.Node]
	switch spec.Arch {
	case UMA:
		// Figure 2a: FSB and the northbridge memory controller are shared
		// by everything on the node.
		switch {
		case a.Socket == b.Socket && spec.L2GroupSize > 1 && a.L2Group == b.L2Group:
			// G1: same socket, shared L2.
			return []SharedResource{ResSocket, ResLLCSharing, ResLLCContention, ResFSBorQPI, ResMemController}
		case a.Socket == b.Socket:
			// G2: same socket, different L2s.
			return []SharedResource{ResSocket, ResFSBorQPI, ResMemController}
		default:
			// G3: different sockets; only the FSB path is common.
			return []SharedResource{ResMemController}
		}
	default: // NUMA, Figure 2b
		if a.Socket == b.Socket {
			// G1: same socket shares the L3 and that socket's controller.
			return []SharedResource{ResSocket, ResLLCSharing, ResLLCContention, ResMemController}
		}
		// G2: different sockets contend only for the inter-socket link.
		return []SharedResource{ResFSBorQPI}
	}
}
