// Package dyn models graph dynamism for the Figure 14 experiment: a
// growing graph observed as cumulative snapshots (the paper splits the
// YouTube friendship trace into 5 snapshots of 45 days each), with newly
// arrived vertices injected into the running decomposition by a streaming
// partitioner, after which a repartitioner or refiner may adapt the
// decomposition.
package dyn

import (
	"fmt"
	"math/rand"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Snapshot is one prefix of the arrival stream. Vertices are relabeled
// by arrival rank, so snapshot i's vertex ids are exactly 0..N(i)-1 and
// every later snapshot extends the earlier ones: vertex v means the same
// entity in all snapshots that contain it.
type Snapshot struct {
	Graph *graph.Graph
	// Orig maps arrival-rank id -> vertex id in the full graph.
	Orig []int32
	// FirstNew is the arrival rank of the first vertex that is new in
	// this snapshot (== previous snapshot's vertex count).
	FirstNew int32
}

// Snapshots splits g into s cumulative snapshots along a seeded random
// arrival order. Snapshot i (1-based in the paper, 0-based here) holds
// the first (i+1)/s fraction of vertices and all edges among them.
func Snapshots(g *graph.Graph, s int, seed int64) ([]Snapshot, error) {
	n := g.NumVertices()
	if s < 1 || int32(s) > n {
		return nil, fmt.Errorf("dyn: cannot split %d vertices into %d snapshots", n, s)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(int(n)) // arrival rank -> original id
	rank := make([]int32, n) // original id -> arrival rank
	orig := make([]int32, n)
	for r, ov := range perm {
		orig[r] = int32(ov)
		rank[ov] = int32(r)
	}
	out := make([]Snapshot, 0, s)
	prev := int32(0)
	for i := 1; i <= s; i++ {
		size := int32(int64(n) * int64(i) / int64(s))
		if size < 1 {
			size = 1
		}
		bld := graph.NewBuilder(size)
		for r := int32(0); r < size; r++ {
			ov := orig[r]
			bld.SetVertexWeight(r, g.VertexWeight(ov))
			bld.SetVertexSize(r, g.VertexSize(ov))
			adj := g.Neighbors(ov)
			w := g.EdgeWeights(ov)
			for j, ou := range adj {
				ur := rank[ou]
				if ur < size && r < ur {
					bld.AddWeightedEdge(r, ur, w[j])
				}
			}
		}
		out = append(out, Snapshot{Graph: bld.Build(), Orig: orig[:size:size], FirstNew: prev})
		prev = size
	}
	return out, nil
}

// Inject extends a decomposition of the previous snapshot to the current
// one: vertices below snap.FirstNew keep their partitions from prev, and
// each new vertex is streamed in with the deterministic-greedy rule
// (most-affine partition with remaining capacity, least-loaded
// fallback) — how the paper injects newly appeared vertices with DG.
func Inject(snap Snapshot, prev *partition.Partitioning, k int32, eps float64) (*partition.Partitioning, error) {
	g := snap.Graph
	n := g.NumVertices()
	if prev == nil && snap.FirstNew != 0 {
		return nil, fmt.Errorf("dyn: missing previous decomposition for snapshot with %d old vertices", snap.FirstNew)
	}
	if prev != nil && int32(len(prev.Assign)) != snap.FirstNew {
		return nil, fmt.Errorf("dyn: previous decomposition has %d vertices, snapshot expects %d", len(prev.Assign), snap.FirstNew)
	}
	p := partition.New(k, n)
	for v := range p.Assign {
		p.Assign[v] = -1
	}
	load := make([]int64, k)
	if prev != nil {
		if prev.K != k {
			return nil, fmt.Errorf("dyn: k changed from %d to %d", prev.K, k)
		}
		for v := int32(0); v < snap.FirstNew; v++ {
			p.Assign[v] = prev.Assign[v]
			load[prev.Assign[v]] += int64(g.VertexWeight(v))
		}
	}
	capacity := partition.BalanceBound(g, k, eps)
	aff := make([]int64, k)
	var touched []int32
	for v := snap.FirstNew; v < n; v++ {
		touched = touched[:0]
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			pu := p.Assign[u]
			if pu < 0 {
				continue
			}
			if aff[pu] == 0 {
				touched = append(touched, pu)
			}
			aff[pu] += int64(w[i])
		}
		best := int32(-1)
		var bestAff int64 = -1
		for _, pi := range touched {
			if load[pi]+int64(g.VertexWeight(v)) > capacity {
				continue
			}
			if aff[pi] > bestAff || (aff[pi] == bestAff && best >= 0 && load[pi] < load[best]) {
				best, bestAff = pi, aff[pi]
			}
		}
		if best < 0 {
			best = 0
			for pi := int32(1); pi < k; pi++ {
				if load[pi] < load[best] {
					best = pi
				}
			}
		}
		p.Assign[v] = best
		load[best] += int64(g.VertexWeight(v))
		for _, pi := range touched {
			aff[pi] = 0
		}
	}
	return p, nil
}
