// Package crosspkg exercises cross-package taint: the clock read lives
// in an imported helper package outside the checked set, so the finding
// is reported at the frontier — the call site where nondeterminism
// enters this package.
package crosspkg

import "paragon/internal/lint/testdata/taint/crosspkg/helpers"

// Entry calls into the helper package; the clock read is two calls away.
func Entry() int64 { return helpers.Stamp() }
