// Command gengraph generates the synthetic datasets of the reproduction
// and writes them in METIS .graph or edge-list format.
//
// Usage:
//
//	gengraph -dataset com-lj -scale 0.5 -format metis -o com-lj.graph
//	gengraph -list
//	gengraph -rmat -n 100000 -m 1000000 -o social.graph
package main

import (
	"flag"
	"fmt"
	"os"

	"paragon/internal/gen"
	"paragon/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "", "named dataset stand-in (see -list)")
	list := flag.Bool("list", false, "list available dataset stand-ins")
	scale := flag.Float64("scale", 1.0, "size multiplier for -dataset")
	rmat := flag.Bool("rmat", false, "generate a raw RMAT graph instead of a named dataset")
	n := flag.Int("n", 100000, "vertices for -rmat")
	m := flag.Int64("m", 1000000, "edges for -rmat")
	seed := flag.Int64("seed", 1, "seed for -rmat")
	shards := flag.Int("shards", 0, "generate -rmat with the sharded parallel generator using this many workers (0 = legacy serial stream)")
	format := flag.String("format", "metis", "output format: metis, edgelist, or binary")
	out := flag.String("o", "", "output file (default stdout)")
	binaryOut := flag.String("binary-out", "", "also write the graph once in binary CSR format to this file (the scale benches reload it instead of regenerating)")
	degreeWeights := flag.Bool("degree-weights", true, "set vertex weights/sizes to vertex degree (the paper's default)")
	stats := flag.Bool("stats", false, "print structural statistics instead of writing the graph")
	flag.Parse()

	if *list {
		fmt.Println("available dataset stand-ins (paper dataset -> structural class):")
		for _, d := range gen.Datasets() {
			fmt.Printf("  %-12s %s\n", d.Name, d.Class)
		}
		return
	}

	var g *graph.Graph
	switch {
	case *rmat && *shards > 0:
		g = gen.RMATSharded(int32(*n), *m, 0.57, 0.19, 0.19, *seed, *shards)
	case *rmat:
		g = gen.RMAT(int32(*n), *m, 0.57, 0.19, 0.19, *seed)
	case *dataset != "":
		d, err := gen.DatasetByName(*dataset)
		if err != nil {
			fatal(err)
		}
		g = d.Build(*scale)
	default:
		fatal(fmt.Errorf("need -dataset, -rmat, or -list (see -h)"))
	}
	if *degreeWeights {
		g.UseDegreeWeights()
	}
	if *stats {
		fmt.Println(graph.ComputeStats(g))
		return
	}

	if *binaryOut != "" {
		f, err := os.Create(*binaryOut)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteBinary(f, g); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote binary %s: %d vertices, %d edges\n", *binaryOut, g.NumVertices(), g.NumEdges())
		if *out == "" {
			return // binary-only run: don't dump METIS text to stdout too
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "metis":
		err = graph.WriteMETIS(w, g)
	case "edgelist":
		err = graph.WriteEdgeList(w, g)
	case "binary":
		err = graph.WriteBinary(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
	os.Exit(1)
}
