package aragon

import (
	"math/rand"
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/topology"
)

// TestSparseGainMatchesDense checks that the refiner's sparse-scratch gain
// (ascending touched-partition order) is bit-identical to the dense Eq. 5
// evaluation, for every vertex against every target partition. Bitwise
// equality matters: the FM heap breaks ties by insertion order, so any FP
// drift changes move sequences.
func TestSparseGainMatchesDense(t *testing.T) {
	g := gen.RMAT(800, 4000, 0.57, 0.19, 0.19, 31)
	g.UseDegreeWeights()
	rng := rand.New(rand.NewSource(23))
	const k = 11
	p := partition.New(k, g.NumVertices())
	for v := range p.Assign {
		p.Assign[v] = rng.Int31n(k)
	}
	orig := append([]int32(nil), p.Assign...)
	// Shuffle some assignments so orig differs and g_mig is exercised.
	for i := 0; i < 200; i++ {
		p.Assign[rng.Int31n(g.NumVertices())] = rng.Int31n(k)
	}
	// Nonuniform symmetric cost matrix so g_topo sums many unequal terms.
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			if i != j {
				c[i][j] = 1 + float64((i+j)%5)
			}
		}
	}
	cfg := Config{}.WithDefaults()
	r := NewRefiner(g, partition.BuildIndex(g, p), cfg)
	for v := int32(0); v < g.NumVertices(); v++ {
		from := p.Assign[v]
		dense := partition.ExternalDegrees(g, p, v)
		for to := int32(0); to < k; to++ {
			if to == from {
				continue
			}
			want := gainFromDegrees(g, dense, orig, v, from, to, c, cfg.Alpha)
			got := r.gain(v, from, to, orig, c)
			if got != want {
				t.Fatalf("gain(v=%d, %d->%d) = %v, want %v (not bit-identical)", v, from, to, got, want)
			}
		}
	}
}

// TestUniformGainMatchesDense pins the uniform-cost fast path (g_topo
// short-circuited to +0.0) to the dense Eq. 5 evaluation, bitwise.
func TestUniformGainMatchesDense(t *testing.T) {
	g := gen.BarabasiAlbert(700, 4, 29)
	g.UseDegreeWeights()
	rng := rand.New(rand.NewSource(37))
	const k = 8
	p := partition.New(k, g.NumVertices())
	for v := range p.Assign {
		p.Assign[v] = rng.Int31n(k)
	}
	orig := append([]int32(nil), p.Assign...)
	for i := 0; i < 150; i++ {
		p.Assign[rng.Int31n(g.NumVertices())] = rng.Int31n(k)
	}
	c := topology.UniformMatrix(k)
	cfg := Config{}.WithDefaults()
	r := NewRefiner(g, partition.BuildIndex(g, p), cfg)
	// Prime the uniformity cache the way RefinePair does.
	r.cRow0, r.cUniform = &c[0], uniformOffDiag(c)
	if !r.cUniform {
		t.Fatal("UniformMatrix not detected as uniform")
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		from := p.Assign[v]
		dense := partition.ExternalDegrees(g, p, v)
		for to := int32(0); to < k; to++ {
			if to == from {
				continue
			}
			want := gainFromDegrees(g, dense, orig, v, from, to, c, cfg.Alpha)
			got := r.gain(v, from, to, orig, c)
			if got != want {
				t.Fatalf("uniform gain(v=%d, %d->%d) = %v, want %v", v, from, to, got, want)
			}
		}
	}
}

// TestRefinerSharedAcrossPairs checks that one refiner driven across a full
// pair sweep leaves the index consistent and produces a valid partitioning.
func TestRefinerSharedAcrossPairs(t *testing.T) {
	g := gen.BarabasiAlbert(600, 3, 41)
	g.UseDegreeWeights()
	rng := rand.New(rand.NewSource(43))
	const k = 6
	p := partition.New(k, g.NumVertices())
	for v := range p.Assign {
		p.Assign[v] = rng.Int31n(k)
	}
	orig := append([]int32(nil), p.Assign...)
	c := topology.UniformMatrix(k)
	cfg := Config{}.WithDefaults()
	loads := p.Weights(g)
	maxLoad := partition.BalanceBound(g, k, cfg.MaxImbalance)
	ix := partition.BuildIndex(g, p)
	r := NewRefiner(g, ix, cfg)
	var moves int
	for i := int32(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			res := r.RefinePair(orig, i, j, c, loads, maxLoad, nil)
			moves += res.Moves
		}
	}
	if moves == 0 {
		t.Fatal("random partitioning refined with zero moves")
	}
	if err := ix.Validate(); err != nil {
		t.Fatalf("index inconsistent after sweep: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// loads must have been maintained move-by-move (rollback included).
	want := p.Weights(g)
	for q := range want {
		if loads[q] != want[q] {
			t.Fatalf("loads[%d] = %d, want %d", q, loads[q], want[q])
		}
	}
}
