module paragon

go 1.22
