package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNodeSpecValidate(t *testing.T) {
	good := NodeSpec{Sockets: 2, CoresPerSocket: 8, Arch: NUMA, L2GroupSize: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []NodeSpec{
		{Sockets: 0, CoresPerSocket: 8, L2GroupSize: 1},
		{Sockets: 2, CoresPerSocket: 0, L2GroupSize: 1},
		{Sockets: 2, CoresPerSocket: 8, L2GroupSize: 3}, // doesn't divide 8
		{Sockets: 2, CoresPerSocket: 8, L2GroupSize: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestFlatSwitchHops(t *testing.T) {
	var f FlatSwitch
	if f.Hops(3, 3) != 0 {
		t.Fatal("same node should be 0 hops")
	}
	if f.Hops(0, 5) != 1 {
		t.Fatal("distinct nodes should be 1 hop on a flat switch")
	}
	if f.MaxHops() != 1 {
		t.Fatal("flat switch max hops should be 1")
	}
}

func TestTorus3DHops(t *testing.T) {
	// The paper's Gordon: 4x4x4 torus, 16 nodes per switch, distances 0–6.
	tor := Torus3D{X: 4, Y: 4, Z: 4, NodesPerSwitch: 16}
	if tor.Hops(0, 5) != 0 {
		t.Fatal("nodes 0 and 5 share switch 0")
	}
	if tor.Hops(0, 16) != 1 {
		t.Fatalf("adjacent switches should be 1 hop, got %d", tor.Hops(0, 16))
	}
	if got := tor.MaxHops(); got != 6 {
		t.Fatalf("MaxHops = %d, want 6 (the paper's 0–6 hop range)", got)
	}
	// Wraparound: switch at x=3 is 1 hop from x=0.
	if h := tor.Hops(0, 3*16); h != 1 {
		t.Fatalf("torus wraparound hop = %d, want 1", h)
	}
	// Farthest switch: coords (2,2,2) => switch 2 + 2*4 + 2*16 = 42.
	if h := tor.Hops(0, 42*16); h != 6 {
		t.Fatalf("opposite corner hops = %d, want 6", h)
	}
	// Symmetry.
	for a := 0; a < 64; a += 7 {
		for b := 0; b < 64; b += 5 {
			if tor.Hops(a*16, b*16) != tor.Hops(b*16, a*16) {
				t.Fatalf("asymmetric hops between switches %d and %d", a, b)
			}
		}
	}
}

func TestClusterLayout(t *testing.T) {
	c := PittCluster(2)
	if c.TotalCores() != 40 {
		t.Fatalf("PittCluster(2) cores = %d, want 40", c.TotalCores())
	}
	l := c.Loc(0)
	if l.Node != 0 || l.Socket != 0 || l.Core != 0 {
		t.Fatalf("rank 0 at %+v", l)
	}
	l = c.Loc(10)
	if l.Node != 0 || l.Socket != 1 || l.Core != 0 {
		t.Fatalf("rank 10 should start socket 1: %+v", l)
	}
	l = c.Loc(20)
	if l.Node != 1 || l.Socket != 0 {
		t.Fatalf("rank 20 should start node 1: %+v", l)
	}
	l = c.Loc(39)
	if l.Node != 1 || l.Socket != 1 || l.Core != 9 {
		t.Fatalf("rank 39 at %+v", l)
	}
}

func TestClusterLocPanicsOutOfRange(t *testing.T) {
	c := PittCluster(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Loc(20)
}

func TestHeterogeneousCluster(t *testing.T) {
	// The paper notes nodes may have different core counts; verify mixed
	// layouts resolve correctly.
	nodes := []NodeSpec{
		{Sockets: 2, CoresPerSocket: 10, Arch: NUMA, L2GroupSize: 1},
		{Sockets: 2, CoresPerSocket: 8, Arch: NUMA, L2GroupSize: 1},
	}
	c, err := NewCluster("mixed", nodes, FlatSwitch{}, DefaultLatency())
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalCores() != 36 {
		t.Fatalf("cores = %d, want 36", c.TotalCores())
	}
	if l := c.Loc(20); l.Node != 1 || l.Socket != 0 || l.Core != 0 {
		t.Fatalf("rank 20 at %+v, want node 1 socket 0 core 0", l)
	}
	if l := c.Loc(35); l.Node != 1 || l.Socket != 1 || l.Core != 7 {
		t.Fatalf("rank 35 at %+v", l)
	}
}

func TestNewClusterErrors(t *testing.T) {
	if _, err := NewCluster("x", nil, FlatSwitch{}, DefaultLatency()); err == nil {
		t.Fatal("expected error for empty cluster")
	}
	if _, err := NewCluster("x", []NodeSpec{{Sockets: 2, CoresPerSocket: 8, L2GroupSize: 1}}, nil, DefaultLatency()); err == nil {
		t.Fatal("expected error for nil interconnect")
	}
	if _, err := NewCluster("x", []NodeSpec{{Sockets: 0}}, FlatSwitch{}, DefaultLatency()); err == nil {
		t.Fatal("expected error for invalid node")
	}
}

func TestCommClasses(t *testing.T) {
	c := UMACluster(2) // 2 sockets × 4 cores, L2 shared by pairs
	cases := []struct {
		r1, r2 int
		want   CommClass
	}{
		{0, 0, SameCore},
		{0, 1, SharedL2},    // same L2 pair
		{0, 2, IntraSocket}, // same socket, different L2
		{0, 4, InterSocket}, // socket 0 vs 1
		{0, 8, InterNode},   // node 0 vs 1
	}
	for _, tc := range cases {
		if got := c.Class(tc.r1, tc.r2); got != tc.want {
			t.Errorf("Class(%d,%d) = %v, want %v", tc.r1, tc.r2, got, tc.want)
		}
	}
	// NUMA nodes have private L2s: ranks 0 and 1 are plain intra-socket.
	p := PittCluster(1)
	if got := p.Class(0, 1); got != IntraSocket {
		t.Errorf("NUMA Class(0,1) = %v, want IntraSocket", got)
	}
}

func TestCostOrdering(t *testing.T) {
	c := UMACluster(2)
	sharedL2 := c.Cost(0, 1)
	intraSock := c.Cost(0, 2)
	interSock := c.Cost(0, 4)
	interNode := c.Cost(0, 8)
	if !(0 < sharedL2 && sharedL2 < intraSock && intraSock < interSock && interSock < interNode) {
		t.Fatalf("cost ordering violated: %v %v %v %v", sharedL2, intraSock, interSock, interNode)
	}
	if c.Cost(3, 3) != 0 {
		t.Fatal("self cost must be 0")
	}
}

func TestCostMatrixSymmetric(t *testing.T) {
	c := GordonCluster(3)
	m := c.CostMatrix()
	if len(m) != 48 {
		t.Fatalf("matrix size %d, want 48", len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("diagonal m[%d][%d] = %v", i, i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatalf("asymmetric costs at (%d,%d)", i, j)
			}
			if i != j && m[i][j] <= 0 {
				t.Fatalf("non-positive off-diagonal cost at (%d,%d)", i, j)
			}
		}
	}
}

func TestGordonHopsAffectCost(t *testing.T) {
	// 32 nodes spread across 2 switches: ranks on different switches must
	// cost more than ranks on different nodes under one switch.
	c := GordonCluster(32)
	sameSwitch := c.Cost(0, 16)    // nodes 0 and 1, same switch
	diffSwitch := c.Cost(0, 16*16) // node 0 vs node 16 (switch 1)
	if sameSwitch >= diffSwitch {
		t.Fatalf("same-switch cost %v should be below cross-switch cost %v", sameSwitch, diffSwitch)
	}
}

func TestApplyContention(t *testing.T) {
	c := PittCluster(2)
	base := c.CostMatrix()
	pen := c.ApplyContention(base, 1.0)
	s1 := c.MaxInterNodeCost()
	s2 := c.MaxInterSocketCost()
	// Intra-socket pair: penalty λ(s1+s2).
	if got, want := pen[0][1], base[0][1]+s1+s2; got != want {
		t.Fatalf("intra-socket penalty: got %v, want %v", got, want)
	}
	// Inter-socket pair: penalty λ·s1.
	if got, want := pen[0][10], base[0][10]+s1; got != want {
		t.Fatalf("inter-socket penalty: got %v, want %v", got, want)
	}
	// Inter-node pair: unchanged.
	if pen[0][20] != base[0][20] {
		t.Fatal("inter-node cost must not be penalized")
	}
	// Diagonal unchanged.
	if pen[5][5] != 0 {
		t.Fatal("diagonal must stay 0")
	}
	// λ=0 is a no-op copy.
	same := c.ApplyContention(base, 0)
	for i := range base {
		for j := range base[i] {
			if same[i][j] != base[i][j] {
				t.Fatal("λ=0 must not change costs")
			}
		}
	}
	// The copy must not alias.
	same[0][1] = 999
	if base[0][1] == 999 {
		t.Fatal("ApplyContention must copy the matrix")
	}
	// λ is clamped.
	over := c.ApplyContention(base, 5)
	if over[0][1] != pen[0][1] {
		t.Fatal("λ > 1 should clamp to 1")
	}
}

func TestContentionInvertsPreference(t *testing.T) {
	// The core motivation of §6: with enough contention penalty, an
	// intra-node pair can become more expensive than an inter-node pair,
	// making the refiner offload communication across nodes.
	c := PittCluster(2)
	base := c.CostMatrix()
	if base[0][1] >= base[0][20] {
		t.Fatal("precondition: intra-node must start cheaper")
	}
	pen := c.ApplyContention(base, 1.0)
	if pen[0][1] <= pen[0][20] {
		t.Fatalf("λ=1 should invert the preference: intra %v vs inter %v", pen[0][1], pen[0][20])
	}
}

func TestContendedResourcesTable1(t *testing.T) {
	// UMA (Figure 2a) rows of Table 1.
	u := UMACluster(2)
	g1 := u.ContendedResources(0, 1) // same socket, shared L2
	if len(g1) != 5 {
		t.Fatalf("UMA G1 contends %d resources, want all 5", len(g1))
	}
	g2 := u.ContendedResources(0, 2) // same socket, different L2
	if len(g2) != 3 {
		t.Fatalf("UMA G2 contends %d resources, want 3", len(g2))
	}
	g3 := u.ContendedResources(0, 4) // different sockets
	if len(g3) != 1 || g3[0] != ResMemController {
		t.Fatalf("UMA G3 = %v, want only the memory controller", g3)
	}
	// NUMA (Figure 2b) rows.
	p := PittCluster(1)
	n1 := p.ContendedResources(0, 1) // same socket
	if len(n1) != 4 {
		t.Fatalf("NUMA G1 contends %d resources, want 4", len(n1))
	}
	n2 := p.ContendedResources(0, 10) // different sockets
	if len(n2) != 1 || n2[0] != ResFSBorQPI {
		t.Fatalf("NUMA G2 = %v, want only QPI/HT", n2)
	}
	// Different nodes: RDMA, no shared resources.
	u2 := UMACluster(2)
	if rs := u2.ContendedResources(0, 8); rs != nil {
		t.Fatalf("inter-node pair contends %v, want none", rs)
	}
	if rs := u2.ContendedResources(3, 3); rs != nil {
		t.Fatal("same core should report no contention pair")
	}
}

func TestUniformMatrix(t *testing.T) {
	m := UniformMatrix(4)
	for i := range m {
		for j := range m[i] {
			want := 1.0
			if i == j {
				want = 0
			}
			if m[i][j] != want {
				t.Fatalf("m[%d][%d] = %v", i, j, m[i][j])
			}
		}
	}
}

func TestPaperExampleMatrix(t *testing.T) {
	m := PaperExampleMatrix()
	if m[0][2] != 6 || m[2][0] != 6 || m[0][1] != 1 || m[1][2] != 1 {
		t.Fatalf("Figure 6 matrix wrong: %v", m)
	}
}

func TestStringers(t *testing.T) {
	if UMA.String() != "UMA" || NUMA.String() != "NUMA" {
		t.Fatal("Arch String")
	}
	if Arch(9).String() == "" {
		t.Fatal("unknown Arch should stringify")
	}
	for _, cc := range []CommClass{SameCore, SharedL2, IntraSocket, InterSocket, InterNode, CommClass(42)} {
		if cc.String() == "" {
			t.Fatal("CommClass String empty")
		}
	}
	for _, r := range []SharedResource{ResSocket, ResLLCSharing, ResLLCContention, ResFSBorQPI, ResMemController, SharedResource(42)} {
		if r.String() == "" {
			t.Fatal("SharedResource String empty")
		}
	}
	if (Torus3D{X: 4, Y: 4, Z: 4, NodesPerSwitch: 16}).Name() == "" || (FlatSwitch{}).Name() == "" {
		t.Fatal("interconnect names empty")
	}
}

// Property: Class and Cost agree — higher classes never cost less, for
// arbitrary rank pairs in a mixed cluster.
func TestQuickClassCostMonotone(t *testing.T) {
	c := GordonCluster(4)
	f := func(a, b uint16) bool {
		r1 := int(a) % c.TotalCores()
		r2 := int(b) % c.TotalCores()
		cl := c.Class(r1, r2)
		cost := c.Cost(r1, r2)
		switch cl {
		case SameCore:
			return cost == 0
		case SharedL2:
			return cost == c.Latency.SharedL2
		case IntraSocket:
			return cost == c.Latency.IntraSocket
		case InterSocket:
			return cost == c.Latency.InterSocket
		default:
			return cost >= c.Latency.InterNodeBase
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	out := UMACluster(1).Describe()
	for _, want := range []string{"UMA-FSB", "1 nodes, 8 cores", "node 0 (UMA, 2 sockets × 4 cores)", "[core0 core1]", "socket 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
	p := PittCluster(2).Describe()
	if !strings.Contains(p, "2 nodes, 40 cores") || !strings.Contains(p, "flat switch") {
		t.Fatalf("Pitt Describe:\n%s", p)
	}
	g := GordonCluster(1).Describe()
	if !strings.Contains(g, "3D torus") || !strings.Contains(g, "max 6 hops") {
		t.Fatalf("Gordon Describe:\n%s", g)
	}
}
