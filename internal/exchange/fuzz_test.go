package exchange

import (
	"math/rand"
	"strings"
	"testing"
)

// FuzzRegionPropagate throws random update sets, region sizes, and
// deliberate cross-server overlaps at the region exchange. The contract
// under any input: Propagate either converges every server to one
// consistent view that reflects all updates, or returns a conflict
// error — never a panic and never a silently divergent view.
func FuzzRegionPropagate(f *testing.F) {
	f.Add(int64(1), uint16(64), uint8(3), uint8(20), uint8(0))
	f.Add(int64(7), uint16(1), uint8(1), uint8(0), uint8(0))
	f.Add(int64(42), uint16(500), uint8(8), uint8(60), uint8(3))
	f.Add(int64(-9), uint16(17), uint8(5), uint8(33), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, sizeRaw uint16, serversRaw, updatesRaw, overlapRaw uint8) {
		const nVerts = 300
		nServers := int(serversRaw%8) + 2
		updatesPer := int(updatesRaw % 80)
		size := int64(sizeRaw%600) + 1
		rng := rand.New(rand.NewSource(seed))

		initial := make([]int32, nVerts)
		for v := range initial {
			initial[v] = int32(rng.Intn(nServers))
		}
		servers := make([]*Server, nServers)
		for i := range servers {
			servers[i] = &Server{
				ID:        i,
				Locations: append([]int32(nil), initial...),
				Updates:   map[int32]int32{},
			}
		}
		for _, s := range servers {
			for u := 0; u < updatesPer; u++ {
				s.Updates[int32(rng.Intn(nVerts))] = int32(rng.Intn(nServers))
			}
		}
		// Extra forced overlaps, beyond what random collisions produced.
		for o := 0; o < int(overlapRaw%4); o++ {
			v := int32(rng.Intn(nVerts))
			servers[rng.Intn(nServers)].Updates[v] = int32(rng.Intn(nServers))
			servers[rng.Intn(nServers)].Updates[v] = int32(rng.Intn(nServers))
		}
		// Ground truth from the final per-server update maps — exactly
		// the condition Propagate must detect: some vertex assigned two
		// different locations by different servers. Agreeing duplicates
		// are legal. wantLoc is only meaningful when conflict-free.
		expectConflict := false
		wantLoc := map[int32]int32{}
		for _, s := range servers {
			for v, loc := range s.Updates {
				if prev, ok := wantLoc[v]; ok && prev != loc {
					expectConflict = true
				}
				wantLoc[v] = loc
			}
		}

		_, err := Region{Size: size}.Propagate(servers)
		if err != nil {
			if !strings.Contains(err.Error(), "conflicting updates") {
				t.Fatalf("unexpected error class: %v", err)
			}
			if !expectConflict {
				t.Fatalf("conflict reported on a conflict-free input: %v", err)
			}
			return
		}
		if expectConflict {
			t.Fatal("conflicting input propagated without error")
		}
		if !Consistent(servers) {
			t.Fatal("views diverged without an error")
		}
		for v := int32(0); v < nVerts; v++ {
			want := initial[v]
			if loc, ok := wantLoc[v]; ok {
				want = loc
			}
			if servers[0].Locations[v] != want {
				t.Fatalf("vertex %d: location %d, want %d", v, servers[0].Locations[v], want)
			}
		}
	})
}
