// Package fixture exercises //lint:ignore handling: placement on the
// diagnostic line and the line above, plus malformed directives that
// must themselves be reported while leaving the finding unsuppressed.
package fixture

// Directive trailing the offending line suppresses it.
func sameLine(m map[int]int) int {
	x := 0
	for k := range m { //lint:ignore maprange same-line directive with a reason
		x = k
	}
	return x
}

// Directive on the line directly above suppresses it.
func lineAbove(m map[int]int) int {
	x := 0
	//lint:ignore maprange directive on the line above, with a reason
	for k := range m {
		x = k
	}
	return x
}

// A directive without a reason is malformed: it is reported and does
// not suppress the finding.
func missingReason(m map[int]int) int {
	x := 0
	//lint:ignore maprange
	for k := range m {
		x = k
	}
	return x
}

// A directive naming an unknown checker is reported and does not
// suppress the finding.
func unknownChecker(m map[int]int) int {
	x := 0
	//lint:ignore nosuchcheck the checker name is wrong on purpose
	for k := range m {
		x = k
	}
	return x
}

// A directive two lines above the finding is out of range and does not
// suppress it.
func tooFarAway(m map[int]int) int {
	//lint:ignore maprange too far from the for loop to apply
	x := 0
	for k := range m {
		x = k
	}
	return x
}
