// Package fixture shows the sanctioned fan-out shape; nothing here may
// be reported.
package fixture

import "sync"

// Loop state is passed as arguments and the WaitGroup provides the
// synchronization point for the shared-slice writes.
func fanOut(items []int, results []int) {
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i, it int) {
			defer wg.Done()
			results[i] = it * 2
		}(i, it)
	}
	wg.Wait()
}

// A capture silenced with a reasoned directive (and a channel as the
// synchronization point).
func suppressed(items []int, out chan<- int) {
	for i := range items {
		//lint:ignore looprace per-iteration loop vars make this capture safe; results merge through the channel
		go func() {
			out <- i
		}()
	}
}
