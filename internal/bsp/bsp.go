// Package bsp is a Pregel-style bulk-synchronous execution simulator for
// distributed graph computations on a modeled multicore cluster — the
// reproduction's substitute for the paper's MPI testbeds (§7.2).
//
// A run places partition i of the decomposition on rank (core) i of a
// topology.Cluster, executes a vertex program superstep by superstep with
// real message passing between rank goroutines, and *models* time: each
// rank's superstep time is a compute term (vertices processed + edges
// scanned) plus communication terms derived from the cluster's relative
// cost matrix, with message grouping (the paper groups 8–16 messages per
// destination rank) and an intra-node memory-subsystem contention charge
// (§2.2: shared-memory MPI transfers pollute caches and queue on the
// memory bus, while inter-node RDMA bypasses both).
//
// The job execution time follows the paper's definition exactly:
// JET = Σ_i SET(i), where SET(i) is the i-th superstep time of the
// slowest rank. The simulator also accumulates the communication-volume
// breakdown (intra-socket / inter-socket / inter-node) of Figures 12–13.
package bsp

import (
	"fmt"
	"math"
	"sync"

	"paragon/internal/graph"
	"paragon/internal/partition"
	"paragon/internal/topology"
)

// Program is a vertex program in Pregel form. Values and messages are
// int64 (fixed-point for fractional algorithms like PageRank).
type Program struct {
	// Init returns the initial value of v and whether v starts active.
	Init func(v int32) (value int64, active bool)
	// Compute processes v given its current value and (combined)
	// incoming messages; it may send messages via send and returns the
	// new value plus whether v stays active without messages.
	Compute func(v int32, value int64, msgs []int64, send func(to int32, m int64)) (int64, bool)
	// Combine optionally merges two messages bound for the same vertex
	// (e.g. min for BFS/SSSP). Nil delivers all messages individually.
	Combine func(a, b int64) int64

	// Contribute, AggCombine and OnAggregate implement Pregel-style
	// aggregators: Contribute maps each computed vertex's new value to a
	// contribution, AggCombine folds contributions, and OnAggregate
	// receives the folded value at the superstep barrier (it may safely
	// update state read by the next superstep's Compute calls — the
	// barrier orders the accesses). All three are optional but must be
	// set together with at least Contribute+AggCombine.
	Contribute  func(v int32, value int64) int64
	AggCombine  func(a, b int64) int64
	OnAggregate func(superstep int, agg int64)
}

// Options tunes the cost model.
type Options struct {
	// MsgGroupSize is the number of messages to the same destination
	// rank coalesced into one transfer (the paper's "message grouping",
	// 8–16 in §7.2). Default 8.
	MsgGroupSize int
	// ComputePerVertex and ComputePerEdge are the model's compute time
	// units per processed vertex and scanned edge, in the same relative
	// units as the topology latency model. Defaults 0.02 and 0.002.
	ComputePerVertex float64
	ComputePerEdge   float64
	// MemoryContention ∈ [0,1] is the fraction of *other* ranks'
	// intra-node transfer time that delays a rank on the same node
	// (shared memory bus and cache pollution, §2.2). Inter-node RDMA
	// traffic is exempt. Default 0.3; ~0.6 matches the paper's
	// PittMPICluster (intra-node bound), ~0.1 its Gordon (network
	// bound).
	MemoryContention float64
	// MaxSupersteps aborts runaway programs. Default 100000.
	MaxSupersteps int
	// TrackVertexTraffic enables per-vertex message accounting
	// (Result.VertexTraffic) — the runtime statistics that
	// Mizan-style repartitioners consume. Off by default (costs one
	// int64 per vertex plus two increments per message).
	TrackVertexTraffic bool
}

func (o Options) withDefaults() Options {
	if o.MsgGroupSize <= 0 {
		o.MsgGroupSize = 8
	}
	if o.ComputePerVertex == 0 {
		o.ComputePerVertex = 0.02
	}
	if o.ComputePerEdge == 0 {
		o.ComputePerEdge = 0.002
	}
	if o.MemoryContention == 0 {
		o.MemoryContention = 0.3
	}
	if o.MemoryContention < 0 {
		o.MemoryContention = 0
	}
	if o.MemoryContention > 1 {
		o.MemoryContention = 1
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 100000
	}
	return o
}

// VolumeBreakdown accumulates exchanged bytes by communication class —
// the Figure 12/13 series. Same-rank (local) traffic is excluded, as in
// the paper's "remotely exchanged" accounting.
type VolumeBreakdown struct {
	IntraSocket int64 // includes shared-L2 pairs
	InterSocket int64
	InterNode   int64
}

// Total returns the total remote volume.
func (v VolumeBreakdown) Total() int64 { return v.IntraSocket + v.InterSocket + v.InterNode }

// Result of a run.
type Result struct {
	Values     []int64 // final vertex values
	Supersteps int
	JET        float64 // Σ per-superstep max-rank time (paper §7.2)
	Volume     VolumeBreakdown
	Messages   int64 // total remote messages
	StepTimes  []float64
	// StepSkew is, per superstep, the slowest rank's time divided by the
	// mean rank time — the load-balance signal driving Eq. 4's skewness
	// objective (1.0 = perfectly balanced superstep).
	StepSkew []float64
	// VertexTraffic counts, per vertex, messages sent plus received
	// across the run (only when Options.TrackVertexTraffic is set) — the
	// runtime signal Mizan-style dynamic repartitioners migrate on.
	VertexTraffic []int64
	// Aggregates holds, per superstep, the folded aggregator value (only
	// when the program defines Contribute/AggCombine).
	Aggregates []int64
}

// AvgSkew returns the mean superstep skew, or 1 when nothing ran.
func (r *Result) AvgSkew() float64 {
	if len(r.StepSkew) == 0 {
		return 1
	}
	var sum float64
	for _, s := range r.StepSkew {
		sum += s
	}
	return sum / float64(len(r.StepSkew))
}

// Engine binds a graph, a decomposition, and a cluster.
type Engine struct {
	g    *graph.Graph
	p    *partition.Partitioning
	cl   *topology.Cluster
	opts Options

	ranks     int
	rankVerts [][]int32 // vertices per rank
	cost      [][]float64
	class     [][]topology.CommClass
	node      []int
}

// NewEngine validates the placement (partition i on core i) and
// precomputes rank metadata.
func NewEngine(g *graph.Graph, p *partition.Partitioning, cl *topology.Cluster, opts Options) (*Engine, error) {
	if err := p.Validate(g); err != nil {
		return nil, fmt.Errorf("bsp: %w", err)
	}
	if int(p.K) > cl.TotalCores() {
		return nil, fmt.Errorf("bsp: %d partitions exceed %d cores of %s", p.K, cl.TotalCores(), cl.Name)
	}
	e := &Engine{g: g, p: p, cl: cl, opts: opts.withDefaults(), ranks: int(p.K)}
	e.rankVerts = make([][]int32, e.ranks)
	for v := int32(0); v < g.NumVertices(); v++ {
		r := p.Assign[v]
		e.rankVerts[r] = append(e.rankVerts[r], v)
	}
	e.cost = make([][]float64, e.ranks)
	e.class = make([][]topology.CommClass, e.ranks)
	e.node = make([]int, e.ranks)
	for i := 0; i < e.ranks; i++ {
		e.cost[i] = make([]float64, e.ranks)
		e.class[i] = make([]topology.CommClass, e.ranks)
		e.node[i] = cl.Loc(i).Node
		for j := 0; j < e.ranks; j++ {
			e.cost[i][j] = cl.Cost(i, j)
			e.class[i][j] = cl.Class(i, j)
		}
	}
	return e, nil
}

// bytesPerMessage models an 8-byte payload plus a 4-byte vertex id.
const bytesPerMessage = 12

// rankOutcome is what one rank goroutine produces per superstep.
type rankOutcome struct {
	outbox   []map[int32]int64 // per destination rank: combined messages per vertex
	outMulti []map[int32][]int64
	msgs     []int64 // message count per destination rank
	computed int64   // vertices processed
	scanned  int64   // edges scanned (sends attempted)
	active   []int32 // vertices voting to stay active
	agg      int64   // folded aggregator contributions
	aggSet   bool
	panicked interface{}
}

// Run executes the program to completion and returns the result.
func (e *Engine) Run(prog Program) (Result, error) {
	if prog.Init == nil || prog.Compute == nil {
		return Result{}, fmt.Errorf("bsp: program needs Init and Compute")
	}
	n := e.g.NumVertices()
	values := make([]int64, n)
	activeNow := make([]bool, n)
	anyActive := false
	for v := int32(0); v < n; v++ {
		val, act := prog.Init(v)
		values[v] = val
		activeNow[v] = act
		anyActive = anyActive || act
	}
	// inbox[v] holds the combined (or listed) messages for v this step.
	inboxC := make(map[int32]int64)   // combined
	inboxM := make(map[int32][]int64) // uncombined
	combined := prog.Combine != nil

	var res Result
	if e.opts.TrackVertexTraffic {
		res.VertexTraffic = make([]int64, n)
	}
	for anyActive || len(inboxC) > 0 || len(inboxM) > 0 {
		if res.Supersteps >= e.opts.MaxSupersteps {
			return res, fmt.Errorf("bsp: exceeded %d supersteps", e.opts.MaxSupersteps)
		}
		outcomes := make([]rankOutcome, e.ranks)
		var wg sync.WaitGroup
		for r := 0; r < e.ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				defer func() {
					// A panicking vertex program must not take down the
					// whole simulation (mirrors an MPI rank aborting):
					// surface it as an error after the barrier.
					if p := recover(); p != nil {
						outcomes[r].panicked = p
					}
				}()
				outcomes[r] = e.runRank(r, prog, values, activeNow, inboxC, inboxM, combined, res.VertexTraffic)
			}(r)
		}
		wg.Wait()
		for r := 0; r < e.ranks; r++ {
			if p := outcomes[r].panicked; p != nil {
				return res, fmt.Errorf("bsp: rank %d panicked in superstep %d: %v", r, res.Supersteps, p)
			}
		}

		// Aggregator fold (deterministic rank order), then the barrier
		// callback.
		if prog.Contribute != nil && prog.AggCombine != nil {
			var agg int64
			set := false
			for r := 0; r < e.ranks; r++ {
				if outcomes[r].aggSet {
					if set {
						agg = prog.AggCombine(agg, outcomes[r].agg)
					} else {
						agg, set = outcomes[r].agg, true
					}
				}
			}
			res.Aggregates = append(res.Aggregates, agg)
			if prog.OnAggregate != nil {
				prog.OnAggregate(res.Supersteps, agg)
			}
		}

		// Timing and volume (deterministic rank-order reduction).
		stepTime := e.accountStep(outcomes, &res)
		res.StepTimes = append(res.StepTimes, stepTime)
		res.JET += stepTime
		res.Supersteps++

		// Deliver: build next inboxes and active set.
		nextC := make(map[int32]int64)
		nextM := make(map[int32][]int64)
		for v := range activeNow {
			activeNow[v] = false
		}
		anyActive = false
		for r := 0; r < e.ranks; r++ {
			oc := &outcomes[r]
			if combined {
				for _, box := range oc.outbox {
					for v, m := range box {
						if res.VertexTraffic != nil {
							res.VertexTraffic[v]++
						}
						if old, ok := nextC[v]; ok {
							nextC[v] = prog.Combine(old, m)
						} else {
							nextC[v] = m
						}
					}
				}
			} else {
				for _, box := range oc.outMulti {
					for v, ms := range box {
						if res.VertexTraffic != nil {
							res.VertexTraffic[v] += int64(len(ms))
						}
						nextM[v] = append(nextM[v], ms...)
					}
				}
			}
			for _, v := range oc.active {
				if !activeNow[v] {
					activeNow[v] = true
					anyActive = true
				}
			}
		}
		inboxC, inboxM = nextC, nextM
	}
	res.Values = values
	return res, nil
}

// runRank processes all of rank r's vertices that are active or have
// messages, in ascending vertex order. It only writes values of its own
// vertices, so the shared values slice is race-free across ranks.
func (e *Engine) runRank(r int, prog Program, values []int64, activeNow []bool, inboxC map[int32]int64, inboxM map[int32][]int64, combined bool, traffic []int64) rankOutcome {
	oc := rankOutcome{
		msgs: make([]int64, e.ranks),
	}
	if combined {
		oc.outbox = make([]map[int32]int64, e.ranks)
	} else {
		oc.outMulti = make([]map[int32][]int64, e.ranks)
	}
	var msgScratch [1]int64
	send := func(to int32, m int64) {
		dst := int(e.p.Assign[to])
		oc.msgs[dst]++
		oc.scanned++
		if combined {
			if oc.outbox[dst] == nil {
				oc.outbox[dst] = make(map[int32]int64)
			}
			if old, ok := oc.outbox[dst][to]; ok {
				oc.outbox[dst][to] = prog.Combine(old, m)
			} else {
				oc.outbox[dst][to] = m
			}
		} else {
			if oc.outMulti[dst] == nil {
				oc.outMulti[dst] = make(map[int32][]int64)
			}
			oc.outMulti[dst][to] = append(oc.outMulti[dst][to], m)
		}
	}
	for _, v := range e.rankVerts[r] {
		var msgs []int64
		if combined {
			if m, ok := inboxC[v]; ok {
				msgScratch[0] = m
				msgs = msgScratch[:]
			}
		} else if ms, ok := inboxM[v]; ok {
			msgs = ms
		}
		if !activeNow[v] && msgs == nil {
			continue
		}
		sentBefore := oc.scanned
		newVal, stayActive := prog.Compute(v, values[v], msgs, send)
		//lint:ignore sharedwrite rank r owns every v in rankVerts[r]; concurrent ranks write disjoint vertex slots
		values[v] = newVal
		if prog.Contribute != nil {
			c := prog.Contribute(v, newVal)
			if oc.aggSet {
				oc.agg = prog.AggCombine(oc.agg, c)
			} else {
				oc.agg, oc.aggSet = c, true
			}
		}
		if traffic != nil {
			// Sent messages attributed to the computing vertex; receives
			// are attributed at delivery (post-combining).
			//lint:ignore sharedwrite rank r owns every v in rankVerts[r]; concurrent ranks write disjoint vertex slots
			traffic[v] += oc.scanned - sentBefore
		}
		oc.computed++
		if stayActive {
			oc.active = append(oc.active, v)
		}
	}
	return oc
}

// accountStep converts the rank outcomes of one superstep into model
// time and volume, returning SET = max over ranks of per-rank time.
func (e *Engine) accountStep(outcomes []rankOutcome, res *Result) float64 {
	group := float64(e.opts.MsgGroupSize)
	// Per-rank send/recv transfer times split by locality.
	sendIntra := make([]float64, e.ranks) // shared-memory transfers (same node)
	sendInter := make([]float64, e.ranks) // RDMA transfers (cross node)
	recvIntra := make([]float64, e.ranks)
	recvInter := make([]float64, e.ranks)
	compute := make([]float64, e.ranks)

	for r := 0; r < e.ranks; r++ {
		oc := &outcomes[r]
		compute[r] = e.opts.ComputePerVertex*float64(oc.computed) + e.opts.ComputePerEdge*float64(oc.scanned)
		for dst := 0; dst < e.ranks; dst++ {
			m := oc.msgs[dst]
			if m == 0 || dst == r {
				continue // local messages are free and unreported
			}
			batches := math.Ceil(float64(m) / group)
			t := batches * e.cost[r][dst]
			switch e.class[r][dst] {
			case topology.InterNode:
				sendInter[r] += t
				recvInter[dst] += t
				res.Volume.InterNode += m * bytesPerMessage
			case topology.InterSocket:
				sendIntra[r] += t
				recvIntra[dst] += t
				res.Volume.InterSocket += m * bytesPerMessage
			default: // intra-socket or shared-L2
				sendIntra[r] += t
				recvIntra[dst] += t
				res.Volume.IntraSocket += m * bytesPerMessage
			}
			res.Messages += m
		}
	}
	// Intra-node contention (§2.2): a rank is also delayed by a fraction
	// of the other intra-node (shared-memory) transfer time on its node.
	nodeIntra := map[int]float64{}
	for r := 0; r < e.ranks; r++ {
		nodeIntra[e.node[r]] += sendIntra[r] + recvIntra[r]
	}
	var worst, sum float64
	for r := 0; r < e.ranks; r++ {
		own := sendIntra[r] + recvIntra[r]
		contention := e.opts.MemoryContention * (nodeIntra[e.node[r]] - own)
		t := compute[r] + own + contention + sendInter[r] + recvInter[r]
		sum += t
		if t > worst {
			worst = t
		}
	}
	skew := 1.0
	if sum > 0 {
		skew = worst / (sum / float64(e.ranks))
	}
	res.StepSkew = append(res.StepSkew, skew)
	return worst
}
