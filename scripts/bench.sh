#!/usr/bin/env bash
# Runs the refinement hot-path benchmarks (BenchmarkRefinePairHot,
# BenchmarkParagonRound — 100k-vertex RMAT, k ∈ {32, 128}) and emits
# BENCH_refine.json with ns/op and allocs/op for each, next to the
# recorded pre-index baseline so the speedup is visible in one file.
# A second pass pairs BenchmarkParagonRound with its fault-layer twin
# (BenchmarkParagonRoundFault: injector installed, zero-fault schedule)
# and emits BENCH_fault.json with the instrumentation overhead per
# config; the budget for the fault layer is < 5%. A third pass does the
# same for the observability layer (BenchmarkParagonRoundObs: tracer and
# metrics registry installed) and emits BENCH_obs.json — the base side
# of that pair is the overhead-when-disabled guard: nil tracer/registry
# must cost nothing but nil checks.
#
# Usage: scripts/bench.sh [output.json] [fault-output.json] [obs-output.json]
#   BENCHTIME=10x scripts/bench.sh   # more iterations for stable numbers
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_refine.json}"
faultout="${2:-BENCH_fault.json}"
obsout="${3:-BENCH_obs.json}"
benchtime="${BENCHTIME:-5x}"
count="${BENCHCOUNT:-3}"

# Pinned reference numbers — THE single place to update when re-pinning.
# baseline_pins is the scan-based implementation before
# internal/partition.Index, measured once and frozen; pinned_pins is the
# last committed HEAD measurement (paste a fresh run's "current" block
# here when committing new numbers). Every current point is emitted with
# its drift vs the pin, so baseline rot shows up in the JSON itself
# instead of as an archaeology note in CHANGES.md.
baseline_commit="a4d204a (pre-index scan-based refinement)"
baseline_pins="BenchmarkRefinePairHot/k=32 3065617 50
BenchmarkRefinePairHot/k=128 1253660 30
BenchmarkParagonRound/k=32 159739650 2528
BenchmarkParagonRound/k=128 1386737586 28217"
pinned_commit="portfolio-refinement PR (BENCHTIME=8x BENCHCOUNT=4, 1-CPU CI box)"
pinned_pins="BenchmarkRefinePairHot/k=32 1820112 51
BenchmarkRefinePairHot/k=128 505952 37
BenchmarkParagonRound/k=32 97761910 295
BenchmarkParagonRound/k=128 415958510 549"

tmp="$(mktemp)"
faulttmp="$(mktemp)"
obstmp="$(mktemp)"
trap 'rm -f "$tmp" "$faulttmp" "$obstmp"' EXIT

# The overhead pairs run each side in its own process: heap growth and
# drift inside a long-lived benchmark process systematically penalize
# whichever benchmark runs second, swamping the ~1% signal. The count
# repetitions are interleaved (base, fault, obs, base, fault, obs, ...)
# rather than blocked per side, so slow machine-load drift across the
# minutes of the run biases all sides equally instead of whichever block
# happens to run last; the emitters keep the per-benchmark minimum —
# the hot pair bench rides the same loop for the same reason (a single
# cold process over-reports its µs-scale ops by tens of percent).
for _ in $(seq "$count"); do
    go test -run '^$' -bench 'BenchmarkRefinePairHot' -benchmem -benchtime "$benchtime" ./internal/aragon/ | tee -a "$tmp"
    go test -run '^$' -bench 'BenchmarkParagonRound$' -benchmem -benchtime "$benchtime" ./internal/paragon/ | tee -a "$faulttmp"
    go test -run '^$' -bench 'BenchmarkParagonRoundFault$' -benchmem -benchtime "$benchtime" ./internal/paragon/ | tee -a "$faulttmp"
    go test -run '^$' -bench 'BenchmarkParagonRoundObs$' -benchmem -benchtime "$benchtime" ./internal/paragon/ | tee -a "$obstmp"
done
grep '^BenchmarkParagonRound/' "$faulttmp" >> "$obstmp"
grep '^BenchmarkParagonRound/' "$faulttmp" >> "$tmp"

# Benchmark lines look like:
#   BenchmarkParagonRound/k=128-8   5   336316376 ns/op   15844968 B/op   2307 allocs/op
# The baseline and pinned blocks come from the shell pins above; every
# current point carries drift_vs_pinned_pct so a stale pin is visible in
# the artifact, not buried in commit history.
awk -v out="$out" -v benchtime="$benchtime" \
    -v baseline="$baseline_pins" -v baseline_commit="$baseline_commit" \
    -v pinned="$pinned_pins" -v pinned_commit="$pinned_commit" '
BEGIN {
    nb = split(baseline, bl, "\n")
    for (i = 1; i <= nb; i++) {
        split(bl[i], f, " "); bns[f[1]] = f[2]; ballocs[f[1]] = f[3]; border[i-1] = f[1]
    }
    np = split(pinned, pl, "\n")
    for (i = 1; i <= np; i++) { split(pl[i], f, " "); pns[f[1]] = f[2] }
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip -GOMAXPROCS suffix
    if (!(name in ns) || $3 + 0 < ns[name] + 0) { ns[name] = $3; allocs[name] = $7 }
    if (!(name in seen)) { seen[name] = 1; order[n++] = name }
}
END {
    if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf("{\n")                                               > out
    printf("  \"benchtime\": \"%s\",\n", benchtime)             > out
    printf("  \"graph\": \"RMAT n=100000 m=800000 seed=42, degree weights\",\n") > out
    printf("  \"note\": \"drift_vs_pinned_pct compares this run to the pinned HEAD measurement (%s); re-pin scripts/bench.sh when committing new numbers.\",\n", pinned_commit) > out
    printf("  \"baseline\": {\n")                               > out
    printf("    \"commit\": \"%s\",\n", baseline_commit)        > out
    for (i = 0; i < nb; i++) {
        name = border[i]
        printf("    \"%s\": { \"ns_op\": %s, \"allocs_op\": %s }%s\n",
               name, bns[name], ballocs[name], (i < nb - 1) ? "," : "") > out
    }
    printf("  },\n")                                            > out
    printf("  \"current\": {\n")                                > out
    for (i = 0; i < n; i++) {
        name = order[i]
        drift = (name in pns && pns[name] > 0) ? 100 * (ns[name] - pns[name]) / pns[name] : 0
        printf("    \"%s\": { \"ns_op\": %s, \"allocs_op\": %s, \"drift_vs_pinned_pct\": %.1f }%s\n",
               name, ns[name], allocs[name], drift, (i < n - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                          > out
}
' "$tmp"

# Fault-layer overhead: pair BenchmarkParagonRound/<cfg> with
# BenchmarkParagonRoundFault/<cfg> and report the relative cost of the
# instrumented (never-firing) fault points.
awk -v out="$faultout" -v benchtime="$benchtime" -v count="$count" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in ns) || $3 + 0 < ns[name] + 0) { ns[name] = $3; allocs[name] = $7 }
    split(name, parts, "/")
    cfg = parts[2]
    if (!(cfg in seen)) { seen[cfg] = 1; order[n++] = cfg }
}
END {
    if (n == 0) { print "bench.sh: no fault benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf("{\n")                                               > out
    printf("  \"benchtime\": \"%s\",\n", benchtime)             > out
    printf("  \"graph\": \"RMAT n=100000 m=800000 seed=42, degree weights\",\n") > out
    printf("  \"note\": \"fault = injector installed at rate 0: every fault point consulted, none fires; overhead budget < 5%%. min ns/op over %s runs of %s, one process per side (in-process drift penalizes whichever side runs second)\",\n", count, benchtime) > out
    printf("  \"rounds\": {\n")                                 > out
    for (i = 0; i < n; i++) {
        cfg = order[i]
        base = "BenchmarkParagonRound/" cfg
        fault = "BenchmarkParagonRoundFault/" cfg
        pct = (ns[base] > 0) ? 100 * (ns[fault] - ns[base]) / ns[base] : 0
        printf("    \"%s\": { \"base_ns_op\": %s, \"fault_ns_op\": %s, \"overhead_pct\": %.2f, \"base_allocs_op\": %s, \"fault_allocs_op\": %s }%s\n",
               cfg, ns[base], ns[fault], pct, allocs[base], allocs[fault], (i < n - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                          > out
}
' "$faulttmp"

# Observability overhead: pair BenchmarkParagonRound/<cfg> (nil tracer
# and registry — the disabled path) with BenchmarkParagonRoundObs/<cfg>
# (both installed). The base numbers double as the overhead-when-disabled
# record next to BENCH_refine.json: they must stay within noise of the
# pre-obs BenchmarkParagonRound.
awk -v out="$obsout" -v benchtime="$benchtime" -v count="$count" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in ns) || $3 + 0 < ns[name] + 0) { ns[name] = $3; allocs[name] = $7 }
    split(name, parts, "/")
    cfg = parts[2]
    if (!(cfg in seen)) { seen[cfg] = 1; order[n++] = cfg }
}
END {
    if (n == 0) { print "bench.sh: no obs benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf("{\n")                                               > out
    printf("  \"benchtime\": \"%s\",\n", benchtime)             > out
    printf("  \"graph\": \"RMAT n=100000 m=800000 seed=42, degree weights\",\n") > out
    printf("  \"note\": \"obs = tracer + metrics registry installed: every emission site pays full cost. base = both nil, the overhead-when-disabled guard next to BENCH_refine.json. min ns/op over %s runs of %s, one process per side\",\n", count, benchtime) > out
    printf("  \"rounds\": {\n")                                 > out
    for (i = 0; i < n; i++) {
        cfg = order[i]
        base = "BenchmarkParagonRound/" cfg
        obs = "BenchmarkParagonRoundObs/" cfg
        pct = (ns[base] > 0) ? 100 * (ns[obs] - ns[base]) / ns[base] : 0
        printf("    \"%s\": { \"base_ns_op\": %s, \"obs_ns_op\": %s, \"overhead_pct\": %.2f, \"base_allocs_op\": %s, \"obs_allocs_op\": %s }%s\n",
               cfg, ns[base], ns[obs], pct, allocs[base], allocs[obs], (i < n - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                          > out
}
' "$obstmp"

echo "bench: wrote $out, $faultout, and $obsout"
