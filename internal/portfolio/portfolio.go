// Package portfolio races P independently seeded refinements of the same
// input decomposition on a bounded worker pool and keeps the best — the
// KaFFPaE-style ensemble layer over the PARAGON refinement.
//
// Members are embarrassingly parallel: each owns a private
// partition.Index and Refiner scratch over the shared read-only graph,
// runs its shuffle-refinement tournament serially to completion, and
// never synchronizes with other members (no wave barriers — the
// coarse-grained parallelism the pair-level scheduler cannot extract
// from these graphs). Determinism is therefore trivial rather than
// subtle: a member's output is a pure function of (input assignment,
// member seed, effective config), scheduling decides only *when* a
// member runs, and selection folds the finished members in ascending
// member id with the strict partition.Score total order (score, then
// member id). The selected output is bit-identical at every
// Config.Workers value, which TestPortfolioDeterminism asserts.
//
// The combine operator (combine.go) overlays the two best members and
// re-refines only where they disagree; faults (Config.Fabric /
// FaultRate) resolve per member, up front, on the coordinator — a
// crashed member forfeits and is excluded from scoring, never silently
// substituted.
package portfolio

import (
	"fmt"
	"sync"
	"time"

	"paragon/internal/faultsim"
	"paragon/internal/graph"
	"paragon/internal/obs"
	"paragon/internal/paragon"
	"paragon/internal/partition"
)

// MemberStats is one member's line in Stats, indexed by member id.
type MemberStats struct {
	Seed      int64           // the member's grouping seed
	Forfeited bool            // excluded by the fault fabric before running
	Score     partition.Score // zero value when forfeited
	Moves     int             // kept moves across the member's rounds
	Gain      float64         // total realized Eq. 5 gain
	CPUTime   time.Duration   // wall time of the member's run on its worker
}

// Stats reports what one portfolio refinement did. Every field except
// the stopwatches (WallTime, CPUTime, Members[i].CPUTime) is identical
// at every Config.Workers value.
type Stats struct {
	Size     int           // members configured (forfeits included)
	Forfeits int           // members excluded by the fault fabric
	Members  []MemberStats // per member, ascending member id

	Winner   int // best surviving member id; -1 if all forfeited
	RunnerUp int // second best; -1 if fewer than two survivors

	// Combine operator accounting (zero values when it did not run).
	CombineDiff    int             // vertices on which the two best members disagree
	CombineMoves   int             // moves kept by the boundary-restricted rounds
	CombineGain    float64         // realized Eq. 5 gain of those rounds
	CombinedScore  partition.Score // score of the overlay after re-refinement
	CombineApplied bool            // the overlay beat the winner and was selected

	InputScore    partition.Score // the input decomposition (no migration)
	SelectedScore partition.Score // the decomposition left in p

	WallTime time.Duration // whole-call stopwatch
	CPUTime  time.Duration // Σ member CPU — the member-level concurrency witness
}

// Refine races cfg.Portfolio.Size seeded refinements of p and leaves the
// selected decomposition in p.Assign. One-shot form of RefineWithPool.
func Refine(g *graph.Graph, p *partition.Partitioning, c [][]float64, cfg paragon.Config) (Stats, error) {
	var pool Pool
	return RefineWithPool(g, p, c, cfg, &pool)
}

// runner carries one call's shared state into the worker goroutines.
// Workers claim members by the static stride m ≡ w (mod workers) and
// write only member-id-indexed result slots plus their own scratch — the
// same ownership discipline as the pair scheduler's arenas.
type runner struct {
	pool    *Pool
	base    []int32
	c       [][]float64
	par     memberParams
	size    int
	workers int
	wg      sync.WaitGroup
}

func (r *runner) worker(w int) {
	defer r.wg.Done()
	pl := r.pool
	scr := pl.scratch[w]
	for m := w; m < r.size; m += r.workers {
		if pl.forfeit[m] {
			continue
		}
		//lint:ignore wallclock per-member CPU stopwatch for MemberStats.CPUTime; never read by refinement decisions
		t0 := time.Now()
		par := r.par
		par.seed = pl.seeds[m]
		mv, gn := scr.run(r.base, r.c, par)
		copy(pl.assigns[m], scr.p.Assign)
		pl.scores[m] = partition.ComputeScoreInto(pl.g, scr.p, r.base, r.c, par.alpha, scr.wbuf)
		pl.moves[m] = mv
		pl.gains[m] = gn
		//lint:ignore wallclock per-member CPU stopwatch for MemberStats.CPUTime; never read by refinement decisions
		pl.cpu[m] = int64(time.Since(t0))
	}
}

// memberSeed derives member m's grouping seed: member 0 inherits the
// configured seed unchanged (portfolio size 1 degenerates to the plain
// seeded refinement), members beyond it decorrelate via a splitmix64
// finalizer — pure arithmetic, no shared rng stream to order.
func memberSeed(seed int64, m int) int64 {
	if m == 0 {
		return seed
	}
	return int64(mix64(uint64(seed) ^ mix64(uint64(m))))
}

// mix64 is the splitmix64 finalizer (same construction as the fault
// injector's hash; duplicated here because faultsim keeps it private).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RefineWithPool is Refine on caller-owned scratch: passing the same
// Pool across calls on the same (graph, k) makes steady-state
// allocations flat in the member count. The pool must not be shared by
// concurrent calls.
func RefineWithPool(g *graph.Graph, p *partition.Partitioning, c [][]float64, cfg paragon.Config, pool *Pool) (Stats, error) {
	//lint:ignore wallclock whole-run stopwatch for Stats.WallTime; never read by refinement decisions
	start := time.Now()
	if err := p.Validate(g); err != nil {
		return Stats{}, fmt.Errorf("portfolio: %w", err)
	}
	if int32(len(c)) < p.K {
		return Stats{}, fmt.Errorf("portfolio: cost matrix has %d rows for k=%d", len(c), p.K)
	}
	cfg = cfg.WithDefaults(p.K)
	size := cfg.Portfolio.Size
	st := Stats{Size: size, Winner: -1, RunnerUp: -1}
	st.InputScore = partition.ComputeScore(g, p, nil, c, cfg.Alpha)

	workers := cfg.Workers
	if workers > size {
		workers = size
	}
	pool.ensure(g, p.Assign, p.K, workers, size, cfg.AragonConfig())
	for m := 0; m < size; m++ {
		pool.seeds[m] = memberSeed(cfg.Seed, m)
	}

	// Member fates resolve up front, on the coordinator, at round -1 —
	// a coordinate no inner refinement round uses, so a portfolio fate
	// never collides with (and never perturbs) the scripted or hashed
	// fault schedule of a plain Refine on the same fabric. A crashed or
	// timed-out member forfeits: it does not run and is excluded from
	// scoring. Fates depend only on (fabric, member id) — not on
	// workers, not on completion order.
	fab := cfg.Fabric
	if fab == nil && cfg.FaultRate > 0 {
		fab = faultsim.NewInjector(faultsim.Config{Seed: cfg.FaultSeed, Rate: cfg.FaultRate})
	}
	if in, ok := fab.(*faultsim.Injector); ok && cfg.Metrics != nil {
		in.Observe(cfg.Metrics)
	}
	pol := faultsim.DefaultPolicy()
	if fab != nil {
		for m := 0; m < size; m++ {
			if fab.CrashGroup(-1, m) || fab.GroupDelay(-1, m) > pol.RoundTimeout {
				pool.forfeit[m] = true
				st.Forfeits++
			}
		}
	}

	if p.K >= 2 {
		r := &runner{
			pool:    pool,
			base:    p.Assign,
			c:       c,
			size:    size,
			workers: workers,
			par: memberParams{
				drp:      cfg.DRP,
				shuffles: cfg.Shuffles,
				khop:     cfg.KHop,
				alpha:    cfg.Alpha,
				maxLoad:  partition.BalanceBound(g, p.K, cfg.MaxImbalance),
			},
		}
		r.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go r.worker(w)
		}
		r.wg.Wait()
	} else {
		// k < 2: nothing to refine; members trivially reproduce the input.
		for m := 0; m < size; m++ {
			if !pool.forfeit[m] {
				copy(pool.assigns[m], p.Assign)
				pool.scores[m] = st.InputScore
			}
		}
	}

	// Selection: ascending member id with the strict Better order — the
	// lowest id wins full ties, and the fold is independent of which
	// worker ran what.
	for m := 0; m < size; m++ {
		if pool.forfeit[m] {
			continue
		}
		if st.Winner < 0 || pool.scores[m].Better(pool.scores[st.Winner]) {
			st.Winner = m
		}
	}
	for m := 0; m < size; m++ {
		if pool.forfeit[m] || m == st.Winner {
			continue
		}
		if st.RunnerUp < 0 || pool.scores[m].Better(pool.scores[st.RunnerUp]) {
			st.RunnerUp = m
		}
	}

	var selected []int32 // nil: all members forfeited, leave p untouched
	if st.Winner >= 0 {
		selected = pool.assigns[st.Winner]
		st.SelectedScore = pool.scores[st.Winner]
	} else {
		st.SelectedScore = st.InputScore
	}

	if cfg.Portfolio.CombineTop >= 2 && st.RunnerUp >= 0 {
		scr := pool.scratch[0] // idle after the join; combine is coordinator-only
		cs, diff, mv, gn := scr.combine(
			pool.assigns[st.Winner], pool.assigns[st.RunnerUp], p.Assign, c,
			runnerParams(cfg, g, p.K), cfg.Portfolio.CombineRounds)
		st.CombineDiff = diff
		st.CombineMoves = mv
		st.CombineGain = gn
		st.CombinedScore = cs
		if cs.Better(st.SelectedScore) {
			st.CombineApplied = true
			selected = scr.p.Assign
			st.SelectedScore = cs
		}
	}

	st.Members = make([]MemberStats, size)
	for m := 0; m < size; m++ {
		st.Members[m] = MemberStats{
			Seed:      pool.seeds[m],
			Forfeited: pool.forfeit[m],
			Score:     pool.scores[m],
			Moves:     pool.moves[m],
			Gain:      pool.gains[m],
			CPUTime:   time.Duration(pool.cpu[m]),
		}
		st.CPUTime += time.Duration(pool.cpu[m])
	}

	if selected != nil {
		copy(p.Assign, selected)
	}
	emitObservability(cfg, &st)
	//lint:ignore wallclock whole-run stopwatch for Stats.WallTime; never read by refinement decisions
	st.WallTime = time.Since(start)
	return st, nil
}

// runnerParams projects the effective member parameters out of a
// defaulted config (the combine operator refines under the same rules).
func runnerParams(cfg paragon.Config, g *graph.Graph, k int32) memberParams {
	return memberParams{
		drp:      cfg.DRP,
		shuffles: cfg.Shuffles,
		khop:     cfg.KHop,
		alpha:    cfg.Alpha,
		maxLoad:  partition.BalanceBound(g, k, cfg.MaxImbalance),
	}
}

// emitObservability commits the run's trace events and metrics from the
// coordinator, in member-id order — the portfolio analogue of the
// scheduler's task-order commit discipline. Nothing emitted depends on
// Workers or on any stopwatch, so trace and metrics files are
// byte-identical across worker counts.
func emitObservability(cfg paragon.Config, st *Stats) {
	if tr := cfg.Trace; tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindPortfolioStart, Round: -1,
			N: int64(st.Size), M: int64(cfg.Portfolio.CombineTop)})
		for m, ms := range st.Members {
			if ms.Forfeited {
				tr.Emit(obs.Event{Kind: obs.KindMemberForfeit, Round: -1, A: int32(m)})
				continue
			}
			tr.Emit(obs.Event{Kind: obs.KindMemberRefined, Round: -1, A: int32(m),
				N: int64(ms.Moves), X: ms.Score.Cost()})
		}
		if st.CombineDiff > 0 || st.CombineMoves > 0 {
			tr.Emit(obs.Event{Kind: obs.KindPortfolioCombine, Round: -1,
				N: int64(st.CombineDiff), M: int64(st.CombineMoves), X: st.CombinedScore.Cost()})
		}
		applied := int32(0)
		if st.CombineApplied {
			applied = 1
		}
		tr.Emit(obs.Event{Kind: obs.KindPortfolioSelect, Round: -1,
			A: int32(st.Winner), B: applied, X: st.SelectedScore.Cost()})
	}
	mx := newPortfolioMetrics(cfg.Metrics)
	mx.members.Add(int64(st.Size))
	mx.forfeits.Add(int64(st.Forfeits))
	for _, ms := range st.Members {
		if !ms.Forfeited {
			mx.memberMoves.Observe(int64(ms.Moves))
		}
	}
	mx.combineDiff.Add(int64(st.CombineDiff))
	mx.combineMoves.Add(int64(st.CombineMoves))
	if st.CombineApplied {
		mx.combineApplied.Inc()
	}
	mx.winner.Set(float64(st.Winner))
	mx.selectedCost.Set(st.SelectedScore.Cost())
}
