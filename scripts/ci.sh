#!/usr/bin/env bash
# Tier-1 gate: vet, build, full test suite, then the race detector on the
# refinement packages (DESIGN.md §8 requires `go test -race` to stay
# clean on everything that shares state across goroutines).
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./internal/paragon/ ./internal/aragon/ ./internal/partition/

echo "ci: all green"
