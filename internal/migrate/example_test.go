package migrate_test

import (
	"fmt"

	"paragon/internal/gen"
	"paragon/internal/migrate"
	"paragon/internal/stream"
)

// Example migrates a refined decomposition's vertices between rank
// stores, carrying application data through the save/restore hooks.
func Example() {
	g := gen.Mesh2D(8, 8)
	old := stream.DG(g, 4, stream.DefaultOptions())
	now := old.Clone()
	now.Move(0, (old.Of(0)+1)%4) // one vertex changes owner

	stores := migrate.BuildStores(g, old)
	plan, _ := migrate.NewPlan(old, now)
	stats, err := migrate.Execute(stores, plan, migrate.AppContext{
		Save:    func(v int32) []byte { return []byte{42} },
		Restore: func(v int32, data []byte) { _ = data },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("moved vertices:", stats.MovedVertices)
	fmt.Println("stores valid:", migrate.Verify(stores, g, now) == nil)
	// Output:
	// moved vertices: 1
	// stores valid: true
}
