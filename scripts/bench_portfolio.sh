#!/usr/bin/env bash
# Portfolio pass (DESIGN.md §17): measures seeded tournament ensembles
# over a P × workers grid and emits BENCH_portfolio.json with ns/op,
# allocs/op, Σ member CPU and the selected decomposition's cost per
# point. Each point runs in its own test process (PARAGON_PORT_* env)
# so the wall-clock numbers are not polluted by neighbouring points.
#
# Determinism is enforced, not assumed: every worker count of a P must
# produce the bit-identical selected decomposition (one distinct hash
# per P across the whole worker sweep) or the run aborts. On boxes with
# few cores the interesting evidence is member_cpu_ns staying ~constant
# while cpu_utilization = member_cpu/wall approaches min(P, cores):
# members really did overlap, and overlapping changed nothing.
#
# Usage: scripts/bench_portfolio.sh [output.json]
#   PORT_P="2" PORT_WORKERS="1 2" PORT_N=10000 PORT_K=32 \
#       scripts/bench_portfolio.sh /tmp/smoke.json    # ci.sh smoke config
#   PORT_ITERS=3 scripts/bench_portfolio.sh           # more iterations
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_portfolio.json}"
p_list="${PORT_P:-2 4 8}"
workers_list="${PORT_WORKERS:-1 2 4}"
n="${PORT_N:-50000}"
k="${PORT_K:-64}"
iters="${PORT_ITERS:-1}"

ncpu="$(getconf _NPROCESSORS_ONLN)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

go test -c -o "$tmpdir/portfolio.test" ./internal/portfolio/

# run_bench P WORKERS HASHFILE -> "ns_op allocs_op member_cpu_ns selcost"
run_bench() {
    PARAGON_PORT_P="$1" PARAGON_PORT_WORKERS="$2" PARAGON_PORT_N="$n" \
    PARAGON_PORT_K="$k" PARAGON_PORT_HASH_FILE="$3" \
    "$tmpdir/portfolio.test" -test.run '^$' -test.bench '^BenchmarkPortfolio$' \
        -test.benchtime "${iters}x" -test.benchmem \
    | awk '/^BenchmarkPortfolio/ {
        for (i = 3; i < NF; i += 2) u[$(i+1)] = $i
        printf("%s %s %s %s\n", u["ns/op"], u["allocs/op"], u["membercpu-ns/op"], u["selcost"])
        found = 1
      }
      END { if (!found) exit 1 }'
}

points="$tmpdir/points"   # lines: label ns_op allocs_op member_cpu selcost
: > "$points"

for p in $p_list; do
    hashfile="$tmpdir/hash_p$p.txt"
    : > "$hashfile"
    for w in $workers_list; do
        echo "bench_portfolio: P=$p workers=$w n=$n k=$k..." >&2
        read -r nsop allocs mcpu selcost < <(run_bench "$p" "$w" "$hashfile")
        echo "portfolio/p=$p/workers=$w $nsop $allocs $mcpu $selcost" >> "$points"
    done
    # Bit-identity across worker counts: one distinct selected hash per
    # P, or die. This is the acceptance check, not a best-effort log.
    nh="$(awk '{ print $3 }' "$hashfile" | sort -u | wc -l)"
    if [ "$nh" -ne 1 ]; then
        echo "bench_portfolio: FATAL: P=$p produced $nh distinct selected hashes across worker counts:" >&2
        cat "$hashfile" >&2
        exit 1
    fi
    awk -v p="$p" '{ sub(/^hash=/, "", $3); print "hash/p=" p, $3; exit }' "$hashfile" >> "$points"
done

awk -v out="$out" -v iters="$iters" -v ncpu="$ncpu" -v n="$n" -v k="$k" '
{ kind = $1 }
kind ~ /^portfolio\// {
    ns[kind] = $2; allocs[kind] = $3; mcpu[kind] = $4; sel[kind] = $5
    order[cnt++] = kind
    split(kind, parts, "/")
    if (parts[3] == "workers=1") w1[parts[2]] = $2
}
kind ~ /^hash\// { split(kind, parts, "/"); hash[parts[2]] = $2 }
END {
    if (cnt == 0) { print "bench_portfolio.sh: no points" > "/dev/stderr"; exit 1 }
    printf("{\n")                                                      > out
    printf("  \"benchtime\": \"%sx per point, one process per point\",\n", iters) > out
    printf("  \"graph\": \"RMAT n=%s m=6n seed=42, degree weights, k=%s, HP initial, DRP 8, 2 shuffles, uniform cost matrix, combine top-2\",\n", n, k) > out
    printf("  \"hardware\": { \"online_cpus\": %s },\n", ncpu)         > out
    printf("  \"note\": \"every worker count of a P produced the recorded selected hash — bit-identity is enforced by the harness. member_cpu_ns sums the per-member stopwatches (member wall time); cpu_utilization = member_cpu_ns / ns_op is bounded above by min(P, workers) and > 1 proves members overlapped in time. speedup_vs_workers1 is bounded above by min(workers, online_cpus).\",\n") > out
    printf("  \"points\": {\n")                                        > out
    for (i = 0; i < cnt; i++) {
        p = order[i]
        split(p, parts, "/")
        plabel = parts[2]
        s1 = (w1[plabel] > 0) ? w1[plabel] / ns[p] : 1
        util = (ns[p] > 0) ? mcpu[p] / ns[p] : 0
        printf("    \"%s\": { \"ns_op\": %s, \"allocs_op\": %s, \"member_cpu_ns\": %s, \"cpu_utilization\": %.2f, \"speedup_vs_workers1\": %.2f, \"selcost\": %s, \"selected_hash\": \"%s\" }%s\n",
               p, ns[p], allocs[p], mcpu[p], util, s1, sel[p], hash[plabel], (i < cnt - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                                 > out
}
' "$points"

echo "bench_portfolio: wrote $out"
