package paragon

import (
	"testing"

	"paragon/internal/dir"
	"paragon/internal/faultsim"
	"paragon/internal/gen"
	"paragon/internal/stream"
)

// The serving-layer integration: with a Directory wired into Config,
// every committed refinement round becomes one directory epoch, the
// final epoch serves exactly the refined assignment, and recovery of the
// directory's journal reproduces it bit-identically.
func TestRefinePublishesDirectoryEpochs(t *testing.T) {
	g := gen.RMAT(2000, 12000, 0.57, 0.19, 0.19, 5)
	g.UseDegreeWeights()
	p := stream.DG(g, 16, stream.DefaultOptions())

	d, err := dir.New(p.Assign, p.K, dir.Options{ShardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{DRP: 4, Shuffles: 3, Seed: 11, Directory: d}
	st, err := RefineUniform(g, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.DirectoryEpochs != st.Rounds {
		t.Fatalf("DirectoryEpochs = %d, want one per round (%d)", st.DirectoryEpochs, st.Rounds)
	}
	if d.Epoch() != int64(st.Rounds) {
		t.Fatalf("directory epoch = %d, want %d", d.Epoch(), st.Rounds)
	}
	// The live epoch serves the refined assignment, vertex for vertex.
	for v := int32(0); v < g.NumVertices(); v++ {
		if rank, _ := d.Lookup(v); rank != p.Assign[v] {
			t.Fatalf("vertex %d: directory says %d, refinement says %d", v, rank, p.Assign[v])
		}
	}
	// The journal reproduces the final serving state.
	r, err := dir.Recover(d.JournalBytes(), dir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != d.Epoch() || r.Current().AssignHash() != d.Current().AssignHash() {
		t.Fatal("recovered directory diverged from the live one")
	}
}

// Directory publish faults degrade the serving layer, never the
// refinement: aborted flips are counted, the final refinement result is
// identical to a directory-less run, and the directory never serves a
// state that was not some committed epoch.
func TestRefineSurvivesDirectoryPublishFaults(t *testing.T) {
	g := gen.RMAT(1500, 9000, 0.57, 0.19, 0.19, 6)
	g.UseDegreeWeights()
	base := stream.DG(g, 12, stream.DefaultOptions())

	// Reference: no directory at all.
	pRef := base.Clone()
	if _, err := RefineUniform(g, pRef, Config{DRP: 4, Shuffles: 3, Seed: 4}); err != nil {
		t.Fatal(err)
	}

	fab := faultsim.NewInjector(faultsim.Config{Seed: 8, Rate: 0.5})
	d, err := dir.New(base.Assign, base.K, dir.Options{ShardBits: 8, Fabric: fab})
	if err != nil {
		t.Fatal(err)
	}
	p := base.Clone()
	st, err := RefineUniform(g, p, Config{DRP: 4, Shuffles: 3, Seed: 4, Directory: d})
	if err != nil {
		t.Fatal(err)
	}
	for v := range p.Assign {
		if p.Assign[v] != pRef.Assign[v] {
			t.Fatalf("directory faults leaked into refinement at vertex %d", v)
		}
	}
	if st.DirectoryEpochs+st.Faults.PublishAborts != st.Rounds {
		t.Fatalf("publish accounting: %d epochs + %d aborts != %d rounds",
			st.DirectoryEpochs, st.Faults.PublishAborts, st.Rounds)
	}
	if st.Faults.PublishAborts == 0 {
		t.Fatal("rate 0.5 fired no publish aborts — directory fabric not wired in")
	}
	// Whatever the directory serves is a committed epoch: recovery of
	// its journal agrees exactly.
	r, err := dir.Recover(d.JournalBytes(), dir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != d.Epoch() || r.Current().AssignHash() != d.Current().AssignHash() {
		t.Fatal("directory diverged from its own journal under publish faults")
	}
}
