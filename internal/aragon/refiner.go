package aragon

import (
	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Refiner bundles the reusable scratch state of the pairwise FM hot path:
// the dense candidate slot array, the gain/moved slices, the gain heap,
// and the sparse external-degree buffer. Construct one per refinement
// sweep (per group server in PARAGON) and call RefinePair for every pair
// of the sweep — candidate enumeration comes from the supplied
// partition.PairIndexer instead of a full-graph scan, and all per-pair
// allocations are amortized across the k(k−1)/2 pair loop.
//
// The refiner produces bit-identical results to the historical scan-based
// implementation: candidates arrive in ascending vertex order, gains are
// accumulated over partitions in ascending order, and the heap receives
// pushes in the same sequence, so tie-breaking is unchanged.
//
// Under a uniform off-diagonal cost matrix (standard FM) the refiner
// runs in delta mode: each candidate's gain is a pure function of two
// integer accumulators (its edge weight toward each side of the pair),
// which are kept current with O(1) updates per incident committed move
// instead of an O(deg) adjacency rescan per update. Because the float
// gain is recomputed from the same integer state the rescan would
// produce, delta mode is bit-identical to rescan mode — it only removes
// the repeated adjacency walks that dominate refinement on power-law
// graphs (hub candidates are re-evaluated once per neighboring move).
type Refiner struct {
	g   *graph.Graph
	p   *partition.Partitioning
	ix  partition.PairIndexer
	cfg Config

	slot    []int32 // vertex -> candidate slot + 1; 0 = not in current pair
	cands   []int32
	gains   []float64
	moved   []bool
	h       *floatHeap
	dext    []int64  // sparse K-length external-degree scratch, all-zero between uses
	dmask   []uint64 // ⌈K/64⌉-word touched-partition bitmap, all-zero between uses
	touched []int32  // partitions touched by the last dext fill
	history []moveRec

	// Delta-mode per-candidate state (uniform cost matrices only):
	// dfrom/dto are the candidate's edge weight toward its own/the other
	// partition of the pair, gmig its constant Eq. 9 migration term.
	dfrom []int64
	dto   []int64
	gmig  []float64

	// frozen, when non-nil, is a wave-constant view of the assignment used
	// for reading neighbors that do not belong to the current pair. The
	// scheduler updates it only at wave barriers, so every pair's gain
	// computation is independent of concurrently executing pairs.
	frozen []int32

	// profile, when non-nil alongside frozen, is the scheduler's
	// wave-start neighbor-partition weight table: delta-mode seeding
	// reads each candidate's pair-local degrees from two O(log t)
	// lookups instead of an O(deg) adjacency scan. The scheduler keeps
	// it in lockstep with frozen at wave barriers.
	profile *partition.NeighborProfile

	// Cached off-diagonal-uniformity of the last cost matrix seen (keyed
	// by its first row). Cost matrices are treated as immutable.
	cRow0    *[]float64
	cUniform bool
}

type moveRec struct {
	v        int32
	from, to int32
}

// NewRefiner builds a refiner over ix. The indexer owns the partitioning:
// every move flows through ix.Move so the index invariants hold across
// pairs (and across the rollback of non-improving suffixes).
func NewRefiner(g *graph.Graph, ix partition.PairIndexer, cfg Config) *Refiner {
	p := ix.Partitioning()
	return &Refiner{
		g:     g,
		p:     p,
		ix:    ix,
		cfg:   cfg.WithDefaults(),
		slot:  make([]int32, g.NumVertices()),
		h:     newFloatHeap(64),
		dext:  make([]int64, p.K),
		dmask: make([]uint64, partition.MaskWords(p.K)),
	}
}

// SetFrozen installs (or clears, with nil) the wave-constant assignment
// view consulted for neighbors outside the pair being refined. With a nil
// frozen view the refiner reads every neighbor live — the serial ARAGON
// semantics.
func (r *Refiner) SetFrozen(frozen []int32) {
	r.frozen = frozen
}

// SetProfile installs (or clears) the wave-start neighbor-partition
// weight table used to seed delta-mode gains under the frozen view. The
// caller owns keeping it consistent with the frozen assignment.
func (r *Refiner) SetProfile(np *partition.NeighborProfile) {
	r.profile = np
}

// Move is one committed vertex relocation, recorded by
// RefinePairScheduled so the parallel scheduler can replay the kept
// prefix against the master partitioning in deterministic task order.
type Move struct {
	V, To int32
}

// RefinePairScheduled is RefinePair plus a record of the kept moves: the
// best-prefix relocations that survived rollback, appended to dst in
// execution order. The scheduler applies them to the authoritative index
// at commit time; the refiner itself has already applied them to its own
// shadow view.
func (r *Refiner) RefinePairScheduled(dst []Move, orig []int32, pi, pj int32, c [][]float64, loads []int64, maxLoad int64, allowed *partition.Bitset) ([]Move, Result) {
	res := r.RefinePair(orig, pi, pj, c, loads, maxLoad, allowed)
	for _, m := range r.history[:res.Moves] {
		dst = append(dst, Move{V: m.v, To: m.to})
	}
	return dst, res
}

// RefinePair refines the pair (pi, pj) in place — the FM hill climb with
// rollback of RefinePairAllowed, with candidates enumerated from the
// index. orig is the migration reference, loads the live per-partition
// weights (updated in place, rollback included), and allowed the optional
// movable-vertex mask of §5.
func (r *Refiner) RefinePair(orig []int32, pi, pj int32, c [][]float64, loads []int64, maxLoad int64, allowed *partition.Bitset) Result {
	if pi == pj {
		return Result{}
	}
	if len(c) > 0 && &c[0] != r.cRow0 {
		r.cRow0 = &c[0]
		r.cUniform = uniformOffDiag(c)
	}
	r.cands = r.ix.AppendPairCandidates(r.cands[:0], pi, pj, allowed)
	n := len(r.cands)
	if n == 0 {
		return Result{PairsSeen: 1}
	}
	for idx, v := range r.cands {
		r.slot[v] = int32(idx) + 1
	}
	if cap(r.gains) < n {
		r.gains = make([]float64, n)
		r.moved = make([]bool, n)
		r.dfrom = make([]int64, n)
		r.dto = make([]int64, n)
		r.gmig = make([]float64, n)
	} else {
		r.gains = r.gains[:n]
		r.moved = r.moved[:n]
		r.dfrom = r.dfrom[:n]
		r.dto = r.dto[:n]
		r.gmig = r.gmig[:n]
		for i := range r.moved {
			r.moved[i] = false
		}
	}
	r.h.reset()
	delta := r.cUniform
	recompute := func(idx int) {
		v := r.cands[idx]
		from := r.p.Assign[v]
		to := pi
		if from == pi {
			to = pj
		}
		r.gains[idx] = r.gain(v, from, to, orig, c)
	}
	if delta {
		for idx := 0; idx < n; idx++ {
			r.seedUniform(idx, pi, pj, orig, c)
			r.h.push(int32(idx), r.gains[idx])
		}
	} else {
		for idx := 0; idx < n; idx++ {
			recompute(idx)
			r.h.push(int32(idx), r.gains[idx])
		}
	}

	r.history = r.history[:0]
	var prefix, best float64
	bestLen := 0
	bad := 0

	for r.h.len() > 0 && bad < r.cfg.BadMoveLimit {
		idx, gv, ok := r.h.popValid(r.gains, r.moved)
		if !ok {
			break
		}
		v := r.cands[idx]
		from := r.p.Assign[v]
		to := pi
		if from == pi {
			to = pj
		}
		if loads[to]+int64(r.g.VertexWeight(v)) > maxLoad {
			r.moved[idx] = true // inadmissible for this pass
			continue
		}
		r.ix.Move(v, to)
		loads[from] -= int64(r.g.VertexWeight(v))
		loads[to] += int64(r.g.VertexWeight(v))
		r.moved[idx] = true
		r.history = append(r.history, moveRec{v, from, to})
		prefix += gv
		if prefix > best {
			best = prefix
			bestLen = len(r.history)
			bad = 0
		} else {
			bad++
		}
		// Re-evaluate unmoved candidate neighbors of v: their d_ext
		// toward pi/pj changed. In delta mode the two integer
		// accumulators shift by the connecting edge weight — O(1) per
		// neighbor; otherwise the gain is recomputed from an O(deg)
		// adjacency rescan. Both orders of evaluation are identical:
		// the gain value is the same function of the same state.
		adj := r.g.Neighbors(v)
		if delta {
			w := r.g.EdgeWeights(v)
			w = w[:len(adj)]
			for i, u := range adj {
				s := r.slot[u]
				if s == 0 || r.moved[s-1] {
					continue
				}
				ui := int(s - 1)
				// u is unmoved, so its orientation (fromU → toU) is
				// unchanged; v carried weight w toward `from`, now
				// toward `to`.
				fromU := r.p.Assign[u]
				if from == fromU {
					r.dfrom[ui] -= int64(w[i])
				} else {
					r.dto[ui] -= int64(w[i])
				}
				if to == fromU {
					r.dfrom[ui] += int64(w[i])
				} else {
					r.dto[ui] += int64(w[i])
				}
				toU := pi
				if fromU == pi {
					toU = pj
				}
				r.gains[ui] = r.uniformGain(ui, fromU, toU, c)
				r.h.push(s-1, r.gains[ui])
			}
		} else {
			for _, u := range adj {
				if s := r.slot[u]; s != 0 && !r.moved[s-1] {
					recompute(int(s - 1))
					r.h.push(s-1, r.gains[s-1])
				}
			}
		}
	}
	// Roll back past the best prefix (through the index, so its
	// invariants survive into the next pair).
	for i := len(r.history) - 1; i >= bestLen; i-- {
		m := r.history[i]
		r.ix.Move(m.v, m.from)
		loads[m.to] -= int64(r.g.VertexWeight(m.v))
		loads[m.from] += int64(r.g.VertexWeight(m.v))
	}
	for _, v := range r.cands {
		r.slot[v] = 0
	}
	return Result{Moves: bestLen, Gain: best, PairsSeen: 1}
}

// seedUniform initializes candidate idx's delta state — the pair-local
// external degrees from one adjacency scan, the constant Eq. 9 term —
// and its gain. The scan applies the same dual-view read rule as the
// general path: a neighbor whose frozen owner is outside the pair is
// read at its wave-constant frozen assignment.
func (r *Refiner) seedUniform(idx int, pi, pj int32, orig []int32, c [][]float64) {
	v := r.cands[idx]
	from := r.p.Assign[v]
	to := pi
	if from == pi {
		to = pj
	}
	var dfrom, dto int64
	if frozen := r.frozen; frozen != nil {
		if r.profile != nil {
			// Seeding runs before any of this pair's moves, so every
			// pair-owned neighbor still sits at its wave-start (frozen)
			// owner and the dual-view sum collapses to the wave-start
			// profile: two presorted-segment lookups, no adjacency walk.
			// Integer sums are order-free, so this is the exact value
			// the scan below computes.
			dfrom, dto = r.profile.GetPair(v, from, to)
		} else {
			// Dual-view read: a neighbor counts toward the pair only if
			// both its frozen owner and its live owner are in the pair —
			// foreign vertices are read at their wave-constant frozen
			// assignment, so concurrent pairs cannot perturb this sum.
			adj := r.g.Neighbors(v)
			w := r.g.EdgeWeights(v)
			w = w[:len(adj)]
			assign := r.p.Assign
			for i, u := range adj {
				a := frozen[u]
				if a == from || a == to {
					switch assign[u] {
					case from:
						dfrom += int64(w[i])
					case to:
						dto += int64(w[i])
					}
				}
			}
		}
	} else {
		adj := r.g.Neighbors(v)
		w := r.g.EdgeWeights(v)
		w = w[:len(adj)]
		assign := r.p.Assign
		for i, u := range adj {
			switch assign[u] {
			case from:
				dfrom += int64(w[i])
			case to:
				dto += int64(w[i])
			}
		}
	}
	r.dfrom[idx] = dfrom
	r.dto[idx] = dto
	k0 := orig[v]
	r.gmig[idx] = float64(r.g.VertexSize(v)) * (c[from][k0] - c[to][k0])
	r.gains[idx] = r.uniformGain(idx, from, to, c)
}

// uniformGain is Eq. 5 specialized to an off-diagonal-constant cost
// matrix (standard FM): every Eq. 8 term carries a factor
// c[from][k]−c[to][k], which is exactly zero for k ∉ {from, to}, so
// g_topo is identically +0.0 and the gain is a pure function of the
// maintained pair-local external degrees. The expression tree matches
// the historical rescan implementation term for term, so delta
// re-evaluation is bit-identical to a full recompute.
func (r *Refiner) uniformGain(idx int, from, to int32, c [][]float64) float64 {
	gStd := r.cfg.Alpha * float64(r.dto[idx]-r.dfrom[idx]) * c[from][to]
	gTopo := 0.0 // Σ dext[k]·0 — kept as an explicit +0.0 term so the
	// final sum associates exactly as the general path's (gStd+gTopo)+gMig
	gMig := r.gmig[idx]
	return gStd + gTopo + gMig
}

// gain computes Eq. 5 for moving v from `from` to `to` using the sparse
// external-degree scratch: O(deg(v) + K/64 + t) per evaluation instead of
// the dense O(deg(v) + K). The partitions are visited in ascending order
// (the touched bitmap is drained low bit first), matching the dense
// loop's summation order bit for bit. Only the general (non-uniform)
// path comes through here; uniform matrices run in delta mode.
func (r *Refiner) gain(v, from, to int32, orig []int32, c [][]float64) float64 {
	if r.frozen != nil {
		r.touched = partition.ExternalDegreesSparseFrozen(r.g, r.p.Assign, r.frozen, v, from, to, r.dext, r.dmask, r.touched[:0])
	} else {
		r.touched = partition.ExternalDegreesSparse(r.g, r.p, v, r.dext, r.dmask, r.touched[:0])
	}
	// Eq. 6: impact on the (Pi, Pj) cut.
	gStd := r.cfg.Alpha * float64(r.dext[to]-r.dext[from]) * c[from][to]
	// Eq. 8: impact on v's communication with every other partition.
	var gTopo float64
	for _, k := range r.touched {
		if k == from || k == to {
			continue
		}
		gTopo += float64(r.dext[k]) * (c[from][k] - c[to][k])
	}
	gTopo *= r.cfg.Alpha
	// Eq. 9: impact on migration cost relative to the original owner.
	k0 := orig[v]
	gMig := float64(r.g.VertexSize(v)) * (c[from][k0] - c[to][k0])
	for _, k := range r.touched {
		r.dext[k] = 0 // sparse reset: only the touched entries
	}
	return gStd + gTopo + gMig
}

// uniformOffDiag reports whether every off-diagonal entry of c is equal —
// the uniform-cost topologies of standard FM refinement.
func uniformOffDiag(c [][]float64) bool {
	if len(c) < 2 {
		return true
	}
	u := c[0][1]
	for i := range c {
		for j := range c[i] {
			if i != j && c[i][j] != u {
				return false
			}
		}
	}
	return true
}
