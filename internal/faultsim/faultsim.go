// Package faultsim is the deterministic fault injector behind PARAGON's
// degraded-mode recovery. Distributed refiners in the wild must survive
// worker loss, dropped reduces, and half-applied migrations; this package
// makes those failures *seeded and replayable* so the recovery semantics
// of internal/paragon, internal/exchange, and internal/migrate can be
// swept and pinned by tests instead of hoped for.
//
// Three properties shape the design:
//
//   - Determinism under concurrency. Fault decisions are consumed from
//     parallel group servers, so a shared rand.Rand stream would make the
//     schedule depend on goroutine interleaving. Instead every decision is
//     a pure hash of (seed, kind, coordinates): any interleaving of
//     queries sees the same schedule, and identical (seed, rate) replays
//     bit-identically.
//
//   - Virtual time. Recovery needs backoff and timeouts, but the
//     determinism contract (DESIGN.md §10) bans wall-clock reads in
//     kernels. Clock is an abstract tick counter advanced explicitly by
//     the harness; paragonlint's wallclock checker stays green.
//
//   - Replayable schedules. An Injector records every fault that fired
//     (Realized) as an explicit event list that can be fed back as a
//     scripted schedule, reproducing the exact same run.
package faultsim

import (
	"sort"
	"sync"

	"paragon/internal/obs"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindCrash kills a group server mid-round: its refinement outcome is
	// lost and the round commits with the surviving groups.
	KindCrash Kind = iota
	// KindStraggler delays a group server by Delay virtual ticks; a delay
	// past the round timeout drops the group's outcome like a crash.
	KindStraggler
	// KindDrop loses one exchange message (a region reduce, or a
	// directory push/pull batch); the sender retries with capped backoff.
	KindDrop
	// KindAbort kills a migration mid-plan; every rank rolls back to its
	// pre-plan state.
	KindAbort
)

// String names the fault class for logs and test failures.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindStraggler:
		return "straggler"
	case KindDrop:
		return "drop"
	case KindAbort:
		return "abort"
	}
	return "unknown"
}

// Event is one concrete fault: either an entry of a scripted schedule or
// a record of a stochastic decision that fired. The coordinate meaning is
// per kind:
//
//	KindCrash:     Round = refinement round, Index = group
//	KindStraggler: Round = refinement round, Index = group, Delay = ticks
//	KindDrop:      Round = round (or exchange epoch), Index = region/op,
//	               Attempt = which delivery attempt is lost
//	KindAbort:     Round = migration epoch, Index = plan move index
type Event struct {
	Kind    Kind
	Round   int
	Index   int
	Attempt int
	Delay   int64
}

// Config tunes an Injector.
type Config struct {
	// Seed drives the stochastic schedule; two injectors with the same
	// (Seed, Rate, MaxDelay) produce identical schedules.
	Seed int64
	// Rate is the per-fault-point firing probability in [0, 1]. Zero
	// means the stochastic layer never fires (scripted events still do).
	Rate float64
	// MaxDelay bounds straggler delays in virtual ticks (default 32, so
	// with the default Policy.RoundTimeout of 16 roughly half the
	// stragglers that fire are slow enough to be dropped).
	MaxDelay int64
	// Script is an explicit fault schedule applied on top of the
	// stochastic layer — typically a Realized() log being replayed.
	Script []Event
}

// Fabric is the fault-point surface the pipeline consults. A nil Fabric
// everywhere means a fault-free run; the implementations in this package
// answer deterministically from a seed or a script. All methods must be
// safe for concurrent use and independent of call order.
type Fabric interface {
	// NextEpoch returns a fresh epoch for a standalone operation (an
	// exchange Propagate, a migration Execute) so repeated operations
	// under one fabric see distinct schedules.
	NextEpoch() int
	// CrashGroup reports whether group's server crashes in round.
	CrashGroup(round, group int) bool
	// GroupDelay returns the straggler delay, in virtual ticks, injected
	// into group's server in round (0 = on time).
	GroupDelay(round, group int) int64
	// Drop reports whether delivery attempt of message op in round (or
	// epoch) is lost.
	Drop(round, op, attempt int) bool
	// AbortMigration reports whether the migration of epoch aborts at
	// plan move index move.
	AbortMigration(epoch, move int) bool
}

// Counters is a snapshot of the faults an Injector has fired.
type Counters struct {
	Crashes    int64
	Stragglers int64
	Drops      int64
	Aborts     int64
}

// Total is the number of fault events fired across all classes.
func (c Counters) Total() int64 { return c.Crashes + c.Stragglers + c.Drops + c.Aborts }

// Injector is the concrete Fabric: stochastic decisions hashed from a
// seed, plus an optional scripted schedule, with a realized-event log.
type Injector struct {
	seed     int64
	rate     float64
	maxDelay int64

	script map[scriptKey]Event

	// fired holds one obs counter per fault Kind (nil without Observe);
	// obs counters are atomic and nil-safe, so record increments them
	// without extending the critical section.
	fired [4]*obs.Counter

	mu       sync.Mutex
	epoch    int
	counters Counters
	realized []Event
}

type scriptKey struct {
	kind         Kind
	round, index int
	attempt      int
}

// NewInjector builds an injector from cfg, applying defaults
// (MaxDelay 32).
func NewInjector(cfg Config) *Injector {
	in := &Injector{seed: cfg.Seed, rate: cfg.Rate, maxDelay: cfg.MaxDelay}
	if in.maxDelay <= 0 {
		in.maxDelay = 32
	}
	if len(cfg.Script) > 0 {
		in.script = make(map[scriptKey]Event, len(cfg.Script))
		for _, ev := range cfg.Script {
			in.script[keyOf(ev)] = ev
		}
	}
	return in
}

func keyOf(ev Event) scriptKey {
	k := scriptKey{kind: ev.Kind, round: ev.Round, index: ev.Index}
	if ev.Kind == KindDrop {
		k.attempt = ev.Attempt
	}
	return k
}

// splitmix64's finalizer: a full-avalanche 64-bit mixer, so neighboring
// coordinates decorrelate completely.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds the seed, fault kind, and call-site coordinates into one
// uniform 64-bit value. Purely functional: no state, no ordering.
func (in *Injector) hash(kind Kind, a, b, c int) uint64 {
	h := mix64(uint64(in.seed) ^ 0xa5a5a5a5a5a5a5a5)
	h = mix64(h ^ uint64(kind))
	h = mix64(h ^ uint64(int64(a)))
	h = mix64(h ^ uint64(int64(b)))
	return mix64(h ^ uint64(int64(c)))
}

// fires converts a hash to a Bernoulli(rate) draw. The top 53 bits give
// an exact dyadic uniform in [0,1), so rate 0 never fires and rate 1
// always fires.
func (in *Injector) fires(h uint64) bool {
	if in.rate <= 0 {
		return false
	}
	return float64(h>>11)/(1<<53) < in.rate
}

func (in *Injector) scripted(kind Kind, round, index, attempt int) (Event, bool) {
	if in.script == nil {
		return Event{}, false
	}
	k := scriptKey{kind: kind, round: round, index: index}
	if kind == KindDrop {
		k.attempt = attempt
	}
	ev, ok := in.script[k]
	return ev, ok
}

// Observe registers this injector's fired-fault counters
// (fault_injected_*_total) with r and increments them on every fault
// that fires from then on. Counter totals are order-free, so concurrent
// fault-point queries keep the registry deterministic.
func (in *Injector) Observe(r *obs.Registry) {
	if r == nil {
		return
	}
	in.mu.Lock()
	in.fired = [4]*obs.Counter{
		KindCrash:     r.Counter("fault_injected_crashes_total", "group-server crash faults fired"),
		KindStraggler: r.Counter("fault_injected_stragglers_total", "straggler-delay faults fired"),
		KindDrop:      r.Counter("fault_injected_drops_total", "message-drop faults fired"),
		KindAbort:     r.Counter("fault_injected_aborts_total", "migration-abort faults fired"),
	}
	in.mu.Unlock()
}

func (in *Injector) record(ev Event, count *int64) {
	in.mu.Lock()
	*count++
	in.realized = append(in.realized, ev)
	fired := in.fired[ev.Kind]
	in.mu.Unlock()
	fired.Inc()
}

// NextEpoch implements Fabric.
func (in *Injector) NextEpoch() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	e := in.epoch
	in.epoch++
	return e
}

// CrashGroup implements Fabric.
func (in *Injector) CrashGroup(round, group int) bool {
	if _, ok := in.scripted(KindCrash, round, group, 0); !ok {
		if !in.fires(in.hash(KindCrash, round, group, 0)) {
			return false
		}
	}
	in.record(Event{Kind: KindCrash, Round: round, Index: group}, &in.counters.Crashes)
	return true
}

// GroupDelay implements Fabric.
func (in *Injector) GroupDelay(round, group int) int64 {
	var delay int64
	if ev, ok := in.scripted(KindStraggler, round, group, 0); ok {
		delay = ev.Delay
	} else {
		h := in.hash(KindStraggler, round, group, 0)
		if !in.fires(h) {
			return 0
		}
		// Reuse the untested low bits for the magnitude so the firing
		// draw and the delay draw stay independent-ish but replayable.
		delay = 1 + int64(mix64(h)%uint64(in.maxDelay))
	}
	if delay <= 0 {
		return 0
	}
	in.record(Event{Kind: KindStraggler, Round: round, Index: group, Delay: delay}, &in.counters.Stragglers)
	return delay
}

// Drop implements Fabric.
func (in *Injector) Drop(round, op, attempt int) bool {
	if _, ok := in.scripted(KindDrop, round, op, attempt); !ok {
		if !in.fires(in.hash(KindDrop, round, op, attempt)) {
			return false
		}
	}
	in.record(Event{Kind: KindDrop, Round: round, Index: op, Attempt: attempt}, &in.counters.Drops)
	return true
}

// AbortMigration implements Fabric.
func (in *Injector) AbortMigration(epoch, move int) bool {
	if _, ok := in.scripted(KindAbort, epoch, move, 0); !ok {
		if !in.fires(in.hash(KindAbort, epoch, move, 0)) {
			return false
		}
	}
	in.record(Event{Kind: KindAbort, Round: epoch, Index: move}, &in.counters.Aborts)
	return true
}

// Counters returns a snapshot of the fired-fault counts.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counters
}

// Realized returns the schedule that actually fired, sorted by
// (Kind, Round, Index, Attempt) so concurrent query order cannot leak
// into it. Feeding it back as Config.Script (with Rate 0) replays the
// run exactly.
func (in *Injector) Realized() []Event {
	in.mu.Lock()
	out := append([]Event(nil), in.realized...)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Attempt < b.Attempt
	})
	return out
}

// Clock is the virtual time source: a bare tick counter the harness
// advances explicitly. It exists so backoff and timeouts have a time
// axis without any wall-clock read.
type Clock struct {
	mu  sync.Mutex
	now int64
}

// NewClock returns a clock at tick zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual tick.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward d ticks (negative d is ignored) and
// returns the new time.
func (c *Clock) Advance(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	return c.now
}

// Policy bounds recovery: how often a dropped message is retried, how
// long the virtual backoff grows, and when a slow group server is
// declared dead.
type Policy struct {
	// MaxRetries is the number of redeliveries attempted after the first
	// loss before the operation is abandoned.
	MaxRetries int
	// BackoffBase is the first retry's backoff in virtual ticks; attempt
	// i waits BackoffBase << i.
	BackoffBase int64
	// BackoffCap caps the exponential growth.
	BackoffCap int64
	// RoundTimeout is the per-round budget in virtual ticks: a group
	// server slower than this (crashed servers never answer) has its
	// outcome discarded and the round commits without it.
	RoundTimeout int64
}

// DefaultPolicy returns the recovery defaults: 4 retries, backoff
// 1,2,4,8 capped at 16 ticks, 16-tick round timeout.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 4, BackoffBase: 1, BackoffCap: 16, RoundTimeout: 16}
}

// withDefaults fills zero fields so a zero Policy behaves like
// DefaultPolicy.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxRetries == 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffCap == 0 {
		p.BackoffCap = d.BackoffCap
	}
	if p.RoundTimeout == 0 {
		p.RoundTimeout = d.RoundTimeout
	}
	return p
}

// Backoff returns the capped exponential backoff, in virtual ticks,
// before retry attempt (0-based: the wait after the attempt-th loss).
func (p Policy) Backoff(attempt int) int64 {
	p = p.withDefaults()
	b := p.BackoffBase
	for i := 0; i < attempt; i++ {
		b <<= 1
		if b >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if b > p.BackoffCap {
		b = p.BackoffCap
	}
	return b
}

// Normalized returns the policy with defaults applied — what consumers
// should call once up front so a zero Policy value means DefaultPolicy.
func (p Policy) Normalized() Policy { return p.withDefaults() }
