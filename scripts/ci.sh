#!/usr/bin/env bash
# Tier-1 gate: vet, the determinism linter, build, full test suite, then
# the race detector over the whole tree (DESIGN.md §8 requires
# `go test -race` to stay clean on everything that shares state across
# goroutines, and the determinism contract of DESIGN.md is enforced
# mechanically by paragonlint — any diagnostic fails the gate). Tests
# run with -shuffle=on so inter-test ordering dependencies can't hide;
# the race pass covers the fault-matrix sweep, exercising degraded-mode
# recovery under the detector.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./cmd/paragonlint && ./paragonlint ./...
go build ./...
go test -shuffle=on ./...
go test -race -shuffle=on ./...

# Scheduler worker extremes: the paragon package under the race detector
# at GOMAXPROCS 1 and 4, so the pair-level waves run both fully serialized
# and genuinely interleaved (TestSchedulerDeterminism's contract holds at
# every worker count; -cpu also changes the Config.Workers default).
go test -race -cpu=1,4 ./internal/paragon/

# Bench bitrot smoke: compile and run every benchmark once so benchmark
# code can't silently rot between perf-measurement sessions.
go test -bench=. -benchtime=1x -run='^$' ./... > /dev/null

echo "ci: all green"
