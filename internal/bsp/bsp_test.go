package bsp

import (
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func testEngine(t *testing.T, k int32) (*Engine, *partition.Partitioning) {
	t.Helper()
	g := gen.Mesh2D(12, 12)
	p := stream.DG(g, k, stream.DefaultOptions())
	e, err := NewEngine(g, p, topology.PittCluster(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e, p
}

func TestNewEngineErrors(t *testing.T) {
	g := gen.Mesh2D(6, 6)
	bad := partition.New(4, 7)
	if _, err := NewEngine(g, bad, topology.PittCluster(1), Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	p := stream.HP(g, 30)
	if _, err := NewEngine(g, p, topology.UMACluster(1), Options{}); err == nil {
		t.Fatal("expected too-many-partitions error")
	}
}

func TestRunNeedsProgram(t *testing.T) {
	e, _ := testEngine(t, 4)
	if _, err := e.Run(Program{}); err == nil {
		t.Fatal("expected program error")
	}
}

func TestRunTerminatesAndCountsSteps(t *testing.T) {
	e, _ := testEngine(t, 4)
	// A program where only vertex 0 is active once and sends nothing.
	prog := Program{
		Init: func(v int32) (int64, bool) { return int64(v), v == 0 },
		Compute: func(v int32, val int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			return val + 100, false
		},
	}
	res, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Fatalf("supersteps = %d, want 1", res.Supersteps)
	}
	if res.Values[0] != 100 || res.Values[1] != 1 {
		t.Fatalf("values wrong: %d %d", res.Values[0], res.Values[1])
	}
	if res.Messages != 0 || res.Volume.Total() != 0 {
		t.Fatalf("phantom traffic: %+v", res)
	}
	if len(res.StepTimes) != 1 || res.JET != res.StepTimes[0] {
		t.Fatalf("JET bookkeeping wrong: %+v", res)
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	e, _ := testEngine(t, 2)
	prog := Program{
		Init:    func(v int32) (int64, bool) { return 0, v == 0 },
		Compute: func(v int32, val int64, msgs []int64, send func(int32, int64)) (int64, bool) { return val, true },
	}
	eSmall := *e
	eSmall.opts.MaxSupersteps = 10
	if _, err := eSmall.Run(prog); err == nil {
		t.Fatal("expected superstep-limit error")
	}
}

func TestMessageDeliveryAndCombiner(t *testing.T) {
	g := gen.Mesh2D(4, 4) // vertex 0 neighbors: 1, 4, 5
	p := partition.New(2, g.NumVertices())
	for v := int32(8); v < 16; v++ {
		p.Assign[v] = 1
	}
	e, err := NewEngine(g, p, topology.PittCluster(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: every vertex sends its id to all neighbors; min-combiner
	// means each vertex ends with its smallest neighbor id.
	prog := Program{
		Init: func(v int32) (int64, bool) { return int64(v), true },
		Compute: func(v int32, val int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if msgs != nil {
				return msgs[0], false
			}
			for _, u := range g.Neighbors(v) {
				send(u, int64(v))
			}
			return val, false
		},
		Combine: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
	}
	res, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		want := int64(1 << 30)
		for _, u := range g.Neighbors(v) {
			if int64(u) < want {
				want = int64(u)
			}
		}
		if res.Values[v] != want {
			t.Fatalf("vertex %d got %d, want min neighbor %d", v, res.Values[v], want)
		}
	}
	if res.Supersteps != 2 {
		t.Fatalf("supersteps = %d, want 2", res.Supersteps)
	}
	if res.Messages == 0 {
		t.Fatal("cross-rank messages expected (partitions split the mesh)")
	}
}

func TestUncombinedDelivery(t *testing.T) {
	// Without a combiner every message arrives individually: a counting
	// program sees exactly degree-many messages.
	g := gen.Mesh2D(5, 5)
	p := stream.HP(g, 3)
	e, err := NewEngine(g, p, topology.PittCluster(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog := Program{
		Init: func(v int32) (int64, bool) { return 0, true },
		Compute: func(v int32, val int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if msgs != nil {
				return int64(len(msgs)), false
			}
			for _, u := range g.Neighbors(v) {
				send(u, 1)
			}
			return 0, false
		},
	}
	res, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		if res.Values[v] != int64(g.Degree(v)) {
			t.Fatalf("vertex %d counted %d messages, want its degree %d", v, res.Values[v], g.Degree(v))
		}
	}
}

func TestVolumeBreakdownClasses(t *testing.T) {
	// 2 nodes × 2 sockets: partitions 0,1 on node0/socket0+1, 2,3 on
	// node1. A program sending between specific partitions must book
	// volume in the right class.
	g := gen.Mesh2D(4, 4)
	p := partition.New(4, g.NumVertices())
	// vertices 0..3 -> part0, 4..7 -> part1, 8..11 -> part2, 12..15 -> part3
	for v := int32(0); v < 16; v++ {
		p.Assign[v] = v / 4
	}
	nodes := []topology.NodeSpec{
		{Sockets: 2, CoresPerSocket: 1, Arch: topology.NUMA, L2GroupSize: 1},
		{Sockets: 2, CoresPerSocket: 1, Arch: topology.NUMA, L2GroupSize: 1},
	}
	cl, err := topology.NewCluster("tiny", nodes, topology.FlatSwitch{}, topology.DefaultLatency())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, p, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One round: vertex 0 (part0/rank0) sends one message to vertex 4
	// (rank1, inter-socket same node) and one to vertex 8 (rank2, inter
	// node).
	prog := Program{
		Init: func(v int32) (int64, bool) { return 0, v == 0 },
		Compute: func(v int32, val int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if msgs == nil && v == 0 {
				send(4, 1)
				send(8, 1)
			}
			return val, false
		},
	}
	res, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Volume.InterSocket != bytesPerMessage {
		t.Fatalf("inter-socket volume = %d, want %d", res.Volume.InterSocket, bytesPerMessage)
	}
	if res.Volume.InterNode != bytesPerMessage {
		t.Fatalf("inter-node volume = %d, want %d", res.Volume.InterNode, bytesPerMessage)
	}
	if res.Volume.IntraSocket != 0 {
		t.Fatalf("intra-socket volume = %d, want 0", res.Volume.IntraSocket)
	}
}

func TestMessageGroupingReducesJET(t *testing.T) {
	g := gen.Mesh2D(16, 16)
	p := stream.HP(g, 8)
	run := func(group int) float64 {
		e, err := NewEngine(g, p, topology.PittCluster(1), Options{MsgGroupSize: group})
		if err != nil {
			t.Fatal(err)
		}
		prog := floodProgram(g)
		res, err := e.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.JET
	}
	if j16, j1 := run(16), run(1); j16 >= j1 {
		t.Fatalf("grouping 16 (JET %.2f) not cheaper than ungrouped (JET %.2f)", j16, j1)
	}
}

func TestContentionRaisesIntraNodeJET(t *testing.T) {
	// All 8 partitions on one node => all traffic is intra-node; raising
	// MemoryContention must raise JET.
	g := gen.Mesh2D(16, 16)
	p := stream.HP(g, 8)
	run := func(mc float64) float64 {
		e, err := NewEngine(g, p, topology.PittCluster(1), Options{MemoryContention: mc})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(floodProgram(g))
		if err != nil {
			t.Fatal(err)
		}
		return res.JET
	}
	low, high := run(0.01), run(0.9)
	if high <= low {
		t.Fatalf("contention had no effect: %.2f vs %.2f", low, high)
	}
}

// floodProgram: every vertex broadcasts once; generates dense traffic.
func floodProgram(g interface {
	Neighbors(int32) []int32
	NumVertices() int32
}) Program {
	return Program{
		Init: func(v int32) (int64, bool) { return 0, true },
		Compute: func(v int32, val int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if msgs == nil {
				for _, u := range g.Neighbors(v) {
					send(u, 1)
				}
			}
			return val, false
		},
		Combine: func(a, b int64) int64 { return a + b },
	}
}

func TestBetterPlacementLowersJET(t *testing.T) {
	// The Table 4 mechanism in miniature: a topology-aligned placement
	// (contiguous blocks on cores) must beat hashing for a mesh.
	g := gen.Mesh2D(24, 24)
	k := int32(8)
	hp := stream.HP(g, k)
	dg := stream.DG(g, k, stream.DefaultOptions())
	cl := topology.PittCluster(1)
	jet := func(p *partition.Partitioning) float64 {
		e, err := NewEngine(g, p, cl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(floodProgram(g))
		if err != nil {
			t.Fatal(err)
		}
		return res.JET
	}
	if jDG, jHP := jet(dg), jet(hp); jDG >= jHP {
		t.Fatalf("DG placement JET %.2f not below HP %.2f", jDG, jHP)
	}
}

func TestDeterministicRuns(t *testing.T) {
	e, _ := testEngine(t, 6)
	g := gen.Mesh2D(12, 12)
	r1, err := e.Run(floodProgram(g))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(floodProgram(g))
	if err != nil {
		t.Fatal(err)
	}
	if r1.JET != r2.JET || r1.Messages != r2.Messages || r1.Supersteps != r2.Supersteps {
		t.Fatalf("nondeterministic runs: %+v vs %+v", r1, r2)
	}
}

func TestPanicRecovery(t *testing.T) {
	e, _ := testEngine(t, 4)
	prog := Program{
		Init: func(v int32) (int64, bool) { return 0, true },
		Compute: func(v int32, val int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if v == 17 {
				panic("vertex program bug")
			}
			return val, false
		},
	}
	if _, err := e.Run(prog); err == nil {
		t.Fatal("expected panic to surface as an error")
	}
}

func TestStepSkewTracked(t *testing.T) {
	e, _ := testEngine(t, 4)
	g := gen.Mesh2D(12, 12)
	res, err := e.Run(floodProgram(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepSkew) != res.Supersteps {
		t.Fatalf("skew recorded for %d of %d steps", len(res.StepSkew), res.Supersteps)
	}
	for i, s := range res.StepSkew {
		if s < 1-1e-9 {
			t.Fatalf("step %d skew %v below 1", i, s)
		}
	}
	if res.AvgSkew() < 1 {
		t.Fatalf("avg skew %v below 1", res.AvgSkew())
	}
	var empty Result
	if empty.AvgSkew() != 1 {
		t.Fatal("empty result skew should be 1")
	}
}
