// Package fixture accumulates floats in nondeterministic order; every
// accumulation below must be reported.
package fixture

// Map iteration order varies per run, and float addition is not
// associative, so the sum drifts in ULPs.
func mapOrder(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Goroutine interleaving orders these additions arbitrarily.
func goOrder(parts [][]float64, out *float64) {
	for _, p := range parts {
		go func(p []float64) {
			for _, x := range p {
				*out = *out + x
			}
		}(p)
	}
}
