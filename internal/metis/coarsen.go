// Package metis implements a from-scratch multilevel graph partitioner in
// the style of METIS (the paper's "gold standard" baseline): heavy-edge
// matching coarsening, greedy graph-growing initial bisection, boundary
// Fiduccia–Mattheyses refinement during uncoarsening, and recursive
// bisection for k-way decompositions. It honors vertex weights (load),
// vertex sizes, and edge weights, and enforces a configurable imbalance
// tolerance.
package metis

import (
	"math/rand"

	"paragon/internal/graph"
)

// level is one rung of the multilevel hierarchy: the coarse graph plus
// the mapping from the finer graph's vertices onto it.
type level struct {
	g    *graph.Graph
	map_ []int32 // finer vertex -> coarse vertex; nil for the original graph
}

// coarsen builds the hierarchy from g down to a graph with at most
// targetSize vertices (or until matching stops making progress). The
// returned slice starts with the original graph.
func coarsen(g *graph.Graph, targetSize int32, rng *rand.Rand) []level {
	levels := []level{{g: g}}
	cur := g
	for cur.NumVertices() > targetSize {
		match := heavyEdgeMatching(cur, rng)
		coarse, cmap := contract(cur, match)
		// Stop if matching no longer shrinks the graph enough (dense or
		// star-like remainders).
		if float64(coarse.NumVertices()) > 0.95*float64(cur.NumVertices()) {
			break
		}
		levels = append(levels, level{g: coarse, map_: cmap})
		cur = coarse
	}
	return levels
}

// heavyEdgeMatching visits vertices in random order and matches each
// unmatched vertex with its unmatched neighbor of maximal edge weight
// (ties to the lower-degree neighbor to keep coarse degrees small).
// Unmatched leftovers are matched with themselves.
func heavyEdgeMatching(g *graph.Graph, rng *rand.Rand) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(int(n))
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		best := int32(-1)
		bestW := int32(-1)
		for i, u := range adj {
			if match[u] >= 0 {
				continue
			}
			if w[i] > bestW || (w[i] == bestW && best >= 0 && g.Degree(u) < g.Degree(best)) {
				best, bestW = u, w[i]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	return match
}

// contract merges matched pairs into coarse vertices, summing vertex
// weights and sizes and merging parallel edges by weight. It returns the
// coarse graph and the fine→coarse map.
func contract(g *graph.Graph, match []int32) (*graph.Graph, []int32) {
	n := g.NumVertices()
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	var coarseN int32
	for v := int32(0); v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		u := match[v]
		cmap[v] = coarseN
		if u != v {
			cmap[u] = coarseN
		}
		coarseN++
	}
	bld := graph.NewBuilder(coarseN)
	vwgt := make([]int64, coarseN)
	vsize := make([]int64, coarseN)
	for v := int32(0); v < n; v++ {
		cv := cmap[v]
		vwgt[cv] += int64(g.VertexWeight(v))
		vsize[cv] += int64(g.VertexSize(v))
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for i, u := range adj {
			cu := cmap[u]
			if cv < cu {
				// Builder merges duplicates by summing, which is exactly
				// the weight semantics of contraction. Iterating only the
				// canonical direction (cv < cu) prevents double counting;
				// v<u alone would miss cross pairs where cv>cu.
				bld.AddWeightedEdge(cv, cu, w[i])
			}
		}
	}
	for cv := int32(0); cv < coarseN; cv++ {
		bld.SetVertexWeight(cv, clampI32(vwgt[cv]))
		bld.SetVertexSize(cv, clampI32(vsize[cv]))
	}
	return bld.Build(), cmap
}

func clampI32(x int64) int32 {
	const max = int64(^uint32(0) >> 1)
	if x > max {
		return int32(max)
	}
	if x < 1 {
		return 1
	}
	return int32(x)
}
