// Package aragonlb implements ARAGONLB, the authors' prior
// architecture-aware graph repartitioner (BigGraphs'14) that PARAGON
// supersedes. ARAGONLB couples a load-balancing phase with the serial
// ARAGON refinement, executed the way the paper describes its limits:
//
//   - all servers send their partitions to a single refinement server,
//     so the entire graph crosses the network once and must fit in one
//     server's memory (tracked in Stats.ShippedVolume);
//   - the refinement itself runs sequentially over all n(n−1)/2 pairs;
//   - shared-resource contention is NOT considered: the cost matrix is
//     used as-is, and callers should not apply the Eq. 12 penalty when
//     reproducing ARAGONLB's behavior.
//
// The package exists as a baseline: PARAGON reaches the same or better
// decompositions with a fraction of the single-server footprint.
package aragonlb

import (
	"fmt"
	"time"

	"paragon/internal/aragon"
	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Config tunes ARAGONLB.
type Config struct {
	// Alpha is the Eq. 2 communication/migration weight (default 10).
	Alpha float64
	// MaxImbalance is the balance tolerance (default 0.02).
	MaxImbalance float64
	// BadMoveLimit bounds non-improving FM moves per pair (default 64).
	BadMoveLimit int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 10
	}
	if c.MaxImbalance == 0 {
		c.MaxImbalance = 0.02
	}
	if c.BadMoveLimit == 0 {
		c.BadMoveLimit = 64
	}
	return c
}

// Stats reports one repartitioning.
type Stats struct {
	RebalanceMoves int     // vertices moved by the balancing phase
	RefineMoves    int     // vertices moved by ARAGON
	Gain           float64 // refinement gain
	ShippedVolume  int64   // bytes shipped to the refinement server (whole graph, once)
	Elapsed        time.Duration
}

// Repartition rebalances and then refines the decomposition p of g in
// place against the relative cost matrix c.
func Repartition(g *graph.Graph, p *partition.Partitioning, c [][]float64, cfg Config) (Stats, error) {
	//lint:ignore wallclock whole-run stopwatch for Stats.Elapsed; never read by repartitioning decisions
	start := time.Now()
	if err := p.Validate(g); err != nil {
		return Stats{}, fmt.Errorf("aragonlb: %w", err)
	}
	if int32(len(c)) < p.K {
		return Stats{}, fmt.Errorf("aragonlb: cost matrix %d×· smaller than k=%d", len(c), p.K)
	}
	cfg = cfg.withDefaults()
	var st Stats

	// The single-server model: every partition's vertices and edge lists
	// travel to the refinement server once (12 bytes per half-edge, 12
	// per vertex record), minus the server's own partition. We charge
	// the worst case (server holds nothing) for a conservative account.
	st.ShippedVolume = int64(g.NumVertices())*12 + g.NumHalfEdges()*12

	// Phase 1: architecture-aware load balancing. Move vertices out of
	// overloaded partitions into the underloaded partition that
	// minimizes the communication-cost increase of the move.
	st.RebalanceMoves = rebalance(g, p, c, cfg)

	// Phase 2: serial ARAGON over all pairs.
	res, err := aragon.Refine(g, p, c, aragon.Config{
		Alpha:        cfg.Alpha,
		MaxImbalance: cfg.MaxImbalance,
		BadMoveLimit: cfg.BadMoveLimit,
	})
	if err != nil {
		return st, fmt.Errorf("aragonlb: %w", err)
	}
	st.RefineMoves = res.Moves
	st.Gain = res.Gain
	//lint:ignore wallclock Stats.Elapsed bookkeeping at the driver boundary
	st.Elapsed = time.Since(start)
	return st, nil
}

// rebalance drains overloaded partitions. For every vertex leaving an
// overloaded partition it chooses the underloaded destination d
// maximizing the architecture-aware affinity Σ_k d_ext(v,Pk)·(−c(d,Pk)),
// i.e. placing v as close (in cost) to its neighbors as balance allows.
func rebalance(g *graph.Graph, p *partition.Partitioning, c [][]float64, cfg Config) int {
	k := p.K
	bound := partition.BalanceBound(g, k, cfg.MaxImbalance)
	load := p.Weights(g)
	moves := 0
	for iter := 0; iter < int(k)*2; iter++ {
		src := int32(-1)
		for i := int32(0); i < k; i++ {
			if load[i] > bound && (src < 0 || load[i] > load[src]) {
				src = i
			}
		}
		if src < 0 {
			break
		}
		progressed := false
		for v := int32(0); v < g.NumVertices() && load[src] > bound; v++ {
			if p.Assign[v] != src {
				continue
			}
			dst := bestDestination(g, p, c, v, load, bound)
			if dst < 0 {
				continue
			}
			w := int64(g.VertexWeight(v))
			p.Assign[v] = dst
			load[src] -= w
			load[dst] += w
			moves++
			progressed = true
		}
		if !progressed {
			break // nothing admissible; leave residual imbalance
		}
	}
	return moves
}

// bestDestination returns the admissible destination with minimal
// communication cost for v's neighborhood, or -1 if none fits.
func bestDestination(g *graph.Graph, p *partition.Partitioning, c [][]float64, v int32, load []int64, bound int64) int32 {
	dext := partition.ExternalDegrees(g, p, v)
	w := int64(g.VertexWeight(v))
	best := int32(-1)
	bestCost := 0.0
	for d := int32(0); d < p.K; d++ {
		if d == p.Assign[v] || load[d]+w > bound {
			continue
		}
		var cost float64
		for kk := int32(0); kk < p.K; kk++ {
			if dext[kk] != 0 && kk != d {
				cost += float64(dext[kk]) * c[d][kk]
			}
		}
		if best < 0 || cost < bestCost {
			best, bestCost = d, cost
		}
	}
	return best
}
