// Package gas is a PowerGraph-style gather–apply–scatter execution
// simulator over vertex-cut assignments — the §8 counterpart to the bsp
// engine. Edges live on the partition that owns them; every vertex has a
// replica on each partition holding one of its edges, with the
// lowest-numbered replica acting as master. Each synchronous iteration:
//
//	gather:  every partition folds its local edges into per-replica
//	         partial sums;
//	apply:   mirrors ship partials to the master (one message per
//	         mirror), which computes the new vertex value;
//	scatter: the master broadcasts the new value back to the mirrors.
//
// The simulator models time exactly like the bsp engine: per-rank
// compute plus cost-matrix-weighted transfer of the replica
// synchronization traffic, and accumulates the same intra-socket /
// inter-socket / inter-node volume breakdown — demonstrating the paper's
// §8 point that vertex-cut systems face the same communication
// heterogeneity that PARAGON exploits.
package gas

import (
	"fmt"
	"math"
	"sync"

	"paragon/internal/bsp"
	"paragon/internal/graph"
	"paragon/internal/topology"
	"paragon/internal/vertexcut"
)

// Program is a synchronous GAS vertex program over int64 values.
type Program struct {
	// Init sets the initial value of every vertex.
	Init func(v int32) int64
	// Gather produces the contribution of neighbor u (with current value
	// uVal, over an edge of weight w) to v's accumulator.
	Gather func(v, u int32, uVal int64, w int32) int64
	// Sum folds two gather contributions.
	Sum func(a, b int64) int64
	// Apply computes v's new value from the folded sum (hasSum=false for
	// isolated vertices) and reports whether the value changed — the
	// convergence signal.
	Apply func(v int32, old, sum int64, hasSum bool) (int64, bool)
}

// Options mirrors the bsp engine's cost knobs.
type Options struct {
	ComputePerEdge   float64 // gather work per local edge (default 0.002)
	ComputePerVertex float64 // apply work per master vertex (default 0.02)
	MsgGroupSize     int     // sync messages coalesced per rank pair (default 8)
	MaxIterations    int     // safety bound (default 10000)
}

func (o Options) withDefaults() Options {
	if o.ComputePerEdge == 0 {
		o.ComputePerEdge = 0.002
	}
	if o.ComputePerVertex == 0 {
		o.ComputePerVertex = 0.02
	}
	if o.MsgGroupSize <= 0 {
		o.MsgGroupSize = 8
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10000
	}
	return o
}

// Result of a GAS run.
type Result struct {
	Values     []int64
	Iterations int
	JET        float64
	Volume     bsp.VolumeBreakdown // replica synchronization traffic
	Messages   int64
}

// Engine binds a graph, a vertex-cut assignment, and a cluster.
type Engine struct {
	g    *graph.Graph
	a    *vertexcut.Assignment
	cl   *topology.Cluster
	opts Options

	ranks    int
	edges    [][]edgeRec // per partition: local edges
	replicas [][]int32   // per vertex: replica partitions, master first
	cost     [][]float64
	class    [][]topology.CommClass
}

type edgeRec struct {
	u, v int32
	w    int32
}

// NewEngine validates and indexes the assignment.
func NewEngine(g *graph.Graph, a *vertexcut.Assignment, cl *topology.Cluster, opts Options) (*Engine, error) {
	if a.EdgeCount() != g.NumEdges() {
		return nil, fmt.Errorf("gas: assignment covers %d edges, graph has %d", a.EdgeCount(), g.NumEdges())
	}
	if int(a.K) > cl.TotalCores() {
		return nil, fmt.Errorf("gas: %d partitions exceed %d cores of %s", a.K, cl.TotalCores(), cl.Name)
	}
	e := &Engine{g: g, a: a, cl: cl, opts: opts.withDefaults(), ranks: int(a.K)}
	e.edges = make([][]edgeRec, e.ranks)
	idx := 0
	for v := int32(0); v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		ws := g.EdgeWeights(v)
		for i, u := range adj {
			if v < u {
				p := a.EdgePart[idx]
				e.edges[p] = append(e.edges[p], edgeRec{v, u, ws[i]})
				idx++
			}
		}
	}
	e.replicas = make([][]int32, g.NumVertices())
	for v := int32(0); v < g.NumVertices(); v++ {
		for p := int32(0); p < a.K; p++ {
			if a.ReplicaCount(v) == 0 {
				break
			}
			if hasReplica(a, v, p) {
				e.replicas[v] = append(e.replicas[v], p)
			}
		}
	}
	e.cost = make([][]float64, e.ranks)
	e.class = make([][]topology.CommClass, e.ranks)
	for i := 0; i < e.ranks; i++ {
		e.cost[i] = make([]float64, e.ranks)
		e.class[i] = make([]topology.CommClass, e.ranks)
		for j := 0; j < e.ranks; j++ {
			e.cost[i][j] = cl.Cost(i, j)
			e.class[i][j] = cl.Class(i, j)
		}
	}
	return e, nil
}

func hasReplica(a *vertexcut.Assignment, v, p int32) bool {
	return a.Replicas[v][p/64]&(1<<(uint(p)%64)) != 0
}

const syncBytes = 12 // 8-byte value + 4-byte vertex id per sync message

// Run executes prog to convergence (no Apply reported a change) or the
// iteration bound.
func (e *Engine) Run(prog Program) (Result, error) {
	if prog.Init == nil || prog.Gather == nil || prog.Sum == nil || prog.Apply == nil {
		return Result{}, fmt.Errorf("gas: program needs Init, Gather, Sum and Apply")
	}
	n := e.g.NumVertices()
	values := make([]int64, n)
	for v := int32(0); v < n; v++ {
		values[v] = prog.Init(v)
	}
	var res Result
	type partial struct {
		sum int64
		ok  bool
	}
	for {
		if res.Iterations >= e.opts.MaxIterations {
			return res, fmt.Errorf("gas: exceeded %d iterations", e.opts.MaxIterations)
		}
		// Gather phase: each partition folds its local edges.
		partials := make([]map[int32]partial, e.ranks)
		var wg sync.WaitGroup
		for r := 0; r < e.ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				acc := make(map[int32]partial)
				for _, er := range e.edges[r] {
					gu := prog.Gather(er.u, er.v, values[er.v], er.w)
					if p, ok := acc[er.u]; ok {
						acc[er.u] = partial{prog.Sum(p.sum, gu), true}
					} else {
						acc[er.u] = partial{gu, true}
					}
					gv := prog.Gather(er.v, er.u, values[er.u], er.w)
					if p, ok := acc[er.v]; ok {
						acc[er.v] = partial{prog.Sum(p.sum, gv), true}
					} else {
						acc[er.v] = partial{gv, true}
					}
				}
				partials[r] = acc
			}(r)
		}
		wg.Wait()

		// Sync accounting: every mirror's partial travels to the master;
		// after apply, the new value travels back to each mirror. Both
		// legs are charged per (master, mirror) rank pair.
		msgs := make([][]int64, e.ranks) // msgs[src][dst]
		for r := range msgs {
			msgs[r] = make([]int64, e.ranks)
		}
		compute := make([]float64, e.ranks)
		for r := 0; r < e.ranks; r++ {
			compute[r] = e.opts.ComputePerEdge * float64(len(e.edges[r]))
		}
		// Apply at masters (sequential: cheap, deterministic).
		changed := false
		for v := int32(0); v < n; v++ {
			reps := e.replicas[v]
			if len(reps) == 0 {
				// Isolated vertex: apply with no sum at a nominal rank 0.
				nv, ch := prog.Apply(v, values[v], 0, false)
				values[v] = nv
				changed = changed || ch
				continue
			}
			master := reps[0]
			var sum int64
			has := false
			for _, p := range reps {
				if pt, ok := partials[p][v]; ok {
					if has {
						sum = prog.Sum(sum, pt.sum)
					} else {
						sum, has = pt.sum, true
					}
					if p != master {
						msgs[p][master]++ // partial to master
					}
				}
			}
			nv, ch := prog.Apply(v, values[v], sum, has)
			compute[master] += e.opts.ComputePerVertex
			if ch {
				changed = true
				for _, p := range reps[1:] {
					msgs[master][p]++ // new value to mirror
				}
			}
			values[v] = nv
		}
		// Convert message counts to time and volume.
		group := float64(e.opts.MsgGroupSize)
		send := make([]float64, e.ranks)
		recv := make([]float64, e.ranks)
		for srcR := 0; srcR < e.ranks; srcR++ {
			for dst := 0; dst < e.ranks; dst++ {
				m := msgs[srcR][dst]
				if m == 0 || srcR == dst {
					continue
				}
				t := math.Ceil(float64(m)/group) * e.cost[srcR][dst]
				send[srcR] += t
				recv[dst] += t
				res.Messages += m
				switch e.class[srcR][dst] {
				case topology.InterNode:
					res.Volume.InterNode += m * syncBytes
				case topology.InterSocket:
					res.Volume.InterSocket += m * syncBytes
				default:
					res.Volume.IntraSocket += m * syncBytes
				}
			}
		}
		var worst float64
		for r := 0; r < e.ranks; r++ {
			if t := compute[r] + send[r] + recv[r]; t > worst {
				worst = t
			}
		}
		res.JET += worst
		res.Iterations++
		if !changed {
			break
		}
	}
	res.Values = values
	return res, nil
}
