package paragon

import (
	"testing"

	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// Additional PARAGON behaviors not covered by the main test file.

func TestKHopRefinementStaysValid(t *testing.T) {
	// k-hop > 0 admits near-boundary interior vertices; the result must
	// remain a valid, balanced decomposition and the objective must not
	// regress versus k=0 by more than noise (the paper found quality
	// insensitive to k).
	g := gen.RMAT(2500, 15000, 0.57, 0.19, 0.19, 31)
	g.UseDegreeWeights()
	c := topology.UniformMatrix(8)
	initial := stream.DG(g, 8, stream.DefaultOptions())
	base := partition.CommCost(g, initial, c, 10)
	var costs [3]float64
	for k := 0; k <= 2; k++ {
		p := initial.Clone()
		if _, err := Refine(g, p, c, Config{DRP: 4, Shuffles: 2, Seed: 3, KHop: k}); err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("k=%d invalid: %v", k, err)
		}
		costs[k] = partition.CommCost(g, p, c, 10)
		if costs[k] >= base {
			t.Fatalf("k=%d did not improve: %v vs %v", k, costs[k], base)
		}
	}
	// All three within 10% of each other (insensitivity claim).
	for k := 1; k <= 2; k++ {
		ratio := costs[k] / costs[0]
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("k=%d quality %v diverges from k=0 %v", k, costs[k], costs[0])
		}
	}
}

func TestMasterSelectionTieBreaksLow(t *testing.T) {
	// Uniform matrix: all masters cost the same; the lowest id must win
	// (determinism without synchronization, §5).
	if m := selectMaster(5, topology.UniformMatrix(5)); m != 0 {
		t.Fatalf("master = %d, want 0 on ties", m)
	}
}

func TestSelectGroupServersPrefersOwnPartition(t *testing.T) {
	// A group member costs nothing to host its own partition's data, so
	// with heterogeneous costs a member of the group should win.
	cl := topology.PittCluster(2)
	k := 8
	ranks := []int{0, 1, 2, 3, 20, 21, 22, 23} // split across nodes
	c := make([][]float64, k)
	for i := range c {
		c[i] = make([]float64, k)
		for j := range c[i] {
			c[i][j] = cl.Cost(ranks[i], ranks[j])
		}
	}
	ps := []int64{100, 100, 100, 100, 100, 100, 100, 100}
	groups := [][]int32{{0, 1, 2, 3}, {4, 5, 6, 7}}
	servers := SelectGroupServers(groups, ps, c, nil, 2)
	inGroup := func(s int32, grp []int32) bool {
		for _, p := range grp {
			if p == s {
				return true
			}
		}
		return false
	}
	for gi, grp := range groups {
		if !inGroup(servers[gi], grp) {
			t.Fatalf("group %d server %d outside the group %v", gi, servers[gi], grp)
		}
	}
}

func TestRefineWithContentionMatrixShiftsCut(t *testing.T) {
	// λ=1 on a 2-node cluster must push more cut weight onto inter-node
	// pairs than λ=0 refinement does (the §6 offloading effect).
	cl := topology.PittCluster(2)
	k := 40
	g := gen.RMAT(4000, 24000, 0.57, 0.19, 0.19, 8)
	g.UseDegreeWeights()
	initial := stream.DG(g, int32(k), stream.DefaultOptions())
	nodeOf, _ := cl.NodeOf(k)

	interNodeCut := func(lambda float64) int64 {
		c, err := cl.PartitionCostMatrix(k, lambda)
		if err != nil {
			t.Fatal(err)
		}
		p := initial.Clone()
		if _, err := Refine(g, p, c, Config{DRP: 8, Shuffles: 4, Seed: 6, NodeOf: nodeOf}); err != nil {
			t.Fatal(err)
		}
		return partition.HopCut(g, p, func(i, j int32) int {
			if nodeOf[i] != nodeOf[j] {
				return 1
			}
			return 0
		})
	}
	flat := interNodeCut(0)
	penalized := interNodeCut(1)
	if penalized <= flat {
		t.Fatalf("λ=1 inter-node cut %d not above λ=0's %d — offloading effect missing", penalized, flat)
	}
}

func TestRegionSizeDoesNotChangeResult(t *testing.T) {
	// RegionSize only affects exchange accounting, never the refinement.
	g := gen.Mesh2D(16, 16)
	p1 := stream.DG(g, 6, stream.DefaultOptions())
	p2 := p1.Clone()
	if _, err := RefineUniform(g, p1, Config{DRP: 3, Shuffles: 2, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := RefineUniform(g, p2, Config{DRP: 3, Shuffles: 2, Seed: 4, RegionSize: 17}); err != nil {
		t.Fatal(err)
	}
	for v := range p1.Assign {
		if p1.Assign[v] != p2.Assign[v] {
			t.Fatal("RegionSize changed the refinement result")
		}
	}
}
