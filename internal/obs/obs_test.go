package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTracerSeqAndTickStamps(t *testing.T) {
	tr := NewTracer(8)
	tick := int64(0)
	tr.SetClock(func() int64 { return tick })
	tr.Emit(Event{Kind: KindRefineStart, Round: -1})
	tick = 5
	tr.Emit(Event{Kind: KindRoundStart, Round: 0, N: 4})
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Fatalf("seqs = %d, %d, want 0, 1", ev[0].Seq, ev[1].Seq)
	}
	if ev[0].Tick != 0 || ev[1].Tick != 5 {
		t.Fatalf("ticks = %d, %d, want 0, 5", ev[0].Tick, ev[1].Tick)
	}
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindPairRefined, N: int64(i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(6 + i); e.N != want {
			t.Fatalf("event %d has N=%d, want %d (newest retained)", i, e.N, want)
		}
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d has Seq=%d, want %d", i, e.Seq, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestCommitStagedMergesInCallOrder(t *testing.T) {
	// Two worker bufs staged out of order; the coordinator commits spans
	// in task order, so the merged stream is independent of which worker
	// held which span.
	tr := NewTracer(16)
	var b0, b1 Buf
	b1.Emit(Event{Kind: KindPairRefined, A: 2}) // task 1 staged on worker 1 first
	b0.Emit(Event{Kind: KindPairRefined, A: 1}) // task 0 staged on worker 0 second
	tr.CommitStaged(&b0, 0, 1)                  // task 0
	tr.CommitStaged(&b1, 0, 1)                  // task 1
	ev := tr.Events()
	if len(ev) != 2 || ev[0].A != 1 || ev[1].A != 2 {
		t.Fatalf("merged order wrong: %+v", ev)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Kind: KindRoundStart})
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("reset left %d events, %d dropped", tr.Len(), tr.Dropped())
	}
	tr.Emit(Event{Kind: KindRoundEnd})
	if ev := tr.Events(); len(ev) != 1 || ev[0].Seq != 0 {
		t.Fatalf("post-reset events = %+v, want one event with seq 0", ev)
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("refine_moves_total", "kept moves")
	c2 := r.Counter("refine_moves_total", "ignored on re-register")
	if c1 != c2 {
		t.Fatal("Counter not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("refine_moves_total", "wrong type")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("refine_pair_moves", "moves per pair", []int64{0, 1, 4})
	for _, v := range []int64{0, 0, 1, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 108 {
		t.Fatalf("count=%d sum=%d, want 6, 108", h.Count(), h.Sum())
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`refine_pair_moves_bucket{le="0"} 2`,
		`refine_pair_moves_bucket{le="1"} 3`,
		`refine_pair_moves_bucket{le="4"} 5`,
		`refine_pair_moves_bucket{le="+Inf"} 6`,
		`refine_pair_moves_sum 108`,
		`refine_pair_moves_count 6`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromOutputSortedAndStable(t *testing.T) {
	// Registration order must not leak into the exposition: two
	// registries filled in opposite orders serialize identically.
	fill := func(names []string) *Registry {
		r := NewRegistry()
		for _, n := range names {
			r.Counter(n, "help for "+n).Add(7)
		}
		return r
	}
	a := fill([]string{"refine_rounds_total", "exchange_bytes_total", "migrate_vertices_total"})
	b := fill([]string{"migrate_vertices_total", "refine_rounds_total", "exchange_bytes_total"})
	var wa, wb bytes.Buffer
	if err := WriteProm(&wa, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&wb, b); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatalf("exposition depends on registration order:\n%s\nvs\n%s", wa.String(), wb.String())
	}
	if !strings.HasPrefix(wa.String(), "# HELP exchange_bytes_total") {
		t.Fatalf("exposition not name-sorted:\n%s", wa.String())
	}
}

func TestConcurrentCounterAndHistogram(t *testing.T) {
	// The order-free discipline: concurrent int adds from many
	// goroutines must reach the exact total.
	r := NewRegistry()
	c := r.Counter("exchange_bytes_total", "bytes")
	h := r.Histogram("exchange_msg_bytes", "per message", PowersOfTwoBounds(10))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(3)
				h.Observe(64)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 24000 {
		t.Fatalf("counter = %d, want 24000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 512000 {
		t.Fatalf("histogram count=%d sum=%d, want 8000, 512000", h.Count(), h.Sum())
	}
}

func TestNilSafety(t *testing.T) {
	// A nil registry hands out nil metrics and every operation on them
	// is a no-op — call sites need a single top-level nil check at most.
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("y", "").Set(1)
	r.Histogram("z", "", []int64{1}).Observe(1)
	var tr *Tracer
	if err := WriteJSONL(&bytes.Buffer{}, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&bytes.Buffer{}, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummary(&bytes.Buffer{}, r); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLStableSchema(t *testing.T) {
	tr := NewTracer(4)
	tr.Emit(Event{Kind: KindPairRefined, Round: 2, A: 3, B: 9, N: 17, X: 1.5})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":0,"tick":0,"kind":"pair_refined","round":2,"a":3,"b":9,"n":17,"m":0,"x":1.5}` + "\n"
	if buf.String() != want {
		t.Fatalf("jsonl = %q, want %q", buf.String(), want)
	}
}

func TestSummaryGroupsByPhase(t *testing.T) {
	r := NewRegistry()
	r.Counter("exchange_bytes_total", "").Add(100)
	r.Counter("refine_moves_total", "").Add(5)
	r.Gauge("migrate_cost", "").Set(2.5)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ri := strings.Index(out, "refine")
	ei := strings.Index(out, "exchange")
	mi := strings.Index(out, "migrate")
	if ri < 0 || ei < 0 || mi < 0 || !(ri < ei && ei < mi) {
		t.Fatalf("phase order wrong (refine < exchange < migrate expected):\n%s", out)
	}
}
