package paragon_test

import (
	"fmt"

	paragonlib "paragon"
)

// Example shows the whole pipeline on the public API: generate, model,
// partition, refine, and verify that refinement changes *placement*, not
// *answers* — BFS distances are identical before and after.
func Example() {
	g := paragonlib.Mesh2D(20, 20)
	g.UseDegreeWeights()
	cluster := paragonlib.PittCluster(1)
	k := cluster.TotalCores()
	costs, err := cluster.PartitionCostMatrix(k, 0)
	if err != nil {
		fmt.Println(err)
		return
	}

	p := paragonlib.HP(g, int32(k)) // worst-case initial decomposition
	before := paragonlib.Evaluate(g, p, costs, 10)

	engine, _ := paragonlib.NewEngine(g, p, cluster, paragonlib.EngineOptions{})
	distBefore, _, _ := paragonlib.BFS(engine, g, 0)

	cfg := paragonlib.DefaultConfig()
	cfg.Seed = 1
	if _, err := paragonlib.Refine(g, p, costs, cfg); err != nil {
		fmt.Println(err)
		return
	}
	after := paragonlib.Evaluate(g, p, costs, 10)

	engine2, _ := paragonlib.NewEngine(g, p, cluster, paragonlib.EngineOptions{})
	distAfter, _, _ := paragonlib.BFS(engine2, g, 0)

	same := true
	for v := range distBefore {
		if distBefore[v] != distAfter[v] {
			same = false
		}
	}
	fmt.Println("comm cost improved:", after.CommCost < before.CommCost)
	fmt.Println("BFS answers unchanged:", same)
	// Output:
	// comm cost improved: true
	// BFS answers unchanged: true
}
