#!/usr/bin/env bash
# Streaming-daemon pass (DESIGN.md §18): measures sustained churn
# ingest throughput while refinement epochs run concurrently, across
# worker counts and with the fault layer on, and emits BENCH_daemon.json.
#
# The replay contract is cross-checked, not assumed: every worker count
# runs the identical (seed, schedule) pair and must produce a
# byte-identical replay summary (assignment hash, directory epoch, live
# score, full counter block). Any divergence aborts the bench.
#
# Usage: scripts/bench_daemon.sh [output.json]
#   DAEMON_WORKERS="1 4" DAEMON_N0=2000 DAEMON_M0=10000 \
#   DAEMON_BATCHES=30 scripts/bench_daemon.sh /tmp/smoke.json   # ci smoke
#   DAEMON_FAULT_RATE=0.5 scripts/bench_daemon.sh               # heavier faults
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_daemon.json}"
workers_list="${DAEMON_WORKERS:-1 2 8}"
n0="${DAEMON_N0:-50000}"
m0="${DAEMON_M0:-250000}"
k="${DAEMON_K:-16}"
batches="${DAEMON_BATCHES:-200}"
adds="${DAEMON_ADDS:-400}"
removes="${DAEMON_REMOVES:-150}"
arrivals="${DAEMON_ARRIVALS:-10}"
fault_rate="${DAEMON_FAULT_RATE:-0.3}"

ncpu="$(getconf _NPROCESSORS_ONLN)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

go build -o "$tmpdir/paragond" ./cmd/paragond

points="$tmpdir/points"   # lines: workers elapsed_ms edges_per_sec committed aborted
: > "$points"

for w in $workers_list; do
    echo "bench_daemon: n0=$n0 m0=$m0 k=$k batches=$batches fault-rate=$fault_rate workers=$w..." >&2
    "$tmpdir/paragond" \
        -n0 "$n0" -m0 "$m0" -k "$k" -batches "$batches" \
        -adds "$adds" -removes "$removes" -arrivals "$arrivals" \
        -workers "$w" -fault-rate "$fault_rate" \
        -replay-out "$tmpdir/replay_w$w.txt" \
        -bench-json "$tmpdir/bench_w$w.json" > /dev/null
    awk -v w="$w" '{
        match($0, /"elapsed_ms":[0-9]+/);          ms  = substr($0, RSTART+13, RLENGTH-13)
        match($0, /"churn_edges_per_sec":[0-9]+/); eps = substr($0, RSTART+22, RLENGTH-22)
        match($0, /"epochs_committed":[0-9]+/);    com = substr($0, RSTART+19, RLENGTH-19)
        match($0, /"epochs_aborted":[0-9]+/);      abo = substr($0, RSTART+17, RLENGTH-17)
        printf("%s %s %s %s %s\n", w, ms, eps, com, abo)
    }' "$tmpdir/bench_w$w.json" >> "$points"
done

# Replay identity across worker counts, cmp-enforced byte for byte.
first=""
for w in $workers_list; do
    if [ -z "$first" ]; then
        first="$w"
        continue
    fi
    if ! cmp -s "$tmpdir/replay_w$first.txt" "$tmpdir/replay_w$w.txt"; then
        echo "bench_daemon: FATAL: replay summary diverged between workers=$first and workers=$w:" >&2
        diff "$tmpdir/replay_w$first.txt" "$tmpdir/replay_w$w.txt" >&2 || true
        exit 1
    fi
done
hash="$(awk '$1 == "assign-hash" { print $2 }' "$tmpdir/replay_w$first.txt")"
epochs_line="$(awk '$1 == "epochs" { $1=""; sub(/^ /,""); print }' "$tmpdir/replay_w$first.txt")"

awk -v out="$out" -v ncpu="$ncpu" -v n0="$n0" -v m0="$m0" -v k="$k" \
    -v batches="$batches" -v adds="$adds" -v removes="$removes" \
    -v arrivals="$arrivals" -v rate="$fault_rate" -v hash="$hash" \
    -v epochs="$epochs_line" '
BEGIN { cnt = 0 }
{ workers[cnt] = $1; ms[cnt] = $2; eps[cnt] = $3; com[cnt] = $4; abo[cnt] = $5; cnt++ }
END {
    if (cnt == 0) { print "bench_daemon.sh: no points" > "/dev/stderr"; exit 1 }
    printf("{\n")                                                      > out
    printf("  \"workload\": \"RMAT n0=%s m0=%s k=%s; %s batches x (%s adds + %s removes + %s arrivals), LDG arrival placement, fault rate %s on epoch refinement and directory publishes\",\n", n0, m0, k, batches, adds, removes, arrivals, rate) > out
    printf("  \"hardware\": { \"online_cpus\": %s },\n", ncpu)         > out
    printf("  \"note\": \"churn_edges_per_sec is sustained ingest while refinement epochs run concurrently; every worker count produced a byte-identical replay summary (cmp-enforced), so the throughput spread is pure scheduling, never divergence.\",\n") > out
    printf("  \"assign_hash\": \"%s\",\n", hash)                       > out
    printf("  \"epochs\": \"%s\",\n", epochs)                          > out
    printf("  \"points\": {\n")                                        > out
    for (i = 0; i < cnt; i++) {
        printf("    \"ingest/workers=%s\": { \"elapsed_ms\": %s, \"churn_edges_per_sec\": %s, \"epochs_committed\": %s, \"epochs_aborted\": %s }%s\n",
               workers[i], ms[i], eps[i], com[i], abo[i], (i < cnt - 1) ? "," : "") > out
    }
    printf("  }\n}\n")                                                 > out
}
' "$points"

echo "bench_daemon: wrote $out"
