// Calibration: the measurement step of §7 ("Network Communication Cost
// Modelling") played end to end. The paper derives its relative cost
// matrix from osu_latency probes between bound MPI ranks; here,
// synthetic probe samples (as a real deployment would collect) are
// fitted into a LatencyModel, installed on the cluster model, and the
// calibrated matrix drives a PARAGON refinement.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"paragon/internal/gen"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

func main() {
	cluster := topology.PittCluster(2)

	// 1. "Measure": ping-pong latencies between rank pairs. A real
	//    deployment runs osu_latency; here the probe values come from a
	//    hidden ground-truth model plus 5% noise.
	truth := topology.LatencyModel{
		SharedL2: 1, IntraSocket: 1.8, InterSocket: 5.2,
		InterNodeBase: 22, PerHop: 6,
	}
	probe := *cluster
	probe.Latency = truth
	rng := rand.New(rand.NewSource(7))
	var samples []topology.LatencySample
	for i := 0; i < 400; i++ {
		a, b := rng.Intn(cluster.TotalCores()), rng.Intn(cluster.TotalCores())
		if a == b {
			continue
		}
		noise := 1 + 0.05*(rng.Float64()*2-1)
		samples = append(samples, topology.LatencySample{
			RankA: a, RankB: b, Latency: probe.Cost(a, b) * 3.14 * noise, // µs-ish units
		})
	}

	// 2. Fit and install the model.
	fitted, err := topology.CalibrateLatency(cluster, samples)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Latency = fitted
	fmt.Printf("fitted model: intra-socket %.2f, inter-socket %.2f, inter-node %.2f (+%.2f/hop)\n",
		fitted.IntraSocket, fitted.InterSocket, fitted.InterNodeBase, fitted.PerHop)

	// 3. Refine against the calibrated matrix.
	g := gen.RMAT(10000, 60000, 0.57, 0.19, 0.19, 1)
	g.UseDegreeWeights()
	k := cluster.TotalCores()
	costs, err := cluster.PartitionCostMatrix(k, 0)
	if err != nil {
		log.Fatal(err)
	}
	nodeOf, _ := cluster.NodeOf(k)
	p := stream.DG(g, int32(k), stream.DefaultOptions())
	before := partition.CommCost(g, p, costs, 10)
	cfg := paragon.DefaultConfig()
	cfg.Seed = 3
	cfg.NodeOf = nodeOf
	if _, err := paragon.Refine(g, p, costs, cfg); err != nil {
		log.Fatal(err)
	}
	after := partition.CommCost(g, p, costs, 10)
	fmt.Printf("comm cost on calibrated matrix: %.0f -> %.0f (%.1f%% better)\n",
		before, after, 100*(1-after/before))
}
