package exp

import (
	"fmt"
	"time"

	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/partition"
	"paragon/internal/stream"
)

// Microbenchmarks (§7.1). The paper runs all of them on the com-lj
// dataset partitioned into 40 parts across two 20-core PittMPICluster
// nodes with DG as the initial partitioner. λ is 0 here: §7.1 studies
// pure communication heterogeneity; contention enters in §7.2.

func microEnv() Env {
	env := PittEnv(2)
	env.Lambda = 0
	return env
}

func comLJ(scale float64) *graph.Graph {
	d, err := gen.DatasetByName("com-lj")
	if err != nil {
		panic(err)
	}
	g := d.Build(scale)
	g.UseDegreeWeights()
	return g
}

// Fig7 regenerates Figures 7a and 7b: refinement time and normalized
// communication cost of the com-lj decomposition for varying degrees of
// refinement parallelism (shuffle refinement disabled).
func Fig7(scale float64) (*Table, *Table) {
	env := microEnv()
	g := comLJ(scale)
	initial := stream.DG(g, int32(env.K), stream.DefaultOptions())
	c := env.PlainMatrix()
	baseCost := partition.CommCost(g, initial, c, env.Alpha)

	timeTab := &Table{
		ID:     "fig7a",
		Title:  "Refinement time vs degree of refinement parallelism (com-lj, 2x20 cores)",
		Header: []string{"drp", "refinement_time"},
	}
	costTab := &Table{
		ID:     "fig7b",
		Title:  "Normalized comm cost of resulting decompositions vs drp (normalized to DG initial)",
		Header: []string{"drp", "norm_comm_cost"},
	}
	for _, drp := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20} {
		p := initial.Clone()
		st := RefineParagon(g, p, env, drp, 0, 42)
		cost := partition.CommCost(g, p, c, env.Alpha)
		timeTab.Rows = append(timeTab.Rows, []string{fmt.Sprint(drp), secs(st.RefinementTime)})
		costTab.Rows = append(costTab.Rows, []string{fmt.Sprint(drp), f2(cost / baseCost)})
	}
	costTab.Notes = "paper: monotone-ish rise with drp, always < 1.0 (better than initial)"
	timeTab.Notes = "paper: time falls as drp grows; drp=1 is serial ARAGON"
	return timeTab, costTab
}

// Fig8 regenerates Figure 8: communication cost (normalized to the
// ARAGON result) and refinement time for varying numbers of shuffle
// refinement rounds at drp=8.
func Fig8(scale float64) *Table {
	env := microEnv()
	g := comLJ(scale)
	initial := stream.DG(g, int32(env.K), stream.DefaultOptions())
	c := env.PlainMatrix()

	// Baseline: ARAGON = drp 1, no shuffles.
	pa := initial.Clone()
	stAragon := RefineParagon(g, pa, env, 1, 0, 42)
	aragonCost := partition.CommCost(g, pa, c, env.Alpha)

	tab := &Table{
		ID:     "fig8",
		Title:  "Shuffle refinement: comm cost normalized to ARAGON and refinement time (drp=8)",
		Header: []string{"shuffles", "refinement_time", "norm_comm_vs_ARAGON"},
	}
	tab.Rows = append(tab.Rows, []string{"ARAGON", secs(stAragon.RefinementTime), "1.00"})
	for sh := 0; sh <= 15; sh++ {
		p := initial.Clone()
		st := RefineParagon(g, p, env, 8, sh, 42)
		cost := partition.CommCost(g, p, c, env.Alpha)
		tab.Rows = append(tab.Rows, []string{fmt.Sprint(sh), secs(st.RefinementTime), f2(cost / aragonCost)})
	}
	tab.Notes = "paper: enough shuffles match or beat ARAGON quality at a fraction of its time"
	return tab
}

// initialQuality holds one dataset × partitioner cell of Figures 9–11.
type initialQuality struct {
	comm    float64
	after   float64
	mig     float64
	refTime time.Duration
}

// runInitialPartitioners computes, for each dataset and each initial
// partitioner, the initial comm cost, the cost after PARAGON (drp=8,
// shuffles=8), the migration cost, and the refinement time.
func runInitialPartitioners(scale float64) ([]string, []string, map[string]map[string]initialQuality) {
	env := microEnv()
	c := env.PlainMatrix()
	parts := InitialPartitioners()
	var dsNames, pNames []string
	for _, p := range parts {
		pNames = append(pNames, p.Name)
	}
	cells := map[string]map[string]initialQuality{}
	for _, ds := range gen.Datasets() {
		g := ds.Build(scale)
		g.UseDegreeWeights()
		dsNames = append(dsNames, ds.Name)
		cells[ds.Name] = map[string]initialQuality{}
		for _, ip := range parts {
			p := ip.Run(g, int32(env.K))
			q := initialQuality{comm: partition.CommCost(g, p, c, env.Alpha)}
			before := p.Clone()
			st := RefineParagon(g, p, env, 8, 8, 42)
			q.after = partition.CommCost(g, p, c, env.Alpha)
			q.mig = partition.MigrationCost(g, before, p, c)
			q.refTime = st.RefinementTime
			cells[ds.Name][ip.Name] = q
		}
	}
	return dsNames, pNames, cells
}

// Fig9to11 regenerates Figures 9, 10a, 10b, 11a and 11b in one sweep
// (they share all computation): initial comm cost, refined comm cost,
// improvement, migration cost, and refinement time for HP/DG/LDG/METIS
// initial decompositions across the twelve datasets.
func Fig9to11(scale float64) []*Table {
	dsNames, pNames, cells := runInitialPartitioners(scale)
	mk := func(id, title, unit string, get func(initialQuality) string) *Table {
		t := &Table{ID: id, Title: title, Header: append([]string{"dataset"}, pNames...)}
		if unit != "" {
			t.Notes = unit
		}
		for _, ds := range dsNames {
			row := []string{ds}
			for _, pn := range pNames {
				row = append(row, get(cells[ds][pn]))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	fig9 := mk("fig9", "Comm cost of initial decompositions (HP/DG/LDG/METIS, 2x20 cores)", "paper: METIS best, HP worst",
		func(q initialQuality) string { return f0(q.comm) })
	fig10a := mk("fig10a", "Comm cost after PARAGON refinement", "",
		func(q initialQuality) string { return f0(q.after) })
	fig10b := mk("fig10b", "Improvement over initial decomposition (%)", "paper: avg 43% (HP), 17% (DG), 36% (LDG)",
		func(q initialQuality) string {
			if q.comm == 0 {
				return "0%"
			}
			return fmt.Sprintf("%.0f%%", 100*(1-q.after/q.comm))
		})
	fig11a := mk("fig11a", "Migration cost of the refinement", "paper: poorer initial decomposition => higher migration",
		func(q initialQuality) string { return f0(q.mig) })
	fig11b := mk("fig11b", "Refinement time", "",
		func(q initialQuality) string { return secs(q.refTime) })
	return []*Table{fig9, fig10a, fig10b, fig11a, fig11b}
}
