package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable diagnostic output for CI artifacts: a compact JSON
// form for scripting, and SARIF 2.1.0 so code-review tooling can ingest
// the paragonlint gate directly. Both serializations are deterministic —
// diagnostics arrive sorted from Run, rules are emitted in sorted name
// order, and field order is fixed by the struct definitions.

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// WriteJSON writes diagnostics as a JSON object {"count": N,
// "diagnostics": [...]}. File paths are made relative to root (with
// forward slashes) when possible.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	payload := struct {
		Count       int              `json:"count"`
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
	}{Count: len(diags), Diagnostics: []jsonDiagnostic{}}
	for _, d := range diags {
		payload.Diagnostics = append(payload.Diagnostics, jsonDiagnostic{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Checker: d.Checker,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// SARIF 2.1.0 skeleton — only the fields consumers actually read.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes diagnostics as a single-run SARIF 2.1.0 log. The
// rule table is built from the checker suite (sorted by name) plus the
// framework's own "lint" rule for malformed directives.
func WriteSARIF(w io.Writer, root string, checkers []Checker, diags []Diagnostic) error {
	rules := []sarifRule{{
		ID:               "lint",
		ShortDescription: sarifMessage{Text: "framework diagnostics (malformed //lint:ignore directives)"},
	}}
	for _, c := range checkers {
		rules = append(rules, sarifRule{
			ID:               c.Name(),
			ShortDescription: sarifMessage{Text: c.Doc()},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Checker,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "paragonlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath renders filename relative to root with forward slashes, or
// unchanged when it is not under root.
func relPath(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
