package apps

import (
	"testing"

	"paragon/internal/bsp"
	"paragon/internal/graph"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// twoCliques builds two size-c cliques joined by a single bridge edge.
func twoCliques(c int32) *graph.Graph {
	b := graph.NewBuilder(2 * c)
	for i := int32(0); i < c; i++ {
		for j := i + 1; j < c; j++ {
			b.AddEdge(i, j)
			b.AddEdge(c+i, c+j)
		}
	}
	b.AddEdge(c-1, c) // bridge
	return b.Build()
}

func TestLabelPropagationFindsCommunities(t *testing.T) {
	g := twoCliques(8)
	p := stream.HP(g, 4)
	e, err := bsp.NewEngine(g, p, topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	labels, res, err := LabelPropagation(e, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 8 {
		t.Fatalf("supersteps = %d, want 8", res.Supersteps)
	}
	// Each clique should converge to a dominant internal label. Count
	// the majority share per clique.
	majority := func(ls []int64) int {
		counts := map[int64]int{}
		best := 0
		for _, l := range ls {
			counts[l]++
			if counts[l] > best {
				best = counts[l]
			}
		}
		return best
	}
	if m := majority(labels[:8]); m < 7 {
		t.Fatalf("clique 1 not converged: %v", labels[:8])
	}
	if m := majority(labels[8:]); m < 7 {
		t.Fatalf("clique 2 not converged: %v", labels[8:])
	}
}

func TestLabelPropagationBadIters(t *testing.T) {
	g := twoCliques(3)
	p := stream.HP(g, 2)
	e, err := bsp.NewEngine(g, p, topology.PittCluster(1), bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LabelPropagation(e, g, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestPluralityLabel(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{3}, 3},
		{[]int64{5, 5, 2}, 5},
		{[]int64{2, 5, 5, 2}, 2}, // tie -> smallest
		{[]int64{9, 1, 9, 1, 9}, 9},
		{[]int64{4, 3, 2, 1}, 1}, // all singletons -> smallest
	}
	for _, tc := range cases {
		if got := pluralityLabel(tc.in); got != tc.want {
			t.Errorf("pluralityLabel(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
