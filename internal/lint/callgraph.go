package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Call graph construction (DESIGN.md §15). The graph is CHA-style
// (class-hierarchy analysis): static calls resolve to their declared
// callee, and a call through an interface method conservatively fans out
// to every concrete method in the analysis set whose receiver type
// implements the interface. Calls through plain function values (fields,
// parameters, variables of function type) are not resolved — the repo's
// kernels dispatch statically or through small interfaces, and the
// checkers that consume the graph (taint, the computed wallclock kernel
// set) prefer a sound-on-what-it-sees graph over a points-to analysis.
//
// Everything about the graph is deterministic: nodes are held in
// load order (packages sorted by import path, files by name, declarations
// by position), adjacency lists are sorted by call-site position, and
// reachability walks visit neighbors in that order — the linter lints
// itself, so its own output must be reproducible.

// CallGraph is the CHA call graph of one analysis set.
type CallGraph struct {
	nodes  []*CallNode
	byFunc map[*types.Func]*CallNode
}

// CallNode is one declared function or method of the analysis set.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out holds this function's resolved call edges, sorted by call-site
	// position then callee name.
	Out []*CallEdge
}

// CallEdge is one resolved caller→callee pair; Pos is the earliest call
// site realizing it.
type CallEdge struct {
	Caller *CallNode
	Callee *CallNode
	Pos    token.Pos
	// Dynamic marks edges added by CHA interface expansion rather than a
	// direct static call.
	Dynamic bool
}

// BuildCallGraph constructs the call graph over pkgs. Packages are
// analyzed in sorted import-path order; pkgs missing type information
// contribute no nodes.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	g := &CallGraph{byFunc: make(map[*types.Func]*CallNode)}
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes = append(g.nodes, n)
				g.byFunc[fn] = n
			}
		}
	}

	concrete := concreteMethods(sorted)
	for _, n := range g.nodes {
		g.addEdges(n, concrete)
	}
	return g
}

// Nodes returns the graph's nodes in deterministic load order.
func (g *CallGraph) Nodes() []*CallNode { return g.nodes }

// NodeOf returns the node of fn, or nil when fn has no body in the
// analysis set.
func (g *CallGraph) NodeOf(fn *types.Func) *CallNode { return g.byFunc[fn] }

// methodImpl pairs a concrete named type with one of its methods, for
// CHA interface-call expansion.
type methodImpl struct {
	recv *types.Named
	fn   *types.Func
}

// concreteMethods collects every method of every named non-interface
// type declared in the analysis set, in deterministic order.
func concreteMethods(pkgs []*Package) []methodImpl {
	var out []methodImpl
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					if _, isIface := named.Underlying().(*types.Interface); !isIface {
						for i := 0; i < named.NumMethods(); i++ {
							out = append(out, methodImpl{recv: named, fn: named.Method(i)})
						}
					}
				}
			}
		}
	}
	return out
}

// addEdges resolves every call expression in n's body.
func (g *CallGraph) addEdges(n *CallNode, concrete []methodImpl) {
	seen := map[*CallNode]bool{}
	add := func(callee *CallNode, pos token.Pos, dyn bool) {
		if callee == nil || seen[callee] {
			return
		}
		seen[callee] = true
		n.Out = append(n.Out, &CallEdge{Caller: n, Callee: callee, Pos: pos, Dynamic: dyn})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fn, ok := n.Pkg.Info.Uses[fun].(*types.Func); ok {
				add(g.byFunc[fn], fun.Pos(), false)
			}
		case *ast.SelectorExpr:
			fn, ok := n.Pkg.Info.Uses[fun.Sel].(*types.Func)
			if !ok {
				return true
			}
			if node := g.byFunc[fn]; node != nil {
				add(node, fun.Sel.Pos(), false)
				return true
			}
			// Unresolved method: an interface call. CHA: fan out to every
			// concrete method implementing the interface.
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
			if !ok {
				return true
			}
			for _, m := range concrete {
				if m.fn.Name() != fn.Name() {
					continue
				}
				if types.Implements(m.recv, iface) || types.Implements(types.NewPointer(m.recv), iface) {
					add(g.byFunc[m.fn], fun.Sel.Pos(), true)
				}
			}
		}
		return true
	})
	sort.Slice(n.Out, func(i, j int) bool {
		a, b := n.Out[i], n.Out[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Callee.Fn.FullName() < b.Callee.Fn.FullName()
	})
}

// ExportedRoots returns the exported functions and methods declared in
// the named packages (by import path), in deterministic order — the
// entry surface reachability starts from. With no paths, every loaded
// package contributes roots (fixture mode).
func (g *CallGraph) ExportedRoots(paths ...string) []*CallNode {
	want := map[string]bool{}
	for _, p := range paths {
		want[p] = true
	}
	var out []*CallNode
	for _, n := range g.nodes {
		if len(want) > 0 && !want[n.Pkg.Path] {
			continue
		}
		if n.Fn.Exported() {
			out = append(out, n)
		}
	}
	return out
}

// Reach computes the forward closure of roots. The returned parent map
// holds, for every reached node other than a root, the BFS tree edge it
// was first discovered through — the shortest call path back to a root.
func (g *CallGraph) Reach(roots []*CallNode) (reached map[*CallNode]bool, parent map[*CallNode]*CallEdge) {
	reached = make(map[*CallNode]bool)
	parent = make(map[*CallNode]*CallEdge)
	queue := make([]*CallNode, 0, len(roots))
	for _, r := range roots {
		if r != nil && !reached[r] {
			reached[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if reached[e.Callee] {
				continue
			}
			reached[e.Callee] = true
			parent[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return reached, parent
}

// ReachablePackages returns the set of import paths owning at least one
// function reachable from roots — the computed kernel set that replaced
// cmd/paragonlint's hand-maintained package list.
func (g *CallGraph) ReachablePackages(roots []*CallNode) map[string]bool {
	reached, _ := g.Reach(roots)
	out := map[string]bool{}
	for _, n := range g.nodes {
		if reached[n] {
			out[n.Pkg.Path] = true
		}
	}
	return out
}

// PathTo renders the BFS call path from a root to n, e.g.
// "paragon.Refine → paragon.refineParallel → (*scheduler).runRound".
func PathTo(parent map[*CallNode]*CallEdge, n *CallNode) string {
	var names []string
	for cur := n; cur != nil; {
		names = append(names, funcDisplayName(cur.Fn))
		e := parent[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// funcDisplayName renders a compact qualified name: pkgname.Func for
// package functions, (*T).Method / T.Method for methods.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		name := "?"
		if named, isNamed := t.(*types.Named); isNamed {
			name = named.Obj().Name()
		}
		if ptr != "" {
			return "(*" + name + ")." + fn.Name()
		}
		return name + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
