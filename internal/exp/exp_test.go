package exp

import (
	"strconv"
	"strings"
	"testing"
)

// The exp tests run every experiment at a tiny scale: they verify the
// harness plumbing and, where cheap, the paper's qualitative shapes.

const tiny = 0.03

// App-level experiments need enough vertices per partition for placement
// to matter (k is 48-60 there); they run at a larger scale.
const appScale = 0.12

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.Fields(s)[0], "%")
	s = strings.TrimSuffix(s, "s")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparsable cell %q: %v", s, err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: "n"}
	s := tab.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestEnvs(t *testing.T) {
	p := PittEnv(2)
	if p.K != 40 || p.Lambda != 1.0 {
		t.Fatalf("PittEnv: %+v", p)
	}
	g := GordonEnv(3)
	if g.K != 48 || g.Lambda != 0.0 {
		t.Fatalf("GordonEnv: %+v", g)
	}
	if len(p.Matrix()) != 40 || len(g.PlainMatrix()) != 48 {
		t.Fatal("matrix sizes wrong")
	}
	if len(p.NodeOf()) != 40 {
		t.Fatal("NodeOf size wrong")
	}
	// λ=1 must make Pitt's intra-node entries exceed the plain ones.
	mm, pm := p.Matrix(), p.PlainMatrix()
	if mm[0][1] <= pm[0][1] {
		t.Fatal("contention penalty missing from Matrix()")
	}
}

func TestFig7Shapes(t *testing.T) {
	timeTab, costTab := Fig7(tiny)
	if len(timeTab.Rows) != 11 || len(costTab.Rows) != 11 {
		t.Fatalf("row counts: %d %d", len(timeTab.Rows), len(costTab.Rows))
	}
	// Fig 7b claim: every refined decomposition beats the initial one.
	for _, row := range costTab.Rows {
		if v := parseF(t, row[1]); v >= 1.0 {
			t.Fatalf("drp=%s comm ratio %v >= 1.0 — refinement failed to improve", row[0], v)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	tab := Fig8(tiny)
	if len(tab.Rows) != 17 { // ARAGON + shuffles 0..15
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "ARAGON" {
		t.Fatalf("first row should be ARAGON: %v", tab.Rows[0])
	}
	// More shuffles must not hurt quality dramatically; by 15 rounds the
	// ratio should be close to or below ARAGON (paper: below at >= 11).
	last := parseF(t, tab.Rows[len(tab.Rows)-1][2])
	first := parseF(t, tab.Rows[1][2])
	if last > first+1e-9 {
		t.Fatalf("quality got worse with shuffles: %v -> %v", first, last)
	}
}

func TestFig9to11Shapes(t *testing.T) {
	tabs := Fig9to11(tiny)
	if len(tabs) != 5 {
		t.Fatalf("tables = %d, want 5", len(tabs))
	}
	fig9, fig10a, fig10b := tabs[0], tabs[1], tabs[2]
	if len(fig9.Rows) != 12 {
		t.Fatalf("fig9 rows = %d, want 12 datasets", len(fig9.Rows))
	}
	// Headline claims at tiny scale: HP is the worst initial partitioner
	// on average; refinement never increases cost.
	var hpSum, metisSum float64
	for i, row := range fig9.Rows {
		hp := parseF(t, row[1])
		dg := parseF(t, row[2])
		metis := parseF(t, row[4])
		hpSum += hp
		metisSum += metis
		after := parseF(t, fig10a.Rows[i][1])
		if after > hp+1e-9 {
			t.Fatalf("dataset %s: PARAGON+HP worsened cost: %v -> %v", row[0], hp, after)
		}
		_ = dg
	}
	if metisSum >= hpSum {
		t.Fatalf("METIS total %v not below HP total %v", metisSum, hpSum)
	}
	// Improvement percentages are within [0, 100].
	for _, row := range fig10b.Rows {
		for _, cell := range row[1:] {
			v := parseF(t, cell)
			if v < -1 || v > 100 {
				t.Fatalf("improvement %v out of range", v)
			}
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	tab := Table4(appScale, 2)
	// Pitt: 5 algorithms, Gordon: 3.
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	jet := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		key := row[0]
		if jet[key] == nil {
			jet[key] = map[string]float64{}
		}
		jet[key][row[1]] = parseF(t, row[2]) // YouTube column
	}
	for cluster, m := range jet {
		if m["PARAGON"] >= m["DG"] {
			t.Fatalf("%s: PARAGON JET %v not below DG %v", cluster, m["PARAGON"], m["DG"])
		}
	}
}

func TestTable5Shapes(t *testing.T) {
	tab := Table5(appScale, 1)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig12and13Shapes(t *testing.T) {
	f12 := Fig12(appScale, 1)
	if len(f12.Rows) != 15 { // 3 datasets × 5 algorithms
		t.Fatalf("fig12 rows = %d", len(f12.Rows))
	}
	f13 := Fig13(appScale, 1)
	if len(f13.Rows) != 9 { // 3 datasets × 3 algorithms
		t.Fatalf("fig13 rows = %d", len(f13.Rows))
	}
	// On Gordon (λ=0), PARAGON's inter-node volume must not exceed DG's.
	vols := map[string]float64{}
	for _, row := range f13.Rows {
		if row[0] == "YouTube" {
			vols[row[1]] = parseF(t, row[4])
		}
	}
	if vols["PARAGON"] > vols["DG"] {
		t.Fatalf("PARAGON inter-node volume %v above DG %v on Gordon", vols["PARAGON"], vols["DG"])
	}
}

func TestFig14Shapes(t *testing.T) {
	tab := Fig14(appScale, 1)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 algorithms", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 6 {
			t.Fatalf("row %v should have 5 snapshot columns", row)
		}
	}
	// At S5 PARAGON must beat plain DG.
	var dg5, par5 float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "DG":
			dg5 = parseF(t, row[5])
		case "PARAGON":
			par5 = parseF(t, row[5])
		}
	}
	if par5 >= dg5 {
		t.Fatalf("at S5, PARAGON JET %v not below DG %v", par5, dg5)
	}
}

func TestFig15and16Shapes(t *testing.T) {
	jetTab, refTab := Fig15and16(appScale, 1)
	if len(jetTab.Rows) != 4 || len(refTab.Rows) != 4 {
		t.Fatalf("rows: %d %d", len(jetTab.Rows), len(refTab.Rows))
	}
	// Edge counts must grow along the series, and PARAGON must beat DG
	// at the largest scale.
	prevEdges := -1.0
	for _, row := range jetTab.Rows {
		e := parseF(t, row[1])
		if e <= prevEdges {
			t.Fatalf("series not growing: %v", jetTab.Rows)
		}
		prevEdges = e
	}
	last := jetTab.Rows[len(jetTab.Rows)-1]
	if parseF(t, last[3]) >= parseF(t, last[2]) {
		t.Fatalf("PARAGON JET %s not below DG %s at full scale", last[3], last[2])
	}
}

func TestTable1Content(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 core groups", len(tab.Rows))
	}
	// UMA G1 contends for everything; NUMA G2 only the link.
	if !strings.Contains(tab.Rows[0][3], "memory controller") {
		t.Fatalf("UMA G1 resources: %q", tab.Rows[0][3])
	}
	if tab.Rows[4][3] != "FSB/QPI(HT)" {
		t.Fatalf("NUMA G2 resources: %q", tab.Rows[4][3])
	}
}

func TestLambdaSweepShape(t *testing.T) {
	tab := LambdaSweep(appScale, 1)
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 2 clusters × 5 λ", len(tab.Rows))
	}
}

func TestAblations(t *testing.T) {
	k := AblationKHop(tiny)
	if len(k.Rows) != 3 {
		t.Fatalf("khop rows = %d", len(k.Rows))
	}
	// Shipped volume must grow with k.
	if parseF(t, k.Rows[1][1]) <= parseF(t, k.Rows[0][1]) {
		t.Fatalf("k=1 did not ship more than k=0: %v", k.Rows)
	}
	p := AblationServerPenalty(tiny)
	if len(p.Rows) != 2 {
		t.Fatalf("penalty rows = %d", len(p.Rows))
	}
	// The penalty must strictly reduce hot-node concentration.
	if parseF(t, p.Rows[0][1]) >= parseF(t, p.Rows[1][1]) {
		t.Fatalf("penalty did not reduce hot-node servers: %v vs %v", p.Rows[0][1], p.Rows[1][1])
	}
	u := AblationUniformCost(tiny)
	if len(u.Rows) != 3 {
		t.Fatalf("uniform rows = %d", len(u.Rows))
	}
	// PARAGON must beat UNIPARAGON on the real matrix.
	if parseF(t, u.Rows[0][1]) >= parseF(t, u.Rows[1][1]) {
		t.Fatalf("PARAGON %s not below UNIPARAGON %s", u.Rows[0][1], u.Rows[1][1])
	}
}

func TestExtensionStudies(t *testing.T) {
	vc := VertexCutComparison(tiny)
	if len(vc.Rows) != 3 {
		t.Fatalf("vertexcut rows = %d", len(vc.Rows))
	}
	// HDRF must replicate less than random hashing.
	if parseF(t, vc.Rows[2][1]) >= parseF(t, vc.Rows[0][1]) {
		t.Fatalf("HDRF RF %s not below random %s", vc.Rows[2][1], vc.Rows[0][1])
	}
	ex := ExchangeComparison(tiny)
	if len(ex.Rows) != 2 {
		t.Fatalf("exchange rows = %d", len(ex.Rows))
	}
	// Region volume must be below the directory's.
	if parseF(t, ex.Rows[1][1]) >= parseF(t, ex.Rows[0][1]) {
		t.Fatalf("region volume %s not below directory %s", ex.Rows[1][1], ex.Rows[0][1])
	}
	so := StreamOrderStudy(tiny)
	if len(so.Rows) != 12 { // 4 orders × 3 partitioners
		t.Fatalf("streamorder rows = %d", len(so.Rows))
	}
}

func TestEdgeCutVsVertexCut(t *testing.T) {
	tab := EdgeCutVsVertexCut(appScale)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// HDRF must beat random vertex-cut on total volume (the §8 point).
	var vRandom, vHDRF float64
	for _, row := range tab.Rows {
		switch row[1] {
		case "random":
			vRandom = parseF(t, row[2])
		case "HDRF":
			vHDRF = parseF(t, row[2])
		}
	}
	if vHDRF >= vRandom {
		t.Fatalf("HDRF volume %v not below random %v", vHDRF, vRandom)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "b"},
		Rows: [][]string{{"1", `va"l,ue`}}}
	got := tab.CSV()
	want := "# x: T\na,b\n1,\"va\"\"l,ue\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestRepartitionerLandscape(t *testing.T) {
	// Placement effects need enough vertices per partition: run at the
	// reporting scale with a few sources.
	tab := RepartitionerLandscape(0.3, 3)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 repartitioners", len(tab.Rows))
	}
	if tab.Rows[0][3] != "0" {
		t.Fatalf("stale baseline migration = %s, want 0", tab.Rows[0][3])
	}
	stale := parseF(t, tab.Rows[0][2])
	beat := 0
	for _, row := range tab.Rows[1:] {
		if v := parseF(t, row[2]); v <= 0 {
			t.Fatalf("row %v has non-positive JET", row)
		} else if v < stale {
			beat++
		}
	}
	if beat < 2 {
		t.Fatalf("only %d repartitioners beat the stale decomposition", beat)
	}
}

func TestManifest(t *testing.T) {
	m := Manifest()
	if len(m) != 17 {
		t.Fatalf("manifest has %d entries", len(m))
	}
	seen := map[string]bool{}
	for _, e := range m {
		if e.ID == "" || e.What == "" || e.Paper == "" {
			t.Fatalf("incomplete entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}
