package graph

import (
	"fmt"
	"sort"
)

// Overlay is a mutable view over an immutable CSR graph: edges can be
// added and removed without rebuilding the base. It supports the graph
// dynamism the paper's Pregel background describes (vertex functions may
// "add or remove vertices/edges to the graph") at the granularity the
// evaluation actually uses — edge churn between computations — and
// materializes back to CSR for the partitioners and the BSP engine.
//
// Removal beats addition: removing an added edge forgets it; removing a
// base edge masks it; re-adding a removed base edge unmasks it with the
// new weight. Overlays are not safe for concurrent mutation.
type Overlay struct {
	base    *Graph
	added   map[int32][]halfEdge // per endpoint, symmetric
	removed map[edgeKey]bool     // masked base edges
}

type halfEdge struct {
	to int32
	w  int32
}

type edgeKey struct{ a, b int32 }

func canonKey(u, v int32) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// NewOverlay wraps g. The base graph is never modified.
func NewOverlay(g *Graph) *Overlay {
	return &Overlay{
		base:    g,
		added:   make(map[int32][]halfEdge),
		removed: make(map[edgeKey]bool),
	}
}

// NumVertices returns the (fixed) vertex count.
func (o *Overlay) NumVertices() int32 { return o.base.NumVertices() }

// AddEdge inserts the undirected edge {u,v} with weight w. Adding an
// edge that already exists replaces its weight.
func (o *Overlay) AddEdge(u, v, w int32) error {
	n := o.base.NumVertices()
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: overlay edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: overlay rejects self-loop on %d", u)
	}
	if w <= 0 {
		return fmt.Errorf("graph: overlay rejects non-positive weight %d", w)
	}
	key := canonKey(u, v)
	// Drop any previous overlay state for the edge, then add fresh.
	o.dropAdded(u, v)
	o.dropAdded(v, u)
	delete(o.removed, key)
	if o.base.HasEdge(u, v) {
		if o.base.EdgeWeightBetween(u, v) == w {
			return nil // identical to base; nothing to overlay
		}
		// Mask the base edge and shadow it with the new weight.
		o.removed[key] = true
	}
	o.added[u] = append(o.added[u], halfEdge{v, w})
	o.added[v] = append(o.added[v], halfEdge{u, w})
	return nil
}

// RemoveEdge deletes the undirected edge {u,v} if present (base or
// added). Removing a non-existent edge is a no-op.
func (o *Overlay) RemoveEdge(u, v int32) {
	o.dropAdded(u, v)
	o.dropAdded(v, u)
	if o.base.HasEdge(u, v) {
		o.removed[canonKey(u, v)] = true
	}
}

func (o *Overlay) dropAdded(u, v int32) {
	list := o.added[u]
	for i, he := range list {
		if he.to == v {
			o.added[u] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// HasEdge reports whether {u,v} exists in the overlaid graph.
func (o *Overlay) HasEdge(u, v int32) bool {
	for _, he := range o.added[u] {
		if he.to == v {
			return true
		}
	}
	if o.removed[canonKey(u, v)] {
		return false
	}
	return o.base.HasEdge(u, v)
}

// EdgeWeightBetween returns the weight of {u,v}, or 0 if absent.
func (o *Overlay) EdgeWeightBetween(u, v int32) int32 {
	for _, he := range o.added[u] {
		if he.to == v {
			return he.w
		}
	}
	if o.removed[canonKey(u, v)] {
		return 0
	}
	return o.base.EdgeWeightBetween(u, v)
}

// Degree returns the current degree of v.
func (o *Overlay) Degree(v int32) int32 {
	d := int32(len(o.added[v]))
	for _, u := range o.base.Neighbors(v) {
		if !o.removed[canonKey(v, u)] {
			d++
		}
	}
	return d
}

// ForEachNeighbor visits every current neighbor of v with its weight.
func (o *Overlay) ForEachNeighbor(v int32, fn func(u int32, w int32)) {
	adj := o.base.Neighbors(v)
	ws := o.base.EdgeWeights(v)
	for i, u := range adj {
		if !o.removed[canonKey(v, u)] {
			fn(u, ws[i])
		}
	}
	for _, he := range o.added[v] {
		fn(he.to, he.w)
	}
}

// NumEdges returns the current undirected edge count.
func (o *Overlay) NumEdges() int64 {
	m := o.base.NumEdges() - int64(len(o.removed))
	var addedCount int64
	for _, list := range o.added {
		addedCount += int64(len(list))
	}
	return m + addedCount/2
}

// Materialize flattens the overlay into a fresh immutable CSR graph,
// carrying the base vertex weights and sizes.
func (o *Overlay) Materialize() *Graph {
	n := o.base.NumVertices()
	bld := NewBuilder(n)
	for v := int32(0); v < n; v++ {
		bld.SetVertexWeight(v, o.base.VertexWeight(v))
		bld.SetVertexSize(v, o.base.VertexSize(v))
		o.ForEachNeighbor(v, func(u int32, w int32) {
			if v < u {
				bld.AddWeightedEdge(v, u, w)
			}
		})
	}
	return bld.Build()
}

// PendingChanges returns the number of overlay operations (added half
// edge lists + masked edges) — a cheap drift signal for repartitioning
// trigger policies.
func (o *Overlay) PendingChanges() int {
	c := len(o.removed)
	for _, list := range o.added {
		c += len(list)
	}
	return c
}

// AddedEdges returns the overlay's added undirected edges, sorted, for
// inspection and tests.
func (o *Overlay) AddedEdges() [][2]int32 {
	var out [][2]int32
	for u, list := range o.added {
		for _, he := range list {
			if u < he.to {
				out = append(out, [2]int32{u, he.to})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
