// Package vertexcut implements vertex-cut graph partitioning — the
// alternative family §8 of the paper discusses (PowerGraph, HDRF): edges
// rather than vertices are assigned to partitions, and a vertex is
// replicated on every partition holding one of its edges. Vertex-cut
// reduces communication on power-law graphs; as the paper notes, it too
// faces communication heterogeneity (replicas synchronize across the
// network), so the same topology-aware cost accounting applies.
//
// Three assigners are provided: Random (hashing), Greedy (PowerGraph's
// rule) and HDRF (Petroni et al., CIKM'15 — high-degree replicated
// first).
package vertexcut

import (
	"fmt"
	"math"

	"paragon/internal/graph"
)

// Assignment maps every undirected edge of a graph to a partition and
// tracks the replica sets the assignment induces.
type Assignment struct {
	K int32
	// EdgePart is indexed by the canonical edge index (the position of
	// the edge (v,u), v<u, in v-major order).
	EdgePart []int32
	// Replicas[v] is the bitset of partitions holding a replica of v
	// (words of 64 partitions each).
	Replicas [][]uint64
	// EdgeLoad counts edges per partition.
	EdgeLoad []int64
}

// EdgeCount returns the number of undirected edges assigned.
func (a *Assignment) EdgeCount() int64 { return int64(len(a.EdgePart)) }

// ReplicaCount returns the number of replicas of v.
func (a *Assignment) ReplicaCount(v int32) int {
	c := 0
	for _, w := range a.Replicas[v] {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// ReplicationFactor is the primary vertex-cut quality metric: average
// replicas per vertex (1.0 is perfect).
func (a *Assignment) ReplicationFactor() float64 {
	if len(a.Replicas) == 0 {
		return 0
	}
	var total int64
	nonEmpty := 0
	for v := range a.Replicas {
		if c := a.ReplicaCount(int32(v)); c > 0 {
			total += int64(c)
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		return 0
	}
	return float64(total) / float64(nonEmpty)
}

// LoadImbalance returns maxEdges / avgEdges across partitions.
func (a *Assignment) LoadImbalance() float64 {
	var max, sum int64
	for _, l := range a.EdgeLoad {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(a.K))
}

// has reports whether partition p holds a replica of v.
func (a *Assignment) has(v, p int32) bool {
	return a.Replicas[v][p/64]&(1<<(uint(p)%64)) != 0
}

func (a *Assignment) add(v, p int32) {
	a.Replicas[v][p/64] |= 1 << (uint(p) % 64)
}

func newAssignment(g *graph.Graph, k int32) *Assignment {
	n := g.NumVertices()
	words := (int(k) + 63) / 64
	a := &Assignment{
		K:        k,
		EdgePart: make([]int32, g.NumEdges()),
		Replicas: make([][]uint64, n),
		EdgeLoad: make([]int64, k),
	}
	for v := range a.Replicas {
		a.Replicas[v] = make([]uint64, words)
	}
	return a
}

// assignFunc chooses the partition of the next edge (u,v).
type assignFunc func(a *Assignment, g *graph.Graph, u, v int32) int32

func partitionEdges(g *graph.Graph, k int32, choose assignFunc) *Assignment {
	if k < 1 {
		panic(fmt.Sprintf("vertexcut: k = %d", k))
	}
	a := newAssignment(g, k)
	idx := 0
	for v := int32(0); v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				p := choose(a, g, v, u)
				a.EdgePart[idx] = p
				a.EdgeLoad[p]++
				a.add(v, p)
				a.add(u, p)
				idx++
			}
		}
	}
	return a
}

// Random assigns each edge to a hashed partition — the PowerGraph
// default baseline.
func Random(g *graph.Graph, k int32) *Assignment {
	return partitionEdges(g, k, func(a *Assignment, g *graph.Graph, u, v int32) int32 {
		h := uint32(u)*2654435761 ^ uint32(v)*40503
		h ^= h >> 15
		return int32(h % uint32(k))
	})
}

// Greedy implements PowerGraph's greedy rule: prefer a partition already
// holding both endpoints, then one holding either, then the least
// loaded.
func Greedy(g *graph.Graph, k int32) *Assignment {
	return partitionEdges(g, k, func(a *Assignment, g *graph.Graph, u, v int32) int32 {
		bestBoth, bestOne := int32(-1), int32(-1)
		for p := int32(0); p < k; p++ {
			hu, hv := a.has(u, p), a.has(v, p)
			switch {
			case hu && hv:
				if bestBoth < 0 || a.EdgeLoad[p] < a.EdgeLoad[bestBoth] {
					bestBoth = p
				}
			case hu || hv:
				if bestOne < 0 || a.EdgeLoad[p] < a.EdgeLoad[bestOne] {
					bestOne = p
				}
			}
		}
		if bestBoth >= 0 {
			return bestBoth
		}
		if bestOne >= 0 {
			return bestOne
		}
		return leastLoaded(a)
	})
}

// HDRF implements high-degree-replicated-first (Petroni et al.): like
// Greedy, but when only one endpoint is present the score favors
// replicating the higher-degree endpoint, and a balance term
// lambda·(max−load)/(ε+max−min) keeps partitions even. The replica
// score reaches ~3, so lambda must exceed it occasionally to bind;
// lambda=2 balances essentially perfectly in practice while keeping the
// replication factor well below Random's (values ≤ 1 are clamped to 2).
func HDRF(g *graph.Graph, k int32, lambda float64) *Assignment {
	if lambda <= 1 {
		lambda = 2
	}
	const eps = 1.0
	return partitionEdges(g, k, func(a *Assignment, g *graph.Graph, u, v int32) int32 {
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		thetaU := du / (du + dv)
		thetaV := 1 - thetaU
		var minL, maxL int64
		minL = math.MaxInt64
		for p := int32(0); p < k; p++ {
			if a.EdgeLoad[p] < minL {
				minL = a.EdgeLoad[p]
			}
			if a.EdgeLoad[p] > maxL {
				maxL = a.EdgeLoad[p]
			}
		}
		best := int32(0)
		bestScore := math.Inf(-1)
		for p := int32(0); p < k; p++ {
			var rep float64
			if a.has(u, p) {
				rep += 1 + (1 - thetaU)
			}
			if a.has(v, p) {
				rep += 1 + (1 - thetaV)
			}
			bal := lambda * float64(maxL-a.EdgeLoad[p]) / (eps + float64(maxL-minL))
			if s := rep + bal; s > bestScore {
				best, bestScore = p, s
			}
		}
		return best
	})
}

func leastLoaded(a *Assignment) int32 {
	best := int32(0)
	for p := int32(1); p < a.K; p++ {
		if a.EdgeLoad[p] < a.EdgeLoad[best] {
			best = p
		}
	}
	return best
}

// SyncCost estimates the architecture-aware replica synchronization cost
// of an assignment: each vertex's replicas must exchange updates with
// its master (its first replica partition); every (master, replica)
// pair contributes c[master][replica]. This extends the paper's
// observation that vertex-cut systems also face communication
// heterogeneity.
func SyncCost(a *Assignment, c [][]float64) float64 {
	var total float64
	for v := range a.Replicas {
		master := int32(-1)
		for p := int32(0); p < a.K; p++ {
			if a.has(int32(v), p) {
				if master < 0 {
					master = p
				} else {
					total += c[master][p]
				}
			}
		}
	}
	return total
}
