// Package paragon implements PARAGON, the parallel architecture-aware
// graph partition refinement algorithm of Zheng et al. (EDBT 2016) — the
// paper's core contribution.
//
// PARAGON parallelizes the serial ARAGON refiner by splitting the n
// partitions of a decomposition into drp groups, refining every partition
// pair inside each group concurrently on a dedicated group server, and
// recovering the quality lost to grouping with rounds of shuffle
// refinement that exchange decomposition changes and swap partitions
// between groups (Algorithm 1). It is itself architecture-aware: the
// master node is chosen to minimize auxiliary traffic (Eq. 11) and group
// servers are chosen to minimize the cost of shipping their group's
// boundary vertices (Eq. 10), with a penalty that spreads group servers
// across compute nodes. Communication volume is reduced by shipping only
// vertices within k hops of a partition boundary (k = 0 by default).
//
// Shared-resource contention (§6) enters through the cost matrix: build
// it with topology.(*Cluster).PartitionCostMatrix(k, λ), which applies
// the Eq. 12 intra-node penalty before refinement begins.
package paragon

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"paragon/internal/aragon"
	"paragon/internal/dir"
	"paragon/internal/faultsim"
	"paragon/internal/graph"
	"paragon/internal/obs"
	"paragon/internal/partition"
)

// Config tunes PARAGON. The zero value picks the paper's defaults.
type Config struct {
	// DRP is the degree of refinement parallelism: the number of
	// partition groups refined concurrently. 1 degenerates to serial
	// ARAGON; the maximum useful value is K/2 (each group needs at least
	// two partitions). Values outside [1, K/2] are clamped. Default 8.
	DRP int
	// Shuffles is the number of shuffle-refinement rounds after the
	// initial round. Zero means no shuffle refinement; DefaultConfig
	// uses 8, the paper's microbenchmark setting.
	Shuffles int
	// Workers bounds the pair-level worker pool: each tournament wave's
	// pairs (DESIGN.md §12) execute on this many workers. The result is
	// bit-identical for every value — Workers changes wall clock and
	// memory placement, never the refinement. Zero or negative picks
	// runtime.GOMAXPROCS(0).
	Workers int
	// KHop is the boundary-expansion radius for the communication-volume
	// reduction of §5: only vertices within KHop hops of a partition
	// boundary are shipped to (and movable by) group servers. Default 0
	// (boundary vertices only), the paper's default.
	KHop int
	// Alpha is the communication-vs-migration weight of Eq. 2 (default
	// 10, the paper's evaluation setting).
	Alpha float64
	// MaxImbalance is the allowed skew tolerance (default 0.02).
	MaxImbalance float64
	// Seed drives grouping and shuffling; a fixed seed makes the whole
	// refinement deterministic.
	Seed int64
	// BadMoveLimit bounds non-improving moves per pair (default 64).
	BadMoveLimit int
	// NodeOf optionally maps each server (partition index) to its
	// compute node, enabling Eq. 10's σ(s) group-server spreading
	// penalty and the region-exchange accounting. Nil treats every
	// server as its own node.
	NodeOf []int
	// RegionSize overrides the location-exchange region size of §5
	// (default min(2^26, |V|)).
	RegionSize int64
	// FaultRate, together with FaultSeed, installs the deterministic
	// fault injector of internal/faultsim: every fault point (group
	// crash, straggler delay, exchange-reduce drop) fires independently
	// with this probability, hashed from FaultSeed so identical
	// (FaultSeed, FaultRate) runs see identical fault schedules. Zero
	// disables the fault layer entirely.
	FaultRate float64
	// FaultSeed seeds the fault schedule (independent of Seed, so the
	// same refinement can be swept across fault schedules).
	FaultSeed int64
	// Fabric overrides FaultRate/FaultSeed with an explicit fault
	// fabric — a scripted schedule being replayed, or a zero-fault
	// injector when measuring instrumentation overhead. With a nil
	// Fabric and FaultRate 0 the fault layer is a true no-op.
	Fabric faultsim.Fabric
	// Trace, when non-nil, receives the structured refinement event
	// stream (round/wave/pair/fault/exchange events, DESIGN.md §13).
	// Events are stamped with the virtual tick clock and a monotonic
	// sequence number; the stream is bit-identical for every Workers
	// value. Nil disables tracing at zero cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, is populated with the per-phase counters,
	// gauges, and fixed-bucket histograms of the refinement (refine_*,
	// ship_*, exchange_*, fault_*, migrate_*). Like the trace, the final
	// registry contents are identical for every Workers value. Nil
	// disables the metrics layer at zero cost.
	Metrics *obs.Registry
	// Portfolio sizes the seeded-ensemble layer (internal/portfolio):
	// Size independent refinements raced on the worker pool, the best
	// selected by partition.Score's total order, the top CombineTop
	// overlaid by the combine operator. Consumed only by the portfolio
	// driver — plain Refine ignores it.
	Portfolio PortfolioConfig
	// Directory, when non-nil, is the epoch-versioned serving layer
	// (internal/dir): after each committed refinement round the driver
	// publishes the master assignment as one whole epoch, so concurrent
	// lookups follow the refinement without ever observing a torn
	// mapping. A publish killed by the directory's own fault fabric is
	// counted in Faults.PublishAborts and the previous epoch stays live —
	// the next round's publish diffs against the directory's snapshot and
	// catches it up. Nil skips the serving layer entirely.
	Directory *dir.Directory
}

// DefaultConfig returns the paper's evaluation defaults: drp = 8, eight
// shuffle rounds, k-hop 0, α = 10, 2% imbalance.
func DefaultConfig() Config {
	return Config{DRP: 8, Shuffles: 8, Alpha: 10, MaxImbalance: 0.02, BadMoveLimit: 64}
}

// PortfolioConfig tunes the portfolio driver. It lives here (not in
// internal/portfolio, which imports this package) so Config can embed it.
type PortfolioConfig struct {
	// Size is the number of portfolio members P: independent seeded
	// refinements of the same input, raced to completion with no
	// cross-member barriers. 0 or negative picks 4.
	Size int
	// CombineTop is how many of the best members the combine operator
	// overlays; the overlay is currently pairwise, so any value >= 2
	// combines the top two and values < 2 disable combining. Default 2.
	CombineTop int
	// CombineRounds bounds the boundary-restricted re-refinement rounds
	// over the disagreement region of the overlay (default 2; each round
	// stops early when no move is kept).
	CombineRounds int
}

func (pc PortfolioConfig) withDefaults() PortfolioConfig {
	if pc.Size <= 0 {
		pc.Size = 4
	}
	if pc.CombineTop == 0 {
		pc.CombineTop = 2
	}
	if pc.CombineRounds <= 0 {
		pc.CombineRounds = 2
	}
	return pc
}

// WithDefaults returns the config with the paper's defaults filled in
// and DRP clamped for k partitions — the normalization Refine applies on
// entry, exported for the portfolio driver, which must see the same
// effective settings its members run under.
func (c Config) WithDefaults(k int32) Config {
	c = c.withDefaults(k)
	c.Portfolio = c.Portfolio.withDefaults()
	return c
}

func (c Config) withDefaults(k int32) Config {
	if c.DRP == 0 {
		c.DRP = 8
	}
	maxDRP := int(k) / 2
	if maxDRP < 1 {
		maxDRP = 1
	}
	if c.DRP > maxDRP {
		c.DRP = maxDRP
	}
	if c.DRP < 1 {
		c.DRP = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shuffles < 0 {
		c.Shuffles = 0
	}
	if c.Alpha == 0 {
		c.Alpha = 10
	}
	if c.MaxImbalance == 0 {
		c.MaxImbalance = 0.02
	}
	if c.BadMoveLimit == 0 {
		c.BadMoveLimit = 64
	}
	return c
}

// AragonConfig projects the pairwise-refiner settings out of the driver
// config — shared by the scheduler's workers and the portfolio members,
// so both refine under identical Eq. 5 gain rules.
func (c Config) AragonConfig() aragon.Config {
	return aragon.Config{
		Alpha:        c.Alpha,
		MaxImbalance: c.MaxImbalance,
		BadMoveLimit: c.BadMoveLimit,
	}
}

// Stats reports what one Refine call did, including the simulated
// communication volumes that Figures 15–16 track.
type Stats struct {
	Master       int32     // server selected by Eq. 11
	DRP          int       // effective degree of parallelism
	Rounds       int       // refinement rounds (1 + shuffles)
	GroupServers [][]int32 // per round, the server chosen for each group

	PairsRefined int       // partition pairs refined across all rounds
	Moves        int       // vertex moves kept
	Gain         float64   // total Eq. 5 gain realized
	RoundGains   []float64 // gain realized per refinement round

	BoundaryShipped       int64 // vertices shipped to group servers (all rounds)
	ShippedEdgeVolume     int64 // half-edges accompanying shipped vertices
	LocationExchangeBytes int64 // shuffle location-exchange traffic
	ExchangeRegions       int   // chunked exchange rounds per shuffle

	MigratedVertices int64         // vertices whose final owner changed
	MigrationCost    float64       // Eq. 3 against the input decomposition
	DirectoryEpochs  int           // epochs published to Config.Directory (one per committed round)
	RefinementTime   time.Duration // wall clock of the whole refinement

	Faults FaultStats // degraded-mode accounting (all zero without a fault fabric)
}

// FaultStats accounts what the fault fabric did to one Refine and how
// the recovery machinery answered. Refinement is best-effort, so every
// entry here costs quality, never validity: a degraded group's moves are
// discarded and the round commits with the survivors; an exchange abort
// ends shuffling early with the rounds already committed.
type FaultStats struct {
	CrashedGroups   int   // group servers that crashed; their rounds' moves discarded
	StragglerDrops  int   // groups discarded because their delay passed the round timeout
	DegradedGroups  int   // total discarded group outcomes (crashes + straggler drops)
	ExchangeRetries int   // region reduces retransmitted after a drop
	ExchangeAborts  int   // reduces abandoned after the retry budget (ends shuffling)
	PublishAborts   int   // directory epoch publishes killed by the directory's fault layer
	BackoffTicks    int64 // virtual ticks spent backing off dropped reduces
	VirtualTicks    int64 // total virtual time: per-round barriers plus backoff
}

// Refine improves the decomposition p of g in place against the relative
// cost matrix c (k×k, as produced by topology.PartitionCostMatrix) and
// returns statistics. The input decomposition is used as the migration
// reference of Eq. 9.
func Refine(g *graph.Graph, p *partition.Partitioning, c [][]float64, cfg Config) (Stats, error) {
	return refine(g, p, c, cfg, nil)
}

// RefineIndexed is Refine on a caller-maintained incremental index: the
// O(|V| + |E|) BuildIndex at the top of every call is skipped and ix is
// used (and kept consistent) instead. This is the streaming session's
// epoch entry point — across epochs it pays only the O(Σ deg(dirty))
// Index.Retarget for the churn since the last epoch, never a full
// rebuild. ix must have been built over exactly this (g, p): the commit
// loop replays every kept move through it, so on return ix again
// matches the refined p move for move.
func RefineIndexed(g *graph.Graph, p *partition.Partitioning, c [][]float64, cfg Config, ix *partition.Index) (Stats, error) {
	if ix == nil {
		return Stats{}, errors.New("paragon: RefineIndexed requires a non-nil index")
	}
	if ix.Partitioning() != p {
		return Stats{}, errors.New("paragon: index was built over a different partitioning")
	}
	if ix.Graph() != g {
		return Stats{}, errors.New("paragon: index targets a different graph snapshot (Retarget it first)")
	}
	return refine(g, p, c, cfg, ix)
}

func refine(g *graph.Graph, p *partition.Partitioning, c [][]float64, cfg Config, ix *partition.Index) (Stats, error) {
	// Refine is the driver boundary: it orchestrates the group servers
	// and reports Stats.RefinementTime, but the clock never influences
	// refinement decisions — the inner kernels (refineGroup,
	// aragon.Refiner) are clock-free and paragonlint keeps them that way.
	//lint:ignore wallclock whole-run stopwatch for Stats.RefinementTime; never read by refinement decisions
	start := time.Now()
	if err := p.Validate(g); err != nil {
		return Stats{}, fmt.Errorf("paragon: %w", err)
	}
	if int32(len(c)) < p.K {
		return Stats{}, fmt.Errorf("paragon: cost matrix %d×· smaller than k=%d", len(c), p.K)
	}
	if cfg.NodeOf != nil && int32(len(cfg.NodeOf)) < p.K {
		return Stats{}, fmt.Errorf("paragon: NodeOf has %d entries for k=%d", len(cfg.NodeOf), p.K)
	}
	cfg = cfg.withDefaults(p.K)
	k := p.K

	var st Stats
	st.DRP = cfg.DRP
	st.Master = selectMaster(k, c)

	if k < 2 {
		//lint:ignore wallclock Stats.RefinementTime bookkeeping at the driver boundary
		st.RefinementTime = time.Since(start)
		return st, nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	orig := append([]int32(nil), p.Assign...)
	loads := p.Weights(g)
	maxLoad := partition.BalanceBound(g, k, cfg.MaxImbalance)

	regionSize := cfg.RegionSize
	if regionSize <= 0 {
		regionSize = int64(1) << 26
	}
	if n := int64(g.NumVertices()); regionSize > n && n > 0 {
		regionSize = n
	}
	st.ExchangeRegions = int((int64(g.NumVertices()) + regionSize - 1) / regionSize)

	// The fault layer: nil fab is the fast path with zero overhead; an
	// installed fabric is consulted at each fault point. Decisions are
	// pure hashes of (seed, coordinates), so the parallel fan-out below
	// can query it from any goroutine without losing determinism.
	fab := cfg.Fabric
	if fab == nil && cfg.FaultRate > 0 {
		fab = faultsim.NewInjector(faultsim.Config{Seed: cfg.FaultSeed, Rate: cfg.FaultRate})
	}
	if in, ok := fab.(*faultsim.Injector); ok && cfg.Metrics != nil {
		in.Observe(cfg.Metrics)
	}
	pol := faultsim.DefaultPolicy()
	clk := faultsim.NewClock()

	// Observability (DESIGN.md §13): nil tracer/registry cost only these
	// checks. Events below are emitted from this coordinator goroutine;
	// the per-pair worker events are staged in per-worker bufs and
	// committed in task order at each wave barrier (schedule.go).
	tr := cfg.Trace
	mx := newRefineMetrics(cfg.Metrics)
	if tr != nil {
		tr.SetClock(clk.Now)
		tr.Emit(obs.Event{Kind: obs.KindRefineStart, Round: -1, A: st.Master, B: int32(cfg.DRP), N: int64(k)})
	}

	groups := randomGrouping(k, cfg.DRP, rng)
	// One incrementally maintained index serves every round: the commit
	// phase applies each kept move through it, so boundary counts, bucket
	// membership, and incident-edge sums stay current without per-round
	// full-graph rebuilds or per-pair full-graph scans. RefineIndexed
	// callers supply a live index and skip the build entirely.
	if ix == nil {
		ix = partition.BuildIndex(g, p)
	}
	// The pair-level scheduler (schedule.go): one shared shadow of the
	// master, a wave-constant frozen view, per-worker refiners and move
	// arenas, and the sharded O(|V|) sweeps — all scratch allocated once
	// here and reused by every round.
	sc := newScheduler(g, p, ix, c, orig, maxLoad, cfg)
	defer sc.close()
	serverOf := make([]int32, k) // partition -> its group's server this round
	ps := make([]int64, 0, k)    // pooled incident-edge sums, reused per round
	st.Rounds = 1 + cfg.Shuffles
	for round := 0; round < st.Rounds; round++ {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindRoundStart, Round: int32(round), N: int64(len(groups))})
		}
		// Group-server selection (Eq. 10) from the maintained
		// incident-edge sums — no rescan.
		ps = ix.AppendIncidentEdges(ps[:0])
		servers := SelectGroupServers(groups, ps, c, cfg.NodeOf, cfg.DRP)
		st.GroupServers = append(st.GroupServers, servers)

		// Volume accounting: every member partition ships its k-hop
		// boundary set to the group server (the server's own partition
		// stays put). Sharded over the worker pool with per-shard
		// accumulators reduced in shard order.
		sc.allowedMask(cfg.KHop)
		for i := range serverOf {
			serverOf[i] = -1
		}
		for gi, grp := range groups {
			for _, pi := range grp {
				serverOf[pi] = servers[gi]
			}
		}
		shipped, edges := sc.shipAccounting(serverOf)
		st.BoundaryShipped += shipped
		st.ShippedEdgeVolume += edges
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindShipAccounted, Round: int32(round), N: shipped, M: edges})
		}
		mx.shipVerts.Add(shipped)
		mx.shipEdges.Add(edges)

		// Fault fates are resolved up front: the injector's decisions are
		// pure hashes of (seed, round, group), so a crashed or dropped
		// group is known before any pair runs and none of its pairs is
		// ever scheduled — equivalent to the real system discarding a
		// degraded server's entire round, wherever its pairs would have
		// sat in the tournament.
		var roundTicks int64
		degraded := false
		sc.live = sc.live[:0]
		for gi := range groups {
			if fab != nil {
				if fab.CrashGroup(round, gi) {
					// A crashed server never answers; the master burns
					// the whole round timeout discovering that.
					st.Faults.CrashedGroups++
					st.Faults.DegradedGroups++
					degraded = true
					if tr != nil {
						tr.Emit(obs.Event{Kind: obs.KindGroupCrashed, Round: int32(round), A: int32(gi)})
					}
					mx.crashedGroups.Inc()
					continue
				}
				dur := 1 + fab.GroupDelay(round, gi)
				if dur > pol.RoundTimeout {
					// Straggler past the timeout: its moves arrive after
					// the round committed and are discarded.
					st.Faults.StragglerDrops++
					st.Faults.DegradedGroups++
					degraded = true
					if tr != nil {
						tr.Emit(obs.Event{Kind: obs.KindGroupStraggler, Round: int32(round), A: int32(gi), N: dur})
					}
					mx.stragglerDrops.Inc()
					continue
				}
				if dur > roundTicks {
					roundTicks = dur
				}
			}
			sc.live = append(sc.live, int32(gi))
		}
		if degraded {
			roundTicks = pol.RoundTimeout
		}

		// Pair-parallel refinement of the surviving groups against the
		// live shadow of the master (DESIGN.md §12, §14): tournament
		// waves of disjoint pairs, frozen-view reads for foreign
		// vertices, kept moves recorded per task. commitRound replays
		// the kept moves into the master in task order (fixed-order
		// float gain summation), restoring the delta round-sync
		// invariant for the next round.
		sc.buildSchedule(groups)
		sc.runRound(int32(round), loads)
		roundMoves, roundGain := sc.commitRound(loads, &st)
		clk.Advance(roundTicks)

		st.RoundGains = append(st.RoundGains, roundGain)
		mx.rounds.Inc()
		mx.pairs.Add(int64(len(sc.tasks)))
		mx.moves.Add(int64(roundMoves))
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindRoundEnd, Round: int32(round), N: int64(roundMoves), X: roundGain})
		}

		// Serving-layer publish: the committed round becomes one whole
		// directory epoch. The directory runs its own fault fabric; an
		// aborted flip leaves the previous epoch live, and the diff of
		// the next round's publish resynchronizes it.
		if cfg.Directory != nil {
			switch _, err := cfg.Directory.PublishAssign(p.Assign); {
			case err == nil:
				st.DirectoryEpochs++
			case errors.Is(err, dir.ErrPublishFailed):
				st.Faults.PublishAborts++
			default:
				return st, fmt.Errorf("paragon: directory publish after round %d: %w", round, err)
			}
		}

		if round+1 < st.Rounds {
			// The chunked location exchange of §5: every group server
			// learns the up-to-date location of all vertices, region by
			// region — O(|V|) traffic per shuffle (4 bytes per entry).
			// Under a fault fabric each region reduce may be dropped: it
			// is retransmitted after a capped exponential backoff, and a
			// region dropped beyond the retry budget ends shuffle
			// refinement early — the rounds already committed stand.
			nV := int64(g.NumVertices())
			exchangeOK := true
			for region := 0; region < st.ExchangeRegions && exchangeOK; region++ {
				lo := int64(region) * regionSize
				hi := lo + regionSize
				if hi > nV {
					hi = nV
				}
				for attempt := 0; ; attempt++ {
					st.LocationExchangeBytes += (hi - lo) * 4 // spent even when dropped
					mx.exchangeBytes.Add((hi - lo) * 4)
					if fab == nil || !fab.Drop(round, region, attempt) {
						if tr != nil {
							tr.Emit(obs.Event{Kind: obs.KindRegionSent, Round: int32(round),
								A: int32(region), N: (hi - lo) * 4 * int64(attempt+1), M: int64(attempt)})
						}
						break
					}
					if attempt >= pol.MaxRetries {
						st.Faults.ExchangeAborts++
						mx.exchangeAborts.Inc()
						if tr != nil {
							tr.Emit(obs.Event{Kind: obs.KindRegionAbort, Round: int32(round),
								A: int32(region), B: int32(attempt + 1)})
						}
						exchangeOK = false
						break
					}
					st.Faults.ExchangeRetries++
					mx.exchangeRetries.Inc()
					b := pol.Backoff(attempt)
					st.Faults.BackoffTicks += b
					mx.backoffTicks.Add(b)
					clk.Advance(b)
					if tr != nil {
						tr.Emit(obs.Event{Kind: obs.KindRegionRetry, Round: int32(round),
							A: int32(region), B: int32(attempt), N: b})
					}
				}
			}
			if !exchangeOK {
				st.Rounds = round + 1
				break
			}
			ShuffleGroups(groups, rng, round)
		}
	}
	st.Faults.VirtualTicks = clk.Now()
	mx.virtualTicks.Set(float64(st.Faults.VirtualTicks))

	// Final bookkeeping: physical data migration plan vs. the input,
	// sharded with the float partials reduced in shard order.
	st.MigratedVertices, st.MigrationCost = sc.migrationSweep()
	mx.migratedVerts.Add(st.MigratedVertices)
	mx.migrationCost.Set(st.MigrationCost)
	mx.gain.Set(st.Gain)
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.KindMigrationSweep, Round: -1, N: st.MigratedVertices, X: st.MigrationCost})
		tr.Emit(obs.Event{Kind: obs.KindRefineEnd, Round: -1, N: int64(st.Moves), X: st.Gain})
	}
	//lint:ignore wallclock Stats.RefinementTime bookkeeping at the driver boundary
	st.RefinementTime = time.Since(start)
	return st, nil
}

// RefineUniform runs PARAGON with a uniform cost matrix — the
// UNIPARAGON baseline of §7.2 that assumes a homogeneous, contention-free
// environment.
func RefineUniform(g *graph.Graph, p *partition.Partitioning, cfg Config) (Stats, error) {
	// One flat backing array with row slices: k+1 allocations would be
	// k×k tiny ones otherwise, and the rows stay cache-adjacent.
	k := int(p.K)
	flat := make([]float64, k*k)
	c := make([][]float64, k)
	for i := range c {
		c[i] = flat[i*k : (i+1)*k : (i+1)*k]
		for j := range c[i] {
			if i != j {
				c[i][j] = 1
			}
		}
	}
	return Refine(g, p, c, cfg)
}
