package dyn

import (
	"fmt"
	"math/rand"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Edge-level dynamism: the paper's Pregel background allows vertex
// functions to add or remove edges; between computations the
// decomposition then degrades and a refinement should be triggered.
// This file provides a churn generator, an applier over graph.Overlay,
// and the trigger policy deciding when re-refinement pays off.

// EdgeOp is one churn event.
type EdgeOp struct {
	Add     bool // false = remove
	U, V, W int32
}

// RandomChurn generates adds+removes edge events against g: removals
// pick existing edges uniformly; additions pick endpoint pairs with a
// mild preference for closing triangles (friend-of-friend), the dominant
// growth pattern of the paper's social datasets.
func RandomChurn(g *graph.Graph, adds, removes int, seed int64) []EdgeOp {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	if n < 2 {
		return nil
	}
	var ops []EdgeOp
	for i := 0; i < removes; i++ {
		// Uniform-ish existing edge: random vertex with degree > 0, then
		// random incident edge.
		for tries := 0; tries < 32; tries++ {
			v := int32(rng.Intn(int(n)))
			if d := g.Degree(v); d > 0 {
				u := g.Neighbors(v)[rng.Intn(int(d))]
				ops = append(ops, EdgeOp{Add: false, U: v, V: u})
				break
			}
		}
	}
	for i := 0; i < adds; i++ {
		u := int32(rng.Intn(int(n)))
		var v int32
		if d := g.Degree(u); d > 0 && rng.Intn(2) == 0 {
			// Friend-of-friend: a neighbor of a neighbor.
			w1 := g.Neighbors(u)[rng.Intn(int(d))]
			if d2 := g.Degree(w1); d2 > 0 {
				v = g.Neighbors(w1)[rng.Intn(int(d2))]
			}
		}
		for v == u || v == 0 && rng.Intn(2) == 0 {
			v = int32(rng.Intn(int(n)))
		}
		if v == u {
			continue
		}
		ops = append(ops, EdgeOp{Add: true, U: u, V: v, W: 1})
	}
	return ops
}

// ApplyChurn applies events to an overlay, returning how many actually
// changed the graph (removals of absent edges and invalid adds are
// skipped).
func ApplyChurn(o *graph.Overlay, ops []EdgeOp) int {
	applied := 0
	for _, op := range ops {
		if op.Add {
			if o.HasEdge(op.U, op.V) {
				continue
			}
			if err := o.AddEdge(op.U, op.V, op.W); err == nil {
				applied++
			}
		} else if o.HasEdge(op.U, op.V) {
			o.RemoveEdge(op.U, op.V)
			applied++
		}
	}
	return applied
}

// TriggerPolicy decides when accumulated dynamism justifies running the
// refiner again — the "injection also triggered the execution of
// PARAGON" loop of Figure 14, made explicit.
type TriggerPolicy struct {
	// MaxSkew triggers when Eq. 4 skewness exceeds it (default 1.1).
	MaxSkew float64
	// MaxChurn triggers when changed edges exceed this fraction of the
	// graph's edges (default 0.05).
	MaxChurn float64
}

// DefaultTrigger returns the defaults above.
func DefaultTrigger() TriggerPolicy { return TriggerPolicy{MaxSkew: 1.1, MaxChurn: 0.05} }

// Decision explains a trigger evaluation.
type Decision struct {
	Refine bool
	Reason string
	Skew   float64
	Churn  float64
}

// Evaluate inspects the current graph state and decomposition plus the
// churned-edge count since the last refinement.
func (tp TriggerPolicy) Evaluate(g *graph.Graph, p *partition.Partitioning, churnedEdges int64) Decision {
	if tp.MaxSkew == 0 {
		tp.MaxSkew = 1.1
	}
	if tp.MaxChurn == 0 {
		tp.MaxChurn = 0.05
	}
	d := Decision{Skew: partition.Skewness(g, p)}
	if m := g.NumEdges(); m > 0 {
		d.Churn = float64(churnedEdges) / float64(m)
	}
	switch {
	case d.Skew > tp.MaxSkew:
		d.Refine = true
		d.Reason = fmt.Sprintf("skewness %.3f exceeds %.3f", d.Skew, tp.MaxSkew)
	case d.Churn > tp.MaxChurn:
		d.Refine = true
		d.Reason = fmt.Sprintf("churn %.1f%% exceeds %.1f%%", 100*d.Churn, 100*tp.MaxChurn)
	default:
		d.Reason = "decomposition still healthy"
	}
	return d
}
