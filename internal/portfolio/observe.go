package portfolio

import "paragon/internal/obs"

// portfolioMetrics resolves every registry handle the portfolio driver
// touches, once per call — the same pre-resolved-handles pattern as the
// refinement driver's refineMetrics. With a nil registry the zero
// value's nil handles make every operation a no-op (obs metrics are
// nil-safe). All commits happen on the coordinator after the join, in
// member-id order, so registry contents never depend on Workers.
type portfolioMetrics struct {
	members        *obs.Counter
	forfeits       *obs.Counter
	memberMoves    *obs.Histogram
	combineDiff    *obs.Counter
	combineMoves   *obs.Counter
	combineApplied *obs.Counter
	winner         *obs.Gauge
	selectedCost   *obs.Gauge
}

func newPortfolioMetrics(r *obs.Registry) portfolioMetrics {
	if r == nil {
		return portfolioMetrics{}
	}
	return portfolioMetrics{
		members:        r.Counter("portfolio_members_total", "portfolio members configured (forfeits included)"),
		forfeits:       r.Counter("portfolio_forfeits_total", "members excluded by the fault fabric before running"),
		memberMoves:    r.Histogram("portfolio_member_moves", "kept moves per surviving member", obs.PowersOfTwoBounds(20)),
		combineDiff:    r.Counter("portfolio_combine_diff_vertices_total", "vertices the two best members disagreed on"),
		combineMoves:   r.Counter("portfolio_combine_moves_total", "moves kept by the combine operator's restricted rounds"),
		combineApplied: r.Counter("portfolio_combine_applied_total", "combine overlays that beat the best member and were selected"),
		winner:         r.Gauge("portfolio_winner", "selected member id of the last run (-1 if all forfeited)"),
		selectedCost:   r.Gauge("portfolio_selected_cost", "Eq. 2+3 cost of the selected decomposition"),
	}
}
