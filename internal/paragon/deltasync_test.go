package paragon

import (
	"math/rand"
	"testing"

	"paragon/internal/faultsim"
	"paragon/internal/gen"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// TestDeltaWaveSyncMatchesFullCopy cross-checks the scheduler's delta
// wave sync against the design it replaced: after EVERY wave barrier the
// frozen view — patched only from the move log — must equal a from-
// scratch full copy of the round-start assignment with the waves' kept
// moves replayed in task order, and the wave-start neighbor profile must
// equal one rebuilt from scratch against that frozen view. Asserted at
// Workers 1, 2 and 8, over both gain paths (uniform fast path with the
// profile, arch-aware general path).
func TestDeltaWaveSyncMatchesFullCopy(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, workers int)
	}{
		{
			name: "uniform",
			run: func(t *testing.T, workers int) {
				g := gen.BarabasiAlbert(2500, 4, 7)
				g.UseDegreeWeights()
				p := stream.LDG(g, 24, stream.DefaultOptions())
				if _, err := RefineUniform(g, p, Config{DRP: 4, Shuffles: 2, Seed: 11, Workers: workers}); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "arch-aware-khop",
			run: func(t *testing.T, workers int) {
				g := gen.RMAT(2000, 12000, 0.57, 0.19, 0.19, 13)
				g.UseDegreeWeights()
				cl := topology.PittCluster(2)
				const k = 16
				c, err := cl.PartitionCostMatrix(k, 0)
				if err != nil {
					t.Fatal(err)
				}
				p := stream.DG(g, k, stream.DefaultOptions())
				if _, err := Refine(g, p, c, Config{DRP: 4, Shuffles: 1, Seed: 5, KHop: 1, Workers: workers}); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 8} {
				var replay []int32
				waves := 0
				testRoundStart = func(sc *scheduler) {
					// Delta round-sync invariant: between rounds the three
					// views agree without any copying having happened.
					for v := range sc.frozen {
						if sc.frozen[v] != sc.pm.Assign[v] || sc.cur.Assign[v] != sc.pm.Assign[v] {
							t.Fatalf("round %d start: views disagree at vertex %d: frozen=%d cur=%d master=%d",
								sc.round, v, sc.frozen[v], sc.cur.Assign[v], sc.pm.Assign[v])
						}
					}
					replay = append(replay[:0], sc.pm.Assign...)
				}
				testWaveSynced = func(sc *scheduler, wave int, lo, hi int32) {
					waves++
					for ti := lo; ti < hi; ti++ {
						for _, mv := range sc.taskMoves(ti) {
							replay[mv.V] = mv.To
						}
					}
					for v := range replay {
						if sc.frozen[v] != replay[v] {
							t.Fatalf("workers=%d round %d wave %d: frozen[%d]=%d, full-copy replay says %d",
								workers, sc.round, wave, v, sc.frozen[v], replay[v])
						}
					}
					want := partition.BuildNeighborProfile(sc.g, sc.frozen, sc.pm.K)
					for v := int32(0); v < sc.g.NumVertices(); v++ {
						for q := int32(0); q < sc.pm.K; q++ {
							if got, exp := sc.profile.Get(v, q), want.Get(v, q); got != exp {
								t.Fatalf("workers=%d round %d wave %d: profile(%d,%d)=%d, rebuild says %d",
									workers, sc.round, wave, v, q, got, exp)
							}
						}
					}
				}
				tc.run(t, workers)
				testRoundStart, testWaveSynced = nil, nil
				if waves == 0 {
					t.Fatalf("workers=%d: no wave ever synced; the cross-check is vacuous", workers)
				}
			}
		})
	}
}

// TestDeltaSyncCrashedGroupFrozenUntouched is the fault-matrix case of
// the delta sync: a crashed group's tournament is discarded upfront, so
// none of its pairs is scheduled and the frozen view's entries for the
// group's vertices must still hold their round-start values at every
// wave barrier of the crashed round — the delta patch must not leak a
// discarded pair's moves.
func TestDeltaSyncCrashedGroupFrozenUntouched(t *testing.T) {
	g := gen.RMAT(3000, 18000, 0.57, 0.19, 0.19, 31)
	g.UseDegreeWeights()
	const k, drp = 24, 4
	const seed = 9
	p0 := stream.DG(g, k, stream.DefaultOptions())

	// Reproduce Refine's round-0 grouping (the grouping rng is seeded
	// with cfg.Seed and consumed first) to learn which partitions crash.
	rng := rand.New(rand.NewSource(seed))
	groups := randomGrouping(k, drp, rng)
	const crashed = 2
	inCrashed := make([]bool, k)
	for _, pi := range groups[crashed] {
		inCrashed[pi] = true
	}

	for _, workers := range []int{1, 2, 8} {
		var start []int32
		checked := 0
		testRoundStart = func(sc *scheduler) {
			if sc.round == 0 {
				start = append(start[:0], sc.frozen...)
			}
		}
		testWaveSynced = func(sc *scheduler, wave int, lo, hi int32) {
			if sc.round != 0 {
				return
			}
			checked++
			for v := range sc.frozen {
				if inCrashed[start[v]] && sc.frozen[v] != start[v] {
					t.Fatalf("workers=%d wave %d: frozen[%d] %d -> %d inside crashed group",
						workers, wave, v, start[v], sc.frozen[v])
				}
				if !inCrashed[start[v]] && inCrashed[sc.frozen[v]] {
					t.Fatalf("workers=%d wave %d: frozen[%d] entered crashed partition %d",
						workers, wave, v, sc.frozen[v])
				}
			}
		}
		fab := faultsim.NewInjector(faultsim.Config{Script: []faultsim.Event{
			{Kind: faultsim.KindCrash, Round: 0, Index: crashed}}})
		p := p0.Clone()
		st, err := Refine(g, p, topology.UniformMatrix(k), Config{DRP: drp, Shuffles: 0, Seed: seed, Workers: workers, Fabric: fab})
		testRoundStart, testWaveSynced = nil, nil
		if err != nil {
			t.Fatal(err)
		}
		if st.Faults.CrashedGroups != 1 {
			t.Fatalf("crashed groups = %d, want 1", st.Faults.CrashedGroups)
		}
		if checked == 0 {
			t.Fatalf("workers=%d: no wave of the crashed round was checked", workers)
		}
	}
}
