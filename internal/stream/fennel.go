package stream

import (
	"fmt"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Fennel implements the streaming partitioner of Tsourakakis et al.
// (WSDM'14), which the paper classifies alongside DG/LDG. Each arriving
// vertex v goes to the partition maximizing
//
//	affinity(v, Pi) − α·γ·w(Pi)^(γ−1)
//
// with γ = 1.5 and α = √k · m / n^1.5 — a soft load penalty in place of
// LDG's hard capacity. The weighted extension uses edge-weight affinity
// and vertex-weight loads, consistent with the paper's extension of DG
// and LDG. A hard capacity of (1+Eps)·avg·2 backstops pathological
// skew. Placement itself lives in Placer (place.go), shared with the
// streaming-ingest session: ties break uniformly to the lower load
// (including against the first candidate scored, which the old loop's
// best == -1 sentinel exempted) and the per-vertex affinity reset walks
// only the touched entries instead of all k.
func Fennel(g *graph.Graph, k int32, opt Options) *partition.Partitioning {
	if k < 1 {
		panic(fmt.Sprintf("stream: Fennel k = %d", k))
	}
	n := g.NumVertices()
	p := partition.New(k, n)
	for i := range p.Assign {
		p.Assign[i] = -1
	}
	alpha := FennelAlpha(k, float64(g.TotalEdgeWeight()), float64(g.TotalVertexWeight()))
	hardCap := 2 * float64(partition.BalanceBound(g, k, opt.Eps))
	pl := NewPlacer(PlaceFennel, k)
	load := make([]float64, k)

	for _, v := range streamOrder(g, opt.order(), opt.Seed) {
		vw := float64(g.VertexWeight(v))
		best := pl.Place(g.Neighbors(v), g.EdgeWeights(v), p.Assign, load, vw, hardCap, alpha)
		p.Assign[v] = best
		load[best] += vw
	}
	return p
}
