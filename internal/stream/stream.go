// Package stream implements the initial partitioners the paper evaluates
// against and feeds into PARAGON: HP (hash partitioning, the de-facto
// default of Pregel-like engines) and the two streaming heuristics of
// Stanton & Kliot (SIGKDD'12) — DG (deterministic greedy) and LDG (linear
// deterministic greedy). Per §7, DG and LDG are extended to support
// vertex- and edge-weighted graphs: partition load is the sum of vertex
// weights and neighbor affinity is the sum of edge weights.
package stream

import (
	"fmt"

	"paragon/internal/graph"
	"paragon/internal/partition"
)

// Options configures the streaming partitioners.
type Options struct {
	// Eps is the load-imbalance tolerance; capacity is
	// (1+Eps)·totalWeight/k. The paper allows 2%.
	Eps float64
	// Order selects the arrival sequence (default OrderNatural). The
	// paper notes DG and LDG quality depends on arrival order.
	Order Order
	// Shuffle is a deprecated alias for Order = OrderRandom.
	Shuffle bool
	// Seed drives OrderRandom/OrderBFS/OrderDFS starts.
	Seed int64
}

// order resolves the effective arrival order.
func (o Options) order() Order {
	if o.Shuffle && o.Order == OrderNatural {
		return OrderRandom
	}
	return o.Order
}

// DefaultOptions returns the paper's defaults (2% imbalance, natural
// order).
func DefaultOptions() Options { return Options{Eps: 0.02} }

// HP assigns each vertex to partition hash(v) mod k: the de-facto
// standard random (hash) partitioner.
func HP(g *graph.Graph, k int32) *partition.Partitioning {
	if k < 1 {
		panic(fmt.Sprintf("stream: HP k = %d", k))
	}
	p := partition.New(k, g.NumVertices())
	for v := int32(0); v < g.NumVertices(); v++ {
		p.Assign[v] = hash32(uint32(v)) % k
	}
	return p
}

// hash32 is a Murmur3-style finalizer: a cheap, well-mixed integer hash.
func hash32(x uint32) int32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return int32(x & 0x7fffffff)
}

// DG runs the deterministic greedy heuristic: each arriving vertex goes
// to the partition holding the most (edge-weighted) neighbors, provided
// the partition has remaining capacity; ties and the no-neighbor case go
// to the least-loaded candidate.
func DG(g *graph.Graph, k int32, opt Options) *partition.Partitioning {
	return greedy(g, k, opt, false)
}

// LDG runs the linear deterministic greedy heuristic: like DG but the
// neighbor affinity of partition i is damped by its remaining capacity,
// score = affinity(i) · (1 − w(Pi)/C).
func LDG(g *graph.Graph, k int32, opt Options) *partition.Partitioning {
	return greedy(g, k, opt, true)
}

func greedy(g *graph.Graph, k int32, opt Options, linear bool) *partition.Partitioning {
	if k < 1 {
		panic(fmt.Sprintf("stream: greedy k = %d", k))
	}
	n := g.NumVertices()
	p := partition.New(k, n)
	for i := range p.Assign {
		p.Assign[i] = -1 // unassigned marker, fixed up as the stream runs
	}
	capacity := float64(partition.BalanceBound(g, k, opt.Eps))
	if capacity < 1 {
		capacity = 1
	}
	rule := PlaceDG
	if linear {
		rule = PlaceLDG
	}
	pl := NewPlacer(rule, k)
	load := make([]float64, k)

	for _, v := range streamOrder(g, opt.order(), opt.Seed) {
		vw := float64(g.VertexWeight(v))
		best := pl.Place(g.Neighbors(v), g.EdgeWeights(v), p.Assign, load, vw, capacity, 0)
		p.Assign[v] = best
		load[best] += vw
	}
	return p
}
