package paragon_test

import (
	"encoding/binary"
	"testing"

	paragonlib "paragon"

	"paragon/internal/apps"
	"paragon/internal/bsp"
	"paragon/internal/exchange"
	"paragon/internal/gen"
	"paragon/internal/graph"
	"paragon/internal/migrate"
	"paragon/internal/paragon"
	"paragon/internal/partition"
	"paragon/internal/stream"
	"paragon/internal/topology"
)

// Cross-package integration tests: the full pipelines a deployment would
// run, asserting end-to-end semantic invariants rather than per-module
// behavior.

// TestPipelinePartitionRefineMigrateRun drives the complete §5 story:
// initial decomposition → PARAGON refinement → physical migration with
// application context → BFS on the migrated stores' placement. The
// application answers must be identical at every stage.
func TestPipelinePartitionRefineMigrateRun(t *testing.T) {
	g := gen.RMAT(4000, 24000, 0.57, 0.19, 0.19, 17)
	g.UseDegreeWeights()
	cluster := topology.PittCluster(2)
	k := cluster.TotalCores()
	costs, err := cluster.PartitionCostMatrix(k, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	nodeOf, _ := cluster.NodeOf(k)

	old := stream.DG(g, int32(k), stream.DefaultOptions())

	// Reference answers on the initial placement.
	e0, err := bsp.NewEngine(g, old, cluster, bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := apps.BFS(e0, g, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Refine.
	now := old.Clone()
	cfg := paragon.DefaultConfig()
	cfg.Seed = 5
	cfg.NodeOf = nodeOf
	st, err := paragon.Refine(g, now, costs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.MigratedVertices == 0 {
		t.Skip("refinement moved nothing at this seed; pipeline untestable")
	}

	// Migrate the physical stores, carrying the BFS distances as app
	// context (the §5 example).
	stores := migrate.BuildStores(g, old)
	plan, err := migrate.NewPlan(old, now)
	if err != nil {
		t.Fatal(err)
	}
	appDist := append([]int64(nil), ref...)
	ctx := migrate.AppContext{
		Save: func(v int32) []byte {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, uint64(appDist[v]))
			return buf
		},
		Restore: func(v int32, data []byte) {
			appDist[v] = int64(binary.LittleEndian.Uint64(data))
		},
	}
	if _, err := migrate.Execute(stores, plan, ctx); err != nil {
		t.Fatal(err)
	}
	if err := migrate.Verify(stores, g, now); err != nil {
		t.Fatalf("stores do not realize the refined decomposition: %v", err)
	}
	for v := range appDist {
		if appDist[v] != ref[v] {
			t.Fatalf("application context corrupted at vertex %d", v)
		}
	}

	// Re-run on the new placement: identical answers, (typically) less
	// expensive communication.
	e1, err := bsp.NewEngine(g, now, cluster, bsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := apps.BFS(e1, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref {
		if got[v] != ref[v] {
			t.Fatalf("BFS answer changed by refinement at vertex %d: %d vs %d", v, got[v], ref[v])
		}
	}
}

// TestParagonDeltasReplayThroughExchange replays a PARAGON refinement's
// final assignment through the §5 region exchange: servers that each
// own a slice of partitions and know only their own moves end with
// identical, correct views.
func TestParagonDeltasReplayThroughExchange(t *testing.T) {
	g := gen.Mesh2D(30, 30)
	g.UseDegreeWeights()
	old := stream.DG(g, 8, stream.DefaultOptions())
	now := old.Clone()
	if _, err := paragon.RefineUniform(g, now, paragon.Config{DRP: 4, Shuffles: 2, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// Four servers, two partitions each; each knows the moves of its own
	// partitions (destination recorded by final owner's server).
	servers := make([]*exchange.Server, 4)
	for i := range servers {
		servers[i] = &exchange.Server{
			ID:        i,
			Locations: append([]int32(nil), old.Assign...),
			Updates:   map[int32]int32{},
		}
	}
	for v := range old.Assign {
		if old.Assign[v] != now.Assign[v] {
			owner := int(now.Assign[v] / 2)
			servers[owner].Updates[int32(v)] = now.Assign[v]
		}
	}
	if _, err := (exchange.Region{Size: 128}).Propagate(servers); err != nil {
		t.Fatal(err)
	}
	if !exchange.Consistent(servers) {
		t.Fatal("server views diverged")
	}
	for v := range now.Assign {
		if servers[0].Locations[v] != now.Assign[v] {
			t.Fatalf("vertex %d: exchanged view %d vs truth %d", v, servers[0].Locations[v], now.Assign[v])
		}
	}
}

// TestFacadeAndInternalAgree pins the facade to the internal packages:
// the re-exported entry points must produce identical results.
func TestFacadeAndInternalAgree(t *testing.T) {
	gf := paragonlib.RMAT(500, 2500, 0.57, 0.19, 0.19, 3)
	gi := gen.RMAT(500, 2500, 0.57, 0.19, 0.19, 3)
	if gf.NumEdges() != gi.NumEdges() {
		t.Fatal("facade RMAT differs from internal")
	}
	pf := paragonlib.DG(gf, 6)
	pi := stream.DG(gi, 6, stream.DefaultOptions())
	for v := range pf.Assign {
		if pf.Assign[v] != pi.Assign[v] {
			t.Fatal("facade DG differs from internal")
		}
	}
	uni := topology.UniformMatrix(6)
	if paragonlib.CommCost(gf, pf, uni, 10) != partition.CommCost(gi, pi, uni, 10) {
		t.Fatal("facade CommCost differs")
	}
}

// TestChurnTriggerRefineLoop is the full dynamism loop on internals:
// churn → trigger decision → refine → trigger clears.
func TestChurnTriggerRefineLoop(t *testing.T) {
	base := gen.RMAT(3000, 18000, 0.57, 0.19, 0.19, 21)
	base.UseDegreeWeights()
	p := stream.DG(base, 10, stream.DefaultOptions())

	ov := graph.NewOverlay(base)
	// Heavy churn concentrated on high-ids: unbalances and stales p.
	applied := 0
	for v := int32(0); v < 600; v++ {
		u := base.NumVertices() - 1 - v
		if v != u && !ov.HasEdge(v, u) {
			if ov.AddEdge(v, u, 1) == nil {
				applied++
			}
		}
	}
	cur := ov.Materialize()
	cur.UseDegreeWeights()
	// p still assigns every vertex (vertex set unchanged).
	if err := p.Validate(cur); err != nil {
		t.Fatal(err)
	}
	// (The trigger policy is exercised in internal/dyn; here we assert
	// the refinement step of the loop repairs the churned decomposition.)
	before := partition.EdgeCut(cur, p)
	if _, err := paragon.RefineUniform(cur, p, paragon.Config{DRP: 5, Shuffles: 2, Seed: 2, MaxImbalance: 0.1}); err != nil {
		t.Fatal(err)
	}
	if after := partition.EdgeCut(cur, p); after >= before {
		t.Fatalf("refinement did not repair churned cut: %d -> %d", before, after)
	}
}
