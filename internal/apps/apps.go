// Package apps provides the distributed graph applications the paper
// evaluates (§7.2) — Breadth-First Search and Single-Source Shortest
// Path — plus Weakly Connected Components and PageRank as extensions,
// all as vertex programs for the bsp engine. Each app also has a serial
// reference in the graph package against which results are verified.
package apps

import (
	"fmt"
	"math"

	"paragon/internal/bsp"
	"paragon/internal/graph"
)

// Unreached marks a vertex not reached by BFS/SSSP in the returned
// distance slices.
const Unreached = int64(-1)

const inf = int64(math.MaxInt64)

// BFS runs breadth-first search from src on the engine and returns the
// hop distance of every vertex (Unreached for unreachable ones) along
// with the run's execution result (JET, volume, supersteps).
func BFS(e *bsp.Engine, g *graph.Graph, src int32) ([]int64, bsp.Result, error) {
	if src < 0 || src >= g.NumVertices() {
		return nil, bsp.Result{}, fmt.Errorf("apps: BFS source %d out of range", src)
	}
	prog := bsp.Program{
		Init: func(v int32) (int64, bool) {
			if v == src {
				return 0, true
			}
			return inf, false
		},
		Compute: func(v int32, value int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			improved := false
			if msgs == nil {
				// Initial activation of the source.
				improved = true
			} else if m := msgs[0]; m < value {
				value = m
				improved = true
			}
			if improved {
				for _, u := range g.Neighbors(v) {
					send(u, value+1)
				}
			}
			return value, false
		},
		Combine: minCombine,
	}
	res, err := e.Run(prog)
	if err != nil {
		return nil, res, err
	}
	return finish(res.Values), res, nil
}

// SSSP runs single-source shortest path (non-negative edge weights as
// distances) from src and returns the distance of every vertex.
func SSSP(e *bsp.Engine, g *graph.Graph, src int32) ([]int64, bsp.Result, error) {
	if src < 0 || src >= g.NumVertices() {
		return nil, bsp.Result{}, fmt.Errorf("apps: SSSP source %d out of range", src)
	}
	prog := bsp.Program{
		Init: func(v int32) (int64, bool) {
			if v == src {
				return 0, true
			}
			return inf, false
		},
		Compute: func(v int32, value int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			improved := false
			if msgs == nil {
				improved = true
			} else if m := msgs[0]; m < value {
				value = m
				improved = true
			}
			if improved {
				adj := g.Neighbors(v)
				w := g.EdgeWeights(v)
				for i, u := range adj {
					send(u, value+int64(w[i]))
				}
			}
			return value, false
		},
		Combine: minCombine,
	}
	res, err := e.Run(prog)
	if err != nil {
		return nil, res, err
	}
	return finish(res.Values), res, nil
}

// WCC labels every vertex with the minimum vertex id of its weakly
// connected component.
func WCC(e *bsp.Engine, g *graph.Graph) ([]int64, bsp.Result, error) {
	prog := bsp.Program{
		Init: func(v int32) (int64, bool) { return int64(v), true },
		Compute: func(v int32, value int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			improved := msgs == nil // initial round: everyone broadcasts
			if msgs != nil && msgs[0] < value {
				value = msgs[0]
				improved = true
			}
			if improved {
				for _, u := range g.Neighbors(v) {
					send(u, value)
				}
			}
			return value, false
		},
		Combine: minCombine,
	}
	res, err := e.Run(prog)
	return res.Values, res, err
}

// PageRankScale is the fixed-point scale of PageRank values: a rank r is
// stored as r·PageRankScale.
const PageRankScale = int64(1_000_000_000)

// PageRank runs iters rounds of damped PageRank (d = 0.85) and returns
// the fixed-point ranks (multiply by 1/PageRankScale for probabilities).
// Isolated vertices keep the base rank.
func PageRank(e *bsp.Engine, g *graph.Graph, iters int) ([]int64, bsp.Result, error) {
	if iters < 1 {
		return nil, bsp.Result{}, fmt.Errorf("apps: PageRank needs >= 1 iteration")
	}
	n := int64(g.NumVertices())
	if n == 0 {
		return nil, bsp.Result{}, nil
	}
	base := PageRankScale * 15 / (100 * n)
	// remaining is indexed by vertex and only touched by the vertex's
	// own rank goroutine, so no synchronization is needed.
	remaining := make([]int32, n)
	for i := range remaining {
		remaining[i] = int32(iters)
	}
	prog := bsp.Program{
		Init: func(v int32) (int64, bool) { return PageRankScale / n, true },
		Compute: func(v int32, value int64, msgs []int64, send func(int32, int64)) (int64, bool) {
			if msgs != nil {
				var sum int64
				for _, m := range msgs {
					sum += m
				}
				value = base + sum*85/100
			}
			remaining[v]--
			if remaining[v] <= 0 {
				return value, false
			}
			if d := int64(g.Degree(v)); d > 0 {
				share := value / d
				for _, u := range g.Neighbors(v) {
					send(u, share)
				}
			}
			return value, true
		},
		Combine: func(a, b int64) int64 { return a + b },
	}
	res, err := e.Run(prog)
	return res.Values, res, err
}

func minCombine(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// finish converts internal inf markers to Unreached.
func finish(vals []int64) []int64 {
	out := make([]int64, len(vals))
	for i, v := range vals {
		if v == inf {
			out[i] = Unreached
		} else {
			out[i] = v
		}
	}
	return out
}
