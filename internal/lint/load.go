package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports resolve recursively through
// the loader itself, standard-library imports through the stdlib source
// importer (go/importer "source" mode), which needs no prebuilt export
// data. Test files (_test.go) are skipped — the determinism contract
// covers shipped code, and tests are free to iterate maps.
type Loader struct {
	fset   *token.FileSet
	root   string // module root directory (absolute)
	module string // module path from go.mod
	std    types.Importer
	pkgs   map[string]*Package // keyed by directory (absolute)
	stack  map[string]bool     // import-cycle guard
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
		stack:  make(map[string]bool),
	}, nil
}

// Module returns the module path of the loaded tree.
func (l *Loader) Module() string { return l.module }

// AllLoaded returns every package the loader has parsed so far — the
// requested packages plus the module-internal dependencies pulled in to
// type-check them — sorted by import path. Interprocedural checkers
// build their call graph over this set, so taint can follow a kernel
// call into a helper package even when only the kernel is being checked.
func (l *Loader) AllLoaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Load resolves patterns relative to dir and returns the matched
// packages in deterministic (import path) order. Supported patterns:
// "./..." and "dir/..." recursive forms, plus plain directory paths.
// Directories named testdata or vendor, and dot/underscore directories,
// are skipped, mirroring the go tool.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		base := dir
		rec := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		target := filepath.Join(base, pat)
		if filepath.IsAbs(pat) {
			target = pat
		}
		if !rec {
			dirs[target] = true
			continue
		}
		err := filepath.WalkDir(target, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != target && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Load in sorted directory order so both results and any load error
	// are deterministic (the linter lints itself).
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	var out []*Package
	for _, d := range sorted {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the package in one directory. It
// returns (nil, nil) for directories without non-test Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	if l.stack[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.stack[abs] = true
	defer delete(l.stack, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	path := l.importPath(abs)
	pkg := &Package{
		Path: path,
		Dir:  abs,
		Fset: l.fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		Files: files,
	}
	conf := types.Config{
		Importer: &loaderImporter{l: l},
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[abs] = pkg
	return pkg, nil
}

// importPath derives the import path for a directory: module-relative
// for directories under the module root, synthetic elsewhere (fixtures).
func (l *Loader) importPath(abs string) string {
	if rel, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.module
		}
		return l.module + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

type loaderImporter struct{ l *Loader }

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == li.l.module || strings.HasPrefix(path, li.l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, li.l.module), "/")
		pkg, err := li.l.LoadDir(filepath.Join(li.l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("lint: no package at %s", path)
		}
		return pkg.Types, nil
	}
	return li.l.std.Import(path)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
