// Package exchange implements the two strategies §5 discusses for
// propagating decomposition changes among PARAGON's group servers during
// shuffle refinement:
//
//   - Directory: a Zoltan-style distributed data directory. Every vertex
//     has a home shard (hash-based); group servers push their location
//     updates to the shards and then pull the locations of every vertex
//     their vertices neighbor. The paper found this "very inefficient for
//     really big graphs in terms of both memory footprint and execution
//     time", costing O(|V|+|E|) communication.
//
//   - Region: the paper's adopted variant — the global vertex id space is
//     chunked into equal regions of min(2^26, |V|) ids, and the locations
//     of one region are exchanged per round with a single reduce,
//     costing O(|V|) communication and bounding per-server memory to one
//     region.
//
// Both strategies are implemented over real goroutine servers and report
// the simulated wire volume, so the paper's claim is directly
// benchmarkable (BenchmarkExchangeStrategies).
//
// Both strategies accept an optional faultsim.Fabric: any message — a
// region reduce, a directory push or pull batch — may be dropped by the
// injected schedule, in which case the sender retries with capped
// exponential backoff on the virtual clock (Policy). A message dropped
// more than Policy.MaxRetries times fails the exchange with
// ErrExchangeFailed. With a nil Fabric the fault layer is a true no-op:
// byte volumes and results are identical to the pre-fault implementation.
package exchange

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"paragon/internal/faultsim"
	"paragon/internal/obs"
)

// ErrExchangeFailed marks an exchange abandoned after a message was
// dropped more than Policy.MaxRetries times. Callers distinguish it from
// protocol violations (conflicting updates) with errors.Is.
var ErrExchangeFailed = errors.New("message dropped beyond retry budget")

// DeliveryError is the detailed form of ErrExchangeFailed the Directory
// strategy returns: it names every server whose message exhausted the
// retry budget in the failed phase, in ascending rank order regardless
// of goroutine interleaving. Callers attributing a failed
// directory-epoch publish (internal/dir) unwrap it with errors.As; it
// still satisfies errors.Is(err, ErrExchangeFailed).
type DeliveryError struct {
	// Phase is the exchange phase that failed: "push" or "pull".
	Phase string
	// Servers holds the ranks whose delivery was abandoned beyond the
	// retry budget, sorted ascending (deterministic lowest-rank-first).
	Servers []int
}

// Error implements error.
func (e *DeliveryError) Error() string {
	return fmt.Sprintf("exchange: %s delivery abandoned for servers %v: %v", e.Phase, e.Servers, ErrExchangeFailed)
}

// Unwrap makes errors.Is(err, ErrExchangeFailed) hold.
func (e *DeliveryError) Unwrap() error { return ErrExchangeFailed }

// deliver attempts to send one message op under the fault fabric,
// retrying with capped backoff until it is delivered or the retry budget
// is exhausted. Each attempt (including lost ones — the bytes went out)
// costs size bytes; backoff advances the virtual clock. It returns the
// total bytes spent and the number of retries performed. onRetry, when
// non-nil, is invoked after each backoff with the lost attempt's index
// and the ticks waited — the coordinator-side hook the Region strategy
// uses to trace retries.
func deliver(f faultsim.Fabric, pol faultsim.Policy, clk *faultsim.Clock, epoch, op int, size int64, onRetry func(attempt int, backoff int64)) (bytes int64, retries int, err error) {
	for attempt := 0; ; attempt++ {
		bytes += size
		if f == nil || !f.Drop(epoch, op, attempt) {
			return bytes, retries, nil
		}
		if attempt >= pol.MaxRetries {
			return bytes, retries, fmt.Errorf("exchange: message %d dropped %d times: %w", op, attempt+1, ErrExchangeFailed)
		}
		b := pol.Backoff(attempt)
		if clk != nil {
			clk.Advance(b)
		}
		if onRetry != nil {
			onRetry(attempt, b)
		}
		retries++
	}
}

// exchangeMetrics resolves the registry handles both strategies share.
// The zero value (nil registry) makes every operation a no-op.
type exchangeMetrics struct {
	bytes   *obs.Counter
	retries *obs.Counter
	aborts  *obs.Counter
}

func newExchangeMetrics(r *obs.Registry) exchangeMetrics {
	if r == nil {
		return exchangeMetrics{}
	}
	return exchangeMetrics{
		bytes:   r.Counter("exchange_bytes_total", "location-exchange traffic, lost attempts included"),
		retries: r.Counter("exchange_retries_total", "region reduces retransmitted after a drop"),
		aborts:  r.Counter("exchange_aborts_total", "region reduces abandoned beyond the retry budget"),
	}
}

// Server is one group server's view during a shuffle exchange.
type Server struct {
	ID int
	// Locations is this server's (possibly stale) view of every vertex's
	// partition. All servers' views have the same length.
	Locations []int32
	// Updates are the ownership changes this server made during its
	// group refinement (vertex -> new partition). Servers own disjoint
	// partitions, so no two servers update the same vertex.
	Updates map[int32]int32
	// Needs are the vertices whose up-to-date location this server needs
	// (the neighbors of its vertices); only the Directory strategy uses
	// it — the Region strategy refreshes everything.
	Needs []int32
}

// Strategy propagates all updates so that every server's Locations view
// becomes identical and up to date. It returns the simulated
// communication volume in bytes.
type Strategy interface {
	Name() string
	Propagate(servers []*Server) (int64, error)
}

// wire-size constants: a location update is (vertex id, partition) = 8
// bytes; a pull request is a 4-byte id, its reply 4 bytes.
const (
	updateBytes  = 8
	requestBytes = 4
	replyBytes   = 4
)

// Directory is the Zoltan-style distributed data directory strategy.
// Shards defaults to the number of servers.
type Directory struct {
	Shards int
	// Fabric optionally injects message-drop faults (nil = fault-free).
	Fabric faultsim.Fabric
	// Policy bounds retries and backoff; the zero value is DefaultPolicy.
	Policy faultsim.Policy
	// Clock, when set, absorbs the virtual backoff ticks of retries.
	Clock *faultsim.Clock
	// Metrics, when set, accumulates exchange_* counters. The directory
	// delivers from per-server goroutines, so it offers only order-free
	// metrics, no trace stream (Region is the traced strategy).
	Metrics *obs.Registry
}

// Name implements Strategy.
func (Directory) Name() string { return "distributed data directory" }

// Propagate implements Strategy: push updates to hash-owned shards, then
// pull every needed location. Conflicting shard updates (two servers
// moving the same vertex to different partitions — a protocol violation
// PARAGON's disjoint grouping prevents) fail with a deterministic
// conflict error, like Region. Under a Fabric, a server's push or pull
// batch may be dropped and is retried per the Policy.
func (d Directory) Propagate(servers []*Server) (int64, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("exchange: no servers")
	}
	shards := d.Shards
	if shards <= 0 {
		shards = len(servers)
	}
	n := len(servers[0].Locations)
	for _, s := range servers {
		if len(s.Locations) != n {
			return 0, fmt.Errorf("exchange: server %d has %d locations, want %d", s.ID, len(s.Locations), n)
		}
	}
	pol := d.Policy.Normalized()
	mx := newExchangeMetrics(d.Metrics)
	epoch := 0
	if d.Fabric != nil {
		epoch = d.Fabric.NextEpoch()
	}
	// Shard state: authoritative locations for the vertices it owns,
	// plus the vertices whose pushes conflicted.
	type shard struct {
		mu        sync.Mutex
		locs      map[int32]int32
		conflicts []int32 // vertices with disagreeing pushes; dedup at report
	}
	shardOf := func(v int32) int { return int(uint32(v)*2654435761) % shards }
	dir := make([]*shard, shards)
	for i := range dir {
		dir[i] = &shard{locs: make(map[int32]int32)}
	}
	var volume int64
	var volMu sync.Mutex
	// Delivery failures land in per-server arena slots (the sharedwrite
	// contract): each goroutine writes only its own index, and
	// deliveryError reduces the slice deterministically afterwards.
	pushErrs := make([]error, len(servers))
	// Phase 1: every server pushes its updates to the owning shards. The
	// push batch is one message: a dropped batch never reaches a shard
	// and is retried whole (idempotent — it re-writes the same values).
	var wg sync.WaitGroup
	for si, s := range servers {
		wg.Add(1)
		go func(si int, s *Server) {
			defer wg.Done()
			batch := int64(len(s.Updates)) * updateBytes
			bytes, retries, err := deliver(d.Fabric, pol, d.Clock, epoch, si, batch, nil)
			volMu.Lock()
			volume += bytes
			volMu.Unlock()
			mx.bytes.Add(bytes)
			mx.retries.Add(int64(retries))
			if err != nil {
				mx.aborts.Inc()
				pushErrs[si] = fmt.Errorf("exchange: push from server %d: %w", s.ID, err)
				return
			}
			for v, loc := range s.Updates {
				sh := dir[shardOf(v)]
				sh.mu.Lock()
				if old, dup := sh.locs[v]; dup && old != loc {
					//lint:ignore sharedwrite append order is interleaving-dependent but the conflict set is sorted and deduplicated before reporting
					sh.conflicts = append(sh.conflicts, v)
				}
				//lint:ignore sharedwrite per-key last-write-wins under the shard mutex; disagreeing writers are caught by the conflict check above
				sh.locs[v] = loc
				sh.mu.Unlock()
			}
		}(si, s)
	}
	wg.Wait()
	if err := deliveryError("push", servers, pushErrs); err != nil {
		return volume, err
	}
	// Surface conflicts deterministically: lowest vertex id wins the
	// error message regardless of goroutine interleaving.
	var conflicted []int32
	for _, sh := range dir {
		conflicted = append(conflicted, sh.conflicts...)
	}
	if len(conflicted) > 0 {
		sort.Slice(conflicted, func(i, j int) bool { return conflicted[i] < conflicted[j] })
		uniq := conflicted[:1]
		for _, v := range conflicted[1:] {
			if v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		return volume, fmt.Errorf("exchange: conflicting updates for vertex %d (%d conflicting vertices)", uniq[0], len(uniq))
	}
	// Phase 2: every server pulls the locations it needs; the pull batch
	// (requests + replies) is one retryable message.
	pullErrs := make([]error, len(servers))
	for si, s := range servers {
		wg.Add(1)
		go func(si int, s *Server) {
			defer wg.Done()
			var batch int64
			for _, v := range s.Needs {
				if v < 0 || int(v) >= n {
					continue
				}
				batch += requestBytes + replyBytes
			}
			bytes, retries, err := deliver(d.Fabric, pol, d.Clock, epoch, len(servers)+si, batch, nil)
			volMu.Lock()
			volume += bytes
			volMu.Unlock()
			mx.bytes.Add(bytes)
			mx.retries.Add(int64(retries))
			if err != nil {
				mx.aborts.Inc()
				pullErrs[si] = fmt.Errorf("exchange: pull by server %d: %w", s.ID, err)
				return
			}
			for _, v := range s.Needs {
				if v < 0 || int(v) >= n {
					continue
				}
				sh := dir[shardOf(v)]
				sh.mu.Lock()
				loc, ok := sh.locs[v]
				sh.mu.Unlock()
				if ok {
					s.Locations[v] = loc
				}
			}
		}(si, s)
	}
	wg.Wait()
	if err := deliveryError("pull", servers, pullErrs); err != nil {
		return volume, err
	}
	// The directory only refreshes pulled vertices; apply each server's
	// own updates locally too (free — they are local writes).
	for _, s := range servers {
		for v, loc := range s.Updates {
			s.Locations[v] = loc
		}
	}
	return volume, nil
}

// deliveryError reduces a per-server error arena (nil slots = delivered)
// into the deterministic verdict of a phase: nil when every delivery
// landed, otherwise a DeliveryError naming every exhausted server in
// ascending rank order. The set — not a single representative — is what
// makes a failed directory-epoch publish attributable: the caller sees
// exactly which servers' batches died, however the goroutines
// interleaved.
func deliveryError(phase string, servers []*Server, errs []error) error {
	var failed []int
	for si, e := range errs {
		if e != nil {
			failed = append(failed, servers[si].ID)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	sort.Ints(failed)
	return &DeliveryError{Phase: phase, Servers: failed}
}

// Region is the paper's adopted chunked-array strategy.
type Region struct {
	// Size is the region length in vertex ids; 0 means min(2^26, |V|).
	Size int64
	// Fabric optionally injects reduce-drop faults (nil = fault-free).
	Fabric faultsim.Fabric
	// Policy bounds retries and backoff; the zero value is DefaultPolicy.
	Policy faultsim.Policy
	// Clock, when set, absorbs the virtual backoff ticks of retries.
	Clock *faultsim.Clock
	// Trace, when set, receives region_sent / region_retry / region_abort
	// events, emitted from the (serial) coordinator loop with the epoch
	// as the Round coordinate.
	Trace *obs.Tracer
	// Metrics, when set, accumulates exchange_* counters.
	Metrics *obs.Registry
}

// Name implements Strategy.
func (Region) Name() string { return "region-chunked array exchange" }

// Propagate implements Strategy: for each region, reduce all servers'
// updates into a merged location array and broadcast it back. Under a
// Fabric, a region's reduce may be dropped: the whole region reduce is
// retried with capped backoff (its bytes were spent either way), and a
// region dropped beyond Policy.MaxRetries fails with ErrExchangeFailed.
func (r Region) Propagate(servers []*Server) (int64, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("exchange: no servers")
	}
	n := int64(len(servers[0].Locations))
	for _, s := range servers {
		if int64(len(s.Locations)) != n {
			return 0, fmt.Errorf("exchange: server %d has %d locations, want %d", s.ID, len(s.Locations), n)
		}
	}
	size := r.Size
	if size <= 0 {
		size = 1 << 26
	}
	if size > n && n > 0 {
		size = n
	}
	pol := r.Policy.Normalized()
	mx := newExchangeMetrics(r.Metrics)
	epoch := 0
	if r.Fabric != nil {
		epoch = r.Fabric.NextEpoch()
	}
	var volume int64
	region := -1
	for lo := int64(0); lo < n; lo += size {
		region++
		hi := lo + size
		if hi > n {
			hi = n
		}
		// Reduce: merge every server's updates for this region. Updates
		// are disjoint across servers by PARAGON's construction; detect
		// violations.
		merged := make([]int32, hi-lo)
		written := make([]bool, hi-lo)
		for i := range merged {
			merged[i] = -1
		}
		// Conflicting updates abort mid-iteration, so which conflict is
		// reported depends on map order; the success path only performs
		// per-key writes and is order-independent.
		for _, s := range servers {
			//lint:ignore maprange early exit fires only on a protocol violation PARAGON's disjoint grouping rules out
			for v, loc := range s.Updates {
				if int64(v) < lo || int64(v) >= hi {
					continue
				}
				i := int64(v) - lo
				if written[i] && merged[i] != loc {
					return volume, fmt.Errorf("exchange: conflicting updates for vertex %d", v)
				}
				merged[i] = loc
				written[i] = true
			}
		}
		// Fill unchanged slots from the first server's view (all views
		// agree on unchanged vertices).
		base := servers[0].Locations[lo:hi]
		for i := range merged {
			if !written[i] {
				merged[i] = base[i]
			}
		}
		// The reduce wire cost is one 4-byte location per vertex of the
		// region (the paper's O(|V|) total). A dropped reduce spent its
		// bytes anyway and is retried after a backoff; a region dropped
		// beyond the retry budget aborts before any server adopts it, so
		// views stay exchange-atomic per region.
		var onRetry func(attempt int, backoff int64)
		if r.Trace != nil {
			reg := region
			onRetry = func(attempt int, backoff int64) {
				r.Trace.Emit(obs.Event{Kind: obs.KindRegionRetry, Round: int32(epoch),
					A: int32(reg), B: int32(attempt), N: backoff})
			}
		}
		bytes, retries, err := deliver(r.Fabric, pol, r.Clock, epoch, region, (hi-lo)*4, onRetry)
		volume += bytes
		mx.bytes.Add(bytes)
		mx.retries.Add(int64(retries))
		if err != nil {
			mx.aborts.Inc()
			if r.Trace != nil {
				r.Trace.Emit(obs.Event{Kind: obs.KindRegionAbort, Round: int32(epoch),
					A: int32(region), B: int32(retries + 1)})
			}
			return volume, fmt.Errorf("exchange: region %d reduce: %w", region, err)
		}
		if r.Trace != nil {
			r.Trace.Emit(obs.Event{Kind: obs.KindRegionSent, Round: int32(epoch),
				A: int32(region), N: bytes, M: int64(retries)})
		}
		// Broadcast: every server adopts the merged region.
		var wg sync.WaitGroup
		for _, s := range servers {
			wg.Add(1)
			go func(s *Server, lo, hi int64) {
				defer wg.Done()
				copy(s.Locations[lo:hi], merged)
			}(s, lo, hi)
		}
		wg.Wait()
	}
	return volume, nil
}

// Update is one vertex ownership change — the unit of the epoch deltas
// the partition directory (internal/dir) consumes.
type Update struct {
	Vertex int32
	Rank   int32
}

// EpochDelta is the directory adapter: it merges every server's pending
// Updates into one deterministic, vertex-sorted delta, the whole-epoch
// write a partition-directory publish applies. Servers own disjoint
// partitions, so their updates must be disjoint (duplicates that agree
// are deduplicated); two servers moving the same vertex to different
// ranks is a protocol violation reported against the lowest conflicting
// vertex, like Propagate.
func EpochDelta(servers []*Server) ([]Update, error) {
	total := 0
	for _, s := range servers {
		total += len(s.Updates)
	}
	out := make([]Update, 0, total)
	for _, s := range servers {
		//lint:ignore maprange map order never reaches the result: the merged slice is sorted by (Vertex, Rank) below, before dedup or any caller observes it
		for v, loc := range s.Updates {
			out = append(out, Update{Vertex: v, Rank: loc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Vertex != out[j].Vertex {
			return out[i].Vertex < out[j].Vertex
		}
		return out[i].Rank < out[j].Rank
	})
	uniq := out[:0]
	for _, u := range out {
		if len(uniq) > 0 && uniq[len(uniq)-1].Vertex == u.Vertex {
			if uniq[len(uniq)-1].Rank != u.Rank {
				return nil, fmt.Errorf("exchange: conflicting updates for vertex %d", u.Vertex)
			}
			continue
		}
		uniq = append(uniq, u)
	}
	return uniq, nil
}

// Consistent reports whether all servers hold identical location views.
func Consistent(servers []*Server) bool {
	if len(servers) < 2 {
		return true
	}
	ref := servers[0].Locations
	for _, s := range servers[1:] {
		if len(s.Locations) != len(ref) {
			return false
		}
		for i := range ref {
			if s.Locations[i] != ref[i] {
				return false
			}
		}
	}
	return true
}
