package graph

// Traversal utilities shared by the partitioners, the refiner's boundary
// extraction (k-hop BFS of §5 "Reducing Communication Volume"), and the
// reference implementations the BSP applications are tested against.

// BFSLevels runs a breadth-first search from src and returns the level
// (hop distance) of every vertex, with -1 for unreachable vertices.
func BFSLevels(g *Graph, src int32) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	if src < 0 || src >= n {
		return level
	}
	level[src] = 0
	queue := make([]int32, 0, 1024)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if level[u] < 0 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// SSSPDistances runs Dijkstra's algorithm from src using edge weights as
// distances and returns the distance of every vertex, with -1 for
// unreachable vertices. It is the serial reference for the BSP SSSP.
func SSSPDistances(g *Graph, src int32) []int64 {
	n := g.NumVertices()
	const inf = int64(-1)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	if src < 0 || src >= n {
		return dist
	}
	h := &distHeap{}
	dist[src] = 0
	h.push(distItem{src, 0})
	for h.len() > 0 {
		it := h.pop()
		if dist[it.v] != it.d {
			continue // stale entry
		}
		adj := g.Neighbors(it.v)
		w := g.EdgeWeights(it.v)
		for i, u := range adj {
			nd := it.d + int64(w[i])
			if dist[u] == inf || nd < dist[u] {
				dist[u] = nd
				h.push(distItem{u, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int32
	d int64
}

// distHeap is a minimal binary min-heap on distance; using a concrete type
// avoids container/heap interface overhead in the hot loop.
type distHeap struct{ a []distItem }

func (h *distHeap) len() int { return len(h.a) }

func (h *distHeap) push(it distItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].d <= h.a[i].d {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.a[l].d < h.a[s].d {
			s = l
		}
		if r < last && h.a[r].d < h.a[s].d {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// ConnectedComponents labels each vertex with a component id in [0, #comp)
// and returns the labels plus the component count.
func ConnectedComponents(g *Graph) ([]int32, int32) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var next int32
	queue := make([]int32, 0, 1024)
	for s := int32(0); s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return comp, next
}

// ExpandFrontier appends to dst[:0] the set of vertices reachable from
// the seed set within k hops (including the seeds themselves, k=0 keeps
// just the seeds). It implements the k-hop boundary expansion used to
// reduce communication volume in §5 of the paper. The result is sorted
// and deduplicated; pass a retained dst to amortize the output
// allocation across calls (the per-call BFS bookkeeping is internal).
func ExpandFrontier(g *Graph, seeds []int32, k int, dst []int32) []int32 {
	n := g.NumVertices()
	seen := make(map[int32]struct{}, len(seeds)*2)
	cur := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || s >= n {
			continue
		}
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			cur = append(cur, s)
		}
	}
	for hop := 0; hop < k; hop++ {
		var next []int32
		for _, v := range cur {
			for _, u := range g.Neighbors(v) {
				if _, ok := seen[u]; !ok {
					seen[u] = struct{}{}
					next = append(next, u)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		cur = next
	}
	out := dst[:0]
	for v := range seen {
		out = append(out, v)
	}
	sortInt32s(out)
	return out
}

// Induced builds the subgraph of g induced by verts (which need not be
// sorted and must not repeat), preserving vertex weights, sizes, and
// internal edges. It returns the subgraph (local ids are positions in
// verts) and the local→global mapping.
func Induced(g *Graph, verts []int32) (*Graph, []int32) {
	local := make(map[int32]int32, len(verts))
	for i, v := range verts {
		local[v] = int32(i)
	}
	bld := NewBuilder(int32(len(verts)))
	for i, v := range verts {
		bld.SetVertexWeight(int32(i), g.VertexWeight(v))
		bld.SetVertexSize(int32(i), g.VertexSize(v))
		adj := g.Neighbors(v)
		w := g.EdgeWeights(v)
		for j, u := range adj {
			if lu, ok := local[u]; ok && v < u {
				bld.AddWeightedEdge(int32(i), lu, w[j])
			}
		}
	}
	return bld.Build(), append([]int32(nil), verts...)
}

// sortInt32s sorts a in ascending order (insertion sort below 32 elems,
// otherwise a simple in-place quicksort to avoid reflection).
func sortInt32s(a []int32) {
	if len(a) < 32 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	sortInt32s(a[:hi+1])
	sortInt32s(a[lo:])
}
