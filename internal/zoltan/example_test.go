package zoltan_test

import (
	"fmt"

	"paragon/internal/gen"
	"paragon/internal/stream"
	"paragon/internal/zoltan"
)

// Example repartitions a hashed decomposition under the hypergraph
// connectivity-1 model with migration nets.
func Example() {
	g := gen.Mesh2D(16, 16)
	old := stream.HP(g, 4)
	now, stats, err := zoltan.Repartition(g, old, zoltan.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("connectivity reduced:", stats.ConnectivityAfter < stats.ConnectivityBefore)
	fmt.Println("valid:", now.Validate(g) == nil)
	// Output:
	// connectivity reduced: true
	// valid: true
}
