package topology

import "fmt"

// Cluster presets matching the paper's two evaluation platforms (Table 3)
// and the illustrative UMA node of Figure 2a.

// PittCluster models the PittMPICluster: nodes with 2 sockets × 10 cores
// (Intel Haswell, 20 cores), NUMA, all attached to a single FDR Infiniband
// switch. The paper used up to 32 such nodes; pass the node count needed.
func PittCluster(nodes int) *Cluster {
	specs := make([]NodeSpec, nodes)
	for i := range specs {
		specs[i] = NodeSpec{Sockets: 2, CoresPerSocket: 10, Arch: NUMA, L2GroupSize: 1}
	}
	c, err := NewCluster("PittMPICluster", specs, FlatSwitch{}, DefaultLatency())
	if err != nil {
		panic(fmt.Sprintf("topology: PittCluster preset invalid: %v", err))
	}
	return c
}

// GordonCluster models the Gordon supercomputer: nodes with 2 sockets × 8
// cores (Intel Sandy Bridge, 16 cores), NUMA, attached to a 4×4×4 3D torus
// of switches with 16 nodes per switch and a comparatively slow (8 Gbps)
// network.
func GordonCluster(nodes int) *Cluster {
	specs := make([]NodeSpec, nodes)
	for i := range specs {
		specs[i] = NodeSpec{Sockets: 2, CoresPerSocket: 8, Arch: NUMA, L2GroupSize: 1}
	}
	c, err := NewCluster("Gordon", specs, Torus3D{X: 4, Y: 4, Z: 4, NodesPerSwitch: 16}, SlowNetworkLatency())
	if err != nil {
		panic(fmt.Sprintf("topology: GordonCluster preset invalid: %v", err))
	}
	return c
}

// UMACluster models a cluster of Figure 2a nodes: 2 sockets × 4 cores with
// L2 caches shared by core pairs, a front-side bus, and a northbridge
// memory controller. Used by the Table 1 reproduction and contention
// tests.
func UMACluster(nodes int) *Cluster {
	specs := make([]NodeSpec, nodes)
	for i := range specs {
		specs[i] = NodeSpec{Sockets: 2, CoresPerSocket: 4, Arch: UMA, L2GroupSize: 2}
	}
	c, err := NewCluster("UMA-FSB", specs, FlatSwitch{}, DefaultLatency())
	if err != nil {
		panic(fmt.Sprintf("topology: UMACluster preset invalid: %v", err))
	}
	return c
}

// UniformMatrix returns a k×k matrix with cost 1 between every pair of
// distinct partitions and 0 on the diagonal — the architecture-agnostic
// assumption of classic partitioners and the UNIPARAGON baseline.
func UniformMatrix(k int) [][]float64 {
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
		for j := range m[i] {
			if i != j {
				m[i][j] = 1
			}
		}
	}
	return m
}

// PaperExampleMatrix returns the 3×3 relative cost matrix of Figure 6:
// c(N1,N2)=1, c(N2,N3)=1, c(N1,N3)=6. It anchors the worked-example tests.
func PaperExampleMatrix() [][]float64 {
	return [][]float64{
		{0, 1, 6},
		{1, 0, 1},
		{6, 1, 0},
	}
}
