package dyn

import (
	"math/rand"
)

// The streaming daemon's load source: a seeded generator producing the
// batch schedule the session ingests — edge churn drawn by ChurnOps
// against the live adjacency, plus vertex arrivals wired to existing
// vertices with the same friend-of-friend preference. One Workload and
// one (seed, config) pair define the whole schedule deterministically:
// replaying it against a deterministic session reproduces every batch
// bit-identically regardless of worker count or wall-clock timing.

// Arrival is one vertex joining the graph: the session assigns it the
// next free vertex id and connects it to the listed (already existing)
// neighbors with the paired edge weights.
type Arrival struct {
	Neighbors []int32
	Weights   []int32
}

// Batch is one ingest unit: edge churn ops plus vertex arrivals, in
// application order (ops first, then arrivals).
type Batch struct {
	Seq      int64 // 0-based batch sequence number
	Ops      []EdgeOp
	Arrivals []Arrival
}

// WorkloadConfig shapes each generated batch.
type WorkloadConfig struct {
	Adds     int // edge additions per batch
	Removes  int // edge removals per batch
	Arrivals int // vertex arrivals per batch
	// ArrivalDegree is how many neighbors an arriving vertex wires to
	// (default 3, capped by the number of existing vertices).
	ArrivalDegree int
}

// Workload generates the seeded batch schedule. Not safe for concurrent
// use; the daemon drives it from its single ingest loop.
type Workload struct {
	cfg WorkloadConfig
	rng *rand.Rand
	seq int64
}

// NewWorkload returns a generator whose batch sequence is a pure
// function of (seed, cfg) and the Source views passed to Next.
func NewWorkload(seed int64, cfg WorkloadConfig) *Workload {
	if cfg.ArrivalDegree <= 0 {
		cfg.ArrivalDegree = 3
	}
	return &Workload{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Next generates the next batch against the current adjacency view. The
// view's NumVertices bounds every generated endpoint, so the session
// passes its active-prefix view and arrivals always wire to vertices
// that exist at application time.
func (w *Workload) Next(src Source) Batch {
	b := Batch{Seq: w.seq}
	w.seq++
	n := src.NumVertices()
	if n < 2 {
		return b
	}
	b.Ops = ChurnOps(src, w.cfg.Adds, w.cfg.Removes, w.rng)
	for i := 0; i < w.cfg.Arrivals; i++ {
		deg := w.cfg.ArrivalDegree
		if int32(deg) > n {
			deg = int(n)
		}
		a := Arrival{
			Neighbors: make([]int32, 0, deg),
			Weights:   make([]int32, 0, deg),
		}
		for j := 0; j < deg; j++ {
			// Half friend-of-friend around a uniform anchor, half
			// uniform — the same growth mix as ChurnOps additions.
			u := int32(w.rng.Intn(int(n)))
			if d := src.Degree(u); d > 0 && w.rng.Intn(2) == 0 {
				u = src.Neighbor(u, int32(w.rng.Intn(int(d))))
			}
			dup := false
			for _, prev := range a.Neighbors {
				if prev == u {
					dup = true
					break
				}
			}
			if dup {
				continue // fewer distinct neighbors, never a parallel edge
			}
			a.Neighbors = append(a.Neighbors, u)
			a.Weights = append(a.Weights, 1)
		}
		b.Arrivals = append(b.Arrivals, a)
	}
	return b
}
